#!/usr/bin/env python3
"""Validate bench --json dumps against scripts/bench_json.schema.json.

Standard library only (CI images need no jsonschema package): implements the
subset of JSON Schema the checked-in schema actually uses — type, required,
properties, additionalProperties (bool or schema), items, enum, minItems,
and $ref into $defs.

Usage:
    scripts/check_bench_json.py results/BENCH_fig7_rollbacks.json [more...]
    scripts/check_bench_json.py --schema my.schema.json dump.json
    scripts/check_bench_json.py --jsonl monitor_sample MONITOR_run.jsonl

With --jsonl <defname>, each input is a JSON-lines stream (e.g. the
--monitor heartbeat) and every non-empty line is validated against
#/$defs/<defname> instead of the document root.

Exits non-zero with a path-annotated message on the first violation per file.
"""

import argparse
import json
import math
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; exclude it from the numeric types.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class SchemaError(Exception):
    def __init__(self, path, message):
        super().__init__(f"{path or '$'}: {message}")


def resolve_ref(ref, root):
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only #/ fragments)")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema, root, path=""):
    if "$ref" in schema:
        validate(value, resolve_ref(schema["$ref"], root), root, path)
        return

    if "type" in schema:
        allowed = schema["type"]
        if isinstance(allowed, str):
            allowed = [allowed]
        if not any(TYPE_CHECKS[t](value) for t in allowed):
            raise SchemaError(
                path, f"expected {' or '.join(allowed)}, got "
                f"{type(value).__name__} ({value!r:.80})")

    if "enum" in schema and value not in schema["enum"]:
        raise SchemaError(path, f"{value!r} not in enum {schema['enum']}")

    if isinstance(value, float) and not math.isfinite(value):
        # The JSON emitter renders non-finite doubles as null; a bare NaN or
        # Infinity in the file means someone bypassed it.
        raise SchemaError(path, "non-finite number (emitter should use null)")

    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                raise SchemaError(path, f"missing required key {req!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, sub in value.items():
            sub_path = f"{path}.{key}" if path else key
            if key in props:
                validate(sub, props[key], root, sub_path)
            elif extra is False:
                raise SchemaError(sub_path, "unexpected key")
            elif isinstance(extra, dict):
                validate(sub, extra, root, sub_path)

    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            raise SchemaError(
                path, f"expected at least {schema['minItems']} item(s), "
                f"got {len(value)}")
        if "items" in schema:
            for i, item in enumerate(value):
                validate(item, schema["items"], root, f"{path}[{i}]")


LATENCY_QUANTILE_ORDER = ("p50", "p90", "p99", "p999")


def check_latency_blocks(doc, path=""):
    """Assert quantile monotonicity (p50 <= p90 <= p99 <= p999) in every
    `latency` block of a bench dump.

    The schema can only say each quantile is a number; the ordering is an
    invariant of the HDR histogram (cumulative-count walk), so a violation
    means the summarizer is broken, not the workload.
    """
    if isinstance(doc, dict):
        for key, sub in doc.items():
            sub_path = f"{path}.{key}" if path else key
            if key == "latency" and isinstance(sub, dict):
                for metric, summary in sub.items():
                    if not isinstance(summary, dict):
                        continue
                    qs = [summary.get(q) for q in LATENCY_QUANTILE_ORDER]
                    if any(not isinstance(q, (int, float)) for q in qs):
                        continue  # schema validation already flags these
                    for lo, hi, a, b in zip(LATENCY_QUANTILE_ORDER[:-1],
                                            LATENCY_QUANTILE_ORDER[1:],
                                            qs[:-1], qs[1:]):
                        if a > b:
                            raise SchemaError(
                                f"{sub_path}.{metric}",
                                f"quantiles not monotone: {lo}={a} > {hi}={b}")
            check_latency_blocks(sub, sub_path)
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            check_latency_blocks(item, f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="bench --json dumps")
    parser.add_argument(
        "--schema",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "bench_json.schema.json"))
    parser.add_argument(
        "--jsonl", metavar="DEFNAME",
        help="treat inputs as JSON-lines; validate each line against "
             "#/$defs/DEFNAME (e.g. monitor_sample)")
    args = parser.parse_args()

    with open(args.schema) as f:
        schema = json.load(f)

    if args.jsonl is not None:
        defs = schema.get("$defs", {})
        if args.jsonl not in defs:
            print(f"FAIL: no $defs entry named {args.jsonl!r} in "
                  f"{args.schema}", file=sys.stderr)
            return 1
        line_schema = defs[args.jsonl]

    failures = 0
    for path in args.files:
        try:
            if args.jsonl is not None:
                lines = 0
                with open(path) as f:
                    for lineno, line in enumerate(f, 1):
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            doc = json.loads(line)
                        except json.JSONDecodeError as e:
                            raise SchemaError(f"line {lineno}", str(e))
                        try:
                            validate(doc, line_schema, schema)
                        except SchemaError as e:
                            raise SchemaError(f"line {lineno}", str(e))
                        lines += 1
                if lines == 0:
                    raise SchemaError("", "no records in JSONL stream")
            else:
                with open(path) as f:
                    doc = json.load(f)
                validate(doc, schema, schema)
                check_latency_blocks(doc)
        except (OSError, json.JSONDecodeError, SchemaError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
