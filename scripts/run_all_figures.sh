#!/usr/bin/env bash
# Regenerate every figure/table of the reproduction. Quick scales by
# default; pass --full for the paper-scale sweeps (much slower).
#
#   scripts/run_all_figures.sh [--full] [build_dir]
set -euo pipefail

FULL=""
if [[ "${1:-}" == "--full" ]]; then
  FULL="--full"
  shift
fi
BUILD="${1:-build}"
OUT="results"
mkdir -p "$OUT"

BENCHES=(
  fig3_delivery_time
  fig4_injection_wait
  fig5_speedup
  fig6_efficiency
  fig7_rollbacks
  fig8_kp_event_rate
  determinism_check
  baseline_comparison
  flow_control_contrast
  ablation_state_saving
  ablation_mapping
  ablation_event_queue
  ablation_cancellation
  ablation_gvt_interval
  priority_census
  mesh_vs_torus
  traffic_patterns
  phold_sweep
  pcs_blocking
  conservative_vs_optimistic
)

# Benches that run the Time Warp kernel also record a live monitor stream
# (one JSON-lines heartbeat per GVT round) next to their BENCH_*.json.
MONITORED=(
  fig5_speedup
  fig6_efficiency
  fig7_rollbacks
  fig8_kp_event_rate
)

for b in "${BENCHES[@]}"; do
  echo "=== $b ==="
  MON=()
  for m in "${MONITORED[@]}"; do
    if [[ "$b" == "$m" ]]; then
      MON=(--monitor --monitor-out="$OUT/MONITOR_$b.jsonl")
      : > "$OUT/MONITOR_$b.jsonl"  # fresh stream per run (writer appends)
    fi
  done
  # Run each bench with explicit failure propagation: a non-zero bench (e.g.
  # determinism_check finding a divergence) must name itself and abort the
  # whole regeneration with its own exit code — never produce a partial
  # results/ tree that looks complete.
  set +e
  "$BUILD/bench/$b" $FULL --csv="$OUT/$b.csv" --json="$OUT/BENCH_$b.json" \
    "${MON[@]}" | tee "$OUT/$b.txt"
  rc=${PIPESTATUS[0]}
  set -e
  if [[ $rc -ne 0 ]]; then
    echo "FAILED: bench $b exited $rc" >&2
    exit "$rc"
  fi
  echo
done

if [[ -x scripts/check_bench_json.py ]] || [[ -f scripts/check_bench_json.py ]]; then
  echo "=== validating bench JSON ==="
  python3 scripts/check_bench_json.py "$OUT"/BENCH_*.json
fi

echo "=== micro_engine ==="
"$BUILD/bench/micro_engine" --benchmark_min_time=0.05 | tee "$OUT/micro_engine.txt"

echo
echo "All outputs in $OUT/"
