#!/usr/bin/env python3
"""Compare a fresh bench --json dump's headline against a committed baseline.

Usage:
    perf_delta.py CURRENT.json BASELINE.json [--max-regression=PCT]

Both files are bench/common.hpp-style dumps (validated by
check_bench_json.py against scripts/bench_json.schema.json); the `headline`
object maps figure-of-merit names to numbers (rates where higher is better,
*_ns costs where lower is better — the suffix decides the sign convention).

By default the script only reports the per-key delta (CI shared runners are
too noisy for a hard gate); with --max-regression=PCT it exits non-zero when
any key regresses by more than PCT percent.
"""

import argparse
import json
import sys


def load_headline(path):
    with open(path) as f:
        doc = json.load(f)
    headline = doc.get("headline")
    if not isinstance(headline, dict) or not headline:
        sys.exit(f"{path}: no headline object — nothing to compare")
    return headline


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if any headline key regresses by more than PCT percent",
    )
    args = ap.parse_args()

    cur = load_headline(args.current)
    base = load_headline(args.baseline)

    failures = []
    for key in sorted(base):
        if key not in cur:
            print(f"{key}: MISSING from {args.current}")
            failures.append(key)
            continue
        b, c = float(base[key]), float(cur[key])
        if b == 0:
            print(f"{key}: baseline is 0, skipping ({c:g} now)")
            continue
        # Rates (events_per_s) improve upward; costs (_ns) improve downward.
        lower_is_better = key.endswith("_ns")
        change = (c - b) / b * 100.0
        improvement = -change if lower_is_better else change
        tag = "improvement" if improvement >= 0 else "REGRESSION"
        print(f"{key}: {b:g} -> {c:g}  ({change:+.1f}%, {tag})")
        if args.max_regression is not None and improvement < -args.max_regression:
            failures.append(key)
    for key in sorted(set(cur) - set(base)):
        print(f"{key}: new key (no baseline), {float(cur[key]):g}")

    if failures:
        sys.exit(
            f"perf regression beyond {args.max_regression}% in: "
            + ", ".join(failures)
        )


if __name__ == "__main__":
    main()
