#!/usr/bin/env bash
# Crash-recovery smoke: run quickstart with --checkpoint, SIGKILL it
# mid-flight, --restore from the surviving images, and require the restored
# run's model statistics to be bit-identical to an uninterrupted run with
# the same seed. Engine counters are deliberately excluded from the diff:
# a restored run's RunStats cover only the continuation.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${QUICKSTART:-./build/examples/quickstart}
N=${N:-16}
STEPS=${STEPS:-400}
PES=${PES:-4}
SEED=${SEED:-3}
EVERY=${EVERY:-200000}
# GVT algorithm for every run in the smoke (barrier|epoch): checkpoint
# rounds anchor to epoch closes under mode=epoch, so CI runs both.
GVT_MODE=${GVT_MODE:-barrier}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Model statistics are lines 2-8 of the quickstart output. Line 1 names the
# kernel and everything after line 8 is engine/observability detail that is
# continuation-scoped after a restore.
stats() { sed -n '2,8p' "$1"; }

# Reference: the uninterrupted run.
"$BIN" --n="$N" --steps="$STEPS" --pes="$PES" --seed="$SEED" \
  --gvt=mode="$GVT_MODE" > "$WORK/ref.out"
stats "$WORK/ref.out" > "$WORK/ref.stats"

# Victim: same run, writing images; SIGKILL it as soon as one image exists
# so the kill lands mid-flight, not at the finish line.
"$BIN" --n="$N" --steps="$STEPS" --pes="$PES" --seed="$SEED" \
  --gvt=mode="$GVT_MODE" \
  --checkpoint=every="$EVERY",dir="$WORK/cks" > /dev/null 2>&1 &
VICTIM=$!
for _ in $(seq 1 400); do
  if ls "$WORK/cks"/ckpt-*.hpck > /dev/null 2>&1; then break; fi
  sleep 0.05
done
kill -KILL "$VICTIM" 2> /dev/null || true
wait "$VICTIM" 2> /dev/null || true
if ! ls "$WORK/cks"/ckpt-*.hpck > /dev/null 2>&1; then
  echo "crash-recovery smoke: no checkpoint image was ever written" >&2
  exit 1
fi
echo "killed run $VICTIM with $(ls "$WORK/cks" | wc -l) image(s) on disk"

# Restore from the latest surviving image and finish the run.
"$BIN" --n="$N" --steps="$STEPS" --pes="$PES" --seed="$SEED" \
  --gvt=mode="$GVT_MODE" --restore="$WORK/cks" > "$WORK/restored.out"
stats "$WORK/restored.out" > "$WORK/restored.stats"

diff -u "$WORK/ref.stats" "$WORK/restored.stats"
echo "crash-recovery smoke: restored run is bit-identical."
