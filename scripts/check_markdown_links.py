#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown tree.

Walks the given markdown files (default: README.md, DESIGN.md,
EXPERIMENTS.md, PAPER.md and everything under docs/) and verifies that
every relative link target exists on disk. External links (http/https/
mailto) and pure in-page anchors are skipped; a `path#anchor` link is
checked for the path only. Exits non-zero listing every broken link, so CI
catches a doc rename breaking the tree.

Usage: scripts/check_markdown_links.py [file.md ...]
"""

import os
import re
import sys

# Inline links [text](target) — excluding images is unnecessary (an image
# target must exist too). Reference-style definitions `[id]: target` are
# matched separately.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def default_files(root):
    files = []
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "PAPER.md"):
        p = os.path.join(root, name)
        if os.path.isfile(p):
            files.append(p)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for dirpath, _, names in os.walk(docs):
            files.extend(
                os.path.join(dirpath, n) for n in sorted(names)
                if n.endswith(".md"))
    return files


def check_file(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely contain (parenthesised) shell text that
    # is not a link; strip them before scanning.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    broken = []
    targets = INLINE.findall(text) + REFDEF.findall(text)
    base = os.path.dirname(os.path.abspath(path))
    for target in targets:
        if target.startswith(SKIP_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            broken.append((target, resolved))
    return broken


def main(argv):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = argv[1:] or default_files(root)
    total_broken = 0
    for path in files:
        for target, resolved in check_file(path):
            print(f"{path}: broken link '{target}' -> {resolved}")
            total_broken += 1
    if total_broken:
        print(f"\n{total_broken} broken link(s)")
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
