#!/usr/bin/env bash
# ThreadSanitizer gate for the Time Warp kernel: builds the tsan preset and
# runs the engine test binaries that exercise the lock-free remote event
# path (MPSC inbox, send batching, barrier GVT) under real PE threads.
# Any data race is a hard failure (halt_on_error).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset tsan
cmake --build build-tsan -j "$(nproc)" --target test_mpsc_queue test_timewarp test_engine_matrix test_chaos test_migration test_event_pool test_pending_set test_latency test_obs test_checkpoint test_gvt_epoch quickstart

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"
./build-tsan/tests/test_mpsc_queue
./build-tsan/tests/test_timewarp
./build-tsan/tests/test_engine_matrix
# Fault injection + flow control stress the same lock-free paths from new
# angles (held envelopes, blocked PEs, duplicated antis).
./build-tsan/tests/test_chaos
# KP migration moves state between PE threads at GVT commit points: the
# quiescence/handoff barriers and the shared OwnershipTable writes must be
# race-free under every chaos plan.
./build-tsan/tests/test_migration
# Slab pool recycling and the pending-set backends run single-threaded per
# PE, but migration adoption moves envelopes across pools — keep their unit
# suites in the gate so the adjust_live accounting stays clean too.
./build-tsan/tests/test_event_pool
./build-tsan/tests/test_pending_set
# Latency telemetry runs a background collector thread draining per-PE SPSC
# rings while the engines push; the hub unit suite plus the obs equivalence
# matrix (which runs every engine with telemetry armed) cover that path.
./build-tsan/tests/test_latency
./build-tsan/tests/test_obs
# Checkpointing rolls every KP back to the GVT fence, quiesces in-flight
# traffic and serializes from a single PE while the others are parked; the
# watchdog adds a polling monitor thread over relaxed-atomic beacons. Both
# must stay race-free.
./build-tsan/tests/test_checkpoint
# Epoch-based GVT replaces the round barriers with relaxed-atomic slot
# publishes, pop-time receive credits and a CAS-serialized close: the whole
# happens-before chain (cut release -> close acquire -> bookkeeping -> ack)
# must hold under real PE threads.
./build-tsan/tests/test_gvt_epoch

# Former cancellation-race repro (sub-ULP LadderQueue bucket geometry): long
# 4-PE runs that historically tripped HP_ASSERT pe.pending.erase(v) after
# thousands of GVT rounds. Five seeds keep the schedule-dependent window
# covered; any relapse shows up as an assert or a TSan report here.
for seed in 1 3 11 23 29; do
  ./build-tsan/examples/quickstart --n=32 --steps=4000 --pes=4 \
    --seed="$seed" > /dev/null
done

# The same long-horizon runs under the asynchronous epoch algorithm: the
# schedule-dependent close/cross interleavings only show up at scale.
for seed in 1 11 29; do
  ./build-tsan/examples/quickstart --n=32 --steps=4000 --pes=4 \
    --seed="$seed" --gvt=mode=epoch > /dev/null
done

echo "TSan: TimeWarp test suite clean."
