#include "core/simulation.hpp"

#include <algorithm>

#include "net/mapping.hpp"

namespace hp::core {

SimulationResult run_hotpotato(const SimulationOptions& opts) {
  hotpotato::HotPotatoConfig mcfg = opts.model;
  std::unique_ptr<hotpotato::BhwPolicy> default_policy;
  if (mcfg.policy == nullptr) {
    default_policy = std::make_unique<hotpotato::BhwPolicy>(mcfg.n);
    mcfg.policy = default_policy.get();
  }
  hotpotato::HotPotatoModel model(mcfg);

  des::EngineConfig ecfg = opts.engine;
  ecfg.num_lps = mcfg.num_lps();
  ecfg.end_time = mcfg.end_time();
  // KP auto-selection: the report's default of 64 KPs, but never fewer than
  // one per PE.
  if (ecfg.num_kps == 0) ecfg.num_kps = 64;
  ecfg.num_kps = std::max(ecfg.num_kps, ecfg.num_pes);

  // The torus-aware block mapping only matters to the Time Warp kernel (the
  // others partition by LP index regardless).
  std::unique_ptr<net::Mapping> mapping;
  if (opts.kernel == Kernel::TimeWarp) {
    if (opts.block_mapping) {
      mapping = std::make_unique<net::BlockMapping>(mcfg.n, ecfg.num_kps,
                                                    ecfg.num_pes);
    } else {
      mapping = std::make_unique<net::LinearMapping>(
          ecfg.num_lps, ecfg.num_kps, ecfg.num_pes);
    }
    ecfg.mapping = mapping.get();
  }

  std::unique_ptr<des::Engine> eng =
      des::make_engine(opts.kernel, model, ecfg, hotpotato::kCrossLpLookahead);
  SimulationResult result;
  result.engine = eng->run();
  result.model = hotpotato::collect_channel(*eng, mcfg.steps);
  result.report = hotpotato::report_from_channel(result.model);
  return result;
}

FlowControlResult run_flow_control(const SimulationOptions& opts) {
  fc::FlowControlConfig cfg = opts.fc;
  cfg.n = opts.model.n;
  cfg.topology = opts.model.topology;
  cfg.injector_fraction = opts.model.injector_fraction;
  cfg.traffic = opts.model.traffic;
  cfg.steps = opts.model.steps;
  cfg.selection_seed = opts.model.selection_seed;
  cfg.seed = opts.engine.seed;

  const std::unique_ptr<fc::FlowControlScheme> scheme =
      fc::FlowControlScheme::create(cfg);
  scheme->run();
  FlowControlResult result;
  result.model = scheme->collect_channel();
  result.report = fc::report_from_channel(result.model);
  return result;
}

}  // namespace hp::core
