#include "core/simulation.hpp"

#include "des/conservative.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "net/mapping.hpp"

namespace hp::core {

SimulationResult run_hotpotato(const SimulationOptions& opts) {
  hotpotato::HotPotatoConfig mcfg = opts.model;
  std::unique_ptr<hotpotato::BhwPolicy> default_policy;
  if (mcfg.policy == nullptr) {
    default_policy = std::make_unique<hotpotato::BhwPolicy>(mcfg.n);
    mcfg.policy = default_policy.get();
  }
  hotpotato::HotPotatoModel model(mcfg);

  des::EngineConfig ecfg;
  ecfg.num_lps = mcfg.num_lps();
  ecfg.end_time = mcfg.end_time();
  ecfg.seed = opts.seed;

  SimulationResult result;
  if (opts.kernel == Kernel::Sequential) {
    des::SequentialEngine eng(model, ecfg);
    result.engine = eng.run();
    result.report = hotpotato::collect_report(eng);
    return result;
  }
  if (opts.kernel == Kernel::Conservative) {
    ecfg.num_pes = opts.num_pes;
    ecfg.num_kps = std::max(opts.num_kps, opts.num_pes);
    des::ConservativeEngine eng(model, ecfg,
                                hotpotato::kCrossLpLookahead);
    result.engine = eng.run();
    result.report = hotpotato::collect_report(eng);
    return result;
  }

  ecfg.num_pes = opts.num_pes;
  ecfg.num_kps = opts.num_kps;
  ecfg.gvt_interval_events = opts.gvt_interval;
  ecfg.adaptive_gvt = opts.adaptive_gvt;
  ecfg.state_saving = opts.state_saving;
  ecfg.optimism_window = opts.optimism_window;
  ecfg.queue_kind = opts.queue_kind;
  ecfg.cancellation = opts.cancellation;
  std::unique_ptr<net::Mapping> mapping;
  if (opts.block_mapping) {
    mapping = std::make_unique<net::BlockMapping>(mcfg.n, opts.num_kps,
                                                  opts.num_pes);
  } else {
    mapping = std::make_unique<net::LinearMapping>(ecfg.num_lps, opts.num_kps,
                                                   opts.num_pes);
  }
  ecfg.mapping = mapping.get();
  des::TimeWarpEngine eng(model, ecfg);
  result.engine = eng.run();
  result.report = hotpotato::collect_report(eng);
  return result;
}

}  // namespace hp::core
