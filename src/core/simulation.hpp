#pragma once

// Public facade: configure and run a hot-potato torus simulation on either
// kernel with one call. This is the API the examples and the figure
// harnesses use; the underlying pieces (des::*, hotpotato::*) remain public
// for callers that need custom models or policies.

#include <cstdint>
#include <memory>

#include "buffered/flow_control.hpp"
#include "des/engine.hpp"
#include "hotpotato/model.hpp"
#include "hotpotato/stats.hpp"

namespace hp::core {

// The facade's kernel selector IS the engine-layer enumeration: one list of
// kernels, one exhaustive name function (a new enumerator without a name
// case fails to compile — see des::kind_name and the coverage test).
using Kernel = des::EngineKind;
inline constexpr auto& kAllKernels = des::kAllEngineKinds;

constexpr const char* kernel_name(Kernel k) noexcept {
  return des::kind_name(k);
}

struct SimulationOptions {
  hotpotato::HotPotatoConfig model;  // policy may be null => BHW default
  Kernel kernel = Kernel::Sequential;

  // Kernel configuration, embedded verbatim (seed, num_pes, num_kps,
  // gvt_interval_events, adaptive_gvt, state_saving, optimism_window,
  // queue_kind, cancellation, obs...). run_hotpotato fills the model-derived
  // fields (num_lps, end_time, mapping) itself; num_kps == 0 selects the
  // report default of 64 KPs. Anything set here reaches the engine without
  // a renamed mirror field in between — including the latency-telemetry
  // block (obs.telemetry / obs.metrics_endpoint / obs.metrics_out), which
  // every kernel honors and which never changes committed results.
  des::EngineConfig engine;

  bool block_mapping = true;  // false => linear stripes (ablation)

  // Flow-control contrast knobs (the --fc= spec): which buffered scheme
  // run_flow_control builds and its buffer/flit/credit geometry. The
  // network/workload half of fc is ignored here — run_flow_control fills it
  // from `model` (n, topology, injector_fraction, traffic, steps,
  // selection_seed) and `engine.seed`, so a buffered run and a hot-potato
  // run configured by the same options see the same network and workload.
  fc::FlowControlConfig fc;
};

struct SimulationResult {
  hotpotato::HpReport report;  // model-level statistics (view over `model`)
  obs::ModelChannel model;     // named model metrics (report/JSON pipeline)
  des::RunStats engine;        // kernel-level statistics
};

// Run one simulation to completion. Deterministic: the same options produce
// bit-identical reports on both kernels at any PE/KP count.
SimulationResult run_hotpotato(const SimulationOptions& opts);

struct FlowControlResult {
  fc::FcReport report;      // typed view over `model`
  obs::ModelChannel model;  // same named-metric pipeline as hot-potato runs
};

// Run the buffered contrast model selected by opts.fc.scheme on the network
// and workload described by opts.model (the synchronous stepper has no DES
// kernel, so opts.kernel/engine only contribute engine.seed). Deterministic:
// the same options produce bit-identical channels.
FlowControlResult run_flow_control(const SimulationOptions& opts);

}  // namespace hp::core
