#pragma once

// Public facade: configure and run a hot-potato torus simulation on either
// kernel with one call. This is the API the examples and the figure
// harnesses use; the underlying pieces (des::*, hotpotato::*) remain public
// for callers that need custom models or policies.

#include <cstdint>
#include <memory>

#include "des/engine.hpp"
#include "hotpotato/model.hpp"
#include "hotpotato/stats.hpp"

namespace hp::core {

enum class Kernel { Sequential, TimeWarp, Conservative };

constexpr const char* kernel_name(Kernel k) noexcept {
  switch (k) {
    case Kernel::Sequential: return "sequential";
    case Kernel::TimeWarp: return "timewarp";
    case Kernel::Conservative: return "conservative";
  }
  return "?";
}

struct SimulationOptions {
  hotpotato::HotPotatoConfig model;  // policy may be null => BHW default
  Kernel kernel = Kernel::Sequential;
  std::uint64_t seed = 1;

  // Time Warp parameters (report defaults: 64 KPs, block mapping).
  std::uint32_t num_pes = 1;
  std::uint32_t num_kps = 64;
  std::uint32_t gvt_interval = 4096;
  // Adaptive GVT pacing (commit-yield interval + idle backoff); false pins
  // the fixed gvt_interval / idle-spin thresholds (the ablation baseline).
  bool adaptive_gvt = true;
  bool state_saving = false;
  bool block_mapping = true;  // false => linear stripes (ablation)
  // Moving-window optimism throttle in virtual time units (see
  // des::EngineConfig::optimism_window); infinite = pure Time Warp.
  des::Time optimism_window = des::kTimeInf;
  // Pending-queue backend (splay tree = ROSS default).
  des::EngineConfig::QueueKind queue_kind = des::EngineConfig::QueueKind::Splay;
  // Cancellation strategy (aggressive = ROSS default; lazy reuses identical
  // re-sends so unchanged subtrees survive rollbacks).
  des::EngineConfig::Cancellation cancellation =
      des::EngineConfig::Cancellation::Aggressive;
};

struct SimulationResult {
  hotpotato::HpReport report;  // model-level statistics
  des::RunStats engine;        // kernel-level statistics
};

// Run one simulation to completion. Deterministic: the same options produce
// bit-identical reports on both kernels at any PE/KP count.
SimulationResult run_hotpotato(const SimulationOptions& opts);

}  // namespace hp::core
