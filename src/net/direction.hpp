#pragma once

// The four torus link directions. Row/column convention: North/South move
// along the column dimension (row index -1/+1), East/West along the row
// dimension (column index +1/-1), matching the report's LP numbering where
// "East" from LP x is LP x+1 with wraparound inside the row.

#include <array>
#include <cstdint>

namespace hp::net {

enum class Dir : std::uint8_t { North = 0, South = 1, East = 2, West = 3 };

inline constexpr std::array<Dir, 4> kAllDirs = {Dir::North, Dir::South,
                                                Dir::East, Dir::West};
inline constexpr int kNumDirs = 4;

constexpr Dir opposite(Dir d) noexcept {
  switch (d) {
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
    case Dir::East: return Dir::West;
    case Dir::West: return Dir::East;
  }
  return Dir::North;  // unreachable
}

constexpr const char* dir_name(Dir d) noexcept {
  switch (d) {
    case Dir::North: return "N";
    case Dir::South: return "S";
    case Dir::East: return "E";
    case Dir::West: return "W";
  }
  return "?";
}

constexpr int dir_index(Dir d) noexcept { return static_cast<int>(d); }

// Compact direction set (bitmask over the 4 directions).
class DirSet {
 public:
  constexpr DirSet() noexcept = default;

  constexpr void add(Dir d) noexcept {
    bits_ |= static_cast<std::uint8_t>(1u << dir_index(d));
  }
  constexpr void remove(Dir d) noexcept {
    bits_ &= static_cast<std::uint8_t>(~(1u << dir_index(d)));
  }
  constexpr bool contains(Dir d) const noexcept {
    return (bits_ >> dir_index(d)) & 1u;
  }
  constexpr bool empty() const noexcept { return bits_ == 0; }
  constexpr int size() const noexcept { return __builtin_popcount(bits_); }
  constexpr std::uint8_t bits() const noexcept { return bits_; }

  // k-th set direction in N,S,E,W order; k < size().
  constexpr Dir nth(int k) const noexcept {
    for (Dir d : kAllDirs) {
      if (contains(d)) {
        if (k == 0) return d;
        --k;
      }
    }
    return Dir::North;  // unreachable for valid k
  }

  constexpr bool operator==(const DirSet&) const noexcept = default;

 private:
  std::uint8_t bits_ = 0;
};

}  // namespace hp::net
