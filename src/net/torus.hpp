#pragma once

// Torus convenience wrapper over the general Grid (see grid.hpp): the
// wraparound N-by-N topology the report's simulation uses.

#include "net/grid.hpp"

namespace hp::net {

class Torus : public Grid {
 public:
  explicit constexpr Torus(std::int32_t n) : Grid(n, GridKind::Torus) {}
};

class Mesh : public Grid {
 public:
  explicit constexpr Mesh(std::int32_t n) : Grid(n, GridKind::Mesh) {}
};

}  // namespace hp::net
