#include "net/mapping.hpp"

#include <algorithm>
#include <numeric>

#include "net/direction.hpp"
#include "net/torus.hpp"

namespace hp::net {

std::pair<std::uint32_t, std::uint32_t> square_factor(std::uint32_t k) {
  HP_ASSERT(k >= 1, "cannot factor 0");
  std::uint32_t best = 1;
  for (std::uint32_t r = 1; r * r <= k; ++r) {
    if (k % r == 0) best = r;
  }
  return {best, k / best};
}

BlockMapping::BlockMapping(std::int32_t n, std::uint32_t num_kps,
                           std::uint32_t num_pes)
    : n_(n), num_pes_(num_pes) {
  HP_ASSERT(n >= 1 && num_kps >= 1 && num_pes >= 1, "bad mapping parameters");
  HP_ASSERT(num_kps <= static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n),
            "more KPs (%u) than LPs", num_kps);
  HP_ASSERT(num_pes <= num_kps, "more PEs (%u) than KPs (%u)", num_pes, num_kps);
  auto [r, c] = square_factor(num_kps);
  // Keep blocks as square as possible but never wider/taller than the torus.
  kp_rows_ = std::min<std::uint32_t>(r, static_cast<std::uint32_t>(n));
  kp_cols_ = num_kps / kp_rows_;
  HP_ASSERT(kp_rows_ * kp_cols_ == num_kps, "KP grid %ux%u != %u", kp_rows_,
            kp_cols_, num_kps);
  HP_ASSERT(kp_cols_ <= static_cast<std::uint32_t>(n),
            "KP grid column count %u exceeds torus dimension %d", kp_cols_, n);
}

std::uint32_t BlockMapping::kp_of(std::uint32_t lp) const noexcept {
  const std::uint32_t row = lp / static_cast<std::uint32_t>(n_);
  const std::uint32_t col = lp % static_cast<std::uint32_t>(n_);
  // Balanced block edges by integer scaling (no divisibility requirement).
  const std::uint32_t kr = row * kp_rows_ / static_cast<std::uint32_t>(n_);
  const std::uint32_t kc = col * kp_cols_ / static_cast<std::uint32_t>(n_);
  return kr * kp_cols_ + kc;
}

std::uint32_t BlockMapping::pe_of_kp(std::uint32_t kp) const noexcept {
  // Contiguous row-major runs of the KP grid per PE: PE regions are
  // horizontal bands, so only band boundaries cross PEs.
  return kp * num_pes_ / (kp_rows_ * kp_cols_);
}

LinearMapping::LinearMapping(std::uint32_t num_lps, std::uint32_t num_kps,
                             std::uint32_t num_pes)
    : num_lps_(num_lps), num_kps_(num_kps), num_pes_(num_pes) {
  HP_ASSERT(num_kps >= 1 && num_kps <= num_lps && num_pes >= 1 &&
                num_pes <= num_kps,
            "bad linear mapping parameters");
}

std::uint32_t LinearMapping::kp_of(std::uint32_t lp) const noexcept {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(lp) * num_kps_ / num_lps_);
}

std::uint32_t LinearMapping::pe_of_kp(std::uint32_t kp) const noexcept {
  return kp * num_pes_ / num_kps_;
}

RandomMapping::RandomMapping(std::uint32_t num_lps, std::uint32_t num_kps,
                             std::uint32_t num_pes, std::uint64_t seed)
    : num_kps_(num_kps), num_pes_(num_pes) {
  HP_ASSERT(num_kps >= 1 && num_kps <= num_lps && num_pes >= 1 &&
                num_pes <= num_kps,
            "bad random mapping parameters");
  // Balanced assignment: shuffle a round-robin fill so each KP gets
  // floor/ceil(num_lps/num_kps) LPs.
  lp_to_kp_.resize(num_lps);
  for (std::uint32_t lp = 0; lp < num_lps; ++lp) lp_to_kp_[lp] = lp % num_kps;
  util::ReversibleRng rng(seed);
  for (std::uint32_t i = num_lps; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng.integer(0, i - 1));
    std::swap(lp_to_kp_[i - 1], lp_to_kp_[j]);
  }
}

std::uint32_t RandomMapping::pe_of_kp(std::uint32_t kp) const noexcept {
  return kp * num_pes_ / num_kps_;
}

void OwnershipTable::reset(const Mapping& m) {
  const std::uint32_t lps = m.num_lps();
  const std::uint32_t kps = m.num_kps();
  kp_pe_.resize(kps);
  lp_pe_.resize(lps);
  kp_lps_.assign(kps, {});
  for (std::uint32_t kp = 0; kp < kps; ++kp) {
    kp_pe_[kp] = m.pe_of_kp(kp);
    HP_ASSERT(kp_pe_[kp] < m.num_pes(), "mapping returned PE out of range");
  }
  for (std::uint32_t lp = 0; lp < lps; ++lp) {
    const std::uint32_t kp = m.kp_of(lp);
    HP_ASSERT(kp < kps, "mapping returned KP out of range");
    lp_pe_[lp] = kp_pe_[kp];
    kp_lps_[kp].push_back(lp);
  }
  epoch_ = 0;
}

double inter_pe_link_fraction(const Mapping& m, std::int32_t n) {
  const Torus t(n);
  std::uint64_t cross = 0, total = 0;
  for (std::uint32_t lp = 0; lp < t.num_nodes(); ++lp) {
    for (Dir d : kAllDirs) {
      ++total;
      if (m.pe_of(lp) != m.pe_of(t.neighbor(lp, d))) ++cross;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(cross) / static_cast<double>(total);
}

}  // namespace hp::net
