#pragma once

// N-by-N grid topology in both variants the paper discusses (Section 1.1):
//  * Mesh  — the rectangular mesh the BHW theoretical analysis uses;
//    boundary routers have 2 or 3 links and the maximum distance is 2(N-1).
//  * Torus — the wraparound variant the simulation uses ("a more practical
//    implementation of essentially the same topology"); every router has 4
//    links and the maximum distance is 2*floor(N/2).
//
// Node ids are row-major like ROSS LP numbering: id = row * n + col; "East"
// from id is id+1 within the row (wrapping only on the torus).

#include <cstdint>

#include "net/direction.hpp"
#include "util/macros.hpp"

namespace hp::net {

struct Coord {
  std::int32_t row = 0;
  std::int32_t col = 0;
  constexpr bool operator==(const Coord&) const noexcept = default;
};

enum class GridKind : std::uint8_t { Torus, Mesh };

constexpr const char* grid_kind_name(GridKind k) noexcept {
  return k == GridKind::Torus ? "torus" : "mesh";
}

class Grid {
 public:
  constexpr Grid(std::int32_t n, GridKind kind) : n_(n), kind_(kind) {
    HP_ASSERT(n >= 2, "grid dimension must be >= 2, got %d", n);
  }

  constexpr std::int32_t n() const noexcept { return n_; }
  constexpr GridKind kind() const noexcept { return kind_; }
  constexpr bool wraps() const noexcept { return kind_ == GridKind::Torus; }
  constexpr std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(n_) * static_cast<std::uint32_t>(n_);
  }

  constexpr std::uint32_t id_of(Coord c) const noexcept {
    return static_cast<std::uint32_t>(c.row) * static_cast<std::uint32_t>(n_) +
           static_cast<std::uint32_t>(c.col);
  }
  constexpr Coord coord_of(std::uint32_t id) const noexcept {
    return Coord{static_cast<std::int32_t>(id) / n_,
                 static_cast<std::int32_t>(id) % n_};
  }

  // Links that physically exist at `id` (all four on a torus; edge/corner
  // mesh routers have fewer).
  constexpr DirSet available_dirs(std::uint32_t id) const noexcept {
    DirSet s;
    if (wraps()) {
      for (Dir d : kAllDirs) s.add(d);
      return s;
    }
    const Coord c = coord_of(id);
    if (c.row > 0) s.add(Dir::North);
    if (c.row < n_ - 1) s.add(Dir::South);
    if (c.col < n_ - 1) s.add(Dir::East);
    if (c.col > 0) s.add(Dir::West);
    return s;
  }

  constexpr bool has_link(std::uint32_t id, Dir d) const noexcept {
    return available_dirs(id).contains(d);
  }

  // Directed links in the whole network: every router drives kNumDirs links
  // on a torus (4n^2), while a mesh loses the boundary ones (each of the two
  // axes has n rows of n-1 bidirectional links: 4n(n-1) directed).
  constexpr std::uint32_t num_directed_links() const noexcept {
    const auto un = static_cast<std::uint32_t>(n_);
    return wraps() ? kNumDirs * un * un : kNumDirs * un * (un - 1);
  }

  // Neighbor across link `d`; the link must exist (see available_dirs).
  constexpr std::uint32_t neighbor(std::uint32_t id, Dir d) const noexcept {
    Coord c = coord_of(id);
    switch (d) {
      case Dir::North: c.row = wrap_or_clamp(c.row - 1); break;
      case Dir::South: c.row = wrap_or_clamp(c.row + 1); break;
      case Dir::East: c.col = wrap_or_clamp(c.col + 1); break;
      case Dir::West: c.col = wrap_or_clamp(c.col - 1); break;
    }
    return id_of(c);
  }

  // Shortest distance along one dimension.
  constexpr std::int32_t axis_distance(std::int32_t from,
                                       std::int32_t to) const noexcept {
    if (!wraps()) return to >= from ? to - from : from - to;
    const std::int32_t fwd = wrap(to - from);
    return fwd <= n_ - fwd ? fwd : n_ - fwd;
  }

  // Manhattan distance (shortest-path hop count).
  constexpr std::int32_t distance(std::uint32_t a, std::uint32_t b) const noexcept {
    const Coord ca = coord_of(a), cb = coord_of(b);
    return axis_distance(ca.row, cb.row) + axis_distance(ca.col, cb.col);
  }

  constexpr std::int32_t diameter() const noexcept {
    return wraps() ? 2 * (n_ / 2) : 2 * (n_ - 1);
  }

  // Directions that strictly reduce distance to `dst` ("good links"). On a
  // torus a coordinate difference of exactly n/2 makes both directions along
  // that axis good.
  constexpr DirSet good_dirs(std::uint32_t src, std::uint32_t dst) const noexcept {
    DirSet s;
    const Coord cs = coord_of(src), cd = coord_of(dst);
    if (wraps()) {
      const std::int32_t cf = wrap(cd.col - cs.col);  // steps going East
      if (cf != 0) {
        if (cf <= n_ - cf) s.add(Dir::East);
        if (n_ - cf <= cf) s.add(Dir::West);
      }
      const std::int32_t rf = wrap(cd.row - cs.row);  // steps going South
      if (rf != 0) {
        if (rf <= n_ - rf) s.add(Dir::South);
        if (n_ - rf <= rf) s.add(Dir::North);
      }
    } else {
      if (cd.col > cs.col) s.add(Dir::East);
      if (cd.col < cs.col) s.add(Dir::West);
      if (cd.row > cs.row) s.add(Dir::South);
      if (cd.row < cs.row) s.add(Dir::North);
    }
    return s;
  }

  // Home-run ("one-bend") path preference: follow the row first (move along
  // the column axis toward the destination column), then the column. Torus
  // ties at distance n/2 resolve East / South so each packet's home-run path
  // is a fixed path, as the algorithm requires.
  constexpr Dir home_run_dir(std::uint32_t src, std::uint32_t dst) const noexcept {
    const Coord cs = coord_of(src), cd = coord_of(dst);
    if (cs.col != cd.col) {
      if (!wraps()) return cd.col > cs.col ? Dir::East : Dir::West;
      const std::int32_t cf = wrap(cd.col - cs.col);
      return cf <= n_ - cf ? Dir::East : Dir::West;
    }
    if (!wraps()) return cd.row > cs.row ? Dir::South : Dir::North;
    const std::int32_t rf = wrap(cd.row - cs.row);
    return rf <= n_ - rf ? Dir::South : Dir::North;
  }

  // True when the packet at `src` heading to `dst` is at its home-run turn:
  // column aligned but row not yet. A Running packet is deflectable only
  // here.
  constexpr bool at_home_run_turn(std::uint32_t src, std::uint32_t dst) const noexcept {
    const Coord cs = coord_of(src), cd = coord_of(dst);
    return cs.col == cd.col && cs.row != cd.row;
  }

 private:
  constexpr std::int32_t wrap(std::int32_t v) const noexcept {
    v %= n_;
    return v < 0 ? v + n_ : v;
  }
  constexpr std::int32_t wrap_or_clamp(std::int32_t v) const noexcept {
    if (wraps()) return wrap(v);
    HP_ASSERT(v >= 0 && v < n_, "mesh neighbor across a missing link");
    return v;
  }

  std::int32_t n_;
  GridKind kind_;
};

}  // namespace hp::net
