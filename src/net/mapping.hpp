#pragma once

// LP -> KP -> PE mappings (report Section 3.2.3). The block mapping divides
// the torus into rectangular areas of LPs per KP and contiguous areas of KPs
// per PE, minimizing the boundary circumference and hence inter-PE /
// inter-KP communication. Linear and random mappings exist as ablation
// baselines (the report argues random assignment maximizes IPC).

#include <cstdint>
#include <memory>
#include <vector>

#include "util/macros.hpp"
#include "util/rng.hpp"

namespace hp::net {

class Mapping {
 public:
  virtual ~Mapping() = default;

  virtual std::uint32_t num_lps() const noexcept = 0;
  virtual std::uint32_t num_kps() const noexcept = 0;
  virtual std::uint32_t num_pes() const noexcept = 0;

  virtual std::uint32_t kp_of(std::uint32_t lp) const noexcept = 0;
  virtual std::uint32_t pe_of_kp(std::uint32_t kp) const noexcept = 0;

  std::uint32_t pe_of(std::uint32_t lp) const noexcept {
    return pe_of_kp(kp_of(lp));
  }
};

// Rectangular block decomposition of an n x n torus into a kp_rows x kp_cols
// grid of KP blocks; KPs are assigned to PEs in contiguous row-major runs of
// the KP grid. Works for any n/kp counts (blocks are balanced via integer
// scaling, no divisibility requirement).
class BlockMapping final : public Mapping {
 public:
  BlockMapping(std::int32_t n, std::uint32_t num_kps, std::uint32_t num_pes);

  std::uint32_t num_lps() const noexcept override {
    return static_cast<std::uint32_t>(n_) * static_cast<std::uint32_t>(n_);
  }
  std::uint32_t num_kps() const noexcept override { return kp_rows_ * kp_cols_; }
  std::uint32_t num_pes() const noexcept override { return num_pes_; }

  std::uint32_t kp_of(std::uint32_t lp) const noexcept override;
  std::uint32_t pe_of_kp(std::uint32_t kp) const noexcept override;

  std::uint32_t kp_rows() const noexcept { return kp_rows_; }
  std::uint32_t kp_cols() const noexcept { return kp_cols_; }

 private:
  std::int32_t n_;
  std::uint32_t kp_rows_, kp_cols_;
  std::uint32_t num_pes_;
};

// LPs assigned to KPs in contiguous id runs, KPs to PEs likewise. This is
// the "stripe" mapping: cheap, but each KP block has maximal horizontal
// boundary on a torus.
class LinearMapping final : public Mapping {
 public:
  LinearMapping(std::uint32_t num_lps, std::uint32_t num_kps,
                std::uint32_t num_pes);

  std::uint32_t num_lps() const noexcept override { return num_lps_; }
  std::uint32_t num_kps() const noexcept override { return num_kps_; }
  std::uint32_t num_pes() const noexcept override { return num_pes_; }

  std::uint32_t kp_of(std::uint32_t lp) const noexcept override;
  std::uint32_t pe_of_kp(std::uint32_t kp) const noexcept override;

 private:
  std::uint32_t num_lps_, num_kps_, num_pes_;
};

// Uniform random LP->KP assignment (seeded, balanced to within one LP);
// the worst case for locality, used by the mapping ablation bench.
class RandomMapping final : public Mapping {
 public:
  RandomMapping(std::uint32_t num_lps, std::uint32_t num_kps,
                std::uint32_t num_pes, std::uint64_t seed);

  std::uint32_t num_lps() const noexcept override {
    return static_cast<std::uint32_t>(lp_to_kp_.size());
  }
  std::uint32_t num_kps() const noexcept override { return num_kps_; }
  std::uint32_t num_pes() const noexcept override { return num_pes_; }

  std::uint32_t kp_of(std::uint32_t lp) const noexcept override {
    return lp_to_kp_[lp];
  }
  std::uint32_t pe_of_kp(std::uint32_t kp) const noexcept override;

 private:
  std::uint32_t num_kps_, num_pes_;
  std::vector<std::uint32_t> lp_to_kp_;
};

// Mutable KP/LP -> PE ownership with a version epoch, seeded from a static
// Mapping. The Time Warp kernel routes through this table instead of the
// immutable Mapping so runtime KP migration can re-home a KP (and all its
// LPs) in O(LPs-of-KP); `epoch` counts completed migration rounds so
// diagnostics (and tests) can tell which table generation produced a
// routing decision. The LP -> KP assignment never changes — a KP is the
// migration granule.
//
// Thread-safety contract (matches the kernel's stop-the-world handoff):
// set_kp_owner may be called concurrently for *distinct* KPs only, and only
// while every reader is parked between the handoff barriers; bump_epoch is
// single-writer. Plain loads/stores everywhere — the barriers publish.
class OwnershipTable {
 public:
  OwnershipTable() = default;

  // Rebuild from a static mapping (initial placement).
  void reset(const Mapping& m);

  std::uint32_t num_kps() const noexcept {
    return static_cast<std::uint32_t>(kp_pe_.size());
  }
  std::uint32_t num_lps() const noexcept {
    return static_cast<std::uint32_t>(lp_pe_.size());
  }

  std::uint32_t pe_of_kp(std::uint32_t kp) const noexcept { return kp_pe_[kp]; }
  std::uint32_t pe_of_lp(std::uint32_t lp) const noexcept { return lp_pe_[lp]; }
  const std::vector<std::uint32_t>& kp_owner() const noexcept { return kp_pe_; }
  // The LPs mapped to one KP (fixed for the run).
  const std::vector<std::uint32_t>& lps_of_kp(std::uint32_t kp) const noexcept {
    return kp_lps_[kp];
  }

  // Re-home one KP: rewrites the KP's entry and every one of its LPs'.
  void set_kp_owner(std::uint32_t kp, std::uint32_t pe) noexcept {
    kp_pe_[kp] = pe;
    for (const std::uint32_t lp : kp_lps_[kp]) lp_pe_[lp] = pe;
  }

  std::uint64_t epoch() const noexcept { return epoch_; }
  void bump_epoch() noexcept { ++epoch_; }

 private:
  std::vector<std::uint32_t> kp_pe_;
  std::vector<std::uint32_t> lp_pe_;
  std::vector<std::vector<std::uint32_t>> kp_lps_;
  std::uint64_t epoch_ = 0;
};

// Fraction of directed torus links whose endpoints live on different PEs —
// the locality metric the block mapping is designed to minimize.
double inter_pe_link_fraction(const Mapping& m, std::int32_t n);

// Choose a near-square factorization r x c = k with r <= c.
std::pair<std::uint32_t, std::uint32_t> square_factor(std::uint32_t k);

}  // namespace hp::net
