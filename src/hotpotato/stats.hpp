#pragma once

// System-wide statistics aggregation — the ROSS "statistics collection
// function" analogue (report Section 3.1.5): after the run, every router's
// reversible counters are published into an obs::ModelChannel (HpChannel
// names the metrics once; collect_channel folds the LPs in ascending order,
// so the double sums are bit-stable on every kernel and PE count), and
// HpReport is a typed view rebuilt from the channel. Model statistics ride
// the same report/JSON pipeline as the kernel metrics — there is no separate
// hand-rolled summing loop.

#include <array>
#include <cstdint>
#include <string>

#include "des/engine.hpp"
#include "hotpotato/router_state.hpp"
#include "net/grid.hpp"
#include "obs/model_channel.hpp"

namespace hp::hotpotato {

struct HpReport {
  std::uint64_t arrivals = 0;
  std::uint64_t routed = 0;
  std::uint64_t deflections = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t link_claims = 0;
  // Injectors whose pending packet never entered the network before the run
  // horizon, and the total steps those packets had waited by then. Both are
  // derived purely from final LP state plus the configured horizon — never
  // from execution order — so they are identical across engine kinds even
  // when a run ends with injectors mid-wait (the repeatability operator==
  // depends on this).
  std::uint64_t pending_waiting = 0;
  double pending_wait_steps = 0.0;

  double delivery_steps_sum = 0.0;
  double delivery_distance_sum = 0.0;
  double inject_wait_sum = 0.0;
  double max_inject_wait = 0.0;
  util::Histogram delivery_hist;  // merged per-router transit distributions

  // Priority census (report: higher states change routing at large N).
  std::array<std::uint64_t, 4> routed_by_prio{0, 0, 0, 0};
  std::uint64_t upgrades_to_active = 0;
  std::uint64_t upgrades_to_excited = 0;
  std::uint64_t promotions_to_running = 0;
  std::uint64_t demotions_to_active = 0;

  // Exact comparison (integers and double sums bit-for-bit): this is the
  // report's Attachment 3 repeatability check.
  bool operator==(const HpReport&) const = default;

  double avg_delivery_steps() const noexcept {
    return delivered == 0 ? 0.0
                          : delivery_steps_sum / static_cast<double>(delivered);
  }
  double avg_distance() const noexcept {
    return delivered == 0
               ? 0.0
               : delivery_distance_sum / static_cast<double>(delivered);
  }
  // Mean path inflation relative to the shortest path (>= 1 when packets
  // deflect).
  double stretch() const noexcept {
    return delivery_distance_sum == 0.0
               ? 0.0
               : delivery_steps_sum / delivery_distance_sum;
  }
  double avg_inject_wait() const noexcept {
    return injected == 0 ? 0.0
                         : inject_wait_sum / static_cast<double>(injected);
  }
  double deflection_rate() const noexcept {
    return routed == 0
               ? 0.0
               : static_cast<double>(deflections) / static_cast<double>(routed);
  }
  // Fraction of link-step slots actually used, over the topology's real
  // directed link count (a mesh has fewer than kNumDirs per router, so the
  // old 4*num_routers denominator under-reported mesh utilization).
  double link_utilization(const net::Grid& g,
                          std::uint32_t steps) const noexcept {
    const double slots = static_cast<double>(g.num_directed_links()) *
                         static_cast<double>(steps);
    return slots == 0.0 ? 0.0 : static_cast<double>(link_claims) / slots;
  }
  // Torus-shaped convenience (every router drives kNumDirs links).
  double link_utilization(std::uint32_t num_routers,
                          std::uint32_t steps) const noexcept {
    const double slots = static_cast<double>(net::kNumDirs) *
                         static_cast<double>(num_routers) *
                         static_cast<double>(steps);
    return slots == 0.0 ? 0.0 : static_cast<double>(link_claims) / slots;
  }

  // q-quantile of the delivery-time distribution, with the shared
  // interpolated-quantile semantics (util::interpolated_quantile): q is
  // clamped to [0,1], the empty histogram yields 0, q=0/q=1 pin to the
  // first/last occupied bin edge, and interior quantiles interpolate
  // linearly within their bin.
  double delivery_percentile(double q) const noexcept;

  std::string summary_line() const;
};

// Registers the hot-potato metric names on a ModelChannel (idempotent) and
// publishes one router's statistics per publish() call. `horizon_step` is
// the model's configured step count — the run horizon a mid-wait packet's
// wait-so-far is measured against.
class HpChannel {
 public:
  explicit HpChannel(obs::ModelChannel& ch);

  void publish(const RouterState& s, std::uint32_t horizon_step);

 private:
  obs::ModelChannel* ch_;
  obs::ModelChannel::Id arrivals_, routed_, deflections_, injected_,
      delivered_, link_claims_, pending_waiting_;
  obs::ModelChannel::Id pending_wait_steps_, delivery_steps_sum_,
      delivery_distance_sum_, inject_wait_sum_, max_inject_wait_;
  obs::ModelChannel::Id delivery_hist_;
  std::array<obs::ModelChannel::Id, 4> routed_by_prio_;
  obs::ModelChannel::Id upgrades_to_active_, upgrades_to_excited_,
      promotions_to_running_, demotions_to_active_;
};

// Fold every router into a fresh channel, in ascending LP order (bit-stable
// double sums on every kernel / PE count).
obs::ModelChannel collect_channel(const des::Engine& eng,
                                  std::uint32_t horizon_step);

// Typed view over a channel built by collect_channel.
HpReport report_from_channel(const obs::ModelChannel& ch);

// Convenience: collect_channel + report_from_channel.
HpReport collect_report(const des::Engine& eng, std::uint32_t horizon_step);

}  // namespace hp::hotpotato
