#pragma once

// System-wide statistics aggregation — the ROSS "statistics collection
// function" analogue (report Section 3.1.5): after the run, fold every
// router's counters into one report.

#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "hotpotato/router_state.hpp"

namespace hp::hotpotato {

struct HpReport {
  std::uint64_t arrivals = 0;
  std::uint64_t routed = 0;
  std::uint64_t deflections = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t link_claims = 0;
  std::uint64_t pending_waiting = 0;  // injectors with a packet still queued

  double delivery_steps_sum = 0.0;
  double delivery_distance_sum = 0.0;
  double inject_wait_sum = 0.0;
  double max_inject_wait = 0.0;
  util::Histogram delivery_hist;  // merged per-router transit distributions

  // Priority census (report: higher states change routing at large N).
  std::array<std::uint64_t, 4> routed_by_prio{0, 0, 0, 0};
  std::uint64_t upgrades_to_active = 0;
  std::uint64_t upgrades_to_excited = 0;
  std::uint64_t promotions_to_running = 0;
  std::uint64_t demotions_to_active = 0;

  // Exact comparison (integers and double sums bit-for-bit): this is the
  // report's Attachment 3 repeatability check.
  bool operator==(const HpReport&) const = default;

  double avg_delivery_steps() const noexcept {
    return delivered == 0 ? 0.0
                          : delivery_steps_sum / static_cast<double>(delivered);
  }
  double avg_distance() const noexcept {
    return delivered == 0
               ? 0.0
               : delivery_distance_sum / static_cast<double>(delivered);
  }
  // Mean path inflation relative to the shortest path (>= 1 when packets
  // deflect).
  double stretch() const noexcept {
    return delivery_distance_sum == 0.0
               ? 0.0
               : delivery_steps_sum / delivery_distance_sum;
  }
  double avg_inject_wait() const noexcept {
    return injected == 0 ? 0.0
                         : inject_wait_sum / static_cast<double>(injected);
  }
  double deflection_rate() const noexcept {
    return routed == 0
               ? 0.0
               : static_cast<double>(deflections) / static_cast<double>(routed);
  }
  // Fraction of link-step slots actually used.
  double link_utilization(std::uint32_t num_routers,
                          std::uint32_t steps) const noexcept {
    const double slots = 4.0 * static_cast<double>(num_routers) *
                         static_cast<double>(steps);
    return slots == 0.0 ? 0.0 : static_cast<double>(link_claims) / slots;
  }

  // q-quantile of the delivery-time distribution (q in [0,1]); returns the
  // lower edge of the bin containing the quantile.
  double delivery_percentile(double q) const noexcept;

  std::string summary_line() const;
};

// Aggregate from any engine exposing state(lp) / num_lps() (both kernels do).
template <typename Engine>
HpReport collect_report(Engine& eng) {
  HpReport r;
  r.max_inject_wait = -std::numeric_limits<double>::infinity();
  bool any_injected = false;
  for (std::uint32_t lp = 0; lp < eng.num_lps(); ++lp) {
    const auto& s = static_cast<const RouterState&>(eng.state(lp));
    if (lp == 0) r.delivery_hist = s.delivery_hist;  // adopt bin layout
    else r.delivery_hist.merge(s.delivery_hist);
    r.arrivals += s.arrivals;
    r.routed += s.routed;
    r.deflections += s.deflections;
    r.injected += s.injected;
    r.delivered += s.delivered;
    r.link_claims += s.link_claims;
    r.pending_waiting += s.has_pending ? 1 : 0;
    for (std::size_t i = 0; i < 4; ++i) r.routed_by_prio[i] += s.routed_by_prio[i];
    r.upgrades_to_active += s.upgrades_to_active;
    r.upgrades_to_excited += s.upgrades_to_excited;
    r.promotions_to_running += s.promotions_to_running;
    r.demotions_to_active += s.demotions_to_active;
    r.delivery_steps_sum += s.delivery_steps.sum();
    r.delivery_distance_sum += s.delivery_distance.sum();
    r.inject_wait_sum += s.inject_wait.sum();
    if (s.injected > 0) {
      any_injected = true;
      r.max_inject_wait = std::max(r.max_inject_wait, s.max_inject_wait.value());
    }
  }
  if (!any_injected) r.max_inject_wait = 0.0;
  return r;
}

}  // namespace hp::hotpotato
