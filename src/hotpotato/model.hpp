#pragma once

// The hot-potato routing model: an N x N torus of bufferless routers running
// a deflection-routing policy under dynamic packet injection (report
// Sections 1 and 3).
//
// Event flow within one time step s (virtual time [10s, 10(s+1))):
//   10s + jitter            ARRIVE  packets land from neighbors (jitter in
//                                   {0.1..0.5}, per packet, fixed at birth)
//   10s + offset + jitter/10 ROUTE  staggered by priority: the router claims
//                                   an out-link per packet, highest priority
//                                   first, and forwards an ARRIVE at s+1
//   10s + 6                  INJECT injector routers attempt one packet per
//                                   step; succeeds iff a link is still free
//
// The network is initialized full (four packets per router, report 3.3.1);
// with injector_fraction == 0 this is the one-shot / static configuration.

#include <cstdint>
#include <memory>

#include "des/model.hpp"
#include "hotpotato/packet.hpp"
#include "hotpotato/policy.hpp"
#include "hotpotato/router_state.hpp"
#include "hotpotato/traffic.hpp"
#include "net/torus.hpp"

namespace hp::hotpotato {

struct HotPotatoConfig {
  std::int32_t n = 8;              // grid dimension (N x N routers)
  // Torus (the report's simulation) or Mesh (the BHW analysis topology).
  net::GridKind topology = net::GridKind::Torus;
  double injector_fraction = 0.5;  // report's probability_i (0..1)
  // Destination pattern for injected (and initial) packets.
  TrafficPattern traffic = TrafficPattern::Uniform;
  bool absorb_sleeping = true;     // false = proof-verification mode (3.3.1)
  // Seed the network full at startup (one packet per directed link — the
  // physical maximum for a bufferless network; report 3.3.1). With
  // injector_fraction == 0 this is the one-shot / static configuration.
  bool full_init = true;
  std::uint32_t steps = 100;       // simulation duration in time steps
  // Seed for structural choices (which routers inject); separate from the
  // engine seed so the same topology can run under different event streams.
  std::uint64_t selection_seed = 0x5eedU;
  const RoutingPolicy* policy = nullptr;  // required; not owned

  double end_time() const noexcept {
    return static_cast<double>(steps) * kStep + kStep - 1.0;
  }
  std::uint32_t num_lps() const noexcept {
    return static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);
  }
};

class HotPotatoModel final : public des::Model {
 public:
  explicit HotPotatoModel(HotPotatoConfig cfg);

  std::unique_ptr<des::LpState> make_state(std::uint32_t lp) override;
  void init_lp(std::uint32_t lp, des::InitContext& ctx) override;
  void forward(des::LpState& state, des::Event& ev, des::Context& ctx) override;
  void reverse(des::LpState& state, des::Event& ev, des::Context& ctx) override;

  const HotPotatoConfig& config() const noexcept { return cfg_; }
  const net::Grid& grid() const noexcept { return grid_; }
  bool lp_is_injector(std::uint32_t lp) const;

 private:
  void handle_arrive(RouterState& s, des::Event& ev, des::Context& ctx);
  void reverse_arrive(RouterState& s, des::Event& ev, des::Context& ctx);
  void handle_route(RouterState& s, des::Event& ev, des::Context& ctx);
  void reverse_route(RouterState& s, des::Event& ev, des::Context& ctx);
  void handle_inject(RouterState& s, des::Event& ev, des::Context& ctx);
  void reverse_inject(RouterState& s, des::Event& ev, des::Context& ctx);

  net::DirSet free_links(const RouterState& s, std::uint32_t step,
                          std::uint32_t lp) const;

  HotPotatoConfig cfg_;
  net::Grid grid_;
};

}  // namespace hp::hotpotato
