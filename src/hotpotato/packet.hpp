#pragma once

// Packet representation for the hot-potato routing model.
//
// As in the report (Section 3.1.2), a packet exists only inside messages:
// routers are bufferless, so the "network" is the set of in-flight ARRIVE
// events plus per-router link claims. The message struct carries the optical
// label (destination + priority), per-packet jitter, bookkeeping for
// statistics, and the ROSS-style "Saved_" scratch fields reverse handlers
// restore from.

#include <cstdint>

#include "des/event.hpp"

namespace hp::hotpotato {

// One synchronous network time step spans 10 virtual time units, matching
// the report's code (ts = 10 + jitter). Sub-step offsets order ARRIVE (<1),
// ROUTE (1..5, staggered by priority), and INJECT (6) within a step.
inline constexpr double kStep = 10.0;
inline constexpr double kInjectOffset = 6.0;
// Minimum delay of any cross-LP message the model sends (the conservative
// kernel's lookahead): an injected packet's first ARRIVE departs at offset 6
// and lands at the next step's start, 4 + jitter time units later; routed
// ARRIVEs have >= 5.2. A bound of 4.0 is safe for every path.
inline constexpr double kCrossLpLookahead = 4.0;

enum class HpEvent : std::uint8_t { Arrive, Route, Inject, Heartbeat };

// BHW priority states, lowest to highest (report Section 1.2.4).
enum class Priority : std::uint8_t {
  Sleeping = 0,
  Active = 1,
  Excited = 2,
  Running = 3,
};

constexpr const char* priority_name(Priority p) noexcept {
  switch (p) {
    case Priority::Sleeping: return "Sleeping";
    case Priority::Active: return "Active";
    case Priority::Excited: return "Excited";
    case Priority::Running: return "Running";
  }
  return "?";
}

struct HpMsg {
  HpEvent type = HpEvent::Arrive;
  Priority prio = Priority::Sleeping;
  // Randomized arrival offset in tenths of a time unit (1..5), drawn at
  // injection and carried for the packet's lifetime — the report's
  // determinism device (Section 3.2.2).
  std::uint8_t jitter_idx = 1;
  std::uint16_t dst_row = 0;
  std::uint16_t dst_col = 0;
  std::uint32_t birth_step = 0;        // first step the packet is in the network
  std::uint32_t hops = 0;              // links traversed so far
  std::uint16_t initial_distance = 0;  // torus distance source -> destination

  // --- reverse-computation scratch (the ROSS Saved_* idiom) ---
  std::uint8_t saved_rng_draws = 0;   // stream draws this event consumed
  std::uint8_t saved_prio = 0;        // priority before this ROUTE
  std::int8_t saved_dir = -1;         // link claimed by this event
  std::uint8_t saved_created = 0;     // INJECT: new pending packet was created
  std::uint8_t saved_injected = 0;    // INJECT: the packet entered the network
  std::uint8_t saved_deflected = 0;   // ROUTE: the decision was a deflection
  std::uint32_t saved_link_step = 0;  // displaced link_claim_step value
  std::uint32_t saved_u32 = 0;        // INJECT: displaced pending_since_step
  // INJECT create path: destination of the *previous* pending packet. Those
  // fields look dead once that packet injected, but the injecting event's
  // reverse resurrects the packet, so the displaced values must survive a
  // later create's overwrite.
  std::uint16_t saved_pend_row = 0;
  std::uint16_t saved_pend_col = 0;
  double saved_stat = 0.0;            // displaced RunningMax value

  double jitter() const noexcept { return 0.1 * jitter_idx; }
};
static_assert(sizeof(HpMsg) <= des::kMaxPayload);
static_assert(std::is_trivially_copyable_v<HpMsg>);

constexpr std::uint32_t step_of(double ts) noexcept {
  return static_cast<std::uint32_t>(ts / kStep);
}
constexpr double step_start(std::uint32_t step) noexcept {
  return static_cast<double>(step) * kStep;
}

}  // namespace hp::hotpotato
