#include "hotpotato/stats.hpp"

#include <cstdio>

namespace hp::hotpotato {

double HpReport::delivery_percentile(double q) const noexcept {
  const auto& counts = delivery_hist.counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum > target) return delivery_hist.bin_lo(i);
  }
  return delivery_hist.bin_lo(counts.size() - 1);
}

std::string HpReport::summary_line() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "delivered=%llu injected=%llu avg_delivery=%.3f "
                "avg_wait=%.3f max_wait=%.0f stretch=%.3f deflect=%.4f",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(injected),
                avg_delivery_steps(), avg_inject_wait(), max_inject_wait,
                stretch(), deflection_rate());
  return buf;
}

}  // namespace hp::hotpotato
