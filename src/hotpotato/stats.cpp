#include "hotpotato/stats.hpp"

#include <cstdio>

#include "util/macros.hpp"

namespace hp::hotpotato {

HpChannel::HpChannel(obs::ModelChannel& ch) : ch_(&ch) {
  arrivals_ = ch.counter("arrivals");
  routed_ = ch.counter("routed");
  deflections_ = ch.counter("deflections");
  injected_ = ch.counter("injected");
  delivered_ = ch.counter("delivered");
  link_claims_ = ch.counter("link_claims");
  pending_waiting_ = ch.counter("pending_waiting");
  pending_wait_steps_ = ch.real("pending_wait_steps");
  delivery_steps_sum_ = ch.real("delivery_steps_sum");
  delivery_distance_sum_ = ch.real("delivery_distance_sum");
  inject_wait_sum_ = ch.real("inject_wait_sum");
  max_inject_wait_ = ch.real_max("max_inject_wait");
  delivery_hist_ = ch.hist("delivery_hist");
  static constexpr const char* kPrioNames[4] = {
      "routed_prio_sleeping", "routed_prio_active", "routed_prio_excited",
      "routed_prio_running"};
  for (std::size_t i = 0; i < 4; ++i) {
    routed_by_prio_[i] = ch.counter(kPrioNames[i]);
  }
  upgrades_to_active_ = ch.counter("upgrades_to_active");
  upgrades_to_excited_ = ch.counter("upgrades_to_excited");
  promotions_to_running_ = ch.counter("promotions_to_running");
  demotions_to_active_ = ch.counter("demotions_to_active");
}

void HpChannel::publish(const RouterState& s, std::uint32_t horizon_step) {
  ch_->add(arrivals_, s.arrivals);
  ch_->add(routed_, s.routed);
  ch_->add(deflections_, s.deflections);
  ch_->add(injected_, s.injected);
  ch_->add(delivered_, s.delivered);
  ch_->add(link_claims_, s.link_claims);
  // Mid-wait accounting: only injector LPs can hold a pending packet, and
  // its wait-so-far is pinned to the run horizon (not to however far an
  // optimistic PE happened to execute), so every kernel publishes the same
  // values for the same final state.
  if (s.is_injector && s.has_pending) {
    HP_ASSERT(s.pending_since_step <= horizon_step,
              "pending packet created past the run horizon (%u > %u)",
              s.pending_since_step, horizon_step);
    ch_->add(pending_waiting_, 1);
    ch_->add_real(pending_wait_steps_,
                  static_cast<double>(horizon_step - s.pending_since_step));
  }
  ch_->add_real(delivery_steps_sum_, s.delivery_steps.sum());
  ch_->add_real(delivery_distance_sum_, s.delivery_distance.sum());
  ch_->add_real(inject_wait_sum_, s.inject_wait.sum());
  // Guarded by injected: a router that never injected holds the -inf
  // RunningMax sentinel, which must not leak into the maximum. A channel
  // RealMax that is never pushed reads back as a plain 0.0 — no sentinel
  // fix-up pass, same value on every kernel.
  if (s.injected > 0) ch_->push_max(max_inject_wait_, s.max_inject_wait.value());
  ch_->merge_hist(delivery_hist_, s.delivery_hist);
  for (std::size_t i = 0; i < 4; ++i) {
    ch_->add(routed_by_prio_[i], s.routed_by_prio[i]);
  }
  ch_->add(upgrades_to_active_, s.upgrades_to_active);
  ch_->add(upgrades_to_excited_, s.upgrades_to_excited);
  ch_->add(promotions_to_running_, s.promotions_to_running);
  ch_->add(demotions_to_active_, s.demotions_to_active);
}

obs::ModelChannel collect_channel(const des::Engine& eng,
                                  std::uint32_t horizon_step) {
  obs::ModelChannel ch;
  HpChannel hc(ch);
  for (std::uint32_t lp = 0; lp < eng.num_lps(); ++lp) {
    hc.publish(static_cast<const RouterState&>(eng.state(lp)), horizon_step);
  }
  return ch;
}

HpReport report_from_channel(const obs::ModelChannel& ch) {
  HpReport r;
  r.arrivals = ch.counter_value("arrivals");
  r.routed = ch.counter_value("routed");
  r.deflections = ch.counter_value("deflections");
  r.injected = ch.counter_value("injected");
  r.delivered = ch.counter_value("delivered");
  r.link_claims = ch.counter_value("link_claims");
  r.pending_waiting = ch.counter_value("pending_waiting");
  r.pending_wait_steps = ch.real_value("pending_wait_steps");
  r.delivery_steps_sum = ch.real_value("delivery_steps_sum");
  r.delivery_distance_sum = ch.real_value("delivery_distance_sum");
  r.inject_wait_sum = ch.real_value("inject_wait_sum");
  r.max_inject_wait = ch.real_value("max_inject_wait");
  if (const util::Histogram* h = ch.hist_value("delivery_hist")) {
    r.delivery_hist = *h;
  }
  static constexpr const char* kPrioNames[4] = {
      "routed_prio_sleeping", "routed_prio_active", "routed_prio_excited",
      "routed_prio_running"};
  for (std::size_t i = 0; i < 4; ++i) {
    r.routed_by_prio[i] = ch.counter_value(kPrioNames[i]);
  }
  r.upgrades_to_active = ch.counter_value("upgrades_to_active");
  r.upgrades_to_excited = ch.counter_value("upgrades_to_excited");
  r.promotions_to_running = ch.counter_value("promotions_to_running");
  r.demotions_to_active = ch.counter_value("demotions_to_active");
  return r;
}

HpReport collect_report(const des::Engine& eng, std::uint32_t horizon_step) {
  return report_from_channel(collect_channel(eng, horizon_step));
}

double HpReport::delivery_percentile(double q) const noexcept {
  // Routed through the shared interpolating quantile (util::Histogram::
  // quantile) so the model's percentiles agree with the telemetry layer's:
  // the old version returned the raw lower bin edge with no interpolation
  // and was unpinned at the edges.
  return delivery_hist.quantile(q);
}

std::string HpReport::summary_line() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "delivered=%llu injected=%llu avg_delivery=%.3f "
                "avg_wait=%.3f max_wait=%.0f stretch=%.3f deflect=%.4f",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(injected),
                avg_delivery_steps(), avg_inject_wait(), max_inject_wait,
                stretch(), deflection_rate());
  return buf;
}

}  // namespace hp::hotpotato
