#include "hotpotato/policy.hpp"

namespace hp::hotpotato {

RouteDecision BhwPolicy::route(const net::Grid& t, const HpMsg& m,
                               std::uint32_t here, net::DirSet free,
                               util::ReversibleRng& rng) const {
  const std::uint32_t dst =
      t.id_of({static_cast<std::int32_t>(m.dst_row),
               static_cast<std::int32_t>(m.dst_col)});
  const net::DirSet good = t.good_dirs(here, dst);

  RouteDecision d;
  d.rng_draws = 0;

  // Desired links: the greedy set for Sleeping/Active, the single home-run
  // link for Excited/Running.
  net::DirSet desired;
  if (m.prio >= Priority::Excited) {
    HP_ASSERT(here != dst, "excited/running packet routed at its destination");
    desired.add(t.home_run_dir(here, dst));
  } else {
    desired = good;
  }

  net::DirSet candidates;
  for (net::Dir dir : net::kAllDirs) {
    if (desired.contains(dir) && free.contains(dir)) candidates.add(dir);
  }

  if (!candidates.empty()) {
    d.dir = pick_uniform(candidates, rng, d.rng_draws);
    d.deflected = false;
  } else {
    d.dir = pick_deflection(good, free, rng, d.rng_draws);
    d.deflected = true;
  }

  // Priority transitions (report Section 1.2.4).
  d.new_priority = m.prio;
  switch (m.prio) {
    case Priority::Sleeping:
      // "When a sleeping packet is routed, it is given a chance ... to
      // upgrade" — on every routing, deflected or not.
      if (rng.uniform() < p_sleep_up_) d.new_priority = Priority::Active;
      ++d.rng_draws;
      break;
    case Priority::Active:
      if (d.deflected) {
        if (rng.uniform() < p_active_up_) d.new_priority = Priority::Excited;
        ++d.rng_draws;
      }
      break;
    case Priority::Excited:
      // At most one step excited: home-run success promotes, deflection
      // demotes.
      d.new_priority = d.deflected ? Priority::Active : Priority::Running;
      break;
    case Priority::Running:
      // The algorithm guarantees a running packet is only ever deflected
      // while turning (by another running packet); mechanically we demote on
      // any deflection.
      if (d.deflected) d.new_priority = Priority::Active;
      break;
  }
  return d;
}

}  // namespace hp::hotpotato
