#include "hotpotato/model.hpp"

#include "util/hash.hpp"

namespace hp::hotpotato {

HotPotatoModel::HotPotatoModel(HotPotatoConfig cfg)
    : cfg_(cfg), grid_(cfg.n, cfg.topology) {
  HP_ASSERT(cfg_.policy != nullptr, "HotPotatoConfig.policy is required");
  HP_ASSERT(cfg_.injector_fraction >= 0.0 && cfg_.injector_fraction <= 1.0,
            "injector_fraction out of [0,1]: %f", cfg_.injector_fraction);
  HP_ASSERT(cfg_.steps >= 1, "need at least one step");
}

bool HotPotatoModel::lp_is_injector(std::uint32_t lp) const {
  if (cfg_.injector_fraction <= 0.0) return false;
  if (cfg_.injector_fraction >= 1.0) return true;
  // Deterministic per-LP coin independent of the event stream: the report's
  // probability_i semantics (each router is an injector with probability
  // X/100).
  const std::uint64_t h = util::splitmix64(
      util::hash_combine(cfg_.selection_seed, lp));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < cfg_.injector_fraction;
}

std::unique_ptr<des::LpState> HotPotatoModel::make_state(std::uint32_t lp) {
  auto s = std::make_unique<RouterState>();
  s->is_injector = lp_is_injector(lp);
  // 1-step bins out to 4x the diameter; deflection tails land in the
  // clamped last bin.
  s->delivery_hist = util::Histogram(
      0.0, 1.0, static_cast<std::size_t>(4 * grid_.diameter()) + 2);
  return s;
}

void HotPotatoModel::init_lp(std::uint32_t lp, des::InitContext& ctx) {
  if (cfg_.full_init) {
    // Report 3.3.1: the network starts full — one packet leaving on each
    // out-link, so every router's in-links are saturated at step 1 (four on
    // a torus; fewer for mesh boundary routers).
    const net::DirSet avail = grid_.available_dirs(lp);
    for (net::Dir d : net::kAllDirs) {
      if (!avail.contains(d)) continue;
      const std::uint32_t dst =
          draw_traffic_destination(grid_, cfg_.traffic, lp, ctx.rng()).dst;
      const auto dst_c = grid_.coord_of(dst);
      HpMsg m;
      m.type = HpEvent::Arrive;
      m.prio = cfg_.policy->initial_priority();
      m.jitter_idx = static_cast<std::uint8_t>(ctx.rng().integer(1, 5));
      m.dst_row = static_cast<std::uint16_t>(dst_c.row);
      m.dst_col = static_cast<std::uint16_t>(dst_c.col);
      m.birth_step = 1;
      m.hops = 1;
      m.initial_distance = static_cast<std::uint16_t>(grid_.distance(lp, dst));
      ctx.schedule(grid_.neighbor(lp, d), kStep + m.jitter(), m);
    }
  }
  if (lp_is_injector(lp)) {
    HpMsg m;
    m.type = HpEvent::Inject;
    ctx.schedule(lp, kStep + kInjectOffset, m);
  }
}

net::DirSet HotPotatoModel::free_links(const RouterState& s,
                                       std::uint32_t step,
                                       std::uint32_t lp) const {
  // Physically present links not yet claimed this step.
  net::DirSet free;
  const net::DirSet avail = grid_.available_dirs(lp);
  for (net::Dir d : net::kAllDirs) {
    if (avail.contains(d) && s.link_claim_step[net::dir_index(d)] != step) {
      free.add(d);
    }
  }
  return free;
}

void HotPotatoModel::forward(des::LpState& state, des::Event& ev,
                             des::Context& ctx) {
  auto& s = static_cast<RouterState&>(state);
  switch (ev.msg<HpMsg>().type) {
    case HpEvent::Arrive: handle_arrive(s, ev, ctx); break;
    case HpEvent::Route: handle_route(s, ev, ctx); break;
    case HpEvent::Inject: handle_inject(s, ev, ctx); break;
    case HpEvent::Heartbeat: {
      // Administrative pulse (report 3.1.4); our bookkeeping needs none, so
      // the handler only keeps the pulse alive for configurations that
      // schedule one.
      HpMsg next = ev.msg<HpMsg>();
      ctx.send(ctx.self(), kStep, next);
      break;
    }
  }
}

void HotPotatoModel::reverse(des::LpState& state, des::Event& ev,
                             des::Context& ctx) {
  auto& s = static_cast<RouterState&>(state);
  switch (ev.msg<HpMsg>().type) {
    case HpEvent::Arrive: reverse_arrive(s, ev, ctx); break;
    case HpEvent::Route: reverse_route(s, ev, ctx); break;
    case HpEvent::Inject: reverse_inject(s, ev, ctx); break;
    case HpEvent::Heartbeat: break;  // child cancelled by the engine
  }
}

void HotPotatoModel::handle_arrive(RouterState& s, des::Event& ev,
                                   des::Context& ctx) {
  auto& m = ev.msg<HpMsg>();
  ++s.arrivals;
  const std::uint32_t here = ctx.self();
  const std::uint32_t dst =
      grid_.id_of({static_cast<std::int32_t>(m.dst_row),
                    static_cast<std::int32_t>(m.dst_col)});
  const bool absorb =
      dst == here && (cfg_.absorb_sleeping || m.prio != Priority::Sleeping);
  if (absorb) {
    // Delivery: record and drop (bufferless absorption).
    ++s.delivered;
    s.delivery_steps.add(static_cast<double>(m.hops));
    s.delivery_distance.add(static_cast<double>(m.initial_distance));
    s.delivery_hist.add(static_cast<double>(m.hops));
    return;
  }
  const std::uint32_t step = step_of(ev.key.ts);
  HpMsg r = m;
  r.type = HpEvent::Route;
  const double route_ts =
      step_start(step) + cfg_.policy->route_offset(m, step) + m.jitter() / 10.0;
  ctx.send(here, route_ts - ev.key.ts, r);
}

void HotPotatoModel::reverse_arrive(RouterState& s, des::Event& ev,
                                    des::Context&) {
  const auto& m = ev.msg<HpMsg>();
  const std::uint32_t here = ev.key.dst_lp;
  const std::uint32_t dst =
      grid_.id_of({static_cast<std::int32_t>(m.dst_row),
                    static_cast<std::int32_t>(m.dst_col)});
  const bool absorb =
      dst == here && (cfg_.absorb_sleeping || m.prio != Priority::Sleeping);
  if (absorb) {
    s.delivery_hist.remove(static_cast<double>(m.hops));
    s.delivery_distance.remove(static_cast<double>(m.initial_distance));
    s.delivery_steps.remove(static_cast<double>(m.hops));
    --s.delivered;
  }
  --s.arrivals;
}

void HotPotatoModel::handle_route(RouterState& s, des::Event& ev,
                                  des::Context& ctx) {
  auto& m = ev.msg<HpMsg>();
  const std::uint32_t here = ctx.self();
  const std::uint32_t step = step_of(ev.key.ts);
  net::DirSet free = free_links(s, step, here);
  if (HP_UNLIKELY(free.empty())) {
    // In any causally consistent execution at most 4 packets route per step
    // over 4 links, so a free link always exists. Under lazy cancellation,
    // however, a stale (not-yet-cancelled) sibling can transiently occupy a
    // link alongside its replacement; such an execution is doomed to roll
    // back, and the handler must merely stay well-defined and reversible:
    // route over any physically present link (the double claim is undone
    // exactly by the saved link state).
    free = grid_.available_dirs(here);
  }

  const RouteDecision d =
      cfg_.policy->route(grid_, m, here, free, ctx.rng());

  m.saved_rng_draws = d.rng_draws;
  m.saved_prio = static_cast<std::uint8_t>(m.prio);
  m.saved_deflected = d.deflected ? 1 : 0;
  m.saved_dir = static_cast<std::int8_t>(net::dir_index(d.dir));
  m.saved_link_step = s.link_claim_step[net::dir_index(d.dir)];

  s.link_claim_step[net::dir_index(d.dir)] = step;
  ++s.link_claims;
  ++s.routed;
  if (d.deflected) ++s.deflections;
  ++s.routed_by_prio[static_cast<std::size_t>(m.prio)];
  // Transition census, fully recomputable in reverse from (saved_prio, prio).
  if (m.prio != d.new_priority) {
    switch (d.new_priority) {
      case Priority::Active:
        if (m.prio == Priority::Sleeping) ++s.upgrades_to_active;
        else ++s.demotions_to_active;
        break;
      case Priority::Excited: ++s.upgrades_to_excited; break;
      case Priority::Running: ++s.promotions_to_running; break;
      case Priority::Sleeping: break;  // no transition lowers to sleeping
    }
  }

  m.prio = d.new_priority;
  ++m.hops;

  HpMsg a = m;
  a.type = HpEvent::Arrive;
  const double arrive_ts = step_start(step + 1) + m.jitter();
  ctx.send(grid_.neighbor(here, d.dir), arrive_ts - ev.key.ts, a);
}

void HotPotatoModel::reverse_route(RouterState& s, des::Event& ev,
                                   des::Context& ctx) {
  auto& m = ev.msg<HpMsg>();
  ctx.rng().reverse(m.saved_rng_draws);
  --m.hops;
  const auto old_prio = static_cast<Priority>(m.saved_prio);
  if (old_prio != m.prio) {
    switch (m.prio) {  // m.prio still holds the forward's new priority
      case Priority::Active:
        if (old_prio == Priority::Sleeping) --s.upgrades_to_active;
        else --s.demotions_to_active;
        break;
      case Priority::Excited: --s.upgrades_to_excited; break;
      case Priority::Running: --s.promotions_to_running; break;
      case Priority::Sleeping: break;
    }
  }
  --s.routed_by_prio[static_cast<std::size_t>(old_prio)];
  m.prio = old_prio;
  s.link_claim_step[m.saved_dir] = m.saved_link_step;
  --s.link_claims;
  --s.routed;
  if (m.saved_deflected) --s.deflections;
}

void HotPotatoModel::handle_inject(RouterState& s, des::Event& ev,
                                   des::Context& ctx) {
  auto& m = ev.msg<HpMsg>();
  const std::uint32_t here = ctx.self();
  const std::uint32_t step = step_of(ev.key.ts);
  std::uint8_t draws = 0;
  m.saved_created = 0;
  m.saved_injected = 0;

  if (!s.has_pending) {
    // The injection application wants one packet per step: materialize the
    // next packet (destination drawn now; its wait starts now).
    const TrafficDraw td =
        draw_traffic_destination(grid_, cfg_.traffic, here, ctx.rng());
    const std::uint32_t dst = td.dst;
    draws = static_cast<std::uint8_t>(draws + td.rng_draws);
    const auto c = grid_.coord_of(dst);
    m.saved_pend_row = s.pend_dst_row;
    m.saved_pend_col = s.pend_dst_col;
    s.pend_dst_row = static_cast<std::uint16_t>(c.row);
    s.pend_dst_col = static_cast<std::uint16_t>(c.col);
    s.has_pending = true;
    s.pending_since_step = step;
    m.saved_created = 1;
  }

  const net::DirSet free = free_links(s, step, here);
  if (!free.empty()) {
    m.saved_injected = 1;
    int k = 0;
    if (free.size() > 1) {
      k = static_cast<int>(ctx.rng().integer(
          0, static_cast<std::uint64_t>(free.size()) - 1));
      ++draws;
    }
    const net::Dir dir = free.nth(k);
    const auto jitter_idx =
        static_cast<std::uint8_t>(ctx.rng().integer(1, 5));
    ++draws;

    m.saved_dir = static_cast<std::int8_t>(net::dir_index(dir));
    m.saved_link_step = s.link_claim_step[net::dir_index(dir)];
    s.link_claim_step[net::dir_index(dir)] = step;
    ++s.link_claims;

    const auto wait = static_cast<double>(step - s.pending_since_step);
    ++s.injected;
    s.inject_wait.add(wait);
    m.saved_stat = s.max_inject_wait.push(wait);
    m.saved_u32 = s.pending_since_step;
    s.has_pending = false;

    const std::uint32_t dst =
        grid_.id_of({static_cast<std::int32_t>(s.pend_dst_row),
                      static_cast<std::int32_t>(s.pend_dst_col)});
    HpMsg p;
    p.type = HpEvent::Arrive;
    p.prio = cfg_.policy->initial_priority();
    p.jitter_idx = jitter_idx;
    p.dst_row = s.pend_dst_row;
    p.dst_col = s.pend_dst_col;
    p.birth_step = step + 1;
    p.hops = 1;
    p.initial_distance =
        static_cast<std::uint16_t>(grid_.distance(here, dst));
    const double arrive_ts = step_start(step + 1) + p.jitter();
    ctx.send(grid_.neighbor(here, dir), arrive_ts - ev.key.ts, p);
  }
  m.saved_rng_draws = draws;

  // Keep attempting every step; the engine drops events beyond end_time.
  HpMsg next;
  next.type = HpEvent::Inject;
  ctx.send(here, kStep, next);
}

void HotPotatoModel::reverse_inject(RouterState& s, des::Event& ev,
                                    des::Context& ctx) {
  auto& m = ev.msg<HpMsg>();
  const std::uint32_t step = step_of(ev.key.ts);
  ctx.rng().reverse(m.saved_rng_draws);
  if (m.saved_injected) {
    s.has_pending = true;
    s.pending_since_step = m.saved_u32;
    s.max_inject_wait.pop(m.saved_stat);
    s.inject_wait.remove(static_cast<double>(step - m.saved_u32));
    --s.injected;
    s.link_claim_step[m.saved_dir] = m.saved_link_step;
    --s.link_claims;
  }
  if (m.saved_created) {
    s.has_pending = false;
    // Restore the displaced previous destination: an earlier inject's
    // reverse may resurrect the packet these fields described.
    s.pend_dst_row = m.saved_pend_row;
    s.pend_dst_col = m.saved_pend_col;
  }
}

}  // namespace hp::hotpotato
