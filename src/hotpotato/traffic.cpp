#include "hotpotato/traffic.hpp"

#include "util/hash.hpp"

namespace hp::hotpotato {

namespace {

TrafficDraw uniform_other(const net::Grid& g, std::uint32_t src,
                          util::ReversibleRng& rng) {
  // Uniform over the other N^2-1 routers in a single stream draw.
  const std::uint32_t nn = g.num_nodes();
  auto idx = static_cast<std::uint32_t>(rng.integer(0, nn - 2));
  if (idx >= src) ++idx;
  return {idx, 1};
}

// Hotspot routers: spread across the grid deterministically (quarter
// points), so they are not adjacent.
std::uint32_t hotspot_node(const net::Grid& g, std::uint32_t k) {
  const std::int32_t n = g.n();
  const std::int32_t q = n / 4;
  const net::Coord spots[kNumHotspots] = {
      {q, q}, {q, 3 * q}, {3 * q, q}, {3 * q, 3 * q}};
  return g.id_of(spots[k % kNumHotspots]);
}

}  // namespace

TrafficDraw draw_traffic_destination(const net::Grid& g, TrafficPattern p,
                                     std::uint32_t src,
                                     util::ReversibleRng& rng) {
  const net::Coord c = g.coord_of(src);
  const std::int32_t n = g.n();
  switch (p) {
    case TrafficPattern::Uniform:
      return uniform_other(g, src, rng);

    case TrafficPattern::Transpose: {
      if (c.row == c.col) return uniform_other(g, src, rng);
      return {g.id_of({c.col, c.row}), 0};
    }

    case TrafficPattern::BitComplement: {
      const net::Coord d{n - 1 - c.row, n - 1 - c.col};
      if (d == c) return uniform_other(g, src, rng);  // odd-n center
      return {g.id_of(d), 0};
    }

    case TrafficPattern::Hotspot: {
      // One draw decides hotspot-vs-background AND selects the hotspot: the
      // unit draw u < kHotspotFraction picks hotspot floor(u / (f/k)).
      const double u = rng.uniform();
      if (u < kHotspotFraction) {
        const auto k = static_cast<std::uint32_t>(
            u / (kHotspotFraction / kNumHotspots));
        const std::uint32_t spot = hotspot_node(g, k);
        if (spot != src) return {spot, 1};
        // Source *is* the hotspot: fall through to a uniform draw.
        TrafficDraw t = uniform_other(g, src, rng);
        t.rng_draws = 2;
        return t;
      }
      TrafficDraw t = uniform_other(g, src, rng);
      t.rng_draws = 2;
      return t;
    }

    case TrafficPattern::NearestNeighbor: {
      // One hop along the first available direction in E,S,W,N order
      // (always East except on a mesh east edge). Deterministic, no draws.
      for (net::Dir d : {net::Dir::East, net::Dir::South, net::Dir::West,
                         net::Dir::North}) {
        if (g.has_link(src, d)) return {g.neighbor(src, d), 0};
      }
      break;  // unreachable: every node has >= 2 links
    }
  }
  HP_ASSERT(false, "unhandled traffic pattern");
  return {0, 0};
}

}  // namespace hp::hotpotato
