#pragma once

// Traffic patterns for the injection applications. The report's experiments
// use uniformly random destinations; the classic interconnection-network
// evaluation patterns are provided as extensions, since deflection routing
// behaves very differently under adversarial permutations and hotspots.
//
// Every draw function reports exactly how many RNG draws it consumed so the
// inject handler's reverse can rewind the stream precisely.

#include <cstdint>

#include "net/grid.hpp"
#include "util/rng.hpp"

namespace hp::hotpotato {

enum class TrafficPattern : std::uint8_t {
  Uniform = 0,        // report default: uniform over the other N^2-1 nodes
  Transpose,          // (r,c) -> (c,r); diagonal sources fall back to uniform
  BitComplement,      // (r,c) -> (n-1-r, n-1-c); center falls back to uniform
  Hotspot,            // 25% of traffic to a small set of hotspot routers
  NearestNeighbor,    // one hop East (adversarially benign: minimal load)
};

constexpr const char* traffic_pattern_name(TrafficPattern p) noexcept {
  switch (p) {
    case TrafficPattern::Uniform: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bit_complement";
    case TrafficPattern::Hotspot: return "hotspot";
    case TrafficPattern::NearestNeighbor: return "nearest_neighbor";
  }
  return "?";
}

struct TrafficDraw {
  std::uint32_t dst = 0;
  std::uint8_t rng_draws = 0;
};

// Fraction of hotspot traffic aimed at the hotspot set, and the set size
// (the classic 4-hotspot 25% configuration).
inline constexpr double kHotspotFraction = 0.25;
inline constexpr std::uint32_t kNumHotspots = 4;

// Draw a destination != src for a packet injected at `src`.
TrafficDraw draw_traffic_destination(const net::Grid& g, TrafficPattern p,
                                     std::uint32_t src,
                                     util::ReversibleRng& rng);

}  // namespace hp::hotpotato
