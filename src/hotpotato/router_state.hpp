#pragma once

// Router LP state (ROSS SV analogue). Bufferless: no packet storage — only
// per-step link claims, the injection application, and reversible statistics.

#include <array>
#include <cstdint>
#include <memory>

#include "des/lp_state.hpp"
#include "net/direction.hpp"
#include "util/stats.hpp"

namespace hp::hotpotato {

inline constexpr std::uint32_t kLinkFreeSentinel = 0xffffffffu;

struct RouterState final : des::LpState {
  // Last step each outgoing link was claimed; a link is free at step s iff
  // link_claim_step[d] != s. Replaces the report's HEARTBEAT-driven resets
  // with a reverse-computable comparison (DESIGN.md "Model fidelity notes").
  std::array<std::uint32_t, net::kNumDirs> link_claim_step{
      kLinkFreeSentinel, kLinkFreeSentinel, kLinkFreeSentinel,
      kLinkFreeSentinel};

  // Injection application (present on injector routers only).
  bool is_injector = false;
  bool has_pending = false;
  std::uint32_t pending_since_step = 0;
  std::uint16_t pend_dst_row = 0;
  std::uint16_t pend_dst_col = 0;

  // Reversible statistics. Delivery tallies are indexed by the destination
  // router (packets delivered *to* this LP), injection tallies by the source.
  util::Tally delivery_steps;     // transit time in steps (== hops)
  util::Tally delivery_distance;  // torus distance source->destination
  // Per-delivery transit-time distribution (1-step bins, clamped tail);
  // sized by the model at make_state from the grid diameter.
  util::Histogram delivery_hist;
  util::Tally inject_wait;        // steps a packet waited to enter
  util::RunningMax max_inject_wait;
  std::uint64_t arrivals = 0;
  std::uint64_t routed = 0;
  std::uint64_t deflections = 0;
  // Priority census: routed events by the packet's priority at routing time,
  // and state-machine transition counts (the report attributes the Fig. 3
  // trajectory change at large N to packets reaching higher states).
  std::array<std::uint64_t, 4> routed_by_prio{0, 0, 0, 0};
  std::uint64_t upgrades_to_active = 0;
  std::uint64_t upgrades_to_excited = 0;
  std::uint64_t promotions_to_running = 0;
  std::uint64_t demotions_to_active = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t link_claims = 0;

  std::unique_ptr<des::LpState> clone() const override {
    return std::make_unique<RouterState>(*this);
  }

  bool equals(const des::LpState& o) const override {
    return *this == static_cast<const RouterState&>(o);
  }

  // pend_dst_* / pending_since_step are only meaningful while has_pending:
  // the injection application overwrites them at the next creation, and
  // reverse handlers deliberately do not restore don't-care leftovers.
  bool operator==(const RouterState& o) const {
    const bool pending_fields_equal =
        !has_pending || (pending_since_step == o.pending_since_step &&
                         pend_dst_row == o.pend_dst_row &&
                         pend_dst_col == o.pend_dst_col);
    return link_claim_step == o.link_claim_step &&
           is_injector == o.is_injector && has_pending == o.has_pending &&
           pending_fields_equal &&
           delivery_steps == o.delivery_steps &&
           delivery_distance == o.delivery_distance &&
           delivery_hist == o.delivery_hist &&
           routed_by_prio == o.routed_by_prio &&
           upgrades_to_active == o.upgrades_to_active &&
           upgrades_to_excited == o.upgrades_to_excited &&
           promotions_to_running == o.promotions_to_running &&
           demotions_to_active == o.demotions_to_active &&
           inject_wait == o.inject_wait &&
           max_inject_wait == o.max_inject_wait && arrivals == o.arrivals &&
           routed == o.routed && deflections == o.deflections &&
           injected == o.injected && delivered == o.delivered &&
           link_claims == o.link_claims;
  }
};

}  // namespace hp::hotpotato
