#pragma once

// Router LP state (ROSS SV analogue). Bufferless: no packet storage — only
// per-step link claims, the injection application, and reversible statistics.

#include <array>
#include <cstdint>
#include <memory>

#include "des/lp_state.hpp"
#include "net/direction.hpp"
#include "util/bytes.hpp"
#include "util/stats.hpp"

namespace hp::hotpotato {

inline constexpr std::uint32_t kLinkFreeSentinel = 0xffffffffu;

struct RouterState final : des::LpState {
  // Last step each outgoing link was claimed; a link is free at step s iff
  // link_claim_step[d] != s. Replaces the report's HEARTBEAT-driven resets
  // with a reverse-computable comparison (DESIGN.md "Model fidelity notes").
  std::array<std::uint32_t, net::kNumDirs> link_claim_step{
      kLinkFreeSentinel, kLinkFreeSentinel, kLinkFreeSentinel,
      kLinkFreeSentinel};

  // Injection application (present on injector routers only).
  bool is_injector = false;
  bool has_pending = false;
  std::uint32_t pending_since_step = 0;
  std::uint16_t pend_dst_row = 0;
  std::uint16_t pend_dst_col = 0;

  // Reversible statistics. Delivery tallies are indexed by the destination
  // router (packets delivered *to* this LP), injection tallies by the source.
  util::Tally delivery_steps;     // transit time in steps (== hops)
  util::Tally delivery_distance;  // torus distance source->destination
  // Per-delivery transit-time distribution (1-step bins, clamped tail);
  // sized by the model at make_state from the grid diameter.
  util::Histogram delivery_hist;
  util::Tally inject_wait;        // steps a packet waited to enter
  util::RunningMax max_inject_wait;
  std::uint64_t arrivals = 0;
  std::uint64_t routed = 0;
  std::uint64_t deflections = 0;
  // Priority census: routed events by the packet's priority at routing time,
  // and state-machine transition counts (the report attributes the Fig. 3
  // trajectory change at large N to packets reaching higher states).
  std::array<std::uint64_t, 4> routed_by_prio{0, 0, 0, 0};
  std::uint64_t upgrades_to_active = 0;
  std::uint64_t upgrades_to_excited = 0;
  std::uint64_t promotions_to_running = 0;
  std::uint64_t demotions_to_active = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t link_claims = 0;

  std::unique_ptr<des::LpState> clone() const override {
    return std::make_unique<RouterState>(*this);
  }

  bool equals(const des::LpState& o) const override {
    return *this == static_cast<const RouterState&>(o);
  }

  // Checkpoint codec. Field order is the declaration order above; the
  // histogram layout (lo/width/bins) is fixed by make_state, so only the
  // counts travel. Every field here feeds either forward execution or the
  // end-of-run report, so all of them must round-trip bit-exactly.
  void serialize(util::ByteSink& sink) const override {
    for (const std::uint32_t s : link_claim_step) sink.u32(s);
    sink.u8(is_injector ? 1 : 0);
    sink.u8(has_pending ? 1 : 0);
    sink.u32(pending_since_step);
    sink.u16(pend_dst_row);
    sink.u16(pend_dst_col);
    sink.u64(delivery_steps.count());
    sink.f64(delivery_steps.sum());
    sink.u64(delivery_distance.count());
    sink.f64(delivery_distance.sum());
    sink.u64(delivery_hist.counts().size());
    for (const std::uint64_t c : delivery_hist.counts()) sink.u64(c);
    sink.u64(inject_wait.count());
    sink.f64(inject_wait.sum());
    sink.f64(max_inject_wait.value());
    sink.u64(arrivals);
    sink.u64(routed);
    sink.u64(deflections);
    for (const std::uint64_t c : routed_by_prio) sink.u64(c);
    sink.u64(upgrades_to_active);
    sink.u64(upgrades_to_excited);
    sink.u64(promotions_to_running);
    sink.u64(demotions_to_active);
    sink.u64(injected);
    sink.u64(delivered);
    sink.u64(link_claims);
  }

  void deserialize(util::ByteSource& src) override {
    for (std::uint32_t& s : link_claim_step) s = src.u32();
    is_injector = src.u8() != 0;
    has_pending = src.u8() != 0;
    pending_since_step = src.u32();
    pend_dst_row = src.u16();
    pend_dst_col = src.u16();
    {
      const std::uint64_t c = src.u64();
      delivery_steps.restore(c, src.f64());
    }
    {
      const std::uint64_t c = src.u64();
      delivery_distance.restore(c, src.f64());
    }
    {
      const std::uint64_t bins = src.u64();
      std::vector<std::uint64_t> counts(bins, 0);
      for (std::uint64_t& c : counts) c = src.u64();
      if (src.ok()) delivery_hist.restore_counts(counts);
    }
    {
      const std::uint64_t c = src.u64();
      inject_wait.restore(c, src.f64());
    }
    max_inject_wait.restore(src.f64());
    arrivals = src.u64();
    routed = src.u64();
    deflections = src.u64();
    for (std::uint64_t& c : routed_by_prio) c = src.u64();
    upgrades_to_active = src.u64();
    upgrades_to_excited = src.u64();
    promotions_to_running = src.u64();
    demotions_to_active = src.u64();
    injected = src.u64();
    delivered = src.u64();
    link_claims = src.u64();
  }

  // pend_dst_* / pending_since_step are only meaningful while has_pending:
  // the injection application overwrites them at the next creation, and
  // reverse handlers deliberately do not restore don't-care leftovers.
  bool operator==(const RouterState& o) const {
    const bool pending_fields_equal =
        !has_pending || (pending_since_step == o.pending_since_step &&
                         pend_dst_row == o.pend_dst_row &&
                         pend_dst_col == o.pend_dst_col);
    return link_claim_step == o.link_claim_step &&
           is_injector == o.is_injector && has_pending == o.has_pending &&
           pending_fields_equal &&
           delivery_steps == o.delivery_steps &&
           delivery_distance == o.delivery_distance &&
           delivery_hist == o.delivery_hist &&
           routed_by_prio == o.routed_by_prio &&
           upgrades_to_active == o.upgrades_to_active &&
           upgrades_to_excited == o.upgrades_to_excited &&
           promotions_to_running == o.promotions_to_running &&
           demotions_to_active == o.demotions_to_active &&
           inject_wait == o.inject_wait &&
           max_inject_wait == o.max_inject_wait && arrivals == o.arrivals &&
           routed == o.routed && deflections == o.deflections &&
           injected == o.injected && delivered == o.delivered &&
           link_claims == o.link_claims;
  }
};

}  // namespace hp::hotpotato
