#pragma once

// Routing policy interface and the paper's BHW priority policy.
//
// A policy is pure: given the packet, the router position, and the set of
// out-links still free this step, it picks a direction and the packet's next
// priority, consuming a recorded number of RNG draws (the model stashes the
// count in the message so reverse handlers can rewind the stream exactly).
// Baseline policies from the comparison literature live in src/baselines/.

#include <cstdint>

#include "hotpotato/packet.hpp"
#include "net/torus.hpp"
#include "util/rng.hpp"

namespace hp::hotpotato {

struct RouteDecision {
  net::Dir dir = net::Dir::North;
  bool deflected = false;       // packet did not get a desired link
  Priority new_priority = Priority::Sleeping;
  std::uint8_t rng_draws = 0;   // stream draws consumed by this decision
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual const char* name() const noexcept = 0;

  virtual Priority initial_priority() const noexcept {
    return Priority::Sleeping;
  }

  // Sub-step offset of the packet's ROUTE event; smaller routes earlier and
  // therefore claims links first. Must stay within [1, 5) so routing happens
  // after every ARRIVE (< 1) and before INJECT (6). `step` allows age-based
  // policies.
  virtual double route_offset(const HpMsg& m, std::uint32_t step) const = 0;

  // Decide the out-link and next priority. `free` is nonempty (bufferless
  // capacity argument: at most 4 packets route per step over 4 links).
  virtual RouteDecision route(const net::Grid& t, const HpMsg& m,
                              std::uint32_t here, net::DirSet free,
                              util::ReversibleRng& rng) const = 0;

  // Shared helper: pick uniformly among a candidate set, recording draws.
  static net::Dir pick_uniform(net::DirSet set, util::ReversibleRng& rng,
                               std::uint8_t& draws) {
    HP_ASSERT(!set.empty(), "cannot pick from an empty direction set");
    if (set.size() == 1) return set.nth(0);
    const auto k = static_cast<int>(
        rng.integer(0, static_cast<std::uint64_t>(set.size()) - 1));
    ++draws;
    return set.nth(k);
  }

  // Deflection target: prefer a free good link (still progress), otherwise
  // any free link.
  static net::Dir pick_deflection(net::DirSet good, net::DirSet free,
                                  util::ReversibleRng& rng,
                                  std::uint8_t& draws) {
    net::DirSet good_free;
    for (net::Dir d : net::kAllDirs) {
      if (good.contains(d) && free.contains(d)) good_free.add(d);
    }
    return pick_uniform(good_free.empty() ? free : good_free, rng, draws);
  }
};

// The SPAA 2001 Busch–Herlihy–Wattenhofer algorithm as specified in the
// report's Section 1.2.4:
//   Sleeping: any good link; every time it is routed, upgrade to Active with
//             probability 1/(24N).
//   Active:   any good link; when deflected, upgrade to Excited with
//             probability 1/(16N).
//   Excited:  must take its home-run (one-bend, row-then-column) link; on
//             success becomes Running, on deflection falls back to Active.
//             (Excited lasts at most one time step.)
//   Running:  follows the home-run path; deflection — possible only while
//             turning, by another running packet — demotes to Active.
// Higher priorities route earlier in the step and therefore claim links
// first; ties are broken by the per-packet jitter and, residually, by the
// engine's deterministic event ordering.
class BhwPolicy final : public RoutingPolicy {
 public:
  explicit BhwPolicy(std::int32_t n)
      : p_sleep_up_(1.0 / (24.0 * static_cast<double>(n))),
        p_active_up_(1.0 / (16.0 * static_cast<double>(n))) {}

  const char* name() const noexcept override { return "bhw"; }

  double route_offset(const HpMsg& m, std::uint32_t) const override {
    switch (m.prio) {
      case Priority::Running: return 1.0;
      case Priority::Excited: return 2.0;
      case Priority::Active: return 3.0;
      case Priority::Sleeping: return 4.0;
    }
    return 4.0;
  }

  RouteDecision route(const net::Grid& t, const HpMsg& m, std::uint32_t here,
                      net::DirSet free, util::ReversibleRng& rng) const override;

  double p_sleep_upgrade() const noexcept { return p_sleep_up_; }
  double p_active_upgrade() const noexcept { return p_active_up_; }

 private:
  double p_sleep_up_;
  double p_active_up_;
};

}  // namespace hp::hotpotato
