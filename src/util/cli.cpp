#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace hp::util {

Cli::Cli(int argc, char** argv, std::map<std::string, std::string> spec)
    : program_(argc > 0 ? argv[0] : "?"), spec_(std::move(spec)) {
  spec_.emplace("help", "print this help");
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", argv[i]);
      print_help();
      std::exit(2);
    }
    arg.remove_prefix(2);
    std::string name, value = "1";
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    if (!spec_.contains(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      print_help();
      std::exit(2);
    }
    values_[name] = value;
  }
  if (values_.contains("help")) {
    print_help();
    std::exit(0);
  }
}

bool Cli::has(const std::string& name) const { return values_.contains(name); }

std::string Cli::get(const std::string& name, const std::string& dflt) const {
  auto it = values_.find(name);
  return it == values_.end() ? dflt : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  const char* s = it->second.c_str();
  char* end = nullptr;
  const std::int64_t v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') {
    usage_error("--" + name + " expects an integer, got \"" + it->second +
                "\"");
  }
  return v;
}

double Cli::get_double(const std::string& name, double dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  const char* s = it->second.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    usage_error("--" + name + " expects a number, got \"" + it->second + "\"");
  }
  return v;
}

bool Cli::get_bool(const std::string& name, bool dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

void Cli::usage_error(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n", program_.c_str(), message.c_str());
  print_help();
  std::exit(2);
}

void Cli::print_help() const {
  std::fprintf(stderr, "usage: %s [--flag=value ...]\n", program_.c_str());
  for (const auto& [name, help] : spec_) {
    std::fprintf(stderr, "  --%-24s %s\n", name.c_str(), help.c_str());
  }
}

}  // namespace hp::util
