#pragma once

// Minimal flag parser shared by bench/example binaries.
// Accepts --name=value and bare --name (boolean true). Unknown flags abort
// with a usage message so typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hp::util {

class Cli {
 public:
  // `spec` maps flag name -> help text; used for --help and typo detection.
  Cli(int argc, char** argv, std::map<std::string, std::string> spec);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& dflt) const;
  // Numeric accessors are strict: a present-but-malformed value (including
  // trailing junk, e.g. --pes=4x) is a usage error, not a silent 0.
  std::int64_t get_int(const std::string& name, std::int64_t dflt) const;
  double get_double(const std::string& name, double dflt) const;
  bool get_bool(const std::string& name, bool dflt) const;

  void print_help() const;
  // Print "<program>: <message>", then the help text, then exit(2). For
  // flag-value validation beyond what the accessors cover (e.g. --chaos
  // specs parsed by FaultPlan::parse).
  [[noreturn]] void usage_error(const std::string& message) const;

 private:
  std::string program_;
  std::map<std::string, std::string> spec_;
  std::map<std::string, std::string> values_;
};

}  // namespace hp::util
