#pragma once

// Minimal streaming JSON emitter for machine-readable outputs (bench
// --json=..., Chrome trace export, MetricsReport dumps). Comma placement and
// nesting are tracked internally, so callers just interleave key()/value()/
// begin_*()/end_*() calls. No DOM, no allocation proportional to output.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hp::util {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member name; must be followed by a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& null_value();  // explicit JSON null
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(double v);  // non-finite doubles are emitted as null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }

  // Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  // All containers closed (useful for asserting completeness in tests).
  bool done() const noexcept { return stack_.empty() && wrote_root_; }

 private:
  enum class Scope : std::uint8_t { Object, Array };
  void comma_for_value();
  void push(Scope s);
  void pop(Scope s);
  static void write_escaped(std::ostream& os, std::string_view s);

  std::ostream& os_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
  bool wrote_root_ = false;
};

}  // namespace hp::util
