#pragma once

// Structured failure handling: a tiny registry of diagnostic dump callbacks
// that run exactly once on the way down, then abort.
//
// HP_ASSERT routes through fail_fast() so an invariant violation inside an
// engine produces the same per-PE diagnostic dump the stall watchdog emits
// (phase, pending/inbox depths, last GVT) before the process dies, instead
// of just a file:line. Engines register a dump for the duration of run() and
// unregister on the way out.
//
// Callbacks must be async-crash-safe: the process state is suspect when they
// run, so they should read only atomics / plain memory they own and write
// with snprintf + write(2), never allocate or lock.

#include <cstdint>

namespace hp::util {

using FailureDumpFn = void (*)(void* ctx);

// Registers `fn(ctx)` to run when fail_fast() fires. Returns a slot id for
// unregister_failure_dump, or -1 if all slots are taken (the dump is simply
// not registered; failure handling still aborts).
int register_failure_dump(FailureDumpFn fn, void* ctx) noexcept;
void unregister_failure_dump(int slot) noexcept;

// Runs every registered dump (once — reentrant calls skip straight to
// abort so a crashing dump cannot loop), then aborts the process.
[[noreturn]] void fail_fast() noexcept;

// RAII helper so engines cannot leak a registration on early return.
class ScopedFailureDump {
 public:
  ScopedFailureDump(FailureDumpFn fn, void* ctx) noexcept
      : slot_(register_failure_dump(fn, ctx)) {}
  ~ScopedFailureDump() { unregister_failure_dump(slot_); }
  ScopedFailureDump(const ScopedFailureDump&) = delete;
  ScopedFailureDump& operator=(const ScopedFailureDump&) = delete;

 private:
  int slot_;
};

}  // namespace hp::util
