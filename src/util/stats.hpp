#pragma once

// Statistics accumulators used inside LP state.
//
// Under reverse computation every forward mutation must have an inverse, so
// the accumulators here come in two flavours:
//  * count/sum style (Tally) — reversible by subtraction;
//  * max style (RunningMax) — NOT invertible from the accumulator alone;
//    push() returns the displaced value, which the model stashes in the
//    event's scratch area and hands back to pop() on rollback (the ROSS
//    "swap into the message" idiom).
// Summary (Welford) is for end-of-run aggregation only and never reversed.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/macros.hpp"

namespace hp::util {

// Reversible count + sum accumulator.
//
// Two reversal styles:
//  * add/remove — reverse by subtraction. Bit-exact ONLY when every value is
//    an integer-valued double and the sum stays below 2^53 (true for the
//    hop/step/wait tallies of the routing model). For general reals,
//    (sum + x) - x need not equal sum, which breaks reverse computation.
//  * push/pop — the displaced sum is returned for the caller to stash in the
//    event's scratch area (the RunningMax idiom); exact for any doubles.
class Tally {
 public:
  void add(double x) noexcept {
    ++count_;
    sum_ += x;
  }
  void remove(double x) noexcept {
    --count_;
    sum_ -= x;
  }
  // Exact-reversal variant: returns the pre-add sum to stash for pop().
  double push(double x) noexcept {
    const double prev = sum_;
    ++count_;
    sum_ += x;
    return prev;
  }
  void pop(double stashed_prev_sum) noexcept {
    --count_;
    sum_ = stashed_prev_sum;
  }
  void merge(const Tally& o) noexcept {
    count_ += o.count_;
    sum_ += o.sum_;
  }
  // Checkpoint restore: reinstate a previously observed (count, sum) pair
  // bit-exactly. Only ever fed values read back from a serialized Tally.
  void restore(std::uint64_t count, double sum) noexcept {
    count_ = count;
    sum_ = sum;
  }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  bool operator==(const Tally&) const = default;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Reversible maximum: push returns the previous maximum, pop restores it.
class RunningMax {
 public:
  // Returns the value to stash for reversal.
  double push(double x) noexcept {
    const double prev = max_;
    max_ = std::max(max_, x);
    return prev;
  }
  void pop(double stashed_prev) noexcept { max_ = stashed_prev; }
  // Checkpoint restore (see Tally::restore). -inf round-trips through the
  // serialized bit pattern, so a never-pushed maximum is preserved.
  void restore(double v) noexcept { max_ = v; }
  void merge(const RunningMax& o) noexcept { max_ = std::max(max_, o.max_); }
  double value() const noexcept { return max_; }
  bool operator==(const RunningMax&) const = default;

 private:
  double max_ = -std::numeric_limits<double>::infinity();
};

// One bin of a binned distribution, as seen by the shared quantile helper:
// [lo, hi) holding `count` observations, assumed uniformly spread.
struct QuantileBin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

// The one quantile definition every histogram in the tree routes through
// (util::Histogram, obs::LatencyHistogram, the hot-potato delivery
// distribution), so percentiles agree across model and telemetry surfaces:
//   * empty histogram        -> 0.0
//   * q <= 0 (or NaN)        -> lower edge of the first occupied bin
//   * q >= 1                 -> upper edge of the last occupied bin
//   * otherwise              -> linear interpolation inside the bin holding
//                               continuous rank q * total
// Bins must be in ascending order; zero-count bins are skipped.
inline double interpolated_quantile(const std::vector<QuantileBin>& bins,
                                    double q) noexcept {
  std::uint64_t total = 0;
  for (const QuantileBin& b : bins) total += b.count;
  if (total == 0) return 0.0;
  if (!(q > 0.0)) {  // also catches NaN
    for (const QuantileBin& b : bins) {
      if (b.count > 0) return b.lo;
    }
  }
  const auto last_hi = [&]() noexcept {
    for (std::size_t i = bins.size(); i-- > 0;) {
      if (bins[i].count > 0) return bins[i].hi;
    }
    return 0.0;
  };
  if (q >= 1.0) return last_hi();
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (const QuantileBin& b : bins) {
    if (b.count == 0) continue;
    const double next = cum + static_cast<double>(b.count);
    if (target <= next) {
      const double frac = (target - cum) / static_cast<double>(b.count);
      return b.lo + (b.hi - b.lo) * frac;
    }
    cum = next;
  }
  return last_hi();  // floating-point slack pushed the rank past the end
}

// Fixed-width histogram with clamped overflow bin; add/remove reversible.
class Histogram {
 public:
  Histogram() = default;
  Histogram(double lo, double bin_width, std::size_t bins)
      : lo_(lo), width_(bin_width), counts_(bins, 0) {}

  void add(double x) noexcept { ++counts_[bin_of(x)]; }
  void remove(double x) noexcept { --counts_[bin_of(x)]; }
  // Merging requires identical bin layouts: bins are positional, so adding
  // counts across different (lo, width, size) configurations would silently
  // scramble the distribution (or read out of bounds). An empty side is the
  // one legal mismatch — a default-constructed accumulator adopts the other
  // side's layout, and merging in an empty histogram is a no-op.
  void merge(const Histogram& o) noexcept {
    if (o.counts_.empty()) return;
    if (counts_.empty()) {
      *this = o;
      return;
    }
    HP_ASSERT(lo_ == o.lo_ && width_ == o.width_ &&
                  counts_.size() == o.counts_.size(),
              "Histogram::merge bin-config mismatch "
              "(lo %g vs %g, width %g vs %g, bins %zu vs %zu)",
              lo_, o.lo_, width_, o.width_, counts_.size(), o.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  }
  // Checkpoint restore: overwrite the bin counts with serialized values. The
  // layout (lo, width, bin count) is fixed by the model at construction, so
  // a restored image must agree with it — mismatch means the checkpoint came
  // from a different model configuration.
  void restore_counts(const std::vector<std::uint64_t>& counts) noexcept {
    HP_ASSERT(counts.size() == counts_.size(),
              "Histogram::restore_counts layout mismatch (%zu vs %zu bins)",
              counts.size(), counts_.size());
    counts_ = counts;
  }
  const std::vector<std::uint64_t>& counts() const noexcept { return counts_; }
  double lo() const noexcept { return lo_; }
  double bin_width() const noexcept { return width_; }
  double bin_lo(std::size_t i) const noexcept {
    return lo_ + static_cast<double>(i) * width_;
  }
  // Interpolated quantile with the shared semantics of
  // interpolated_quantile above. The clamped underflow/overflow bins
  // interpolate over a single bin width so the result stays finite.
  double quantile(double q) const noexcept {
    std::vector<QuantileBin> bins;
    bins.reserve(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      bins.push_back({bin_lo(i), bin_lo(i) + width_, counts_[i]});
    }
    return interpolated_quantile(bins, q);
  }
  bool operator==(const Histogram&) const = default;

 private:
  // Clamp in double space BEFORE the size_t cast: for values whose scaled
  // offset exceeds the size_t range (huge x, +inf) the cast itself is
  // undefined behaviour, and NaN must land in a deterministic bin (the
  // underflow bin, matching the x < lo_ branch it fails into).
  std::size_t bin_of(double x) const noexcept {
    if (!(x >= lo_)) return 0;  // also catches NaN
    const double i = (x - lo_) / width_;
    const double last = static_cast<double>(counts_.size() - 1);
    if (!(i < last)) return counts_.size() - 1;  // overflow bin; inf-safe
    return static_cast<std::size_t>(i);
  }
  double lo_ = 0.0;
  double width_ = 1.0;
  std::vector<std::uint64_t> counts_;
};

// One-pass mean/variance/min/max for end-of-run reporting (Welford).
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  std::uint64_t n() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hp::util
