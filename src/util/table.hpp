#pragma once

// Plain-text table / CSV emission for the benchmark harnesses. Every figure
// binary prints the same rows the paper plots, as an aligned table on stdout
// and optionally as CSV for replotting.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace hp::util {

class JsonWriter;

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t, std::uint64_t>;

  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<Cell> cells);

  // Aligned fixed-width rendering for terminals.
  void print(std::ostream& os) const;
  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;
  // Array of row objects keyed by header, typed cells (not stringified).
  void write_json(JsonWriter& w) const;

  std::size_t rows() const noexcept { return rows_.size(); }
  const std::vector<std::string>& headers() const noexcept { return headers_; }
  const std::vector<Cell>& row(std::size_t i) const { return rows_[i]; }

 private:
  static std::string render(const Cell& c);
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace hp::util
