#pragma once

#include <cstdint>

namespace hp::util {

// SplitMix64 finalizer (Steele, Lea, Flood 2014). Used for deterministic
// event tiebreak derivation and for seeding per-LP RNG streams. It is a
// bijection on 64-bit words, which matters for tiebreak quality: distinct
// inputs never collapse before the final mix.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return x;
}

// Combine two words into one well-mixed word. Not a bijection of the pair
// (impossible), but collisions among (parent_tiebreak, child_index) pairs
// are what a birthday bound governs; see DESIGN.md "Deterministic event
// ordering".
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
}

}  // namespace hp::util
