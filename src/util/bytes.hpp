#pragma once

// Little-endian byte serialization for checkpoint images.
//
// ByteSink appends fixed-width scalars to a growable buffer; ByteSource reads
// them back with sticky-failure semantics: any out-of-bounds read marks the
// source failed and returns zeros instead of aborting, so a truncated or
// corrupt checkpoint file is rejected gracefully by the caller (checking
// ok()) rather than crashing the restore path.
//
// The on-disk format is explicitly little-endian regardless of host order so
// images are portable across machines. Doubles travel as their IEEE-754 bit
// pattern; a bit-exact round trip is required for determinism (timestamps are
// part of the event ordering key).

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace hp::util {

class ByteSink {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

class ByteSource {
 public:
  ByteSource(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  explicit ByteSource(const std::vector<std::uint8_t>& v) noexcept
      : ByteSource(v.data(), v.size()) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }
  double f64() { return std::bit_cast<double>(take<std::uint64_t>()); }

  // Copies n bytes out, or zero-fills and marks the source failed if fewer
  // than n remain.
  void bytes(void* out, std::size_t n) {
    if (n > size_ - pos_) {
      failed_ = true;
      std::memset(out, 0, n);
      pos_ = size_;
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool ok() const noexcept { return !failed_; }
  // A well-formed read should consume the payload exactly.
  bool exhausted() const noexcept { return !failed_ && pos_ == size_; }

 private:
  template <typename T>
  T take() {
    if (sizeof(T) > size_ - pos_) {
      failed_ = true;
      pos_ = size_;
      return T{};
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace hp::util
