#pragma once

// Reversible pseudo-random number generation for reverse computation.
//
// ROSS pairs every tw_rand_* draw with tw_rand_reverse_unif() so a rolled
// back event can rewind its LP's stream exactly. We provide the same
// contract with a 64-bit LCG: the state update s' = a*s + c (mod 2^64) is a
// bijection, so stepping backwards is s = a_inv * (s' - c) (mod 2^64) where
// a_inv is the multiplicative inverse of a modulo 2^64 (a is odd, so the
// inverse exists and is computed at compile time by Newton iteration).
//
// One LP owns one stream; seeds are derived from (global_seed, lp_id) via
// splitmix64, so streams are decorrelated and a run is reproducible from a
// single seed.

#include <cstdint>

#include "util/hash.hpp"
#include "util/macros.hpp"

namespace hp::util {

// Multiplicative inverse of an odd 64-bit number mod 2^64 via Newton
// iteration: x_{k+1} = x_k * (2 - a * x_k) doubles correct low bits each step.
constexpr std::uint64_t inverse_mod_2_64(std::uint64_t a) noexcept {
  std::uint64_t x = a;  // correct to 3 bits for odd a
  for (int i = 0; i < 6; ++i) x *= 2ULL - a * x;
  return x;
}

class ReversibleRng {
 public:
  // Knuth MMIX constants.
  static constexpr std::uint64_t kMul = 6364136223846793005ULL;
  static constexpr std::uint64_t kInc = 1442695040888963407ULL;
  static constexpr std::uint64_t kMulInv = inverse_mod_2_64(kMul);
  static_assert(kMul * kMulInv == 1ULL, "inverse computation is wrong");

  ReversibleRng() noexcept : state_(splitmix64(0)) {}
  explicit ReversibleRng(std::uint64_t seed) noexcept
      : state_(splitmix64(seed)) {}

  // Advance the stream and return a double uniform in [0, 1).
  double uniform() noexcept {
    step_forward();
    return to_unit_double(output());
  }

  // Advance and return an integer uniform in [lo, hi] (inclusive), lo <= hi.
  // One stream step regardless of the range, so reverse() stays one-to-one
  // with draws.
  std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) noexcept {
    HP_ASSERT(lo <= hi, "integer(lo=%llu, hi=%llu)",
              static_cast<unsigned long long>(lo),
              static_cast<unsigned long long>(hi));
    step_forward();
    const std::uint64_t span = hi - lo + 1;  // span==0 means full 2^64 range
    const std::uint64_t r = output();
    return span == 0 ? r : lo + mul_shift(r, span);
  }

  // Advance and return true with probability p (one draw).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Rewind the stream by `draws` steps. Must match forward draws exactly.
  void reverse(std::uint64_t draws = 1) noexcept {
    for (std::uint64_t i = 0; i < draws; ++i) {
      state_ = kMulInv * (state_ - kInc);
      HP_ASSERT(draw_count_ > 0, "reverse() past the seed state");
      --draw_count_;
    }
  }

  // Number of forward draws minus reversed draws since construction.
  // Used by tests and by the engine's rollback sanity checks.
  std::uint64_t draw_count() const noexcept { return draw_count_; }

  std::uint64_t raw_state() const noexcept { return state_; }

  // Snapshot/restore for the state-saving ablation mode, which rolls back by
  // restoring pre-event snapshots instead of calling reverse().
  void restore(std::uint64_t state, std::uint64_t draws) noexcept {
    state_ = state;
    draw_count_ = draws;
  }

 private:
  void step_forward() noexcept {
    state_ = kMul * state_ + kInc;
    ++draw_count_;
  }

  // LCGs have weak low bits; output the xorshifted high part (PCG-XSH-style)
  // so uniform() and integer() see well-mixed bits.
  std::uint64_t output() const noexcept {
    std::uint64_t x = state_;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }

  static double to_unit_double(std::uint64_t r) noexcept {
    return static_cast<double>(r >> 11) * 0x1.0p-53;
  }

  // Lemire's multiply-shift range reduction (slight bias is irrelevant at
  // 64-bit width; what matters here is one step per draw).
  static std::uint64_t mul_shift(std::uint64_t r, std::uint64_t span) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(r) * span) >> 64);
  }

  std::uint64_t state_;
  std::uint64_t draw_count_ = 0;
};

}  // namespace hp::util
