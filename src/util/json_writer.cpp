#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/macros.hpp"

namespace hp::util {

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::comma_for_value() {
  if (stack_.empty()) {
    HP_ASSERT(!wrote_root_, "JSON document already has a root value");
    wrote_root_ = true;
    return;
  }
  if (stack_.back() == Scope::Object) {
    HP_ASSERT(pending_key_, "object member emitted without a key()");
    pending_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) os_ << ',';
  first_in_scope_.back() = false;
}

void JsonWriter::push(Scope s) {
  comma_for_value();
  os_ << (s == Scope::Object ? '{' : '[');
  stack_.push_back(s);
  first_in_scope_.push_back(true);
}

void JsonWriter::pop(Scope s) {
  HP_ASSERT(!stack_.empty() && stack_.back() == s,
            "mismatched JSON container close");
  HP_ASSERT(!pending_key_, "JSON object closed with a dangling key");
  os_ << (s == Scope::Object ? '}' : ']');
  stack_.pop_back();
  first_in_scope_.pop_back();
}

JsonWriter& JsonWriter::begin_object() {
  push(Scope::Object);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  pop(Scope::Object);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  push(Scope::Array);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  pop(Scope::Array);
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  HP_ASSERT(!stack_.empty() && stack_.back() == Scope::Object,
            "key() outside of an object");
  HP_ASSERT(!pending_key_, "two key() calls in a row");
  if (!first_in_scope_.back()) os_ << ',';
  first_in_scope_.back() = false;
  write_escaped(os_, k);
  os_ << ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  comma_for_value();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_for_value();
  write_escaped(os_, v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) {
  return value(std::string_view(v));
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  os_ << v;
  return *this;
}

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace hp::util
