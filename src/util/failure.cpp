#include "util/failure.hpp"

#include <atomic>
#include <cstdlib>

namespace hp::util {
namespace {

constexpr int kSlots = 8;

// Slot lifecycle: fn is nullptr (free) -> kClaimed (ctx being published) ->
// the real callback. fail_fast skips claimed-but-unpublished slots, so a
// registration racing a failure can never run a callback with a stale ctx.
const FailureDumpFn kClaimed = reinterpret_cast<FailureDumpFn>(1);

struct Slot {
  std::atomic<FailureDumpFn> fn{nullptr};
  std::atomic<void*> ctx{nullptr};
};

Slot g_slots[kSlots];
std::atomic<bool> g_dumping{false};

}  // namespace

int register_failure_dump(FailureDumpFn fn, void* ctx) noexcept {
  for (int i = 0; i < kSlots; ++i) {
    FailureDumpFn expected = nullptr;
    if (g_slots[i].fn.compare_exchange_strong(expected, kClaimed,
                                              std::memory_order_acq_rel)) {
      g_slots[i].ctx.store(ctx, std::memory_order_relaxed);
      g_slots[i].fn.store(fn, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void unregister_failure_dump(int slot) noexcept {
  if (slot < 0 || slot >= kSlots) return;
  g_slots[slot].fn.store(nullptr, std::memory_order_release);
  g_slots[slot].ctx.store(nullptr, std::memory_order_relaxed);
}

void fail_fast() noexcept {
  // Recursion guard: if a dump itself fails (or two threads fail at once),
  // the second entry goes straight to abort instead of re-running dumps.
  if (!g_dumping.exchange(true, std::memory_order_acq_rel)) {
    for (int i = 0; i < kSlots; ++i) {
      const FailureDumpFn fn = g_slots[i].fn.load(std::memory_order_acquire);
      if (fn != nullptr && fn != kClaimed) {
        fn(g_slots[i].ctx.load(std::memory_order_relaxed));
      }
    }
  }
  std::abort();
}

}  // namespace hp::util
