#pragma once

// Inline-capacity vector for the event envelope's child list. Events send a
// handful of children (the hot-potato model sends at most two per handler);
// keeping them inline avoids a heap allocation per processed event on the
// Time Warp hot path. Spills to the heap if a model sends more.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/macros.hpp"

namespace hp::util {

template <typename T, std::size_t InlineCap>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is for POD-ish payloads only");

 public:
  SmallVec() noexcept = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  ~SmallVec() { delete[] heap_; }

  void push_back(const T& v) {
    if (HP_UNLIKELY(size_ == cap_)) grow();
    data()[size_++] = v;
  }

  void clear() noexcept { size_ = 0; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }

 private:
  T* data() noexcept { return heap_ ? heap_ : inline_data(); }
  const T* data() const noexcept { return heap_ ? heap_ : inline_data(); }
  T* inline_data() noexcept { return std::launder(reinterpret_cast<T*>(buf_)); }
  const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(buf_));
  }

  void grow() {
    const std::size_t new_cap = cap_ * 2;
    T* fresh = new T[new_cap];
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = data()[i];
    delete[] heap_;
    heap_ = fresh;
    cap_ = new_cap;
  }

  alignas(T) std::byte buf_[sizeof(T) * InlineCap];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = InlineCap;
};

}  // namespace hp::util
