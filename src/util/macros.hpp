#pragma once

// Small set of project-wide macros. Kept deliberately tiny: assertions that
// stay on in release builds (simulation correctness bugs are silent data
// corruption otherwise) and branch hints for the engine hot path.

#include <cstdio>
#include <cstdlib>

#define HP_LIKELY(x) __builtin_expect(!!(x), 1)
#define HP_UNLIKELY(x) __builtin_expect(!!(x), 0)

// Always-on assertion. The DES engine relies on invariants (event ordering,
// annihilation matching, pool discipline) whose violation must abort rather
// than produce plausible-but-wrong statistics.
#define HP_ASSERT(cond, ...)                                               \
  do {                                                                     \
    if (HP_UNLIKELY(!(cond))) {                                            \
      std::fprintf(stderr, "HP_ASSERT failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, "  " __VA_ARGS__);                              \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
