#pragma once

// Small set of project-wide macros. Kept deliberately tiny: assertions that
// stay on in release builds (simulation correctness bugs are silent data
// corruption otherwise) and branch hints for the engine hot path.

#include <cstdio>
#include <cstdlib>

#define HP_LIKELY(x) __builtin_expect(!!(x), 1)
#define HP_UNLIKELY(x) __builtin_expect(!!(x), 0)

namespace hp::util {
// Defined in util/failure.cpp: runs any registered diagnostic dumps (engines
// register one during run()) and then aborts. Declared here so HP_ASSERT can
// route through it without pulling failure.hpp into every translation unit.
[[noreturn]] void fail_fast() noexcept;
}  // namespace hp::util

// Always-on assertion. The DES engine relies on invariants (event ordering,
// annihilation matching, pool discipline) whose violation must abort rather
// than produce plausible-but-wrong statistics. Failure routes through
// fail_fast() so registered engine dumps (per-PE phase, queue depths, last
// GVT) land on stderr before the process dies.
#define HP_ASSERT(cond, ...)                                               \
  do {                                                                     \
    if (HP_UNLIKELY(!(cond))) {                                            \
      std::fprintf(stderr, "HP_ASSERT failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, "  " __VA_ARGS__);                              \
      std::fprintf(stderr, "\n");                                          \
      ::hp::util::fail_fast();                                             \
    }                                                                      \
  } while (0)
