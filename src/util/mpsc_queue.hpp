#pragma once

// Intrusive lock-free multi-producer/single-consumer queue (Vyukov's
// stub-node design). Used as the Time Warp remote-event inbox: any PE may
// push, only the owning PE pops.
//
// Properties the engine relies on:
//  * wait-free push: one atomic exchange + one release store, no CAS loop,
//    no allocation — a node is linked in O(1) regardless of contention;
//  * per-producer FIFO: two pushes by the same thread are consumed in push
//    order (the positive-before-its-anti invariant of the inbox protocol);
//  * chain push: a producer can link a locally built list of nodes and
//    publish the whole batch with the same two operations as a single node
//    (the rollback send-batching path);
//  * pop never blocks: it returns nullptr both when empty and when the only
//    remaining nodes belong to a producer that has exchanged the tail but
//    not yet linked its predecessor ("mid-push"). Such nodes become visible
//    once the producer's release store lands; the consumer simply retries
//    on its next drain. After a synchronization point that orders all
//    producers before the consumer (the GVT barrier), the list is fully
//    linked and pop/unsafe_for_each observe every pushed node.
//
// Memory ordering: push publishes with a release store of prev->next; pop
// reads next with acquire. Everything a producer wrote to the node (and to
// the interior of a chain) before push therefore happens-before the
// consumer's use of it.

#include <atomic>
#include <cstddef>

namespace hp::util {

struct MpscNode {
  std::atomic<MpscNode*> mpsc_next{nullptr};
};

template <typename T>
class MpscQueue {
  static_assert(std::is_base_of_v<MpscNode, T>,
                "T must derive from util::MpscNode");

 public:
  MpscQueue() noexcept : tail_(&stub_), head_(&stub_) {}
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Producer side. Safe from any thread.
  void push(T* node) noexcept { push_chain(node, node); }

  // Publish an already-linked chain first -> ... -> last (interior links via
  // relaxed stores to mpsc_next are fine; the release below publishes them).
  void push_chain(T* first, T* last) noexcept {
    push_chain_nodes_(first, last);
  }

  // Consumer side. Single thread only.
  //
  // Returns the oldest fully-linked node, or nullptr when the queue is
  // empty / only mid-push nodes remain. A returned node is exclusively
  // owned by the caller; its mpsc_next is dead storage.
  T* pop() noexcept {
    MpscNode* head = head_;
    MpscNode* next = head->mpsc_next.load(std::memory_order_acquire);
    if (head == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or producer mid-push)
      head_ = next;
      head = next;
      next = head->mpsc_next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      head_ = next;
      return static_cast<T*>(head);
    }
    // head is the last linked node. If tail_ has moved past it, a producer
    // is mid-push right behind head: returning head now would lose the
    // pending suffix, so report "nothing yet" and let the consumer retry.
    if (tail_.load(std::memory_order_acquire) != head) return nullptr;
    push_chain_nodes_(&stub_, &stub_);  // recycle the stub behind head
    next = head->mpsc_next.load(std::memory_order_acquire);
    if (next != nullptr) {
      head_ = next;
      return static_cast<T*>(head);
    }
    return nullptr;  // raced with a push between the exchanges; retry later
  }

  // Consumer-side emptiness hint for the hot loop (single consumer thread
  // only — reads the consumer cursor head_). May transiently report "empty"
  // while a push is in flight, but must eventually report "non-empty" for
  // any queue holding fully-linked nodes once producers are quiescent.
  //
  // Checking tail_ alone is NOT enough: pop()'s stub-recycle can race with a
  // concurrent push (producer exchanges tail_ after the consumer's
  // tail_ == head check, link store delayed), after which the consumer's own
  // stub exchange leaves tail_ == &stub_ while head_ still points at
  // unconsumed nodes. In that state head_ != &stub_, so the head_ check
  // below keeps the hint "non-empty" and the drain retries until the
  // producer's link lands.
  bool empty_hint() const noexcept {
    return head_ == &stub_ && tail_.load(std::memory_order_acquire) == &stub_;
  }

  // Non-destructive traversal of all unconsumed nodes. Only valid when all
  // producers are quiescent and ordered before the caller (e.g. inside the
  // GVT barrier section); otherwise mid-push gaps would truncate the walk.
  template <typename Fn>
  void unsafe_for_each(Fn&& fn) const {
    for (const MpscNode* n = head_; n != nullptr;
         n = n->mpsc_next.load(std::memory_order_acquire)) {
      if (n != &stub_) fn(*static_cast<const T*>(n));
    }
  }

 private:
  void push_chain_nodes_(MpscNode* first, MpscNode* last) noexcept {
    last->mpsc_next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = tail_.exchange(last, std::memory_order_acq_rel);
    prev->mpsc_next.store(first, std::memory_order_release);
  }

  alignas(64) std::atomic<MpscNode*> tail_;  // producers exchange here
  alignas(64) MpscNode* head_;               // consumer cursor
  MpscNode stub_;
};

}  // namespace hp::util
