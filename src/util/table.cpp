#include "util/table.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/json_writer.hpp"
#include "util/macros.hpp"

namespace hp::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<Cell> cells) {
  HP_ASSERT(cells.size() == headers_.size(),
            "row has %zu cells, table has %zu columns", cells.size(),
            headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render(const Cell& c) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& v) {
        using V = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<V, double>) {
          os << std::fixed << std::setprecision(3) << v;
        } else {
          os << v;
        }
      },
      c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::setw(static_cast<int>(widths[i]) + 2) << cells[i];
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rendered) line(r);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << headers_[i] << (i + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << render(row[i]) << (i + 1 < row.size() ? "," : "\n");
    }
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  HP_ASSERT(f.good(), "cannot open %s", path.c_str());
  write_csv(f);
}

void Table::write_json(JsonWriter& w) const {
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (std::size_t i = 0; i < row.size(); ++i) {
      w.key(headers_[i]);
      std::visit([&w](const auto& v) { w.value(v); }, row[i]);
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace hp::util
