#pragma once

// Runtime KP -> PE migration (dynamic load balancing) for the Time Warp
// kernel.
//
// The static LP->KP->PE mapping fixes each KP's owner for the whole run;
// under skewed traffic (hotspots, adversarial placements) one PE ends up
// executing — and rolling back — a disproportionate share of events. The
// migration balancer re-assigns whole KPs between PEs at GVT commit points:
// a KP is the kernel's rollback granule, so it is also the natural migration
// granule (its processed deque, pending envelopes and per-LP states move as
// one unit; LP states and RNG streams are globally indexed, so only
// envelope ownership and the ownership table actually change hands).
//
// Decisions are computed from the per-round monitor slices every PE already
// publishes between the GVT barriers (cumulative processed counts, pool
// pressure, per-KP activity candidates). Every PE reads the same slices at
// the same barrier-global round and runs the same pure planner, so all PEs
// agree on the plan without any extra communication. Because the event
// ordering key (EventKey) is fully model-derived and placement-independent,
// *committed results are bit-identical for any KP->PE assignment* — the
// planner is free to use wall-clock-driven signals without breaking
// determinism; only the handoff protocol (no lost envelopes, positives
// before antis) has to be airtight. See des/timewarp.cpp
// `do_migration_round` for the stop-the-world handoff itself.
//
// The config is embedded by value in des::EngineConfig (flag-gated:
// `enabled` off means the kernel's hot paths take one predictable branch).
// `--migrate=` specs parse into it, mirroring the FaultPlan grammar.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hp::des {

struct MigrationConfig {
  bool enabled = false;

  // A migration decision runs every `interval_rounds` GVT rounds (rounds are
  // barrier-global, so every PE hits the decision on the same round).
  std::uint32_t interval_rounds = 4;

  // Scored mode trigger: the hottest PE must score at least
  // `imbalance_threshold` times the mean PE score before anything moves
  // (score = processed + rolled-back deltas since the last decision, so
  // rollback waste counts double — a thrashing PE is a hot PE).
  double imbalance_threshold = 1.5;

  // Upper bound on KP moves per decision round.
  std::uint32_t max_moves = 1;

  // Forced mode (stress/testing): ignore the scores and rotate KP
  // (decision_index % num_kps) to the next PE every due round. Exercises the
  // handoff protocol at maximum cadence, including PEs ending up with zero
  // KPs.
  bool forced = false;

  bool any() const noexcept { return enabled; }

  // Parses a `--migrate=` spec: comma-separated clauses.
  //
  //   every=8,imbalance=1.25,max=2
  //   forced,every=1
  //
  // An empty spec is valid and arms the defaults. Returns false and fills
  // `err` (never touching `out`) on malformed specs: unknown key,
  // non-numeric value, every/max of 0, imbalance below 1.
  static bool parse(std::string_view spec, MigrationConfig& out,
                    std::string& err);

  // Canonical spec round-trip ("off" when disabled).
  std::string to_string() const;

  bool operator==(const MigrationConfig&) const = default;
};

// One PE's load view at a decision round, assembled identically on every PE
// from the published monitor slices.
struct PeLoad {
  std::uint64_t processed_delta = 0;    // forward executions since last decision
  std::uint64_t rolled_back_delta = 0;  // events undone since last decision
  std::uint64_t pool_live = 0;          // outstanding envelopes at the barrier
  std::uint32_t owned_kps = 0;          // KPs this PE currently owns
  bool has_candidate = false;           // a hottest owned KP was published
  std::uint32_t candidate_kp = 0;       // that KP
  std::uint64_t candidate_score = 0;    // its activity since last decision

  // Migration pressure: forward work plus undone work, so wasted optimism
  // weighs the same as useful throughput.
  std::uint64_t score() const noexcept {
    return processed_delta + rolled_back_delta;
  }
};

struct KpMove {
  std::uint32_t kp = 0;
  std::uint32_t src_pe = 0;
  std::uint32_t dst_pe = 0;
  bool operator==(const KpMove&) const = default;
};

// The pure planner: same inputs -> same plan, on every PE. `kp_owner` is the
// current KP->PE ownership table; `decision_index` counts decision rounds
// (drives forced-mode rotation). Scored mode moves the hottest candidate KP
// off the hottest PE (score > imbalance_threshold * mean, owner keeps at
// least one KP) onto the coldest PE (ties broken by pool pressure, then PE
// id). Returns at most `max_moves` moves; an empty vector means the round is
// balanced.
std::vector<KpMove> plan_migrations(const MigrationConfig& cfg,
                                    const std::vector<PeLoad>& loads,
                                    const std::vector<std::uint32_t>& kp_owner,
                                    std::uint64_t decision_index);

}  // namespace hp::des
