#include "des/sequential.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <optional>

#include "obs/probe.hpp"
#include "obs/telemetry.hpp"
#include "util/failure.hpp"
#include "util/hash.hpp"

namespace hp::des {

// Send context: allocate, key, insert into the pending set.
class SequentialEngine::Ctx final : public Context {
 public:
  explicit Ctx(SequentialEngine& e) : e_(e) {}

  void begin_event(Event* ev) {
    cur_ = ev;
    rng_ = &e_.rngs_[ev->key.dst_lp];
    send_seq_ = 0;
    reversing_ = false;
    ev->cv = 0;
  }

 protected:
  Event* prepare_send_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "LP %u t=%.6f: send to out-of-range LP %u at ts=%.6f (num_lps "
              "%u)",
              cur_->key.dst_lp, cur_->key.ts, dst_lp, ts, e_.cfg_.num_lps);
    Event* ev = e_.pool_.allocate();
    ev->key = EventKey{ts, util::hash_combine(cur_->key.tie, send_seq_),
                       cur_->key.dst_lp, dst_lp, send_seq_};
    ++send_seq_;
    ev->send_ts = cur_->key.ts;
    ev->kp = 0;
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }
  void commit_send_(Event* ev) override { e_.pending_.insert(ev); }

 private:
  SequentialEngine& e_;
};

class SequentialEngine::ICtx final : public InitContext {
 public:
  ICtx(SequentialEngine& e, std::uint64_t seed) : e_(e), seed_(seed) {}

  void begin_lp(std::uint32_t lp) {
    lp_ = lp;
    rng_ = &e_.rngs_[lp];
    idx_ = 0;
  }

 protected:
  Event* prepare_schedule_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "init LP %u: schedule to out-of-range LP %u at ts=%.6f (num_lps "
              "%u)",
              lp_, dst_lp, ts, e_.cfg_.num_lps);
    Event* ev = e_.pool_.allocate();
    const std::uint64_t root = util::hash_combine(seed_, lp_);
    ev->key = EventKey{ts, util::hash_combine(root, idx_), lp_, dst_lp, idx_};
    ++idx_;
    ev->send_ts = 0.0;
    ev->kp = 0;
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }
  void commit_schedule_(Event* ev) override { e_.pending_.insert(ev); }

 private:
  SequentialEngine& e_;
  std::uint64_t seed_;
  std::uint32_t idx_ = 0;
};

SequentialEngine::SequentialEngine(Model& model, EngineConfig cfg)
    : model_(model), cfg_(cfg), pending_(cfg.queue_kind) {
  HP_ASSERT(cfg_.num_lps > 0, "num_lps must be positive");
  states_.reserve(cfg_.num_lps);
  rngs_.reserve(cfg_.num_lps);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    states_.push_back(model_.make_state(lp));
    rngs_.emplace_back(util::hash_combine(cfg_.seed, lp));
  }
}

SequentialEngine::~SequentialEngine() = default;

RunStats SequentialEngine::run() {
  RunStats stats;
  obs::MetricsReport& m = stats.metrics;
  // Telemetry comes up before init_lp so the initial schedule()s get
  // creation stamps too (their queue dwell is real: they sit in the pending
  // set until the run loop reaches them).
  telemetry_ = cfg_.obs.telemetry_enabled();
  if (HP_UNLIKELY(telemetry_)) {
    hub_ = std::make_unique<obs::TelemetryHub>(cfg_.obs, 1);
  }
  // Fresh run: seed the initial events. Restored run: reinstate the
  // committed cut instead — LP states + RNG cursors from the image, and the
  // pending events verbatim (full EventKey preserved, so the causal
  // tiebreak chain — and therefore the processing order — is identical to
  // the uninterrupted run).
  CheckpointImage restore_image;
  const bool restoring = !cfg_.restore_path.empty();
  if (restoring) {
    std::string err;
    const bool loaded =
        load_checkpoint_for_restore(cfg_.restore_path, cfg_.seed,
                                    cfg_.num_lps, cfg_.end_time,
                                    restore_image, err);
    HP_ASSERT(loaded, "%s", err.c_str());
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
      apply_lp_record(restore_image.lps[lp], lp, *states_[lp], rngs_[lp]);
    }
    for (const CheckpointEventRecord& rec : restore_image.events) {
      Event* ev = pool_.allocate();
      ev->key = rec.key;
      ev->send_ts = rec.send_ts;
      ev->kp = 0;
      ev->status = EventStatus::Pending;
      ev->payload_size = static_cast<std::uint16_t>(rec.payload.size());
      if (!rec.payload.empty()) {
        std::memcpy(ev->payload, rec.payload.data(), rec.payload.size());
      }
      if (HP_UNLIKELY(telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
      pending_.insert(ev);
    }
  } else {
    ICtx ictx(*this, cfg_.seed);
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
      ictx.begin_lp(lp);
      model_.init_lp(lp, ictx);
    }
  }

  // No per-PE breakdown: the single execution stream fills `total` directly
  // (one Forward phase segment covers the whole run).
  obs::TraceBuffer trace;
  obs::PhaseProbe probe;
  const bool tracing = cfg_.obs.trace;
  if (tracing) trace.reset(cfg_.obs.max_trace_spans_per_pe);
  probe.attach(&m.total, tracing ? &trace : nullptr, cfg_.obs.phase_timers);
  const std::uint64_t epoch_ns = obs::monotonic_ns();
  probe.begin(obs::Phase::Forward);

  // Crash-safety plumbing: progress beacons for the stall watchdog and the
  // fail-fast diagnostic dump, plus the committed-count checkpoint trigger.
  // The committed baseline of a restored run counts the image's events so
  // checkpoint sequence numbers stay monotonic across restores.
  WatchdogHeart wd_heart;
  PeBeacon wd_beacon;
  WatchdogScope wd_scope{"sequential", &wd_heart, &wd_beacon, 1};
  util::ScopedFailureDump wd_dump(failure_dump_adapter, &wd_scope);
  std::optional<Watchdog> watchdog;
  if (cfg_.watchdog.enabled()) watchdog.emplace(cfg_.watchdog, wd_scope);
  wd_beacon.set_phase(BeaconPhase::Execute);
  const bool ck_on = cfg_.checkpoint.enabled();
  const std::uint64_t committed_base = restoring ? restore_image.committed : 0;
  std::uint64_t ck_next =
      ck_on ? (committed_base / cfg_.checkpoint.every + 1) *
                  cfg_.checkpoint.every
            : ~0ull;
  std::uint64_t ck_written = 0;
  Time last_ts = kTimeNegInf;

  Ctx ctx(*this);
  std::uint64_t processed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (Event* ev = pending_.peek_min()) {
    if (ev->key.ts > cfg_.end_time) break;
    // Checkpoint at the first strict timestamp increase past the committed
    // threshold: with everything processed so far at ts < ev->key.ts, the
    // cut "committed < {fence,0,0,0,0} <= pending" exists with fence =
    // ev->key.ts (the pending minimum), which is exactly what the image
    // format requires.
    if (HP_UNLIKELY(committed_base + processed >= ck_next) &&
        ev->key.ts > last_ts) {
      probe.begin(obs::Phase::Checkpoint);
      wd_beacon.set_phase(BeaconPhase::Checkpoint);
      CheckpointImage img;
      img.seed = cfg_.seed;
      img.num_lps = cfg_.num_lps;
      img.fence = ev->key.ts;
      img.end_time = cfg_.end_time;
      img.committed = committed_base + processed;
      img.lps.reserve(cfg_.num_lps);
      for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
        img.lps.push_back(make_lp_record(*states_[lp], rngs_[lp]));
      }
      // The pending set has no iteration API: drain into a stage vector,
      // serialize, reinsert (identical multiset, so order is unaffected).
      std::vector<Event*> stage;
      while (Event* p = pending_.pop_min()) stage.push_back(p);
      img.events.reserve(stage.size());
      for (const Event* p : stage) {
        CheckpointEventRecord rec;
        rec.key = p->key;
        rec.send_ts = p->send_ts;
        rec.payload.assign(
            reinterpret_cast<const std::uint8_t*>(p->payload),
            reinterpret_cast<const std::uint8_t*>(p->payload) +
                p->payload_size);
        img.events.push_back(std::move(rec));
      }
      std::string path, err;
      const bool wrote =
          write_checkpoint(img, cfg_.checkpoint.dir,
                           ck_next / cfg_.checkpoint.every, path, err);
      HP_ASSERT(wrote, "%s", err.c_str());
      ++ck_written;
      for (Event* p : stage) pending_.insert(p);
      ck_next = (img.committed / cfg_.checkpoint.every + 1) *
                cfg_.checkpoint.every;
      probe.begin(obs::Phase::Forward);
      wd_beacon.set_phase(BeaconPhase::Execute);
    }
    pending_.pop_min();
    ev->rng_before = rngs_[ev->key.dst_lp].draw_count();
    ev->status = EventStatus::Processed;
    if (HP_UNLIKELY(telemetry_)) {
      const std::uint64_t now = obs::monotonic_ns();
      if (ev->create_wall_ns != 0) {
        hub_->ring(0).try_push(obs::LatencyMetric::QueueDwell,
                               now - ev->create_wall_ns);
      }
      ev->exec_wall_ns = now;
    }
    ctx.begin_event(ev);
    model_.forward(*states_[ev->key.dst_lp], *ev, ctx);
    model_.commit(*states_[ev->key.dst_lp], *ev);
    last_ts = ev->key.ts;
    ++processed;
    if (HP_UNLIKELY((processed & 1023u) == 0)) {
      wd_heart.gvt_bits.store(std::bit_cast<std::uint64_t>(ev->key.ts),
                              std::memory_order_relaxed);
      wd_heart.committed.store(processed, std::memory_order_relaxed);
      wd_beacon.processed.store(processed, std::memory_order_relaxed);
      wd_beacon.committed.store(processed, std::memory_order_relaxed);
      wd_beacon.pending.store(pending_.size(), std::memory_order_relaxed);
    }
    if (HP_UNLIKELY(telemetry_)) {
      // Execution and commit coincide here, so commit latency is the
      // forward+commit cost itself — the sequential floor of the same
      // metric the optimistic kernel reports.
      hub_->ring(0).try_push(obs::LatencyMetric::CommitLatency,
                             obs::monotonic_ns() - ev->exec_wall_ns);
      if ((processed & 0xFFFFu) == 0) {
        obs::GaugeSnapshot g;
        g.counters[static_cast<std::size_t>(obs::Counter::Processed)] =
            processed;
        g.counters[static_cast<std::size_t>(obs::Counter::Committed)] =
            processed;
        g.gvt = ev->key.ts;
        g.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        hub_->publish_gauges(g);
      }
    }
    pool_.free(ev);
  }
  const auto t1 = std::chrono::steady_clock::now();
  probe.end();
  wd_beacon.set_phase(BeaconPhase::Done);
  if (watchdog) watchdog->stop();

  m.total.at(obs::Counter::Processed) = processed;
  m.total.at(obs::Counter::Committed) = processed;
  m.total.at(obs::Counter::Checkpoints) = ck_written;
  m.total.at(obs::Counter::PoolEnvelopes) = pool_.allocated();
  m.total.at(obs::Counter::PoolLiveEnvelopes) = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, pool_.live()));
  m.total.at(obs::Counter::PoolPeakLive) =
      static_cast<std::uint64_t>(pool_.peak_live());
  m.total.at(obs::Counter::PoolSlabs) = pool_.slabs_allocated();
  m.total.at(obs::Counter::PoolBytes) = pool_.pool_bytes();
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  m.final_gvt = pending_.empty() ? kTimeInf : pending_.peek_min()->key.ts;
  if (tracing) {
    m.trace_spans = obs::write_chrome_trace(cfg_.obs.trace_path, epoch_ns,
                                            {&trace}, m.gvt_series)
                        .spans;
    m.trace_spans_dropped = trace.dropped();
  }
  // Events beyond end_time are never executed; release them.
  while (Event* ev = pending_.pop_min()) pool_.free(ev);

  if (HP_UNLIKELY(telemetry_)) {
    // The loop has exited, so the ring's drop counter is final.
    m.total.at(obs::Counter::TelemetryDropped) = hub_->ring(0).dropped();
    obs::GaugeSnapshot g;
    g.counters = m.total.counters;
    g.phase_ns = m.total.phase_ns;
    g.gvt = m.final_gvt;
    g.wall_seconds = m.wall_seconds;
    hub_->publish_gauges(g);
    hub_->finalize_into(m);
    hub_.reset();
  }
  return stats;
}

}  // namespace hp::des
