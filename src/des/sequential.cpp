#include "des/sequential.hpp"

#include <chrono>

#include "obs/probe.hpp"
#include "obs/telemetry.hpp"
#include "util/hash.hpp"

namespace hp::des {

// Send context: allocate, key, insert into the pending set.
class SequentialEngine::Ctx final : public Context {
 public:
  explicit Ctx(SequentialEngine& e) : e_(e) {}

  void begin_event(Event* ev) {
    cur_ = ev;
    rng_ = &e_.rngs_[ev->key.dst_lp];
    send_seq_ = 0;
    reversing_ = false;
    ev->cv = 0;
  }

 protected:
  Event* prepare_send_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "LP %u t=%.6f: send to out-of-range LP %u at ts=%.6f (num_lps "
              "%u)",
              cur_->key.dst_lp, cur_->key.ts, dst_lp, ts, e_.cfg_.num_lps);
    Event* ev = e_.pool_.allocate();
    ev->key = EventKey{ts, util::hash_combine(cur_->key.tie, send_seq_),
                       cur_->key.dst_lp, dst_lp, send_seq_};
    ++send_seq_;
    ev->send_ts = cur_->key.ts;
    ev->kp = 0;
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }
  void commit_send_(Event* ev) override { e_.pending_.insert(ev); }

 private:
  SequentialEngine& e_;
};

class SequentialEngine::ICtx final : public InitContext {
 public:
  ICtx(SequentialEngine& e, std::uint64_t seed) : e_(e), seed_(seed) {}

  void begin_lp(std::uint32_t lp) {
    lp_ = lp;
    rng_ = &e_.rngs_[lp];
    idx_ = 0;
  }

 protected:
  Event* prepare_schedule_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "init LP %u: schedule to out-of-range LP %u at ts=%.6f (num_lps "
              "%u)",
              lp_, dst_lp, ts, e_.cfg_.num_lps);
    Event* ev = e_.pool_.allocate();
    const std::uint64_t root = util::hash_combine(seed_, lp_);
    ev->key = EventKey{ts, util::hash_combine(root, idx_), lp_, dst_lp, idx_};
    ++idx_;
    ev->send_ts = 0.0;
    ev->kp = 0;
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }
  void commit_schedule_(Event* ev) override { e_.pending_.insert(ev); }

 private:
  SequentialEngine& e_;
  std::uint64_t seed_;
  std::uint32_t idx_ = 0;
};

SequentialEngine::SequentialEngine(Model& model, EngineConfig cfg)
    : model_(model), cfg_(cfg), pending_(cfg.queue_kind) {
  HP_ASSERT(cfg_.num_lps > 0, "num_lps must be positive");
  states_.reserve(cfg_.num_lps);
  rngs_.reserve(cfg_.num_lps);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    states_.push_back(model_.make_state(lp));
    rngs_.emplace_back(util::hash_combine(cfg_.seed, lp));
  }
}

SequentialEngine::~SequentialEngine() = default;

RunStats SequentialEngine::run() {
  RunStats stats;
  obs::MetricsReport& m = stats.metrics;
  // Telemetry comes up before init_lp so the initial schedule()s get
  // creation stamps too (their queue dwell is real: they sit in the pending
  // set until the run loop reaches them).
  telemetry_ = cfg_.obs.telemetry_enabled();
  if (HP_UNLIKELY(telemetry_)) {
    hub_ = std::make_unique<obs::TelemetryHub>(cfg_.obs, 1);
  }
  ICtx ictx(*this, cfg_.seed);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    ictx.begin_lp(lp);
    model_.init_lp(lp, ictx);
  }

  // No per-PE breakdown: the single execution stream fills `total` directly
  // (one Forward phase segment covers the whole run).
  obs::TraceBuffer trace;
  obs::PhaseProbe probe;
  const bool tracing = cfg_.obs.trace;
  if (tracing) trace.reset(cfg_.obs.max_trace_spans_per_pe);
  probe.attach(&m.total, tracing ? &trace : nullptr, cfg_.obs.phase_timers);
  const std::uint64_t epoch_ns = obs::monotonic_ns();
  probe.begin(obs::Phase::Forward);

  Ctx ctx(*this);
  std::uint64_t processed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (Event* ev = pending_.peek_min()) {
    if (ev->key.ts > cfg_.end_time) break;
    pending_.pop_min();
    ev->rng_before = rngs_[ev->key.dst_lp].draw_count();
    ev->status = EventStatus::Processed;
    if (HP_UNLIKELY(telemetry_)) {
      const std::uint64_t now = obs::monotonic_ns();
      if (ev->create_wall_ns != 0) {
        hub_->ring(0).try_push(obs::LatencyMetric::QueueDwell,
                               now - ev->create_wall_ns);
      }
      ev->exec_wall_ns = now;
    }
    ctx.begin_event(ev);
    model_.forward(*states_[ev->key.dst_lp], *ev, ctx);
    model_.commit(*states_[ev->key.dst_lp], *ev);
    ++processed;
    if (HP_UNLIKELY(telemetry_)) {
      // Execution and commit coincide here, so commit latency is the
      // forward+commit cost itself — the sequential floor of the same
      // metric the optimistic kernel reports.
      hub_->ring(0).try_push(obs::LatencyMetric::CommitLatency,
                             obs::monotonic_ns() - ev->exec_wall_ns);
      if ((processed & 0xFFFFu) == 0) {
        obs::GaugeSnapshot g;
        g.counters[static_cast<std::size_t>(obs::Counter::Processed)] =
            processed;
        g.counters[static_cast<std::size_t>(obs::Counter::Committed)] =
            processed;
        g.gvt = ev->key.ts;
        g.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        hub_->publish_gauges(g);
      }
    }
    pool_.free(ev);
  }
  const auto t1 = std::chrono::steady_clock::now();
  probe.end();

  m.total.at(obs::Counter::Processed) = processed;
  m.total.at(obs::Counter::Committed) = processed;
  m.total.at(obs::Counter::PoolEnvelopes) = pool_.allocated();
  m.total.at(obs::Counter::PoolLiveEnvelopes) = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, pool_.live()));
  m.total.at(obs::Counter::PoolPeakLive) =
      static_cast<std::uint64_t>(pool_.peak_live());
  m.total.at(obs::Counter::PoolSlabs) = pool_.slabs_allocated();
  m.total.at(obs::Counter::PoolBytes) = pool_.pool_bytes();
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  m.final_gvt = pending_.empty() ? kTimeInf : pending_.peek_min()->key.ts;
  if (tracing) {
    m.trace_spans = obs::write_chrome_trace(cfg_.obs.trace_path, epoch_ns,
                                            {&trace}, m.gvt_series)
                        .spans;
    m.trace_spans_dropped = trace.dropped();
  }
  // Events beyond end_time are never executed; release them.
  while (Event* ev = pending_.pop_min()) pool_.free(ev);

  if (HP_UNLIKELY(telemetry_)) {
    // The loop has exited, so the ring's drop counter is final.
    m.total.at(obs::Counter::TelemetryDropped) = hub_->ring(0).dropped();
    obs::GaugeSnapshot g;
    g.counters = m.total.counters;
    g.phase_ns = m.total.phase_ns;
    g.gvt = m.final_gvt;
    g.wall_seconds = m.wall_seconds;
    hub_->publish_gauges(g);
    hub_->finalize_into(m);
    hub_.reset();
  }
  return stats;
}

}  // namespace hp::des
