#include "des/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "des/lp_state.hpp"
#include "util/macros.hpp"
#include "util/rng.hpp"

namespace hp::des {

namespace {

constexpr std::uint32_t kMagic = 0x4850434bu;  // "HPCK" little-endian
constexpr std::uint32_t kVersion = 1;

// FNV-1a over the payload; cheap, order-sensitive, and good enough to catch
// the failure modes that matter here (truncation, torn writes, bit rot).
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.front() == '-') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

bool CheckpointConfig::parse(std::string_view spec, CheckpointConfig& out,
                             std::string& err) {
  CheckpointConfig cfg;
  bool saw_every = false;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view pair = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq == pair.size() - 1) {
      err = "checkpoint: expected key=value, got '" + std::string(pair) + "'";
      return false;
    }
    const std::string_view key = trim(pair.substr(0, eq));
    const std::string_view val = trim(pair.substr(eq + 1));
    if (key == "every") {
      if (!parse_u64(val, cfg.every) || cfg.every == 0) {
        err = "checkpoint: every expects a positive integer, got '" +
              std::string(val) + "'";
        return false;
      }
      saw_every = true;
    } else if (key == "dir") {
      cfg.dir = std::string(val);
    } else {
      err = "checkpoint: unknown key '" + std::string(key) +
            "' (expected every, dir)";
      return false;
    }
  }
  if (!saw_every) {
    err = "checkpoint: missing required every=N";
    return false;
  }
  out = cfg;
  return true;
}

std::string CheckpointConfig::to_string() const {
  if (!enabled()) return "off";
  return "every=" + std::to_string(every) + ",dir=" + dir;
}

void CheckpointImage::encode(util::ByteSink& sink) const {
  sink.u64(seed);
  sink.u32(num_lps);
  sink.f64(fence);
  sink.f64(end_time);
  sink.u64(committed);
  sink.u64(lps.size());
  for (const CheckpointLpRecord& lp : lps) {
    sink.u64(lp.rng_state);
    sink.u64(lp.rng_draws);
    sink.u64(lp.state.size());
    sink.bytes(lp.state.data(), lp.state.size());
  }
  sink.u64(events.size());
  for (const CheckpointEventRecord& ev : events) {
    sink.f64(ev.key.ts);
    sink.u64(ev.key.tie);
    sink.u32(ev.key.src_lp);
    sink.u32(ev.key.dst_lp);
    sink.u32(ev.key.send_index);
    sink.f64(ev.send_ts);
    sink.u32(static_cast<std::uint32_t>(ev.payload.size()));
    sink.bytes(ev.payload.data(), ev.payload.size());
  }
}

bool CheckpointImage::decode(util::ByteSource& src, std::string& err) {
  seed = src.u64();
  num_lps = src.u32();
  fence = src.f64();
  end_time = src.f64();
  committed = src.u64();
  const std::uint64_t num_lp_records = src.u64();
  if (!src.ok() || num_lp_records != num_lps) {
    err = "checkpoint image: malformed LP table";
    return false;
  }
  lps.clear();
  lps.reserve(num_lp_records);
  for (std::uint64_t i = 0; i < num_lp_records; ++i) {
    CheckpointLpRecord lp;
    lp.rng_state = src.u64();
    lp.rng_draws = src.u64();
    const std::uint64_t state_size = src.u64();
    if (!src.ok() || state_size > src.remaining()) {
      err = "checkpoint image: truncated LP record " + std::to_string(i);
      return false;
    }
    lp.state.resize(state_size);
    src.bytes(lp.state.data(), state_size);
    lps.push_back(std::move(lp));
  }
  const std::uint64_t num_events = src.u64();
  if (!src.ok()) {
    err = "checkpoint image: truncated event table";
    return false;
  }
  events.clear();
  events.reserve(static_cast<std::size_t>(num_events));
  for (std::uint64_t i = 0; i < num_events; ++i) {
    CheckpointEventRecord ev;
    ev.key.ts = src.f64();
    ev.key.tie = src.u64();
    ev.key.src_lp = src.u32();
    ev.key.dst_lp = src.u32();
    ev.key.send_index = src.u32();
    ev.send_ts = src.f64();
    const std::uint32_t payload_size = src.u32();
    if (!src.ok() || payload_size > src.remaining()) {
      err = "checkpoint image: truncated event record " + std::to_string(i);
      return false;
    }
    ev.payload.resize(payload_size);
    src.bytes(ev.payload.data(), payload_size);
    events.push_back(std::move(ev));
  }
  if (!src.exhausted()) {
    err = "checkpoint image: trailing bytes after event table";
    return false;
  }
  return true;
}

bool write_checkpoint(const CheckpointImage& image, const std::string& dir,
                      std::uint64_t seq, std::string& path_out,
                      std::string& err) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir)) {
    err = "checkpoint: cannot create directory '" + dir +
          "': " + ec.message();
    return false;
  }

  util::ByteSink payload;
  image.encode(payload);

  util::ByteSink header;
  header.u32(kMagic);
  header.u32(kVersion);
  header.u64(payload.size());
  header.u64(fnv1a(payload.data().data(), payload.size()));

  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%06llu.hpck",
                static_cast<unsigned long long>(seq));
  const fs::path final_path = fs::path(dir) / name;
  const fs::path tmp_path = fs::path(dir) / (std::string(name) + ".tmp");

  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      err = "checkpoint: cannot open '" + tmp_path.string() + "' for write";
      return false;
    }
    out.write(reinterpret_cast<const char*>(header.data().data()),
              static_cast<std::streamsize>(header.size()));
    out.write(reinterpret_cast<const char*>(payload.data().data()),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      err = "checkpoint: short write to '" + tmp_path.string() + "'";
      return false;
    }
  }
  // Atomic publish: readers either see the complete previous image or the
  // complete new one, never a half-written file.
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    err = "checkpoint: rename to '" + final_path.string() +
          "' failed: " + ec.message();
    return false;
  }
  path_out = final_path.string();
  return true;
}

bool read_checkpoint(const std::string& path, CheckpointImage& image,
                     std::string& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err = "checkpoint: cannot open '" + path + "'";
    return false;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  util::ByteSource header(bytes.data(), bytes.size());
  const std::uint32_t magic = header.u32();
  const std::uint32_t version = header.u32();
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (!header.ok() || magic != kMagic) {
    err = "checkpoint: '" + path + "' is not a checkpoint image (bad magic)";
    return false;
  }
  if (version != kVersion) {
    err = "checkpoint: '" + path + "' has unsupported version " +
          std::to_string(version);
    return false;
  }
  if (payload_size != header.remaining()) {
    err = "checkpoint: '" + path + "' is truncated (header claims " +
          std::to_string(payload_size) + " payload bytes, file has " +
          std::to_string(header.remaining()) + ")";
    return false;
  }
  const std::uint8_t* payload = bytes.data() + (bytes.size() - payload_size);
  if (fnv1a(payload, payload_size) != checksum) {
    err = "checkpoint: '" + path + "' failed checksum verification";
    return false;
  }
  util::ByteSource src(payload, payload_size);
  std::string decode_err;
  if (!image.decode(src, decode_err)) {
    err = "checkpoint: '" + path + "': " + decode_err;
    return false;
  }
  return true;
}

std::string find_latest_checkpoint(const std::string& path_or_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_regular_file(path_or_dir, ec)) return path_or_dir;
  if (!fs::is_directory(path_or_dir, ec)) return "";
  std::string best;
  std::uint64_t best_seq = 0;
  for (const auto& entry : fs::directory_iterator(path_or_dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "ckpt-%llu.hpck%n", &seq, &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      if (best.empty() || seq >= best_seq) {
        best_seq = seq;
        best = entry.path().string();
      }
    }
  }
  return best;
}

bool load_checkpoint_for_restore(const std::string& path_or_dir,
                                 std::uint64_t seed, std::uint32_t num_lps,
                                 Time end_time, CheckpointImage& image,
                                 std::string& err) {
  const std::string path = find_latest_checkpoint(path_or_dir);
  if (path.empty()) {
    err = "restore: no checkpoint image found at '" + path_or_dir + "'";
    return false;
  }
  if (!read_checkpoint(path, image, err)) return false;
  if (image.seed != seed) {
    err = "restore: '" + path + "' was written by a run with seed " +
          std::to_string(image.seed) + ", this run uses seed " +
          std::to_string(seed);
    return false;
  }
  if (image.num_lps != num_lps) {
    err = "restore: '" + path + "' holds " + std::to_string(image.num_lps) +
          " LPs, this run configures " + std::to_string(num_lps);
    return false;
  }
  if (image.end_time != end_time) {
    err = "restore: '" + path + "' was written for horizon " +
          std::to_string(image.end_time) + ", this run ends at " +
          std::to_string(end_time);
    return false;
  }
  return true;
}

CheckpointLpRecord make_lp_record(const LpState& state,
                                  const util::ReversibleRng& rng) {
  CheckpointLpRecord rec;
  rec.rng_state = rng.raw_state();
  rec.rng_draws = rng.draw_count();
  util::ByteSink sink;
  state.serialize(sink);
  rec.state = sink.data();
  return rec;
}

void apply_lp_record(const CheckpointLpRecord& rec, std::uint32_t lp,
                     LpState& state, util::ReversibleRng& rng) {
  util::ByteSource src(rec.state);
  state.deserialize(src);
  HP_ASSERT(src.exhausted(),
            "restore: LP %u state record rejected by the model's deserialize "
            "(%zu of %zu bytes consumed%s)",
            lp, rec.state.size() - src.remaining(), rec.state.size(),
            src.ok() ? "" : ", read past the end");
  rng.restore(rec.rng_state, rec.rng_draws);
}

}  // namespace hp::des
