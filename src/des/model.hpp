#pragma once

// The model interface: what a simulation application implements to run on
// either kernel (sequential or Time Warp). Mirrors the ROSS LP contract:
//
//   * make_state  — allocate one LP's state (ROSS SV).
//   * init_lp     — schedule the LP's initial events (ROSS startup).
//   * forward     — the event handler. May mutate the LP state, draw from
//                   the LP's reversible RNG, send new events, stash saved
//                   values in the event's message payload, and record
//                   control bits in ctx.bits() (the tw_bf analogue).
//   * reverse     — undo forward exactly: restore state mutations, rewind
//                   the RNG one step per forward draw (guided by the control
//                   bits / saved fields). Child events are cancelled by the
//                   engine via anti-messages; reverse must not send.
//   * commit      — optional hook fired once per event when it can no
//                   longer roll back (immediately in the sequential kernel,
//                   at fossil collection under Time Warp).
//
// Determinism contract: forward must be a pure function of (state, event,
// rng stream); any violation breaks both rollback and the sequential ==
// parallel equivalence the report demonstrates in Attachment 3.

#include <cstdint>
#include <memory>

#include "des/event.hpp"
#include "des/lp_state.hpp"
#include "des/time.hpp"
#include "util/macros.hpp"
#include "util/rng.hpp"

namespace hp::des {

// Send-side interface handed to forward handlers. Engines subclass it; the
// two virtual hooks keep payload filling race-free: the envelope is fully
// written before commit_send_ makes it visible to another PE.
class Context {
 public:
  virtual ~Context() = default;

  Time now() const noexcept { return cur_->key.ts; }
  std::uint32_t self() const noexcept { return cur_->key.dst_lp; }
  util::ReversibleRng& rng() noexcept { return *rng_; }
  std::uint32_t& bits() noexcept { return cur_->cv; }
  bool reversing() const noexcept { return reversing_; }

  template <typename M>
  void send(std::uint32_t dst_lp, Time delay, const M& m) {
    static_assert(std::is_trivially_copyable_v<M> && sizeof(M) <= kMaxPayload,
                  "message must be a POD that fits the payload buffer");
    HP_ASSERT(!reversing_, "send() called from a reverse handler");
    HP_ASSERT(delay > 0.0, "send() needs a strictly positive delay, got %f",
              delay);
    Event* ev = prepare_send_(dst_lp, now() + delay);
    std::memcpy(ev->payload, &m, sizeof(M));
    ev->payload_size = sizeof(M);
    commit_send_(ev);
  }

 protected:
  // Allocate an envelope and fill key/kp: ts as given, src = self(),
  // send_index = running per-handler counter, tie derived from cur_.
  virtual Event* prepare_send_(std::uint32_t dst_lp, Time ts) = 0;
  // Insert into pending structures / route to the destination PE.
  virtual void commit_send_(Event* ev) = 0;

  Event* cur_ = nullptr;
  util::ReversibleRng* rng_ = nullptr;
  std::uint32_t send_seq_ = 0;
  bool reversing_ = false;
};

// Initial-event scheduling interface (pre-run, single-threaded, never rolled
// back). Root event ties hash (seed, lp, call index) so initial ordering is
// deterministic too.
class InitContext {
 public:
  virtual ~InitContext() = default;

  std::uint32_t self() const noexcept { return lp_; }
  util::ReversibleRng& rng() noexcept { return *rng_; }

  template <typename M>
  void schedule(std::uint32_t dst_lp, Time ts, const M& m) {
    static_assert(std::is_trivially_copyable_v<M> && sizeof(M) <= kMaxPayload,
                  "message must be a POD that fits the payload buffer");
    HP_ASSERT(ts >= 0.0, "initial events must have ts >= 0, got %f", ts);
    Event* ev = prepare_schedule_(dst_lp, ts);
    std::memcpy(ev->payload, &m, sizeof(M));
    ev->payload_size = sizeof(M);
    commit_schedule_(ev);
  }

 protected:
  virtual Event* prepare_schedule_(std::uint32_t dst_lp, Time ts) = 0;
  virtual void commit_schedule_(Event* ev) = 0;

  std::uint32_t lp_ = 0;
  util::ReversibleRng* rng_ = nullptr;
};

class Model {
 public:
  virtual ~Model() = default;

  virtual std::unique_ptr<LpState> make_state(std::uint32_t lp) = 0;
  virtual void init_lp(std::uint32_t lp, InitContext& ctx) = 0;
  virtual void forward(LpState& state, Event& ev, Context& ctx) = 0;
  virtual void reverse(LpState& state, Event& ev, Context& ctx) = 0;
  virtual void commit(LpState& /*state*/, const Event& /*ev*/) {}
};

}  // namespace hp::des
