#pragma once

// Optimistic (Time Warp) kernel with reverse computation — the ROSS
// equivalent this reproduction builds (DESIGN.md "Engine design notes").
//
// Threading model: one PE per std::jthread over shared memory. Each PE owns
//   * a pending event set ordered by the deterministic EventKey,
//   * the processed-event deques of its KPs (rollback granularity),
//   * an index from EventKey to live envelope (for anti-message matching),
//   * a lock-free MPSC inbox (util::MpscQueue) other PEs push positive
//     events / anti tokens to — both travel as Event envelopes, antis with
//     is_anti set, so one FIFO channel preserves positive-before-anti order,
//   * per-destination outbound batches: remote sends and cancellations are
//     staged on a local chain and published with a single push_chain per
//     destination (a KP rollback emits one linked batch per peer instead of
//     N contended pushes), flushed at the top of every scheduler iteration
//     so nothing staged ever survives into a GVT round,
//   * an event pool.
// LP states and RNG streams are globally indexed but only ever touched by
// the owning PE during the run.
//
// Rollback is KP-granular: a straggler or anti-message whose key precedes
// the KP's last processed key pops events in reverse order, cancelling their
// children (same-PE synchronously, remote via anti tokens) and invoking the
// model's reverse handler (or restoring snapshots in the state-saving
// ablation mode).
//
// GVT is barrier-synchronized: a request flag gathers all PEs at barrier A
// (after which nobody sends; outbound batches are flushed before arriving,
// so every in-flight envelope is fully linked in some inbox), each publishes
// min(pending, inbox) and meets barrier B, after which everybody knows the
// global minimum, fossil-collects its own KPs and resumes. Termination when
// GVT exceeds the end time.
//
// GVT pacing is adaptive by default (EngineConfig::adaptive_gvt): each PE
// floats an effective interval in [kGvtMinInterval, gvt_interval_events]
// scaled by the previous round's commit yield, and an idle PE requests GVT
// after an exponentially backed-off spin count (fast termination detection
// without barrier storms). adaptive_gvt=false restores the fixed
// gvt_interval_events / 256-spin thresholds.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/model.hpp"
#include "des/splay_queue.hpp"
#include "net/mapping.hpp"
#include "obs/forensics.hpp"
#include "obs/monitor.hpp"
#include "obs/probe.hpp"
#include "util/mpsc_queue.hpp"

namespace hp::des {

class TwEngineInitCtx;

class TimeWarpEngine final : public Engine {
  friend class TwEngineInitCtx;
 public:
  TimeWarpEngine(Model& model, EngineConfig cfg);
  ~TimeWarpEngine() override;

  TimeWarpEngine(const TimeWarpEngine&) = delete;
  TimeWarpEngine& operator=(const TimeWarpEngine&) = delete;

  RunStats run() override;

  LpState& state(std::uint32_t lp) noexcept override { return *states_[lp]; }
  const LpState& state(std::uint32_t lp) const noexcept override {
    return *states_[lp];
  }
  std::uint32_t num_lps() const noexcept override { return cfg_.num_lps; }

 private:
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const noexcept {
      return a->key < b->key;
    }
  };

  // Pending set with a switchable backend (EngineConfig::QueueKind).
  class PendingQueue {
   public:
    void configure(EngineConfig::QueueKind kind) { use_splay_ = kind == EngineConfig::QueueKind::Splay; }
    bool empty() const noexcept {
      return use_splay_ ? splay_.empty() : set_.empty();
    }
    void insert(Event* ev) {
      if (use_splay_) splay_.insert(ev);
      else set_.insert(ev);
    }
    Event* peek_min() {
      if (use_splay_) return splay_.peek_min();
      return set_.empty() ? nullptr : *set_.begin();
    }
    Event* pop_min() {
      if (use_splay_) return splay_.pop_min();
      if (set_.empty()) return nullptr;
      Event* ev = *set_.begin();
      set_.erase(set_.begin());
      return ev;
    }
    bool erase(Event* ev) {
      if (use_splay_) return splay_.erase(ev);
      auto [lo, hi] = set_.equal_range(ev);
      for (auto it = lo; it != hi; ++it) {
        if (*it == ev) {
          set_.erase(it);
          return true;
        }
      }
      return false;
    }

   private:
    bool use_splay_ = true;
    SplayQueue splay_;
    std::multiset<Event*, KeyLess> set_;
  };

  struct KpData {
    std::deque<Event*> processed;  // committed-prefix popped at fossil time
  };

  // Locally staged chain of envelopes bound for one destination PE,
  // published with a single MpscQueue::push_chain.
  struct OutBatch {
    Event* head = nullptr;
    Event* tail = nullptr;
    std::uint32_t count = 0;
  };

  struct alignas(64) PeData {
    std::uint32_t id = 0;
    std::vector<std::uint32_t> kps;
    PendingQueue pending;
    // uid -> live envelope (pending or processed) for anti-message matching.
    std::unordered_map<std::uint64_t, Event*> index;
    util::MpscQueue<Event> inbox;
    EventPool pool;
    std::uint64_t uid_counter = 0;

    // Outbound staging, indexed by destination PE; out_dirty lists the
    // destinations with a non-empty batch. Invariant: both are empty
    // whenever the PE is at the top of its scheduler loop past the flush
    // (in particular on every gvt_round entry).
    std::vector<OutBatch> out;
    std::vector<std::uint32_t> out_dirty;

    // Adaptive pacing state.
    std::uint32_t effective_gvt_interval = 0;  // set from cfg at run start
    std::uint32_t idle_backoff = 0;            // current idle-trigger bound
    std::uint64_t committed_at_last_gvt = 0;
    std::uint64_t processed_since_gvt = 0;
    std::uint32_t idle_iters = 0;

    // Observability: named counters + per-phase wall time (the scheduler
    // loop talks to `probe`, which charges `metrics` and records spans into
    // `trace` when tracing is on), plus this PE's share of the GVT-round
    // time series. Local round counter doubles as the ring's round index —
    // rounds are barrier-global, so every PE counts them identically.
    obs::PeMetrics metrics;
    obs::PhaseProbe probe;
    obs::TraceBuffer trace;
    obs::GvtSeriesRing series;
    std::uint64_t local_rounds = 0;

    // Rollback forensics: the per-KP heatmaps this PE accumulates, the
    // cascade context (chain length of the rollback episode currently
    // executing; 0 = ambient, so episodes it induces are depth ctx + 1),
    // and a counter minting unique flow-event ids.
    obs::RollbackForensics forensics;
    std::uint32_t cascade_ctx = 0;
    std::uint64_t flow_counter = 0;
  };

  // One cache line per PE of live-monitor state, written between GVT
  // barriers A and B and read by PE 0 after barrier B (no other PE can pass
  // the *next* barrier A until PE 0 arrives, so the reads race with nothing).
  struct alignas(64) MonitorSlice {
    std::uint64_t processed = 0;    // cumulative forward executions
    std::uint64_t rolled_back = 0;  // cumulative events undone
    std::uint64_t inbox_depth = 0;  // envelopes seen at this round's barrier
    bool has_top = false;
    std::uint32_t top_kp = 0;
    std::uint64_t top_kp_events = 0;
  };

  class TwCtx;

  void run_pe(PeData& pe);
  void drain_inbox(PeData& pe);
  void deliver(PeData& pe, Event* ev);
  // Stage an envelope for a remote PE (positives and anti tokens alike);
  // flush_outboxes publishes every staged chain, one push per destination.
  void stage_remote(PeData& pe, std::uint32_t dst_pe, Event* ev);
  void flush_outboxes(PeData& pe);
  void send_anti(PeData& pe, const ChildRef& c);
  // `offender_kp`/`offender_pe` attribute any rollback the annihilation
  // induces (the canceller's KP for remote antis, the dying parent's KP for
  // synchronous local cancellation); `send_wall_ns` is the anti's send stamp
  // (0 when local or stamps are off).
  void annihilate(PeData& pe, std::uint64_t uid, std::uint32_t offender_kp,
                  std::uint32_t offender_pe, std::uint64_t send_wall_ns);
  void rollback(PeData& pe, std::uint32_t kp, const EventKey& key,
                const obs::RollbackCause& cause);
  void cancel_children(PeData& pe, Event* ev);
  void cancel_stale(PeData& pe, Event* ev);
  void undo_event(PeData& pe, Event* ev);
  void process_one(PeData& pe, Event* ev);
  // Returns true when the run is complete (GVT beyond end time).
  bool gvt_round(PeData& pe);
  // PE 0 only, after barrier B: aggregate the monitor slices and emit one
  // JSON-lines heartbeat record.
  void emit_monitor_record(std::uint64_t round_idx, Time gvt);
  void fossil_collect(PeData& pe, Time gvt);
  Event* next_event(PeData& pe);
  void seed_initial_events();

  Model& model_;
  EngineConfig cfg_;
  std::unique_ptr<net::Mapping> owned_mapping_;
  const net::Mapping* mapping_ = nullptr;

  std::vector<std::unique_ptr<LpState>> states_;
  std::vector<util::ReversibleRng> rngs_;
  std::vector<std::uint32_t> lp_kp_;
  std::vector<std::uint32_t> lp_pe_;
  std::vector<std::uint32_t> kp_pe_;

  std::vector<KpData> kps_;
  std::vector<std::unique_ptr<PeData>> pes_;
  std::vector<std::unique_ptr<TwCtx>> fwd_ctx_;
  std::vector<std::unique_ptr<TwCtx>> rev_ctx_;

  std::barrier<> bar_a_;
  std::barrier<> bar_b_;
  std::atomic<bool> gvt_request_{false};
  std::vector<Time> local_min_;  // indexed by PE, padded writes are fine here
  std::atomic<std::uint64_t> gvt_rounds_{0};
  std::atomic<Time> shared_gvt_{0.0};
  std::uint64_t epoch_ns_ = 0;  // run-start timestamp for series/trace

  // Stamp remote sends with wall time for trace flow events (only when
  // tracing AND forensics are both on; otherwise zero clock reads).
  bool trace_stamps_ = false;

  // Live monitor (null unless ObsConfig::monitor). Slices are per-PE; the
  // mon_last_* bookkeeping is touched only by PE 0.
  std::unique_ptr<obs::MonitorWriter> monitor_;
  std::vector<MonitorSlice> mon_slices_;
  std::uint64_t mon_last_processed_ = 0;
  std::uint64_t mon_last_rolled_back_ = 0;
  std::uint64_t mon_last_ns_ = 0;
  std::uint32_t mon_rounds_since_emit_ = 0;
};

}  // namespace hp::des
