#pragma once

// Optimistic (Time Warp) kernel with reverse computation — the ROSS
// equivalent this reproduction builds (DESIGN.md "Engine design notes").
//
// Threading model: one PE per std::jthread over shared memory. Each PE owns
//   * a pending event set ordered by the deterministic EventKey,
//   * the processed-event deques of its KPs (rollback granularity),
//   * an index from EventKey to live envelope (for anti-message matching),
//   * a mutex-guarded inbox other PEs push positive events / anti tokens to,
//   * an event pool.
// LP states and RNG streams are globally indexed but only ever touched by
// the owning PE during the run.
//
// Rollback is KP-granular: a straggler or anti-message whose key precedes
// the KP's last processed key pops events in reverse order, cancelling their
// children (same-PE synchronously, remote via anti tokens) and invoking the
// model's reverse handler (or restoring snapshots in the state-saving
// ablation mode).
//
// GVT is barrier-synchronized: a request flag gathers all PEs at barrier A
// (after which nobody sends), each publishes min(pending, inbox) and meets
// barrier B, after which everybody knows the global minimum, fossil-collects
// its own KPs and resumes. Termination when GVT exceeds the end time.

#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/model.hpp"
#include "des/splay_queue.hpp"
#include "net/mapping.hpp"

namespace hp::des {

class TwEngineInitCtx;

class TimeWarpEngine {
  friend class TwEngineInitCtx;
 public:
  TimeWarpEngine(Model& model, EngineConfig cfg);
  ~TimeWarpEngine();

  TimeWarpEngine(const TimeWarpEngine&) = delete;
  TimeWarpEngine& operator=(const TimeWarpEngine&) = delete;

  RunStats run();

  LpState& state(std::uint32_t lp) noexcept { return *states_[lp]; }
  const LpState& state(std::uint32_t lp) const noexcept { return *states_[lp]; }
  std::uint32_t num_lps() const noexcept { return cfg_.num_lps; }

  // ROSS-style statistics collection visitor; call only after run().
  template <typename Fn>
  void for_each_state(Fn&& fn) const {
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) fn(lp, *states_[lp]);
  }

 private:
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const noexcept {
      return a->key < b->key;
    }
  };

  // Pending set with a switchable backend (EngineConfig::QueueKind).
  class PendingQueue {
   public:
    void configure(EngineConfig::QueueKind kind) { use_splay_ = kind == EngineConfig::QueueKind::Splay; }
    bool empty() const noexcept {
      return use_splay_ ? splay_.empty() : set_.empty();
    }
    void insert(Event* ev) {
      if (use_splay_) splay_.insert(ev);
      else set_.insert(ev);
    }
    Event* peek_min() {
      if (use_splay_) return splay_.peek_min();
      return set_.empty() ? nullptr : *set_.begin();
    }
    Event* pop_min() {
      if (use_splay_) return splay_.pop_min();
      if (set_.empty()) return nullptr;
      Event* ev = *set_.begin();
      set_.erase(set_.begin());
      return ev;
    }
    bool erase(Event* ev) {
      if (use_splay_) return splay_.erase(ev);
      auto [lo, hi] = set_.equal_range(ev);
      for (auto it = lo; it != hi; ++it) {
        if (*it == ev) {
          set_.erase(it);
          return true;
        }
      }
      return false;
    }

   private:
    bool use_splay_ = true;
    SplayQueue splay_;
    std::multiset<Event*, KeyLess> set_;
  };

  struct InboxItem {
    Event* ev;          // nullptr for anti tokens
    std::uint64_t uid;  // identity for anti matching
    EventKey key;       // valid for both positives and antis (GVT minimum)
  };

  class Inbox {
   public:
    void push(InboxItem item) {
      std::scoped_lock lock(mu_);
      items_.push_back(item);
      size_.store(items_.size(), std::memory_order_release);
    }
    void take_all(std::vector<InboxItem>& out) {
      std::scoped_lock lock(mu_);
      out.insert(out.end(), items_.begin(), items_.end());
      items_.clear();
      size_.store(0, std::memory_order_release);
    }
    // Cheap emptiness probe for the hot loop; a stale "empty" only delays
    // the drain by one iteration.
    bool empty_hint() const noexcept {
      return size_.load(std::memory_order_acquire) == 0;
    }
    Time peek_min_ts() {
      std::scoped_lock lock(mu_);
      Time m = kTimeInf;
      for (const auto& it : items_) m = std::min(m, it.key.ts);
      return m;
    }

   private:
    std::mutex mu_;
    std::vector<InboxItem> items_;
    std::atomic<std::size_t> size_{0};
  };

  struct KpData {
    std::deque<Event*> processed;  // committed-prefix popped at fossil time
  };

  struct alignas(64) PeData {
    std::uint32_t id = 0;
    std::vector<std::uint32_t> kps;
    PendingQueue pending;
    // uid -> live envelope (pending or processed) for anti-message matching.
    std::unordered_map<std::uint64_t, Event*> index;
    Inbox inbox;
    EventPool pool;
    std::vector<InboxItem> scratch;
    std::uint64_t uid_counter = 0;

    std::uint64_t processed_events = 0;
    std::uint64_t committed_events = 0;
    std::uint64_t rolled_back = 0;
    std::uint64_t primary_rollbacks = 0;
    std::uint64_t anti_messages = 0;
    std::uint64_t lazy_reused = 0;
    std::uint64_t processed_since_gvt = 0;
    std::uint32_t idle_iters = 0;
  };

  class TwCtx;

  void run_pe(PeData& pe);
  void drain_inbox(PeData& pe);
  void deliver(PeData& pe, Event* ev);
  void annihilate(PeData& pe, std::uint64_t uid);
  void rollback(PeData& pe, std::uint32_t kp, const EventKey& key);
  void cancel_children(PeData& pe, Event* ev);
  void cancel_stale(PeData& pe, Event* ev);
  void undo_event(PeData& pe, Event* ev);
  void process_one(PeData& pe, Event* ev);
  // Returns true when the run is complete (GVT beyond end time).
  bool gvt_round(PeData& pe);
  void fossil_collect(PeData& pe, Time gvt);
  Event* next_event(PeData& pe);
  void seed_initial_events();

  Model& model_;
  EngineConfig cfg_;
  std::unique_ptr<net::Mapping> owned_mapping_;
  const net::Mapping* mapping_ = nullptr;

  std::vector<std::unique_ptr<LpState>> states_;
  std::vector<util::ReversibleRng> rngs_;
  std::vector<std::uint32_t> lp_kp_;
  std::vector<std::uint32_t> lp_pe_;
  std::vector<std::uint32_t> kp_pe_;

  std::vector<KpData> kps_;
  std::vector<std::unique_ptr<PeData>> pes_;
  std::vector<std::unique_ptr<TwCtx>> fwd_ctx_;
  std::vector<std::unique_ptr<TwCtx>> rev_ctx_;

  std::barrier<> bar_a_;
  std::barrier<> bar_b_;
  std::atomic<bool> gvt_request_{false};
  std::vector<Time> local_min_;  // indexed by PE, padded writes are fine here
  std::atomic<std::uint64_t> gvt_rounds_{0};
  std::atomic<Time> shared_gvt_{0.0};
};

}  // namespace hp::des
