#pragma once

// Optimistic (Time Warp) kernel with reverse computation — the ROSS
// equivalent this reproduction builds (DESIGN.md "Engine design notes").
//
// Threading model: one PE per std::jthread over shared memory. Each PE owns
//   * a pending event set ordered by the deterministic EventKey,
//   * the processed-event deques of its KPs (rollback granularity),
//   * an index from EventKey to live envelope (for anti-message matching),
//   * a lock-free MPSC inbox (util::MpscQueue) other PEs push positive
//     events / anti tokens to — both travel as Event envelopes, antis with
//     is_anti set, so one FIFO channel preserves positive-before-anti order,
//   * per-destination outbound batches: remote sends and cancellations are
//     staged on a local chain and published with a single push_chain per
//     destination (a KP rollback emits one linked batch per peer instead of
//     N contended pushes), flushed at the top of every scheduler iteration
//     so nothing staged ever survives into a GVT round,
//   * an event pool.
// LP states and RNG streams are globally indexed but only ever touched by
// the owning PE during the run.
//
// Rollback is KP-granular: a straggler or anti-message whose key precedes
// the KP's last processed key pops events in reverse order, cancelling their
// children (same-PE synchronously, remote via anti tokens) and invoking the
// model's reverse handler (or restoring snapshots in the state-saving
// ablation mode).
//
// GVT is barrier-synchronized: a request flag gathers all PEs at barrier A
// (after which nobody sends; outbound batches are flushed before arriving,
// so every in-flight envelope is fully linked in some inbox), each publishes
// min(pending, inbox) and meets barrier B, after which everybody knows the
// global minimum, fossil-collects its own KPs and resumes. Termination when
// GVT exceeds the end time.
//
// GVT pacing is adaptive by default (EngineConfig::adaptive_gvt): each PE
// floats an effective interval in [kGvtMinInterval, gvt_interval_events]
// scaled by the previous round's commit yield, and an idle PE requests GVT
// after an exponentially backed-off spin count (fast termination detection
// without barrier storms). adaptive_gvt=false restores the fixed
// gvt_interval_events / 256-spin thresholds.

#include <array>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/model.hpp"
#include "des/pending_set.hpp"
#include "net/mapping.hpp"
#include "obs/forensics.hpp"
#include "obs/monitor.hpp"
#include "obs/probe.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"

namespace hp::obs {
class TelemetryHub;
}

namespace hp::des {

class TwEngineInitCtx;

class TimeWarpEngine final : public Engine {
  friend class TwEngineInitCtx;
 public:
  TimeWarpEngine(Model& model, EngineConfig cfg);
  ~TimeWarpEngine() override;

  TimeWarpEngine(const TimeWarpEngine&) = delete;
  TimeWarpEngine& operator=(const TimeWarpEngine&) = delete;

  RunStats run() override;

  LpState& state(std::uint32_t lp) noexcept override { return *states_[lp]; }
  const LpState& state(std::uint32_t lp) const noexcept override {
    return *states_[lp];
  }
  std::uint32_t num_lps() const noexcept override { return cfg_.num_lps; }

 private:
  struct KpData {
    std::deque<Event*> processed;  // committed-prefix popped at fossil time
  };

  // Locally staged chain of envelopes bound for one destination PE,
  // published with a single MpscQueue::push_chain.
  struct OutBatch {
    Event* head = nullptr;
    Event* tail = nullptr;
    std::uint32_t count = 0;
  };

  struct alignas(64) PeData {
    std::uint32_t id = 0;
    std::vector<std::uint32_t> kps;
    PendingSet pending;
    // uid -> live envelope (pending or processed) for anti-message matching.
    std::unordered_map<std::uint64_t, Event*> index;
    util::MpscQueue<Event> inbox;
    EventPool pool;
    std::uint64_t uid_counter = 0;

    // Outbound staging, indexed by destination PE; out_dirty lists the
    // destinations with a non-empty batch. Invariant: both are empty
    // whenever the PE is at the top of its scheduler loop past the flush
    // (in particular on every gvt_round entry).
    std::vector<OutBatch> out;
    std::vector<std::uint32_t> out_dirty;

    // Adaptive pacing state.
    std::uint32_t effective_gvt_interval = 0;  // set from cfg at run start
    std::uint32_t idle_backoff = 0;            // current idle-trigger bound
    std::uint64_t committed_at_last_gvt = 0;
    std::uint64_t processed_since_gvt = 0;
    std::uint32_t idle_iters = 0;

    // Observability: named counters + per-phase wall time (the scheduler
    // loop talks to `probe`, which charges `metrics` and records spans into
    // `trace` when tracing is on), plus this PE's share of the GVT-round
    // time series. Local round counter doubles as the ring's round index —
    // rounds are barrier-global, so every PE counts them identically.
    obs::PeMetrics metrics;
    obs::PhaseProbe probe;
    obs::TraceBuffer trace;
    obs::GvtSeriesRing series;
    std::uint64_t local_rounds = 0;

    // Rollback forensics: the per-KP heatmaps this PE accumulates, the
    // cascade context (chain length of the rollback episode currently
    // executing; 0 = ambient, so episodes it induces are depth ctx + 1),
    // and a counter minting unique flow-event ids.
    obs::RollbackForensics forensics;
    std::uint32_t cascade_ctx = 0;
    std::uint64_t flow_counter = 0;

    // Optimism flow control (active only when a pool budget is configured).
    // The state machine is Open -> Throttled (soft watermark) -> Blocked
    // (hard watermark) with hysteresis on the way back down; see
    // update_flow_control. throttle_window is the current cap on forward
    // progress above GVT; throttle_scale * gvt_delta_ema derives it, steered
    // each round by the global efficiency signal read from the round slices.
    enum class FlowState : std::uint8_t { Open, Throttled, Blocked };
    FlowState flow_state = FlowState::Open;
    Time throttle_window = 0.0;
    double throttle_scale = 1.0;
    double gvt_delta_ema = 0.0;     // EMA of per-round GVT advance
    Time flow_last_gvt = 0.0;
    std::uint64_t flow_prev_processed = 0;    // slice sums at last round
    std::uint64_t flow_prev_rolled_back = 0;
    std::uint64_t throttle_begin_ns = 0;      // open trace span (tracing only)

    // Deterministic fault injection (active only when cfg.fault.any()).
    // chaos_rng drives drain-shaped decisions (reorder/batch-split);
    // per-envelope decisions hash the plan seed with the envelope uid so an
    // envelope's fate is independent of when it happens to be drained.
    // chaos_held parks delayed envelopes until a GVT round releases them;
    // held envelopes still feed the GVT minimum so nothing commits past
    // them. chaos_run is the reorder scratch buffer.
    util::ReversibleRng chaos_rng{1};
    struct HeldEnvelope {
      Event* ev;
      std::uint64_t release_round;  // pe.local_rounds value that frees it
    };
    std::vector<HeldEnvelope> chaos_held;
    std::vector<Event*> chaos_run;

    // Dynamic KP migration (active only when cfg.migration.enabled).
    // Every PE runs the same pure planner over the same replicated inputs
    // (the round slices plus these snapshots of every PE's cumulative
    // counters at the previous decision round), so all PEs compute an
    // identical plan with no extra communication. mig_decisions counts
    // decision rounds (the forced-mode rotation index); mig_moves_total is
    // this PE's replicated count of KP moves executed engine-wide.
    std::vector<std::uint64_t> mig_prev_processed;
    std::vector<std::uint64_t> mig_prev_rolled_back;
    std::uint64_t mig_decisions = 0;
    std::uint64_t mig_moves_total = 0;

    // Epoch GVT (active only when cfg.gvt_mode == Epoch). local_epoch is the
    // epoch this PE is currently executing in (numbered from 1); ep_done is
    // the highest close whose bookkeeping this PE has already applied.
    // cur_epoch_sent / cur_epoch_sendmin accumulate this epoch's remote-send
    // count and minimum send timestamp until the next cut publishes them
    // into the PE's EpochSlot. ep_poll throttles close-condition polls;
    // ep_last_close_ns feeds the epoch-duration series column.
    std::uint64_t local_epoch = 1;
    std::uint64_t ep_done = 0;
    std::uint64_t cur_epoch_sent = 0;
    Time cur_epoch_sendmin = kTimeInf;
    std::uint32_t ep_poll = 0;
    std::uint64_t ep_last_close_ns = 0;
  };

  // Epoch-GVT reduction slot, one per PE, written by its owner at each epoch
  // cut and read by whichever PE evaluates the close condition. `crossed` is
  // the publication flag (release store after the other fields): slot fields
  // describe epoch e once crossed >= e+1. `recvd` is a 4-deep ring indexed
  // by envelope tag & 3 — the close-serialization ack gate bounds the epoch
  // spread across PEs to one, so live tags span at most {n-1, n, n+1} while
  // a PE is in epoch n and slot (n+2)&3 is dead and safe to reset at the
  // crossing into n. Counters are monotone within an epoch, which is what
  // makes the relaxed sum-equality close test sound (observed recv <= true
  // recv <= true sent == observed sent once every PE has crossed).
  struct alignas(64) EpochSlot {
    std::atomic<std::uint64_t> crossed{1};       // PE has entered this epoch
    std::atomic<std::uint64_t> localmin_bits{0}; // min(pending, chaos-held)
    std::atomic<std::uint64_t> sendmin_bits{0};  // min ts of epoch sends
    std::atomic<std::uint64_t> sent{0};          // epoch remote-send count
    std::array<std::atomic<std::uint64_t>, 4> recvd{};  // by tag & 3
  };

  // One cache line per PE of per-round state, written between GVT barriers A
  // and B and read after barrier B — by PE 0 for the monitor heartbeat, and
  // by every PE for the flow-control efficiency signal. The reads race with
  // nothing: a writer only touches its slice after the *next* barrier A,
  // which cannot complete until every reader has finished the current round
  // and arrived at it.
  struct alignas(64) MonitorSlice {
    std::uint64_t processed = 0;    // cumulative forward executions
    std::uint64_t rolled_back = 0;  // cumulative events undone
    std::uint64_t committed = 0;    // cumulative commits as of the last round
    std::uint64_t inbox_depth = 0;  // envelopes seen at this round's barrier
    bool has_top = false;
    std::uint32_t top_kp = 0;
    std::uint64_t top_kp_events = 0;
    // Optimism flow control: this PE's live-envelope count and throttle
    // state when the slice was published, plus its slab-storage footprint
    // for the heartbeat's pool_bytes aggregate.
    std::uint64_t pool_live = 0;
    std::uint64_t pool_bytes = 0;
    bool throttled = false;
    bool blocked = false;
    // Dynamic KP migration: the PE's hottest owned KP since the previous
    // decision round (the planner's move candidate) and how many KPs it
    // currently owns. Published only on decision rounds when migration is
    // armed; zero otherwise.
    bool has_cand = false;
    std::uint32_t mig_cand_kp = 0;
    std::uint64_t mig_cand_score = 0;
    std::uint32_t owned_kps = 0;
  };

  class TwCtx;

  void run_pe(PeData& pe);
  void drain_inbox(PeData& pe);
  // Fault-injected drain: applies the FaultPlan's delay / straggler /
  // reorder / batch-split / dup-anti schedule while preserving every
  // ordering the annihilation protocol needs (see des/fault.hpp).
  void drain_inbox_chaos(PeData& pe);
  // Anti delivery tolerant of chaos-held positives: annihilates in place, in
  // the holdback buffer, or counts a stale drop (dup-anti duplicates).
  void chaos_deliver_anti(PeData& pe, Event* anti);
  // Kill a positive parked in the local holdback buffer before it was ever
  // delivered; returns false when no such envelope is held.
  bool chaos_kill_held(PeData& pe, std::uint64_t uid);
  // Deliver the reorder scratch buffer (possibly reversed) and clear it.
  void chaos_flush_run(PeData& pe);
  // Release held envelopes whose round has come (and all of them when the
  // run is over and `all` is set — those are freed, not delivered).
  void chaos_release(PeData& pe, bool all);
  // Checkpoint quiesce only: force-deliver every held envelope regardless of
  // its release round. The fence must serialize in-flight work, so freeing
  // (what chaos_release(all=true) does) would be wrong here.
  void chaos_deliver_all_held(PeData& pe);
  bool stall_active(const PeData& pe) const noexcept;
  // Per-envelope fault decision: hash of (plan seed, uid) against `prob`,
  // so an envelope's fate does not depend on drain timing.
  bool chaos_hit(double prob, std::uint64_t uid) const noexcept;
  void deliver(PeData& pe, Event* ev);
  // Stage an envelope for a remote PE (positives and anti tokens alike);
  // flush_outboxes publishes every staged chain, one push per destination.
  void stage_remote(PeData& pe, std::uint32_t dst_pe, Event* ev);
  void flush_outboxes(PeData& pe);
  // `dst_pe` is the victim's *current* owner (looked up in own_ by the
  // caller, never the ChildRef's send-time snapshot — KP migration can move
  // the victim between the send and the cancellation).
  void send_anti(PeData& pe, const ChildRef& c, std::uint32_t dst_pe);
  // `offender_kp`/`offender_pe` attribute any rollback the annihilation
  // induces (the canceller's KP for remote antis, the dying parent's KP for
  // synchronous local cancellation); `send_wall_ns` is the anti's send stamp
  // (0 when local or stamps are off).
  void annihilate(PeData& pe, std::uint64_t uid, std::uint32_t offender_kp,
                  std::uint32_t offender_pe, std::uint64_t send_wall_ns);
  void rollback(PeData& pe, std::uint32_t kp, const EventKey& key,
                const obs::RollbackCause& cause);
  void cancel_children(PeData& pe, Event* ev);
  void cancel_stale(PeData& pe, Event* ev);
  // Shared cancellation core for a dying parent's child list: remote
  // children get anti tokens immediately, local victims are collected and
  // applied as ONE batched rollback per distinct KP (to the earliest victim
  // key) instead of one re-traversal per child — the cascade hot path the
  // PR-3 forensics flagged. `offender_kp` attributes any induced rollback.
  void cancel_refs(PeData& pe, const ChildRef* refs, std::size_t n,
                   std::uint32_t offender_kp);
  void undo_event(PeData& pe, Event* ev);
  void process_one(PeData& pe, Event* ev);
  // Returns true when the run is complete (GVT beyond end time).
  bool gvt_round(PeData& pe);
  // Epoch GVT (cfg.gvt_mode == Epoch): the per-iteration pump replacing the
  // barrier-mode `if (gvt_request_) gvt_round()` branch. Applies any closes
  // other PEs have already won (epoch_close_bookkeeping, in order), crosses
  // into the next epoch when the request flag is up and the ack gate allows,
  // and polls the close condition (throttled). Returns true when a close's
  // GVT passed the end time and this PE is done.
  bool epoch_pump(PeData& pe);
  // Publish this PE's epoch-e reduction contribution (local minimum over
  // pending + chaos-held, send count/minimum) into its EpochSlot and enter
  // epoch e+1. Also publishes the monitor slice — the ack gate keeps it
  // stable until every PE finished the bookkeeping that reads it.
  void epoch_cross(PeData& pe);
  // Evaluate the close condition for the oldest open epoch: every PE crossed
  // past it and global sends == global receives for its tag. The winner CASes
  // ep_closed_ forward and takes the global side-effects (shared GVT, round
  // count, request-flag clear).
  void try_close_epoch(PeData& pe);
  // Per-PE bookkeeping for a won close of epoch `e` — the epoch-mode mirror
  // of gvt_round's post-barrier-B tail: fossil, flow window, checkpoint and
  // migration rounds, series/monitor, pacing resets. Acks the close last so
  // crossings into e+2 (which overwrite slot e's fields) wait for every
  // reader. Returns true when gvt ends the run.
  bool epoch_close_bookkeeping(PeData& pe, std::uint64_t e);
  // Fill this PE's MonitorSlice (shared between barrier and epoch modes).
  void publish_slice(PeData& pe, std::uint64_t inbox_depth);
  // Checkpoint at the GVT fence, entered from gvt_round by every PE in the
  // same round (the trigger reads only barrier-published slice data): roll
  // every owned KP back to {gvt,0,0,0,0}, quiesce the traffic the sweep put
  // in flight, drain pending into the per-PE stage, PE 0 serializes while
  // the others park at a barrier, then everybody reinserts and resumes.
  void checkpoint_round(PeData& pe, Time gvt);
  // Dynamic KP migration, called inside gvt_round after the global minimum
  // is known: every PE plans identically from the round slices, then the
  // affected PEs execute the stop-the-world handoff (quiescence loop,
  // extract, integrate, ownership flip + epoch bump). No-op on rounds the
  // planner is idle. `gvt` is this round's global minimum.
  void do_migration_round(PeData& pe, Time gvt);
  // PE 0 only, after barrier B: aggregate the monitor slices and emit one
  // JSON-lines heartbeat record.
  void emit_monitor_record(std::uint64_t round_idx, Time gvt);
  void fossil_collect(PeData& pe, Time gvt);
  Event* next_event(PeData& pe);
  void seed_initial_events();
  // Optimism flow control: per-iteration watermark check (Open <-> Throttled
  // <-> Blocked transitions), and the per-GVT-round window adaptation that
  // reads the round slices' efficiency signal.
  void update_flow_control(PeData& pe);
  void update_flow_window(PeData& pe, Time gvt);
  void close_throttle_span(PeData& pe);

  Model& model_;
  EngineConfig cfg_;
  std::unique_ptr<net::Mapping> owned_mapping_;
  const net::Mapping* mapping_ = nullptr;

  std::vector<std::unique_ptr<LpState>> states_;
  std::vector<util::ReversibleRng> rngs_;
  std::vector<std::uint32_t> lp_kp_;
  // Live KP/LP -> PE ownership. Seeded from the mapping; mutated only by KP
  // migration between handoff barriers. All routing (remote sends, anti
  // messages, cancellation local/remote branches) reads this table, never a
  // cached placement, so envelopes always chase the current owner.
  net::OwnershipTable own_;

  std::vector<KpData> kps_;
  std::vector<std::unique_ptr<PeData>> pes_;
  std::vector<std::unique_ptr<TwCtx>> fwd_ctx_;
  std::vector<std::unique_ptr<TwCtx>> rev_ctx_;

  std::barrier<> bar_a_;
  std::barrier<> bar_b_;
  std::atomic<bool> gvt_request_{false};
  std::vector<Time> local_min_;  // indexed by PE, padded writes are fine here
  std::atomic<std::uint64_t> gvt_rounds_{0};
  std::atomic<Time> shared_gvt_{0.0};
  std::uint64_t epoch_ns_ = 0;  // run-start timestamp for series/trace

  // Epoch GVT (cfg.gvt_mode == Epoch; see docs/GVT.md). ep_closed_ is the
  // highest epoch whose close has been won (monotone, CAS-advanced by the
  // winning PE); ep_gvt_bits_ carries that close's GVT — a single slot
  // suffices because the ack gate forbids closing e+1 before every PE
  // finished reading close e. ep_acks_total_ counts per-PE bookkeeping
  // completions (close e fully applied once it reaches e * num_pes), which
  // gates crossings into e+2. The inflight pair feeds the obs series: peak
  // unmatched sends observed while polling, latched per close.
  bool epoch_mode_ = false;
  std::unique_ptr<EpochSlot[]> ep_slots_;
  std::atomic<std::uint64_t> ep_closed_{0};
  std::atomic<std::uint64_t> ep_gvt_bits_{0};
  std::atomic<std::uint64_t> ep_acks_total_{0};
  std::atomic<std::uint64_t> ep_inflight_peak_{0};
  std::atomic<std::uint64_t> ep_inflight_last_{0};

  // Stamp remote sends with wall time for trace flow events (only when
  // tracing AND forensics are both on; otherwise zero clock reads).
  bool trace_stamps_ = false;
  bool tracing_ = false;

  // Latency telemetry (ObsConfig::telemetry): off => zero clock reads on the
  // scheduler hot path; on => per-PE lock-free rings feed the hub's
  // histograms and the exposition endpoint. Stamps never influence event
  // order, so committed state stays bit-identical either way.
  bool telemetry_ = false;
  std::unique_ptr<obs::TelemetryHub> hub_;

  // Optimism flow control (pool_budget_envelopes > 0). Watermarks over a
  // PE's own EventPool::live(): soft = pool_soft_fraction * budget enters
  // the throttle; hard = budget - reserve blocks optimistic execution (the
  // reserve absorbs the allocations a rollback's anti burst can demand while
  // blocked, keeping peak_live <= budget); exit hysteresis at 3/4 soft.
  bool flow_on_ = false;
  std::int64_t pool_soft_ = 0;
  std::int64_t pool_soft_exit_ = 0;
  std::int64_t pool_hard_ = 0;

  // Fault injection (cfg.fault.any()); one predictable branch when false.
  bool chaos_ = false;
  // Round slices are live when the monitor or flow control needs them.
  bool slices_on_ = false;

  // Dynamic KP migration (cfg.migration.enabled && num_pes > 1). The per-KP
  // processed counters feed candidate selection: each element is written
  // only by the KP's owning PE and reset after a handoff under the new
  // ownership, with the migration barriers publishing across the flip.
  // mig_stage_/mig_stage_held_ are the handoff staging areas, indexed by KP:
  // the source PE parks the KP's in-flight envelopes there during extract
  // and the destination adopts them during integrate (disjoint KPs, barrier
  // between the phases). mig_again_ is the quiescence-loop vote flag.
  bool mig_on_ = false;
  std::vector<std::uint64_t> kp_processed_;
  std::vector<std::vector<Event*>> mig_stage_;
  std::vector<std::vector<PeData::HeldEnvelope>> mig_stage_held_;
  std::atomic<bool> mig_again_{false};

  // Checkpointing (cfg.checkpoint.enabled()). ck_next_ is the committed-count
  // threshold for the next image: written only by PE 0 between the barriers
  // of a checkpoint round and read by every PE at the trigger check, which
  // the same barriers order after the write. ck_stage_ is indexed by PE and
  // touched only by its owner — except during PE 0's serialize, which runs
  // with every other PE parked. ck_again_ is the quiesce-loop vote flag.
  bool ck_on_ = false;
  std::uint64_t ck_base_committed_ = 0;  // image baseline when restoring
  std::uint64_t ck_next_ = ~0ull;
  std::atomic<bool> ck_again_{false};
  std::vector<std::vector<Event*>> ck_stage_;

  // Stall watchdog / fail-fast diagnostics (see des/watchdog.hpp). Beacons
  // are relaxed atomics each PE updates about itself once per GVT round.
  WatchdogHeart wd_heart_;
  std::unique_ptr<PeBeacon[]> wd_beacons_;

  // Live monitor (null unless ObsConfig::monitor). Slices are per-PE; the
  // mon_last_* bookkeeping is touched only by PE 0.
  std::unique_ptr<obs::MonitorWriter> monitor_;
  std::vector<MonitorSlice> mon_slices_;
  std::uint64_t mon_last_processed_ = 0;
  std::uint64_t mon_last_rolled_back_ = 0;
  std::uint64_t mon_last_ns_ = 0;
  std::uint32_t mon_rounds_since_emit_ = 0;
};

}  // namespace hp::des
