#pragma once

// Calendar queue pending-event set (Brown, "Calendar queues: a fast O(1)
// priority queue implementation for the simulation event set problem",
// CACM 1988) — the second contender in the pending-set shoot-out
// (bench/ablation_event_queue) alongside the ladder queue and splay tree.
//
// Timestamps hash onto a ring of "day" buckets of equal width: an event at
// ts has day floor(ts / width) and lands in bucket day mod nbuckets. pop_min
// walks the ring one day at a time from the current day, taking the first
// event whose day has arrived; a fruitless full-year lap (nbuckets days)
// falls back to a direct minimum search — the sparse-calendar case — and
// teleports the position there. Buckets are kept sorted descending by full
// EventKey, so the per-bucket minimum is a back() and duplicate keys keep a
// total order.
//
// Day membership is always computed through the one day_of() function — the
// walk never accumulates a floating-point bucket ceiling, because a drifted
// ceiling could disagree with the insertion hash at a bucket boundary and
// pop out of key order, which the engines' bit-identical determinism cannot
// absorb.
//
// The ring resizes (double/halve, re-hashing all events and re-deriving the
// width from the observed timestamp span) when occupancy drifts past 2x or
// below 1/2x the bucket count, which keeps both the per-bucket sorted
// inserts and the ring walk O(1) amortized.
//
// Duplicate full keys are permitted; among equal keys any pop order is
// allowed (same contract as SplayQueue / LadderQueue).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "des/event.hpp"
#include "util/macros.hpp"

namespace hp::des {

class CalendarQueue {
 public:
  CalendarQueue() { buckets_.assign(kMinBuckets, {}); }
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void insert(Event* ev) {
    if (HP_UNLIKELY(size_ + 1 > 2 * buckets_.size())) {
      resize(buckets_.size() * 2);
    }
    const Time ts = ev->key.ts;
    std::vector<Event*>& b = buckets_[bucket_of(ts)];
    const auto it = std::lower_bound(b.begin(), b.end(), ev, KeyGreater{});
    b.insert(it, ev);
    ++size_;
    // An arrival on an already-passed day must drag the walk back, or the
    // ring would serve later days first.
    if (day_of(ts) < cur_day_) reposition_to(ts);
  }

  Event* peek_min() {
    if (size_ == 0) return nullptr;
    return buckets_[locate_min()].back();
  }

  Event* pop_min() {
    if (size_ == 0) return nullptr;
    std::vector<Event*>& b = buckets_[locate_min()];
    Event* ev = b.back();
    b.pop_back();
    --size_;
    if (HP_UNLIKELY(buckets_.size() > kMinBuckets &&
                    size_ < buckets_.size() / 2)) {
      resize(buckets_.size() / 2);
    }
    return ev;
  }

  // Remove a specific pending envelope. Returns false if absent.
  bool erase(Event* ev) {
    std::vector<Event*>& b = buckets_[bucket_of(ev->key.ts)];
    const auto [lo, hi] = std::equal_range(b.begin(), b.end(), ev,
                                           KeyGreater{});
    for (auto it = lo; it != hi; ++it) {
      if (*it == ev) {
        b.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

  void clear() noexcept {
    buckets_.assign(kMinBuckets, {});
    size_ = 0;
    width_ = 1.0;
    cur_day_ = 0;
    cur_bucket_ = 0;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr double kMinWidth = 1e-12;

  struct KeyGreater {
    bool operator()(const Event* a, const Event* b) const noexcept {
      return b->key < a->key;
    }
  };

  std::uint64_t day_of(Time ts) const noexcept {
    const double d = ts / width_;
    return d <= 0.0 ? std::uint64_t{0} : static_cast<std::uint64_t>(d);
  }
  std::size_t bucket_of(Time ts) const noexcept {
    return static_cast<std::size_t>(day_of(ts) % buckets_.size());
  }

  void reposition_to(Time ts) noexcept {
    cur_day_ = day_of(ts);
    cur_bucket_ = static_cast<std::size_t>(cur_day_ % buckets_.size());
  }

  // Advance the ring walk to the bucket holding the global minimum and
  // return its index. Caller guarantees size_ > 0.
  std::size_t locate_min() {
    for (std::size_t lap = 0; lap < buckets_.size(); ++lap) {
      const std::vector<Event*>& b = buckets_[cur_bucket_];
      if (!b.empty() && day_of(b.back()->key.ts) <= cur_day_) {
        return cur_bucket_;
      }
      ++cur_day_;
      cur_bucket_ = (cur_bucket_ + 1) % buckets_.size();
    }
    // Sparse calendar: nothing due within a full year of the position.
    // Direct search, then teleport the position to the winner.
    std::size_t best = buckets_.size();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].empty()) continue;
      if (best == buckets_.size() ||
          buckets_[i].back()->key < buckets_[best].back()->key) {
        best = i;
      }
    }
    reposition_to(buckets_[best].back()->key.ts);
    return best;
  }

  void resize(std::size_t nbuckets) {
    std::vector<Event*> all;
    all.reserve(size_);
    for (std::vector<Event*>& b : buckets_) {
      all.insert(all.end(), b.begin(), b.end());
      b.clear();
    }
    // Re-derive the day width from the live span so a bucket holds ~one
    // event on average; a degenerate span (all equal ts) keeps width 1.
    double lo = 0.0, hi = 0.0;
    if (!all.empty()) {
      lo = hi = all.front()->key.ts;
      for (const Event* ev : all) {
        lo = std::min(lo, ev->key.ts);
        hi = std::max(hi, ev->key.ts);
      }
    }
    const double span = hi - lo;
    width_ = span > 0.0
                 ? std::max(span / static_cast<double>(all.size()), kMinWidth)
                 : 1.0;
    buckets_.assign(nbuckets, {});
    for (Event* ev : all) {
      std::vector<Event*>& b = buckets_[bucket_of(ev->key.ts)];
      const auto it = std::lower_bound(b.begin(), b.end(), ev, KeyGreater{});
      b.insert(it, ev);
    }
    reposition_to(lo);
  }

  std::vector<std::vector<Event*>> buckets_;  // each sorted descending by key
  std::size_t size_ = 0;
  double width_ = 1.0;
  std::uint64_t cur_day_ = 0;   // ring walk position, in days since t=0
  std::size_t cur_bucket_ = 0;  // == cur_day_ % buckets_.size()
};

}  // namespace hp::des
