#pragma once

// Sequential reference kernel. Processes events in global key order with no
// rollback machinery; used for 1-PE measurements, as the golden baseline for
// the Time Warp equivalence tests, and by models that are not reverse-
// computable (the buffered flow-control baseline).

#include <memory>
#include <set>
#include <vector>

#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/model.hpp"

namespace hp::des {

class SequentialEngine {
 public:
  SequentialEngine(Model& model, EngineConfig cfg);
  ~SequentialEngine();

  SequentialEngine(const SequentialEngine&) = delete;
  SequentialEngine& operator=(const SequentialEngine&) = delete;

  RunStats run();

  // Post-run access for statistics aggregation.
  LpState& state(std::uint32_t lp) noexcept { return *states_[lp]; }
  const LpState& state(std::uint32_t lp) const noexcept { return *states_[lp]; }
  std::uint32_t num_lps() const noexcept { return cfg_.num_lps; }

  // ROSS-style statistics collection: invoke `fn(lp, state)` once per LP
  // (the report's "adaptable construct ... implemented in much the same way
  // that a C++ visitor functor is implemented", Section 3.1.5).
  template <typename Fn>
  void for_each_state(Fn&& fn) const {
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) fn(lp, *states_[lp]);
  }

 private:
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const noexcept {
      return a->key < b->key;
    }
  };

  class Ctx;
  class ICtx;

  Model& model_;
  EngineConfig cfg_;
  EventPool pool_;
  std::multiset<Event*, KeyLess> pending_;
  std::vector<std::unique_ptr<LpState>> states_;
  std::vector<util::ReversibleRng> rngs_;
};

}  // namespace hp::des
