#pragma once

// Sequential reference kernel. Processes events in global key order with no
// rollback machinery; used for 1-PE measurements, as the golden baseline for
// the Time Warp equivalence tests, and by models that are not reverse-
// computable (the buffered flow-control baseline).

#include <memory>
#include <vector>

#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/model.hpp"
#include "des/pending_set.hpp"

namespace hp::obs {
class TelemetryHub;
}

namespace hp::des {

class SequentialEngine final : public Engine {
 public:
  SequentialEngine(Model& model, EngineConfig cfg);
  ~SequentialEngine() override;

  SequentialEngine(const SequentialEngine&) = delete;
  SequentialEngine& operator=(const SequentialEngine&) = delete;

  RunStats run() override;

  // Post-run access for statistics aggregation.
  LpState& state(std::uint32_t lp) noexcept override { return *states_[lp]; }
  const LpState& state(std::uint32_t lp) const noexcept override {
    return *states_[lp];
  }
  std::uint32_t num_lps() const noexcept override { return cfg_.num_lps; }

 private:
  class Ctx;
  class ICtx;

  Model& model_;
  EngineConfig cfg_;
  EventPool pool_;
  PendingSet pending_;
  std::vector<std::unique_ptr<LpState>> states_;
  std::vector<util::ReversibleRng> rngs_;
  // Latency telemetry (ObsConfig::telemetry): off => zero clock reads on
  // the event loop; on => stamps feed the hub's histograms only.
  bool telemetry_ = false;
  std::unique_ptr<obs::TelemetryHub> hub_;
};

}  // namespace hp::des
