#pragma once

// Event envelope and per-PE slab pool.
//
// Envelopes are fixed-size: a key, engine bookkeeping, the model's control
// bitfield (tw_bf analogue), the child list used for anti-message
// cancellation, and a POD payload buffer the model reinterprets as its
// message struct (the ROSS Msg_Data idiom). Envelopes move between PEs by
// pointer; ownership transfers on enqueue and the receiving PE eventually
// frees them into its own pool.
//
// The hot layout is deliberately lean: the cold state-saving / lazy-
// cancellation members (LP snapshot, payload snapshot, saved RNG cursor,
// stale child list) live behind a single optional side-block (`EventCold`)
// allocated only when one of those modes actually touches the envelope, so
// the common-case envelope spans fewer cache lines and slab storage stays
// dense.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "des/lp_state.hpp"
#include "des/time.hpp"
#include "util/macros.hpp"
#include "util/mpsc_queue.hpp"
#include "util/small_vec.hpp"

namespace hp::des {

inline constexpr std::size_t kMaxPayload = 96;

// Envelopes per pool slab. Slabs are the pool's only allocation unit: one
// array-new per 1024 envelopes instead of one heap round trip per envelope.
inline constexpr std::size_t kSlabEnvelopes = 1024;

enum class EventStatus : std::uint8_t { Free, Pending, Processed };

struct Event;

// Reference to a child event for cancellation. Identity (uid) — not the
// ordering key — matches anti-messages to positives: after a rollback, a
// re-executed parent may send a *different* child that legitimately reuses
// the old child's ordering key (same parent tie, same send index), and the
// dying lineage coexists with the new one until the cancellation chain
// catches up. The uid is unique per envelope send, so cancellation never
// kills the wrong twin. Everything is stored by value so cancellation never
// dereferences an envelope owned by another PE.
struct ChildRef {
  EventKey key;  // for the GVT inbox minimum and diagnostics
  std::uint64_t uid;
  // Hash of (payload bytes, size): lazy cancellation may only reuse a stale
  // child when both the derived key AND the content match, otherwise
  // determinism would break (same key can carry different payloads after a
  // changed decision upstream).
  std::uint64_t payload_hash;
  std::uint32_t dst_pe;
};
static_assert(std::is_trivially_copyable_v<ChildRef>);

// Cold per-envelope state, allocated on demand (Event::cold()):
//   * stale_children — lazy cancellation keeps the children of the last
//     rolled-back execution alive until re-execution reuses or cancels them;
//   * snapshot / payload_snapshot / saved_rng_* — the state-saving ablation
//     mode's pre-execution snapshots (forward handlers mutate their own
//     message under the ROSS save-into-the-message idiom, so re-execution
//     must start from the original bytes).
// Aggressive-cancellation reverse-computation runs (the default) never
// allocate one, so the hot envelope stays small.
struct EventCold {
  std::vector<ChildRef> stale_children;
  std::unique_ptr<LpState> snapshot;
  std::unique_ptr<std::byte[]> payload_snapshot;
  std::uint64_t saved_rng_state = 0;
  std::uint64_t saved_rng_draws = 0;
};

// The envelope doubles as the intrusive node of the lock-free remote inbox
// (util::MpscQueue); mpsc_next is live only while the envelope is in flight
// between PEs — or threaded on its pool's free list while the envelope is
// Free (the two states are disjoint, so the link is safely shared).
// Anti-messages travel as envelopes too (is_anti set, key/uid identify the
// victim, payload unused) so positives and antis share one FIFO channel and
// one pool.
struct Event : util::MpscNode {
  EventKey key;
  std::uint64_t uid = 0;  // unique send instance id (anti-message identity)
  std::uint64_t parent_uid = 0;   // uid of the sending event (0 for roots)
  std::uint64_t rng_before = 0;   // LP stream position before execution
  Time send_ts = 0.0;
  std::uint32_t kp = 0;  // destination KP, cached at send time
  EventStatus status = EventStatus::Free;
  bool is_anti = false;  // anti token: uid names the event to annihilate
  std::uint16_t payload_size = 0;
  std::uint32_t cv = 0;  // model control bits, reset before each forward
  // Rollback forensics (see obs/forensics.hpp). `cascade` rides on anti
  // tokens: the cascade chain length of the rollback episode that sent the
  // anti, so the induced rollback can extend the chain. `send_wall_ns` is
  // the wall-clock stamp of the remote send, set only when tracing AND
  // forensics are on (it pairs the trace.json flow event); 0 otherwise.
  std::uint32_t cascade = 0;
  // Epoch-GVT transient-message tag (EngineConfig::gvt_mode == Epoch): the
  // sender's epoch number at stage time, so the receiver can credit the
  // matching per-epoch receive counter. Barrier-mode runs leave it 0.
  std::uint32_t epoch = 0;
  std::uint64_t send_wall_ns = 0;
  // Latency telemetry stamps (ObsConfig::telemetry; 0 when off, so a
  // telemetry-off run never reads the clock for them): wall-clock ns at
  // event creation (queue-dwell start) and at forward execution
  // (commit-latency start, recorded against at fossil collection).
  std::uint64_t create_wall_ns = 0;
  std::uint64_t exec_wall_ns = 0;
  util::SmallVec<ChildRef, 4> children;
  // Optional cold side-block; null unless lazy cancellation or state saving
  // touched this envelope. Reset on free.
  std::unique_ptr<EventCold> cold_block;

  // Lazily allocated cold state (see EventCold).
  EventCold& cold() {
    if (HP_UNLIKELY(cold_block == nullptr)) {
      cold_block = std::make_unique<EventCold>();
    }
    return *cold_block;
  }
  bool has_stale_children() const noexcept {
    return cold_block != nullptr && !cold_block->stale_children.empty();
  }

  alignas(8) std::byte payload[kMaxPayload];

  template <typename M>
  M& msg() noexcept {
    static_assert(std::is_trivially_copyable_v<M> && sizeof(M) <= kMaxPayload);
    return *std::launder(reinterpret_cast<M*>(payload));
  }
  template <typename M>
  const M& msg() const noexcept {
    static_assert(std::is_trivially_copyable_v<M> && sizeof(M) <= kMaxPayload);
    return *std::launder(reinterpret_cast<const M*>(payload));
  }
};

// Slab recycler. Not thread-safe by design: one pool per PE, and cross-PE
// envelopes are freed into the *receiving* PE's pool (the free list holds
// non-owning pointers threaded through the envelopes' own mpsc_next links;
// storage is owned by the allocating pool's slabs, and the engine destroys
// all pools together after the PE threads have joined — a pool's free list
// may point into a sibling's slabs, which is safe because destruction never
// follows the list).
//
// Capacity vs. live: `capacity()` is the high-water storage owned by this
// pool (whole slabs; it never shrinks) and `live()` is the current
// outstanding-envelope count (allocated minus freed *here*, plus migration
// adoptions) — the number fossil collection actually drives back down.
// live() is signed because envelopes migrate: a PE that mostly receives
// remote events frees more envelopes into its pool than it allocated from
// it, so its live() goes negative while the sender's stays positive — only
// the sum (or a single-pool engine) is a memory figure. The optimism
// flow-control watermarks compare a PE's own live() against its budget,
// which is exactly the "am I the one over-allocating" question.
//
// peak_live() is the allocation-driven high-water only: a KP-migration
// handoff that adopts envelopes raises live() (the adoptees are real
// pressure) but not peak_live(), because no storage was allocated here —
// the adopted-side high-water is tracked separately as peak_adopted().
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  Event* allocate() {
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    Event* ev = free_head_;
    if (HP_UNLIKELY(ev == nullptr)) ev = grow();
    free_head_ =
        static_cast<Event*>(ev->mpsc_next.load(std::memory_order_relaxed));
    ev->mpsc_next.store(nullptr, std::memory_order_relaxed);
    --free_count_;
    return ev;
  }

  // Scrub the envelope back to a fresh-from-slab state and push it on the
  // free list. Every engine-written field is cleared so a recycled envelope
  // is indistinguishable from a new one — a stale send_wall_ns would
  // fabricate a forensics flow event, a stale parent_uid/send_ts/cv would
  // leak one event's causality into an unrelated reuse. Debug builds poison
  // the payload (fresh slabs poison it too) so reads-before-writes surface.
  void free(Event* ev) noexcept {
    --live_;
    ++free_count_;
    ev->key = EventKey{};
    ev->uid = 0;
    ev->parent_uid = 0;
    ev->rng_before = 0;
    ev->send_ts = 0.0;
    ev->kp = 0;
    ev->status = EventStatus::Free;
    ev->is_anti = false;
    ev->payload_size = 0;
    ev->cv = 0;
    ev->cascade = 0;
    ev->epoch = 0;
    ev->send_wall_ns = 0;
    // create_wall_ns / exec_wall_ns are deliberately NOT scrubbed: telemetry
    // reads them only in telemetry-on runs, where every read site follows a
    // same-lifecycle write (the creation hooks stamp create_wall_ns, the
    // execution path stamps exec_wall_ns before any commit-latency read), and
    // telemetry-off runs neither write nor read them — so the scrub would be
    // two dead stores on the hottest pool primitive.
    ev->children.clear();
    ev->cold_block.reset();
#ifndef NDEBUG
    std::memset(ev->payload, kPoisonByte, kMaxPayload);
#endif
    ev->mpsc_next.store(free_head_, std::memory_order_relaxed);
    free_head_ = ev;
  }

  // Envelopes backed by this pool's slabs (high-water mark, slab-granular).
  std::size_t capacity() const noexcept {
    return slabs_.size() * kSlabEnvelopes;
  }
  // Historical name for capacity(); kept for existing callers.
  std::size_t allocated() const noexcept { return capacity(); }
  std::size_t free_count() const noexcept { return free_count_; }
  // Slab-level storage accounting (obs counters slabs_allocated/pool_bytes).
  std::size_t slabs_allocated() const noexcept { return slabs_.size(); }
  std::size_t pool_bytes() const noexcept {
    return slabs_.size() * kSlabEnvelopes * sizeof(Event);
  }

  // KP migration handoff: envelopes that change owner without being freed
  // move their live-count with them, so the flow-control watermarks keep
  // comparing each PE's own pressure against its own budget (the sum across
  // pools is invariant). Positive on the receiving pool, negative on the
  // sending one. Deliberately does NOT touch peak_live_: adoption allocates
  // nothing, so the allocation high-water must not move (the old behaviour
  // inflated the receiving pool's memory figure on every handoff).
  void adjust_live(std::int64_t delta) noexcept {
    live_ += delta;
    adopted_ += delta;
    if (adopted_ > peak_adopted_) peak_adopted_ = adopted_;
  }

  // Outstanding allocations netted against frees into this pool plus
  // migration adoptions (signed — see the class comment).
  std::int64_t live() const noexcept { return live_; }
  // Allocation-driven high-water (never includes migration adoptions; never
  // negative because it only ratchets up from 0 inside allocate()).
  std::int64_t peak_live() const noexcept { return peak_live_; }
  // Net envelopes adopted from (positive) or handed to (negative) other
  // pools by KP migration, and the adopted-side high-water.
  std::int64_t adopted() const noexcept { return adopted_; }
  std::int64_t peak_adopted() const noexcept { return peak_adopted_; }

 private:
  static constexpr int kPoisonByte = 0xA5;

  // One array-new per kSlabEnvelopes envelopes; every envelope of the new
  // slab goes straight onto the intrusive free list, last-to-first so
  // allocation hands them out in address order (dense early working set).
  Event* grow() {
    slabs_.push_back(std::make_unique<Event[]>(kSlabEnvelopes));
    Event* slab = slabs_.back().get();
    for (std::size_t i = kSlabEnvelopes; i-- > 0;) {
#ifndef NDEBUG
      std::memset(slab[i].payload, kPoisonByte, kMaxPayload);
#endif
      slab[i].mpsc_next.store(free_head_, std::memory_order_relaxed);
      free_head_ = &slab[i];
    }
    free_count_ += kSlabEnvelopes;
    return free_head_;
  }

  std::vector<std::unique_ptr<Event[]>> slabs_;
  Event* free_head_ = nullptr;
  std::size_t free_count_ = 0;
  std::int64_t live_ = 0;
  std::int64_t peak_live_ = 0;
  std::int64_t adopted_ = 0;
  std::int64_t peak_adopted_ = 0;
};

}  // namespace hp::des
