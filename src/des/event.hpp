#pragma once

// Event envelope and per-PE pool.
//
// Envelopes are fixed-size: a key, engine bookkeeping, the model's control
// bitfield (tw_bf analogue), the child list used for anti-message
// cancellation, and a POD payload buffer the model reinterprets as its
// message struct (the ROSS Msg_Data idiom). Envelopes move between PEs by
// pointer; ownership transfers on enqueue and the receiving PE eventually
// frees them into its own pool.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>
#include <type_traits>
#include <vector>

#include "des/lp_state.hpp"
#include "des/time.hpp"
#include "util/macros.hpp"
#include "util/mpsc_queue.hpp"
#include "util/small_vec.hpp"

namespace hp::des {

inline constexpr std::size_t kMaxPayload = 96;

enum class EventStatus : std::uint8_t { Free, Pending, Processed };

struct Event;

// Reference to a child event for cancellation. Identity (uid) — not the
// ordering key — matches anti-messages to positives: after a rollback, a
// re-executed parent may send a *different* child that legitimately reuses
// the old child's ordering key (same parent tie, same send index), and the
// dying lineage coexists with the new one until the cancellation chain
// catches up. The uid is unique per envelope send, so cancellation never
// kills the wrong twin. Everything is stored by value so cancellation never
// dereferences an envelope owned by another PE.
struct ChildRef {
  EventKey key;  // for the GVT inbox minimum and diagnostics
  std::uint64_t uid;
  // Hash of (payload bytes, size): lazy cancellation may only reuse a stale
  // child when both the derived key AND the content match, otherwise
  // determinism would break (same key can carry different payloads after a
  // changed decision upstream).
  std::uint64_t payload_hash;
  std::uint32_t dst_pe;
};
static_assert(std::is_trivially_copyable_v<ChildRef>);

// The envelope doubles as the intrusive node of the lock-free remote inbox
// (util::MpscQueue); mpsc_next is live only while the envelope is in flight
// between PEs. Anti-messages travel as envelopes too (is_anti set, key/uid
// identify the victim, payload unused) so positives and antis share one
// FIFO channel and one pool.
struct Event : util::MpscNode {
  EventKey key;
  std::uint64_t uid = 0;  // unique send instance id (anti-message identity)
  std::uint64_t parent_uid = 0;   // uid of the sending event (0 for roots)
  std::uint64_t rng_before = 0;   // LP stream position before execution
  Time send_ts = 0.0;
  std::uint32_t kp = 0;  // destination KP, cached at send time
  EventStatus status = EventStatus::Free;
  bool is_anti = false;  // anti token: uid names the event to annihilate
  std::uint16_t payload_size = 0;
  std::uint32_t cv = 0;  // model control bits, reset before each forward
  // Rollback forensics (see obs/forensics.hpp). `cascade` rides on anti
  // tokens: the cascade chain length of the rollback episode that sent the
  // anti, so the induced rollback can extend the chain. `send_wall_ns` is
  // the wall-clock stamp of the remote send, set only when tracing AND
  // forensics are on (it pairs the trace.json flow event); 0 otherwise.
  std::uint32_t cascade = 0;
  std::uint64_t send_wall_ns = 0;
  util::SmallVec<ChildRef, 4> children;
  // Lazy cancellation: children of the last rolled-back execution, kept
  // alive until re-execution either re-sends them identically (reuse) or
  // finishes without them (cancel). Empty outside lazy mode.
  std::vector<ChildRef> stale_children;

  // State-saving ablation mode only: pre-execution snapshot of the
  // destination LP's state, the RNG, and the message payload (forward
  // handlers mutate their own message under the ROSS save-into-the-message
  // idiom, so re-execution must start from the original bytes).
  std::unique_ptr<LpState> snapshot;
  std::unique_ptr<std::byte[]> payload_snapshot;
  std::uint64_t saved_rng_state = 0;
  std::uint64_t saved_rng_draws = 0;

  alignas(8) std::byte payload[kMaxPayload];

  template <typename M>
  M& msg() noexcept {
    static_assert(std::is_trivially_copyable_v<M> && sizeof(M) <= kMaxPayload);
    return *std::launder(reinterpret_cast<M*>(payload));
  }
  template <typename M>
  const M& msg() const noexcept {
    static_assert(std::is_trivially_copyable_v<M> && sizeof(M) <= kMaxPayload);
    return *std::launder(reinterpret_cast<const M*>(payload));
  }
};

// Free-list recycler. Not thread-safe by design: one pool per PE, and
// cross-PE envelopes are freed into the *receiving* PE's pool (the free list
// holds non-owning pointers; storage is owned by the allocating pool, and
// the engine destroys all pools together after the PE threads have joined).
//
// Capacity vs. live: `capacity()` is the high-water storage owned by this
// pool and never shrinks; `live()` is the current outstanding-envelope count
// (allocated minus freed *here*) and is the number fossil collection actually
// drives back down. live() is signed because envelopes migrate: a PE that
// mostly receives remote events frees more envelopes into its pool than it
// allocated from it, so its live() goes negative while the sender's stays
// positive — only the sum (or a single-pool engine) is a memory figure. The
// optimism flow-control watermarks compare a PE's own live() against its
// budget, which is exactly the "am I the one over-allocating" question.
class EventPool {
 public:
  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  Event* allocate() {
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    if (free_.empty()) {
      all_.push_back(std::make_unique<Event>());
      return all_.back().get();
    }
    Event* ev = free_.back();
    free_.pop_back();
    return ev;
  }

  void free(Event* ev) noexcept {
    --live_;
    ev->status = EventStatus::Free;
    ev->is_anti = false;
    // Forensics stamps must not survive envelope reuse: a recycled envelope
    // with a stale send_wall_ns would fabricate a flow event.
    ev->cascade = 0;
    ev->send_wall_ns = 0;
    ev->children.clear();
    ev->stale_children.clear();
    ev->snapshot.reset();
    ev->payload_snapshot.reset();
    free_.push_back(ev);
  }

  // Envelopes ever backed by this pool's storage (high-water mark).
  std::size_t capacity() const noexcept { return all_.size(); }
  // Historical name for capacity(); kept for existing callers.
  std::size_t allocated() const noexcept { return all_.size(); }
  std::size_t free_count() const noexcept { return free_.size(); }
  // KP migration handoff: envelopes that change owner without being freed
  // move their live-count with them, so the flow-control watermarks keep
  // comparing each PE's own pressure against its own budget (the sum across
  // pools is invariant). Positive on the receiving pool, negative on the
  // sending one.
  void adjust_live(std::int64_t delta) noexcept {
    live_ += delta;
    if (live_ > peak_live_) peak_live_ = live_;
  }

  // Outstanding allocations netted against frees into this pool (signed —
  // see the class comment).
  std::int64_t live() const noexcept { return live_; }
  std::int64_t peak_live() const noexcept { return peak_live_; }

 private:
  std::vector<std::unique_ptr<Event>> all_;
  std::vector<Event*> free_;
  std::int64_t live_ = 0;
  std::int64_t peak_live_ = 0;
};

}  // namespace hp::des
