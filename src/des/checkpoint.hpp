#pragma once

// Deterministic checkpoint/restore at committed-state boundaries.
//
// A checkpoint image is the engine-agnostic committed cut of a run at a
// fence timestamp F: for every LP its state bytes and RNG cursor after all
// committed events with key < {F,0,0,0,0}, plus every pending event with
// key >= that fence (full EventKey + send timestamp + payload, so the
// causal tiebreak chain is preserved verbatim). Nothing engine-specific is
// stored — an image written by the sequential kernel restores into Time
// Warp and vice versa, and a restored run finishes bit-identical to the
// uninterrupted one (the model-statistics oracle in the tests).
//
// Each engine decides where such a cut exists:
//   * sequential — between any two processed events;
//   * conservative — at the window-top barrier (all inboxes drained);
//   * Time Warp — during GVT commit, after rolling every KP back to the
//     fence and quiescing in-flight traffic (see timewarp.cpp).
//
// On disk: a fixed header (magic, version, payload size, FNV-1a checksum)
// followed by the little-endian payload. Files are written to a temporary
// name and renamed into place, so a crash mid-write never leaves a
// plausible-but-truncated image; readers verify the checksum and reject
// corrupt files with an error message instead of aborting.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "des/time.hpp"
#include "util/bytes.hpp"

namespace hp::util {
class ReversibleRng;
}  // namespace hp::util

namespace hp::des {

class LpState;

// --checkpoint=every=N[,dir=PATH] — write an image each time N more events
// have been committed globally since the previous image (N is a floor: the
// engine checkpoints at the first commit boundary at or past the threshold).
struct CheckpointConfig {
  std::uint64_t every = 0;  // committed events between images; 0 = disabled
  std::string dir = "checkpoints";

  bool enabled() const noexcept { return every > 0; }

  // Parses "every=N[,dir=PATH]". Returns false and sets `err` on malformed
  // input without touching `out`.
  static bool parse(std::string_view spec, CheckpointConfig& out,
                    std::string& err);
  std::string to_string() const;
  bool operator==(const CheckpointConfig&) const = default;
};

// A pending event at the cut. uid / parent linkage / children are NOT
// stored: a pending event has no children yet, and anti-message identity is
// meaningless across a restore boundary (nothing that could cancel a
// restored event survives the cut) — restore mints fresh uids.
struct CheckpointEventRecord {
  EventKey key;
  Time send_ts = 0.0;
  std::vector<std::uint8_t> payload;
};

// One LP's committed state: the model bytes (LpState::serialize) and the
// RNG stream position (raw state + draw count, so rollback accounting keeps
// working after restore).
struct CheckpointLpRecord {
  std::uint64_t rng_state = 0;
  std::uint64_t rng_draws = 0;
  std::vector<std::uint8_t> state;
};

struct CheckpointImage {
  std::uint64_t seed = 0;       // must match the restoring run's config
  std::uint32_t num_lps = 0;    // ditto
  Time fence = 0.0;             // everything < {fence,0,0,0,0} is inside
  Time end_time = 0.0;          // original run horizon (must match)
  std::uint64_t committed = 0;  // events committed at the cut (baseline)
  std::vector<CheckpointLpRecord> lps;      // indexed by LP id
  std::vector<CheckpointEventRecord> events;  // pending at the cut

  void encode(util::ByteSink& sink) const;
  // Returns false and sets `err` on a malformed payload (sticky-failure
  // reads — never aborts on corrupt input).
  bool decode(util::ByteSource& src, std::string& err);
};

// Writes `image` to dir/ckpt-<seq>.hpck via tmp+rename. Creates the
// directory if needed. On success returns true and sets `path_out` to the
// final path; on failure returns false with `err` set.
bool write_checkpoint(const CheckpointImage& image, const std::string& dir,
                      std::uint64_t seq, std::string& path_out,
                      std::string& err);

// Reads and verifies one image file (header, checksum, payload decode).
bool read_checkpoint(const std::string& path, CheckpointImage& image,
                     std::string& err);

// Resolves a --restore argument: a file path is returned as-is (if it
// exists); a directory is scanned for the highest-sequence ckpt-*.hpck.
// Returns "" if nothing suitable exists.
std::string find_latest_checkpoint(const std::string& path_or_dir);

// Resolves, reads and validates an image against the restoring run's
// configuration (seed, LP count, horizon — a mismatch would silently break
// the bit-identity guarantee, so it is an error, not a warning).
bool load_checkpoint_for_restore(const std::string& path_or_dir,
                                 std::uint64_t seed, std::uint32_t num_lps,
                                 Time end_time, CheckpointImage& image,
                                 std::string& err);

// Engine-shared record helpers: capture one LP's committed state, and apply
// a record back onto a freshly make_state'd LP (aborts on a record the
// model's deserialize rejects — a corrupt-but-checksum-valid image is a
// bug, not an input).
CheckpointLpRecord make_lp_record(const LpState& state,
                                  const util::ReversibleRng& rng);
void apply_lp_record(const CheckpointLpRecord& rec, std::uint32_t lp,
                     LpState& state, util::ReversibleRng& rng);

}  // namespace hp::des
