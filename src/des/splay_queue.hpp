#pragma once

// Splay-tree pending-event queue — the event queue ROSS itself uses.
// Self-adjusting binary search tree over Event* keyed by EventKey, with the
// three operations Time Warp needs:
//   * insert       — new/rolled-back/straggler events;
//   * pop_min      — next event to execute (amortized O(log n), and O(1)-ish
//                    under the skewed access patterns DES produces, which is
//                    why splay trees beat balanced trees here);
//   * erase(ev)    — anti-message annihilation of a pending positive.
//
// Duplicate keys are permitted (transient cancelled/re-sent twins, see
// DESIGN.md); equal keys are threaded through a per-node same-key chain so
// erase(ev) can remove the exact envelope: a key descent locates the chain,
// a pointer match picks the node. Tree nodes are recycled through an
// internal free list.

#include <cstdint>
#include <memory>
#include <vector>

#include "des/event.hpp"
#include "util/macros.hpp"

namespace hp::des {

class SplayQueue {
 public:
  SplayQueue() = default;
  SplayQueue(const SplayQueue&) = delete;
  SplayQueue& operator=(const SplayQueue&) = delete;
  ~SplayQueue() {
    clear();
    Node* f = free_;
    while (f != nullptr) {
      Node* next = f->right;
      delete f;
      f = next;
    }
  }

  bool empty() const noexcept { return root_ == nullptr; }
  std::size_t size() const noexcept { return size_; }

  void insert(Event* ev) {
    Node* node = alloc_node(ev);
    ++size_;
    if (root_ == nullptr) {
      root_ = node;
      return;
    }
    splay_closest(ev->key);
    if (ev->key == root_->ev->key) {
      // Duplicate key: thread onto the root's chain.
      node->next_dup = root_->next_dup;
      root_->next_dup = node;
      return;
    }
    if (ev->key < root_->ev->key) {
      node->left = root_->left;
      node->right = root_;
      root_->left = nullptr;
    } else {
      node->right = root_->right;
      node->left = root_;
      root_->right = nullptr;
    }
    root_ = node;
  }

  // Smallest-key event without removing it.
  Event* peek_min() {
    if (root_ == nullptr) return nullptr;
    splay_min();
    return root_->ev;
  }

  Event* pop_min() {
    if (root_ == nullptr) return nullptr;
    splay_min();
    Node* node = root_;
    Event* ev = node->ev;
    if (node->next_dup != nullptr) {
      // Keep the tree node, hand out a duplicate-chain entry.
      Node* dup = node->next_dup;
      node->next_dup = dup->next_dup;
      Event* dup_ev = dup->ev;
      free_node(dup);
      --size_;
      return dup_ev;
    }
    root_ = node->right;  // min node has no left child after splay_min
    free_node(node);
    --size_;
    return ev;
  }

  // Remove a specific pending envelope. Returns false if absent.
  bool erase(Event* ev) {
    if (root_ == nullptr) return false;
    splay_closest(ev->key);
    if (!(root_->ev->key == ev->key)) return false;
    // Exact pointer may be the tree node or on its duplicate chain.
    if (root_->ev == ev) {
      Node* node = root_;
      if (node->next_dup != nullptr) {
        Node* dup = node->next_dup;
        node->ev = dup->ev;
        node->next_dup = dup->next_dup;
        free_node(dup);
      } else {
        root_ = join(node->left, node->right);
        free_node(node);
      }
      --size_;
      return true;
    }
    for (Node* prev = root_, *cur = root_->next_dup; cur != nullptr;
         prev = cur, cur = cur->next_dup) {
      if (cur->ev == ev) {
        prev->next_dup = cur->next_dup;
        free_node(cur);
        --size_;
        return true;
      }
    }
    return false;
  }

  void clear() noexcept {
    // Iterative post-order teardown into the free list.
    std::vector<Node*> stack;
    if (root_ != nullptr) stack.push_back(root_);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
      for (Node* d = n->next_dup; d != nullptr;) {
        Node* next = d->next_dup;
        free_node(d);
        d = next;
      }
      n->next_dup = nullptr;
      free_node(n);
    }
    root_ = nullptr;
    size_ = 0;
  }

 private:
  struct Node {
    Event* ev = nullptr;
    Node* left = nullptr;
    Node* right = nullptr;
    Node* next_dup = nullptr;  // same-key chain
  };

  Node* alloc_node(Event* ev) {
    Node* n;
    if (free_ != nullptr) {
      n = free_;
      free_ = free_->right;
    } else {
      n = new Node();
    }
    n->ev = ev;
    n->left = n->right = n->next_dup = nullptr;
    return n;
  }
  void free_node(Node* n) noexcept {
    n->right = free_;
    free_ = n;
  }

  // Top-down splay (Sleator & Tarjan): after the call, the node with the
  // closest key to `key` is at the root.
  void splay_closest(const EventKey& key) {
    if (root_ == nullptr) return;
    Node header;
    Node* left_max = &header;
    Node* right_min = &header;
    Node* t = root_;
    for (;;) {
      if (key < t->ev->key) {
        if (t->left == nullptr) break;
        if (key < t->left->ev->key) {  // zig-zig: rotate right
          Node* y = t->left;
          t->left = y->right;
          y->right = t;
          t = y;
          if (t->left == nullptr) break;
        }
        right_min->left = t;  // link right
        right_min = t;
        t = t->left;
      } else if (t->ev->key < key) {
        if (t->right == nullptr) break;
        if (t->right->ev->key < key) {  // zag-zag: rotate left
          Node* y = t->right;
          t->right = y->left;
          y->left = t;
          t = y;
          if (t->right == nullptr) break;
        }
        left_max->right = t;  // link left
        left_max = t;
        t = t->right;
      } else {
        break;
      }
    }
    left_max->right = t->left;
    right_min->left = t->right;
    t->left = header.right;
    t->right = header.left;
    root_ = t;
  }

  void splay_min() { splay_closest(kMinKey); }

  static Node* join(Node* left, Node* right) {
    if (left == nullptr) return right;
    if (right == nullptr) return left;
    // Rotate the maximum of the left subtree to its root, then attach.
    Node* t = left;
    std::vector<Node*> path;
    while (t->right != nullptr) {
      path.push_back(t);
      t = t->right;
    }
    // Detach max node `t` by simple re-parenting (no splay needed; join is
    // only called from erase, which is rare relative to insert/pop).
    if (!path.empty()) {
      path.back()->right = t->left;
      t->left = left;
    }
    t->right = right;
    return t;
  }

  Node* root_ = nullptr;
  Node* free_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace hp::des
