#pragma once

// Virtual time and the deterministic event ordering key.
//
// Events are totally ordered by (ts, tie, src_lp, send_index, dst_lp).
// `tie` is derived deterministically from the causal chain:
//     child.tie = hash_combine(parent.tie, child_send_index)
// with root events hashed from (seed, lp, index). Because the derivation
// depends only on the causal structure — not on execution interleaving —
// the total order is identical under the sequential kernel and under Time
// Warp at any PE count. This is what makes the report's Attachment 3
// (sequential == parallel statistics) hold by construction.

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>

#include "util/hash.hpp"

namespace hp::des {

using Time = double;
inline constexpr Time kTimeInf = std::numeric_limits<Time>::infinity();
inline constexpr Time kTimeNegInf = -std::numeric_limits<Time>::infinity();

struct EventKey {
  Time ts = 0.0;
  std::uint64_t tie = 0;
  std::uint32_t src_lp = 0;
  std::uint32_t dst_lp = 0;
  std::uint32_t send_index = 0;

  friend constexpr bool operator==(const EventKey&, const EventKey&) = default;

  friend constexpr bool operator<(const EventKey& a, const EventKey& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.tie != b.tie) return a.tie < b.tie;
    if (a.src_lp != b.src_lp) return a.src_lp < b.src_lp;
    if (a.send_index != b.send_index) return a.send_index < b.send_index;
    return a.dst_lp < b.dst_lp;
  }
  friend constexpr bool operator>(const EventKey& a, const EventKey& b) {
    return b < a;
  }
  friend constexpr bool operator<=(const EventKey& a, const EventKey& b) {
    return !(b < a);
  }
  friend constexpr bool operator>=(const EventKey& a, const EventKey& b) {
    return !(a < b);
  }
};

struct EventKeyHash {
  std::size_t operator()(const EventKey& k) const noexcept {
    std::uint64_t h = util::splitmix64(std::bit_cast<std::uint64_t>(k.ts) ^ k.tie);
    h = util::hash_combine(h, (static_cast<std::uint64_t>(k.src_lp) << 32) |
                                  k.dst_lp);
    h = util::hash_combine(h, k.send_index);
    return static_cast<std::size_t>(h);
  }
};

// Sentinel key ordering before every real event.
inline constexpr EventKey kMinKey{kTimeNegInf, 0, 0, 0, 0};

}  // namespace hp::des
