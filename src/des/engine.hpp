#pragma once

// Shared engine configuration and run statistics.

#include <cstdint>
#include <vector>

#include "des/time.hpp"
#include "net/mapping.hpp"

namespace hp::des {

struct EngineConfig {
  std::uint32_t num_lps = 0;
  Time end_time = 0.0;
  std::uint64_t seed = 1;

  // Time Warp kernel only.
  std::uint32_t num_pes = 1;
  std::uint32_t num_kps = 1;  // total KPs across all PEs (report Fig. 7/8 x-axis)
  // Optional externally supplied LP->KP->PE mapping (e.g. the torus block
  // mapping); if null a LinearMapping is built. Not owned.
  const net::Mapping* mapping = nullptr;
  // Per-PE processed events between GVT rounds. Also bounds memory: events
  // can only be fossil-collected at GVT. Under adaptive pacing this is the
  // *ceiling*; the effective per-PE interval floats below it.
  std::uint32_t gvt_interval_events = 4096;
  // Adaptive GVT pacing: each PE adjusts its effective GVT interval from the
  // commit yield of the previous round (wasted optimism => sooner rounds,
  // clean progress => stretch toward gvt_interval_events), and idle PEs
  // request GVT with an exponential backoff instead of a fixed spin count.
  // Off reproduces the fixed-threshold behaviour (the GVT-interval ablation
  // sweeps with this disabled). Results are bit-identical either way — GVT
  // timing affects only commit latency and memory, never event order.
  bool adaptive_gvt = true;
  // Ablation: roll back by restoring pre-event state snapshots instead of
  // reverse computation (report Section 3.2.1 contrasts these).
  bool state_saving = false;
  // Cancellation strategy. Aggressive (default, and what ROSS defaults to):
  // a rollback sends anti-messages for all children immediately. Lazy: keep
  // the children; if re-execution sends a bit-identical child (same derived
  // key and payload), reuse it — its whole downstream subtree survives the
  // rollback. Only exact matches are reused, so results stay bit-identical.
  enum class Cancellation : std::uint8_t { Aggressive, Lazy };
  Cancellation cancellation = Cancellation::Aggressive;
  // Pending-queue implementation: the splay tree is what ROSS uses; the
  // multiset is the STL reference. Identical semantics (the queue ablation
  // bench compares their performance).
  enum class QueueKind : std::uint8_t { Multiset, Splay };
  QueueKind queue_kind = QueueKind::Splay;
  // Optimism throttle (moving time window): a PE only executes events with
  // ts <= GVT + window. Infinite reproduces pure Time Warp; a few model time
  // steps tames rollback thrash when PEs are badly co-paced (e.g. more PEs
  // than cores, so one thread races ahead while others are descheduled).
  Time optimism_window = kTimeInf;
};

// Per-PE breakdown (ROSS prints these per-processor tables at exit).
struct PeRunStats {
  std::uint64_t processed_events = 0;
  std::uint64_t committed_events = 0;
  std::uint64_t rolled_back_events = 0;
  std::uint64_t primary_rollbacks = 0;
  std::uint64_t anti_messages = 0;
  std::uint64_t pool_envelopes = 0;  // event envelopes ever allocated
  // Remote-path / pacing instrumentation (Time Warp only).
  std::uint64_t inbox_batches = 0;        // chain pushes into peer inboxes
  std::uint64_t inbox_batched_items = 0;  // envelopes across those batches
  std::uint64_t max_inbox_batch = 0;      // largest single batch
  std::uint64_t gvt_progress_triggers = 0;  // GVT requests: interval reached
  std::uint64_t gvt_idle_triggers = 0;      // GVT requests: idle backoff
  std::uint64_t idle_spins = 0;             // loop iterations with no work
};

struct RunStats {
  std::uint64_t committed_events = 0;   // events that survived to commit
  std::uint64_t processed_events = 0;   // forward executions incl. re-execution
  std::uint64_t rolled_back_events = 0; // events undone ("total events rolled back")
  std::uint64_t primary_rollbacks = 0;  // rollback episodes (straggler/anti)
  std::uint64_t anti_messages = 0;      // remote cancellations sent
  std::uint64_t lazy_reused = 0;        // children reused by lazy cancellation
  std::uint64_t gvt_rounds = 0;
  std::uint64_t pool_envelopes = 0;     // total envelopes allocated (memory proxy)
  // Remote-path / pacing aggregates (sums of the per-PE fields).
  std::uint64_t inbox_batches = 0;
  std::uint64_t inbox_batched_items = 0;
  std::uint64_t max_inbox_batch = 0;    // max over PEs
  std::uint64_t gvt_progress_triggers = 0;
  std::uint64_t gvt_idle_triggers = 0;
  std::uint64_t idle_spins = 0;
  double wall_seconds = 0.0;
  double final_gvt = 0.0;
  std::vector<PeRunStats> per_pe;       // one entry per PE (empty: sequential)

  double event_rate() const noexcept {
    return wall_seconds > 0 ? static_cast<double>(committed_events) / wall_seconds
                            : 0.0;
  }
  // Mean envelopes per remote inbox push (1.0 = no batching benefit).
  double avg_inbox_batch() const noexcept {
    return inbox_batches > 0 ? static_cast<double>(inbox_batched_items) /
                                   static_cast<double>(inbox_batches)
                             : 0.0;
  }
  // Fraction of forward executions that were useful work.
  double efficiency() const noexcept {
    return processed_events > 0
               ? static_cast<double>(committed_events) /
                     static_cast<double>(processed_events)
               : 1.0;
  }
};

}  // namespace hp::des
