#pragma once

// Shared engine configuration, the common kernel interface, and run
// statistics.
//
// Every kernel implements des::Engine (run / state / num_lps /
// for_each_state) so harnesses, tests and the core facade drive any of them
// through one handle; make_engine is the single construction point.
// RunStats wraps the structured obs::MetricsReport — named counters, per-PE
// phase-time breakdowns and the GVT-round time series — behind the
// historical accessor vocabulary.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "des/checkpoint.hpp"
#include "des/fault.hpp"
#include "des/migration.hpp"
#include "des/time.hpp"
#include "des/watchdog.hpp"
#include "net/mapping.hpp"
#include "obs/metrics.hpp"

namespace hp::des {

class Model;
class LpState;

struct EngineConfig {
  std::uint32_t num_lps = 0;
  Time end_time = 0.0;
  std::uint64_t seed = 1;

  // Time Warp kernel only.
  std::uint32_t num_pes = 1;
  // Total KPs across all PEs (report Fig. 7/8 x-axis). 0 = auto: one KP per
  // PE when an engine is built directly; the core facade substitutes the
  // report default (64) instead.
  std::uint32_t num_kps = 0;
  // Optional externally supplied LP->KP->PE mapping (e.g. the torus block
  // mapping); if null a LinearMapping is built. Not owned.
  const net::Mapping* mapping = nullptr;
  // Per-PE processed events between GVT rounds. Also bounds memory: events
  // can only be fossil-collected at GVT. Under adaptive pacing this is the
  // *ceiling*; the effective per-PE interval floats below it.
  std::uint32_t gvt_interval_events = 4096;
  // Adaptive GVT pacing: each PE adjusts its effective GVT interval from the
  // commit yield of the previous round (wasted optimism => sooner rounds,
  // clean progress => stretch toward gvt_interval_events), and idle PEs
  // request GVT with an exponential backoff instead of a fixed spin count.
  // Off reproduces the fixed-threshold behaviour (the GVT-interval ablation
  // sweeps with this disabled). Results are bit-identical either way — GVT
  // timing affects only commit latency and memory, never event order.
  bool adaptive_gvt = true;
  // GVT algorithm (Time Warp only). Barrier: the original two-barrier
  // stop-the-world reduction, kept as the reference oracle. Epoch: a
  // Mattern-style asynchronous epoch protocol — PEs keep executing while
  // per-PE LVT minima and send/recv counts reduce through relaxed-atomic
  // epoch slots; transient messages are accounted by tagging envelopes with
  // the sender's epoch, and the epoch closes (committing exactly the same
  // rounds: fossil, flow window, migration, checkpoint, monitor) only once
  // every epoch-e send has been matched by a receive. Committed results are
  // bit-identical in either mode — GVT timing affects only commit latency
  // and memory, never event order. See docs/GVT.md.
  enum class GvtMode : std::uint8_t { Barrier, Epoch };
  GvtMode gvt_mode = GvtMode::Barrier;
  // Ablation: roll back by restoring pre-event state snapshots instead of
  // reverse computation (report Section 3.2.1 contrasts these).
  bool state_saving = false;
  // Cancellation strategy. Aggressive (default, and what ROSS defaults to):
  // a rollback sends anti-messages for all children immediately. Lazy: keep
  // the children; if re-execution sends a bit-identical child (same derived
  // key and payload), reuse it — its whole downstream subtree survives the
  // rollback. Only exact matches are reused, so results stay bit-identical.
  enum class Cancellation : std::uint8_t { Aggressive, Lazy };
  Cancellation cancellation = Cancellation::Aggressive;
  // Pending-queue implementation behind des::PendingSet: the splay tree is
  // what ROSS uses, the multiset is the STL reference, and the ladder and
  // calendar queues are the bucket-based contenders. Identical semantics —
  // the queue ablation bench (bench/ablation_event_queue) races all four;
  // the default is the shoot-out winner on the PHOLD-style churn pattern.
  enum class QueueKind : std::uint8_t { Multiset, Splay, Ladder, Calendar };
  QueueKind queue_kind = QueueKind::Ladder;
  // Optimism throttle (moving time window): a PE only executes events with
  // ts <= GVT + window. Infinite reproduces pure Time Warp; a few model time
  // steps tames rollback thrash when PEs are badly co-paced (e.g. more PEs
  // than cores, so one thread races ahead while others are descheduled).
  Time optimism_window = kTimeInf;
  // Optimism flow control (Time Warp only): per-PE budget of *live* event
  // envelopes (EventPool::live()). 0 disables. A PE crossing the soft
  // watermark (pool_soft_fraction * budget) enters a throttle window that
  // caps forward progress to gvt + an adaptively shrinking window; crossing
  // the hard watermark (budget minus a small reserve) blocks optimistic
  // execution entirely — only events at ts <= GVT run — and forces a GVT
  // round. Degradation, never abort; committed results are bit-identical
  // with any budget (throttling only delays execution).
  std::uint64_t pool_budget_envelopes = 0;
  double pool_soft_fraction = 0.5;
  // Deterministic fault injection for the remote event path (Time Warp
  // only; disarmed by default). See des/fault.hpp.
  FaultPlan fault;
  // Runtime KP -> PE migration (Time Warp only; off by default). At every
  // interval-th GVT round the balancer re-homes the hottest KP(s) from the
  // hottest PE to the coldest one via a stop-the-world handoff. Committed
  // results are bit-identical with migration on or off at any cadence — the
  // event ordering key is placement-independent. See des/migration.hpp.
  MigrationConfig migration;
  // Observability: phase timers, GVT-round series retention, Chrome trace
  // export. Pure bookkeeping — results are bit-identical at any setting.
  obs::ObsConfig obs;
  // Crash safety: periodically serialize the committed cut of the run to
  // disk (all kernels; Time Warp checkpoints at GVT commit points). A run
  // resumed from an image finishes bit-identical to the uninterrupted run.
  // See des/checkpoint.hpp.
  CheckpointConfig checkpoint;
  // Resume from a checkpoint image (file path or directory holding images;
  // empty = fresh run). seed/num_lps/end_time must match the image.
  std::string restore_path;
  // Stall watchdog: declare the run wedged and fail loudly (structured
  // per-PE dump + exit code des::kStallExitCode) when neither GVT nor the
  // committed-event count moves for timeout_ms. See des/watchdog.hpp.
  WatchdogConfig watchdog;
};

// Structured run statistics. The full breakdown (named counters, per-PE
// phase timers, GVT-round series) lives in `metrics`; the accessors below
// are the stable shorthand the benches/tests/examples read.
struct RunStats {
  obs::MetricsReport metrics;

  std::uint64_t committed_events() const noexcept {
    return metrics.total.committed_events();
  }
  std::uint64_t processed_events() const noexcept {
    return metrics.total.processed_events();
  }
  std::uint64_t rolled_back_events() const noexcept {
    return metrics.total.rolled_back_events();
  }
  std::uint64_t primary_rollbacks() const noexcept {
    return metrics.total.primary_rollbacks();
  }
  std::uint64_t secondary_rollbacks() const noexcept {
    return metrics.total.secondary_rollbacks();
  }
  std::uint64_t primary_rollback_events() const noexcept {
    return metrics.total.primary_rollback_events();
  }
  std::uint64_t secondary_rollback_events() const noexcept {
    return metrics.total.secondary_rollback_events();
  }
  std::uint64_t max_rollback_depth() const noexcept {
    return metrics.total.max_rollback_depth();
  }
  std::uint64_t max_cascade_depth() const noexcept {
    return metrics.total.max_cascade_depth();
  }
  std::uint64_t anti_messages() const noexcept {
    return metrics.total.anti_messages();
  }
  std::uint64_t lazy_reused() const noexcept {
    return metrics.total.lazy_reused();
  }
  std::uint64_t pool_envelopes() const noexcept {
    return metrics.total.pool_envelopes();
  }
  std::uint64_t inbox_batches() const noexcept {
    return metrics.total.inbox_batches();
  }
  std::uint64_t inbox_batched_items() const noexcept {
    return metrics.total.inbox_batched_items();
  }
  std::uint64_t max_inbox_batch() const noexcept {
    return metrics.total.max_inbox_batch();
  }
  std::uint64_t gvt_progress_triggers() const noexcept {
    return metrics.total.gvt_progress_triggers();
  }
  std::uint64_t gvt_idle_triggers() const noexcept {
    return metrics.total.gvt_idle_triggers();
  }
  std::uint64_t idle_spins() const noexcept {
    return metrics.total.idle_spins();
  }
  std::uint64_t kp_migrations() const noexcept {
    return metrics.total.kp_migrations();
  }
  std::uint64_t migrated_events() const noexcept {
    return metrics.total.migrated_events();
  }
  std::uint64_t gvt_rounds() const noexcept { return metrics.gvt_rounds; }
  double wall_seconds() const noexcept { return metrics.wall_seconds; }
  double final_gvt() const noexcept { return metrics.final_gvt; }
  // One entry per PE (empty: sequential kernel).
  const std::vector<obs::PeMetrics>& per_pe() const noexcept {
    return metrics.per_pe;
  }

  double event_rate() const noexcept {
    return wall_seconds() > 0
               ? static_cast<double>(committed_events()) / wall_seconds()
               : 0.0;
  }
  // Mean envelopes per remote inbox push (1.0 = no batching benefit).
  double avg_inbox_batch() const noexcept {
    return inbox_batches() > 0
               ? static_cast<double>(inbox_batched_items()) /
                     static_cast<double>(inbox_batches())
               : 0.0;
  }
  // Fraction of forward executions that were useful work.
  double efficiency() const noexcept {
    return processed_events() > 0
               ? static_cast<double>(committed_events()) /
                     static_cast<double>(processed_events())
               : 1.0;
  }
};

// The common kernel interface: run to completion, then visit LP states for
// statistics collection (the report's Section 3.1.5 visitor construct).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual RunStats run() = 0;
  virtual std::uint32_t num_lps() const noexcept = 0;
  virtual LpState& state(std::uint32_t lp) noexcept = 0;
  virtual const LpState& state(std::uint32_t lp) const noexcept = 0;

  template <typename Fn>
  void for_each_state(Fn&& fn) const {
    for (std::uint32_t lp = 0; lp < num_lps(); ++lp) fn(lp, state(lp));
  }
};

// Every pending-queue backend, for the ablation bench and the shared
// conformance tests (tests/test_pending_set.cpp iterates this list).
inline constexpr EngineConfig::QueueKind kAllQueueKinds[] = {
    EngineConfig::QueueKind::Multiset, EngineConfig::QueueKind::Splay,
    EngineConfig::QueueKind::Ladder, EngineConfig::QueueKind::Calendar};

enum class EngineKind : std::uint8_t { Sequential, TimeWarp, Conservative };

// Every enumerator, for sweeps and for the exhaustiveness check: a new kind
// added here without a kind_name case fails to compile (constant evaluation
// reaches __builtin_unreachable), and tests/test_obs static_asserts over
// this list.
inline constexpr EngineKind kAllEngineKinds[] = {
    EngineKind::Sequential, EngineKind::TimeWarp, EngineKind::Conservative};

constexpr const char* kind_name(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::Sequential: return "sequential";
    case EngineKind::TimeWarp: return "timewarp";
    case EngineKind::Conservative: return "conservative";
  }
  __builtin_unreachable();
}

// Single construction point for all kernels. `conservative_lookahead` is
// only read by the conservative kernel (which requires it > 0).
std::unique_ptr<Engine> make_engine(EngineKind kind, Model& model,
                                    const EngineConfig& cfg,
                                    Time conservative_lookahead = 0.0);

// Parse the CLI `--gvt=mode=<barrier|epoch>[,interval=N]` spec into
// cfg.gvt_mode / cfg.gvt_interval_events. Same contract as the other spec
// parsers (WatchdogConfig::parse etc.): returns false with a message in
// `err` on an unknown key, unknown mode, or non-positive interval; `mode=`
// is required.
bool parse_gvt_spec(const std::string& spec, EngineConfig& cfg,
                    std::string& err);

constexpr const char* gvt_mode_name(EngineConfig::GvtMode m) noexcept {
  switch (m) {
    case EngineConfig::GvtMode::Barrier: return "barrier";
    case EngineConfig::GvtMode::Epoch: return "epoch";
  }
  __builtin_unreachable();
}

}  // namespace hp::des
