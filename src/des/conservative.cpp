#include "des/conservative.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "obs/telemetry.hpp"
#include "util/failure.hpp"
#include "util/hash.hpp"

namespace hp::des {

using obs::Counter;
using obs::Phase;

// Send context: same-PE sends insert straight into the pending set (they may
// still fall inside the current window — key-ordered popping handles that);
// cross-PE sends are verified against the lookahead and parked in the
// destination inbox until the end-of-window barrier.
class ConservativeEngine::Ctx final : public Context {
 public:
  Ctx(ConservativeEngine& e, PeData& pe) : e_(e), pe_(pe) {}

  void begin_event(Event* ev) {
    cur_ = ev;
    rng_ = &e_.rngs_[ev->key.dst_lp];
    send_seq_ = 0;
    reversing_ = false;
    ev->cv = 0;
  }

 protected:
  Event* prepare_send_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "PE %u LP %u t=%.6f: send to out-of-range LP %u at ts=%.6f "
              "(num_lps %u)",
              pe_.id, cur_->key.dst_lp, cur_->key.ts, dst_lp, ts,
              e_.cfg_.num_lps);
    Event* ev = pe_.pool.allocate();
    ev->key = EventKey{ts, util::hash_combine(cur_->key.tie, send_seq_),
                       cur_->key.dst_lp, dst_lp, send_seq_};
    ++send_seq_;
    ev->send_ts = cur_->key.ts;
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }

  void commit_send_(Event* ev) override {
    if (ev->key.dst_lp != cur_->key.dst_lp) {
      // The conservative contract: cross-LP messages respect the lookahead.
      HP_ASSERT(ev->key.ts >= cur_->key.ts + e_.lookahead_ - 1e-12,
                "PE %u LP %u t=%.6f: cross-LP send to LP %u at ts=%.6f has "
                "delay %f below the declared lookahead %f",
                pe_.id, cur_->key.dst_lp, cur_->key.ts, ev->key.dst_lp,
                ev->key.ts, ev->key.ts - cur_->key.ts, e_.lookahead_);
    }
    const std::uint32_t dst_pe = e_.lp_pe_[ev->key.dst_lp];
    if (dst_pe == pe_.id) {
      pe_.pending.insert(ev);
    } else {
      // Inbox-dwell start: the envelope sits parked until the destination's
      // end-of-window drain (send_wall_ns is otherwise unused here).
      if (HP_UNLIKELY(e_.telemetry_)) ev->send_wall_ns = obs::monotonic_ns();
      PeData& dst = *e_.pes_[dst_pe];
      std::scoped_lock lock(dst.inbox_mu);
      dst.inbox.push_back(ev);
    }
  }

 private:
  ConservativeEngine& e_;
  PeData& pe_;
};

class ConsInitCtx final : public InitContext {
 public:
  ConsInitCtx(ConservativeEngine& e, std::uint64_t seed) : e_(e), seed_(seed) {}

  void begin_lp(std::uint32_t lp) {
    lp_ = lp;
    rng_ = &e_.rngs_[lp];
    idx_ = 0;
  }

 protected:
  Event* prepare_schedule_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "init LP %u: schedule to out-of-range LP %u at ts=%.6f (num_lps "
              "%u)",
              lp_, dst_lp, ts, e_.cfg_.num_lps);
    ConservativeEngine::PeData& pe = *e_.pes_[e_.lp_pe_[dst_lp]];
    Event* ev = pe.pool.allocate();
    const std::uint64_t root = util::hash_combine(seed_, lp_);
    ev->key = EventKey{ts, util::hash_combine(root, idx_), lp_, dst_lp, idx_};
    ++idx_;
    ev->send_ts = 0.0;
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }
  void commit_schedule_(Event* ev) override {
    e_.pes_[e_.lp_pe_[ev->key.dst_lp]]->pending.insert(ev);
  }

 private:
  ConservativeEngine& e_;
  std::uint64_t seed_;
  std::uint32_t idx_ = 0;
};

ConservativeEngine::ConservativeEngine(Model& model, EngineConfig cfg,
                                       Time lookahead)
    : model_(model),
      cfg_(cfg),
      lookahead_(lookahead),
      barrier_(static_cast<std::ptrdiff_t>(cfg.num_pes)) {
  HP_ASSERT(cfg_.num_lps > 0, "num_lps must be positive");
  HP_ASSERT(cfg_.num_pes >= 1, "need at least one PE");
  HP_ASSERT(lookahead_ > 0.0, "conservative execution needs lookahead > 0");

  if (cfg_.mapping != nullptr) {
    mapping_ = cfg_.mapping;
  } else {
    owned_mapping_ = std::make_unique<net::LinearMapping>(
        cfg_.num_lps, std::max(cfg_.num_pes, cfg_.num_kps), cfg_.num_pes);
    mapping_ = owned_mapping_.get();
  }

  states_.reserve(cfg_.num_lps);
  rngs_.reserve(cfg_.num_lps);
  lp_pe_.resize(cfg_.num_lps);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    states_.push_back(model_.make_state(lp));
    rngs_.emplace_back(util::hash_combine(cfg_.seed, lp));
    lp_pe_[lp] = mapping_->pe_of(lp);
    HP_ASSERT(lp_pe_[lp] < cfg_.num_pes,
              "mapping returned out-of-range PE %u for LP %u (num_pes %u)",
              lp_pe_[lp], lp, cfg_.num_pes);
  }
  pes_.reserve(cfg_.num_pes);
  for (std::uint32_t pe = 0; pe < cfg_.num_pes; ++pe) {
    pes_.push_back(std::make_unique<PeData>());
    pes_.back()->id = pe;
    pes_.back()->pending.configure(cfg_.queue_kind);
  }
  local_min_.resize(cfg_.num_pes, kTimeInf);
  local_max_ts_.resize(cfg_.num_pes, kTimeNegInf);
  local_processed_.resize(cfg_.num_pes, 0);
  wd_beacons_ = std::make_unique<PeBeacon[]>(cfg_.num_pes);
}

ConservativeEngine::~ConservativeEngine() = default;

void ConservativeEngine::run_pe(PeData& pe) {
  Ctx ctx(*this, pe);
  pe.probe.begin(Phase::GvtBarrier);
  for (;;) {
    // Publish the local floor (plus the checkpoint reductions: local max
    // processed timestamp and processed count); PE 0 computes the window.
    pe.probe.switch_to(Phase::GvtBarrier);
    wd_beacons_[pe.id].set_phase(BeaconPhase::GvtBarrier);
    local_min_[pe.id] =
        pe.pending.empty() ? kTimeInf : pe.pending.peek_min()->key.ts;
    local_max_ts_[pe.id] = pe.max_processed_ts;
    local_processed_[pe.id] = pe.metrics.at(Counter::Processed);
    wd_beacons_[pe.id].processed.store(local_processed_[pe.id],
                                       std::memory_order_relaxed);
    wd_beacons_[pe.id].committed.store(local_processed_[pe.id],
                                       std::memory_order_relaxed);
    wd_beacons_[pe.id].pending.store(pe.pending.size(),
                                     std::memory_order_relaxed);
    barrier_.arrive_and_wait();
    if (pe.id == 0) {
      Time floor = kTimeInf;
      Time max_ts = kTimeNegInf;
      std::uint64_t total_processed = 0;
      for (const Time m : local_min_) floor = std::min(floor, m);
      for (const Time m : local_max_ts_) max_ts = std::max(max_ts, m);
      for (const std::uint64_t p : local_processed_) total_processed += p;
      wd_heart_.committed.store(ck_base_committed_ + total_processed,
                                std::memory_order_relaxed);
      wd_heart_.rounds.fetch_add(1, std::memory_order_relaxed);
      if (floor > cfg_.end_time) {
        done_.store(true, std::memory_order_relaxed);
        ck_do_.store(false, std::memory_order_relaxed);
      } else {
        wd_heart_.gvt_bits.store(std::bit_cast<std::uint64_t>(floor),
                                 std::memory_order_relaxed);
        window_end_.store(floor + lookahead_, std::memory_order_relaxed);
        windows_.fetch_add(1, std::memory_order_relaxed);
        // A checkpoint fence must separate everything committed (strictly
        // below) from everything pending (at or above) — true exactly when
        // the floor has moved past the highest processed timestamp. If not,
        // keep running; a later window will present a clean cut.
        const bool ck = ck_base_committed_ + total_processed >= ck_next_ &&
                        floor > max_ts;
        if (ck) {
          ck_fence_ = floor;
          ck_committed_ = ck_base_committed_ + total_processed;
        }
        ck_do_.store(ck, std::memory_order_relaxed);
      }
    }
    barrier_.arrive_and_wait();
    if (done_.load(std::memory_order_relaxed)) {
      pe.probe.end();
      wd_beacons_[pe.id].set_phase(BeaconPhase::Done);
      return;
    }
    if (ck_do_.load(std::memory_order_relaxed)) {
      // Stop-the-world serialization: every PE is parked between barriers
      // with its inbox empty (drained at the previous window's end) and all
      // processed work committed, so PE 0 can read the global LP/RNG/pending
      // structures without racing anyone.
      if (pe.id == 0) {
        obs::PhaseScope ck_phase(pe.probe, Phase::Checkpoint);
        wd_beacons_[0].set_phase(BeaconPhase::Checkpoint);
        write_checkpoint_image();
      }
      barrier_.arrive_and_wait();
    }

    // Process everything inside the window (key order; same-PE insertions
    // during processing are picked up by the min-pop).
    pe.probe.switch_to(Phase::Forward);
    wd_beacons_[pe.id].set_phase(BeaconPhase::Execute);
    const Time wend = window_end_.load(std::memory_order_relaxed);
    while (Event* ev = pe.pending.peek_min()) {
      if (ev->key.ts >= wend || ev->key.ts > cfg_.end_time) break;
      pe.pending.pop_min();
      ev->status = EventStatus::Processed;
      if (HP_UNLIKELY(telemetry_)) {
        const std::uint64_t now = obs::monotonic_ns();
        if (ev->create_wall_ns != 0) {
          hub_->ring(pe.id).try_push(obs::LatencyMetric::QueueDwell,
                                     now - ev->create_wall_ns);
        }
        ev->exec_wall_ns = now;
      }
      ctx.begin_event(ev);
      model_.forward(*states_[ev->key.dst_lp], *ev, ctx);
      model_.commit(*states_[ev->key.dst_lp], *ev);
      pe.max_processed_ts = std::max(pe.max_processed_ts, ev->key.ts);
      ++pe.metrics.at(Counter::Processed);
      if (HP_UNLIKELY(telemetry_)) {
        // Processing commits in place, so commit latency here is the
        // forward+commit cost (the no-rollback floor of the metric).
        hub_->ring(pe.id).try_push(obs::LatencyMetric::CommitLatency,
                                   obs::monotonic_ns() - ev->exec_wall_ns);
      }
      pe.pool.free(ev);
    }

    // End-of-window barrier: all sends are parked; drain the inbox.
    pe.probe.switch_to(Phase::GvtBarrier);
    barrier_.arrive_and_wait();
    std::uint64_t inbox_depth = 0;
    {
      obs::PhaseScope drain_phase(pe.probe, Phase::InboxDrain);
      std::scoped_lock lock(pe.inbox_mu);
      inbox_depth = pe.inbox.size();
      if (HP_UNLIKELY(telemetry_) && !pe.inbox.empty()) {
        // One clock read per drain batch: every parked envelope left the
        // sender before the barrier, so `now` bounds all their dwells.
        const std::uint64_t now = obs::monotonic_ns();
        for (Event* ev : pe.inbox) {
          if (ev->send_wall_ns != 0 && now > ev->send_wall_ns) {
            hub_->ring(pe.id).try_push(obs::LatencyMetric::InboxDwell,
                                       now - ev->send_wall_ns);
          }
          ev->send_wall_ns = 0;
        }
      }
      for (Event* ev : pe.inbox) pe.pending.insert(ev);
      pe.inbox.clear();
    }

    // This window's slice of the round series; every event processed in a
    // window commits, so the yield is 1 by construction.
    const std::uint64_t processed_delta =
        pe.metrics.at(Counter::Processed) - pe.processed_at_last_window;
    pe.series.push(obs::GvtRoundSample{
        pe.local_rounds, obs::monotonic_ns() - epoch_ns_, wend - lookahead_,
        processed_delta, processed_delta, inbox_depth, pe.pool.allocated(),
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, pe.pool.live())),
        0, pe.pool.pool_bytes()});
    ++pe.local_rounds;
    pe.processed_at_last_window = pe.metrics.at(Counter::Processed);
  }
}

// PE 0 only, with every other PE parked between barriers: capture the
// committed cut (all LP states + RNG cursors, every pending event on every
// PE) at the fence chosen by the window-top reduction.
void ConservativeEngine::write_checkpoint_image() {
  CheckpointImage img;
  img.seed = cfg_.seed;
  img.num_lps = cfg_.num_lps;
  img.fence = ck_fence_;
  img.end_time = cfg_.end_time;
  img.committed = ck_committed_;
  img.lps.reserve(cfg_.num_lps);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    img.lps.push_back(make_lp_record(*states_[lp], rngs_[lp]));
  }
  // The pending sets have no iteration API: drain each into a stage vector,
  // record, reinsert (same multiset, so window processing is unaffected).
  for (auto& pe : pes_) {
    std::vector<Event*> stage;
    while (Event* p = pe->pending.pop_min()) stage.push_back(p);
    img.events.reserve(img.events.size() + stage.size());
    for (const Event* p : stage) {
      CheckpointEventRecord rec;
      rec.key = p->key;
      rec.send_ts = p->send_ts;
      rec.payload.assign(reinterpret_cast<const std::uint8_t*>(p->payload),
                         reinterpret_cast<const std::uint8_t*>(p->payload) +
                             p->payload_size);
      img.events.push_back(std::move(rec));
    }
    for (Event* p : stage) pe->pending.insert(p);
  }
  std::string path, err;
  const bool wrote =
      write_checkpoint(img, cfg_.checkpoint.dir,
                       ck_next_ / cfg_.checkpoint.every, path, err);
  HP_ASSERT(wrote, "%s", err.c_str());
  ++ck_written_;
  ck_next_ =
      (img.committed / cfg_.checkpoint.every + 1) * cfg_.checkpoint.every;
}

RunStats ConservativeEngine::run() {
  // Telemetry comes up before init_lp so initial schedule()s get creation
  // stamps (their queue dwell until the first window is real).
  telemetry_ = cfg_.obs.telemetry_enabled();
  if (HP_UNLIKELY(telemetry_)) {
    hub_ = std::make_unique<obs::TelemetryHub>(cfg_.obs, cfg_.num_pes);
  }
  // Fresh run seeds the initial events; a restored run reinstates the
  // committed cut from the image instead (see des/checkpoint.hpp).
  const bool restoring = !cfg_.restore_path.empty();
  if (restoring) {
    CheckpointImage image;
    std::string err;
    const bool loaded =
        load_checkpoint_for_restore(cfg_.restore_path, cfg_.seed,
                                    cfg_.num_lps, cfg_.end_time, image, err);
    HP_ASSERT(loaded, "%s", err.c_str());
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
      apply_lp_record(image.lps[lp], lp, *states_[lp], rngs_[lp]);
    }
    for (const CheckpointEventRecord& rec : image.events) {
      PeData& pe = *pes_[lp_pe_[rec.key.dst_lp]];
      Event* ev = pe.pool.allocate();
      ev->key = rec.key;
      ev->send_ts = rec.send_ts;
      ev->status = EventStatus::Pending;
      ev->payload_size = static_cast<std::uint16_t>(rec.payload.size());
      if (!rec.payload.empty()) {
        std::memcpy(ev->payload, rec.payload.data(), rec.payload.size());
      }
      if (HP_UNLIKELY(telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
      pe.pending.insert(ev);
    }
    ck_base_committed_ = image.committed;
  } else {
    ConsInitCtx ictx(*this, cfg_.seed);
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
      ictx.begin_lp(lp);
      model_.init_lp(lp, ictx);
    }
  }
  if (cfg_.checkpoint.enabled()) {
    ck_next_ = (ck_base_committed_ / cfg_.checkpoint.every + 1) *
               cfg_.checkpoint.every;
  }

  const bool tracing = cfg_.obs.trace;
  for (auto& pe : pes_) {
    pe->trace.reset(tracing ? cfg_.obs.max_trace_spans_per_pe : 0);
    pe->series.reset(cfg_.obs.gvt_series_capacity);
    pe->probe.attach(&pe->metrics, tracing ? &pe->trace : nullptr,
                     cfg_.obs.phase_timers);
  }
  epoch_ns_ = obs::monotonic_ns();

  WatchdogScope wd_scope{"conservative", &wd_heart_, wd_beacons_.get(),
                         cfg_.num_pes};
  util::ScopedFailureDump wd_dump(failure_dump_adapter, &wd_scope);
  std::optional<Watchdog> watchdog;
  if (cfg_.watchdog.enabled()) watchdog.emplace(cfg_.watchdog, wd_scope);

  const auto t0 = std::chrono::steady_clock::now();
  if (cfg_.num_pes == 1) {
    run_pe(*pes_[0]);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(cfg_.num_pes);
    for (std::uint32_t pe = 0; pe < cfg_.num_pes; ++pe) {
      threads.emplace_back([this, pe] { run_pe(*pes_[pe]); });
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (watchdog) watchdog->stop();

  RunStats stats;
  obs::MetricsReport& m = stats.metrics;
  m.per_pe.reserve(pes_.size());
  pes_[0]->metrics.at(Counter::Checkpoints) = ck_written_;
  for (auto& pe : pes_) {
    // Everything a conservative PE processes commits immediately.
    pe->metrics.at(Counter::Committed) = pe->metrics.at(Counter::Processed);
    if (HP_UNLIKELY(telemetry_)) {
      // Producers have joined, so the ring's drop counter is final.
      pe->metrics.at(Counter::TelemetryDropped) =
          hub_->ring(pe->id).dropped();
    }
    pe->metrics.at(Counter::PoolEnvelopes) = pe->pool.allocated();
    pe->metrics.at(Counter::PoolLiveEnvelopes) = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, pe->pool.live()));
    pe->metrics.at(Counter::PoolPeakLive) =
        static_cast<std::uint64_t>(pe->pool.peak_live());
    pe->metrics.at(Counter::PoolSlabs) = pe->pool.slabs_allocated();
    pe->metrics.at(Counter::PoolBytes) = pe->pool.pool_bytes();
    m.per_pe.push_back(pe->metrics);
  }
  m.finalize();
  m.gvt_rounds = windows_.load();
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  m.final_gvt = cfg_.end_time;

  // Merge the per-PE window series (windows are barrier-global; slices
  // align index-by-index; window floor and timestamp come from PE 0).
  std::vector<obs::GvtRoundSample> series = pes_[0]->series.snapshot();
  for (std::size_t p = 1; p < pes_.size(); ++p) {
    const std::vector<obs::GvtRoundSample> other = pes_[p]->series.snapshot();
    HP_ASSERT(other.size() == series.size(),
              "window series rings disagree across PEs (%zu vs %zu)",
              other.size(), series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      series[i].processed += other[i].processed;
      series[i].committed += other[i].committed;
      series[i].inbox_depth += other[i].inbox_depth;
      series[i].pool_envelopes += other[i].pool_envelopes;
      series[i].pool_live += other[i].pool_live;
      series[i].pool_bytes += other[i].pool_bytes;
    }
  }
  m.gvt_series = std::move(series);

  if (tracing) {
    std::vector<const obs::TraceBuffer*> buffers;
    buffers.reserve(pes_.size());
    for (const auto& pe : pes_) {
      buffers.push_back(&pe->trace);
      m.trace_spans_dropped += pe->trace.dropped();
    }
    m.trace_spans = obs::write_chrome_trace(cfg_.obs.trace_path, epoch_ns_,
                                            buffers, m.gvt_series)
                        .spans;
  }
  // Rollback forensics and the live monitor are Time Warp diagnostics: a
  // conservative window never rolls back and has no straggler causality to
  // attribute, so ObsConfig::forensics/monitor are accepted and ignored here
  // (m.forensics stays empty, no heartbeat is emitted).

  if (HP_UNLIKELY(telemetry_)) {
    obs::GaugeSnapshot g;
    g.counters = m.total.counters;
    g.phase_ns = m.total.phase_ns;
    g.gvt = m.final_gvt;
    g.round = m.gvt_rounds;
    g.wall_seconds = m.wall_seconds;
    hub_->publish_gauges(g);
    hub_->finalize_into(m);
    hub_.reset();
  }
  return stats;
}

}  // namespace hp::des
