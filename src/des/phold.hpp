#pragma once

// PHOLD — the standard synthetic benchmark for parallel DES kernels
// (Fujimoto's parallel HOLD model): a fixed population of jobs circulates
// among LPs; each event draws a destination (remote with configurable
// probability, otherwise self) and a service delay, then schedules one
// successor. Used here to characterize the Time Warp kernel independently
// of the hot-potato application (rollback sensitivity to remote fraction
// and lookahead), exactly as the ROSS literature does.
//
// Fully reverse-computable: two RNG draws per event, counters and an
// order-sensitive hash maintained with the save-into-the-message idiom.

#include <cstdint>
#include <memory>

#include "des/model.hpp"
#include "util/bytes.hpp"

namespace hp::des {

struct PholdConfig {
  std::uint32_t num_lps = 64;
  std::uint32_t population_per_lp = 4;  // jobs seeded per LP
  double remote_fraction = 0.5;         // probability a successor is remote
  double mean_delay = 1.0;              // uniform(0, 2*mean) service time
  double lookahead = 0.1;               // minimum delay (0 breaks no rules,
                                        // but tiny values maximize rollbacks)
};

struct PholdState final : LpState {
  std::uint64_t events = 0;
  std::uint64_t remote_sends = 0;
  std::uint64_t order_hash = 0;

  std::unique_ptr<LpState> clone() const override {
    return std::make_unique<PholdState>(*this);
  }
  bool equals(const LpState& o) const override {
    const auto& s = static_cast<const PholdState&>(o);
    return events == s.events && remote_sends == s.remote_sends &&
           order_hash == s.order_hash;
  }
  void serialize(util::ByteSink& sink) const override {
    sink.u64(events);
    sink.u64(remote_sends);
    sink.u64(order_hash);
  }
  void deserialize(util::ByteSource& src) override {
    events = src.u64();
    remote_sends = src.u64();
    order_hash = src.u64();
  }
};

struct PholdMsg {
  std::uint64_t saved_order_hash = 0;  // reverse scratch
  std::uint8_t saved_remote = 0;
};

class PholdModel final : public Model {
 public:
  explicit PholdModel(PholdConfig cfg);

  std::unique_ptr<LpState> make_state(std::uint32_t lp) override;
  void init_lp(std::uint32_t lp, InitContext& ctx) override;
  void forward(LpState& state, Event& ev, Context& ctx) override;
  void reverse(LpState& state, Event& ev, Context& ctx) override;

  const PholdConfig& config() const noexcept { return cfg_; }

  // Aggregate digest for equivalence checks across kernels.
  template <typename Engine>
  static std::uint64_t digest(Engine& eng) {
    std::uint64_t h = 0;
    for (std::uint32_t lp = 0; lp < eng.num_lps(); ++lp) {
      const auto& s = static_cast<const PholdState&>(eng.state(lp));
      h ^= s.order_hash + 0x9e3779b97f4a7c15ULL * (s.events + 1);
    }
    return h;
  }

 private:
  PholdConfig cfg_;
};

}  // namespace hp::des
