#pragma once

// Runtime-selected pending-event set shared by all three kernels.
//
// One facade over the four interchangeable backends (std::multiset
// reference, ROSS-style splay tree, ladder queue, calendar queue) so the
// engines, the queue-ablation bench, and the shared conformance tests all
// drive the same interface: insert / peek_min / pop_min / erase(ev) /
// clear / size / empty. Semantics are identical across backends — pops come
// in full EventKey order, duplicate keys may pop in any relative order, and
// erase removes exactly the given envelope — so EngineConfig::queue_kind is
// a pure performance knob and committed results are bit-identical under any
// choice (tests/test_pending_set.cpp holds every backend to the same
// multiset oracle).
//
// Dispatch is a switch on the kind selected at configure() time: within a
// run the branch is perfectly predicted, and the backends stay directly
// usable (the bench times them without the facade too).

#include <memory>
#include <set>

#include "des/calendar_queue.hpp"
#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/ladder_queue.hpp"
#include "des/splay_queue.hpp"
#include "util/macros.hpp"

namespace hp::des {

constexpr const char* queue_name(EngineConfig::QueueKind k) noexcept {
  switch (k) {
    case EngineConfig::QueueKind::Multiset: return "multiset";
    case EngineConfig::QueueKind::Splay: return "splay";
    case EngineConfig::QueueKind::Ladder: return "ladder";
    case EngineConfig::QueueKind::Calendar: return "calendar";
  }
  __builtin_unreachable();
}

// STL reference backend, wrapped to the common interface.
class MultisetQueue {
 public:
  bool empty() const noexcept { return set_.empty(); }
  std::size_t size() const noexcept { return set_.size(); }
  void insert(Event* ev) { set_.insert(ev); }
  Event* peek_min() { return set_.empty() ? nullptr : *set_.begin(); }
  Event* pop_min() {
    if (set_.empty()) return nullptr;
    const auto it = set_.begin();
    Event* ev = *it;
    set_.erase(it);
    return ev;
  }
  bool erase(Event* ev) {
    const auto [lo, hi] = set_.equal_range(ev);
    for (auto it = lo; it != hi; ++it) {
      if (*it == ev) {
        set_.erase(it);
        return true;
      }
    }
    return false;
  }
  void clear() noexcept { set_.clear(); }

 private:
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const noexcept {
      return a->key < b->key;
    }
  };
  std::multiset<Event*, KeyLess> set_;
};

class PendingSet {
 public:
  using Kind = EngineConfig::QueueKind;

  explicit PendingSet(Kind kind = Kind::Ladder) { configure(kind); }
  PendingSet(const PendingSet&) = delete;
  PendingSet& operator=(const PendingSet&) = delete;
  PendingSet(PendingSet&&) = default;
  PendingSet& operator=(PendingSet&&) = default;

  // Swap the backend. Only valid while empty (engines configure their
  // queues from EngineConfig before seeding initial events).
  void configure(Kind kind) {
    // No backend yet means we are being constructed; otherwise reconfiguring
    // is only legal while the set is empty.
    const bool constructed = multiset_ || splay_ || ladder_ || calendar_;
    HP_ASSERT(!constructed || size() == 0,
              "PendingSet reconfigured while non-empty");
    multiset_.reset();
    splay_.reset();
    ladder_.reset();
    calendar_.reset();
    kind_ = kind;
    switch (kind_) {
      case Kind::Multiset:
        multiset_ = std::make_unique<MultisetQueue>();
        break;
      case Kind::Splay:
        splay_ = std::make_unique<SplayQueue>();
        break;
      case Kind::Ladder:
        ladder_ = std::make_unique<LadderQueue>();
        break;
      case Kind::Calendar:
        calendar_ = std::make_unique<CalendarQueue>();
        break;
    }
  }

  Kind kind() const noexcept { return kind_; }
  const char* name() const noexcept { return queue_name(kind_); }

  bool empty() const noexcept { return size() == 0; }
  std::size_t size() const noexcept {
    switch (kind_) {
      case Kind::Multiset: return multiset_->size();
      case Kind::Splay: return splay_->size();
      case Kind::Ladder: return ladder_->size();
      case Kind::Calendar: return calendar_->size();
    }
    __builtin_unreachable();
  }

  void insert(Event* ev) {
    switch (kind_) {
      case Kind::Multiset: multiset_->insert(ev); return;
      case Kind::Splay: splay_->insert(ev); return;
      case Kind::Ladder: ladder_->insert(ev); return;
      case Kind::Calendar: calendar_->insert(ev); return;
    }
    __builtin_unreachable();
  }

  Event* peek_min() {
    switch (kind_) {
      case Kind::Multiset: return multiset_->peek_min();
      case Kind::Splay: return splay_->peek_min();
      case Kind::Ladder: return ladder_->peek_min();
      case Kind::Calendar: return calendar_->peek_min();
    }
    __builtin_unreachable();
  }

  Event* pop_min() {
    switch (kind_) {
      case Kind::Multiset: return multiset_->pop_min();
      case Kind::Splay: return splay_->pop_min();
      case Kind::Ladder: return ladder_->pop_min();
      case Kind::Calendar: return calendar_->pop_min();
    }
    __builtin_unreachable();
  }

  bool erase(Event* ev) {
    switch (kind_) {
      case Kind::Multiset: return multiset_->erase(ev);
      case Kind::Splay: return splay_->erase(ev);
      case Kind::Ladder: return ladder_->erase(ev);
      case Kind::Calendar: return calendar_->erase(ev);
    }
    __builtin_unreachable();
  }

  void clear() noexcept {
    switch (kind_) {
      case Kind::Multiset: multiset_->clear(); return;
      case Kind::Splay: splay_->clear(); return;
      case Kind::Ladder: ladder_->clear(); return;
      case Kind::Calendar: calendar_->clear(); return;
    }
    __builtin_unreachable();
  }

 private:
  Kind kind_ = Kind::Ladder;
  std::unique_ptr<MultisetQueue> multiset_;
  std::unique_ptr<SplayQueue> splay_;
  std::unique_ptr<LadderQueue> ladder_;
  std::unique_ptr<CalendarQueue> calendar_;
};

}  // namespace hp::des
