#include "des/migration.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace hp::des {

namespace {

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.front() == '-') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

bool MigrationConfig::parse(std::string_view spec, MigrationConfig& out,
                            std::string& err) {
  MigrationConfig cfg;
  cfg.enabled = true;  // the flag's presence arms the balancer
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view clause = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (clause.empty()) continue;

    if (clause == "forced") {
      cfg.forced = true;
      continue;
    }
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq == clause.size() - 1) {
      err = "migrate: expected key=value or 'forced', got '" +
            std::string(clause) + "'";
      return false;
    }
    const std::string_view key = trim(clause.substr(0, eq));
    const std::string_view val = trim(clause.substr(eq + 1));
    if (key == "every") {
      std::uint64_t v = 0;
      if (!parse_u64(val, v) || v == 0) {
        err = "migrate every: must be a positive round count, got '" +
              std::string(val) + "'";
        return false;
      }
      cfg.interval_rounds = static_cast<std::uint32_t>(v);
    } else if (key == "imbalance") {
      double v = 0.0;
      if (!parse_double(val, v) || v < 1.0) {
        err = "migrate imbalance: must be a number >= 1, got '" +
              std::string(val) + "'";
        return false;
      }
      cfg.imbalance_threshold = v;
    } else if (key == "max") {
      std::uint64_t v = 0;
      if (!parse_u64(val, v) || v == 0) {
        err = "migrate max: must be a positive move count, got '" +
              std::string(val) + "'";
        return false;
      }
      cfg.max_moves = static_cast<std::uint32_t>(v);
    } else {
      err = "migrate: unknown key '" + std::string(key) +
            "' (expected every, imbalance, max, forced)";
      return false;
    }
  }
  out = cfg;
  return true;
}

std::string MigrationConfig::to_string() const {
  if (!enabled) return "off";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "every=%u,imbalance=%g,max=%u%s",
                interval_rounds, imbalance_threshold, max_moves,
                forced ? ",forced" : "");
  return buf;
}

std::vector<KpMove> plan_migrations(const MigrationConfig& cfg,
                                    const std::vector<PeLoad>& loads,
                                    const std::vector<std::uint32_t>& kp_owner,
                                    std::uint64_t decision_index) {
  std::vector<KpMove> moves;
  const auto num_pes = static_cast<std::uint32_t>(loads.size());
  const auto num_kps = static_cast<std::uint32_t>(kp_owner.size());
  if (num_pes < 2 || num_kps == 0) return moves;

  if (cfg.forced) {
    // Stress rotation: deterministic in the decision index alone, so every
    // due round moves exactly max_moves distinct KPs (or fewer when num_kps
    // is small) one PE to the right. PEs may end up owning zero KPs — the
    // kernel must tolerate that.
    for (std::uint32_t m = 0; m < cfg.max_moves && m < num_kps; ++m) {
      const std::uint32_t kp = static_cast<std::uint32_t>(
          (decision_index * cfg.max_moves + m) % num_kps);
      bool dup = false;
      for (const KpMove& mv : moves) dup = dup || mv.kp == kp;
      if (dup) continue;
      const std::uint32_t src = kp_owner[kp];
      moves.push_back(KpMove{kp, src, (src + 1) % num_pes});
    }
    return moves;
  }

  // Scored mode. One source PE is relieved of one KP per move; a source is
  // never picked twice in a round (its published candidate is gone).
  std::vector<bool> used_src(num_pes, false);
  std::uint64_t total = 0;
  for (const PeLoad& l : loads) total += l.score();
  const double mean =
      static_cast<double>(total) / static_cast<double>(num_pes);
  if (total == 0) return moves;

  for (std::uint32_t m = 0; m < cfg.max_moves; ++m) {
    // Hottest eligible source: must keep at least one KP, must have
    // published a candidate it still owns, and must exceed the imbalance
    // threshold over the mean. Ties break toward the lower PE id.
    std::uint32_t src = num_pes;
    for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
      const PeLoad& l = loads[pe];
      if (used_src[pe] || !l.has_candidate || l.owned_kps < 2) continue;
      if (l.candidate_kp >= num_kps || kp_owner[l.candidate_kp] != pe) continue;
      if (src == num_pes || l.score() > loads[src].score()) src = pe;
    }
    if (src == num_pes) break;
    if (static_cast<double>(loads[src].score()) <
        cfg.imbalance_threshold * mean) {
      break;
    }
    // Coldest destination: lowest score, then least pool pressure, then
    // lowest id. Moving between equally loaded PEs is churn, not balance.
    std::uint32_t dst = num_pes;
    for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
      if (pe == src) continue;
      if (dst == num_pes) {
        dst = pe;
        continue;
      }
      const PeLoad& a = loads[pe];
      const PeLoad& b = loads[dst];
      if (a.score() != b.score() ? a.score() < b.score()
                                 : a.pool_live < b.pool_live) {
        dst = pe;
      }
    }
    if (dst == num_pes || loads[dst].score() >= loads[src].score()) break;
    moves.push_back(KpMove{loads[src].candidate_kp, src, dst});
    used_src[src] = true;
  }
  return moves;
}

}  // namespace hp::des
