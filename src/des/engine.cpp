#include "des/engine.hpp"

#include <cstdlib>

#include "des/conservative.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"

namespace hp::des {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  // strtoull silently wraps a leading '-' into a huge value; reject it.
  if (s.empty() || s[0] == '-' || s[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace

bool parse_gvt_spec(const std::string& spec, EngineConfig& cfg,
                    std::string& err) {
  bool saw_mode = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string clause = trim(
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos));
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      err = "--gvt clause '" + clause + "' is not key=value";
      return false;
    }
    const std::string key = trim(clause.substr(0, eq));
    const std::string val = trim(clause.substr(eq + 1));
    if (key == "mode") {
      if (val == "barrier") {
        cfg.gvt_mode = EngineConfig::GvtMode::Barrier;
      } else if (val == "epoch") {
        cfg.gvt_mode = EngineConfig::GvtMode::Epoch;
      } else {
        err = "--gvt mode must be 'barrier' or 'epoch', got '" + val + "'";
        return false;
      }
      saw_mode = true;
    } else if (key == "interval") {
      std::uint64_t n = 0;
      if (!parse_u64(val, n) || n == 0) {
        err = "--gvt interval expects a positive integer, got '" + val + "'";
        return false;
      }
      cfg.gvt_interval_events = static_cast<std::uint32_t>(n);
    } else {
      err = "--gvt unknown key '" + key + "'";
      return false;
    }
  }
  if (!saw_mode) {
    err = "--gvt requires mode=<barrier|epoch>";
    return false;
  }
  return true;
}

std::unique_ptr<Engine> make_engine(EngineKind kind, Model& model,
                                    const EngineConfig& cfg,
                                    Time conservative_lookahead) {
  switch (kind) {
    case EngineKind::Sequential:
      return std::make_unique<SequentialEngine>(model, cfg);
    case EngineKind::TimeWarp:
      return std::make_unique<TimeWarpEngine>(model, cfg);
    case EngineKind::Conservative:
      return std::make_unique<ConservativeEngine>(model, cfg,
                                                  conservative_lookahead);
  }
  __builtin_unreachable();
}

}  // namespace hp::des
