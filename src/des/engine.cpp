#include "des/engine.hpp"

#include "des/conservative.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"

namespace hp::des {

std::unique_ptr<Engine> make_engine(EngineKind kind, Model& model,
                                    const EngineConfig& cfg,
                                    Time conservative_lookahead) {
  switch (kind) {
    case EngineKind::Sequential:
      return std::make_unique<SequentialEngine>(model, cfg);
    case EngineKind::TimeWarp:
      return std::make_unique<TimeWarpEngine>(model, cfg);
    case EngineKind::Conservative:
      return std::make_unique<ConservativeEngine>(model, cfg,
                                                  conservative_lookahead);
  }
  __builtin_unreachable();
}

}  // namespace hp::des
