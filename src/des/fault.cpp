#include "des/fault.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hp::des {

namespace {

// One key=value pair inside a clause.
struct KeyVal {
  std::string_view key;
  std::string_view val;
};

bool parse_double(std::string_view s, double& out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.front() == '-') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

bool parse_prob(std::string_view s, double& out, std::string& err,
                std::string_view clause) {
  double v = 0.0;
  if (!parse_double(s, v) || v < 0.0 || v > 1.0) {
    err = "chaos clause '" + std::string(clause) +
          "': probability must be a number in [0,1], got '" + std::string(s) +
          "'";
    return false;
  }
  out = v;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits "key=val,key=val" after the clause name; false on malformed pairs.
bool split_kvs(std::string_view body, std::vector<KeyVal>& out,
               std::string& err, std::string_view clause) {
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    std::string_view pair = trim(body.substr(0, comma));
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq == pair.size() - 1) {
      err = "chaos clause '" + std::string(clause) +
            "': expected key=value, got '" + std::string(pair) + "'";
      return false;
    }
    out.push_back({trim(pair.substr(0, eq)), trim(pair.substr(eq + 1))});
  }
  return true;
}

}  // namespace

bool FaultPlan::parse(std::string_view spec, FaultPlan& out, std::string& err) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view clause = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    std::string_view name = trim(clause.substr(0, colon));
    std::string_view body =
        colon == std::string_view::npos ? std::string_view{}
                                        : clause.substr(colon + 1);

    // Bare `seed=N` clause (no colon form).
    if (name.substr(0, 5) == "seed=" && colon == std::string_view::npos) {
      if (!parse_u64(trim(name.substr(5)), plan.seed)) {
        err = "chaos seed: expected unsigned integer, got '" +
              std::string(name.substr(5)) + "'";
        return false;
      }
      continue;
    }

    // `seed:42` tolerated alongside the documented `seed=42` (the body is a
    // bare value, not key=value pairs, so it must dodge split_kvs).
    if (name == "seed") {
      if (!parse_u64(trim(body), plan.seed)) {
        err = "chaos seed: expected seed=<unsigned integer>";
        return false;
      }
      continue;
    }

    std::vector<KeyVal> kvs;
    if (!split_kvs(body, kvs, err, clause)) return false;

    // A probability-kind clause without p= is a silent no-op the user surely
    // did not intend; require it.
    bool have_p = false;
    if (name == "delay") {
      for (const KeyVal& kv : kvs) {
        if (kv.key == "p") {
          if (!parse_prob(kv.val, plan.delay_prob, err, clause)) return false;
          have_p = true;
        } else if (kv.key == "k") {
          std::uint64_t k = 0;
          if (!parse_u64(kv.val, k) || k == 0) {
            err = "chaos delay: k must be a positive integer, got '" +
                  std::string(kv.val) + "'";
            return false;
          }
          plan.delay_rounds = static_cast<std::uint32_t>(k);
        } else {
          err = "chaos delay: unknown key '" + std::string(kv.key) + "'";
          return false;
        }
      }
    } else if (name == "reorder") {
      for (const KeyVal& kv : kvs) {
        if (kv.key == "p") {
          if (!parse_prob(kv.val, plan.reorder_prob, err, clause)) return false;
          have_p = true;
        } else {
          err = "chaos reorder: unknown key '" + std::string(kv.key) + "'";
          return false;
        }
      }
    } else if (name == "straggler") {
      for (const KeyVal& kv : kvs) {
        if (kv.key == "p") {
          if (!parse_prob(kv.val, plan.straggler_prob, err, clause)) {
            return false;
          }
          have_p = true;
        } else if (kv.key == "margin" || kv.key == "m") {
          double m = 0.0;
          if (!parse_double(kv.val, m) || m <= 0.0) {
            err = "chaos straggler: margin must be > 0, got '" +
                  std::string(kv.val) + "'";
            return false;
          }
          plan.straggler_margin = m;
        } else {
          err = "chaos straggler: unknown key '" + std::string(kv.key) + "'";
          return false;
        }
      }
    } else if (name == "dup-anti") {
      for (const KeyVal& kv : kvs) {
        if (kv.key == "p") {
          if (!parse_prob(kv.val, plan.dup_anti_prob, err, clause)) {
            return false;
          }
          have_p = true;
        } else {
          err = "chaos dup-anti: unknown key '" + std::string(kv.key) + "'";
          return false;
        }
      }
    } else if (name == "stall") {
      bool have_pe = false;
      for (const KeyVal& kv : kvs) {
        if (kv.key == "pe") {
          std::uint64_t pe = 0;
          if (!parse_u64(kv.val, pe) || pe >= kNoStallPe) {
            err = "chaos stall: pe must be an unsigned PE index, got '" +
                  std::string(kv.val) + "'";
            return false;
          }
          plan.stall_pe = static_cast<std::uint32_t>(pe);
          have_pe = true;
        } else if (kv.key == "rounds") {
          if (!parse_u64(kv.val, plan.stall_rounds) ||
              plan.stall_rounds == 0) {
            err = "chaos stall: rounds must be a positive integer, got '" +
                  std::string(kv.val) + "'";
            return false;
          }
        } else if (kv.key == "at") {
          if (!parse_u64(kv.val, plan.stall_at)) {
            err = "chaos stall: at must be an unsigned round index, got '" +
                  std::string(kv.val) + "'";
            return false;
          }
        } else {
          err = "chaos stall: unknown key '" + std::string(kv.key) + "'";
          return false;
        }
      }
      if (!have_pe || plan.stall_rounds == 0) {
        err = "chaos stall: requires pe=<index> and rounds=<n>";
        return false;
      }
    } else {
      err = "chaos: unknown fault kind '" + std::string(name) +
            "' (expected delay, reorder, straggler, dup-anti, stall, seed)";
      return false;
    }
    if (name != "stall" && !have_p) {
      err = "chaos " + std::string(name) + ": requires p=<probability>";
      return false;
    }
  }
  out = plan;
  return true;
}

std::string FaultPlan::to_string() const {
  if (!any()) return "off";
  std::string s;
  char buf[96];
  const auto add = [&s](const char* piece) {
    if (!s.empty()) s += ";";
    s += piece;
  };
  if (delay_prob > 0.0) {
    std::snprintf(buf, sizeof(buf), "delay:p=%g,k=%u", delay_prob,
                  delay_rounds);
    add(buf);
  }
  if (reorder_prob > 0.0) {
    std::snprintf(buf, sizeof(buf), "reorder:p=%g", reorder_prob);
    add(buf);
  }
  if (straggler_prob > 0.0) {
    std::snprintf(buf, sizeof(buf), "straggler:p=%g,margin=%g", straggler_prob,
                  straggler_margin);
    add(buf);
  }
  if (dup_anti_prob > 0.0) {
    std::snprintf(buf, sizeof(buf), "dup-anti:p=%g", dup_anti_prob);
    add(buf);
  }
  if (stall_pe != kNoStallPe && stall_rounds > 0) {
    std::snprintf(buf, sizeof(buf), "stall:pe=%u,rounds=%llu,at=%llu",
                  stall_pe, static_cast<unsigned long long>(stall_rounds),
                  static_cast<unsigned long long>(stall_at));
    add(buf);
  }
  std::snprintf(buf, sizeof(buf), "seed=%llu",
                static_cast<unsigned long long>(seed));
  add(buf);
  return s;
}

}  // namespace hp::des
