#pragma once

// Ladder queue pending-event set (Tang, Goh & Thng, "Ladder queue: An O(1)
// priority queue structure for large-scale discrete event simulation",
// TOMACS 2005) — one of the two contenders the pending-set shoot-out bench
// races against the splay tree (bench/ablation_event_queue).
//
// Three tiers:
//   * Top    — an unsorted overflow list for far-future events (everything
//              beyond the timestamp horizon of the structure built so far);
//   * Rungs  — a stack of bucket arrays, each finer than the one above it.
//              A rung partitions a timestamp interval into equal-width
//              buckets; draining meets an oversized bucket by spawning a
//              finer rung that subdivides just that bucket;
//   * Bottom — the current earliest bucket, sorted (descending here, so
//              pop_min is a pop_back), which serves peek/pop directly.
//
// Insertions ride the same thresholds downward: a new event lands in Top if
// it is beyond the horizon, in the first rung whose unconsumed range covers
// its timestamp, or in Bottom (sorted insert) when it precedes every rung —
// the straggler/rollback-reinsertion case Time Warp produces.
//
// erase(ev) — anti-message annihilation of a pending positive — resolves the
// bucket the insert walk would choose today (moves only ever relocate events
// into tiers that walk reaches first) and falls back to an exhaustive sweep
// for the not-found answer, which only ghosts and float-boundary edge cases
// reach.
//
// Duplicate full keys are permitted, as in SplayQueue; among equal keys any
// pop order is allowed.
//
// Rung geometry is ULP-aware: a rung's bucket width never drops below a few
// ULPs of its own start timestamp (min_width_at). An absolute floor is not
// enough — at ts ~3e4 the double ULP is ~3.6e-12, so a fixed 1e-12 floor
// let stacked rungs subdivide below the representable resolution, where the
// accumulated rounding of fl(start + width*cur) across parent rungs exceeds
// the +2-bucket coverage slack. Events then landed beyond a rung's nominal
// range and the filing clamp pushed them behind the consumed frontier:
// silently leaked when the rung was discarded, or popped out of key order —
// the root cause of the long-run Time Warp "cancellation race"
// (pe.pending.erase victim-missing asserts). Two hard invariants back the
// width rule up: filing into an exhausted rung reopens its last bucket
// instead of landing behind the frontier, and a rung is never discarded
// while it still holds events.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "des/event.hpp"
#include "util/macros.hpp"

namespace hp::des {

class LadderQueue {
 public:
  LadderQueue() = default;
  LadderQueue(const LadderQueue&) = delete;
  LadderQueue& operator=(const LadderQueue&) = delete;

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  void insert(Event* ev) {
    ++size_;
    const Time ts = ev->key.ts;
    // Strictly greater: the horizon timestamp itself descends the ladder.
    // An event at exactly top_start_ may share its timestamp with events
    // already staged in rungs/Bottom, and parking it in the unsorted Top
    // would let a larger tie-break pop before it.
    if (ts > top_start_) {
      if (top_.empty()) {
        top_min_ = top_max_ = ts;
      } else {
        top_min_ = std::min(top_min_, ts);
        top_max_ = std::max(top_max_, ts);
      }
      top_.push_back(ev);
      return;
    }
    for (Rung& r : rungs_) {
      std::size_t b = r.target(ts);
      if (b == Rung::kPastCoverage) {
        // ts is beyond the nominal range of a fully consumed rung (float
        // slop only — min_width_at makes this unreachable in practice). The
        // event is >= everything this rung ever held and < every unconsumed
        // event in coarser rungs, so reopening the last bucket is its only
        // order-correct home; filing behind the frontier would strand it.
        r.cur = r.buckets.size() - 1;
        b = r.cur;
      }
      if (b != Rung::kBeforeFrontier) {
        r.buckets[b].push_back(ev);
        ++r.count;
        return;
      }
    }
    // Precedes every rung's unconsumed range: the straggler path. Bottom is
    // kept sorted descending so the min stays at the back.
    const auto it = std::lower_bound(bottom_.begin(), bottom_.end(), ev,
                                     KeyGreater{});
    bottom_.insert(it, ev);
  }

  Event* peek_min() {
    ensure_bottom();
    return bottom_.empty() ? nullptr : bottom_.back();
  }

  Event* pop_min() {
    ensure_bottom();
    if (bottom_.empty()) return nullptr;
    Event* ev = bottom_.back();
    bottom_.pop_back();
    --size_;
    return ev;
  }

  // Remove a specific pending envelope. Returns false if absent.
  bool erase(Event* ev) {
    const Time ts = ev->key.ts;
    if (ts > top_start_) {  // mirrors the insert walk
      if (erase_from(top_, ev)) {
        --size_;
        return true;
      }
    } else {
      for (Rung& r : rungs_) {
        std::size_t bi = r.target(ts);
        if (bi == Rung::kPastCoverage) bi = r.buckets.size() - 1;
        if (bi != Rung::kBeforeFrontier) {
          if (erase_from(r.buckets[bi], ev)) {
            --r.count;
            --size_;
            return true;
          }
          break;
        }
      }
      const auto [lo, hi] = std::equal_range(bottom_.begin(), bottom_.end(),
                                             ev, KeyGreater{});
      for (auto it = lo; it != hi; ++it) {
        if (*it == ev) {
          bottom_.erase(it);
          --size_;
          return true;
        }
      }
    }
    // Slow exhaustive sweep: reached by ghost erases (absent events, answer
    // false) and rare boundary roundings where the targeted bucket guess
    // missed. Never on the annihilation fast path.
    for (Rung& r : rungs_) {
      for (std::vector<Event*>& b : r.buckets) {
        if (erase_from(b, ev)) {
          --r.count;
          --size_;
          return true;
        }
      }
    }
    if (erase_from(top_, ev)) {
      --size_;
      return true;
    }
    for (auto it = bottom_.begin(); it != bottom_.end(); ++it) {
      if (*it == ev) {
        bottom_.erase(it);
        --size_;
        return true;
      }
    }
    return false;
  }

  void clear() noexcept {
    top_.clear();
    rungs_.clear();
    bottom_.clear();
    size_ = 0;
    top_start_ = -std::numeric_limits<double>::infinity();
    top_min_ = top_max_ = 0.0;
  }

 private:
  // A bucket larger than this spawns a finer rung instead of sorting into
  // Bottom; each child rung subdivides one parent bucket into kChildBuckets.
  static constexpr std::size_t kSpawnThreshold = 48;
  static constexpr std::size_t kChildBuckets = 32;
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr double kMinWidth = 1e-12;
  // Bucket boundaries are fl(start + width*k); each stacked rung adds up to
  // half an ULP of rounding to its start, so kMaxRungs levels can drift the
  // finest geometry by ~4 ULPs. Keeping every width at >= 8 ULPs of its own
  // start makes the +2-bucket coverage slack (2 widths) dominate that drift,
  // so the filing walk can never land beyond a rung's range or behind its
  // frontier. kMinWidth remains the absolute floor near t = 0.
  static double min_width_at(double t) noexcept {
    const double mag = std::abs(t);
    const double ulp =
        std::nextafter(mag, std::numeric_limits<double>::infinity()) - mag;
    return std::max(kMinWidth, 8.0 * ulp);
  }

  struct KeyGreater {
    bool operator()(const Event* a, const Event* b) const noexcept {
      return b->key < a->key;
    }
  };

  struct Rung {
    static constexpr std::size_t kBeforeFrontier =
        static_cast<std::size_t>(-1);
    static constexpr std::size_t kPastCoverage = static_cast<std::size_t>(-2);

    double start = 0.0;  // timestamp of bucket 0's left edge
    double width = 1.0;
    std::size_t cur = 0;  // first unconsumed bucket
    std::size_t count = 0;
    std::vector<std::vector<Event*>> buckets;

    double cur_start() const noexcept {
      return start + width * static_cast<double>(cur);
    }
    // Bucket the filing walk (insert/erase) targets for ts, or
    // kBeforeFrontier when ts precedes the unconsumed range. This must use
    // the exact same float computation as idx() below: deciding the boundary
    // with `ts >= start + width*cur` instead can disagree with the
    // division's rounding when ts falls exactly on a bucket edge, filing
    // part of an equal-timestamp cohort into this rung after the rest was
    // already subdivided or drained below it — those tiers pop first, so a
    // smaller tie-break would surface after a larger one and break the
    // full-EventKey pop order the engines rely on.
    std::size_t target(Time ts) const noexcept {
      const double d = (ts - start) / width;
      if (d < static_cast<double>(cur)) return kBeforeFrontier;
      const std::size_t b =
          std::min(static_cast<std::size_t>(d), buckets.size() - 1);
      // Clamping below the frontier (only possible when the rung is fully
      // consumed and ts overshoots its range) must not file the event into
      // consumed territory — the caller reopens the last bucket instead.
      if (b < cur) return kPastCoverage;
      return b;
    }
    std::size_t idx(Time ts) const noexcept {
      const double d = (ts - start) / width;
      std::size_t i = d <= 0.0 ? 0 : static_cast<std::size_t>(d);
      return std::min(i, buckets.size() - 1);
    }
    void put(Event* ev, Time ts) {
      buckets[idx(ts)].push_back(ev);
      ++count;
    }
  };

  static bool erase_from(std::vector<Event*>& v, Event* ev) noexcept {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] == ev) {
        v[i] = v.back();
        v.pop_back();
        return true;
      }
    }
    return false;
  }

  // Refill Bottom from the finest rung (spawning finer rungs off oversized
  // buckets along the way), or from Top when the ladder is exhausted.
  void ensure_bottom() {
    while (bottom_.empty()) {
      if (rungs_.empty()) {
        if (top_.empty()) return;
        spawn_from_top();
        continue;
      }
      Rung& r = rungs_.back();
      while (r.cur < r.buckets.size() && r.buckets[r.cur].empty()) ++r.cur;
      if (r.cur >= r.buckets.size() || r.count == 0) {
        HP_ASSERT(r.count == 0,
                  "ladder rung discarded with %zu events stranded "
                  "(cur=%zu nb=%zu start=%.17g width=%.3g)",
                  r.count, r.cur, r.buckets.size(), r.start, r.width);
        rungs_.pop_back();
        continue;
      }
      std::vector<Event*>& b = r.buckets[r.cur];
      const double min_w = min_width_at(r.cur_start());
      if (b.size() > kSpawnThreshold && r.width > 2.0 * min_w &&
          rungs_.size() < kMaxRungs) {
        Rung child;
        child.start = r.cur_start();
        child.width = std::max(r.width / static_cast<double>(kChildBuckets),
                               min_w);
        const std::size_t nb = std::min<std::size_t>(
            kChildBuckets + 1,
            static_cast<std::size_t>(r.width / child.width) + 2);
        child.buckets.assign(nb, {});
        for (Event* ev : b) child.put(ev, ev->key.ts);
        r.count -= b.size();
        b.clear();
        ++r.cur;
        rungs_.push_back(std::move(child));  // invalidates r; loop re-derives
        continue;
      }
      r.count -= b.size();
      bottom_ = std::move(b);
      b.clear();
      ++r.cur;
      std::sort(bottom_.begin(), bottom_.end(), KeyGreater{});
    }
  }

  void spawn_from_top() {
    if (top_max_ <= top_min_) {
      // Degenerate span (all equal timestamps): nothing to subdivide — sort
      // straight into Bottom.
      bottom_ = std::move(top_);
      top_.clear();
      top_start_ = top_max_;
      std::sort(bottom_.begin(), bottom_.end(), KeyGreater{});
      return;
    }
    Rung r;
    r.start = top_min_;
    r.width = std::max((top_max_ - top_min_) /
                           static_cast<double>(std::max<std::size_t>(
                               top_.size(), 1)),
                       min_width_at(top_max_));
    const std::size_t nb = std::min<std::size_t>(
        top_.size() + 2,
        static_cast<std::size_t>((top_max_ - top_min_) / r.width) + 2);
    r.buckets.assign(std::max<std::size_t>(nb, 1), {});
    for (Event* ev : top_) r.put(ev, ev->key.ts);
    top_.clear();
    // New arrivals at or beyond the old maximum go back to Top; everything
    // below it now has a rung home.
    top_start_ = top_max_;
    rungs_.push_back(std::move(r));
  }

  std::vector<Event*> top_;
  double top_start_ = -std::numeric_limits<double>::infinity();
  double top_min_ = 0.0;
  double top_max_ = 0.0;
  std::vector<Rung> rungs_;  // coarse -> fine; back() is the active rung
  std::vector<Event*> bottom_;  // sorted descending; back() is the min
  std::size_t size_ = 0;
};

}  // namespace hp::des
