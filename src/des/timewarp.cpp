#include "des/timewarp.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>

#include "obs/telemetry.hpp"
#include "util/failure.hpp"
#include "util/hash.hpp"

namespace hp::des {

namespace {
// Fixed-mode idle threshold (adaptive_gvt = false), the historical default.
constexpr std::uint32_t kIdleItersBeforeGvt = 256;

// Adaptive pacing bounds. The effective per-PE interval floats in
// [kGvtMinInterval, cfg.gvt_interval_events]; the idle trigger starts at
// kIdleBackoffInit spins (fast termination / window advance) and doubles on
// consecutive fruitless idle rounds up to kIdleBackoffMax (no barrier storm
// while peers are busy).
constexpr std::uint32_t kGvtMinInterval = 32;
constexpr std::uint32_t kIdleBackoffInit = 64;
constexpr std::uint32_t kIdleBackoffMax = 8192;

// Commit-yield thresholds steering the effective interval: below kShrinkYield
// the optimism was mostly wasted (shrink => commit/throttle sooner), above
// kGrowYield the round was clean (stretch => fewer barriers). The shrink
// threshold is deliberately low: mid-range yields (0.3-0.5) are ordinary
// straggler churn that shorter rounds cannot fix — shrinking there only buys
// barrier overhead. Only a collapse below 1/4 signals runaway optimism.
constexpr double kShrinkYield = 0.25;
constexpr double kGrowYield = 0.9;

// Optimism flow-control tuning. The throttle window is
// throttle_scale * EMA(per-round GVT advance); the scale halves when the
// global rollback fraction over the last round exceeds kFlowWasteShrink (or
// kFlowWasteOwn when one of this PE's own KPs is the round's top offender —
// the PE most responsible throttles hardest) and doubles back on clean
// rounds below kFlowWasteGrow, clamped to [kFlowScaleMin, kFlowScaleMax]
// windows' worth of typical GVT progress.
constexpr double kFlowWasteShrink = 0.5;
constexpr double kFlowWasteOwn = 0.25;
constexpr double kFlowWasteGrow = 0.1;
constexpr double kFlowScaleMin = 0.25;
constexpr double kFlowScaleMax = 8.0;
constexpr double kFlowEmaAlpha = 0.25;

// Fault injection: reorder scratch flushes at this many buffered positives.
constexpr std::size_t kChaosReorderWindow = 8;

}

using obs::Counter;
using obs::Phase;

// Per-PE send context. A PE owns two instances: one for forward execution
// and one for reverse handlers during rollback, because a rollback can fire
// in the middle of a forward handler's send() (local straggler delivery to a
// KP that ran ahead) and must not clobber the forward context.
class TimeWarpEngine::TwCtx final : public Context {
 public:
  TwCtx(TimeWarpEngine& e, PeData& pe) : e_(e), pe_(pe) {}

  void begin_forward(Event* ev) {
    cur_ = ev;
    rng_ = &e_.rngs_[ev->key.dst_lp];
    send_seq_ = 0;
    reversing_ = false;
    ev->cv = 0;
  }

  void begin_reverse(Event* ev) {
    cur_ = ev;
    rng_ = &e_.rngs_[ev->key.dst_lp];
    send_seq_ = 0;
    reversing_ = true;
  }

 protected:
  Event* prepare_send_(std::uint32_t dst_lp, Time ts) override {
    HP_ASSERT(dst_lp < e_.cfg_.num_lps,
              "PE %u KP %u LP %u t=%.6f: send to out-of-range LP %u at ts=%.6f",
              pe_.id, cur_->kp, cur_->key.dst_lp, cur_->key.ts, dst_lp, ts);
    Event* ev = pe_.pool.allocate();
    ev->key = EventKey{ts, util::hash_combine(cur_->key.tie, send_seq_),
                       cur_->key.dst_lp, dst_lp, send_seq_};
    ev->uid = (static_cast<std::uint64_t>(pe_.id + 1) << 40) | ++pe_.uid_counter;
    ev->parent_uid = cur_->uid;
    ++send_seq_;
    ev->send_ts = cur_->key.ts;
    ev->kp = e_.lp_kp_[dst_lp];
    ev->status = EventStatus::Pending;
    ev->cv = 0;
    if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
    return ev;
  }

  // Word-wise content hash; only needed by lazy cancellation's exact-match
  // reuse, so aggressive mode never pays for it.
  static std::uint64_t payload_hash(const Event& ev) {
    std::uint64_t h = util::splitmix64(ev.payload_size);
    std::uint16_t i = 0;
    for (; i + 8 <= ev.payload_size; i += 8) {
      std::uint64_t w;
      std::memcpy(&w, ev.payload + i, 8);
      h = util::hash_combine(h, w);
    }
    if (i < ev.payload_size) {
      std::uint64_t w = 0;
      std::memcpy(&w, ev.payload + i,
                  static_cast<std::size_t>(ev.payload_size - i));
      h = util::hash_combine(h, w);
    }
    return h;
  }

  void commit_send_(Event* ev) override {
    const bool lazy =
        e_.cfg_.cancellation == EngineConfig::Cancellation::Lazy;
    const std::uint64_t ph = lazy ? payload_hash(*ev) : 0;
    if (lazy && cur_->has_stale_children()) {
      // Lazy cancellation: a bit-identical child from the rolled-back
      // execution is still alive — adopt it instead of resending.
      auto& stale = cur_->cold_block->stale_children;
      for (std::size_t i = 0; i < stale.size(); ++i) {
        if (stale[i].key == ev->key && stale[i].payload_hash == ph) {
          cur_->children.push_back(stale[i]);
          stale.erase(stale.begin() + static_cast<std::ptrdiff_t>(i));
          pe_.pool.free(ev);  // the fresh envelope was never published
          ++pe_.metrics.at(Counter::LazyReused);
          return;
        }
      }
    }
    const std::uint32_t dst_pe = e_.own_.pe_of_lp(ev->key.dst_lp);
    cur_->children.push_back(ChildRef{ev->key, ev->uid, ph, dst_pe});
    if (dst_pe == pe_.id) {
      // Local delivery may roll back a sibling KP that ran ahead; see the
      // header notes. Never touches the currently executing KP because the
      // child's key exceeds the current event's key.
      e_.deliver(pe_, ev);
    } else {
      e_.stage_remote(pe_, dst_pe, ev);
    }
  }

 private:
  TimeWarpEngine& e_;
  PeData& pe_;
};

// Init context: single-threaded, pre-run; routes root events straight into
// the owning PE's pending set.
class TwEngineInitCtx final : public InitContext {
 public:
  TwEngineInitCtx(TimeWarpEngine& e, std::uint64_t seed) : e_(e), seed_(seed) {}

  void begin_lp(std::uint32_t lp) {
    lp_ = lp;
    rng_ = &e_.rngs_[lp];
    idx_ = 0;
  }

 protected:
  Event* prepare_schedule_(std::uint32_t dst_lp, Time ts) override;
  void commit_schedule_(Event* ev) override;

 private:
  TimeWarpEngine& e_;
  std::uint64_t seed_;
  std::uint32_t idx_ = 0;
  std::uint64_t init_uid_ = 0;
};

TimeWarpEngine::TimeWarpEngine(Model& model, EngineConfig cfg)
    : model_(model),
      cfg_(cfg),
      bar_a_(static_cast<std::ptrdiff_t>(cfg.num_pes)),
      bar_b_(static_cast<std::ptrdiff_t>(cfg.num_pes)) {
  HP_ASSERT(cfg_.num_lps > 0, "num_lps must be positive");
  HP_ASSERT(cfg_.num_pes >= 1, "need at least one PE");
  if (cfg_.num_kps == 0) cfg_.num_kps = cfg_.num_pes;  // auto: one KP per PE
  HP_ASSERT(cfg_.num_kps >= cfg_.num_pes, "need at least one KP per PE");

  if (cfg_.mapping != nullptr) {
    mapping_ = cfg_.mapping;
    HP_ASSERT(mapping_->num_lps() == cfg_.num_lps &&
                  mapping_->num_kps() == cfg_.num_kps &&
                  mapping_->num_pes() == cfg_.num_pes,
              "mapping shape disagrees with engine config");
  } else {
    owned_mapping_ = std::make_unique<net::LinearMapping>(
        cfg_.num_lps, cfg_.num_kps, cfg_.num_pes);
    mapping_ = owned_mapping_.get();
  }

  states_.reserve(cfg_.num_lps);
  rngs_.reserve(cfg_.num_lps);
  lp_kp_.resize(cfg_.num_lps);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    states_.push_back(model_.make_state(lp));
    rngs_.emplace_back(util::hash_combine(cfg_.seed, lp));
    lp_kp_[lp] = mapping_->kp_of(lp);
    HP_ASSERT(lp_kp_[lp] < cfg_.num_kps, "mapping returned KP out of range");
  }

  kps_.resize(cfg_.num_kps);
  pes_.reserve(cfg_.num_pes);
  for (std::uint32_t pe = 0; pe < cfg_.num_pes; ++pe) {
    pes_.push_back(std::make_unique<PeData>());
    pes_.back()->id = pe;
    pes_.back()->pending.configure(cfg_.queue_kind);
    pes_.back()->out.resize(cfg_.num_pes);
    // Adaptive pacing starts at the ceiling and floats downward; the floor
    // never exceeds the configured interval (tiny intervals stay exact).
    pes_.back()->effective_gvt_interval = std::max(1u, cfg_.gvt_interval_events);
    pes_.back()->idle_backoff =
        cfg_.adaptive_gvt ? kIdleBackoffInit : kIdleItersBeforeGvt;
  }
  // The live ownership table starts as a copy of the mapping; KP migration
  // is the only thing that ever rewrites it.
  own_.reset(*mapping_);
  for (std::uint32_t kp = 0; kp < cfg_.num_kps; ++kp) {
    pes_[own_.pe_of_kp(kp)]->kps.push_back(kp);
  }

  for (std::uint32_t pe = 0; pe < cfg_.num_pes; ++pe) {
    fwd_ctx_.push_back(std::make_unique<TwCtx>(*this, *pes_[pe]));
    rev_ctx_.push_back(std::make_unique<TwCtx>(*this, *pes_[pe]));
  }
  local_min_.resize(cfg_.num_pes, kTimeInf);
}

TimeWarpEngine::~TimeWarpEngine() = default;

Event* TwEngineInitCtx::prepare_schedule_(std::uint32_t dst_lp, Time ts) {
  HP_ASSERT(dst_lp < e_.cfg_.num_lps, "schedule to out-of-range LP %u", dst_lp);
  // Root events are allocated from the destination PE's pool: pre-run is
  // single-threaded, so this is safe and keeps pool ownership tidy.
  TimeWarpEngine::PeData& pe = *e_.pes_[e_.own_.pe_of_lp(dst_lp)];
  Event* ev = pe.pool.allocate();
  const std::uint64_t root = util::hash_combine(seed_, lp_);
  ev->key = EventKey{ts, util::hash_combine(root, idx_), lp_, dst_lp, idx_};
  ev->uid = ++init_uid_;  // init space: high bits zero, disjoint from PE uids
  ++idx_;
  ev->send_ts = 0.0;
  ev->kp = e_.lp_kp_[dst_lp];
  ev->status = EventStatus::Pending;
  ev->cv = 0;
  if (HP_UNLIKELY(e_.telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
  return ev;
}

void TwEngineInitCtx::commit_schedule_(Event* ev) {
  TimeWarpEngine::PeData& pe = *e_.pes_[e_.own_.pe_of_lp(ev->key.dst_lp)];
  pe.pending.insert(ev);
  auto [it, ok] = pe.index.emplace(ev->uid, ev);
  HP_ASSERT(ok, "duplicate initial event uid");
  (void)it;
}

void TimeWarpEngine::seed_initial_events() {
  TwEngineInitCtx ictx(*this, cfg_.seed);
  for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
    ictx.begin_lp(lp);
    model_.init_lp(lp, ictx);
  }
}

void TimeWarpEngine::deliver(PeData& pe, Event* ev) {
  // Migration protocol invariant: handoffs only happen with every inbox
  // quiescent and all routing reads the live table, so an envelope can never
  // land at a PE that no longer owns its KP.
  HP_ASSERT(!mig_on_ || own_.pe_of_kp(ev->kp) == pe.id,
            "PE %u: delivered event for KP %u owned by PE %u", pe.id, ev->kp,
            own_.pe_of_kp(ev->kp));
  // Inbox dwell: stage_remote stamped send_wall_ns, so a non-zero stamp
  // means the envelope crossed PEs (local sends deliver directly with 0).
  if (HP_UNLIKELY(telemetry_) && ev->send_wall_ns != 0) {
    const std::uint64_t now = obs::monotonic_ns();
    if (now > ev->send_wall_ns) {
      hub_->ring(pe.id).try_push(obs::LatencyMetric::InboxDwell,
                                 now - ev->send_wall_ns);
    }
  }
  KpData& kp = kps_[ev->kp];
  if (!kp.processed.empty() && ev->key < kp.processed.back()->key) {
    // Primary rollback: a straggler positive behind the KP's frontier. The
    // offender is the sending LP's KP/PE; cascade_ctx is always 0 here
    // (reverse handlers cannot send, so deliver never runs mid-rollback),
    // making this the head of a fresh cascade chain.
    const std::uint32_t src = ev->key.src_lp;
    rollback(pe, ev->kp, ev->key,
             obs::RollbackCause{obs::RollbackKind::Primary, lp_kp_[src],
                                own_.pe_of_lp(src), pe.cascade_ctx + 1,
                                ev->send_wall_ns});
  }
  ev->status = EventStatus::Pending;
  pe.pending.insert(ev);
  auto [it, ok] = pe.index.emplace(ev->uid, ev);
  HP_ASSERT(ok,
            "PE %u KP %u LP %u t=%.6f: duplicate event uid %llu delivered",
            pe.id, ev->kp, ev->key.dst_lp, ev->key.ts,
            static_cast<unsigned long long>(ev->uid));
  (void)it;
}

void TimeWarpEngine::stage_remote(PeData& pe, std::uint32_t dst_pe,
                                  Event* ev) {
  if (trace_stamps_ || HP_UNLIKELY(telemetry_)) {
    ev->send_wall_ns = obs::monotonic_ns();
  }
  if (HP_UNLIKELY(epoch_mode_)) {
    // Transient-message accounting: tag with the sender's current epoch and
    // record the send in this epoch's running count/minimum (published into
    // the EpochSlot at the next cut). Antis are counted too — conservative
    // (an anti's key is its victim's, never below the sender's frontier) and
    // required, since the receiver cannot tell tokens from positives when it
    // credits the receive counter at pop time. Low 2 bits suffice at the
    // receiver (epoch spread <= 1), so the u32 truncation is harmless.
    ev->epoch = static_cast<std::uint32_t>(pe.local_epoch);
    ++pe.cur_epoch_sent;
    pe.cur_epoch_sendmin = std::min(pe.cur_epoch_sendmin, ev->key.ts);
  }
  OutBatch& b = pe.out[dst_pe];
  ev->mpsc_next.store(nullptr, std::memory_order_relaxed);
  if (b.head == nullptr) {
    b.head = b.tail = ev;
    pe.out_dirty.push_back(dst_pe);
  } else {
    // Interior chain link; published by flush_outboxes' release push.
    b.tail->mpsc_next.store(ev, std::memory_order_relaxed);
    b.tail = ev;
  }
  ++b.count;
}

void TimeWarpEngine::flush_outboxes(PeData& pe) {
  if (pe.out_dirty.empty()) return;
  for (std::uint32_t dst : pe.out_dirty) {
    OutBatch& b = pe.out[dst];
    pes_[dst]->inbox.push_chain(b.head, b.tail);
    ++pe.metrics.at(Counter::InboxBatches);
    pe.metrics.at(Counter::InboxBatchedItems) += b.count;
    pe.metrics.at(Counter::MaxInboxBatch) =
        std::max<std::uint64_t>(pe.metrics.at(Counter::MaxInboxBatch), b.count);
    b = OutBatch{};
  }
  pe.out_dirty.clear();
}

// Remote cancellation: an anti token is an envelope with is_anti set whose
// (uid, key) name the victim. It rides the same per-destination chain as
// positives, so per-producer FIFO keeps every positive ahead of its anti.
void TimeWarpEngine::send_anti(PeData& pe, const ChildRef& c,
                               std::uint32_t dst_pe) {
  Event* anti = pe.pool.allocate();
  anti->is_anti = true;
  anti->uid = c.uid;
  anti->key = c.key;
  // Carry the sending episode's cascade chain length so the induced rollback
  // (if any) extends the chain; 0 outside a rollback (lazy stale
  // cancellation from forward execution restarts the chain).
  anti->cascade = pe.cascade_ctx;
  stage_remote(pe, dst_pe, anti);
  ++pe.metrics.at(Counter::AntiMessages);
}

void TimeWarpEngine::annihilate(PeData& pe, std::uint64_t uid,
                                std::uint32_t offender_kp,
                                std::uint32_t offender_pe,
                                std::uint64_t send_wall_ns) {
  auto it = pe.index.find(uid);
  // FIFO inboxes guarantee a positive always precedes its anti; see header.
  // (Chaos runs route through chaos_deliver_anti, which pre-checks the index
  // and the holdback buffer, so this stays a hard invariant even then.)
  HP_ASSERT(it != pe.index.end(),
            "PE %u: anti-message uid %llu (offender KP %u PE %u) found no "
            "matching positive",
            pe.id, static_cast<unsigned long long>(uid), offender_kp,
            offender_pe);
  Event* ev = it->second;
  if (ev->status == EventStatus::Processed) {
    // Secondary rollback: induced by a cancellation, one chain link deeper
    // than the episode that sent it (cascade_ctx holds the inducing depth —
    // set from the anti token for remote cancellations, live for local ones).
    rollback(pe, ev->kp, ev->key,
             obs::RollbackCause{obs::RollbackKind::Secondary, offender_kp,
                                offender_pe, pe.cascade_ctx + 1,
                                send_wall_ns});
    HP_ASSERT(ev->status == EventStatus::Pending,
              "PE %u KP %u LP %u t=%.6f: rollback left event uid %llu "
              "processed",
              pe.id, ev->kp, ev->key.dst_lp, ev->key.ts,
              static_cast<unsigned long long>(ev->uid));
  }
  // A pending event killed before re-execution drags its lazily-kept
  // children down with it.
  if (ev->has_stale_children()) cancel_stale(pe, ev);
  HP_ASSERT(pe.pending.erase(ev),
            "PE %u KP %u LP %u t=%.6f: event uid %llu missing from pending "
            "set",
            pe.id, ev->kp, ev->key.dst_lp, ev->key.ts,
            static_cast<unsigned long long>(ev->uid));
  pe.index.erase(it);
  pe.pool.free(ev);
}

// Cancellation routes through the live ownership table, not the ChildRef's
// send-time dst_pe snapshot: a KP migration between the send and the
// cancellation re-homes the victim, and the handoff's full quiescence
// guarantees the positive is settled at the current owner before any
// post-handoff anti can chase it there.
void TimeWarpEngine::cancel_stale(PeData& pe, Event* ev) {
  if (!ev->has_stale_children()) return;
  auto& stale = ev->cold_block->stale_children;
  cancel_refs(pe, stale.data(), stale.size(), ev->kp);
  stale.clear();
}

void TimeWarpEngine::cancel_children(PeData& pe, Event* ev) {
  cancel_refs(pe, ev->children.begin(), ev->children.size(), ev->kp);
  ev->children.clear();
}

// Batched cancellation of one dying parent's child list. Remote children get
// anti tokens (the per-destination outbox already batches those); local
// victims are collected first and any induced secondary rollbacks are
// applied as ONE processed-list run per distinct KP, to the earliest victim
// key, instead of one full re-traversal per victim — the repeated-re-roll
// pattern the PR-3 cascade forensics flagged.
//
// Safe to batch because every event has exactly one parent, so only this
// call can annihilate these victims (a nested cascade fired by the batched
// rollback cancels *other* parents' children), and per-LP state is disjoint
// across KPs, so the order of the per-KP runs is unobservable. Episode
// *counts* change (one secondary episode per KP rather than per victim);
// the total of undone events and all committed results do not.
void TimeWarpEngine::cancel_refs(PeData& pe, const ChildRef* refs,
                                 std::size_t n, std::uint32_t offender_kp) {
  util::SmallVec<Event*, 8> victims;
  for (std::size_t i = 0; i < n; ++i) {
    const ChildRef& c = refs[i];
    const std::uint32_t dst = own_.pe_of_lp(c.key.dst_lp);
    if (dst != pe.id) {
      send_anti(pe, c, dst);
      continue;
    }
    const auto it = pe.index.find(c.uid);
    if (HP_UNLIKELY(chaos_) && it == pe.index.end()) {
      // Chaos x migration: the victim was delay-parked at a previous owner
      // and migrated here inside the holdback buffer, never delivered.
      HP_ASSERT(chaos_kill_held(pe, c.uid),
                "PE %u: local cancellation uid %llu found no positive",
                pe.id, static_cast<unsigned long long>(c.uid));
      continue;
    }
    // FIFO inboxes guarantee a positive always precedes its anti; locally
    // the parent's send happened before this cancellation.
    HP_ASSERT(it != pe.index.end(),
              "PE %u: local cancellation uid %llu found no positive", pe.id,
              static_cast<unsigned long long>(c.uid));
    victims.push_back(it->second);
  }
  if (victims.empty()) return;

  // One rollback per distinct victim KP, to the earliest processed victim.
  struct KpRun {
    std::uint32_t kp;
    EventKey key;
  };
  util::SmallVec<KpRun, 8> runs;
  for (Event* v : victims) {
    if (v->status != EventStatus::Processed) continue;
    bool merged = false;
    for (auto& r : runs) {
      if (r.kp == v->kp) {
        if (v->key < r.key) r.key = v->key;
        merged = true;
        break;
      }
    }
    if (!merged) runs.push_back(KpRun{v->kp, v->key});
  }
  for (const KpRun& r : runs) {
    rollback(pe, r.kp, r.key,
             obs::RollbackCause{obs::RollbackKind::Secondary, offender_kp,
                                pe.id, pe.cascade_ctx + 1, 0});
  }

  // Settle: every victim is pending now; a victim killed before
  // re-execution drags its lazily-kept children down with it.
  for (Event* v : victims) {
    HP_ASSERT(v->status == EventStatus::Pending,
              "PE %u KP %u LP %u t=%.6f: batched rollback left victim uid "
              "%llu processed",
              pe.id, v->kp, v->key.dst_lp, v->key.ts,
              static_cast<unsigned long long>(v->uid));
    if (v->has_stale_children()) cancel_stale(pe, v);
    HP_ASSERT(pe.pending.erase(v),
              "PE %u KP %u LP %u t=%.6f: victim uid %llu missing from "
              "pending set",
              pe.id, v->kp, v->key.dst_lp, v->key.ts,
              static_cast<unsigned long long>(v->uid));
    pe.index.erase(v->uid);
    pe.pool.free(v);
  }
}

void TimeWarpEngine::undo_event(PeData& pe, Event* ev) {
  const std::uint32_t lp = ev->key.dst_lp;
  if (cfg_.state_saving) {
    HP_ASSERT(ev->cold_block != nullptr && ev->cold_block->snapshot != nullptr,
              "missing snapshot in state-saving mode");
    EventCold& cold = *ev->cold_block;
    states_[lp] = std::move(cold.snapshot);
    std::memcpy(ev->payload, cold.payload_snapshot.get(), kMaxPayload);
    rngs_[lp].restore(cold.saved_rng_state, cold.saved_rng_draws);
  } else {
    TwCtx& ctx = *rev_ctx_[pe.id];
    ctx.begin_reverse(ev);
    model_.reverse(*states_[lp], *ev, ctx);
    HP_ASSERT(rngs_[lp].draw_count() == ev->rng_before,
              "reverse handler rewound %llu draws short/extra at lp %u "
              "(before=%llu now=%llu)",
              static_cast<unsigned long long>(
                  rngs_[lp].draw_count() > ev->rng_before
                      ? rngs_[lp].draw_count() - ev->rng_before
                      : ev->rng_before - rngs_[lp].draw_count()),
              lp, static_cast<unsigned long long>(ev->rng_before),
              static_cast<unsigned long long>(rngs_[lp].draw_count()));
#ifdef HP_TW_PARANOID
    HP_ASSERT(ev->cold_block != nullptr && ev->cold_block->snapshot &&
                  states_[lp]->equals(*ev->cold_block->snapshot),
              "reverse handler did not restore lp %u state exactly", lp);
    ev->cold_block->snapshot.reset();
#endif
  }
}

void TimeWarpEngine::rollback(PeData& pe, std::uint32_t kp_id,
                              const EventKey& key,
                              const obs::RollbackCause& cause) {
  // A rollback can fire from inside any phase (forward send, inbox drain);
  // charge its time to Rollback and restore the interrupted phase after.
  obs::PhaseScope phase(pe.probe, Phase::Rollback);
  KpData& kp = kps_[kp_id];
  // Episodes nest (cancel_children -> annihilate -> rollback): while this
  // episode undoes events, antis it sends — and local rollbacks it triggers —
  // are chain links of *this* cascade. Save/restore the ambient context.
  const std::uint32_t prev_ctx = pe.cascade_ctx;
  pe.cascade_ctx = cause.cascade;
  std::uint64_t undone = 0;
  std::uint64_t repair_t0 = 0;
  if (HP_UNLIKELY(telemetry_)) repair_t0 = obs::monotonic_ns();
  while (!kp.processed.empty() && kp.processed.back()->key >= key) {
    Event* ev = kp.processed.back();
    kp.processed.pop_back();
    if (cfg_.cancellation == EngineConfig::Cancellation::Lazy) {
      // Keep the children alive; re-execution may reuse them verbatim.
      // Earlier stale leftovers (possible when the event was rolled back,
      // partially re-executed via reuse, and is rolled back again) are
      // already in stale_children; append the current generation.
      auto& stale = ev->cold().stale_children;
      for (const ChildRef& c : ev->children) stale.push_back(c);
      ev->children.clear();
    } else {
      cancel_children(pe, ev);
    }
    undo_event(pe, ev);
    ev->status = EventStatus::Pending;
    pe.pending.insert(ev);
    ++undone;
  }
  pe.cascade_ctx = prev_ctx;
  if (HP_UNLIKELY(telemetry_) && undone > 0) {
    // Per-episode repair cost: undo loop plus the cancellations it fired
    // (nested episodes double-count their share by design — the histogram
    // answers "how long does a rollback I land in take", not CPU totals).
    hub_->ring(pe.id).try_push(obs::LatencyMetric::RollbackCost,
                               obs::monotonic_ns() - repair_t0);
  }

  // Causality attribution: scalar counters are plain arithmetic and always
  // on; the per-KP heatmaps/cascade histogram are gated inside `forensics`;
  // the flow event fires only when the offending send was stamped (tracing +
  // forensics), so attribution fully off never reads the clock here.
  pe.metrics.at(Counter::RolledBack) += undone;
  const bool primary = cause.kind == obs::RollbackKind::Primary;
  ++pe.metrics.at(primary ? Counter::PrimaryRollbacks
                          : Counter::SecondaryRollbacks);
  pe.metrics.at(primary ? Counter::PrimaryRollbackEvents
                        : Counter::SecondaryRollbackEvents) += undone;
  std::uint64_t& depth = pe.metrics.at(Counter::MaxRollbackDepth);
  depth = std::max(depth, undone);
  std::uint64_t& chain = pe.metrics.at(Counter::MaxCascadeDepth);
  chain = std::max<std::uint64_t>(chain, cause.cascade);
  pe.forensics.record(cause, kp_id, undone);
  if (cause.send_wall_ns != 0) {
    const std::uint64_t flow_id =
        (static_cast<std::uint64_t>(pe.id + 1) << 40) | ++pe.flow_counter;
    pe.trace.add_flow(obs::TraceFlow{primary, flow_id, cause.offender_pe,
                                     cause.send_wall_ns, pe.id,
                                     obs::monotonic_ns()});
  }
}

void TimeWarpEngine::drain_inbox(PeData& pe) {
  if (pe.inbox.empty_hint()) return;
  if (HP_UNLIKELY(chaos_)) {
    drain_inbox_chaos(pe);
    return;
  }
  while (Event* ev = pe.inbox.pop()) {
    if (HP_UNLIKELY(epoch_mode_)) {
      // Credit the sender's epoch at the moment the envelope leaves the
      // channel — before any annihilation/delivery side effects — so every
      // send staged under tag e is eventually matched and epoch e can close.
      ep_slots_[pe.id].recvd[ev->epoch & 3].fetch_add(
          1, std::memory_order_relaxed);
    }
    if (ev->is_anti) {
      const std::uint64_t uid = ev->uid;
      // The anti's key is the victim child's key, so key.src_lp is the LP of
      // the parent whose rollback sent the cancellation — the offender.
      const std::uint32_t src = ev->key.src_lp;
      const std::uint32_t inducing_cascade = ev->cascade;
      const std::uint64_t send_wall_ns = ev->send_wall_ns;
      pe.pool.free(ev);
      pe.cascade_ctx = inducing_cascade;
      annihilate(pe, uid, lp_kp_[src], own_.pe_of_lp(src), send_wall_ns);
      pe.cascade_ctx = 0;
    } else {
      deliver(pe, ev);
    }
  }
}

// Fault-injected drain. Invariants preserved no matter what the plan does:
//   * a positive is always consumed (delivered or parked) before its anti is
//     acted on — antis flush the reorder buffer and check the holdback, and
//     per-producer FIFO already orders the raw pops;
//   * parked envelopes keep feeding the GVT minimum (gvt_round walks
//     chaos_held), so nothing can commit past a held event;
//   * only delivery *timing* changes — event content and the model RNG
//     streams are untouched, so committed results stay bit-identical.
void TimeWarpEngine::drain_inbox_chaos(PeData& pe) {
  const FaultPlan& f = cfg_.fault;
  const Time gvt = shared_gvt_.load(std::memory_order_relaxed);
  while (Event* ev = pe.inbox.pop()) {
    if (HP_UNLIKELY(epoch_mode_)) {
      // Same pop-time credit as the fault-free drain. Envelopes the plan
      // parks afterwards are already counted — correct, because a held
      // envelope is out of the channel and bounds GVT through the holdback
      // walk at the next cut instead. Dup-anti copies below are minted
      // locally (never staged), so they never touch either counter.
      ep_slots_[pe.id].recvd[ev->epoch & 3].fetch_add(
          1, std::memory_order_relaxed);
    }
    if (ev->is_anti) {
      // Antis never pass their positives: deliver buffered positives first.
      chaos_flush_run(pe);
      if (HP_UNLIKELY(chaos_hit(f.dup_anti_prob, ev->uid))) {
        // Park a copy one round; the duplicate must annihilate nothing when
        // it lands (its positive dies to the original right below).
        Event* dup = pe.pool.allocate();
        dup->key = ev->key;
        dup->uid = ev->uid;
        dup->is_anti = true;
        dup->cascade = ev->cascade;
        dup->send_wall_ns = 0;
        pe.chaos_held.push_back({dup, pe.local_rounds + 1});
        ++pe.metrics.at(Counter::ChaosDupAntis);
      }
      chaos_deliver_anti(pe, ev);
      continue;
    }
    if (HP_UNLIKELY(chaos_hit(f.delay_prob, ev->uid))) {
      pe.chaos_held.push_back({ev, pe.local_rounds + f.delay_rounds});
      ++pe.metrics.at(Counter::ChaosDelayedEvents);
      continue;
    }
    if (f.straggler_prob > 0.0 && ev->key.ts <= gvt + f.straggler_margin &&
        chaos_hit(f.straggler_prob,
                  util::hash_combine(ev->uid, 0x57A6u))) {
      // Near-horizon positive: hold it one round so it lands as a straggler
      // right behind the frontier the receiving KP built meanwhile.
      pe.chaos_held.push_back({ev, pe.local_rounds + 1});
      ++pe.metrics.at(Counter::ChaosStragglers);
      continue;
    }
    if (f.reorder_prob > 0.0) {
      pe.chaos_run.push_back(ev);
      if (pe.chaos_run.size() >= kChaosReorderWindow) {
        chaos_flush_run(pe);
        // Batch-split: sometimes abandon the drain mid-stream; the rest of
        // the inbox waits for the next scheduler iteration.
        if (pe.chaos_rng.bernoulli(f.reorder_prob * 0.5)) break;
      }
    } else {
      deliver(pe, ev);
    }
  }
  chaos_flush_run(pe);
}

void TimeWarpEngine::chaos_flush_run(PeData& pe) {
  auto& run = pe.chaos_run;
  if (run.empty()) return;
  if (run.size() > 1 && pe.chaos_rng.bernoulli(cfg_.fault.reorder_prob)) {
    pe.metrics.at(Counter::ChaosReorderedEvents) += run.size();
    for (std::size_t i = run.size(); i-- > 0;) deliver(pe, run[i]);
  } else {
    for (Event* ev : run) deliver(pe, ev);
  }
  run.clear();
}

void TimeWarpEngine::chaos_deliver_anti(PeData& pe, Event* anti) {
  const std::uint64_t uid = anti->uid;
  const std::uint32_t src = anti->key.src_lp;
  const std::uint32_t inducing_cascade = anti->cascade;
  const std::uint64_t send_wall_ns = anti->send_wall_ns;
  pe.pool.free(anti);
  if (pe.index.find(uid) != pe.index.end()) {
    pe.cascade_ctx = inducing_cascade;
    annihilate(pe, uid, lp_kp_[src], own_.pe_of_lp(src), send_wall_ns);
    pe.cascade_ctx = 0;
    return;
  }
  // The positive may be parked by a delay/straggler fault: annihilate the
  // pair inside the holdback buffer, before the positive was ever delivered.
  if (chaos_kill_held(pe, uid)) return;
  // No positive anywhere: a dup-anti duplicate arriving after the original
  // did the kill. Legal only under chaos — the fault-free path still
  // hard-asserts inside annihilate().
  ++pe.metrics.at(Counter::ChaosStaleAntis);
}

bool TimeWarpEngine::chaos_kill_held(PeData& pe, std::uint64_t uid) {
  for (std::size_t i = 0; i < pe.chaos_held.size(); ++i) {
    Event* held = pe.chaos_held[i].ev;
    if (!held->is_anti && held->uid == uid) {
      pe.pool.free(held);
      pe.chaos_held.erase(pe.chaos_held.begin() +
                          static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void TimeWarpEngine::chaos_release(PeData& pe, bool all) {
  if (all) {
    // Run over: GVT passed end_time, and held envelopes bounded it from
    // below, so everything still parked is beyond the end time and would
    // never execute. Free without delivering.
    for (const PeData::HeldEnvelope& h : pe.chaos_held) pe.pool.free(h.ev);
    pe.chaos_held.clear();
    return;
  }
  // Deliver due envelopes one at a time, removing each from the buffer only
  // at the moment it is delivered. Batching the due set into a side list
  // would hide it from chaos_kill_held — and a delivery here can trigger a
  // rollback whose (local, post-migration) cancellations must be able to
  // find and kill a due-but-undelivered positive. Each delivery may erase
  // arbitrary entries (annihilate-in-holdback), so restart the scan after
  // every one; the earliest remaining due envelope always goes next, which
  // preserves the pre-existing in-order release semantics.
  for (std::size_t i = 0; i < pe.chaos_held.size();) {
    if (pe.chaos_held[i].release_round > pe.local_rounds) {
      ++i;
      continue;
    }
    Event* ev = pe.chaos_held[i].ev;
    pe.chaos_held.erase(pe.chaos_held.begin() + static_cast<std::ptrdiff_t>(i));
    if (ev->is_anti) {
      chaos_deliver_anti(pe, ev);
    } else {
      deliver(pe, ev);
    }
    i = 0;
  }
}

// Same restart-the-scan discipline as chaos_release: a delivery can trigger
// cancellations that erase arbitrary holdback entries, so take one envelope
// off the front at a time until the buffer is empty.
void TimeWarpEngine::chaos_deliver_all_held(PeData& pe) {
  while (!pe.chaos_held.empty()) {
    Event* ev = pe.chaos_held.front().ev;
    pe.chaos_held.erase(pe.chaos_held.begin());
    if (ev->is_anti) {
      chaos_deliver_anti(pe, ev);
    } else {
      deliver(pe, ev);
    }
  }
}

bool TimeWarpEngine::stall_active(const PeData& pe) const noexcept {
  const FaultPlan& f = cfg_.fault;
  return f.stall_pe == pe.id && f.stall_rounds > 0 &&
         pe.local_rounds >= f.stall_at &&
         pe.local_rounds < f.stall_at + f.stall_rounds;
}

bool TimeWarpEngine::chaos_hit(double prob, std::uint64_t uid) const noexcept {
  if (prob <= 0.0) return false;
  const std::uint64_t h =
      util::splitmix64(util::hash_combine(cfg_.fault.seed, uid));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < prob;
}

Event* TimeWarpEngine::next_event(PeData& pe) {
  if (HP_UNLIKELY(chaos_) && stall_active(pe)) {
    wd_beacons_[pe.id].set_phase(BeaconPhase::Stalled);
    return nullptr;
  }
  Event* ev = pe.pending.peek_min();
  if (ev == nullptr) return nullptr;
  if (ev->key.ts > cfg_.end_time) return nullptr;
  Time window = cfg_.optimism_window;
  if (HP_UNLIKELY(flow_on_)) {
    // Throttled: cap forward progress to gvt + the adaptive window.
    // Blocked: window zero — only events at or below GVT execute, which
    // stops every new optimistic send while still guaranteeing progress
    // (the PE owning the global minimum can always run it). Both only
    // *delay* execution, so committed results are unchanged.
    if (pe.flow_state == PeData::FlowState::Blocked) {
      window = 0.0;
    } else if (pe.flow_state == PeData::FlowState::Throttled) {
      window = std::min(window, pe.throttle_window);
    }
  }
  if (window < kTimeInf &&
      ev->key.ts > shared_gvt_.load(std::memory_order_relaxed) + window) {
    return nullptr;  // beyond the moving window; wait for GVT to advance
  }
  return pe.pending.pop_min();
}

void TimeWarpEngine::update_flow_control(PeData& pe) {
  const std::int64_t live = pe.pool.live();
  switch (pe.flow_state) {
    case PeData::FlowState::Open:
      if (HP_LIKELY(live < pool_soft_)) return;
      pe.flow_state = PeData::FlowState::Throttled;
      ++pe.metrics.at(Counter::ThrottleEntries);
      pe.throttle_window = pe.throttle_scale * pe.gvt_delta_ema;
      if (tracing_) pe.throttle_begin_ns = obs::monotonic_ns();
      break;
    case PeData::FlowState::Throttled:
      if (HP_UNLIKELY(live >= pool_hard_)) {
        pe.flow_state = PeData::FlowState::Blocked;
        wd_beacons_[pe.id].set_phase(BeaconPhase::Blocked);
        ++pe.metrics.at(Counter::HardBlocks);
        // Only fossil collection sheds live envelopes, so force a GVT round
        // now instead of waiting for a progress/idle trigger. The same flag
        // drives both algorithms: in barrier mode every PE parks in the next
        // gvt_round; in epoch mode every PE cuts over at its next pump and
        // the resulting close runs fossil — a blocked PE keeps pumping (it
        // never parks), so the forced close cannot deadlock against it.
        if (!gvt_request_.exchange(true, std::memory_order_relaxed)) {
          ++pe.metrics.at(Counter::GvtPoolTriggers);
        }
      } else if (live < pool_soft_exit_) {
        // Hysteresis: exit well below the entry mark so the state does not
        // flap around the watermark.
        pe.flow_state = PeData::FlowState::Open;
        ++pe.metrics.at(Counter::ThrottleExits);
        close_throttle_span(pe);
      }
      break;
    case PeData::FlowState::Blocked:
      if (live < pool_hard_) {
        pe.flow_state = PeData::FlowState::Throttled;
        wd_beacons_[pe.id].set_phase(BeaconPhase::Execute);
      }
      break;
  }
}

void TimeWarpEngine::update_flow_window(PeData& pe, Time gvt) {
  // EMA of per-round GVT advance: the natural unit the throttle window
  // scales (a window of S means "S rounds' worth of typical progress").
  if (gvt < kTimeInf) {
    const double delta = std::max(0.0, gvt - pe.flow_last_gvt);
    pe.gvt_delta_ema = pe.gvt_delta_ema == 0.0
                           ? delta
                           : (1.0 - kFlowEmaAlpha) * pe.gvt_delta_ema +
                                 kFlowEmaAlpha * delta;
    pe.flow_last_gvt = gvt;
  }
  // Global efficiency + offender-pressure signal from the round slices
  // (every PE published between barriers A and B; reading here, after
  // barrier B, races with nothing — see the MonitorSlice comment).
  std::uint64_t processed = 0;
  std::uint64_t rolled = 0;
  std::uint64_t top_events = 0;
  std::uint32_t top_kp = 0;
  bool has_top = false;
  for (const MonitorSlice& sl : mon_slices_) {
    processed += sl.processed;
    rolled += sl.rolled_back;
    if (sl.has_top && sl.top_kp_events > top_events) {
      has_top = true;
      top_kp = sl.top_kp;
      top_events = sl.top_kp_events;
    }
  }
  const std::uint64_t dproc = processed - pe.flow_prev_processed;
  const std::uint64_t drb = rolled - pe.flow_prev_rolled_back;
  pe.flow_prev_processed = processed;
  pe.flow_prev_rolled_back = rolled;
  const double waste =
      dproc > 0 ? static_cast<double>(drb) / static_cast<double>(dproc) : 0.0;
  const bool own_pressure = has_top && own_.pe_of_kp(top_kp) == pe.id;
  if (waste > kFlowWasteShrink || (own_pressure && waste > kFlowWasteOwn)) {
    pe.throttle_scale = std::max(kFlowScaleMin, pe.throttle_scale * 0.5);
  } else if (waste < kFlowWasteGrow) {
    pe.throttle_scale = std::min(kFlowScaleMax, pe.throttle_scale * 2.0);
  }
  pe.throttle_window = pe.throttle_scale * pe.gvt_delta_ema;
}

void TimeWarpEngine::close_throttle_span(PeData& pe) {
  if (pe.throttle_begin_ns != 0) {
    pe.trace.add(Phase::Throttled, pe.throttle_begin_ns, obs::monotonic_ns());
    pe.throttle_begin_ns = 0;
  }
}

void TimeWarpEngine::process_one(PeData& pe, Event* ev) {
  const std::uint32_t lp = ev->key.dst_lp;
  HP_ASSERT(kps_[ev->kp].processed.empty() ||
                !(ev->key < kps_[ev->kp].processed.back()->key),
            "PE %u KP %u LP %u t=%.6f: processed deque would become unsorted "
            "(frontier t=%.6f)",
            pe.id, ev->kp, lp, ev->key.ts,
            kps_[ev->kp].processed.empty()
                ? 0.0
                : kps_[ev->kp].processed.back()->key.ts);
  ev->rng_before = rngs_[lp].draw_count();
  ev->status = EventStatus::Processed;
  if (HP_UNLIKELY(telemetry_)) {
    // Queue dwell is measured from creation, so a rolled-back event's
    // re-execution reports its full (longer) wait — a real resample.
    const std::uint64_t now = obs::monotonic_ns();
    if (ev->create_wall_ns != 0) {
      hub_->ring(pe.id).try_push(obs::LatencyMetric::QueueDwell,
                                 now - ev->create_wall_ns);
    }
    ev->exec_wall_ns = now;
  }
  kps_[ev->kp].processed.push_back(ev);
#ifdef HP_TW_PARANOID
  if (!cfg_.state_saving) ev->cold().snapshot = states_[lp]->clone();
#endif
  if (cfg_.state_saving) {
    EventCold& cold = ev->cold();
    cold.snapshot = states_[lp]->clone();
    if (!cold.payload_snapshot) {
      cold.payload_snapshot = std::make_unique<std::byte[]>(kMaxPayload);
    }
    std::memcpy(cold.payload_snapshot.get(), ev->payload, kMaxPayload);
    cold.saved_rng_state = rngs_[lp].raw_state();
    cold.saved_rng_draws = rngs_[lp].draw_count();
  }
  TwCtx& ctx = *fwd_ctx_[pe.id];
  ctx.begin_forward(ev);
  model_.forward(*states_[lp], *ev, ctx);
  // Lazy cancellation: stale children the re-execution did not reproduce
  // are dead for real now.
  if (ev->has_stale_children()) cancel_stale(pe, ev);
  ++pe.metrics.at(Counter::Processed);
  ++pe.processed_since_gvt;
  // Candidate heat for the migration planner: per-KP forward executions
  // since the last decision round (each element touched only by the owner).
  if (HP_UNLIKELY(mig_on_)) ++kp_processed_[ev->kp];
}

void TimeWarpEngine::fossil_collect(PeData& pe, Time gvt) {
  // One clock read per fossil batch: commits inside a batch share `now`, so
  // telemetry adds O(1) clock cost per GVT round, not per committed event.
  std::uint64_t now = 0;
  for (std::uint32_t kp_id : pe.kps) {
    auto& dq = kps_[kp_id].processed;
    while (!dq.empty() && dq.front()->key.ts < gvt) {
      Event* ev = dq.front();
      dq.pop_front();
      model_.commit(*states_[ev->key.dst_lp], *ev);
      if (HP_UNLIKELY(telemetry_) && ev->exec_wall_ns != 0) {
        if (now == 0) now = obs::monotonic_ns();
        if (now > ev->exec_wall_ns) {
          hub_->ring(pe.id).try_push(obs::LatencyMetric::CommitLatency,
                                     now - ev->exec_wall_ns);
        }
      }
      pe.index.erase(ev->uid);
      pe.pool.free(ev);
      ++pe.metrics.at(Counter::Committed);
    }
  }
}

// Fill this PE's MonitorSlice. Shared by both GVT algorithms; the modes
// differ only in when the writes are safe — between barriers A and B in
// barrier mode, at an epoch cut in epoch mode (where the close-serialization
// ack gate keeps the slice stable until every close-side reader is done).
// Epoch cuts pass inbox_depth 0: there is no quiescent point to walk the
// inbox non-destructively, so the depth is simply not observed there.
void TimeWarpEngine::publish_slice(PeData& pe, std::uint64_t inbox_depth) {
  MonitorSlice& sl = mon_slices_[pe.id];
  sl.processed = pe.metrics.at(Counter::Processed);
  sl.rolled_back = pe.metrics.at(Counter::RolledBack);
  sl.committed = pe.committed_at_last_gvt;
  sl.inbox_depth = inbox_depth;
  const auto [top_kp, top_events] = pe.forensics.top_offender();
  sl.has_top = top_events > 0;
  sl.top_kp = top_kp;
  sl.top_kp_events = top_events;
  sl.pool_live =
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, pe.pool.live()));
  sl.pool_bytes = pe.pool.pool_bytes();
  sl.throttled = pe.flow_state == PeData::FlowState::Throttled;
  sl.blocked = pe.flow_state == PeData::FlowState::Blocked;
  if (HP_UNLIKELY(mig_on_)) {
    // Publish this PE's hottest owned KP since the previous decision round
    // so every PE can run the identical planner over the slices alone.
    sl.owned_kps = static_cast<std::uint32_t>(pe.kps.size());
    sl.has_cand = false;
    sl.mig_cand_kp = 0;
    sl.mig_cand_score = 0;
    for (std::uint32_t kp_id : pe.kps) {
      if (kp_processed_[kp_id] > sl.mig_cand_score) {
        sl.has_cand = true;
        sl.mig_cand_kp = kp_id;
        sl.mig_cand_score = kp_processed_[kp_id];
      }
    }
  }
}

bool TimeWarpEngine::gvt_round(PeData& pe) {
  HP_ASSERT(pe.out_dirty.empty(),
            "PE %u: outbound batches must be flushed before a GVT round "
            "(%zu dirty)",
            pe.id, pe.out_dirty.size());
  pe.probe.switch_to(Phase::GvtBarrier);
  wd_beacons_[pe.id].set_phase(BeaconPhase::GvtBarrier);
  // Barrier A: everybody stops sending/processing.
  bar_a_.arrive_and_wait();
  if (pe.id == 0) {
    gvt_request_.store(false, std::memory_order_relaxed);
  }
  // With all PEs quiescent, every sent message is fully linked in some
  // inbox (producers flushed and arrived at the barrier after their release
  // pushes), so min(pending, inbox) over all PEs is a valid GVT — no
  // transient messages, and the non-destructive inbox walk sees every node.
  Event* pmin = pe.pending.peek_min();
  Time local = pmin == nullptr ? kTimeInf : pmin->key.ts;
  std::uint64_t inbox_depth = 0;
  pe.inbox.unsafe_for_each([&local, &inbox_depth](const Event& ev) {
    local = std::min(local, ev.key.ts);
    ++inbox_depth;
  });
  if (HP_UNLIKELY(chaos_)) {
    // Envelopes parked by the fault injector are invisible to the pending
    // set and the inbox walk but must still bound GVT from below: a held
    // positive (or a duplicate anti) is in-flight work nothing may commit
    // past. This is what makes every fault plan delay-only.
    for (const PeData::HeldEnvelope& h : pe.chaos_held) {
      local = std::min(local, h.ev->key.ts);
      ++inbox_depth;
    }
  }
  local_min_[pe.id] = local;
  // Publish this PE's round slice before barrier B. PE 0 reads all slices
  // after it for the monitor heartbeat, and every PE reads them for the
  // flow-control signal (nobody can reach the next round's slice writes
  // until all readers pass the next barrier A, so the reads are race-free).
  if (slices_on_) publish_slice(pe, inbox_depth);
  // Barrier B: minima published; everybody computes the same global min.
  bar_b_.arrive_and_wait();
  Time gvt = kTimeInf;
  for (Time m : local_min_) gvt = std::min(gvt, m);
  if (pe.id == 0) {
    const std::uint64_t round_idx =
        gvt_rounds_.fetch_add(1, std::memory_order_relaxed);
    shared_gvt_.store(gvt, std::memory_order_relaxed);
    // Progress heart for the stall watchdog: GVT and the committed count
    // (slice-summed when slices are live, PE 0's own otherwise — any
    // monotone proxy works, the watchdog only asks "did it move").
    std::uint64_t wd_committed = ck_base_committed_;
    if (slices_on_) {
      for (const MonitorSlice& sl : mon_slices_) wd_committed += sl.committed;
    } else {
      wd_committed += pe.committed_at_last_gvt;
    }
    wd_heart_.gvt_bits.store(std::bit_cast<std::uint64_t>(gvt),
                             std::memory_order_relaxed);
    wd_heart_.committed.store(wd_committed, std::memory_order_relaxed);
    wd_heart_.rounds.store(round_idx + 1, std::memory_order_relaxed);
    if (monitor_ != nullptr &&
        ++mon_rounds_since_emit_ >= std::max(1u, cfg_.obs.monitor_interval)) {
      mon_rounds_since_emit_ = 0;
      emit_monitor_record(round_idx, gvt);
    }
    if (HP_UNLIKELY(telemetry_)) {
      // Live gauges from the round slices PE 0 already owns the right to
      // read here (see the MonitorSlice comment): a partial counter set —
      // the full array lands with the final snapshot in run().
      obs::GaugeSnapshot g;
      for (const MonitorSlice& sl : mon_slices_) {
        g.counters[static_cast<std::size_t>(Counter::Processed)] +=
            sl.processed;
        g.counters[static_cast<std::size_t>(Counter::RolledBack)] +=
            sl.rolled_back;
        g.counters[static_cast<std::size_t>(Counter::PoolLiveEnvelopes)] +=
            sl.pool_live;
        g.counters[static_cast<std::size_t>(Counter::PoolBytes)] +=
            sl.pool_bytes;
      }
      g.gvt = gvt;
      g.round = round_idx;
      g.wall_seconds =
          static_cast<double>(obs::monotonic_ns() - epoch_ns_) * 1e-9;
      hub_->publish_gauges(g);
    }
  }
  pe.probe.switch_to(Phase::Fossil);
  wd_beacons_[pe.id].set_phase(BeaconPhase::Fossil);
  fossil_collect(pe, gvt);
  {
    // Per-PE progress beacon for the stall dump: a handful of relaxed
    // stores once per GVT round, nothing on the event hot path.
    PeBeacon& b = wd_beacons_[pe.id];
    b.processed.store(pe.metrics.at(Counter::Processed),
                      std::memory_order_relaxed);
    b.committed.store(pe.metrics.at(Counter::Committed),
                      std::memory_order_relaxed);
    b.pending.store(pe.pending.size(), std::memory_order_relaxed);
    b.inbox.store(inbox_depth, std::memory_order_relaxed);
    const auto [wd_kp, wd_kp_events] = pe.forensics.top_offender();
    b.top_kp.store(wd_kp_events > 0 ? wd_kp : ~0u, std::memory_order_relaxed);
  }
  const std::uint64_t committed_delta =
      pe.metrics.at(Counter::Committed) - pe.committed_at_last_gvt;
  if (cfg_.adaptive_gvt && pe.processed_since_gvt > 0) {
    // Steer the effective interval by this round's commit yield: committed
    // since the last round (fossil collection just ran) over forward
    // executions since the last round. Yield can exceed 1 when older
    // optimistic work finally commits; clamp before comparing.
    const double yield_ratio =
        std::min(1.0, static_cast<double>(committed_delta) /
                          static_cast<double>(pe.processed_since_gvt));
    const std::uint32_t floor_interval =
        std::min(kGvtMinInterval, std::max(1u, cfg_.gvt_interval_events));
    if (yield_ratio < kShrinkYield) {
      pe.effective_gvt_interval =
          std::max(floor_interval, pe.effective_gvt_interval / 2);
    } else if (yield_ratio > kGrowYield) {
      pe.effective_gvt_interval = std::min(
          std::max(1u, cfg_.gvt_interval_events), pe.effective_gvt_interval * 2);
    }
  }
  if (HP_UNLIKELY(flow_on_)) update_flow_window(pe, gvt);
  if (HP_UNLIKELY(chaos_) && stall_active(pe)) {
    ++pe.metrics.at(Counter::ChaosStallRounds);
  }
  // Checkpoint trigger: every input is identical on every PE — the
  // barrier-global gvt, the slice-summed committed count (published between
  // barriers A and B, read after B) and ck_next_ (written only by PE 0
  // between checkpoint barriers) — so the branch is all-or-none and the
  // barriers inside checkpoint_round always pair up.
  if (HP_UNLIKELY(ck_on_) && gvt <= cfg_.end_time) {
    std::uint64_t committed = ck_base_committed_;
    for (const MonitorSlice& sl : mon_slices_) committed += sl.committed;
    if (committed >= ck_next_) checkpoint_round(pe, gvt);
  }
  // Dynamic KP migration piggybacks on the round: every PE plans identically
  // from the slices and the affected PEs execute the handoff in lockstep.
  // round_moves is the engine-wide move count this round (identical on all
  // PEs); only PE 0 records it in its series slice so the per-PE sum in
  // run() yields the true total.
  std::uint64_t round_moves = 0;
  if (HP_UNLIKELY(mig_on_)) {
    const std::uint64_t before = pe.mig_moves_total;
    do_migration_round(pe, gvt);
    round_moves = pe.mig_moves_total - before;
  }
  // This PE's slice of the round sample; run() sums the slices per round
  // (rounds are barrier-global, so local_rounds agrees across PEs).
  pe.series.push(obs::GvtRoundSample{
      pe.local_rounds, obs::monotonic_ns() - epoch_ns_, gvt,
      pe.processed_since_gvt, committed_delta, inbox_depth,
      pe.pool.allocated(),
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, pe.pool.live())),
      pe.id == 0 ? round_moves : 0, pe.pool.pool_bytes()});
  ++pe.local_rounds;
  pe.committed_at_last_gvt = pe.metrics.at(Counter::Committed);
  pe.processed_since_gvt = 0;
  pe.idle_iters = 0;
  pe.probe.switch_to(Phase::Forward);
  wd_beacons_[pe.id].set_phase(BeaconPhase::Execute);
  return gvt > cfg_.end_time;
}

// ---------------------------------------------------------------------------
// Epoch GVT (cfg.gvt_mode == Epoch; protocol narrative in docs/GVT.md).
//
// Mattern-style asynchronous rounds in place of the two barriers: PEs keep
// executing optimistically the whole time. The gvt_request_ flag — set by
// exactly the same interval / idle-backoff / pool-pressure triggers as
// barrier mode — now means "cut over to the next epoch at your next loop
// iteration" instead of "park at barrier A". At a cut a PE publishes its
// reduction contribution for the epoch it is leaving (local minimum over
// pending + chaos-held, count and minimum timestamp of its remote sends)
// into its EpochSlot and moves on without waiting for anybody.
//
// Epoch e closes when (a) every PE has crossed past it, so all slot fields
// for e are final, and (b) the global number of epoch-e sends equals the
// global number of epoch-e receives — the transient-message condition; every
// envelope carries its sender's epoch, and receivers credit the matching
// counter the moment they pop it. Then
//
//   GVT_e = min over PEs of min(localmin_e, sendmin_e)
//
// is a valid GVT: anything a PE held at its cut is >= its localmin; anything
// in flight is tag e (>= that sender's sendmin) or tag e+1 (whose sends are
// bounded below by GVT_e by induction — a PE in e+1 only executes/sends at
// or above what it held at its cut); and no tag <= e-1 survives (close of
// e-1 required all of its sends matched). The closing PE CASes ep_closed_
// forward and takes the global side effects; every PE then applies the
// per-close bookkeeping (fossil, flow window, checkpoint/migration rounds,
// series) from its own loop, in order, and acks. The ack gate — a PE may
// enter epoch m only once close m-2 is fully acked — serializes closes,
// bounds the cross-PE epoch spread to one (so a 4-slot receive ring and
// single-buffered slots suffice), and keeps the monitor slices stable for
// every close-side reader. GVT timing changes commit latency and memory,
// never event order, so committed state is bit-identical to barrier mode.
// ---------------------------------------------------------------------------

bool TimeWarpEngine::epoch_pump(PeData& pe) {
  // 1. Apply won closes in order. The acquire pairs with the winner's
  // release CAS, publishing ep_gvt_bits_ and every slot/slice field behind
  // it. Each close's bookkeeping can itself end the run.
  std::uint64_t closed = ep_closed_.load(std::memory_order_acquire);
  while (closed > pe.ep_done) {
    if (epoch_close_bookkeeping(pe, pe.ep_done + 1)) return true;
    closed = ep_closed_.load(std::memory_order_acquire);
  }
  // 2. Cut over when a round is requested and the ack gate allows entering
  // epoch m = local+1 (close m-2 fully acked; trivially open for m <= 2).
  // The gate includes this PE's own ack, so step 1 always runs first.
  if (gvt_request_.load(std::memory_order_relaxed)) {
    const std::uint64_t m = pe.local_epoch + 1;
    if (m <= 2 || ep_acks_total_.load(std::memory_order_acquire) >=
                      (m - 2) * cfg_.num_pes) {
      epoch_cross(pe);
    }
  }
  // 3. Poll the close condition, throttled — only worth anything while an
  // epoch older than this PE's own is still open (closing e needs every PE
  // past it, this one included).
  if (pe.local_epoch > ep_closed_.load(std::memory_order_relaxed) + 1 &&
      ++pe.ep_poll >= 8) {
    pe.ep_poll = 0;
    try_close_epoch(pe);
  }
  return false;
}

void TimeWarpEngine::epoch_cross(PeData& pe) {
  HP_ASSERT(pe.out_dirty.empty(),
            "PE %u: outbound batches must be flushed before an epoch cut "
            "(%zu dirty)",
            pe.id, pe.out_dirty.size());
  obs::PhaseScope phase(pe.probe, Phase::GvtEpoch);
  EpochSlot& slot = ep_slots_[pe.id];
  const std::uint64_t e = pe.local_epoch;
  // Local minimum over everything this PE holds: the pending set plus the
  // fault injector's holdback (parked envelopes are in-flight work nothing
  // may commit past, exactly as in the barrier walk). No inbox walk — what
  // is still in the channel is covered by its sender's sendmin/send count.
  Event* pmin = pe.pending.peek_min();
  Time local = pmin == nullptr ? kTimeInf : pmin->key.ts;
  if (HP_UNLIKELY(chaos_)) {
    for (const PeData::HeldEnvelope& h : pe.chaos_held) {
      local = std::min(local, h.ev->key.ts);
    }
  }
  slot.localmin_bits.store(std::bit_cast<std::uint64_t>(local),
                           std::memory_order_relaxed);
  slot.sendmin_bits.store(std::bit_cast<std::uint64_t>(pe.cur_epoch_sendmin),
                          std::memory_order_relaxed);
  slot.sent.store(pe.cur_epoch_sent, std::memory_order_relaxed);
  // Recycle the ring slot for tag e+3. It cannot be live: receiving tag e+3
  // requires some PE in epoch e+3, which requires every PE past e+1 — but
  // this PE is only now leaving e. Same-thread ordering (only the owner
  // credits its own ring) makes the reset safe against its own later pops.
  slot.recvd[(e + 3) & 3].store(0, std::memory_order_relaxed);
  pe.cur_epoch_sent = 0;
  pe.cur_epoch_sendmin = kTimeInf;
  // The slice this close's readers (flow window, checkpoint trigger,
  // migration planner, monitor) will consume; stable until the ack gate
  // re-opens because the next overwrite is the cut into e+2.
  if (slices_on_) publish_slice(pe, /*inbox_depth=*/0);
  // Publish: every slot field for epoch e is final once crossed reads e+1.
  slot.crossed.store(e + 1, std::memory_order_release);
  pe.local_epoch = e + 1;
  // Liveness tick for the stall watchdog: a long-but-progressing epoch
  // keeps GVT and the committed count flat, but crossings keep happening.
  wd_heart_.activity.fetch_add(1, std::memory_order_relaxed);
}

void TimeWarpEngine::try_close_epoch(PeData& pe) {
  const std::uint64_t e = ep_closed_.load(std::memory_order_relaxed) + 1;
  if (pe.local_epoch <= e) return;  // not past it ourselves yet
  // (a) Every PE crossed past e? The acquire pairs with epoch_cross's
  // release store, making all slot fields for epoch e visible and final.
  for (std::uint32_t p = 0; p < cfg_.num_pes; ++p) {
    if (ep_slots_[p].crossed.load(std::memory_order_acquire) < e + 1) return;
  }
  // (b) All epoch-e sends matched by receives? Relaxed sums are sound
  // because both counters are monotone within the epoch and the send side
  // is final: observed_recv <= true_recv <= true_sent == observed_sent, so
  // observed equality implies true equality. On failure the gap (>= 0) is
  // the in-flight envelope count — latch the peak for the obs series.
  std::uint64_t sent = 0;
  std::uint64_t recvd = 0;
  Time g = kTimeInf;
  for (std::uint32_t p = 0; p < cfg_.num_pes; ++p) {
    EpochSlot& s = ep_slots_[p];
    sent += s.sent.load(std::memory_order_relaxed);
    recvd += s.recvd[e & 3].load(std::memory_order_relaxed);
    g = std::min(g, std::bit_cast<Time>(
                        s.localmin_bits.load(std::memory_order_relaxed)));
    g = std::min(g, std::bit_cast<Time>(
                        s.sendmin_bits.load(std::memory_order_relaxed)));
  }
  if (recvd != sent) {
    const std::uint64_t gap = sent - recvd;
    std::uint64_t cur = ep_inflight_peak_.load(std::memory_order_relaxed);
    while (gap > cur && !ep_inflight_peak_.compare_exchange_weak(
                            cur, gap, std::memory_order_relaxed)) {
    }
    return;
  }
  // Concurrent evaluators of the same epoch compute the identical g (the
  // inputs are final), so racing stores agree; a single value slot suffices
  // because the ack gate forbids evaluating e+1 until every PE read close e.
  ep_gvt_bits_.store(std::bit_cast<std::uint64_t>(g),
                     std::memory_order_relaxed);
  std::uint64_t expect = e - 1;
  if (!ep_closed_.compare_exchange_strong(expect, e, std::memory_order_release,
                                          std::memory_order_relaxed)) {
    return;  // somebody else won this close with the same g
  }
  // Winner-only global side effects — the epoch-mode mirror of PE 0's block
  // between barriers in gvt_round.
  const std::uint64_t round_idx =
      gvt_rounds_.fetch_add(1, std::memory_order_relaxed);
  shared_gvt_.store(g, std::memory_order_relaxed);
  gvt_request_.store(false, std::memory_order_relaxed);
  ++pe.metrics.at(Counter::GvtEpochCloses);
  const std::uint64_t peak =
      ep_inflight_peak_.exchange(0, std::memory_order_relaxed);
  ep_inflight_last_.store(peak, std::memory_order_relaxed);
  std::uint64_t& peak_metric = pe.metrics.at(Counter::GvtEpochInflightPeak);
  peak_metric = std::max(peak_metric, peak);
  // Progress heart for the stall watchdog. The slices are readable here for
  // the same reason bookkeeping may read them: every PE crossed (acquire
  // above), and nobody overwrites before the acks complete.
  std::uint64_t wd_committed = ck_base_committed_;
  if (slices_on_) {
    for (const MonitorSlice& sl : mon_slices_) wd_committed += sl.committed;
  } else {
    wd_committed += pe.committed_at_last_gvt;
  }
  wd_heart_.gvt_bits.store(std::bit_cast<std::uint64_t>(g),
                           std::memory_order_relaxed);
  wd_heart_.committed.store(wd_committed, std::memory_order_relaxed);
  wd_heart_.rounds.store(round_idx + 1, std::memory_order_relaxed);
}

bool TimeWarpEngine::epoch_close_bookkeeping(PeData& pe, std::uint64_t e) {
  HP_ASSERT(pe.ep_done + 1 == e, "PE %u: close bookkeeping out of order "
            "(done %llu, applying %llu)",
            pe.id, static_cast<unsigned long long>(pe.ep_done),
            static_cast<unsigned long long>(e));
  obs::PhaseScope phase(pe.probe, Phase::GvtEpoch);
  // The winner's release CAS on ep_closed_ (acquired by our caller) ordered
  // this read after its ep_gvt_bits_ store; the single slot is stable until
  // every PE acks this close, which includes us.
  const Time gvt =
      std::bit_cast<Time>(ep_gvt_bits_.load(std::memory_order_relaxed));
  wd_beacons_[pe.id].set_phase(BeaconPhase::Fossil);
  {
    obs::PhaseScope fossil_phase(pe.probe, Phase::Fossil);
    fossil_collect(pe, gvt);
  }
  {
    // Per-PE progress beacon, as in gvt_round (no quiescent inbox walk in
    // epoch mode, so the inbox depth reads 0 here).
    PeBeacon& b = wd_beacons_[pe.id];
    b.processed.store(pe.metrics.at(Counter::Processed),
                      std::memory_order_relaxed);
    b.committed.store(pe.metrics.at(Counter::Committed),
                      std::memory_order_relaxed);
    b.pending.store(pe.pending.size(), std::memory_order_relaxed);
    b.inbox.store(0, std::memory_order_relaxed);
    const auto [wd_kp, wd_kp_events] = pe.forensics.top_offender();
    b.top_kp.store(wd_kp_events > 0 ? wd_kp : ~0u, std::memory_order_relaxed);
  }
  const std::uint64_t committed_delta =
      pe.metrics.at(Counter::Committed) - pe.committed_at_last_gvt;
  if (cfg_.adaptive_gvt && pe.processed_since_gvt > 0) {
    // Identical commit-yield steering to gvt_round; the "round" is now the
    // span between consecutive closes.
    const double yield_ratio =
        std::min(1.0, static_cast<double>(committed_delta) /
                          static_cast<double>(pe.processed_since_gvt));
    const std::uint32_t floor_interval =
        std::min(kGvtMinInterval, std::max(1u, cfg_.gvt_interval_events));
    if (yield_ratio < kShrinkYield) {
      pe.effective_gvt_interval =
          std::max(floor_interval, pe.effective_gvt_interval / 2);
    } else if (yield_ratio > kGrowYield) {
      pe.effective_gvt_interval = std::min(
          std::max(1u, cfg_.gvt_interval_events), pe.effective_gvt_interval * 2);
    }
  }
  if (HP_UNLIKELY(flow_on_)) update_flow_window(pe, gvt);
  if (HP_UNLIKELY(chaos_) && stall_active(pe)) {
    ++pe.metrics.at(Counter::ChaosStallRounds);
  }
  // Checkpoint and migration rounds anchor to the close exactly as they
  // anchor to the barrier round: every PE applies every close in order with
  // identical replicated trigger inputs (the cut-published slices, ck_next_,
  // the per-close local_rounds counter), so the all-or-none branches still
  // hold and the barriers inside the rounds pair up — the PEs simply gather
  // at them from their own loops instead of from a shared round. Traffic the
  // quiesce loops move is tagged e+1 (every PE is in e+1 throughout, the ack
  // gate holds e+2 shut) and drains pop-count as usual, so the next close's
  // accounting stays balanced.
  if (HP_UNLIKELY(ck_on_) && gvt <= cfg_.end_time) {
    std::uint64_t committed = ck_base_committed_;
    for (const MonitorSlice& sl : mon_slices_) committed += sl.committed;
    if (committed >= ck_next_) checkpoint_round(pe, gvt);
  }
  std::uint64_t round_moves = 0;
  if (HP_UNLIKELY(mig_on_)) {
    const std::uint64_t before = pe.mig_moves_total;
    do_migration_round(pe, gvt);
    round_moves = pe.mig_moves_total - before;
  }
  // This PE's slice of the round sample. Closes are totally ordered and
  // applied by every PE, so local_rounds agrees across PEs and the rings
  // stay index-aligned for run()'s merge. The two epoch columns are PE-0
  // scoped in the merged series (not summed): wall time this epoch stayed
  // open, and the close's latched in-flight peak.
  const std::uint64_t now_ns = obs::monotonic_ns();
  const std::uint64_t opened_ns =
      pe.ep_last_close_ns == 0 ? epoch_ns_ : pe.ep_last_close_ns;
  pe.series.push(obs::GvtRoundSample{
      pe.local_rounds, now_ns - epoch_ns_, gvt,
      pe.processed_since_gvt, committed_delta, /*inbox_depth=*/0,
      pe.pool.allocated(),
      static_cast<std::uint64_t>(std::max<std::int64_t>(0, pe.pool.live())),
      pe.id == 0 ? round_moves : 0, pe.pool.pool_bytes(),
      now_ns - opened_ns,
      ep_inflight_last_.load(std::memory_order_relaxed)});
  pe.ep_last_close_ns = now_ns;
  if (pe.id == 0) {
    if (monitor_ != nullptr &&
        ++mon_rounds_since_emit_ >= std::max(1u, cfg_.obs.monitor_interval)) {
      mon_rounds_since_emit_ = 0;
      emit_monitor_record(e - 1, gvt);
    }
    if (HP_UNLIKELY(telemetry_)) {
      obs::GaugeSnapshot g;
      for (const MonitorSlice& sl : mon_slices_) {
        g.counters[static_cast<std::size_t>(Counter::Processed)] +=
            sl.processed;
        g.counters[static_cast<std::size_t>(Counter::RolledBack)] +=
            sl.rolled_back;
        g.counters[static_cast<std::size_t>(Counter::PoolLiveEnvelopes)] +=
            sl.pool_live;
        g.counters[static_cast<std::size_t>(Counter::PoolBytes)] +=
            sl.pool_bytes;
      }
      g.gvt = gvt;
      g.round = e - 1;
      g.wall_seconds = static_cast<double>(now_ns - epoch_ns_) * 1e-9;
      g.gvt_mode = 1;
      g.epoch = e;
      g.in_flight = ep_inflight_last_.load(std::memory_order_relaxed);
      hub_->publish_gauges(g);
    }
  }
  ++pe.local_rounds;
  pe.committed_at_last_gvt = pe.metrics.at(Counter::Committed);
  pe.processed_since_gvt = 0;
  pe.idle_iters = 0;
  wd_beacons_[pe.id].set_phase(BeaconPhase::Execute);
  pe.ep_done = e;
  // Ack LAST (release): the cut into e+2 — which overwrites the slots and
  // slices this close read — acquire-gates on the full ack count.
  ep_acks_total_.fetch_add(1, std::memory_order_release);
  return gvt > cfg_.end_time;
}

// Checkpoint at the GVT fence. Entered by every PE in the same round, after
// fossil collection, so the committed prefix is exactly the events below
// `gvt` and a cut "committed < {gvt,0,0,0,0} <= pending" exists once the
// optimistic suffix is unwound. The protocol:
//
//   1. Fence. Every PE rolls each owned KP back to {gvt,0,0,0,0}. Fossil
//      collection already claimed everything below the fence, so this undoes
//      *all* remaining processed events using the engine's own rollback
//      machinery — reverse handlers, state-saving snapshots and lazy stale
//      bookkeeping all behave exactly as they do for a straggler.
//   2. Quiesce. The sweep's cancellations put anti tokens in flight, and a
//      fault plan may still hold envelopes hostage. Loop (kill stale
//      children in lazy mode, drain the inbox, force-deliver the holdback,
//      flush) between barriers until a full round moves nothing — the same
//      vote pattern as the migration handoff — then assert the fence
//      invariant: processed deques empty, holdback empty.
//   3. Serialize. Each PE drains its pending set (key order) into its
//      stage; PE 0, with every other PE parked at the barrier, captures the
//      globally-indexed LP states/RNG cursors plus all staged events and
//      writes the image; the exit barrier releases everyone to reinsert and
//      resume forward execution.
//
// Committed results are bit-identical with checkpointing on or off: the
// sweep only rolls back optimistic work, which re-executes afterwards.
void TimeWarpEngine::checkpoint_round(PeData& pe, Time gvt) {
  obs::PhaseScope phase(pe.probe, Phase::Checkpoint);
  wd_beacons_[pe.id].set_phase(BeaconPhase::Checkpoint);

  const EventKey fence{gvt, 0, 0, 0, 0};
  for (std::uint32_t kp_id : pe.kps) {
    if (kps_[kp_id].processed.empty()) continue;
    rollback(pe, kp_id, fence,
             obs::RollbackCause{obs::RollbackKind::Primary, kp_id, pe.id,
                                pe.cascade_ctx + 1, 0});
    HP_ASSERT(kps_[kp_id].processed.empty(),
              "PE %u KP %u: checkpoint fence rollback left %zu processed "
              "events above gvt=%.6f",
              pe.id, kp_id, kps_[kp_id].processed.size(), gvt);
  }
  flush_outboxes(pe);

  while (true) {
    bar_a_.arrive_and_wait();
    if (pe.id == 0) ck_again_.store(false, std::memory_order_relaxed);
    bar_b_.arrive_and_wait();
    if (cfg_.cancellation == EngineConfig::Cancellation::Lazy) {
      // Stale children are speculative sends of rolled-back executions kept
      // alive for reuse; they are not part of the state at the fence, so
      // kill them for real. Collect uids first: a cancellation can free
      // other events on this PE (nested stale chains), so re-look each one
      // up and skip the ones that died along the way.
      std::vector<std::uint64_t> stale_owners;
      for (const auto& [uid, ev] : pe.index) {
        if (ev->status == EventStatus::Pending && ev->has_stale_children()) {
          stale_owners.push_back(uid);
        }
      }
      for (std::uint64_t uid : stale_owners) {
        auto it = pe.index.find(uid);
        if (it != pe.index.end()) cancel_stale(pe, it->second);
      }
    }
    drain_inbox(pe);
    if (HP_UNLIKELY(chaos_)) chaos_deliver_all_held(pe);
    const bool sent = !pe.out_dirty.empty();
    flush_outboxes(pe);
    if (sent || !pe.inbox.empty_hint()) {
      ck_again_.store(true, std::memory_order_relaxed);
    }
    bar_a_.arrive_and_wait();
    if (!ck_again_.load(std::memory_order_relaxed)) break;
  }

  for (std::uint32_t kp_id : pe.kps) {
    HP_ASSERT(kps_[kp_id].processed.empty(),
              "PE %u KP %u: quiesced checkpoint has %zu re-processed events",
              pe.id, kp_id, kps_[kp_id].processed.size());
  }
  HP_ASSERT(pe.chaos_held.empty(),
            "PE %u: %zu chaos-held envelopes survived the checkpoint quiesce",
            pe.id, pe.chaos_held.size());

  std::vector<Event*>& stage = ck_stage_[pe.id];
  stage.clear();
  while (Event* p = pe.pending.pop_min()) stage.push_back(p);
  bar_b_.arrive_and_wait();
  if (pe.id == 0) {
    CheckpointImage img;
    img.seed = cfg_.seed;
    img.num_lps = cfg_.num_lps;
    img.fence = gvt;
    img.end_time = cfg_.end_time;
    // All PEs are parked at the barriers around this block, so reading
    // their counters, stages and the global LP states races with nothing.
    std::uint64_t committed = ck_base_committed_;
    for (const auto& other : pes_) {
      committed += other->metrics.at(Counter::Committed);
    }
    img.committed = committed;
    img.lps.reserve(cfg_.num_lps);
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
      img.lps.push_back(make_lp_record(*states_[lp], rngs_[lp]));
    }
    std::size_t total = 0;
    for (const auto& st : ck_stage_) total += st.size();
    img.events.reserve(total);
    for (const auto& st : ck_stage_) {
      for (const Event* p : st) {
        CheckpointEventRecord rec;
        rec.key = p->key;
        rec.send_ts = p->send_ts;
        rec.payload.assign(
            reinterpret_cast<const std::uint8_t*>(p->payload),
            reinterpret_cast<const std::uint8_t*>(p->payload) +
                p->payload_size);
        img.events.push_back(std::move(rec));
      }
    }
    std::string path, err;
    const bool wrote = write_checkpoint(img, cfg_.checkpoint.dir,
                                        ck_next_ / cfg_.checkpoint.every,
                                        path, err);
    HP_ASSERT(wrote, "%s", err.c_str());
    ++pe.metrics.at(Counter::Checkpoints);
    // Advance the trigger threshold off the exact committed count; the exit
    // barrier publishes it to the other PEs' next trigger reads.
    ck_next_ =
        (img.committed / cfg_.checkpoint.every + 1) * cfg_.checkpoint.every;
  }
  bar_a_.arrive_and_wait();
  for (Event* p : stage) pe.pending.insert(p);
  stage.clear();
  wd_beacons_[pe.id].set_phase(BeaconPhase::GvtBarrier);
}

void TimeWarpEngine::emit_monitor_record(std::uint64_t round_idx, Time gvt) {
  const std::uint64_t now = obs::monotonic_ns();
  std::uint64_t processed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t inbox = 0;
  bool has_top = false;
  std::uint32_t top_kp = 0;
  std::uint64_t top_events = 0;
  std::uint64_t pool_live = 0;
  std::uint64_t pool_bytes = 0;
  std::uint32_t throttled_pes = 0;
  std::uint32_t blocked_pes = 0;
  for (const MonitorSlice& sl : mon_slices_) {
    processed += sl.processed;
    rolled_back += sl.rolled_back;
    inbox += sl.inbox_depth;
    pool_live += sl.pool_live;
    pool_bytes += sl.pool_bytes;
    throttled_pes += sl.throttled ? 1 : 0;
    blocked_pes += sl.blocked ? 1 : 0;
    // The global arg-max over per-PE arg-maxes: approximate when one
    // offender's damage is split across PEs, documented in obs/monitor.hpp.
    if (sl.has_top && sl.top_kp_events > top_events) {
      has_top = true;
      top_kp = sl.top_kp;
      top_events = sl.top_kp_events;
    }
  }
  obs::MonitorSample s;
  s.round = round_idx;
  s.t_seconds = static_cast<double>(now - epoch_ns_) * 1e-9;
  s.gvt = gvt;
  s.processed = processed - mon_last_processed_;
  s.rolled_back = rolled_back - mon_last_rolled_back_;
  s.inbox_depth = inbox;
  const double dt = static_cast<double>(now - mon_last_ns_) * 1e-9;
  s.event_rate = dt > 0.0 ? static_cast<double>(s.processed) / dt : 0.0;
  s.rollback_rate = s.processed > 0 ? static_cast<double>(s.rolled_back) /
                                          static_cast<double>(s.processed)
                                    : 0.0;
  s.has_offender = has_top;
  s.top_offender_kp = top_kp;
  s.top_offender_events = top_events;
  s.pool_live = pool_live;
  s.pool_bytes = pool_bytes;
  s.throttled_pes = throttled_pes;
  s.blocked_pes = blocked_pes;
  // PE 0 reads its own migration replica and the table epoch; both are only
  // written inside migration handoffs, which are barrier-separated from this
  // emit (and PE 0 writes them itself), so the reads race with nothing.
  s.kp_migrations = pes_[0]->mig_moves_total;
  s.mapping_epoch = own_.epoch();
  if (HP_UNLIKELY(telemetry_)) {
    s.has_commit_latency = true;
    s.commit_latency_p99_us =
        hub_->quantile_us(obs::LatencyMetric::CommitLatency, 0.99);
  }
  s.gvt_mode = gvt_mode_name(cfg_.gvt_mode);
  if (epoch_mode_) {
    // Epoch-mode emits happen from close bookkeeping, where round_idx is
    // the closed epoch minus one; the in-flight count is the close's
    // latched peak of unmatched sends.
    s.epoch = round_idx + 1;
    s.in_flight = ep_inflight_last_.load(std::memory_order_relaxed);
  }
  monitor_->emit(s);
  mon_last_processed_ = processed;
  mon_last_rolled_back_ = rolled_back;
  mon_last_ns_ = now;
}

// Dynamic KP migration round. Called by every PE from inside gvt_round,
// after barrier B of the GVT protocol, so the round index and the global
// minimum are barrier-global knowledge. The protocol:
//
//   1. Plan. Every PE runs the same pure planner (des/migration.hpp) over
//      the same replicated inputs — the round slices plus its own snapshots
//      of every PE's counters at the previous decision round — so all PEs
//      compute an identical plan with no communication. An empty plan means
//      no barriers at all this round.
//   2. Quiesce. Loop (drain inboxes, flush what the drains staged) between
//      barriers until a full round moves nothing anywhere: after that, no
//      envelope is in flight — every positive is settled at its KP's
//      current owner, which is what makes the live-table re-routing of
//      later anti-messages sound.
//   3. Extract / integrate. The source pulls the moved KP's uid index
//      entries, pending events and chaos-held envelopes into a per-KP
//      staging area; after a barrier the destination adopts them, flips the
//      ownership entry (distinct KPs, disjoint writes) and the exit barrier
//      publishes the new table before anybody routes again. The KP's
//      processed deque and its LP states/RNG streams are globally indexed
//      and transfer by the ownership flip alone.
//
// Committed results are bit-identical with migration on or off at any
// cadence: the event ordering key is model-derived and placement-
// independent, so only delivery locality changes — never event order.
void TimeWarpEngine::do_migration_round(PeData& pe, Time gvt) {
  const MigrationConfig& mc = cfg_.migration;
  // Cadence off the barrier-global round counter: every PE takes this branch
  // identically, so the barriers below always pair up.
  if ((pe.local_rounds + 1) % mc.interval_rounds != 0) return;
  if (gvt > cfg_.end_time) return;  // run is over; nothing left to balance

  std::vector<PeLoad> loads(cfg_.num_pes);
  for (std::uint32_t p = 0; p < cfg_.num_pes; ++p) {
    const MonitorSlice& sl = mon_slices_[p];
    PeLoad& ld = loads[p];
    ld.processed_delta = sl.processed - pe.mig_prev_processed[p];
    ld.rolled_back_delta = sl.rolled_back - pe.mig_prev_rolled_back[p];
    ld.pool_live = sl.pool_live;
    ld.owned_kps = sl.owned_kps;
    ld.has_candidate = sl.has_cand;
    ld.candidate_kp = sl.mig_cand_kp;
    ld.candidate_score = sl.mig_cand_score;
    pe.mig_prev_processed[p] = sl.processed;
    pe.mig_prev_rolled_back[p] = sl.rolled_back;
  }
  const std::vector<KpMove> plan =
      plan_migrations(mc, loads, own_.kp_owner(), pe.mig_decisions++);
  if (plan.empty()) {
    // Identical empty plan on every PE: restart the heat window and return
    // without ever touching a barrier.
    for (std::uint32_t kp_id : pe.kps) kp_processed_[kp_id] = 0;
    return;
  }

  obs::PhaseScope phase(pe.probe, Phase::Migrate);

  // Quiescence. The GVT barrier guarantees everything sent is fully linked
  // in some inbox, but inboxes may be non-empty (the GVT walk is
  // non-destructive) and draining can roll back and send antis, so loop
  // until a full round moves nothing. A PE votes mig_again_ when it pushed
  // anything or its inbox is still non-empty (a chaos batch-split can
  // abandon a drain mid-stream).
  while (true) {
    bar_a_.arrive_and_wait();
    if (pe.id == 0) mig_again_.store(false, std::memory_order_relaxed);
    bar_b_.arrive_and_wait();
    drain_inbox(pe);
    const bool sent = !pe.out_dirty.empty();
    flush_outboxes(pe);
    if (sent || !pe.inbox.empty_hint()) {
      mig_again_.store(true, std::memory_order_relaxed);
    }
    bar_a_.arrive_and_wait();
    if (!mig_again_.load(std::memory_order_relaxed)) break;
  }

  // Extract. Pending events leave the pending queue; processed events stay
  // on the KP's global deque but their uid index entries travel; chaos-held
  // envelopes bound for the KP travel with their release round (the round
  // counter is barrier-global, so it means the same thing at the
  // destination). The live-envelope accounting moves with the events so the
  // flow-control watermarks keep tracking each PE's own outstanding work.
  for (const KpMove& mv : plan) {
    if (mv.src_pe != pe.id) continue;
    std::vector<Event*>& stage = mig_stage_[mv.kp];
    for (auto it = pe.index.begin(); it != pe.index.end();) {
      Event* ev = it->second;
      if (ev->kp == mv.kp) {
        if (ev->status == EventStatus::Pending) {
          HP_ASSERT(pe.pending.erase(ev),
                    "PE %u: migrating pending event uid %llu missing from "
                    "pending set",
                    pe.id, static_cast<unsigned long long>(ev->uid));
        }
        stage.push_back(ev);
        it = pe.index.erase(it);
      } else {
        ++it;
      }
    }
    std::uint64_t moved_here = stage.size();
    if (HP_UNLIKELY(chaos_) && !pe.chaos_held.empty()) {
      auto& held = pe.chaos_held;
      std::size_t w = 0;
      for (std::size_t r = 0; r < held.size(); ++r) {
        // A duplicate anti's cached kp field is unset; derive the target KP
        // from the key, which is correct for positives and antis alike.
        if (lp_kp_[held[r].ev->key.dst_lp] == mv.kp) {
          mig_stage_held_[mv.kp].push_back(held[r]);
          ++moved_here;
        } else {
          held[w++] = held[r];
        }
      }
      held.resize(w);
    }
    pe.kps.erase(std::find(pe.kps.begin(), pe.kps.end(), mv.kp));
    pe.pool.adjust_live(-static_cast<std::int64_t>(moved_here));
    ++pe.metrics.at(Counter::Migrations);
    pe.metrics.at(Counter::MigratedEvents) += moved_here;
  }
  bar_b_.arrive_and_wait();

  // Integrate, then flip ownership. Distinct KPs mean every write here is
  // disjoint across PEs; the exit barrier publishes the flips before any PE
  // routes an envelope again.
  for (const KpMove& mv : plan) {
    if (mv.dst_pe != pe.id) continue;
    std::vector<Event*>& stage = mig_stage_[mv.kp];
    std::int64_t adopted = static_cast<std::int64_t>(stage.size());
    for (Event* ev : stage) {
      if (ev->status == EventStatus::Pending) pe.pending.insert(ev);
      auto [it, ok] = pe.index.emplace(ev->uid, ev);
      HP_ASSERT(ok, "PE %u: migrated event uid %llu collides in index", pe.id,
                static_cast<unsigned long long>(ev->uid));
      (void)it;
    }
    stage.clear();
    std::vector<PeData::HeldEnvelope>& held = mig_stage_held_[mv.kp];
    adopted += static_cast<std::int64_t>(held.size());
    for (const PeData::HeldEnvelope& h : held) pe.chaos_held.push_back(h);
    held.clear();
    pe.kps.push_back(mv.kp);
    own_.set_kp_owner(mv.kp, pe.id);
    pe.pool.adjust_live(adopted);
  }
  if (pe.id == 0) {
    own_.bump_epoch();
    ++pe.metrics.at(Counter::MigrationRounds);
  }
  pe.mig_moves_total += plan.size();
  bar_a_.arrive_and_wait();

  // Restart the heat window under the new ownership (each element is now
  // touched only by its new owner; the barrier above published the flip).
  for (std::uint32_t kp_id : pe.kps) kp_processed_[kp_id] = 0;
}

void TimeWarpEngine::run_pe(PeData& pe) {
  pe.probe.begin(Phase::Forward);
  while (true) {
    // Fault injector first: envelopes whose holdback round has come are
    // delivered before this iteration's drain, so a release behaves exactly
    // like a (late) remote arrival.
    if (HP_UNLIKELY(chaos_) && !pe.chaos_held.empty()) {
      obs::PhaseScope release_phase(pe.probe, Phase::InboxDrain);
      chaos_release(pe, /*all=*/false);
    }
    // Inbox drain is its own phase only when there is plausibly work (the
    // empty_hint pre-check keeps the common empty case at one branch, no
    // clock read). Drain-triggered rollbacks nest via PhaseScope.
    if (!pe.inbox.empty_hint()) {
      obs::PhaseScope drain_phase(pe.probe, Phase::InboxDrain);
      drain_inbox(pe);
    }
    // Publish everything staged by the last process_one and by any
    // drain-triggered rollbacks: one chain push per destination. Nothing
    // staged ever survives past this point, so gvt_round's quiescence
    // invariant holds by construction.
    flush_outboxes(pe);
    if (HP_UNLIKELY(epoch_mode_)) {
      // Asynchronous GVT: apply won closes, cut over if a round is
      // requested, poll the close condition — and keep executing. No
      // barrier, no `continue`; the whole point is that the request flag no
      // longer stops this PE.
      if (epoch_pump(pe)) break;
    } else if (gvt_request_.load(std::memory_order_relaxed)) {
      if (gvt_round(pe)) break;
      continue;
    }
    // Optimism flow control: one signed compare per iteration while Open
    // (the HP_LIKELY fast path inside), state transitions otherwise.
    if (HP_UNLIKELY(flow_on_)) update_flow_control(pe);
    Event* ev = next_event(pe);
    if (ev == nullptr) {
      pe.probe.switch_to(Phase::Idle);
      ++pe.metrics.at(Counter::IdleSpins);
      if (++pe.idle_iters >= pe.idle_backoff) {
        gvt_request_.store(true, std::memory_order_relaxed);
        ++pe.metrics.at(Counter::GvtIdleTriggers);
        pe.idle_iters = 0;
        if (cfg_.adaptive_gvt) {
          // Consecutive fruitless idle rounds back off exponentially; any
          // executed event resets the trigger to its fast initial value.
          pe.idle_backoff = std::min(pe.idle_backoff * 2, kIdleBackoffMax);
        }
      }
      std::this_thread::yield();
      continue;
    }
    pe.probe.switch_to(Phase::Forward);
    pe.idle_iters = 0;
    if (cfg_.adaptive_gvt) pe.idle_backoff = kIdleBackoffInit;
    process_one(pe, ev);
    const std::uint32_t interval = cfg_.adaptive_gvt
                                       ? pe.effective_gvt_interval
                                       : cfg_.gvt_interval_events;
    if (pe.processed_since_gvt >= interval) {
      gvt_request_.store(true, std::memory_order_relaxed);
      ++pe.metrics.at(Counter::GvtProgressTriggers);
    }
  }
  // Free anything the fault injector still holds (all beyond end_time, or
  // GVT could not have terminated the run) and close an open throttle span.
  if (HP_UNLIKELY(chaos_)) chaos_release(pe, /*all=*/true);
  if (HP_UNLIKELY(flow_on_)) close_throttle_span(pe);
  // Commit everything still on the processed deques (all have ts <= end).
  pe.probe.switch_to(Phase::Fossil);
  fossil_collect(pe, kTimeInf);
  pe.probe.end();
  wd_beacons_[pe.id].set_phase(BeaconPhase::Done);
}

RunStats TimeWarpEngine::run() {
  // Telemetry comes up before seeding so the initial schedule()s get
  // creation stamps (their queue dwell until first execution is real).
  telemetry_ = cfg_.obs.telemetry_enabled();
  if (HP_UNLIKELY(telemetry_)) {
    hub_ = std::make_unique<obs::TelemetryHub>(cfg_.obs, cfg_.num_pes);
  }
  // A restored run starts from the image's committed cut instead of the
  // model's initial events: LP states + RNG cursors verbatim, and every
  // pending event re-routed through the ownership table with a fresh
  // init-space uid (anti-message identity is meaningless across the cut —
  // nothing that could cancel a restored event survives it).
  CheckpointImage restore_image;
  const bool restoring = !cfg_.restore_path.empty();
  if (restoring) {
    std::string err;
    const bool loaded =
        load_checkpoint_for_restore(cfg_.restore_path, cfg_.seed,
                                    cfg_.num_lps, cfg_.end_time,
                                    restore_image, err);
    HP_ASSERT(loaded, "%s", err.c_str());
    for (std::uint32_t lp = 0; lp < cfg_.num_lps; ++lp) {
      apply_lp_record(restore_image.lps[lp], lp, *states_[lp], rngs_[lp]);
    }
    std::uint64_t restore_uid = 0;
    for (const CheckpointEventRecord& rec : restore_image.events) {
      PeData& dst = *pes_[own_.pe_of_lp(rec.key.dst_lp)];
      Event* ev = dst.pool.allocate();
      ev->key = rec.key;
      ev->uid = ++restore_uid;  // init space: disjoint from PE-minted uids
      ev->send_ts = rec.send_ts;
      ev->kp = lp_kp_[rec.key.dst_lp];
      ev->status = EventStatus::Pending;
      ev->cv = 0;
      ev->payload_size = static_cast<std::uint16_t>(rec.payload.size());
      if (!rec.payload.empty()) {
        std::memcpy(ev->payload, rec.payload.data(), rec.payload.size());
      }
      if (HP_UNLIKELY(telemetry_)) ev->create_wall_ns = obs::monotonic_ns();
      dst.pending.insert(ev);
      auto [it, ok] = dst.index.emplace(ev->uid, ev);
      HP_ASSERT(ok, "duplicate restored event uid %llu",
                static_cast<unsigned long long>(ev->uid));
      (void)it;
    }
    ck_base_committed_ = restore_image.committed;
  } else {
    seed_initial_events();
  }

  const bool tracing = cfg_.obs.trace;
  tracing_ = tracing;
  trace_stamps_ = tracing && cfg_.obs.forensics;
  chaos_ = cfg_.fault.any();
  flow_on_ = cfg_.pool_budget_envelopes > 0;
  if (flow_on_) {
    const auto budget = static_cast<std::int64_t>(cfg_.pool_budget_envelopes);
    HP_ASSERT(budget >= 16, "pool_budget_envelopes=%lld is below the minimum "
              "of 16 envelopes per PE",
              static_cast<long long>(budget));
    const double frac = std::clamp(cfg_.pool_soft_fraction, 0.05, 0.95);
    pool_soft_ = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(frac * static_cast<double>(budget)));
    pool_soft_exit_ = (pool_soft_ * 3) / 4;
    // The reserve between the block trigger and the budget absorbs the
    // allocations a blocked PE cannot refuse: anti bursts from rollbacks and
    // the children of the at-GVT events it still executes.
    const std::int64_t reserve = std::clamp<std::int64_t>(budget / 4, 4, 4096);
    pool_hard_ = std::max(pool_soft_ + 1, budget - reserve);
  }
  if (chaos_) {
    HP_ASSERT(cfg_.fault.stall_rounds == 0 ||
                  cfg_.fault.stall_pe == FaultPlan::kNoStallPe ||
                  cfg_.fault.stall_pe < cfg_.num_pes,
              "chaos stall PE %u out of range (%u PEs)", cfg_.fault.stall_pe,
              cfg_.num_pes);
  }
  for (auto& pe : pes_) {
    pe->trace.reset(tracing ? cfg_.obs.max_trace_spans_per_pe : 0);
    pe->series.reset(cfg_.obs.gvt_series_capacity);
    pe->probe.attach(&pe->metrics, tracing ? &pe->trace : nullptr,
                     cfg_.obs.phase_timers);
    pe->forensics.reset(cfg_.num_kps, cfg_.obs.forensics);
    if (chaos_) {
      // Chaos streams are decorrelated from every model LP stream (those
      // seed from (cfg.seed, lp)): the fault plan must perturb delivery
      // timing only, never event content.
      pe->chaos_rng = util::ReversibleRng(
          util::hash_combine(cfg_.fault.seed, 0x9e3779b9u + pe->id));
      pe->chaos_run.reserve(kChaosReorderWindow);
    }
  }
  mig_on_ = cfg_.migration.enabled && cfg_.num_pes > 1;
  if (mig_on_) {
    HP_ASSERT(cfg_.migration.interval_rounds >= 1 &&
                  cfg_.migration.max_moves >= 1 &&
                  cfg_.migration.imbalance_threshold >= 1.0,
              "invalid migration config (every=%u max=%u imbalance=%g)",
              cfg_.migration.interval_rounds, cfg_.migration.max_moves,
              cfg_.migration.imbalance_threshold);
    kp_processed_.assign(cfg_.num_kps, 0);
    mig_stage_.assign(cfg_.num_kps, {});
    mig_stage_held_.assign(cfg_.num_kps, {});
    for (auto& pe : pes_) {
      pe->mig_prev_processed.assign(cfg_.num_pes, 0);
      pe->mig_prev_rolled_back.assign(cfg_.num_pes, 0);
      pe->mig_decisions = 0;
      pe->mig_moves_total = 0;
    }
  }
  ck_on_ = cfg_.checkpoint.enabled();
  if (ck_on_) {
    ck_stage_.assign(cfg_.num_pes, {});
    ck_next_ = (ck_base_committed_ / cfg_.checkpoint.every + 1) *
               cfg_.checkpoint.every;
  }
  slices_on_ = cfg_.obs.monitor || flow_on_ || mig_on_ || telemetry_ || ck_on_;
  epoch_mode_ = cfg_.gvt_mode == EngineConfig::GvtMode::Epoch;
  if (epoch_mode_) {
    // Value-initialization runs the slot initializers: crossed = 1 (every PE
    // starts inside epoch 1), counters and the receive ring at zero.
    ep_slots_ = std::make_unique<EpochSlot[]>(cfg_.num_pes);
  }
  if (cfg_.obs.monitor) {
    monitor_ = std::make_unique<obs::MonitorWriter>(cfg_.obs.monitor_path);
  }
  if (slices_on_) mon_slices_.assign(cfg_.num_pes, MonitorSlice{});
  epoch_ns_ = obs::monotonic_ns();
  mon_last_ns_ = epoch_ns_;

  // Crash-safety plumbing: per-PE progress beacons for the stall watchdog
  // and the fail-fast diagnostic dump (registered for the whole run, so an
  // HP_ASSERT inside any PE thread prints the same per-PE block).
  wd_beacons_ = std::make_unique<PeBeacon[]>(cfg_.num_pes);
  WatchdogScope wd_scope{"timewarp", &wd_heart_, wd_beacons_.get(),
                         cfg_.num_pes};
  util::ScopedFailureDump wd_dump(failure_dump_adapter, &wd_scope);
  std::optional<Watchdog> watchdog;
  if (cfg_.watchdog.enabled()) watchdog.emplace(cfg_.watchdog, wd_scope);
  for (std::uint32_t p = 0; p < cfg_.num_pes; ++p) {
    wd_beacons_[p].set_phase(BeaconPhase::Execute);
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (cfg_.num_pes == 1) {
    run_pe(*pes_[0]);
  } else {
    std::vector<std::jthread> threads;
    threads.reserve(cfg_.num_pes);
    for (std::uint32_t pe = 0; pe < cfg_.num_pes; ++pe) {
      threads.emplace_back([this, pe] { run_pe(*pes_[pe]); });
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (watchdog) watchdog->stop();

  RunStats stats;
  obs::MetricsReport& m = stats.metrics;
  m.per_pe.reserve(pes_.size());
  for (auto& pe : pes_) {
    if (HP_UNLIKELY(telemetry_)) {
      // PE threads have joined, so each ring's drop counter is final.
      pe->metrics.at(Counter::TelemetryDropped) =
          hub_->ring(pe->id).dropped();
    }
    pe->metrics.at(Counter::PoolEnvelopes) = pe->pool.allocated();
    pe->metrics.at(Counter::PoolLiveEnvelopes) = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, pe->pool.live()));
    // peak_live only ratchets up from 0 inside allocate() (migration
    // adoptions are tracked separately as peak_adopted), so no clamp needed.
    pe->metrics.at(Counter::PoolPeakLive) =
        static_cast<std::uint64_t>(pe->pool.peak_live());
    pe->metrics.at(Counter::PoolSlabs) = pe->pool.slabs_allocated();
    pe->metrics.at(Counter::PoolBytes) = pe->pool.pool_bytes();
    m.per_pe.push_back(pe->metrics);
  }
  m.finalize();  // the one per-PE -> aggregate reduction
  for (const auto& pe : pes_) m.forensics.merge(pe->forensics);
  HP_ASSERT(stats.committed_events() ==
                stats.processed_events() - stats.rolled_back_events(),
            "event accounting mismatch: committed=%llu processed=%llu rb=%llu",
            static_cast<unsigned long long>(stats.committed_events()),
            static_cast<unsigned long long>(stats.processed_events()),
            static_cast<unsigned long long>(stats.rolled_back_events()));
  // Attribution invariant: every undone event belongs to exactly one
  // episode kind, and with forensics on the per-KP victim heatmap accounts
  // for all of them.
  HP_ASSERT(m.total.primary_rollback_events() +
                    m.total.secondary_rollback_events() ==
                stats.rolled_back_events(),
            "rollback attribution mismatch: primary=%llu secondary=%llu "
            "rolled_back=%llu",
            static_cast<unsigned long long>(m.total.primary_rollback_events()),
            static_cast<unsigned long long>(m.total.secondary_rollback_events()),
            static_cast<unsigned long long>(stats.rolled_back_events()));
  if (cfg_.obs.forensics) {
    HP_ASSERT(m.forensics.victim_events_total() == stats.rolled_back_events(),
              "forensics heatmap does not sum to rolled_back (%llu vs %llu)",
              static_cast<unsigned long long>(m.forensics.victim_events_total()),
              static_cast<unsigned long long>(stats.rolled_back_events()));
  }
  if (monitor_ != nullptr) m.monitor_lines = monitor_->lines();
  m.gvt_rounds = gvt_rounds_.load();
  m.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  m.final_gvt = shared_gvt_.load();

  // Merge the per-PE GVT series: rounds are barrier-global, so every ring
  // retains the same window and the slices align index-by-index. Sum the
  // per-PE quantities; gvt and the timestamp come from PE 0.
  std::vector<obs::GvtRoundSample> series = pes_[0]->series.snapshot();
  for (std::size_t p = 1; p < pes_.size(); ++p) {
    const std::vector<obs::GvtRoundSample> other = pes_[p]->series.snapshot();
    HP_ASSERT(other.size() == series.size(),
              "GVT series rings disagree across PEs (%zu vs %zu)",
              other.size(), series.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      HP_ASSERT(other[i].round == series[i].round,
                "GVT series rounds misaligned");
      series[i].processed += other[i].processed;
      series[i].committed += other[i].committed;
      series[i].inbox_depth += other[i].inbox_depth;
      series[i].pool_envelopes += other[i].pool_envelopes;
      series[i].pool_live += other[i].pool_live;
      series[i].migrations += other[i].migrations;
      series[i].pool_bytes += other[i].pool_bytes;
    }
  }
  m.gvt_series = std::move(series);

  if (tracing) {
    std::vector<const obs::TraceBuffer*> buffers;
    buffers.reserve(pes_.size());
    for (const auto& pe : pes_) {
      buffers.push_back(&pe->trace);
      m.trace_spans_dropped += pe->trace.dropped();
    }
    const obs::ChromeTraceStats written = obs::write_chrome_trace(
        cfg_.obs.trace_path, epoch_ns_, buffers, m.gvt_series);
    m.trace_spans = written.spans;
    m.trace_flows = written.flows;
  }

  if (HP_UNLIKELY(telemetry_)) {
    // Final gauges carry the full counter/phase arrays (live snapshots are
    // partial); finalize_into stops the collector, drains the rings one last
    // time and folds the per-PE histograms into the report.
    obs::GaugeSnapshot g;
    g.counters = m.total.counters;
    g.phase_ns = m.total.phase_ns;
    g.gvt = m.final_gvt;
    g.round = m.gvt_rounds;
    g.wall_seconds = m.wall_seconds;
    g.gvt_mode = epoch_mode_ ? 1 : 0;
    g.epoch = epoch_mode_ ? ep_closed_.load(std::memory_order_relaxed) : 0;
    g.in_flight = 0;  // run over; every send is matched
    hub_->publish_gauges(g);
    hub_->finalize_into(m);
    hub_.reset();
  }
  return stats;
}

}  // namespace hp::des
