#include "des/phold.hpp"

#include "util/hash.hpp"

namespace hp::des {

PholdModel::PholdModel(PholdConfig cfg) : cfg_(cfg) {
  HP_ASSERT(cfg_.num_lps >= 1, "PHOLD needs LPs");
  HP_ASSERT(cfg_.remote_fraction >= 0.0 && cfg_.remote_fraction <= 1.0,
            "remote_fraction out of range");
  HP_ASSERT(cfg_.lookahead > 0.0, "delays must be strictly positive");
}

std::unique_ptr<LpState> PholdModel::make_state(std::uint32_t) {
  return std::make_unique<PholdState>();
}

void PholdModel::init_lp(std::uint32_t lp, InitContext& ctx) {
  for (std::uint32_t j = 0; j < cfg_.population_per_lp; ++j) {
    PholdMsg m{};
    // Spread the initial population across the first mean delay window.
    const double ts =
        cfg_.lookahead + cfg_.mean_delay * ctx.rng().uniform();
    ctx.schedule(lp, ts, m);
  }
}

void PholdModel::forward(LpState& state, Event& ev, Context& ctx) {
  auto& s = static_cast<PholdState&>(state);
  auto& m = ev.msg<PholdMsg>();
  ++s.events;
  m.saved_order_hash = s.order_hash;
  s.order_hash = util::hash_combine(s.order_hash, ev.key.tie);

  // Draw 1: destination (remote with probability remote_fraction; the same
  // unit draw selects which remote LP, so the draw count stays fixed).
  const double u = ctx.rng().uniform();
  std::uint32_t dst = ctx.self();
  m.saved_remote = 0;
  if (u < cfg_.remote_fraction && cfg_.num_lps > 1) {
    const double v = u / cfg_.remote_fraction;  // re-uniformized
    auto idx = static_cast<std::uint32_t>(
        v * static_cast<double>(cfg_.num_lps - 1));
    if (idx >= cfg_.num_lps - 1) idx = cfg_.num_lps - 2;
    dst = idx >= ctx.self() ? idx + 1 : idx;
    m.saved_remote = 1;
    ++s.remote_sends;
  }
  // Draw 2: service delay.
  const double delay =
      cfg_.lookahead + 2.0 * cfg_.mean_delay * ctx.rng().uniform();

  PholdMsg next{};
  ctx.send(dst, delay, next);
}

void PholdModel::reverse(LpState& state, Event& ev, Context& ctx) {
  auto& s = static_cast<PholdState&>(state);
  auto& m = ev.msg<PholdMsg>();
  ctx.rng().reverse(2);
  if (m.saved_remote) --s.remote_sends;
  s.order_hash = m.saved_order_hash;
  --s.events;
}

}  // namespace hp::des
