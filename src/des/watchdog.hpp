#pragma once

// Stall watchdog: detects a run whose committed frontier has stopped moving
// and fails loudly with a structured diagnostic dump instead of hanging
// forever in a barrier or spinning in a livelock.
//
// Each engine publishes progress into lock-free telemetry (a WatchdogHeart
// plus one PeBeacon per PE — plain atomics updated with relaxed stores on
// the engine side, so the hot path pays a handful of uncontended writes per
// GVT round and nothing per event). A monitor thread polls the heart every
// poll_ms: as long as GVT or the committed-event count moves, the run is
// making progress — including legitimately Blocked PEs waiting out the pool
// budget, and chaos-stalled PEs that keep joining barriers. Only when BOTH
// are flat for timeout_ms does the watchdog escalate: it writes a per-PE
// dump (phase, processed/committed counts, pending/inbox depths, last GVT,
// top rollback-offender KP) straight to stderr with snprintf + write(2) —
// no allocation, no locks, nothing that could itself wedge — and terminates
// with a distinct exit code so harnesses can tell "stalled" from "crashed".
//
// The same dump is registered with util::fail_fast for the duration of
// run(), so an HP_ASSERT failure inside an engine produces the identical
// diagnostic block before aborting.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

namespace hp::des {

// Exit code used when the watchdog declares the run wedged. Distinct from
// abort (SIGABRT) and from usage errors (2).
inline constexpr int kStallExitCode = 86;

// --watchdog=timeout=N[,poll=N] (milliseconds).
struct WatchdogConfig {
  std::uint64_t timeout_ms = 0;  // 0 = disabled
  std::uint64_t poll_ms = 50;

  bool enabled() const noexcept { return timeout_ms > 0; }

  // Parses "timeout=N[,poll=N]". Returns false and sets `err` on malformed
  // input without touching `out`.
  static bool parse(std::string_view spec, WatchdogConfig& out,
                    std::string& err);
  std::string to_string() const;
  bool operator==(const WatchdogConfig&) const = default;
};

// What a PE is doing right now, as seen from outside. Stored as a u8 in the
// beacon; names come from beacon_phase_name().
enum class BeaconPhase : std::uint8_t {
  Init = 0,
  Execute,     // processing events
  GvtBarrier,  // parked in a GVT reduction barrier
  Fossil,      // committing + reclaiming behind GVT
  Migration,   // KP migration quiesce/handoff
  Checkpoint,  // checkpoint fence rollback/quiesce/serialize
  Blocked,     // pool budget exhausted, waiting for fossil space
  Stalled,     // chaos-injected stall window
  Done,        // left the main loop
};

const char* beacon_phase_name(BeaconPhase phase) noexcept;

// Per-PE progress beacon. Cache-line aligned so PEs never false-share; all
// members are relaxed atomics — the dump is a diagnostic snapshot, not a
// synchronization point, and must stay data-race-free under TSan.
struct alignas(64) PeBeacon {
  std::atomic<std::uint8_t> phase{0};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> pending{0};
  std::atomic<std::uint64_t> inbox{0};
  std::atomic<std::uint32_t> top_kp{~0u};  // worst rollback offender, if any

  void set_phase(BeaconPhase p) noexcept {
    phase.store(static_cast<std::uint8_t>(p), std::memory_order_relaxed);
  }
};

// Run-global progress heart. GVT travels as its bit pattern so the beacon
// stays lock-free on platforms without atomic<double>.
struct WatchdogHeart {
  std::atomic<std::uint64_t> gvt_bits{0};
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> rounds{0};
  // Protocol liveness ticks that are not yet commits: epoch-GVT bumps this
  // at every epoch crossing, so a long-but-progressing epoch (GVT and the
  // committed count both flat until the close) is not misreported as a
  // wedge. The cost: a run whose epochs never close looks alive to the
  // watchdog for as long as PEs keep crossing — the close-serialization ack
  // gate bounds that to one uncommitted epoch, after which crossings stop
  // and the flat window starts. Barrier mode never writes it.
  std::atomic<std::uint64_t> activity{0};
};

// Everything the dump needs, bundled so the fail_fast callback can carry it
// through a single void* ctx.
struct WatchdogScope {
  const char* engine_name = "";
  const WatchdogHeart* heart = nullptr;
  const PeBeacon* beacons = nullptr;
  std::uint32_t num_pes = 0;
};

// Writes the structured diagnostic block to stderr. Async-crash-safe: reads
// only the atomics above, formats into a stack buffer with snprintf, emits
// with write(2).
void dump_stall_diagnostics(const char* reason,
                            const WatchdogScope& scope) noexcept;

// fail_fast callback adapter: ctx is a WatchdogScope*.
void failure_dump_adapter(void* ctx) noexcept;

// The monitor thread. Construct with start() semantics; stop() (or
// destruction) joins it. Fires at most once.
class Watchdog {
 public:
  Watchdog(const WatchdogConfig& cfg, const WatchdogScope& scope);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void stop() noexcept;

 private:
  void poll_loop(std::stop_token st);

  WatchdogConfig cfg_;
  WatchdogScope scope_;
  std::jthread thread_;
};

}  // namespace hp::des
