#include "des/watchdog.hpp"

#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hp::des {

namespace {

bool parse_u64(std::string_view s, std::uint64_t& out) {
  if (s.empty() || s.front() == '-') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  out = v;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// write(2) the whole buffer; best-effort (nothing sensible to do on error
// while crashing).
void emit(const char* buf, std::size_t n) noexcept {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(2, buf + off, n - off);
    if (w <= 0) return;
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

bool WatchdogConfig::parse(std::string_view spec, WatchdogConfig& out,
                           std::string& err) {
  WatchdogConfig cfg;
  bool saw_timeout = false;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view pair = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq == pair.size() - 1) {
      err = "watchdog: expected key=value, got '" + std::string(pair) + "'";
      return false;
    }
    const std::string_view key = trim(pair.substr(0, eq));
    const std::string_view val = trim(pair.substr(eq + 1));
    if (key == "timeout") {
      if (!parse_u64(val, cfg.timeout_ms) || cfg.timeout_ms == 0) {
        err = "watchdog: timeout expects a positive millisecond count, got '" +
              std::string(val) + "'";
        return false;
      }
      saw_timeout = true;
    } else if (key == "poll") {
      if (!parse_u64(val, cfg.poll_ms) || cfg.poll_ms == 0) {
        err = "watchdog: poll expects a positive millisecond count, got '" +
              std::string(val) + "'";
        return false;
      }
    } else {
      err = "watchdog: unknown key '" + std::string(key) +
            "' (expected timeout, poll)";
      return false;
    }
  }
  if (!saw_timeout) {
    err = "watchdog: missing required timeout=N";
    return false;
  }
  out = cfg;
  return true;
}

std::string WatchdogConfig::to_string() const {
  if (!enabled()) return "off";
  return "timeout=" + std::to_string(timeout_ms) +
         ",poll=" + std::to_string(poll_ms);
}

const char* beacon_phase_name(BeaconPhase phase) noexcept {
  switch (phase) {
    case BeaconPhase::Init: return "init";
    case BeaconPhase::Execute: return "execute";
    case BeaconPhase::GvtBarrier: return "gvt-barrier";
    case BeaconPhase::Fossil: return "fossil";
    case BeaconPhase::Migration: return "migration";
    case BeaconPhase::Checkpoint: return "checkpoint";
    case BeaconPhase::Blocked: return "blocked";
    case BeaconPhase::Stalled: return "stalled";
    case BeaconPhase::Done: return "done";
  }
  return "?";
}

void dump_stall_diagnostics(const char* reason,
                            const WatchdogScope& scope) noexcept {
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf),
                        "\n==== %s diagnostic dump: %s ====\n",
                        scope.engine_name, reason);
  if (n > 0) emit(buf, static_cast<std::size_t>(n));

  if (scope.heart != nullptr) {
    const double gvt = std::bit_cast<double>(
        scope.heart->gvt_bits.load(std::memory_order_relaxed));
    n = std::snprintf(
        buf, sizeof(buf),
        "gvt %.17g  committed %llu  gvt-rounds %llu  activity %llu\n", gvt,
        static_cast<unsigned long long>(
            scope.heart->committed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            scope.heart->rounds.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            scope.heart->activity.load(std::memory_order_relaxed)));
    if (n > 0) emit(buf, static_cast<std::size_t>(n));
  }

  for (std::uint32_t pe = 0; pe < scope.num_pes && scope.beacons != nullptr;
       ++pe) {
    const PeBeacon& b = scope.beacons[pe];
    const auto phase = static_cast<BeaconPhase>(
        b.phase.load(std::memory_order_relaxed));
    const std::uint32_t top_kp = b.top_kp.load(std::memory_order_relaxed);
    char kp_buf[32];
    if (top_kp == ~0u) {
      std::snprintf(kp_buf, sizeof(kp_buf), "-");
    } else {
      std::snprintf(kp_buf, sizeof(kp_buf), "%u", top_kp);
    }
    n = std::snprintf(
        buf, sizeof(buf),
        "PE %2u  phase %-11s  processed %10llu  committed %10llu  "
        "pending %8llu  inbox %6llu  top-offender-kp %s\n",
        pe, beacon_phase_name(phase),
        static_cast<unsigned long long>(
            b.processed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            b.committed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            b.pending.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            b.inbox.load(std::memory_order_relaxed)),
        kp_buf);
    if (n > 0) emit(buf, static_cast<std::size_t>(n));
  }
  n = std::snprintf(buf, sizeof(buf), "==== end diagnostic dump ====\n");
  if (n > 0) emit(buf, static_cast<std::size_t>(n));
}

void failure_dump_adapter(void* ctx) noexcept {
  const auto* scope = static_cast<const WatchdogScope*>(ctx);
  if (scope != nullptr) dump_stall_diagnostics("invariant failure", *scope);
}

Watchdog::Watchdog(const WatchdogConfig& cfg, const WatchdogScope& scope)
    : cfg_(cfg), scope_(scope) {
  if (cfg_.enabled()) {
    thread_ = std::jthread([this](std::stop_token st) { poll_loop(st); });
  }
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() noexcept {
  if (thread_.joinable()) {
    thread_.request_stop();
    thread_.join();
  }
}

void Watchdog::poll_loop(std::stop_token st) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t last_gvt_bits =
      scope_.heart->gvt_bits.load(std::memory_order_relaxed);
  std::uint64_t last_committed =
      scope_.heart->committed.load(std::memory_order_relaxed);
  std::uint64_t last_activity =
      scope_.heart->activity.load(std::memory_order_relaxed);
  Clock::time_point last_progress = Clock::now();
  while (!st.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.poll_ms));
    if (st.stop_requested()) return;
    const std::uint64_t gvt_bits =
        scope_.heart->gvt_bits.load(std::memory_order_relaxed);
    const std::uint64_t committed =
        scope_.heart->committed.load(std::memory_order_relaxed);
    const std::uint64_t activity =
        scope_.heart->activity.load(std::memory_order_relaxed);
    // Any frontier moving counts as progress: a Blocked PE waiting out the
    // pool budget advances committed without advancing GVT for a while, a
    // chaos straggler can advance GVT without committing locally, and an
    // epoch-GVT run crossing into a new epoch (activity) is live even while
    // GVT and the committed count hold still until the close.
    if (gvt_bits != last_gvt_bits || committed != last_committed ||
        activity != last_activity) {
      last_gvt_bits = gvt_bits;
      last_committed = committed;
      last_activity = activity;
      last_progress = Clock::now();
      continue;
    }
    const auto flat = std::chrono::duration_cast<std::chrono::milliseconds>(
                          Clock::now() - last_progress)
                          .count();
    if (flat >= static_cast<long long>(cfg_.timeout_ms)) {
      char reason[128];
      std::snprintf(reason, sizeof(reason),
                    "no GVT or commit progress for %lld ms (stall watchdog)",
                    flat);
      dump_stall_diagnostics(reason, scope_);
      // _Exit: the run is wedged — destructors could block on the same
      // barrier the PEs are stuck in. The distinct code lets a harness
      // separate "declared stalled" from a crash.
      std::_Exit(kStallExitCode);
    }
  }
}

}  // namespace hp::des
