#pragma once

// Conservative parallel kernel (bounded-window / YAWNS style) — the classic
// alternative to Time Warp that the ROSS line of work positions against.
//
// Requires a model property Time Warp does not: a global **lookahead** L —
// every message sent to a *different* LP must arrive at least L after the
// sender's current time (same-LP self-sends may be arbitrarily close). Then
// events inside the window [floor, floor + L) are causally independent
// across PEs and can run in parallel with no rollback machinery at all:
//
//   loop:
//     barrier; floor = global min pending timestamp; barrier
//     every PE processes its events with ts < floor + L (in key order;
//       same-PE sends insert directly, cross-PE sends go to inboxes)
//     barrier; drain inboxes
//
// Strengths: zero wasted work, no reverse handlers needed. Weakness: the
// window — and therefore the parallelism per synchronization — is capped by
// the model's lookahead, which is exactly the limitation optimistic
// execution removes. The conservative_vs_optimistic bench quantifies both
// sides on the same models.
//
// Determinism: events are processed in the same deterministic key order as
// the other kernels, so results are bit-identical to SequentialEngine.

#include <atomic>
#include <barrier>
#include <memory>
#include <mutex>
#include <vector>

#include "des/engine.hpp"
#include "des/event.hpp"
#include "des/model.hpp"
#include "des/pending_set.hpp"
#include "net/mapping.hpp"
#include "obs/probe.hpp"

namespace hp::obs {
class TelemetryHub;
}

namespace hp::des {

class ConsInitCtx;

class ConservativeEngine final : public Engine {
  friend class ConsInitCtx;

 public:
  // `lookahead` must be a lower bound on every cross-LP send delay the
  // model performs; the engine verifies each send against it.
  ConservativeEngine(Model& model, EngineConfig cfg, Time lookahead);
  ~ConservativeEngine() override;

  ConservativeEngine(const ConservativeEngine&) = delete;
  ConservativeEngine& operator=(const ConservativeEngine&) = delete;

  RunStats run() override;

  LpState& state(std::uint32_t lp) noexcept override { return *states_[lp]; }
  const LpState& state(std::uint32_t lp) const noexcept override {
    return *states_[lp];
  }
  std::uint32_t num_lps() const noexcept override { return cfg_.num_lps; }

 private:
  struct alignas(64) PeData {
    std::uint32_t id = 0;
    PendingSet pending;
    std::mutex inbox_mu;
    std::vector<Event*> inbox;
    EventPool pool;

    // Observability (same vocabulary as the Time Warp kernel; windows play
    // the role of GVT rounds).
    obs::PeMetrics metrics;
    obs::PhaseProbe probe;
    obs::TraceBuffer trace;
    obs::GvtSeriesRing series;
    std::uint64_t local_rounds = 0;
    std::uint64_t processed_at_last_window = 0;
    // Highest timestamp processed on this PE, published at the window-top
    // reduction so PE 0 can prove a checkpoint fence (all committed strictly
    // below it) exists at the current floor.
    Time max_processed_ts = kTimeNegInf;
  };

  class Ctx;

  void run_pe(PeData& pe);

  Model& model_;
  EngineConfig cfg_;
  Time lookahead_;
  std::unique_ptr<net::Mapping> owned_mapping_;
  const net::Mapping* mapping_ = nullptr;

  std::vector<std::unique_ptr<LpState>> states_;
  std::vector<util::ReversibleRng> rngs_;
  std::vector<std::uint32_t> lp_pe_;
  std::vector<std::unique_ptr<PeData>> pes_;

  // Latency telemetry (ObsConfig::telemetry): off => no clock reads in the
  // window loop; on => per-PE rings feed the hub's histograms only.
  bool telemetry_ = false;
  std::unique_ptr<obs::TelemetryHub> hub_;

  std::barrier<> barrier_;
  std::vector<Time> local_min_;
  std::atomic<Time> window_end_{0.0};
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> windows_{0};
  std::uint64_t epoch_ns_ = 0;  // run-start timestamp for series/trace

  // Checkpointing (window-top reductions; see checkpoint_if_due).
  std::vector<Time> local_max_ts_;
  std::vector<std::uint64_t> local_processed_;
  std::atomic<bool> ck_do_{false};
  std::uint64_t ck_base_committed_ = 0;  // image baseline when restoring
  std::uint64_t ck_next_ = ~0ull;
  std::uint64_t ck_written_ = 0;
  Time ck_fence_ = 0.0;            // written and read by PE 0 only
  std::uint64_t ck_committed_ = 0;  // ditto

  void write_checkpoint_image();

  // Stall watchdog / fail-fast diagnostics (see des/watchdog.hpp).
  WatchdogHeart wd_heart_;
  std::unique_ptr<PeBeacon[]> wd_beacons_;
};

}  // namespace hp::des
