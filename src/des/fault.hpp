#pragma once

// Deterministic fault injection for the Time Warp remote event path.
//
// A FaultPlan describes an adversarial delivery schedule the kernel applies
// to *remote* envelopes (the MPSC inbox path) without ever violating the
// per-producer FIFO contract the annihilation protocol depends on:
//
//   * delay      — hold a remote positive back for k GVT rounds before
//                  delivering it (it still participates in the GVT minimum,
//                  so nothing can commit past a held event);
//   * reorder    — deliver runs of consecutive remote positives in reverse
//                  arrival order, and randomly split one inbox drain into
//                  several (antis are never reordered past their positives);
//   * straggler  — delay positives whose timestamp is within `margin` of the
//                  current GVT horizon, manufacturing worst-case stragglers;
//   * dup-anti   — deliver a second copy of an anti-message one round late
//                  (the duplicate must annihilate nothing);
//   * stall      — one chosen PE processes no forward work for n GVT rounds
//                  starting at round `at` (it still meets every barrier).
//
// Fault decisions come from a per-PE util::ReversibleRng seeded from
// (plan seed, pe id) — completely separate streams from the model LP RNGs —
// so a chaos run is exactly reproducible and the *model's* event content is
// untouched: chaos perturbs delivery timing only, which Time Warp must (and
// provably does — that is the test) absorb without changing committed state.
//
// The plan is embedded by value in des::EngineConfig. When no fault kind is
// armed (`any()` is false) the kernel's remote path takes one predictable
// branch and nothing else.

#include <cstdint>
#include <string>
#include <string_view>

#include "des/time.hpp"

namespace hp::des {

struct FaultPlan {
  static constexpr std::uint32_t kNoStallPe = 0xffffffffu;

  // Seed for the per-PE chaos RNG streams (never the model streams).
  std::uint64_t seed = 1;

  // delay: each remote positive is held back `delay_rounds` GVT rounds with
  // probability `delay_prob`.
  double delay_prob = 0.0;
  std::uint32_t delay_rounds = 1;

  // reorder: each full run of consecutive remote positives in a drain is
  // delivered in reverse with probability `reorder_prob`; with the same
  // probability a drain stops early, splitting one batch into several.
  double reorder_prob = 0.0;

  // straggler: remote positives with ts <= gvt + straggler_margin are held
  // one round with probability `straggler_prob` (they arrive as stragglers
  // right at the horizon).
  double straggler_prob = 0.0;
  Time straggler_margin = 5.0;

  // dup-anti: each remote anti is re-delivered once, one round late, with
  // probability `dup_anti_prob`.
  double dup_anti_prob = 0.0;

  // stall: PE `stall_pe` executes no forward work for `stall_rounds` GVT
  // rounds starting at round `stall_at`.
  std::uint32_t stall_pe = kNoStallPe;
  std::uint64_t stall_at = 1;
  std::uint64_t stall_rounds = 0;

  bool any() const noexcept {
    return delay_prob > 0.0 || reorder_prob > 0.0 || straggler_prob > 0.0 ||
           dup_anti_prob > 0.0 || (stall_pe != kNoStallPe && stall_rounds > 0);
  }

  // Parses a `--chaos=` spec: semicolon-separated clauses, each
  // `kind[:key=value[,key=value...]]`.
  //
  //   delay:p=0.2,k=2 ; reorder:p=0.5 ; straggler:p=0.3,margin=5
  //   dup-anti:p=0.1 ; stall:pe=1,rounds=4,at=2 ; seed=42
  //
  // Returns false and fills `err` (never touching `out`) on malformed specs:
  // unknown clause/key, non-numeric value, probability outside [0,1],
  // k/rounds of 0. An empty spec is valid and yields a disarmed plan.
  static bool parse(std::string_view spec, FaultPlan& out, std::string& err);

  // Canonical spec round-trip (armed clauses only; "off" when disarmed).
  std::string to_string() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace hp::des
