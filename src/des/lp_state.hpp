#pragma once

// LP state base class (ROSS SV analogue). Lives in its own header because
// the event envelope holds a snapshot pointer (state-saving ablation mode)
// and needs the complete type.

#include <memory>

#include "util/macros.hpp"

namespace hp::util {
class ByteSink;
class ByteSource;
}  // namespace hp::util

namespace hp::des {

class LpState {
 public:
  virtual ~LpState() = default;

  // Deep copy, used only by the state-saving ablation mode. Models that
  // never run in that mode may keep the default (which aborts).
  virtual std::unique_ptr<LpState> clone() const {
    HP_ASSERT(false, "LpState::clone not implemented for this model");
    return nullptr;
  }

  // Deep equality, used by the engine's paranoid verification mode to check
  // that reverse handlers restore state exactly. Optional like clone().
  virtual bool equals(const LpState&) const {
    HP_ASSERT(false, "LpState::equals not implemented for this model");
    return false;
  }

  // Checkpoint codec: serialize must write every field that affects forward
  // execution or end-of-run statistics, and deserialize must restore them
  // bit-exactly (a restored run is required to finish bit-identical to the
  // uninterrupted one). Optional like clone() — models that never checkpoint
  // keep the aborting defaults.
  virtual void serialize(util::ByteSink&) const {
    HP_ASSERT(false, "LpState::serialize not implemented for this model");
  }
  virtual void deserialize(util::ByteSource&) {
    HP_ASSERT(false, "LpState::deserialize not implemented for this model");
  }
};

}  // namespace hp::des
