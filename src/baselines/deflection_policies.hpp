#pragma once

// Baseline deflection-routing policies for the comparison experiments
// (report Section 2 cites Bartzis et al. [5], which evaluates several
// hot-potato algorithms on 2-D arrays; these are the classic family).
// All run on the same bufferless-router substrate as the BHW policy.

#include "hotpotato/policy.hpp"

namespace hp::baselines {

// Plain greedy hot-potato: no priorities, route to any free good link,
// deflect uniformly otherwise. The simplest algorithm in the family and the
// natural control for the BHW priority machinery.
class GreedyPolicy final : public hotpotato::RoutingPolicy {
 public:
  const char* name() const noexcept override { return "greedy"; }
  double route_offset(const hotpotato::HpMsg&, std::uint32_t) const override {
    return 3.0;
  }
  hotpotato::RouteDecision route(const net::Grid& t,
                                 const hotpotato::HpMsg& m, std::uint32_t here,
                                 net::DirSet free,
                                 util::ReversibleRng& rng) const override;
};

// Dimension-order preference: every packet always wants its one-bend
// (row-then-column) link, like an XY-routed mesh; deflect when taken.
// Contrasts a single fixed preferred path with the greedy set.
class DimOrderPolicy final : public hotpotato::RoutingPolicy {
 public:
  const char* name() const noexcept override { return "dimorder"; }
  double route_offset(const hotpotato::HpMsg&, std::uint32_t) const override {
    return 3.0;
  }
  hotpotato::RouteDecision route(const net::Grid& t,
                                 const hotpotato::HpMsg& m, std::uint32_t here,
                                 net::DirSet free,
                                 util::ReversibleRng& rng) const override;
};

// Oldest-first: age-based priority, the classic livelock-avoidance scheme —
// older packets route earlier within the step and so win link conflicts.
// Greedy link choice.
class OldestFirstPolicy final : public hotpotato::RoutingPolicy {
 public:
  const char* name() const noexcept override { return "oldest_first"; }
  // Offset decays from ~4.5 toward 1 as the packet ages, so age wins
  // conflicts monotonically while staying inside the ROUTE window [1, 5).
  double route_offset(const hotpotato::HpMsg& m,
                      std::uint32_t step) const override {
    const double age =
        step >= m.birth_step ? static_cast<double>(step - m.birth_step) : 0.0;
    return 1.0 + 3.5 / (1.0 + age);
  }
  hotpotato::RouteDecision route(const net::Grid& t,
                                 const hotpotato::HpMsg& m, std::uint32_t here,
                                 net::DirSet free,
                                 util::ReversibleRng& rng) const override;
};

}  // namespace hp::baselines
