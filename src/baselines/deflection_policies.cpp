#include "baselines/deflection_policies.hpp"

namespace hp::baselines {

using hotpotato::HpMsg;
using hotpotato::RouteDecision;

namespace {

std::uint32_t dst_of(const net::Grid& t, const HpMsg& m) {
  return t.id_of({static_cast<std::int32_t>(m.dst_row),
                  static_cast<std::int32_t>(m.dst_col)});
}

RouteDecision greedy_route(const net::Grid& t, const HpMsg& m,
                           std::uint32_t here, net::DirSet free,
                           util::ReversibleRng& rng,
                           net::DirSet (*desired_of)(const net::Grid&,
                                                     std::uint32_t,
                                                     std::uint32_t)) {
  const std::uint32_t dst = dst_of(t, m);
  const net::DirSet good = t.good_dirs(here, dst);
  const net::DirSet desired = desired_of(t, here, dst);

  RouteDecision d;
  d.new_priority = m.prio;  // baselines keep the packet's priority fixed
  net::DirSet candidates;
  for (net::Dir dir : net::kAllDirs) {
    if (desired.contains(dir) && free.contains(dir)) candidates.add(dir);
  }
  if (!candidates.empty()) {
    d.dir = hotpotato::RoutingPolicy::pick_uniform(candidates, rng, d.rng_draws);
    d.deflected = false;
  } else {
    d.dir = hotpotato::RoutingPolicy::pick_deflection(good, free, rng,
                                                      d.rng_draws);
    d.deflected = true;
  }
  return d;
}

net::DirSet desired_good(const net::Grid& t, std::uint32_t here,
                         std::uint32_t dst) {
  return t.good_dirs(here, dst);
}

net::DirSet desired_home_run(const net::Grid& t, std::uint32_t here,
                             std::uint32_t dst) {
  net::DirSet s;
  if (here != dst) s.add(t.home_run_dir(here, dst));
  return s;
}

}  // namespace

RouteDecision GreedyPolicy::route(const net::Grid& t, const HpMsg& m,
                                  std::uint32_t here, net::DirSet free,
                                  util::ReversibleRng& rng) const {
  return greedy_route(t, m, here, free, rng, desired_good);
}

RouteDecision DimOrderPolicy::route(const net::Grid& t, const HpMsg& m,
                                    std::uint32_t here, net::DirSet free,
                                    util::ReversibleRng& rng) const {
  return greedy_route(t, m, here, free, rng, desired_home_run);
}

RouteDecision OldestFirstPolicy::route(const net::Grid& t, const HpMsg& m,
                                       std::uint32_t here, net::DirSet free,
                                       util::ReversibleRng& rng) const {
  return greedy_route(t, m, here, free, rng, desired_good);
}

}  // namespace hp::baselines
