#pragma once

// Chrome/Perfetto trace export. Each PE owns a TraceBuffer of phase spans
// (begin/end in steady-clock nanoseconds); at the end of the run the engine
// hands every buffer to write_chrome_trace, which emits the Trace Event
// Format JSON (`"X"` complete events, one track per PE, plus GVT counter
// events) that chrome://tracing and https://ui.perfetto.dev load directly.
//
// Recording is bounded: a buffer past its span budget drops (and counts)
// further spans instead of growing without limit.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace hp::obs {

struct TraceSpan {
  Phase phase;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

// Rollback-forensics flow event: an arrow from the offending send (on the
// offender PE's track) to the rollback it caused (on the victim's track),
// rendered as a Perfetto "s"/"f" flow pair bound to the enclosing slices.
struct TraceFlow {
  bool primary;             // straggler positive (true) vs anti-message
  std::uint64_t id;         // unique pair id within the trace
  std::uint32_t src_pe;     // offender track
  std::uint64_t send_ns;    // when the offending envelope was staged
  std::uint32_t dst_pe;     // victim track
  std::uint64_t rollback_ns;  // inside the victim's Rollback span
};

class TraceBuffer {
 public:
  void reset(std::uint32_t max_spans) {
    max_spans_ = max_spans;
    spans_.clear();
    flows_.clear();
    dropped_ = 0;
  }

  void add(Phase phase, std::uint64_t begin_ns, std::uint64_t end_ns) {
    if (spans_.size() < max_spans_) {
      spans_.push_back({phase, begin_ns, end_ns});
    } else {
      ++dropped_;
    }
  }

  // Flow events share the per-PE span budget (they are bounded by the same
  // cap; overflow counts into dropped()).
  void add_flow(const TraceFlow& f) {
    if (flows_.size() < max_spans_) {
      flows_.push_back(f);
    } else {
      ++dropped_;
    }
  }

  const std::vector<TraceSpan>& spans() const noexcept { return spans_; }
  const std::vector<TraceFlow>& flows() const noexcept { return flows_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::uint32_t max_spans_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceSpan> spans_;
  std::vector<TraceFlow> flows_;
};

struct ChromeTraceStats {
  std::uint64_t spans = 0;
  std::uint64_t flows = 0;  // flow *pairs* written (two events each)
};

// Write all PE buffers as one trace.json. `epoch_ns` is the run-start
// timestamp spans are made relative to; `gvt_series` (may be empty) is
// rendered as "gvt" / "commit_yield" counter tracks using round-end span
// times when available. Returns the number of spans / flow pairs written.
ChromeTraceStats write_chrome_trace(
    const std::string& path, std::uint64_t epoch_ns,
    const std::vector<const TraceBuffer*>& pes,
    const std::vector<GvtRoundSample>& gvt_series);

}  // namespace hp::obs
