#pragma once

// Rollback forensics: causality attribution for the Time Warp kernel.
//
// Every rollback episode is classified by its proximate cause —
//   * Primary:   a straggler positive event arrived behind the KP's
//                processed frontier;
//   * Secondary: an anti-message (or a synchronous local cancellation)
//                annihilated an already-processed event — i.e. the episode
//                was *induced* by another rollback,
// and tagged with the offending source KP/PE, its depth (events undone) and
// its cascade chain length (1 = the straggler itself, 2 = a rollback its
// antis caused, ...). RollbackForensics accumulates the per-KP heatmaps and
// the bounded cascade-length histogram; the scalar tallies (episode and
// event counts per kind, max depth/cascade) live in obs::PeMetrics so they
// flow through the ordinary table-driven obs::reduce.
//
// Everything here is plain arithmetic — no clock reads — and recording is a
// no-op when ObsConfig::forensics is off, so attribution fully off costs
// nothing and committed results are bit-identical either way.

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace hp::util {
class JsonWriter;
}

namespace hp::obs {

enum class RollbackKind : std::uint8_t { Primary, Secondary };

// Attribution of one rollback episode, built by the kernel at the point the
// rollback fires.
struct RollbackCause {
  RollbackKind kind = RollbackKind::Primary;
  std::uint32_t offender_kp = 0;  // KP whose send/cancellation triggered it
  std::uint32_t offender_pe = 0;  // PE owning that KP
  // Cascade chain length: primaries are 1; an episode induced by another
  // episode's anti-messages is that episode's cascade + 1. Lazy
  // cancellations deferred to re-execution restart the chain at 1.
  std::uint32_t cascade = 1;
  // Wall-clock stamp of the offending send (0 when tracing stamps are off
  // or the offender was local); pairs the trace.json flow event.
  std::uint64_t send_wall_ns = 0;
};

class RollbackForensics {
 public:
  // Cascade-length histogram bins: chain lengths 1..kCascadeBins-1, last bin
  // collects everything longer (bounded regardless of cascade depth).
  static constexpr std::size_t kCascadeBins = 16;

  void reset(std::uint32_t num_kps, bool enabled) {
    enabled_ = enabled;
    cascade_hist_.fill(0);
    kp_victim_events_.assign(enabled ? num_kps : 0, 0);
    kp_victim_episodes_.assign(enabled ? num_kps : 0, 0);
    kp_offender_events_.assign(enabled ? num_kps : 0, 0);
  }

  void record(const RollbackCause& cause, std::uint32_t victim_kp,
              std::uint64_t events_undone) noexcept {
    if (!enabled_) return;
    const std::size_t chain = cause.cascade == 0 ? 1 : cause.cascade;
    ++cascade_hist_[std::min(chain, kCascadeBins) - 1];
    kp_victim_events_[victim_kp] += events_undone;
    ++kp_victim_episodes_[victim_kp];
    kp_offender_events_[cause.offender_kp] += events_undone;
  }

  // Fold another PE's accumulator into this one (adopts the KP shape when
  // this side is still empty).
  void merge(const RollbackForensics& o);

  bool enabled() const noexcept { return enabled_; }
  bool empty() const noexcept;

  const std::array<std::uint64_t, kCascadeBins>& cascade_hist() const noexcept {
    return cascade_hist_;
  }
  const std::vector<std::uint64_t>& kp_victim_events() const noexcept {
    return kp_victim_events_;
  }
  const std::vector<std::uint64_t>& kp_victim_episodes() const noexcept {
    return kp_victim_episodes_;
  }
  const std::vector<std::uint64_t>& kp_offender_events() const noexcept {
    return kp_offender_events_;
  }

  std::uint64_t victim_events_total() const noexcept;
  std::uint64_t episodes_total() const noexcept;

  // (kp, events undone on its account); events == 0 when nothing recorded.
  std::pair<std::uint32_t, std::uint64_t> top_offender() const noexcept;

  // {"cascade_hist":[...], "kp_victim_events":[...], ...}
  void write_json(util::JsonWriter& w) const;

  bool operator==(const RollbackForensics&) const = default;

 private:
  bool enabled_ = false;
  std::array<std::uint64_t, kCascadeBins> cascade_hist_{};
  std::vector<std::uint64_t> kp_victim_events_;    // events undone, by victim KP
  std::vector<std::uint64_t> kp_victim_episodes_;  // episodes, by victim KP
  std::vector<std::uint64_t> kp_offender_events_;  // events undone, by offender
};

}  // namespace hp::obs
