#include "obs/trace.hpp"

#include <fstream>

#include "util/json_writer.hpp"
#include "util/macros.hpp"

namespace hp::obs {

ChromeTraceStats write_chrome_trace(
    const std::string& path, std::uint64_t epoch_ns,
    const std::vector<const TraceBuffer*>& pes,
    const std::vector<GvtRoundSample>& gvt_series) {
  std::ofstream f(path);
  HP_ASSERT(f.good(), "cannot open trace file %s", path.c_str());
  util::JsonWriter w(f);
  ChromeTraceStats written;

  const auto rel_us = [epoch_ns](std::uint64_t ns) {
    return static_cast<double>(ns - epoch_ns) * 1e-3;
  };

  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (std::size_t pe = 0; pe < pes.size(); ++pe) {
    // Track naming metadata so Perfetto shows "PE n" instead of bare tids.
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", std::uint64_t{0});
    w.kv("tid", static_cast<std::uint64_t>(pe));
    w.key("args").begin_object();
    w.kv("name", "PE " + std::to_string(pe));
    w.end_object();
    w.end_object();
    for (const TraceSpan& s : pes[pe]->spans()) {
      w.begin_object();
      w.kv("name", phase_name(s.phase));
      w.kv("cat", "kernel");
      w.kv("ph", "X");
      w.kv("ts", rel_us(s.begin_ns));
      w.kv("dur", static_cast<double>(s.end_ns - s.begin_ns) * 1e-3);
      w.kv("pid", std::uint64_t{0});
      w.kv("tid", static_cast<std::uint64_t>(pe));
      w.end_object();
      ++written.spans;
    }
    // Rollback-causality arrows: a flow start on the offender's track at the
    // send instant, finished (binding point "e" = enclosing slice) inside
    // the victim's Rollback span. Perfetto draws these as arrows from the
    // straggler/anti send to the rollback it caused.
    for (const TraceFlow& fl : pes[pe]->flows()) {
      const char* name = fl.primary ? "straggler" : "anti_cascade";
      w.begin_object();
      w.kv("name", name);
      w.kv("cat", "rollback");
      w.kv("ph", "s");
      w.kv("id", fl.id);
      w.kv("ts", rel_us(fl.send_ns));
      w.kv("pid", std::uint64_t{0});
      w.kv("tid", static_cast<std::uint64_t>(fl.src_pe));
      w.end_object();
      w.begin_object();
      w.kv("name", name);
      w.kv("cat", "rollback");
      w.kv("ph", "f");
      w.kv("bp", "e");
      w.kv("id", fl.id);
      w.kv("ts", rel_us(fl.rollback_ns));
      w.kv("pid", std::uint64_t{0});
      w.kv("tid", static_cast<std::uint64_t>(fl.dst_pe));
      w.end_object();
      ++written.flows;
    }
  }
  // GVT progress and commit yield as counter tracks.
  for (const GvtRoundSample& s : gvt_series) {
    w.begin_object();
    w.kv("name", "gvt");
    w.kv("ph", "C");
    w.kv("ts", static_cast<double>(s.t_ns) * 1e-3);  // already run-relative
    w.kv("pid", std::uint64_t{0});
    w.key("args").begin_object();
    w.kv("gvt", s.gvt);
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("name", "commit_yield");
    w.kv("ph", "C");
    w.kv("ts", static_cast<double>(s.t_ns) * 1e-3);
    w.kv("pid", std::uint64_t{0});
    w.key("args").begin_object();
    w.kv("yield", s.commit_yield());
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return written;
}

}  // namespace hp::obs
