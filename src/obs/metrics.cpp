#include "obs/metrics.hpp"

#include "util/json_writer.hpp"

namespace hp::obs {

PeMetrics reduce(const std::vector<PeMetrics>& per_pe) {
  PeMetrics out;
  for (const PeMetrics& pe : per_pe) {
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      switch (kCounterDefs[c].reduce) {
        case Reduce::Sum: out.counters[c] += pe.counters[c]; break;
        case Reduce::Max:
          out.counters[c] = std::max(out.counters[c], pe.counters[c]);
          break;
      }
    }
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      out.phase_ns[p] += pe.phase_ns[p];
    }
  }
  return out;
}

namespace {

void write_pe_metrics(util::JsonWriter& w, const PeMetrics& m) {
  w.begin_object();
  w.key("counters").begin_object();
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    w.kv(kCounterDefs[c].name, m.counters[c]);
  }
  w.end_object();
  w.key("phase_seconds").begin_object();
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    w.kv(phase_name(static_cast<Phase>(p)),
         static_cast<double>(m.phase_ns[p]) * 1e-9);
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void MetricsReport::write_json(util::JsonWriter& w) const {
  w.begin_object();
  w.kv("wall_seconds", wall_seconds);
  w.kv("final_gvt", final_gvt);
  w.kv("gvt_rounds", gvt_rounds);
  if (trace_spans > 0 || trace_spans_dropped > 0) {
    w.kv("trace_spans", trace_spans);
    w.kv("trace_spans_dropped", trace_spans_dropped);
    w.kv("trace_flows", trace_flows);
  }
  if (monitor_lines > 0) w.kv("monitor_lines", monitor_lines);
  if (telemetry) {
    w.key("latency").begin_object();
    for (std::size_t m = 0; m < kNumLatencyMetrics; ++m) {
      const LatencyHistogram& h = latency[m];
      w.key(latency_metric_name(static_cast<LatencyMetric>(m)))
          .begin_object();
      w.kv("count", h.count());
      w.kv("sum_ns", h.sum_ns());
      w.kv("max_ns", h.max_ns());
      w.kv("p50", h.quantile_ns(0.50));
      w.kv("p90", h.quantile_ns(0.90));
      w.kv("p99", h.quantile_ns(0.99));
      w.kv("p999", h.quantile_ns(0.999));
      w.end_object();
    }
    w.end_object();
  }
  if (!forensics.empty()) {
    w.key("forensics");
    forensics.write_json(w);
  }
  w.key("total");
  write_pe_metrics(w, total);
  w.key("per_pe").begin_array();
  for (const PeMetrics& pe : per_pe) write_pe_metrics(w, pe);
  w.end_array();
  w.key("gvt_series").begin_array();
  for (const GvtRoundSample& s : gvt_series) {
    w.begin_object();
    w.kv("round", s.round);
    w.kv("t_seconds", static_cast<double>(s.t_ns) * 1e-9);
    w.kv("gvt", s.gvt);
    w.kv("processed", s.processed);
    w.kv("committed", s.committed);
    w.kv("commit_yield", s.commit_yield());
    w.kv("inbox_depth", s.inbox_depth);
    w.kv("pool_envelopes", s.pool_envelopes);
    w.kv("pool_live", s.pool_live);
    w.kv("pool_bytes", s.pool_bytes);
    w.kv("migrations", s.migrations);
    w.kv("epoch_dur_ns", s.epoch_dur_ns);
    w.kv("in_flight", s.in_flight);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace hp::obs
