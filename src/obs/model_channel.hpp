#pragma once

// obs::ModelChannel — the model-metrics registration channel.
//
// Models publish named counters, real-valued sums, running maxima and
// histograms through one small API instead of hand-rolling a parallel
// aggregation path next to the kernel's obs::MetricsReport. A metric is
// registered once by name (registration is idempotent: the same name returns
// the same id, so per-LP publish loops can share one registration), then fed
// through add / add_real / push_max / merge_hist. The channel renders itself
// through the same JSON pipeline the kernel metrics use (bench --json,
// scripts/check_bench_json.py).
//
// Determinism contract: the channel performs no reordering — values fold in
// call order. A model that publishes per-LP statistics in ascending LP order
// gets bit-identical double sums on every kernel and PE count, which is what
// makes operator== usable as a repeatability check (hotpotato's Attachment 3
// harness compares whole channels across engine kinds).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"

namespace hp::util {
class JsonWriter;
}

namespace hp::obs {

class ModelChannel {
 public:
  enum class Kind : std::uint8_t { Counter, Real, RealMax, Hist };

  struct Id {
    std::uint32_t idx = UINT32_MAX;
    bool valid() const noexcept { return idx != UINT32_MAX; }
  };

  // Registration: returns the metric's id, creating it on first use.
  // Re-registering an existing name with a different kind aborts.
  Id counter(std::string_view name) { return intern(name, Kind::Counter); }
  Id real(std::string_view name) { return intern(name, Kind::Real); }
  Id real_max(std::string_view name) { return intern(name, Kind::RealMax); }
  Id hist(std::string_view name) { return intern(name, Kind::Hist); }

  // Publication.
  void add(Id id, std::uint64_t delta = 1);
  void add_real(Id id, double delta);
  void push_max(Id id, double x);
  void merge_hist(Id id, const util::Histogram& h);

  // Readback (by id or by name; name lookups return zero/null when absent).
  std::uint64_t counter_value(Id id) const;
  double real_value(Id id) const;  // RealMax with no sample reads as 0.0
  const util::Histogram* hist_value(Id id) const;
  std::uint64_t counter_value(std::string_view name) const;
  double real_value(std::string_view name) const;
  const util::Histogram* hist_value(std::string_view name) const;

  std::size_t size() const noexcept { return metrics_.size(); }
  bool empty() const noexcept { return metrics_.empty(); }

  // [{"name":..., "kind":..., "value":...}, ...] in registration order.
  void write_json(util::JsonWriter& w) const;

  // Exact comparison (integers and doubles bit-for-bit) — the repeatability
  // check models run across kernels.
  bool operator==(const ModelChannel&) const = default;

 private:
  struct Metric {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t u = 0;       // Counter
    double d = 0.0;            // Real sum / RealMax value
    bool any = false;          // RealMax: ever pushed?
    util::Histogram h;         // Hist
    bool operator==(const Metric&) const = default;
  };

  Id intern(std::string_view name, Kind kind);
  Metric& at(Id id);
  const Metric& at(Id id) const;
  const Metric* find(std::string_view name) const noexcept;

  std::vector<Metric> metrics_;
};

}  // namespace hp::obs
