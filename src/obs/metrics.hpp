#pragma once

// Kernel observability: the unified metrics vocabulary shared by all three
// DES kernels (DESIGN.md "Observability layer").
//
//   * Phase      — where a PE's wall time goes (the report's Figs. 5-8 are
//                  all questions about this breakdown).
//   * Counter    — every event-level statistic the kernels report, as a
//                  named id with a declared reduction (sum or max), so the
//                  per-PE -> aggregate fold is one table-driven loop instead
//                  of a hand-written summing loop per engine.
//   * PeMetrics  — one PE's counters + per-phase nanoseconds.
//   * GvtRoundSample / GvtSeriesRing — the bounded per-GVT-round time
//                  series (GVT value, commit yield, inbox depth, envelope
//                  pool size).
//   * MetricsReport — the structured result every kernel returns: reduced
//                  totals, per-PE breakdown, GVT series, wall time; knows
//                  how to dump itself as JSON.
//
// Everything here is passive bookkeeping: metrics never influence event
// order, so committed results are bit-identical with observability on, off,
// or partially enabled.

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/forensics.hpp"
#include "obs/latency.hpp"

namespace hp::util {
class JsonWriter;
}

namespace hp::obs {

// ---------------------------------------------------------------------------
// Phase taxonomy

enum class Phase : std::uint8_t {
  Forward,     // model forward handlers + event scheduling
  Rollback,    // undoing events, cancelling/annihilating children
  GvtBarrier,  // GVT round barriers + minima exchange
  Fossil,      // committing + reclaiming the stable prefix
  InboxDrain,  // popping the MPSC inbox, delivering remote events
  Idle,        // no executable work (window closed / starved / spinning)
  Throttled,   // optimism flow control capping this PE (soft/hard watermark)
  Migrate,     // KP migration handoff: quiescence drain + state transfer
  Checkpoint,  // checkpoint fence rollback, quiescence and serialization
  GvtEpoch,    // epoch-GVT cut publication + close bookkeeping (no barriers)
  kCount
};
inline constexpr std::size_t kNumPhases = static_cast<std::size_t>(Phase::kCount);

constexpr const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::Forward: return "forward";
    case Phase::Rollback: return "rollback";
    case Phase::GvtBarrier: return "gvt_barrier";
    case Phase::Fossil: return "fossil";
    case Phase::InboxDrain: return "inbox_drain";
    case Phase::Idle: return "idle";
    case Phase::Throttled: return "throttled";
    case Phase::Migrate: return "migrate";
    case Phase::Checkpoint: return "checkpoint";
    case Phase::GvtEpoch: return "gvt_epoch";
    case Phase::kCount: break;
  }
  // Unreachable for valid enumerators; a new phase without a case above is a
  // compile error in the constant-evaluated coverage test (tests/test_obs).
  __builtin_unreachable();
}

// ---------------------------------------------------------------------------
// Named counters

enum class Counter : std::uint8_t {
  Processed,           // forward executions incl. re-execution
  Committed,           // events that survived to commit
  RolledBack,          // events undone
  PrimaryRollbacks,    // rollback episodes caused by a straggler positive
  SecondaryRollbacks,  // episodes induced by an anti-message / cancellation
  PrimaryRollbackEvents,    // events undone across primary episodes
  SecondaryRollbackEvents,  // events undone across secondary episodes
  MaxRollbackDepth,    // deepest single episode, events undone (max-reduced)
  MaxCascadeDepth,     // longest cascade chain observed (max-reduced)
  AntiMessages,        // remote cancellations sent
  LazyReused,          // children reused by lazy cancellation
  PoolEnvelopes,       // event envelope storage capacity (high-water mark)
  PoolLiveEnvelopes,   // outstanding envelopes at end of run (true pressure)
  PoolPeakLive,        // peak outstanding envelopes on one PE (max-reduced)
  PoolSlabs,           // slabs backing the envelope pool (kSlabEnvelopes each)
  PoolBytes,           // bytes of slab storage owned by the envelope pool
  InboxBatches,        // chain pushes into peer inboxes
  InboxBatchedItems,   // envelopes across those batches
  MaxInboxBatch,       // largest single batch (reduced by max)
  GvtProgressTriggers, // GVT requests: interval reached
  GvtIdleTriggers,     // GVT requests: idle backoff
  GvtPoolTriggers,     // GVT requests: hard pool watermark forced a round
  IdleSpins,           // loop iterations with no work
  ThrottleEntries,     // optimism flow control: Open -> Throttled transitions
  ThrottleExits,       // optimism flow control: Throttled -> Open transitions
  HardBlocks,          // optimism flow control: hard watermark blocks
  ChaosDelayedEvents,  // fault injection: envelopes held back k GVT rounds
  ChaosStragglers,     // fault injection: synthetic stragglers near the horizon
  ChaosReorderedEvents,// fault injection: envelopes delivered out of order
  ChaosDupAntis,       // fault injection: duplicated anti-message deliveries
  ChaosStaleAntis,     // antis that found no positive (chaos runs only)
  ChaosStallRounds,    // fault injection: GVT rounds spent stalled
  Migrations,          // KP moves received by this PE (dynamic balancing)
  MigratedEvents,      // live envelopes handed over across those moves
  MigrationRounds,     // GVT rounds that executed a migration handoff
  TelemetryDropped,    // latency samples dropped on telemetry-ring overflow
  Checkpoints,         // checkpoint images written (PE 0 / sequential only)
  GvtEpochCloses,      // epoch-GVT: epochs closed (== gvt rounds in epoch mode)
  GvtEpochInflightPeak,// epoch-GVT: peak unmatched sends seen at a close poll
  kCount
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

enum class Reduce : std::uint8_t { Sum, Max };

struct CounterDef {
  const char* name;
  Reduce reduce;
};

inline constexpr std::array<CounterDef, kNumCounters> kCounterDefs{{
    {"processed_events", Reduce::Sum},
    {"committed_events", Reduce::Sum},
    {"rolled_back_events", Reduce::Sum},
    {"primary_rollbacks", Reduce::Sum},
    {"secondary_rollbacks", Reduce::Sum},
    {"primary_rollback_events", Reduce::Sum},
    {"secondary_rollback_events", Reduce::Sum},
    {"max_rollback_depth", Reduce::Max},
    {"max_cascade_depth", Reduce::Max},
    {"anti_messages", Reduce::Sum},
    {"lazy_reused", Reduce::Sum},
    {"pool_envelopes", Reduce::Sum},
    {"pool_live_envelopes", Reduce::Sum},
    {"pool_peak_live_envelopes", Reduce::Max},
    {"pool_slabs", Reduce::Sum},
    {"pool_bytes", Reduce::Sum},
    {"inbox_batches", Reduce::Sum},
    {"inbox_batched_items", Reduce::Sum},
    {"max_inbox_batch", Reduce::Max},
    {"gvt_progress_triggers", Reduce::Sum},
    {"gvt_idle_triggers", Reduce::Sum},
    {"gvt_pool_triggers", Reduce::Sum},
    {"idle_spins", Reduce::Sum},
    {"throttle_entries", Reduce::Sum},
    {"throttle_exits", Reduce::Sum},
    {"hard_blocks", Reduce::Sum},
    {"chaos_delayed_events", Reduce::Sum},
    {"chaos_stragglers", Reduce::Sum},
    {"chaos_reordered_events", Reduce::Sum},
    {"chaos_dup_antis", Reduce::Sum},
    {"chaos_stale_antis", Reduce::Sum},
    {"chaos_stall_rounds", Reduce::Sum},
    {"kp_migrations", Reduce::Sum},
    {"migrated_events", Reduce::Sum},
    {"migration_rounds", Reduce::Sum},
    {"telemetry_dropped", Reduce::Sum},
    {"checkpoints_written", Reduce::Sum},
    {"gvt_epochs_closed", Reduce::Sum},
    {"gvt_epoch_inflight_peak", Reduce::Max},
}};

constexpr const char* counter_name(Counter c) noexcept {
  return kCounterDefs[static_cast<std::size_t>(c)].name;
}

// ---------------------------------------------------------------------------
// Per-PE metrics

struct PeMetrics {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumPhases> phase_ns{};

  std::uint64_t& at(Counter c) noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t at(Counter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t& ns(Phase p) noexcept {
    return phase_ns[static_cast<std::size_t>(p)];
  }
  std::uint64_t ns(Phase p) const noexcept {
    return phase_ns[static_cast<std::size_t>(p)];
  }
  std::uint64_t total_phase_ns() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t v : phase_ns) t += v;
    return t;
  }

  // Named read accessors (the historical PeRunStats field vocabulary).
  std::uint64_t processed_events() const noexcept { return at(Counter::Processed); }
  std::uint64_t committed_events() const noexcept { return at(Counter::Committed); }
  std::uint64_t rolled_back_events() const noexcept { return at(Counter::RolledBack); }
  std::uint64_t primary_rollbacks() const noexcept { return at(Counter::PrimaryRollbacks); }
  std::uint64_t secondary_rollbacks() const noexcept { return at(Counter::SecondaryRollbacks); }
  std::uint64_t primary_rollback_events() const noexcept { return at(Counter::PrimaryRollbackEvents); }
  std::uint64_t secondary_rollback_events() const noexcept { return at(Counter::SecondaryRollbackEvents); }
  std::uint64_t max_rollback_depth() const noexcept { return at(Counter::MaxRollbackDepth); }
  std::uint64_t max_cascade_depth() const noexcept { return at(Counter::MaxCascadeDepth); }
  std::uint64_t anti_messages() const noexcept { return at(Counter::AntiMessages); }
  std::uint64_t lazy_reused() const noexcept { return at(Counter::LazyReused); }
  std::uint64_t pool_envelopes() const noexcept { return at(Counter::PoolEnvelopes); }
  std::uint64_t pool_live_envelopes() const noexcept { return at(Counter::PoolLiveEnvelopes); }
  std::uint64_t pool_peak_live() const noexcept { return at(Counter::PoolPeakLive); }
  std::uint64_t pool_slabs() const noexcept { return at(Counter::PoolSlabs); }
  std::uint64_t pool_bytes() const noexcept { return at(Counter::PoolBytes); }
  std::uint64_t inbox_batches() const noexcept { return at(Counter::InboxBatches); }
  std::uint64_t inbox_batched_items() const noexcept { return at(Counter::InboxBatchedItems); }
  std::uint64_t max_inbox_batch() const noexcept { return at(Counter::MaxInboxBatch); }
  std::uint64_t gvt_progress_triggers() const noexcept { return at(Counter::GvtProgressTriggers); }
  std::uint64_t gvt_idle_triggers() const noexcept { return at(Counter::GvtIdleTriggers); }
  std::uint64_t gvt_pool_triggers() const noexcept { return at(Counter::GvtPoolTriggers); }
  std::uint64_t idle_spins() const noexcept { return at(Counter::IdleSpins); }
  std::uint64_t throttle_entries() const noexcept { return at(Counter::ThrottleEntries); }
  std::uint64_t throttle_exits() const noexcept { return at(Counter::ThrottleExits); }
  std::uint64_t hard_blocks() const noexcept { return at(Counter::HardBlocks); }
  std::uint64_t kp_migrations() const noexcept { return at(Counter::Migrations); }
  std::uint64_t migrated_events() const noexcept { return at(Counter::MigratedEvents); }
  std::uint64_t migration_rounds() const noexcept { return at(Counter::MigrationRounds); }
  std::uint64_t telemetry_dropped() const noexcept { return at(Counter::TelemetryDropped); }
  std::uint64_t checkpoints_written() const noexcept { return at(Counter::Checkpoints); }
  std::uint64_t gvt_epochs_closed() const noexcept { return at(Counter::GvtEpochCloses); }
  std::uint64_t gvt_epoch_inflight_peak() const noexcept { return at(Counter::GvtEpochInflightPeak); }

  bool operator==(const PeMetrics&) const = default;
};

// The single per-PE -> aggregate reduction: table-driven over kCounterDefs
// (sum or max per counter), phase times summed.
PeMetrics reduce(const std::vector<PeMetrics>& per_pe);

// ---------------------------------------------------------------------------
// GVT-round time series

struct GvtRoundSample {
  std::uint64_t round = 0;          // 0-based GVT round index
  std::uint64_t t_ns = 0;           // wall time of the round, ns since run start
  double gvt = 0.0;                 // the global minimum this round agreed on
  std::uint64_t processed = 0;      // forward executions since the last round
  std::uint64_t committed = 0;      // events fossil-committed this round
  std::uint64_t inbox_depth = 0;    // envelopes seen in inboxes at barrier B
  std::uint64_t pool_envelopes = 0; // envelope storage capacity so far
  std::uint64_t pool_live = 0;      // outstanding envelopes at this round
  std::uint64_t migrations = 0;     // KP moves executed this round
  std::uint64_t pool_bytes = 0;     // slab bytes owned by the pool(s)
  // Epoch-GVT extras (0 in barrier mode). Appended last: samples are
  // positionally aggregate-initialized at the kernels' push sites.
  std::uint64_t epoch_dur_ns = 0;   // wall time this epoch stayed open
  std::uint64_t in_flight = 0;      // peak unmatched sends during the epoch

  // Fraction of the round's optimism that survived; can exceed 1 when older
  // optimistic work finally commits.
  double commit_yield() const noexcept {
    return processed > 0
               ? static_cast<double>(committed) / static_cast<double>(processed)
               : 1.0;
  }
  bool operator==(const GvtRoundSample&) const = default;
};

// Bounded ring of the most recent GVT rounds. capacity == 0 disables
// retention (pushes only count).
class GvtSeriesRing {
 public:
  GvtSeriesRing() = default;
  explicit GvtSeriesRing(std::uint32_t capacity) { reset(capacity); }

  void reset(std::uint32_t capacity) {
    cap_ = capacity;
    buf_.clear();
    buf_.reserve(std::min<std::uint32_t>(capacity, 1024));
    pushed_ = 0;
  }

  void push(const GvtRoundSample& s) {
    if (cap_ > 0) {
      if (buf_.size() < cap_) {
        buf_.push_back(s);
      } else {
        buf_[static_cast<std::size_t>(pushed_ % cap_)] = s;
      }
    }
    ++pushed_;
  }

  std::uint64_t total_pushed() const noexcept { return pushed_; }
  std::uint32_t capacity() const noexcept { return cap_; }
  std::size_t size() const noexcept { return buf_.size(); }

  // Oldest-first copy of the retained window.
  std::vector<GvtRoundSample> snapshot() const {
    std::vector<GvtRoundSample> out;
    out.reserve(buf_.size());
    if (cap_ == 0 || buf_.empty()) return out;
    const std::size_t start =
        buf_.size() < cap_ ? 0 : static_cast<std::size_t>(pushed_ % cap_);
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      out.push_back(buf_[(start + i) % buf_.size()]);
    }
    return out;
  }

 private:
  std::uint32_t cap_ = 0;
  std::uint64_t pushed_ = 0;
  std::vector<GvtRoundSample> buf_;
};

// ---------------------------------------------------------------------------
// Observability configuration (embedded in des::EngineConfig)

struct ObsConfig {
  // Per-phase wall-time accounting. Clock reads happen only on phase
  // *transitions* (a batch of forward executions is one transition pair),
  // so the steady-state overhead is a compare+branch per scheduler action.
  bool phase_timers = true;
  // GVT rounds retained in the per-run time series ring; 0 disables.
  std::uint32_t gvt_series_capacity = 4096;
  // Chrome/Perfetto trace.json export of per-PE phase spans. Off by
  // default; when off the only cost is one predictable branch per phase
  // transition.
  bool trace = false;
  std::string trace_path = "trace.json";
  // Span budget per PE; beyond it spans are dropped (and counted) so a long
  // run cannot exhaust memory. Rollback-forensics flow events share the same
  // per-PE budget.
  std::uint32_t max_trace_spans_per_pe = 1u << 20;
  // Rollback forensics (Time Warp only): per-KP victim/offender heatmaps,
  // the cascade-length histogram, and — when tracing too — trace.json flow
  // events linking an offending send to the rollback it caused. The scalar
  // attribution counters (primary/secondary episodes and events, max
  // depth/cascade) are plain arithmetic and stay on regardless; this flag
  // gates the heatmap vectors and the send timestamping, so fully off costs
  // zero clock reads. Pure bookkeeping either way — committed results are
  // bit-identical at any setting.
  bool forensics = true;
  // Live run monitor (Time Warp only; the other kernels accept and ignore
  // it): one JSON-lines record to `monitor_path` (empty = stderr) every
  // `monitor_interval` GVT rounds. See obs/monitor.hpp.
  bool monitor = false;
  std::uint32_t monitor_interval = 1;
  std::string monitor_path;
  // Latency telemetry (all kernels): wall-clock event-lifecycle latencies
  // recorded into per-PE lock-free SPSC rings, drained by a background
  // collector thread into HDR histograms (obs/telemetry.hpp). Off by
  // default — fully off costs zero clock reads on the hot path. On, the
  // recorded wall-clock values feed histograms only, never event order, so
  // committed results stay bit-identical (the determinism_check contract).
  bool telemetry = false;
  // Samples per PE ring, rounded up to a power of two. On overflow the hot
  // path drops the sample and bumps Counter::TelemetryDropped instead of
  // blocking on the collector.
  std::uint32_t telemetry_ring_capacity = 1u << 15;
  // Live Prometheus-text exposition: "<port>" serves HTTP on
  // 127.0.0.1:<port>, "unix:<path>" on a unix socket; empty = no listener.
  // Setting it implies telemetry.
  std::string metrics_endpoint;
  // Periodic Prometheus-text dump (atomic rewrite every metrics_flush_ms)
  // for socket-less CI, plus a final dump at end of run. Implies telemetry.
  std::string metrics_out;
  std::uint32_t metrics_flush_ms = 500;

  // The effective gate the kernels check: the exposition flags switch
  // telemetry on even when the bool was left false.
  bool telemetry_enabled() const noexcept {
    return telemetry || !metrics_endpoint.empty() || !metrics_out.empty();
  }
};

// ---------------------------------------------------------------------------
// The structured run report

struct MetricsReport {
  PeMetrics total;                    // reduce(per_pe), or direct (sequential)
  std::vector<PeMetrics> per_pe;      // empty for the sequential kernel
  std::vector<GvtRoundSample> gvt_series;  // oldest-first retained window
  std::uint64_t gvt_rounds = 0;       // total rounds (>= gvt_series.size())
  std::uint64_t trace_spans = 0;      // spans written to trace.json (0 = off)
  std::uint64_t trace_spans_dropped = 0;
  std::uint64_t trace_flows = 0;      // rollback flow events written
  std::uint64_t monitor_lines = 0;    // JSON-lines records emitted (0 = off)
  double wall_seconds = 0.0;
  double final_gvt = 0.0;
  // Merged rollback-forensics heatmaps (empty unless the Time Warp kernel
  // ran with ObsConfig::forensics on).
  RollbackForensics forensics;
  // Latency telemetry: aggregate HDR histograms per lifecycle metric,
  // folded from the per-PE histograms in ascending-PE order. `telemetry`
  // is true iff the run collected them (gates the JSON latency block).
  bool telemetry = false;
  std::array<LatencyHistogram, kNumLatencyMetrics> latency{};
  const LatencyHistogram& latency_hist(LatencyMetric m) const noexcept {
    return latency[static_cast<std::size_t>(m)];
  }

  // Recompute totals from the per-PE breakdown (no-op when per_pe is empty,
  // i.e. the kernel filled `total` directly).
  void finalize() {
    if (!per_pe.empty()) total = reduce(per_pe);
  }

  // Full structured dump: counters, per-phase seconds (totals and per PE),
  // and the GVT-round series.
  void write_json(util::JsonWriter& w) const;
};

}  // namespace hp::obs
