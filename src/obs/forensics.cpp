#include "obs/forensics.hpp"

#include <algorithm>

#include "util/json_writer.hpp"
#include "util/macros.hpp"

namespace hp::obs {

void RollbackForensics::merge(const RollbackForensics& o) {
  for (std::size_t i = 0; i < kCascadeBins; ++i) {
    cascade_hist_[i] += o.cascade_hist_[i];
  }
  if (o.kp_victim_events_.empty()) return;
  if (kp_victim_events_.empty()) {
    enabled_ = enabled_ || o.enabled_;
    kp_victim_events_ = o.kp_victim_events_;
    kp_victim_episodes_ = o.kp_victim_episodes_;
    kp_offender_events_ = o.kp_offender_events_;
    return;
  }
  HP_ASSERT(kp_victim_events_.size() == o.kp_victim_events_.size(),
            "RollbackForensics::merge KP count mismatch (%zu vs %zu)",
            kp_victim_events_.size(), o.kp_victim_events_.size());
  for (std::size_t k = 0; k < kp_victim_events_.size(); ++k) {
    kp_victim_events_[k] += o.kp_victim_events_[k];
    kp_victim_episodes_[k] += o.kp_victim_episodes_[k];
    kp_offender_events_[k] += o.kp_offender_events_[k];
  }
}

bool RollbackForensics::empty() const noexcept {
  return episodes_total() == 0 && kp_victim_events_.empty();
}

std::uint64_t RollbackForensics::victim_events_total() const noexcept {
  std::uint64_t t = 0;
  for (const std::uint64_t v : kp_victim_events_) t += v;
  return t;
}

std::uint64_t RollbackForensics::episodes_total() const noexcept {
  std::uint64_t t = 0;
  for (const std::uint64_t v : cascade_hist_) t += v;
  return t;
}

std::pair<std::uint32_t, std::uint64_t> RollbackForensics::top_offender()
    const noexcept {
  std::uint32_t kp = 0;
  std::uint64_t events = 0;
  for (std::size_t k = 0; k < kp_offender_events_.size(); ++k) {
    if (kp_offender_events_[k] > events) {
      kp = static_cast<std::uint32_t>(k);
      events = kp_offender_events_[k];
    }
  }
  return {kp, events};
}

namespace {

void write_u64_array(util::JsonWriter& w, const char* key,
                     const std::uint64_t* data, std::size_t n) {
  w.key(key).begin_array();
  for (std::size_t i = 0; i < n; ++i) w.value(data[i]);
  w.end_array();
}

}  // namespace

void RollbackForensics::write_json(util::JsonWriter& w) const {
  w.begin_object();
  write_u64_array(w, "cascade_hist", cascade_hist_.data(), kCascadeBins);
  write_u64_array(w, "kp_victim_events", kp_victim_events_.data(),
                  kp_victim_events_.size());
  write_u64_array(w, "kp_victim_episodes", kp_victim_episodes_.data(),
                  kp_victim_episodes_.size());
  write_u64_array(w, "kp_offender_events", kp_offender_events_.data(),
                  kp_offender_events_.size());
  w.end_object();
}

}  // namespace hp::obs
