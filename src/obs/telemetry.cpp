#include "obs/telemetry.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/probe.hpp"
#include "util/macros.hpp"

namespace hp::obs {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe last-snapshot flush.
//
// The collector copies every rendered snapshot into a fixed static buffer;
// a SIGINT/SIGTERM handler (and an atexit hook) rewrites the metrics-out
// file from it using only write/ftruncate — so an interrupted sweep keeps a
// usable, whole snapshot instead of a torn tail. The length is zeroed while
// the collector copies, so the handler can only ever observe a complete
// snapshot or none.

constexpr std::size_t kCrashBufCap = std::size_t{1} << 18;  // 256 KiB
char g_crash_buf[kCrashBufCap];
std::atomic<std::size_t> g_crash_len{0};
std::atomic<int> g_crash_fd{-1};

void crash_flush() noexcept {  // async-signal-safe
  const int fd = g_crash_fd.load(std::memory_order_acquire);
  const std::size_t len = g_crash_len.load(std::memory_order_acquire);
  if (fd < 0 || len == 0) return;
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::pwrite(fd, g_crash_buf + off, len - off,
                               static_cast<off_t>(off));
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  (void)::ftruncate(fd, static_cast<off_t>(off));
}

void on_fatal_signal(int sig) {
  crash_flush();
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_exit_flush_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit(crash_flush);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = on_fatal_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
  });
}

void store_crash_snapshot(const std::string& text) {
  const std::size_t len = std::min(text.size(), kCrashBufCap);
  g_crash_len.store(0, std::memory_order_release);
  std::memcpy(g_crash_buf, text.data(), len);
  g_crash_len.store(len, std::memory_order_release);
}

bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// JsonWriter-style double formatting is overkill here; Prometheus text just
// needs plain decimal.
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// TelemetryRing

TelemetryRing::TelemetryRing(std::uint32_t capacity) {
  const std::size_t cap = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  buf_.resize(cap);
  mask_ = cap - 1;
}

// ---------------------------------------------------------------------------
// TelemetryHub

TelemetryHub::TelemetryHub(const ObsConfig& cfg, std::uint32_t num_pes)
    : hist_(num_pes),
      metrics_out_(cfg.metrics_out),
      flush_ms_(std::max<std::uint32_t>(cfg.metrics_flush_ms, 1)) {
  HP_ASSERT(num_pes > 0, "telemetry hub needs at least one PE");
  rings_.reserve(num_pes);
  for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
    rings_.push_back(
        std::make_unique<TelemetryRing>(cfg.telemetry_ring_capacity));
  }
  if (!metrics_out_.empty()) {
    out_fd_ = ::open(metrics_out_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    HP_ASSERT(out_fd_ >= 0, "cannot open --metrics-out file %s",
              metrics_out_.c_str());
    install_exit_flush_once();
    g_crash_fd.store(out_fd_, std::memory_order_release);
    g_crash_len.store(0, std::memory_order_release);
  }
  if (!cfg.metrics_endpoint.empty()) open_listener(cfg.metrics_endpoint);
  collector_ = std::jthread(
      [this](std::stop_token st) { collector_loop(st); });
}

TelemetryHub::~TelemetryHub() {
  if (collector_.joinable()) {
    collector_.request_stop();
    collector_.join();
  }
  if (out_fd_ >= 0) {
    g_crash_fd.store(-1, std::memory_order_release);
    ::close(out_fd_);
    out_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void TelemetryHub::publish_gauges(const GaugeSnapshot& g) {
  std::lock_guard<std::mutex> lk(mu_);
  gauges_ = g;
  have_gauges_ = true;
}

double TelemetryHub::quantile_us(LatencyMetric m, double q) const {
  std::lock_guard<std::mutex> lk(mu_);
  LatencyHistogram agg;
  for (const auto& pe : hist_) {  // ascending-PE fold
    agg.merge(pe[static_cast<std::size_t>(m)]);
  }
  return agg.quantile_ns(q) * 1e-3;
}

std::uint64_t TelemetryHub::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& r : rings_) total += r->dropped();
  return total;
}

void TelemetryHub::drain_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t pe = 0; pe < rings_.size(); ++pe) {
    auto& hists = hist_[pe];
    rings_[pe]->drain([&hists](const TelemetrySample& s) {
      if (s.metric < kNumLatencyMetrics) hists[s.metric].record(s.value_ns);
    });
  }
}

void TelemetryHub::collector_loop(const std::stop_token& st) {
  const std::uint64_t flush_ns = std::uint64_t{flush_ms_} * 1'000'000;
  while (!st.stop_requested()) {
    drain_all();
    serve_pending();
    const std::uint64_t now = monotonic_ns();
    if (out_fd_ >= 0 && now - last_flush_ns_ >= flush_ns) {
      last_flush_ns_ = now;
      std::string text;
      {
        std::lock_guard<std::mutex> lk(mu_);
        text = render_locked();
      }
      store_crash_snapshot(text);
      std::lock_guard<std::mutex> lk(mu_);
      flush_file_locked(text);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

void TelemetryHub::flush_file_locked(const std::string& text) {
  if (out_fd_ < 0) return;
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::pwrite(out_fd_, text.data() + off, text.size() - off,
                               static_cast<off_t>(off));
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  (void)::ftruncate(out_fd_, static_cast<off_t>(off));
}

void TelemetryHub::finalize_into(MetricsReport& report) {
  if (collector_.joinable()) {
    collector_.request_stop();
    collector_.join();
  }
  drain_all();  // PE threads are quiescent; sweep the ring tails
  std::lock_guard<std::mutex> lk(mu_);
  report.telemetry = true;
  for (std::size_t m = 0; m < kNumLatencyMetrics; ++m) {
    report.latency[m].reset();
    for (const auto& pe : hist_) report.latency[m].merge(pe[m]);
  }
  const std::string text = render_locked();
  store_crash_snapshot(text);
  flush_file_locked(text);
}

// ---------------------------------------------------------------------------
// Exposition

std::string TelemetryHub::render_prometheus() const {
  std::lock_guard<std::mutex> lk(mu_);
  return render_locked();
}

std::string TelemetryHub::render_locked() const {
  std::string out;
  out.reserve(8192);

  out += "# HELP hp_telemetry_dropped Latency samples dropped on "
         "telemetry-ring overflow.\n";
  out += "# TYPE hp_telemetry_dropped counter\n";
  out += "hp_telemetry_dropped " + std::to_string(dropped()) + "\n";

  if (have_gauges_) {
    out += "# TYPE hp_gvt gauge\nhp_gvt ";
    append_double(out, gauges_.gvt);
    out += "\n# TYPE hp_gvt_round gauge\nhp_gvt_round " +
           std::to_string(gauges_.round) + "\n";
    out += "# TYPE hp_wall_seconds gauge\nhp_wall_seconds ";
    append_double(out, gauges_.wall_seconds);
    out += "\n";
    out += "# HELP hp_gvt_mode GVT algorithm (0 = barrier, 1 = epoch).\n";
    out += "# TYPE hp_gvt_mode gauge\nhp_gvt_mode " +
           std::to_string(gauges_.gvt_mode) + "\n";
    out += "# TYPE hp_gvt_epoch gauge\nhp_gvt_epoch " +
           std::to_string(gauges_.epoch) + "\n";
    out += "# HELP hp_gvt_in_flight Peak unmatched sends at the last epoch "
           "close.\n";
    out += "# TYPE hp_gvt_in_flight gauge\nhp_gvt_in_flight " +
           std::to_string(gauges_.in_flight) + "\n";
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      const char* type =
          kCounterDefs[c].reduce == Reduce::Max ? "gauge" : "counter";
      out += "# TYPE hp_";
      out += kCounterDefs[c].name;
      out += " ";
      out += type;
      out += "\nhp_";
      out += kCounterDefs[c].name;
      out += " " + std::to_string(gauges_.counters[c]) + "\n";
    }
    out += "# TYPE hp_phase_seconds gauge\n";
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      out += "hp_phase_seconds{phase=\"";
      out += phase_name(static_cast<Phase>(p));
      out += "\"} ";
      append_double(out, static_cast<double>(gauges_.phase_ns[p]) * 1e-9);
      out += "\n";
    }
  }

  for (std::size_t m = 0; m < kNumLatencyMetrics; ++m) {
    LatencyHistogram agg;
    for (const auto& pe : hist_) agg.merge(pe[m]);  // ascending-PE fold
    const char* name = latency_metric_name(static_cast<LatencyMetric>(m));
    out += "# TYPE hp_";
    out += name;
    out += " histogram\n";
    // Cumulative buckets over the occupied le edges only (valid Prometheus:
    // le values need not be dense, just sorted and capped by +Inf).
    std::uint64_t cum = 0;
    for (std::uint32_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
      if (agg.counts()[b] == 0) continue;
      cum += agg.counts()[b];
      out += "hp_";
      out += name;
      out += "_bucket{le=\"" +
             std::to_string(LatencyHistogram::bucket_hi(b)) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += "hp_";
    out += name;
    out += "_bucket{le=\"+Inf\"} " + std::to_string(agg.count()) + "\n";
    out += "hp_";
    out += name;
    out += "_sum " + std::to_string(agg.sum_ns()) + "\nhp_";
    out += name;
    out += "_count " + std::to_string(agg.count()) + "\n";
    out += "# TYPE hp_";
    out += name;
    out += "_quantile gauge\n";
    for (const double q : kLatencyQuantiles) {
      out += "hp_";
      out += name;
      out += "_quantile{q=\"";
      append_double(out, q);
      out += "\"} ";
      append_double(out, agg.quantile_ns(q));
      out += "\n";
    }
  }
  return out;
}

void TelemetryHub::open_listener(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    unix_path_ = endpoint.substr(5);
    HP_ASSERT(!unix_path_.empty(), "--metrics-endpoint=unix: needs a path");
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    HP_ASSERT(listen_fd_ >= 0, "metrics endpoint: socket() failed");
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    HP_ASSERT(unix_path_.size() < sizeof(addr.sun_path),
              "--metrics-endpoint unix path too long: %s", unix_path_.c_str());
    std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size());
    ::unlink(unix_path_.c_str());
    HP_ASSERT(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "metrics endpoint: cannot bind %s", unix_path_.c_str());
  } else {
    char* end = nullptr;
    const long port = std::strtol(endpoint.c_str(), &end, 10);
    HP_ASSERT(end != nullptr && *end == '\0' && port > 0 && port < 65536,
              "--metrics-endpoint expects <port> or unix:<path>, got %s",
              endpoint.c_str());
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    HP_ASSERT(listen_fd_ >= 0, "metrics endpoint: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
    HP_ASSERT(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "metrics endpoint: cannot bind 127.0.0.1:%ld", port);
  }
  HP_ASSERT(::listen(listen_fd_, 8) == 0, "metrics endpoint: listen() failed");
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
}

void TelemetryHub::serve_pending() {
  if (listen_fd_ < 0) return;
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) return;  // EAGAIN: nobody waiting
    // The accepted socket is blocking; cap the request read so a silent
    // client cannot wedge the collector.
    timeval tv{};
    tv.tv_usec = 200 * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char req[1024];
    (void)::recv(client, req, sizeof(req), 0);  // request content ignored
    std::string body;
    {
      std::lock_guard<std::mutex> lk(mu_);
      body = render_locked();
    }
    std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4\r\n"
        "Content-Length: " + std::to_string(body.size()) + "\r\n"
        "Connection: close\r\n\r\n";
    resp += body;
    (void)write_all(client, resp.data(), resp.size());
    ::close(client);
  }
}

}  // namespace hp::obs
