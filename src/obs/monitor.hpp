#pragma once

// Live run monitor: an opt-in heartbeat for long optimistic runs.
//
// When ObsConfig::monitor is on, the Time Warp kernel emits one JSON-lines
// record per GVT round (or every monitor_interval-th round) to stderr or a
// file, so a bench is observable in flight instead of only post-mortem:
//
//   {"round":42,"t_seconds":1.03,"gvt":512.0,"processed":81920,
//    "rolled_back":4096,"event_rate":2.1e6,"rollback_rate":0.05,
//    "inbox_depth":12,"top_offender_kp":7,"top_offender_events":1833}
//
// Rates are momentary (deltas since the previous record over the wall time
// between them). The top offender comes from the rollback-forensics per-KP
// heatmap (null when forensics is off or nothing rolled back yet); it is the
// per-PE arg-max with the most events, which under-reports an offender whose
// damage is spread thinly across victims — good enough for a heartbeat.
//
// MonitorWriter appends, so one stream accumulates every run of a sweep.
// Each record is composed off-stream and handed to the kernel with a single
// write(2), so every emitted line reaches the file whole even on
// SIGINT/abort mid-run — an interrupted sweep keeps a schema-valid tail
// with nothing buffered in userspace to lose. Only the GVT-round leader
// writes — there is no cross-thread contention to manage.

#include <cstdint>
#include <string>

namespace hp::obs {

struct MonitorSample {
  std::uint64_t round = 0;       // 0-based GVT round index
  double t_seconds = 0.0;        // wall time since run start
  double gvt = 0.0;              // this round's global minimum
  std::uint64_t processed = 0;   // forward executions since the last record
  std::uint64_t rolled_back = 0; // events undone since the last record
  std::uint64_t inbox_depth = 0; // envelopes across all inboxes at barrier B
  double event_rate = 0.0;       // processed / wall seconds since last record
  double rollback_rate = 0.0;    // rolled_back / processed (this record)
  bool has_offender = false;     // forensics heatmap had any offender yet
  std::uint32_t top_offender_kp = 0;
  std::uint64_t top_offender_events = 0;
  // Optimism flow control (all zero when no pool budget is configured):
  // outstanding envelopes across all pools at barrier B, and how many PEs
  // were throttled / hard-blocked when they published their round slice.
  // pool_bytes is the slab storage owned by all pools (always populated).
  std::uint64_t pool_live = 0;
  std::uint64_t pool_bytes = 0;
  std::uint32_t throttled_pes = 0;
  std::uint32_t blocked_pes = 0;
  // Dynamic KP migration (all zero when EngineConfig::migration is off):
  // cumulative KP moves across all PEs as of the previous round's slices,
  // and the ownership-table version (bumped once per migration round).
  std::uint64_t kp_migrations = 0;
  std::uint64_t mapping_epoch = 0;
  // Latency telemetry (ObsConfig::telemetry): aggregate p99 of the
  // deliver->GVT-commit latency so far, in microseconds. Emitted only when
  // has_commit_latency is set (telemetry off keeps old streams unchanged).
  bool has_commit_latency = false;
  double commit_latency_p99_us = 0.0;
  // GVT algorithm (EngineConfig::gvt_mode): "barrier" or "epoch". Under the
  // epoch algorithm, `epoch` is the epoch number the emitting close just
  // retired and `in_flight` is that close's latched peak of sent-but-not-
  // yet-received envelopes; both stay 0 in barrier mode.
  const char* gvt_mode = "barrier";
  std::uint64_t epoch = 0;
  std::uint64_t in_flight = 0;
};

class MonitorWriter {
 public:
  // Empty path selects stderr; otherwise the file is opened in append mode.
  explicit MonitorWriter(const std::string& path);
  ~MonitorWriter();

  MonitorWriter(const MonitorWriter&) = delete;
  MonitorWriter& operator=(const MonitorWriter&) = delete;

  // One JSON object per line, durable immediately (single write(2) per
  // record, no userspace buffering to flush on abnormal exit).
  void emit(const MonitorSample& s);

  std::uint64_t lines() const noexcept { return lines_; }

 private:
  int fd_ = 2;          // stderr unless a path was given
  bool owns_fd_ = false;
  std::uint64_t lines_ = 0;
};

}  // namespace hp::obs
