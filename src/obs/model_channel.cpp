#include "obs/model_channel.hpp"

#include <algorithm>

#include "util/json_writer.hpp"
#include "util/macros.hpp"

namespace hp::obs {

namespace {

constexpr const char* kind_label(ModelChannel::Kind k) noexcept {
  switch (k) {
    case ModelChannel::Kind::Counter: return "counter";
    case ModelChannel::Kind::Real: return "real";
    case ModelChannel::Kind::RealMax: return "real_max";
    case ModelChannel::Kind::Hist: return "hist";
  }
  __builtin_unreachable();
}

}  // namespace

ModelChannel::Id ModelChannel::intern(std::string_view name, Kind kind) {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (metrics_[i].name == name) {
      HP_ASSERT(metrics_[i].kind == kind,
                "model metric '%.*s' re-registered with a different kind",
                static_cast<int>(name.size()), name.data());
      return Id{static_cast<std::uint32_t>(i)};
    }
  }
  Metric m;
  m.name.assign(name);
  m.kind = kind;
  metrics_.push_back(std::move(m));
  return Id{static_cast<std::uint32_t>(metrics_.size() - 1)};
}

ModelChannel::Metric& ModelChannel::at(Id id) {
  HP_ASSERT(id.valid() && id.idx < metrics_.size(),
            "invalid model metric id %u", id.idx);
  return metrics_[id.idx];
}

const ModelChannel::Metric& ModelChannel::at(Id id) const {
  HP_ASSERT(id.valid() && id.idx < metrics_.size(),
            "invalid model metric id %u", id.idx);
  return metrics_[id.idx];
}

const ModelChannel::Metric* ModelChannel::find(
    std::string_view name) const noexcept {
  for (const Metric& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void ModelChannel::add(Id id, std::uint64_t delta) {
  Metric& m = at(id);
  HP_ASSERT(m.kind == Kind::Counter, "add() on non-counter metric '%s'",
            m.name.c_str());
  m.u += delta;
}

void ModelChannel::add_real(Id id, double delta) {
  Metric& m = at(id);
  HP_ASSERT(m.kind == Kind::Real, "add_real() on non-real metric '%s'",
            m.name.c_str());
  m.d += delta;
}

void ModelChannel::push_max(Id id, double x) {
  Metric& m = at(id);
  HP_ASSERT(m.kind == Kind::RealMax, "push_max() on non-max metric '%s'",
            m.name.c_str());
  m.d = m.any ? std::max(m.d, x) : x;
  m.any = true;
}

void ModelChannel::merge_hist(Id id, const util::Histogram& h) {
  Metric& m = at(id);
  HP_ASSERT(m.kind == Kind::Hist, "merge_hist() on non-hist metric '%s'",
            m.name.c_str());
  m.h.merge(h);
}

std::uint64_t ModelChannel::counter_value(Id id) const { return at(id).u; }

double ModelChannel::real_value(Id id) const {
  const Metric& m = at(id);
  if (m.kind == Kind::RealMax) return m.any ? m.d : 0.0;
  return m.d;
}

const util::Histogram* ModelChannel::hist_value(Id id) const {
  const Metric& m = at(id);
  return m.kind == Kind::Hist ? &m.h : nullptr;
}

std::uint64_t ModelChannel::counter_value(std::string_view name) const {
  const Metric* m = find(name);
  return m != nullptr && m->kind == Kind::Counter ? m->u : 0;
}

double ModelChannel::real_value(std::string_view name) const {
  const Metric* m = find(name);
  if (m == nullptr) return 0.0;
  if (m->kind == Kind::RealMax) return m->any ? m->d : 0.0;
  return m->d;
}

const util::Histogram* ModelChannel::hist_value(std::string_view name) const {
  const Metric* m = find(name);
  return m != nullptr && m->kind == Kind::Hist ? &m->h : nullptr;
}

void ModelChannel::write_json(util::JsonWriter& w) const {
  w.begin_array();
  for (const Metric& m : metrics_) {
    w.begin_object();
    w.kv("name", m.name);
    w.kv("kind", kind_label(m.kind));
    switch (m.kind) {
      case Kind::Counter:
        w.kv("value", m.u);
        break;
      case Kind::Real:
        w.kv("value", m.d);
        break;
      case Kind::RealMax:
        w.kv("value", m.any ? m.d : 0.0);
        break;
      case Kind::Hist: {
        w.key("value").begin_object();
        w.kv("lo", m.h.lo());
        w.kv("bin_width", m.h.bin_width());
        w.key("counts").begin_array();
        for (const std::uint64_t c : m.h.counts()) w.value(c);
        w.end_array();
        w.end_object();
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace hp::obs
