#include "obs/monitor.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <sstream>

#include "util/json_writer.hpp"
#include "util/macros.hpp"

namespace hp::obs {

MonitorWriter::MonitorWriter(const std::string& path) {
  if (path.empty()) {
    fd_ = 2;  // stderr
    return;
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  HP_ASSERT(fd_ >= 0, "cannot open monitor stream %s", path.c_str());
  owns_fd_ = true;
}

MonitorWriter::~MonitorWriter() {
  if (owns_fd_) ::close(fd_);
}

void MonitorWriter::emit(const MonitorSample& s) {
  // Build the record off-stream so it lands as one write(2): lines stay
  // whole when a monitor file is shared with other processes' appends, and
  // every emitted record is already durable if the run dies on the next
  // instruction — there is no buffered tail to lose on SIGINT/abort.
  std::ostringstream line;
  {
    util::JsonWriter w(line);
    w.begin_object();
    w.kv("round", s.round);
    w.kv("t_seconds", s.t_seconds);
    w.kv("gvt", s.gvt);  // non-finite (termination round) renders as null
    w.kv("processed", s.processed);
    w.kv("rolled_back", s.rolled_back);
    w.kv("event_rate", s.event_rate);
    w.kv("rollback_rate", s.rollback_rate);
    w.kv("inbox_depth", s.inbox_depth);
    w.kv("pool_live", s.pool_live);
    w.kv("pool_bytes", s.pool_bytes);
    w.kv("throttled_pes", s.throttled_pes);
    w.kv("blocked_pes", s.blocked_pes);
    w.kv("kp_migrations", s.kp_migrations);
    w.kv("mapping_epoch", s.mapping_epoch);
    w.kv("gvt_mode", s.gvt_mode);
    w.kv("epoch", s.epoch);
    w.kv("in_flight", s.in_flight);
    if (s.has_commit_latency) {
      w.kv("commit_latency_p99_us", s.commit_latency_p99_us);
    }
    if (s.has_offender) {
      w.kv("top_offender_kp", s.top_offender_kp);
      w.kv("top_offender_events", s.top_offender_events);
    } else {
      w.key("top_offender_kp").null_value();
    }
    w.end_object();
  }
  std::string text = line.str();
  text += '\n';
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd_, text.data() + off, text.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ++lines_;
}

}  // namespace hp::obs
