#include "obs/monitor.hpp"

#include <iostream>
#include <sstream>

#include "util/json_writer.hpp"
#include "util/macros.hpp"

namespace hp::obs {

MonitorWriter::MonitorWriter(const std::string& path) {
  if (path.empty()) {
    out_ = &std::cerr;
    return;
  }
  file_.open(path, std::ios::out | std::ios::app);
  HP_ASSERT(file_.good(), "cannot open monitor stream %s", path.c_str());
  out_ = &file_;
}

void MonitorWriter::emit(const MonitorSample& s) {
  // Build the record off-stream so it lands as one write (keeps lines whole
  // when a monitor file is shared with other processes' appends).
  std::ostringstream line;
  {
    util::JsonWriter w(line);
    w.begin_object();
    w.kv("round", s.round);
    w.kv("t_seconds", s.t_seconds);
    w.kv("gvt", s.gvt);  // non-finite (termination round) renders as null
    w.kv("processed", s.processed);
    w.kv("rolled_back", s.rolled_back);
    w.kv("event_rate", s.event_rate);
    w.kv("rollback_rate", s.rollback_rate);
    w.kv("inbox_depth", s.inbox_depth);
    w.kv("pool_live", s.pool_live);
    w.kv("pool_bytes", s.pool_bytes);
    w.kv("throttled_pes", s.throttled_pes);
    w.kv("blocked_pes", s.blocked_pes);
    w.kv("kp_migrations", s.kp_migrations);
    w.kv("mapping_epoch", s.mapping_epoch);
    if (s.has_offender) {
      w.kv("top_offender_kp", s.top_offender_kp);
      w.kv("top_offender_events", s.top_offender_events);
    } else {
      w.key("top_offender_kp").null_value();
    }
    w.end_object();
  }
  (*out_) << line.str() << '\n';
  out_->flush();
  ++lines_;
}

}  // namespace hp::obs
