#pragma once

// Per-PE phase accounting probe. A PE tells the probe which Phase it is in;
// the probe charges elapsed wall time to the previous phase and (optionally)
// records the finished segment as a trace span. Clock reads happen only on
// transitions — consecutive forward executions are one segment — and a
// disabled probe reduces every call to a single predictable branch, so the
// kernels keep the probe calls unconditionally inline.
//
// PhaseScope handles nesting (a rollback fired from inside an inbox drain or
// a forward send charges its own phase, then restores the interrupted one).

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hp::obs {

inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class PhaseProbe {
 public:
  // `metrics` receives the per-phase nanoseconds; `trace` may be null.
  // Disabled probes (timers off and no trace) never read the clock.
  void attach(PeMetrics* metrics, TraceBuffer* trace, bool timers_on) {
    metrics_ = metrics;
    trace_ = trace;
    enabled_ = metrics != nullptr && (timers_on || trace != nullptr);
  }

  bool enabled() const noexcept { return enabled_; }
  Phase current() const noexcept { return cur_; }

  // Start accounting, charging subsequent time to `initial`.
  void begin(Phase initial) noexcept {
    cur_ = initial;
    if (enabled_) last_ = monotonic_ns();
  }

  void switch_to(Phase p) noexcept {
    if (p == cur_) return;
    if (enabled_) {
      const std::uint64_t t = monotonic_ns();
      metrics_->ns(cur_) += t - last_;
      // Idle segments are omitted from the trace: gaps between spans read
      // as idle in Perfetto, and spinning PEs would otherwise dominate the
      // file.
      if (trace_ != nullptr && cur_ != Phase::Idle && t > last_) {
        trace_->add(cur_, last_, t);
      }
      last_ = t;
    }
    cur_ = p;
  }

  // Flush the in-progress segment (end of run).
  void end() noexcept {
    if (!enabled_) return;
    const std::uint64_t t = monotonic_ns();
    metrics_->ns(cur_) += t - last_;
    if (trace_ != nullptr && cur_ != Phase::Idle && t > last_) {
      trace_->add(cur_, last_, t);
    }
    last_ = t;
  }

 private:
  PeMetrics* metrics_ = nullptr;
  TraceBuffer* trace_ = nullptr;
  bool enabled_ = false;
  Phase cur_ = Phase::Forward;
  std::uint64_t last_ = 0;
};

// RAII phase nesting: switches to `phase`, restores the interrupted phase on
// destruction.
class PhaseScope {
 public:
  PhaseScope(PhaseProbe& probe, Phase phase) noexcept
      : probe_(probe), prev_(probe.current()) {
    probe_.switch_to(phase);
  }
  ~PhaseScope() { probe_.switch_to(prev_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseProbe& probe_;
  Phase prev_;
};

}  // namespace hp::obs
