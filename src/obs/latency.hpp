#pragma once

// HDR-style latency histogram for wall-clock event-lifecycle telemetry.
//
// LatencyHistogram is a log2-bucketed histogram over uint64 nanosecond
// values: power-of-two tiers × kSubBuckets fixed sub-buckets, so record()
// is O(1) (a bit_width and two adds, no allocation, no floating point) and
// the relative quantization error is bounded by 2 / kSubBuckets (~6% at 32
// sub-buckets) at every magnitude from 1 ns to the uint64 range. Merging is
// plain bucket-count addition; the telemetry collector folds per-PE
// histograms in ascending-PE order (the obs::ModelChannel idiom) so the
// aggregate is deterministic given the same per-PE contents.
//
// Quantile extraction routes through util::interpolated_quantile — the one
// shared quantile definition in the tree — so the p50/p90/p99/p99.9 this
// layer reports agree in semantics with the model-side percentiles
// (HpReport::delivery_percentile).

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

#include "util/stats.hpp"

namespace hp::obs {

// The event-lifecycle latencies the kernels record (docs/METRICS.md
// "Latency telemetry"). Values are wall-clock nanoseconds and feed
// histograms only — they never influence event order, so committed results
// are bit-identical with telemetry on or off.
enum class LatencyMetric : std::uint8_t {
  QueueDwell,     // event creation -> delivery into the forward handler
  CommitLatency,  // forward execution -> GVT commit (fossil collection)
  RollbackCost,   // wall time of one rollback episode (repair cost)
  InboxDwell,     // remote send -> inbox drain on the destination PE
  kCount
};
inline constexpr std::size_t kNumLatencyMetrics =
    static_cast<std::size_t>(LatencyMetric::kCount);

constexpr const char* latency_metric_name(LatencyMetric m) noexcept {
  switch (m) {
    case LatencyMetric::QueueDwell: return "queue_dwell_ns";
    case LatencyMetric::CommitLatency: return "commit_latency_ns";
    case LatencyMetric::RollbackCost: return "rollback_cost_ns";
    case LatencyMetric::InboxDwell: return "inbox_dwell_ns";
    case LatencyMetric::kCount: break;
  }
  // Unreachable for valid enumerators; a new metric without a case above is
  // a compile error in the constant-evaluated coverage test (test_latency).
  __builtin_unreachable();
}

// Quantile levels every surface reports (JSON latency block, Prometheus
// snapshot, monitor heartbeat p99).
inline constexpr std::array<double, 4> kLatencyQuantiles{0.50, 0.90, 0.99,
                                                        0.999};

class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;  // 32
  // Tier 0 resolves [0, kSubBuckets) exactly; tier t >= 1 covers
  // [kSubBuckets/2 << t, kSubBuckets << t) at granularity 2^t. bit_width of
  // a uint64 is at most 64, so the top tier is 64 - kSubBucketBits.
  static constexpr std::uint32_t kNumTiers = 64 - kSubBucketBits + 1;
  static constexpr std::uint32_t kNumBuckets = kNumTiers * kSubBuckets;

  // O(1), branch-light, allocation-free: tier = how far the value's
  // magnitude exceeds the sub-bucket range, sub-bucket = the value's top
  // kSubBucketBits bits. Buckets [t*kSubBuckets, t*kSubBuckets +
  // kSubBuckets/2) are unused for t >= 1 — a deliberate trade of half the
  // (tiny) table for an index computation with no per-tier offset table.
  static constexpr std::uint32_t bucket_of(std::uint64_t v) noexcept {
    const auto w = static_cast<std::uint32_t>(std::bit_width(v));
    if (w <= kSubBucketBits) return static_cast<std::uint32_t>(v);
    const std::uint32_t tier = w - kSubBucketBits;
    return tier * kSubBuckets + static_cast<std::uint32_t>(v >> tier);
  }
  static constexpr std::uint64_t bucket_lo(std::uint32_t idx) noexcept {
    const std::uint32_t tier = idx / kSubBuckets;
    const std::uint64_t sub = idx % kSubBuckets;
    return tier == 0 ? sub : sub << tier;
  }
  static constexpr std::uint64_t bucket_hi(std::uint32_t idx) noexcept {
    const std::uint32_t tier = idx / kSubBuckets;
    const std::uint64_t sub = idx % kSubBuckets;
    return tier == 0 ? sub + 1 : (sub + 1) << tier;
  }

  void record(std::uint64_t ns) noexcept {
    ++counts_[bucket_of(ns)];
    ++count_;
    sum_ns_ += ns;
    max_ns_ = std::max(max_ns_, ns);
  }

  // Bucket-count addition; commutative, so any merge order yields the same
  // histogram — the collector still folds ascending-PE for a deterministic
  // sum_ns_ (integer, but keep the ModelChannel discipline).
  void merge(const LatencyHistogram& o) noexcept {
    for (std::uint32_t i = 0; i < kNumBuckets; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ns_ += o.sum_ns_;
    max_ns_ = std::max(max_ns_, o.max_ns_);
  }

  void reset() noexcept { *this = LatencyHistogram{}; }

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum_ns() const noexcept { return sum_ns_; }
  std::uint64_t max_ns() const noexcept { return max_ns_; }
  double mean_ns() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_ns_) /
                             static_cast<double>(count_);
  }
  const std::array<std::uint64_t, kNumBuckets>& counts() const noexcept {
    return counts_;
  }

  // Interpolated quantile in nanoseconds (shared semantics:
  // util::interpolated_quantile over the occupied buckets).
  double quantile_ns(double q) const;

  bool operator==(const LatencyHistogram&) const = default;

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace hp::obs
