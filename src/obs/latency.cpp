#include "obs/latency.hpp"

#include <vector>

namespace hp::obs {

double LatencyHistogram::quantile_ns(double q) const {
  // Materialize the occupied buckets only: at 32 sub-buckets per tier a real
  // latency distribution touches a few dozen of the ~2k buckets, and this
  // runs at report/heartbeat granularity, never on the hot path.
  std::vector<util::QuantileBin> bins;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) continue;
    bins.push_back({static_cast<double>(bucket_lo(i)),
                    static_cast<double>(bucket_hi(i)), counts_[i]});
  }
  return util::interpolated_quantile(bins, q);
}

}  // namespace hp::obs
