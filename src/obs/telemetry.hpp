#pragma once

// Always-on latency telemetry: lock-free per-PE sample rings, a background
// collector, and the live metrics exposition surface.
//
// Dataflow:
//
//   PE hot path --try_push--> TelemetryRing (SPSC, fixed capacity, POD
//   samples; overflow drops + counts, never blocks or allocates)
//        |
//   collector thread --drain--> per-PE LatencyHistograms (ascending-PE fold
//   into the aggregate at any read point, the obs::ModelChannel discipline)
//        |
//   exposition: --metrics-endpoint (Prometheus text over a minimal
//   localhost HTTP/unix listener served from the collector thread) and
//   --metrics-out (periodic atomic-in-place rewrite of the same text for
//   socket-less CI, plus an async-signal-safe last-snapshot flush on
//   SIGINT/SIGTERM and at exit).
//
// Gauges (counters, phase seconds, GVT) cannot be read from live PE state
// without racing, so the simulation loop *publishes* them: the Time Warp
// kernel from PE 0 after GVT barrier B (where the MonitorSlice contract
// already makes every PE's round slice readable race-free), the
// single-threaded kernels from their own loop. publish_gauges copies a POD
// under the collector mutex — GVT-round granularity, never per event.
//
// Determinism: everything here is passive. Samples are wall-clock values
// that feed histograms only; committed state is bit-identical with
// telemetry on or off (pinned by determinism_check --telemetry).

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace hp::obs {

// One latency observation. POD: the producer writes value + metric and
// publishes with a single release store of the ring cursor.
struct TelemetrySample {
  std::uint64_t value_ns = 0;
  std::uint32_t metric = 0;  // LatencyMetric
};

// Fixed-capacity single-producer/single-consumer ring. The producer is one
// PE thread (or the lone thread of a single-threaded kernel), the consumer
// is the collector thread. Full ring => the sample is dropped and counted;
// the hot path never waits on the collector.
class TelemetryRing {
 public:
  explicit TelemetryRing(std::uint32_t capacity);

  TelemetryRing(const TelemetryRing&) = delete;
  TelemetryRing& operator=(const TelemetryRing&) = delete;

  // Producer side (the PE hot path): two relaxed/acquire loads, one store,
  // one release store. No locks, no allocation, no clock reads.
  void try_push(LatencyMetric m, std::uint64_t ns) noexcept {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h >= buf_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf_[static_cast<std::size_t>(t) & mask_] = {
        ns, static_cast<std::uint32_t>(m)};
    tail_.store(t + 1, std::memory_order_release);
  }

  // Consumer side: drains every published sample into `sink` (called once
  // per sample) and advances the head cursor. Returns samples drained.
  template <typename Sink>
  std::size_t drain(Sink&& sink) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    for (std::uint64_t i = h; i != t; ++i) {
      sink(buf_[static_cast<std::size_t>(i) & mask_]);
    }
    head_.store(t, std::memory_order_release);
    return static_cast<std::size_t>(t - h);
  }

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const noexcept { return buf_.size(); }

 private:
  std::vector<TelemetrySample> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

// A point-in-time engine snapshot for the exposition surface, published by
// the simulation loop (see file comment for the race-free publish points).
struct GaugeSnapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<std::uint64_t, kNumPhases> phase_ns{};
  double gvt = 0.0;
  std::uint64_t round = 0;
  double wall_seconds = 0.0;
  // GVT algorithm gauges: 0 = barrier, 1 = epoch; under the epoch algorithm
  // `epoch` is the latest closed epoch and `in_flight` that close's latched
  // peak of unmatched sends (both stay 0 in barrier mode).
  std::uint32_t gvt_mode = 0;
  std::uint64_t epoch = 0;
  std::uint64_t in_flight = 0;
};

class TelemetryHub {
 public:
  // `cfg` supplies ring capacity and the exposition settings
  // (metrics_endpoint / metrics_out / metrics_flush_ms).
  TelemetryHub(const ObsConfig& cfg, std::uint32_t num_pes);
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  TelemetryRing& ring(std::uint32_t pe) noexcept { return *rings_[pe]; }
  std::uint32_t num_pes() const noexcept {
    return static_cast<std::uint32_t>(rings_.size());
  }

  // Copy a fresh gauge snapshot for the next exposition render. Cheap
  // (one POD copy under the collector mutex); call at GVT-round cadence.
  void publish_gauges(const GaugeSnapshot& g);

  // Aggregate quantile across all PEs drained so far, in microseconds.
  // Used for the monitor heartbeat's commit_latency_p99_us.
  double quantile_us(LatencyMetric m, double q) const;

  // Total samples dropped across all rings (ring overflow).
  std::uint64_t dropped() const noexcept;

  // Stop the collector thread, drain every ring to the last sample, fold
  // the per-PE histograms in ascending-PE order into the report, and write
  // the final exposition snapshot (file dump and crash buffer). Call after
  // all PE threads have stopped pushing.
  void finalize_into(MetricsReport& report);

  // The Prometheus text snapshot (exactly what the endpoint serves and
  // metrics-out dumps). Public for tests.
  std::string render_prometheus() const;

 private:
  void collector_loop(const std::stop_token& st);
  void drain_all();
  void flush_file_locked(const std::string& text);
  void open_listener(const std::string& endpoint);
  void serve_pending();
  std::string render_locked() const;  // requires mu_

  std::vector<std::unique_ptr<TelemetryRing>> rings_;
  mutable std::mutex mu_;
  // Per-PE per-metric histograms; written by the collector, folded
  // ascending-PE on every aggregate read. Guarded by mu_.
  std::vector<std::array<LatencyHistogram, kNumLatencyMetrics>> hist_;
  GaugeSnapshot gauges_;
  bool have_gauges_ = false;

  std::string metrics_out_;
  std::uint32_t flush_ms_ = 500;
  int out_fd_ = -1;       // metrics-out file, held open for the crash flush
  int listen_fd_ = -1;    // exposition listener (TCP or unix)
  std::string unix_path_; // bound unix-socket path, unlinked on shutdown
  std::uint64_t last_flush_ns_ = 0;

  std::jthread collector_;
};

}  // namespace hp::obs
