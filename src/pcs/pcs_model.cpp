#include "pcs/pcs_model.hpp"

#include <algorithm>
#include <cmath>

namespace hp::pcs {

namespace {

// Flag bits recorded for reverse computation.
constexpr std::uint8_t kAllocated = 1;   // call setup / handoff got a channel
constexpr std::uint8_t kHandoff = 2;     // a handoff leg was scheduled
constexpr std::uint8_t kReleased = 4;    // CallEnd decremented busy_channels
// Latency of the radio handoff itself (release here -> arrival there).
constexpr double kHandoffLatency = 0.5;

}  // namespace

PcsModel::PcsModel(PcsConfig cfg)
    : cfg_(cfg), grid_(cfg.n, net::GridKind::Torus) {
  HP_ASSERT(cfg_.channels_per_cell >= 1, "cells need at least one channel");
  HP_ASSERT(cfg_.mean_call > 0 && cfg_.mean_idle > 0, "means must be positive");
}

std::unique_ptr<des::LpState> PcsModel::make_state(std::uint32_t) {
  return std::make_unique<CellState>();
}

double PcsModel::draw_duration(double mean, util::ReversibleRng& rng) {
  // Inverse-CDF exponential from one uniform draw, clamped away from 0.
  const double u = rng.uniform();
  return std::max(0.01, -mean * std::log1p(-std::min(u, 0.999999)));
}

void PcsModel::init_lp(std::uint32_t lp, des::InitContext& ctx) {
  for (std::uint32_t p = 0; p < cfg_.portables_per_cell; ++p) {
    PcsMsg m;
    m.type = PcsEvent::NextCall;
    ctx.schedule(lp, draw_duration(cfg_.mean_idle, ctx.rng()), m);
  }
}

void PcsModel::forward(des::LpState& state, des::Event& ev,
                       des::Context& ctx) {
  auto& s = static_cast<CellState&>(state);
  switch (ev.msg<PcsMsg>().type) {
    case PcsEvent::NextCall: next_call(s, ev, ctx); break;
    case PcsEvent::CallEnd: call_end(s, ev, ctx); break;
    case PcsEvent::HandoffArrive: handoff_arrive(s, ev, ctx); break;
  }
}

void PcsModel::reverse(des::LpState& state, des::Event& ev,
                       des::Context& ctx) {
  auto& s = static_cast<CellState&>(state);
  switch (ev.msg<PcsMsg>().type) {
    case PcsEvent::NextCall: reverse_next_call(s, ev, ctx); break;
    case PcsEvent::CallEnd: reverse_call_end(s, ev, ctx); break;
    case PcsEvent::HandoffArrive: reverse_handoff_arrive(s, ev, ctx); break;
  }
}

void PcsModel::next_call(CellState& s, des::Event& ev, des::Context& ctx) {
  auto& m = ev.msg<PcsMsg>();
  std::uint8_t draws = 0;
  m.saved_flag = 0;

  if (s.busy_channels >= cfg_.channels_per_cell) {
    // Blocked at setup: the subscriber retries after another idle period.
    ++s.calls_blocked;
    PcsMsg retry;
    retry.type = PcsEvent::NextCall;
    ctx.send(ctx.self(), draw_duration(cfg_.mean_idle, ctx.rng()), retry);
    ++draws;
    m.saved_rng_draws = draws;
    return;
  }

  m.saved_flag |= kAllocated;
  ++s.busy_channels;
  ++s.calls_started;
  const double duration = draw_duration(cfg_.mean_call, ctx.rng());
  ++draws;
  const double u = ctx.rng().uniform();
  ++draws;
  const double p_handoff =
      std::min(0.8, cfg_.handoff_rate * cfg_.mean_call);

  PcsMsg end;
  end.type = PcsEvent::CallEnd;
  end.call_started = ev.key.ts;
  if (u < p_handoff) {
    m.saved_flag |= kHandoff;
    // The same draw re-uniformizes into the handoff instant within the call.
    const double frac = std::clamp(u / p_handoff, 0.01, 0.99);
    end.call_remaining = duration * (1.0 - frac);
    ctx.send(ctx.self(), duration * frac, end);
  } else {
    end.call_remaining = 0.0;
    ctx.send(ctx.self(), duration, end);
  }
  m.saved_rng_draws = draws;
}

void PcsModel::reverse_next_call(CellState& s, des::Event& ev,
                                 des::Context& ctx) {
  auto& m = ev.msg<PcsMsg>();
  ctx.rng().reverse(m.saved_rng_draws);
  if (m.saved_flag & kAllocated) {
    --s.calls_started;
    --s.busy_channels;
  } else {
    --s.calls_blocked;
  }
}

void PcsModel::call_end(CellState& s, des::Event& ev, des::Context& ctx) {
  auto& m = ev.msg<PcsMsg>();
  std::uint8_t draws = 0;
  m.saved_flag = 0;

  // Release the channel. Under lazy cancellation a doomed transient can
  // double-release; stay well-defined and record what happened for reverse.
  if (s.busy_channels > 0) {
    --s.busy_channels;
    m.saved_flag |= kReleased;
  }

  if (m.call_remaining > 0.0) {
    // The portable moves: the remaining call arrives at a random neighbor.
    const auto k = static_cast<int>(ctx.rng().integer(0, 3));
    ++draws;
    const net::Dir dir = net::kAllDirs[static_cast<std::size_t>(k)];
    PcsMsg hand;
    hand.type = PcsEvent::HandoffArrive;
    hand.call_started = m.call_started;
    hand.call_remaining = m.call_remaining;
    ctx.send(grid_.neighbor(ctx.self(), dir), kHandoffLatency, hand);
  } else {
    ++s.calls_completed;
    // Real-valued durations need the exact-reversal tally API (see
    // util::Tally); subtraction would drift.
    m.saved_sum = s.call_time.push(ev.key.ts - m.call_started);
    PcsMsg next;
    next.type = PcsEvent::NextCall;
    ctx.send(ctx.self(), draw_duration(cfg_.mean_idle, ctx.rng()), next);
    ++draws;
  }
  m.saved_rng_draws = draws;
}

void PcsModel::reverse_call_end(CellState& s, des::Event& ev,
                                des::Context& ctx) {
  auto& m = ev.msg<PcsMsg>();
  ctx.rng().reverse(m.saved_rng_draws);
  if (m.call_remaining <= 0.0) {
    s.call_time.pop(m.saved_sum);
    --s.calls_completed;
  }
  if (m.saved_flag & kReleased) ++s.busy_channels;
}

void PcsModel::handoff_arrive(CellState& s, des::Event& ev,
                              des::Context& ctx) {
  auto& m = ev.msg<PcsMsg>();
  std::uint8_t draws = 0;
  m.saved_flag = 0;

  if (s.busy_channels >= cfg_.channels_per_cell) {
    // Handoff blocked: the call is dropped mid-flight; the subscriber goes
    // idle in this cell.
    ++s.handoffs_dropped;
    PcsMsg next;
    next.type = PcsEvent::NextCall;
    ctx.send(ctx.self(), draw_duration(cfg_.mean_idle, ctx.rng()), next);
    ++draws;
    m.saved_rng_draws = draws;
    return;
  }

  m.saved_flag |= kAllocated;
  ++s.busy_channels;
  ++s.handoffs_in;
  const double u = ctx.rng().uniform();
  ++draws;
  const double p_again =
      std::min(0.8, cfg_.handoff_rate * m.call_remaining);

  PcsMsg end;
  end.type = PcsEvent::CallEnd;
  end.call_started = m.call_started;
  if (u < p_again) {
    m.saved_flag |= kHandoff;
    const double frac = std::clamp(u / p_again, 0.01, 0.99);
    end.call_remaining = m.call_remaining * (1.0 - frac);
    ctx.send(ctx.self(), m.call_remaining * frac, end);
  } else {
    end.call_remaining = 0.0;
    ctx.send(ctx.self(), m.call_remaining, end);
  }
  m.saved_rng_draws = draws;
}

void PcsModel::reverse_handoff_arrive(CellState& s, des::Event& ev,
                                      des::Context& ctx) {
  auto& m = ev.msg<PcsMsg>();
  ctx.rng().reverse(m.saved_rng_draws);
  if (m.saved_flag & kAllocated) {
    --s.handoffs_in;
    --s.busy_channels;
  } else {
    --s.handoffs_dropped;
  }
}

}  // namespace hp::pcs
