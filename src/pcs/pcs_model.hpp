#pragma once

// PCS — Personal Communication Service network model.
//
// The report's methodology descends from Carothers/Fujimoto/Lin's PCS
// simulation (report reference [4]/[6]): a grid of radio cells, each with a
// fixed channel pool; subscribers place calls of exponential-ish duration
// and move between adjacent cells mid-call (handoff), blocking when the
// destination cell has no free channel. It is the canonical ROSS companion
// model and exercises a different engine profile than hot-potato routing:
// low fan-out, heavy self-traffic, state contention on a counter rather
// than on links.
//
// Event flow per portable (subscriber):
//   NextCall   — after an idle period, try to start a call: if the cell has
//                a free channel, allocate it and schedule CallEnd; else the
//                call is blocked and the portable retries later.
//   CallEnd    — release the channel, schedule the next call.
//   Handoff    — during a call, the portable moves to a random neighbor
//                cell: release here, then an arrival event at the neighbor
//                either re-allocates (success) or drops the call (handoff
//                block — the metric PCS studies care about most).
//
// Every handler is exactly reverse-computable; the per-cell state is a
// channel counter plus reversible tallies.

#include <array>
#include <cstdint>
#include <memory>

#include "des/model.hpp"
#include "net/grid.hpp"
#include "util/stats.hpp"

namespace hp::pcs {

struct PcsConfig {
  std::int32_t n = 8;                   // n x n cells (torus wrap, like [4])
  std::uint32_t portables_per_cell = 8; // subscribers per cell at start
  std::uint32_t channels_per_cell = 4;  // radio channel pool
  double mean_call = 30.0;              // mean call duration
  double mean_idle = 60.0;              // mean gap between call attempts
  double handoff_rate = 0.02;           // per-time-unit chance a call moves
  // Derived: probability that a given call experiences a handoff before it
  // ends is roughly handoff_rate * mean_call.

  std::uint32_t num_cells() const noexcept {
    return static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);
  }
};

struct CellState final : des::LpState {
  std::uint32_t busy_channels = 0;

  // Reversible statistics.
  std::uint64_t calls_started = 0;
  std::uint64_t calls_completed = 0;
  std::uint64_t calls_blocked = 0;    // no channel at call setup
  std::uint64_t handoffs_in = 0;
  std::uint64_t handoffs_dropped = 0; // no channel at handoff arrival
  util::Tally call_time;              // completed-call durations

  std::unique_ptr<des::LpState> clone() const override {
    return std::make_unique<CellState>(*this);
  }
  bool equals(const des::LpState& o) const override {
    const auto& s = static_cast<const CellState&>(o);
    return busy_channels == s.busy_channels &&
           calls_started == s.calls_started &&
           calls_completed == s.calls_completed &&
           calls_blocked == s.calls_blocked && handoffs_in == s.handoffs_in &&
           handoffs_dropped == s.handoffs_dropped && call_time == s.call_time;
  }
};

enum class PcsEvent : std::uint8_t { NextCall, CallEnd, HandoffArrive };

struct PcsMsg {
  PcsEvent type = PcsEvent::NextCall;
  double call_started = 0.0;   // setup time of the in-progress call
  double call_remaining = 0.0; // remaining duration at handoff
  // reverse scratch
  double saved_sum = 0.0;  // displaced call_time sum (exact double reversal)
  std::uint8_t saved_rng_draws = 0;
  std::uint8_t saved_flag = 0;
};

struct PcsReport {
  std::uint64_t calls_started = 0;
  std::uint64_t calls_completed = 0;
  std::uint64_t calls_blocked = 0;
  std::uint64_t handoffs_in = 0;
  std::uint64_t handoffs_dropped = 0;
  double call_time_sum = 0.0;

  bool operator==(const PcsReport&) const = default;

  double blocking_probability() const noexcept {
    const auto attempts = calls_started + calls_blocked;
    return attempts ? static_cast<double>(calls_blocked) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
  double handoff_drop_probability() const noexcept {
    const auto arrivals = handoffs_in + handoffs_dropped;
    return arrivals ? static_cast<double>(handoffs_dropped) /
                          static_cast<double>(arrivals)
                    : 0.0;
  }
  double mean_call_time() const noexcept {
    return calls_completed ? call_time_sum /
                                 static_cast<double>(calls_completed)
                           : 0.0;
  }
};

class PcsModel final : public des::Model {
 public:
  explicit PcsModel(PcsConfig cfg);

  std::unique_ptr<des::LpState> make_state(std::uint32_t lp) override;
  void init_lp(std::uint32_t lp, des::InitContext& ctx) override;
  void forward(des::LpState& state, des::Event& ev, des::Context& ctx) override;
  void reverse(des::LpState& state, des::Event& ev, des::Context& ctx) override;

  const PcsConfig& config() const noexcept { return cfg_; }

  template <typename Engine>
  static PcsReport collect(Engine& eng) {
    PcsReport r;
    for (std::uint32_t lp = 0; lp < eng.num_lps(); ++lp) {
      const auto& s = static_cast<const CellState&>(eng.state(lp));
      r.calls_started += s.calls_started;
      r.calls_completed += s.calls_completed;
      r.calls_blocked += s.calls_blocked;
      r.handoffs_in += s.handoffs_in;
      r.handoffs_dropped += s.handoffs_dropped;
      r.call_time_sum += s.call_time.sum();
    }
    return r;
  }

 private:
  void next_call(CellState& s, des::Event& ev, des::Context& ctx);
  void reverse_next_call(CellState& s, des::Event& ev, des::Context& ctx);
  void call_end(CellState& s, des::Event& ev, des::Context& ctx);
  void reverse_call_end(CellState& s, des::Event& ev, des::Context& ctx);
  void handoff_arrive(CellState& s, des::Event& ev, des::Context& ctx);
  void reverse_handoff_arrive(CellState& s, des::Event& ev, des::Context& ctx);

  // One draw; exponential-shaped via inverse CDF on a uniform.
  static double draw_duration(double mean, util::ReversibleRng& rng);

  PcsConfig cfg_;
  net::Grid grid_;
};

}  // namespace hp::pcs
