#include "buffered/schemes.hpp"

#include "util/macros.hpp"

namespace hp::fc {

std::unique_ptr<FlowControlScheme> FlowControlScheme::create(
    const FlowControlConfig& cfg) {
  if (cfg.scheme != Kind::Wormhole) {
    HP_ASSERT(cfg.queue_capacity >= cfg.flits_per_packet,
              "%s buffers whole packets: qcap %u < flit %u",
              kind_name(cfg.scheme), cfg.queue_capacity, cfg.flits_per_packet);
  }
  switch (cfg.scheme) {
    case Kind::StoreAndForward:
      return std::make_unique<StoreAndForwardScheme>(cfg);
    case Kind::VirtualCutThrough:
      return std::make_unique<VirtualCutThroughScheme>(cfg);
    case Kind::Wormhole:
      return std::make_unique<WormholeScheme>(cfg);
  }
  HP_ASSERT(false, "unknown flow-control scheme %d",
            static_cast<int>(cfg.scheme));
  return nullptr;
}

}  // namespace hp::fc
