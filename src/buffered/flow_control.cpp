#include "buffered/flow_control.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/hash.hpp"
#include "util/macros.hpp"

namespace hp::fc {

namespace {

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s.empty() || s.front() == '-') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size() || v > UINT32_MAX) {
    return false;
  }
  out = static_cast<std::uint32_t>(v);
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Registered metric ids for the fc model channel; names shared with the
// hot-potato channel where the semantics match, so the bench's per-row model
// dumps read uniformly.
struct FcChannel {
  obs::ModelChannel::Id injected, delivered, flits_injected, flits_absorbed,
      flit_moves, stalls, credits_returned, pending_waiting;
  obs::ModelChannel::Id pending_wait_steps, delivery_steps_sum,
      delivery_distance_sum, inject_wait_sum;
  obs::ModelChannel::Id max_inject_wait, max_queue_depth;
  obs::ModelChannel::Id delivery_hist;

  explicit FcChannel(obs::ModelChannel& ch) {
    injected = ch.counter("injected");
    delivered = ch.counter("delivered");
    flits_injected = ch.counter("flits_injected");
    flits_absorbed = ch.counter("flits_absorbed");
    flit_moves = ch.counter("flit_moves");
    stalls = ch.counter("stalls");
    credits_returned = ch.counter("credits_returned");
    pending_waiting = ch.counter("pending_waiting");
    pending_wait_steps = ch.real("pending_wait_steps");
    delivery_steps_sum = ch.real("delivery_steps_sum");
    delivery_distance_sum = ch.real("delivery_distance_sum");
    inject_wait_sum = ch.real("inject_wait_sum");
    max_inject_wait = ch.real_max("max_inject_wait");
    max_queue_depth = ch.real_max("max_queue_depth");
    delivery_hist = ch.hist("delivery_hist");
  }
};

}  // namespace

bool parse_kind(std::string_view name, Kind& out) {
  for (const Kind k : kAllKinds) {
    if (name == kind_name(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

bool FlowControlConfig::parse(std::string_view spec, FlowControlConfig& out,
                              std::string& err) {
  FlowControlConfig cfg = out;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view clause = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq == clause.size() - 1) {
      err = "fc: expected key=value, got '" + std::string(clause) + "'";
      return false;
    }
    const std::string_view key = trim(clause.substr(0, eq));
    const std::string_view val = trim(clause.substr(eq + 1));
    if (key == "scheme") {
      if (!parse_kind(val, cfg.scheme)) {
        err = "fc scheme: expected saf, vct or wormhole, got '" +
              std::string(val) + "'";
        return false;
      }
    } else if (key == "qcap") {
      std::uint32_t v = 0;
      if (!parse_u32(val, v) || v == 0) {
        err = "fc qcap: must be a positive flit count, got '" +
              std::string(val) + "'";
        return false;
      }
      cfg.queue_capacity = v;
    } else if (key == "flit") {
      std::uint32_t v = 0;
      if (!parse_u32(val, v) || v == 0) {
        err = "fc flit: must be a positive flits-per-packet count, got '" +
              std::string(val) + "'";
        return false;
      }
      cfg.flits_per_packet = v;
    } else if (key == "credit_delay") {
      std::uint32_t v = 0;
      if (!parse_u32(val, v) || v == 0) {
        err = "fc credit_delay: must be a positive step count, got '" +
              std::string(val) + "'";
        return false;
      }
      cfg.credit_delay = v;
    } else {
      err = "fc: unknown key '" + std::string(key) +
            "' (expected scheme, qcap, flit, credit_delay)";
      return false;
    }
  }
  if (cfg.scheme != Kind::Wormhole &&
      cfg.queue_capacity < cfg.flits_per_packet) {
    err = std::string("fc: ") + kind_name(cfg.scheme) +
          " buffers whole packets, so qcap (" +
          std::to_string(cfg.queue_capacity) + ") must be >= flit (" +
          std::to_string(cfg.flits_per_packet) + ")";
    return false;
  }
  out = cfg;
  return true;
}

std::string FlowControlConfig::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "scheme=%s,qcap=%u,flit=%u,credit_delay=%u",
                kind_name(scheme), queue_capacity, flits_per_packet,
                credit_delay);
  return buf;
}

FlowControlScheme::FlowControlScheme(const FlowControlConfig& cfg)
    : cfg_(cfg), grid_(cfg.n, cfg.topology), rng_(cfg.seed) {
  HP_ASSERT(cfg_.queue_capacity >= 1, "need at least one buffer slot");
  HP_ASSERT(cfg_.flits_per_packet >= 1, "need at least one flit per packet");
  HP_ASSERT(cfg_.credit_delay >= 1,
            "credit return takes at least one step (got %u)",
            cfg_.credit_delay);
  HP_ASSERT(cfg_.injector_fraction >= 0.0 && cfg_.injector_fraction <= 1.0,
            "injector_fraction out of [0,1]: %f", cfg_.injector_fraction);
  HP_ASSERT(cfg_.steps >= 1, "need at least one step");
  nodes_.resize(grid_.num_nodes());
  for (std::uint32_t r = 0; r < grid_.num_nodes(); ++r) {
    Node& node = nodes_[r];
    for (const net::Dir d : net::kAllDirs) {
      node.in[net::dir_index(d)] = BufferModel(cfg_.queue_capacity);
      OutputPort& op = node.out[net::dir_index(d)];
      op.exists = grid_.has_link(r, d);
      op.credits = op.exists ? cfg_.queue_capacity : 0;
    }
    // One-step delivery bins out to the horizon; same layout on every
    // router so the per-router histograms merge.
    node.stats.delivery_hist = util::Histogram(0.0, 1.0, cfg_.steps + 2);
    // The same deterministic per-router coin the hot-potato model uses, so
    // matched configurations inject from the same router set.
    if (cfg_.injector_fraction >= 1.0) {
      node.is_injector = true;
    } else if (cfg_.injector_fraction > 0.0) {
      const std::uint64_t h =
          util::splitmix64(util::hash_combine(cfg_.selection_seed, r));
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      node.is_injector = u < cfg_.injector_fraction;
    }
  }
}

void FlowControlScheme::mature_credits() {
  while (!credit_msgs_.empty() && credit_msgs_.front().due_step <= step_) {
    const CreditMsg m = credit_msgs_.front();
    credit_msgs_.pop_front();
    OutputPort& op = nodes_[m.router].out[m.out_dir];
    ++op.credits;
    HP_ASSERT(op.credits <= cfg_.queue_capacity,
              "credit overflow on router %u dir %u: %u > %u", m.router,
              m.out_dir, op.credits, cfg_.queue_capacity);
    ++nodes_[m.router].stats.credits_returned;
  }
}

void FlowControlScheme::step() {
  ++step_;
  mature_credits();
  for (Node& node : nodes_) {
    for (OutputPort& op : node.out) op.used_this_step = false;
  }
  // Decisions read only the deciding router's own state (credits stand in
  // for downstream occupancy); arrivals apply after every router has moved,
  // so a flit advances at most one hop per step and iteration order cannot
  // leak across routers.
  std::vector<Arrival> arrivals;
  arrivals.reserve(nodes_.size());
  for (std::uint32_t r = 0; r < grid_.num_nodes(); ++r) {
    for (const net::Dir d : net::kAllDirs) process_input_port(r, d, arrivals);
    process_source_port(r, arrivals);
  }
  for (const Arrival& a : arrivals) {
    Node& node = nodes_[a.router];
    node.in[a.in_dir].push(a.flit);
    node.stats.max_queue_depth = std::max<std::uint64_t>(
        node.stats.max_queue_depth, node.in[a.in_dir].occupancy());
  }
}

void FlowControlScheme::process_input_port(std::uint32_t r, net::Dir port,
                                           std::vector<Arrival>& arrivals) {
  if (!grid_.has_link(r, port)) return;
  Node& node = nodes_[r];
  BufferModel& buf = node.in[net::dir_index(port)];
  if (buf.empty()) return;
  const Flit f = buf.front();
  net::Dir out;
  bool packet_complete = true;
  if (is_head(f.type)) {
    // Buffered flits are never at their destination (flits absorb on
    // arrival), so the dimension-order next hop is well-defined.
    out = grid_.home_run_dir(r, f.dst);
    packet_complete = buf.head_packet_complete(cfg_.flits_per_packet);
  } else {
    out = buf.route();
  }
  if (!try_send(r, static_cast<std::uint8_t>(net::dir_index(port)), out, f,
                packet_complete, arrivals)) {
    ++node.stats.stalls;
    return;
  }
  buf.pop();
  if (is_head(f.type)) buf.set_route(out);
  if (is_tail(f.type)) buf.clear_route();
  // The freed slot flows back to the upstream sender as a credit event.
  const std::uint32_t up = grid_.neighbor(r, port);
  credit_msgs_.push_back(CreditMsg{
      step_ + cfg_.credit_delay, up,
      static_cast<std::uint8_t>(net::dir_index(net::opposite(port)))});
}

void FlowControlScheme::process_source_port(std::uint32_t r,
                                            std::vector<Arrival>& arrivals) {
  Node& node = nodes_[r];
  SourcePort& sp = node.src;
  if (!sp.has_pending) {
    if (!node.is_injector) return;
    // One pending packet per source, regenerated on completion. Draw order
    // is ascending router id, so the stream is deterministic.
    const hotpotato::TrafficDraw draw =
        hotpotato::draw_traffic_destination(grid_, cfg_.traffic, r, rng_);
    sp.has_pending = true;
    sp.launched = false;
    sp.flits_sent = 0;
    sp.dst = draw.dst;
    sp.distance = static_cast<std::uint16_t>(grid_.distance(r, draw.dst));
    sp.pending_since = step_;
  }
  const Flit f{flit_type_at(sp.flits_sent, cfg_.flits_per_packet), sp.dst,
               sp.launched ? sp.birth_step : step_, sp.distance};
  // The whole packet sits in the source NIC, so it always counts as fully
  // buffered; admission is gated purely by downstream credits — that gate
  // IS the flow control the paper's title refers to.
  const net::Dir out = sp.launched ? sp.route : grid_.home_run_dir(r, sp.dst);
  if (!try_send(r, kSourcePort, out, f, /*packet_complete=*/true, arrivals)) {
    // Pre-launch blocking is measured as injection wait; mid-packet
    // blocking holds the link and counts as a stall like any other.
    if (sp.launched) ++node.stats.stalls;
    return;
  }
  ++node.stats.flits_injected;
  if (!sp.launched) {
    sp.launched = true;
    sp.route = out;
    sp.birth_step = step_;
    ++node.stats.injected;
    node.stats.any_injected = true;
    const double wait = static_cast<double>(step_ - sp.pending_since);
    node.stats.inject_wait_sum += wait;
    node.stats.max_inject_wait = std::max(node.stats.max_inject_wait, wait);
  }
  ++sp.flits_sent;
  if (sp.flits_sent == cfg_.flits_per_packet) {
    sp.has_pending = false;
    sp.launched = false;
    sp.flits_sent = 0;
  }
}

bool FlowControlScheme::try_send(std::uint32_t r, std::uint8_t from_port,
                                 net::Dir out, const Flit& f,
                                 bool packet_complete,
                                 std::vector<Arrival>& arrivals) {
  Node& node = nodes_[r];
  HP_ASSERT(grid_.has_link(r, out), "router %u routing across missing %s link",
            r, net::dir_name(out));
  OutputPort& op = node.out[net::dir_index(out)];
  if (op.used_this_step) return false;
  if (op.owner != kNoOwner && op.owner != from_port) return false;
  const std::uint32_t dst_router = grid_.neighbor(r, out);
  const bool absorbing = dst_router == f.dst;
  if (is_head(f.type)) {
    if (requires_full_packet_buffering() && !packet_complete) return false;
    // Absorption consumes the flit at the destination NIC — no downstream
    // buffer slot, hence no credit, is needed.
    if (!absorbing && op.credits < min_credits_for_head()) return false;
  } else if (!absorbing && op.credits < 1) {
    return false;
  }
  op.used_this_step = true;
  op.owner = is_tail(f.type) ? kNoOwner : from_port;
  if (!absorbing) --op.credits;
  ++node.stats.flit_moves;
  if (absorbing) {
    absorb(dst_router, f);
  } else {
    arrivals.push_back(Arrival{
        dst_router,
        static_cast<std::uint8_t>(net::dir_index(net::opposite(out))), f});
  }
  return true;
}

void FlowControlScheme::absorb(std::uint32_t dst_router, const Flit& f) {
  RouterStats& st = nodes_[dst_router].stats;
  ++st.flits_absorbed;
  if (is_tail(f.type)) {
    ++st.delivered;
    const double steps = static_cast<double>(step_ - f.birth_step + 1);
    st.delivery_steps_sum += steps;
    st.delivery_distance_sum += static_cast<double>(f.initial_distance);
    st.delivery_hist.add(steps);
  }
}

void FlowControlScheme::seed_packet(std::uint32_t src, std::uint32_t dst) {
  HP_ASSERT(src < grid_.num_nodes() && dst < grid_.num_nodes() && src != dst,
            "seed_packet(%u, %u) on a %u-router network", src, dst,
            grid_.num_nodes());
  SourcePort& sp = nodes_[src].src;
  HP_ASSERT(!sp.has_pending, "router %u already holds a pending packet", src);
  sp.has_pending = true;
  sp.launched = false;
  sp.flits_sent = 0;
  sp.dst = dst;
  sp.distance = static_cast<std::uint16_t>(grid_.distance(src, dst));
  sp.pending_since = step_;
}

std::uint64_t FlowControlScheme::flits_in_network() const noexcept {
  std::uint64_t total = 0;
  for (const Node& node : nodes_) {
    for (const BufferModel& buf : node.in) total += buf.occupancy();
  }
  return total;
}

bool FlowControlScheme::quiescent() const noexcept {
  if (!credit_msgs_.empty()) return false;
  for (const Node& node : nodes_) {
    if (node.src.has_pending) return false;
    for (const BufferModel& buf : node.in) {
      if (!buf.empty()) return false;
    }
    for (const OutputPort& op : node.out) {
      if (op.exists && op.credits != cfg_.queue_capacity) return false;
    }
  }
  return true;
}

obs::ModelChannel FlowControlScheme::collect_channel() const {
  obs::ModelChannel ch;
  FcChannel c(ch);
  for (std::uint32_t r = 0; r < grid_.num_nodes(); ++r) {
    const Node& node = nodes_[r];
    const RouterStats& st = node.stats;
    ch.add(c.injected, st.injected);
    ch.add(c.delivered, st.delivered);
    ch.add(c.flits_injected, st.flits_injected);
    ch.add(c.flits_absorbed, st.flits_absorbed);
    ch.add(c.flit_moves, st.flit_moves);
    ch.add(c.stalls, st.stalls);
    ch.add(c.credits_returned, st.credits_returned);
    // Mid-wait accounting mirrors the hot-potato channel: a packet that
    // never launched counts against the collection horizon.
    if (node.src.has_pending && !node.src.launched) {
      ch.add(c.pending_waiting, 1);
      ch.add_real(c.pending_wait_steps,
                  static_cast<double>(step_ - node.src.pending_since));
    }
    ch.add_real(c.delivery_steps_sum, st.delivery_steps_sum);
    ch.add_real(c.delivery_distance_sum, st.delivery_distance_sum);
    ch.add_real(c.inject_wait_sum, st.inject_wait_sum);
    if (st.any_injected) ch.push_max(c.max_inject_wait, st.max_inject_wait);
    if (st.max_queue_depth > 0) {
      ch.push_max(c.max_queue_depth,
                  static_cast<double>(st.max_queue_depth));
    }
    ch.merge_hist(c.delivery_hist, st.delivery_hist);
  }
  return ch;
}

FcReport FlowControlScheme::run() {
  for (std::uint32_t s = 0; s < cfg_.steps; ++s) step();
  return report();
}

FcReport report_from_channel(const obs::ModelChannel& ch) {
  FcReport r;
  r.injected = ch.counter_value("injected");
  r.delivered = ch.counter_value("delivered");
  r.flits_injected = ch.counter_value("flits_injected");
  r.flits_absorbed = ch.counter_value("flits_absorbed");
  r.flit_moves = ch.counter_value("flit_moves");
  r.stalls = ch.counter_value("stalls");
  r.credits_returned = ch.counter_value("credits_returned");
  r.pending_waiting = ch.counter_value("pending_waiting");
  r.pending_wait_steps = ch.real_value("pending_wait_steps");
  r.delivery_steps_sum = ch.real_value("delivery_steps_sum");
  r.delivery_distance_sum = ch.real_value("delivery_distance_sum");
  r.inject_wait_sum = ch.real_value("inject_wait_sum");
  r.max_inject_wait = ch.real_value("max_inject_wait");
  r.max_queue_depth = ch.real_value("max_queue_depth");
  if (const util::Histogram* h = ch.hist_value("delivery_hist")) {
    r.delivery_hist = *h;
  }
  return r;
}

std::string FcReport::summary_line() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "delivered=%llu injected=%llu avg_delivery=%.3f "
                "per_hop=%.3f avg_wait=%.3f max_wait=%.0f stalls=%llu",
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(injected),
                avg_delivery_steps(), per_hop_latency(), avg_inject_wait(),
                max_inject_wait, static_cast<unsigned long long>(stalls));
  return buf;
}

}  // namespace hp::fc
