#pragma once

// The "with flow control" contrast system: a store-and-forward torus router
// with finite output FIFOs and credit-style backpressure. This is the class
// of network the paper's title argues against — sources must throttle to the
// network's buffer state, which under-utilizes links, while hot-potato keeps
// packets moving with no flow control at all (report Section 1.2.3).
//
// Packets are dimension-order routed (row first, then column — the same
// one-bend paths the BHW home-run rule uses). Each step, every queue head
// moves one hop iff the downstream queue it needs has a free slot after this
// step's departures; otherwise it stalls (backpressure). Injection enqueues
// at the source only when the source's own queue has space: that admission
// gate *is* the flow control.
//
// This model is a synchronous two-phase simulator rather than a DES model:
// move decisions need neighbor queue occupancy, which logical processes
// cannot inspect — and as a baseline comparator it needs no Time Warp.
// Determinism comes from fixed iteration order and a seeded RNG.

#include <cstdint>
#include <deque>
#include <vector>

#include "net/torus.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hp::buffered {

struct BufferedConfig {
  std::int32_t n = 8;
  double injector_fraction = 0.5;
  std::uint32_t steps = 100;
  std::uint32_t queue_capacity = 4;  // per output FIFO
  std::uint64_t seed = 1;
  std::uint64_t selection_seed = 0x5eedU;
};

struct BufferedReport {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t moves = 0;           // link traversals
  std::uint64_t stalls = 0;          // queue heads blocked by backpressure
  double delivery_steps_sum = 0.0;   // injection -> absorption, incl. queueing
  double delivery_distance_sum = 0.0;
  double inject_wait_sum = 0.0;
  double max_inject_wait = 0.0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t in_flight_end = 0;

  double avg_delivery_steps() const noexcept {
    return delivered ? delivery_steps_sum / static_cast<double>(delivered) : 0.0;
  }
  double stretch() const noexcept {
    return delivery_distance_sum > 0 ? delivery_steps_sum / delivery_distance_sum
                                     : 0.0;
  }
  double avg_inject_wait() const noexcept {
    return injected ? inject_wait_sum / static_cast<double>(injected) : 0.0;
  }
  double link_utilization(std::uint32_t num_routers,
                          std::uint32_t steps) const noexcept {
    const double slots =
        4.0 * static_cast<double>(num_routers) * static_cast<double>(steps);
    return slots ? static_cast<double>(moves) / slots : 0.0;
  }
};

class BufferedNetwork {
 public:
  explicit BufferedNetwork(BufferedConfig cfg);

  // Advance one synchronous step.
  void step();
  // Run the configured number of steps and return the report.
  BufferedReport run();

  const BufferedReport& report() const noexcept { return report_; }
  std::uint32_t current_step() const noexcept { return step_; }
  std::uint64_t packets_queued() const noexcept;

 private:
  struct Packet {
    std::uint32_t dst = 0;
    std::uint32_t birth_step = 0;
    std::uint16_t initial_distance = 0;
  };
  struct Router {
    std::deque<Packet> q[net::kNumDirs];
    bool is_injector = false;
    bool has_pending = false;
    Packet pending;
    std::uint32_t pending_since = 0;
  };

  net::Dir route_dir(std::uint32_t here, std::uint32_t dst) const;
  void deliver(const Packet& p);

  BufferedConfig cfg_;
  net::Torus torus_;
  std::vector<Router> routers_;
  util::ReversibleRng rng_;
  BufferedReport report_;
  std::uint32_t step_ = 0;
};

}  // namespace hp::buffered
