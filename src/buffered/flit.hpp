#pragma once

// Flit-level serialization for the buffered flow-control schemes (the
// Graphite `dividePacket` idiom): a packet is carved into `flits_per_packet`
// flow-control digits that traverse one link per step. The head flit carries
// the routing decision; body flits follow the head's established path; the
// tail releases the path. A one-flit packet is its own head and tail.

#include <cstdint>
#include <vector>

#include "util/macros.hpp"

namespace hp::fc {

enum class FlitType : std::uint8_t { Head = 0, Body, Tail, HeadTail };

constexpr const char* flit_type_name(FlitType t) noexcept {
  switch (t) {
    case FlitType::Head: return "head";
    case FlitType::Body: return "body";
    case FlitType::Tail: return "tail";
    case FlitType::HeadTail: return "head_tail";
  }
  return "?";
}

constexpr bool is_head(FlitType t) noexcept {
  return t == FlitType::Head || t == FlitType::HeadTail;
}
constexpr bool is_tail(FlitType t) noexcept {
  return t == FlitType::Tail || t == FlitType::HeadTail;
}

// Every flit carries its packet's identity: routing needs only the
// destination, and the delivery statistics need the birth step and the
// source-to-destination shortest distance (recorded at injection).
struct Flit {
  FlitType type = FlitType::HeadTail;
  std::uint32_t dst = 0;
  std::uint32_t birth_step = 0;
  std::uint16_t initial_distance = 0;
};

// Flit type of position `seq` (0-based) in a packet of `flits` flits.
constexpr FlitType flit_type_at(std::uint32_t seq, std::uint32_t flits) noexcept {
  if (flits == 1) return FlitType::HeadTail;
  if (seq == 0) return FlitType::Head;
  return seq + 1 == flits ? FlitType::Tail : FlitType::Body;
}

// Packet -> flit division: appends the packet's `flits` flits in wire order.
inline void divide_packet(std::uint32_t dst, std::uint32_t birth_step,
                          std::uint16_t initial_distance, std::uint32_t flits,
                          std::vector<Flit>& out) {
  HP_ASSERT(flits >= 1, "a packet is at least one flit");
  for (std::uint32_t seq = 0; seq < flits; ++seq) {
    out.push_back(Flit{flit_type_at(seq, flits), dst, birth_step,
                       initial_distance});
  }
}

}  // namespace hp::fc
