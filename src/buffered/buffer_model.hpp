#pragma once

// Per-input-channel buffer for the flow-control schemes (the Graphite
// BufferModel idiom, specialized for the synchronous step simulator): a
// bounded flit FIFO plus the input's switching state — the output direction
// the packet currently streaming through this input has been allocated.
//
// The buffer never overflows by construction: the upstream router only sends
// when it holds a credit for a free slot here (see FlowControlScheme), and
// the push asserts the invariant.

#include <algorithm>
#include <cstdint>
#include <deque>

#include "buffered/flit.hpp"
#include "net/direction.hpp"
#include "util/macros.hpp"

namespace hp::fc {

class BufferModel {
 public:
  BufferModel() = default;
  explicit BufferModel(std::uint32_t capacity_flits) : cap_(capacity_flits) {
    HP_ASSERT(cap_ >= 1, "input buffer needs at least one flit slot");
  }

  bool empty() const noexcept { return q_.empty(); }
  std::uint32_t occupancy() const noexcept {
    return static_cast<std::uint32_t>(q_.size());
  }
  std::uint32_t capacity() const noexcept { return cap_; }

  const Flit& front() const {
    HP_ASSERT(!q_.empty(), "front() on an empty buffer");
    return q_.front();
  }

  void push(const Flit& f) {
    HP_ASSERT(q_.size() < cap_,
              "buffer overflow: credit accounting let %zu flits into %u slots",
              q_.size() + 1, cap_);
    q_.push_back(f);
  }

  Flit pop() {
    HP_ASSERT(!q_.empty(), "pop() on an empty buffer");
    const Flit f = q_.front();
    q_.pop_front();
    return f;
  }

  // Switching state: the output direction allocated to the packet currently
  // streaming through this input. Set when its head flit wins the output,
  // cleared when its tail departs.
  bool route_set() const noexcept { return route_set_; }
  net::Dir route() const noexcept {
    HP_ASSERT(route_set_, "route() with no allocated output");
    return route_;
  }
  void set_route(net::Dir d) noexcept {
    route_ = d;
    route_set_ = true;
  }
  void clear_route() noexcept { route_set_ = false; }

  // True when every flit of the packet at the buffer head is present (the
  // store-and-forward admission requirement). Flits of one packet travel
  // contiguously and in order on a link, so the head packet occupies a
  // prefix of the FIFO; it is complete iff a tail appears within the first
  // `flits_per_packet` slots.
  bool head_packet_complete(std::uint32_t flits_per_packet) const noexcept {
    const std::uint32_t scan =
        std::min<std::uint32_t>(flits_per_packet, occupancy());
    for (std::uint32_t i = 0; i < scan; ++i) {
      if (is_tail(q_[i].type)) return true;
    }
    return false;
  }

 private:
  std::deque<Flit> q_;
  std::uint32_t cap_ = 1;
  net::Dir route_ = net::Dir::North;
  bool route_set_ = false;
};

}  // namespace hp::fc
