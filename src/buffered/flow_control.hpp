#pragma once

// The "with flow control" contrast family: a pluggable FlowControlScheme
// hierarchy (store-and-forward, virtual cut-through, wormhole) in the
// Graphite flow_control_scheme.h idiom — an abstract scheme with a
// parse()/create() factory, per-input BufferModels, flit-level packet
// serialization (divide_packet), and credit-based buffer management
// messages as first-class events. This is the class of network the paper's
// title argues against: sources throttle to downstream buffer state, which
// under-utilizes links, while hot-potato keeps packets moving with no flow
// control at all (report Section 1.2.3).
//
// Router micro-architecture (shared by all schemes): each router has one
// bounded flit FIFO per incoming link (BufferModel), one source port holding
// the router's pending injection packet, and four output links that carry
// one flit per step. The upstream side of every link tracks credits — free
// flit slots in the downstream input buffer — decremented on send and
// returned by an explicit CreditMsg that matures `credit_delay` steps after
// the downstream router frees the slot. Packets are dimension-order routed
// (the same one-bend home-run paths the BHW rule uses); a head flit that
// wins an output owns that link until its tail passes, so a packet's flits
// never interleave with another's on a link.
//
// Scheme differences are confined to the head-flit admission rule:
//   store-and-forward  — the whole packet must be buffered locally AND the
//                        downstream buffer must have room for all of it;
//   virtual cut-through — downstream room for the whole packet, but
//                        forwarding starts as soon as the head arrives;
//   wormhole           — one free downstream slot suffices; a blocked head
//                        stalls the worm in place, holding buffers (and
//                        links) across multiple routers.
//
// Like its predecessor, this is a synchronous two-phase simulator rather
// than a DES model: within a step every router reads only its own state
// (credits make downstream occupancy locally visible), arrivals apply at
// the end of the step, and credit returns mature at future step starts —
// so the fixed (router, port) iteration order plus a seeded RNG make every
// scheme bit-deterministic. Statistics flow through obs::ModelChannel in
// ascending router order (bit-stable double sums), the same reduction /
// --json / determinism_check surface the hot-potato model uses.

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "buffered/buffer_model.hpp"
#include "buffered/flit.hpp"
#include "hotpotato/traffic.hpp"
#include "net/grid.hpp"
#include "obs/model_channel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hp::fc {

enum class Kind : std::uint8_t {
  StoreAndForward = 0,
  VirtualCutThrough,
  Wormhole,
};

inline constexpr std::array<Kind, 3> kAllKinds = {
    Kind::StoreAndForward, Kind::VirtualCutThrough, Kind::Wormhole};

constexpr const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::StoreAndForward: return "saf";
    case Kind::VirtualCutThrough: return "vct";
    case Kind::Wormhole: return "wormhole";
  }
  return "?";
}

// "saf" | "vct" | "wormhole" -> Kind. Returns false on anything else.
bool parse_kind(std::string_view name, Kind& out);

// One options struct for the whole family. The scheme half (scheme, qcap,
// flit, credit_delay) is what the `--fc=` CLI spec parses; the network /
// workload half mirrors hotpotato::HotPotatoConfig so a buffered run shares
// core::SimulationOptions with the hot-potato model — core::run_flow_control
// fills it from opts.model / opts.engine.
struct FlowControlConfig {
  // --- scheme knobs (the --fc= spec) ---
  Kind scheme = Kind::StoreAndForward;
  std::uint32_t queue_capacity = 8;    // per-input buffer capacity, in flits
  std::uint32_t flits_per_packet = 1;  // packet serialization length
  std::uint32_t credit_delay = 1;      // steps for a freed slot to become a
                                       // usable credit upstream (>= 1)

  // --- network / workload (filled from SimulationOptions by core) ---
  std::int32_t n = 8;
  net::GridKind topology = net::GridKind::Torus;
  double injector_fraction = 0.5;
  hotpotato::TrafficPattern traffic = hotpotato::TrafficPattern::Uniform;
  std::uint32_t steps = 100;
  std::uint64_t seed = 1;
  std::uint64_t selection_seed = 0x5eedU;

  std::uint32_t num_routers() const noexcept {
    return static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);
  }

  // Parses a `--fc=` spec: comma-separated key=value clauses.
  //
  //   scheme=wormhole,qcap=4,flit=4,credit_delay=2
  //
  // Keys: scheme=<saf|vct|wormhole>, qcap=N (flits, >= 1), flit=N (>= 1),
  // credit_delay=N (>= 1). An empty spec is valid and keeps the defaults.
  // Only the scheme half of `out` is touched. Returns false and fills `err`
  // (never touching `out`) on malformed specs: unknown key, unknown scheme,
  // non-numeric or zero value, or qcap < flit for saf/vct (those schemes
  // must be able to buffer a whole packet per hop).
  static bool parse(std::string_view spec, FlowControlConfig& out,
                    std::string& err);

  // Canonical spec round-trip (scheme half only).
  std::string to_string() const;
};

// Typed view over a channel built by FlowControlScheme::collect_channel —
// pure derived accessors, no hand-rolled aggregation of its own.
struct FcReport {
  std::uint64_t injected = 0;         // packets that entered the network
  std::uint64_t delivered = 0;        // packets fully absorbed
  std::uint64_t flits_injected = 0;   // flits sent from source ports
  std::uint64_t flits_absorbed = 0;   // flits consumed at destinations
  std::uint64_t flit_moves = 0;       // flit-link traversals
  std::uint64_t stalls = 0;           // head flits blocked by flow control
  std::uint64_t credits_returned = 0; // matured CreditMsgs
  // Sources whose pending packet never entered the network by the horizon,
  // and the steps those packets had waited by then (derived from final
  // state, like the hot-potato equivalents).
  std::uint64_t pending_waiting = 0;
  double pending_wait_steps = 0.0;

  double delivery_steps_sum = 0.0;    // injection -> tail absorption
  double delivery_distance_sum = 0.0;
  double inject_wait_sum = 0.0;
  double max_inject_wait = 0.0;
  double max_queue_depth = 0.0;       // deepest input buffer ever (flits)
  util::Histogram delivery_hist;

  bool operator==(const FcReport&) const = default;

  std::uint64_t in_flight() const noexcept { return injected - delivered; }
  double avg_delivery_steps() const noexcept {
    return delivered ? delivery_steps_sum / static_cast<double>(delivered)
                     : 0.0;
  }
  // Mean steps per shortest-path hop (>= flits_per_packet for SAF, ~1 for
  // cut-through schemes when uncontended).
  double per_hop_latency() const noexcept {
    return delivery_distance_sum > 0.0
               ? delivery_steps_sum / delivery_distance_sum
               : 0.0;
  }
  double avg_inject_wait() const noexcept {
    return injected ? inject_wait_sum / static_cast<double>(injected) : 0.0;
  }
  // Fraction of flit-link slots actually used, over the topology's real
  // directed link count (a mesh has fewer than kNumDirs per router).
  double link_utilization(const net::Grid& g, std::uint32_t steps) const noexcept {
    const double slots = static_cast<double>(g.num_directed_links()) *
                         static_cast<double>(steps);
    return slots > 0.0 ? static_cast<double>(flit_moves) / slots : 0.0;
  }

  std::string summary_line() const;
};

FcReport report_from_channel(const obs::ModelChannel& ch);

class FlowControlScheme {
 public:
  // Factory in the Graphite idiom: one call site per scheme enum entry.
  // Asserts cfg invariants (qcap >= flit for saf/vct, credit_delay >= 1).
  static std::unique_ptr<FlowControlScheme> create(
      const FlowControlConfig& cfg);

  virtual ~FlowControlScheme() = default;

  virtual Kind kind() const noexcept = 0;
  const char* name() const noexcept { return kind_name(kind()); }

  const FlowControlConfig& config() const noexcept { return cfg_; }
  const net::Grid& grid() const noexcept { return grid_; }

  // Advance one synchronous step.
  void step();
  // Run the configured number of steps and return the channel-derived report.
  FcReport run();

  // Hand `src` a specific pending packet (test / trace hook). It competes
  // for links exactly like injector traffic; the router need not be an
  // injector, and draws no RNG.
  void seed_packet(std::uint32_t src, std::uint32_t dst);

  std::uint32_t current_step() const noexcept { return step_; }
  // Structural count of flits resident in input buffers (the conservation
  // check: equals flits_injected - flits_absorbed at every step boundary).
  std::uint64_t flits_in_network() const noexcept;
  std::size_t credit_msgs_pending() const noexcept {
    return credit_msgs_.size();
  }
  // No flits in buffers, no pending packets mid-injection, no credits in
  // flight: every credit counter has returned to full.
  bool quiescent() const noexcept;

  // Fold every router's statistics into a fresh channel in ascending router
  // order (bit-stable double sums; registration is idempotent). Mid-wait
  // injection accounting is pinned to the current step, so collecting after
  // run() uses the configured horizon.
  obs::ModelChannel collect_channel() const;
  // Convenience: collect_channel + report_from_channel.
  FcReport report() const { return report_from_channel(collect_channel()); }

 protected:
  explicit FlowControlScheme(const FlowControlConfig& cfg);

  // Scheme policy, consulted when a head flit asks for an output:
  // must the whole packet be buffered locally before it may advance?
  virtual bool requires_full_packet_buffering() const noexcept = 0;
  // ...and how many downstream credits must be on hand? (flit-count for
  // packet-granularity schemes, 1 for wormhole)
  virtual std::uint32_t min_credits_for_head() const noexcept = 0;

 private:
  struct RouterStats {
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t flits_injected = 0;
    std::uint64_t flits_absorbed = 0;
    std::uint64_t flit_moves = 0;
    std::uint64_t stalls = 0;
    std::uint64_t credits_returned = 0;
    double delivery_steps_sum = 0.0;
    double delivery_distance_sum = 0.0;
    double inject_wait_sum = 0.0;
    double max_inject_wait = 0.0;
    bool any_injected = false;
    std::uint64_t max_queue_depth = 0;
    util::Histogram delivery_hist;
  };
  struct OutputPort {
    std::uint32_t credits = 0;
    std::uint8_t owner = kNoOwner;  // input port streaming through this link
    bool exists = false;            // mesh boundary links are absent
    bool used_this_step = false;    // one flit per link per step
  };
  struct SourcePort {
    bool has_pending = false;
    bool launched = false;          // head has entered the network
    std::uint32_t dst = 0;
    std::uint32_t pending_since = 0;
    std::uint32_t birth_step = 0;
    std::uint16_t distance = 0;
    std::uint32_t flits_sent = 0;
    net::Dir route = net::Dir::North;  // locked at launch
  };
  struct Node {
    std::array<BufferModel, net::kNumDirs> in;  // indexed by incoming dir
    std::array<OutputPort, net::kNumDirs> out;
    SourcePort src;
    bool is_injector = false;
    RouterStats stats;
  };
  // Credit-based buffer management as a first-class event: "one flit slot
  // freed on the buffer `router` feeds through output `out_dir`", usable
  // from step `due_step`. The delay is constant, so the deque stays sorted
  // by appending.
  struct CreditMsg {
    std::uint32_t due_step = 0;
    std::uint32_t router = 0;
    std::uint8_t out_dir = 0;
  };
  struct Arrival {
    std::uint32_t router = 0;
    std::uint8_t in_dir = 0;
    Flit flit;
  };

  static constexpr std::uint8_t kNoOwner = 0xFF;
  static constexpr std::uint8_t kSourcePort = net::kNumDirs;

  void mature_credits();
  void process_input_port(std::uint32_t r, net::Dir port,
                          std::vector<Arrival>& arrivals);
  void process_source_port(std::uint32_t r, std::vector<Arrival>& arrivals);
  // Admission check + effects common to both port kinds. Returns true when
  // the flit moved (caller then pops it from its origin).
  bool try_send(std::uint32_t r, std::uint8_t from_port, net::Dir out,
                const Flit& f, bool packet_complete,
                std::vector<Arrival>& arrivals);
  void absorb(std::uint32_t dst_router, const Flit& f);

  FlowControlConfig cfg_;
  net::Grid grid_;
  std::vector<Node> nodes_;
  std::deque<CreditMsg> credit_msgs_;
  util::ReversibleRng rng_;
  std::uint32_t step_ = 0;
};

}  // namespace hp::fc
