#pragma once

// The three concrete flow-control schemes. All router mechanics live in the
// FlowControlScheme base; each scheme is exactly its head-flit admission
// policy (see flow_control.hpp for the taxonomy). Most callers never name
// these types — they go through FlowControlScheme::create(cfg).

#include "buffered/flow_control.hpp"

namespace hp::fc {

// Classic packet switching: a packet advances only once it is entirely
// buffered at the current hop and the next hop can hold all of it. Per-hop
// latency is >= flits_per_packet steps, the paper-era baseline the other
// schemes improve on.
class StoreAndForwardScheme final : public FlowControlScheme {
 public:
  explicit StoreAndForwardScheme(const FlowControlConfig& cfg)
      : FlowControlScheme(cfg) {}
  Kind kind() const noexcept override { return Kind::StoreAndForward; }

 protected:
  bool requires_full_packet_buffering() const noexcept override {
    return true;
  }
  std::uint32_t min_credits_for_head() const noexcept override {
    return config().flits_per_packet;
  }
};

// Virtual cut-through (Kermani & Kleinrock): the head departs as soon as it
// arrives, pipelining the packet across hops, but still reserves a whole
// packet's worth of downstream buffering — a blocked packet collapses into
// one router's buffer instead of blocking links.
class VirtualCutThroughScheme final : public FlowControlScheme {
 public:
  explicit VirtualCutThroughScheme(const FlowControlConfig& cfg)
      : FlowControlScheme(cfg) {}
  Kind kind() const noexcept override { return Kind::VirtualCutThrough; }

 protected:
  bool requires_full_packet_buffering() const noexcept override {
    return false;
  }
  std::uint32_t min_credits_for_head() const noexcept override {
    return config().flits_per_packet;
  }
};

// Wormhole: cut-through latency with flit-granularity buffering — one free
// downstream slot admits the head. Cheap buffers, but a blocked worm stalls
// in place holding buffers and link ownership across routers, the coupling
// that makes wormhole saturate earliest under load (and, with a single VC,
// lets cyclic worm dependencies deadlock on the torus).
class WormholeScheme final : public FlowControlScheme {
 public:
  explicit WormholeScheme(const FlowControlConfig& cfg)
      : FlowControlScheme(cfg) {}
  Kind kind() const noexcept override { return Kind::Wormhole; }

 protected:
  bool requires_full_packet_buffering() const noexcept override {
    return false;
  }
  std::uint32_t min_credits_for_head() const noexcept override { return 1; }
};

}  // namespace hp::fc
