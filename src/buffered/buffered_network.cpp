#include "buffered/buffered_network.hpp"

#include <algorithm>

#include "util/hash.hpp"
#include "util/macros.hpp"

namespace hp::buffered {

BufferedNetwork::BufferedNetwork(BufferedConfig cfg)
    : cfg_(cfg), torus_(cfg.n), rng_(cfg.seed) {
  HP_ASSERT(cfg_.queue_capacity >= 1, "need at least one queue slot");
  routers_.resize(torus_.num_nodes());
  for (std::uint32_t lp = 0; lp < torus_.num_nodes(); ++lp) {
    if (cfg_.injector_fraction >= 1.0) {
      routers_[lp].is_injector = true;
    } else if (cfg_.injector_fraction > 0.0) {
      const std::uint64_t h =
          util::splitmix64(util::hash_combine(cfg_.selection_seed, lp));
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      routers_[lp].is_injector = u < cfg_.injector_fraction;
    }
  }
}

net::Dir BufferedNetwork::route_dir(std::uint32_t here,
                                    std::uint32_t dst) const {
  // Dimension order = the home-run (one-bend) path.
  return torus_.home_run_dir(here, dst);
}

void BufferedNetwork::deliver(const Packet& p) {
  ++report_.delivered;
  report_.delivery_steps_sum += static_cast<double>(step_ - p.birth_step + 1);
  report_.delivery_distance_sum += static_cast<double>(p.initial_distance);
}

void BufferedNetwork::step() {
  ++step_;
  const std::uint32_t nn = torus_.num_nodes();

  // Phase 1: each queue head nominates a move based on start-of-step state.
  struct Move {
    std::uint32_t src;
    net::Dir out;
    std::uint32_t dst_router;
  };
  std::vector<Move> moves;
  moves.reserve(nn);
  // Occupancy snapshot and per-queue departure flags, so "space after this
  // step's departure" is computable without order dependence.
  std::vector<std::uint8_t> departs(nn * net::kNumDirs, 0);
  for (std::uint32_t r = 0; r < nn; ++r) {
    for (net::Dir d : net::kAllDirs) {
      if (!routers_[r].q[net::dir_index(d)].empty()) {
        moves.push_back(Move{r, d, torus_.neighbor(r, d)});
      }
    }
  }

  // Phase 2: admission. A move is accepted iff the packet is absorbed at the
  // next router, or the downstream queue it needs has space counting this
  // step's own departure. Accepted arrivals fill space in deterministic
  // (router id, direction) order; the rest stall.
  std::vector<std::uint32_t> incoming(nn * net::kNumDirs, 0);
  // First pass: mark which queues depart (head accepted is decided by space
  // downstream; to break the mutual-dependency cycle — a full queue whose
  // head also leaves this step — we use start-of-step occupancy minus a
  // guaranteed departure only for absorption moves, the conservative
  // store-and-forward rule).
  for (const Move& mv : moves) {
    Router& src = routers_[mv.src];
    auto& q = src.q[net::dir_index(mv.out)];
    const Packet& p = q.front();
    bool accepted;
    if (p.dst == mv.dst_router) {
      accepted = true;  // absorption never needs buffer space
    } else {
      const net::Dir next_out = route_dir(mv.dst_router, p.dst);
      const auto slot =
          mv.dst_router * net::kNumDirs +
          static_cast<std::uint32_t>(net::dir_index(next_out));
      const auto& nq = routers_[mv.dst_router].q[net::dir_index(next_out)];
      if (nq.size() + incoming[slot] < cfg_.queue_capacity) {
        accepted = true;
        ++incoming[slot];
      } else {
        accepted = false;
      }
    }
    if (accepted) {
      departs[mv.src * net::kNumDirs +
              static_cast<std::uint32_t>(net::dir_index(mv.out))] = 1;
    } else {
      ++report_.stalls;
    }
  }

  // Apply accepted moves: pop sources, then push destinations (absorptions
  // recorded immediately).
  std::vector<std::pair<std::uint32_t, Packet>> pushes;  // (queue slot, pkt)
  pushes.reserve(moves.size());
  for (const Move& mv : moves) {
    const auto s = mv.src * net::kNumDirs +
                   static_cast<std::uint32_t>(net::dir_index(mv.out));
    if (!departs[s]) continue;
    Router& src = routers_[mv.src];
    Packet p = src.q[net::dir_index(mv.out)].front();
    src.q[net::dir_index(mv.out)].pop_front();
    ++report_.moves;
    if (p.dst == mv.dst_router) {
      deliver(p);
    } else {
      const net::Dir next_out = route_dir(mv.dst_router, p.dst);
      pushes.emplace_back(mv.dst_router * net::kNumDirs +
                              static_cast<std::uint32_t>(
                                  net::dir_index(next_out)),
                          p);
    }
  }
  for (auto& [slot, p] : pushes) {
    auto& q = routers_[slot / net::kNumDirs].q[slot % net::kNumDirs];
    q.push_back(p);
    HP_ASSERT(q.size() <= cfg_.queue_capacity, "queue overflow");
    report_.max_queue_depth = std::max<std::uint64_t>(report_.max_queue_depth,
                                                      q.size());
  }

  // Phase 3: injection under flow control — admit only into a non-full
  // local queue.
  for (std::uint32_t r = 0; r < nn; ++r) {
    Router& rt = routers_[r];
    if (!rt.is_injector) continue;
    if (!rt.has_pending) {
      auto idx = static_cast<std::uint32_t>(rng_.integer(0, nn - 2));
      if (idx >= r) ++idx;
      rt.pending = Packet{idx, 0,
                          static_cast<std::uint16_t>(torus_.distance(r, idx))};
      rt.has_pending = true;
      rt.pending_since = step_;
    }
    const net::Dir out = route_dir(r, rt.pending.dst);
    auto& q = rt.q[net::dir_index(out)];
    if (q.size() < cfg_.queue_capacity) {
      rt.pending.birth_step = step_;
      q.push_back(rt.pending);
      report_.max_queue_depth = std::max<std::uint64_t>(
          report_.max_queue_depth, q.size());
      const double wait = static_cast<double>(step_ - rt.pending_since);
      ++report_.injected;
      report_.inject_wait_sum += wait;
      report_.max_inject_wait = std::max(report_.max_inject_wait, wait);
      rt.has_pending = false;
    }
  }
}

std::uint64_t BufferedNetwork::packets_queued() const noexcept {
  std::uint64_t total = 0;
  for (const Router& r : routers_) {
    for (const auto& q : r.q) total += q.size();
  }
  return total;
}

BufferedReport BufferedNetwork::run() {
  for (std::uint32_t s = 0; s < cfg_.steps; ++s) step();
  report_.in_flight_end = packets_queued();
  return report_;
}

}  // namespace hp::buffered
