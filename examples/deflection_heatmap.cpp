// Spatial view of the network: per-router deflection-rate and utilization
// heatmaps rendered as ASCII shade maps, using the engine's visitor-style
// statistics collection. With uniform traffic the torus is statistically
// flat; hotspot traffic lights up the regions around the sinks — a view the
// aggregate tables can't show.
//
//   ./deflection_heatmap [--n=16] [--steps=300] [--traffic=hotspot]

#include <cstdio>
#include <string>
#include <vector>

#include "des/sequential.hpp"
#include "hotpotato/model.hpp"
#include "hotpotato/stats.hpp"
#include "util/cli.hpp"

namespace {

char shade(double v, double lo, double hi) {
  static const char kRamp[] = " .:-=+*#%@";
  if (hi <= lo) return kRamp[0];
  const double t = (v - lo) / (hi - lo);
  const int idx = std::min(9, std::max(0, static_cast<int>(t * 10.0)));
  return kRamp[idx];
}

void print_map(const char* title, const std::vector<double>& v,
               std::int32_t n) {
  double lo = v[0], hi = v[0];
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::printf("\n%s  (min %.3f, max %.3f; ' '=low '@'=high)\n", title, lo, hi);
  for (std::int32_t r = 0; r < n; ++r) {
    std::fputs("  ", stdout);
    for (std::int32_t c = 0; c < n; ++c) {
      std::fputc(shade(v[static_cast<std::size_t>(r * n + c)], lo, hi),
                 stdout);
      std::fputc(' ', stdout);
    }
    std::fputc('\n', stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv,
                    {{"n", "torus dimension"},
                     {"steps", "simulated time steps"},
                     {"traffic", "uniform|transpose|bit_complement|hotspot|"
                                 "nearest_neighbor"}});
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 16));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 300));
  const std::string traffic = cli.get("traffic", "hotspot");

  hp::hotpotato::HotPotatoConfig mc;
  mc.n = n;
  mc.injector_fraction = 1.0;
  mc.steps = steps;
  using TP = hp::hotpotato::TrafficPattern;
  if (traffic == "uniform") mc.traffic = TP::Uniform;
  else if (traffic == "transpose") mc.traffic = TP::Transpose;
  else if (traffic == "bit_complement") mc.traffic = TP::BitComplement;
  else if (traffic == "hotspot") mc.traffic = TP::Hotspot;
  else if (traffic == "nearest_neighbor") mc.traffic = TP::NearestNeighbor;
  hp::hotpotato::BhwPolicy policy(n);
  mc.policy = &policy;

  hp::hotpotato::HotPotatoModel model(mc);
  hp::des::EngineConfig ec;
  ec.num_lps = mc.num_lps();
  ec.end_time = mc.end_time();
  hp::des::SequentialEngine eng(model, ec);
  (void)eng.run();

  std::vector<double> deflect(mc.num_lps(), 0.0);
  std::vector<double> util(mc.num_lps(), 0.0);
  std::vector<double> delivered(mc.num_lps(), 0.0);
  eng.for_each_state([&](std::uint32_t lp, const hp::des::LpState& state) {
    const auto& s = static_cast<const hp::hotpotato::RouterState&>(state);
    deflect[lp] = s.routed > 0 ? static_cast<double>(s.deflections) /
                                     static_cast<double>(s.routed)
                               : 0.0;
    util[lp] = static_cast<double>(s.link_claims) / (4.0 * steps);
    delivered[lp] = static_cast<double>(s.delivered);
  });

  std::printf("per-router heatmaps: %dx%d torus, %s traffic, %u steps\n", n,
              n, traffic.c_str(), steps);
  print_map("deflection rate", deflect, n);
  print_map("link utilization", util, n);
  print_map("packets delivered to router", delivered, n);
  return 0;
}
