// The report's Attachment 1 interface: a driver taking the original ROSS
// application's parameters in order —
//   N                       torus dimension (multiple of 8 in the report,
//                           any >= 2 here)
//   number_of_processors    PEs for the optimistic run (1 = sequential)
//   SIMULATION_DURATION     virtual time (one step = 10 units)
//   probability_i           percent of routers that inject (0..100)
//   absorb_sleeping_packet  1 = practical mode, 0 = proof-verification
//
//   ./ross_cli --n=32 --processors=4 --duration=2560 --probability_i=50
//              [--absorb_sleeping_packet=1] [--chaos=spec] [--migrate[=spec]]
//              [--telemetry] [--metrics-endpoint=port|unix:path]
//              [--metrics-out=metrics.prom] [--checkpoint=spec]
//              [--restore=path] [--watchdog=spec]
//
// --chaos (Time Warp only) arms deterministic fault injection on the remote
// event path (see des/fault.hpp); committed results are unchanged.
// --migrate (Time Warp only) arms runtime KP load balancing (see
// des/migration.hpp); committed results are unchanged.
// --telemetry records latency histograms; --metrics-endpoint /
// --metrics-out expose them live as Prometheus text (either implies
// --telemetry). Committed results are unchanged.
// --checkpoint / --restore / --watchdog are the crash-safety trio (see
// des/checkpoint.hpp and des/watchdog.hpp): periodic committed-state images,
// resume from an image, and a stall detector that fails loudly (exit 86).
// A restored run finishes with bit-identical model statistics.

#include <cstdio>
#include <string>

#include "core/simulation.hpp"
#include "des/checkpoint.hpp"
#include "des/fault.hpp"
#include "des/migration.hpp"
#include "des/watchdog.hpp"
#include "hotpotato/packet.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(
      argc, argv,
      {{"n", "torus dimension N (N x N routers)"},
       {"processors", "number of PEs (1 = sequential kernel)"},
       {"duration", "simulation duration in virtual time (step = 10)"},
       {"probability_i", "percent of routers injecting, 0..100"},
       {"absorb_sleeping_packet", "1 practical / 0 proof-verification"},
       {"kps", "number of kernel processes (report default 64)"},
       {"seed", "RNG seed"},
       {"monitor", "heartbeat every N GVT rounds (bare = 1)"},
       {"monitor-out", "append monitor stream to this file"},
       {"chaos", "fault plan, e.g. delay:p=0.2,k=2;seed=7"},
       {"migrate", "KP load balancing, e.g. every=8,imbalance=1.5,max=1"},
       {"telemetry", "record latency histograms"},
       {"metrics-endpoint", "serve Prometheus text on <port> or unix:<path>"},
       {"metrics-out", "rewrite a Prometheus snapshot to this file"},
       {"checkpoint", "crash safety, e.g. every=100000,dir=checkpoints"},
       {"restore", "resume from a checkpoint image or dir"},
       {"watchdog", "stall detector, e.g. timeout=5000,poll=50"}});

  hp::core::SimulationOptions opts;
  opts.model.n = static_cast<std::int32_t>(cli.get_int("n", 32));
  const auto duration = cli.get_double("duration", 1280.0);
  opts.model.steps =
      static_cast<std::uint32_t>(duration / hp::hotpotato::kStep);
  opts.model.injector_fraction = cli.get_double("probability_i", 50.0) / 100.0;
  opts.model.absorb_sleeping = cli.get_bool("absorb_sleeping_packet", true);
  opts.engine.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const auto pes = static_cast<std::uint32_t>(cli.get_int("processors", 1));
  if (pes > 1) {
    opts.kernel = hp::core::Kernel::TimeWarp;
    opts.engine.num_pes = pes;
    opts.engine.num_kps = static_cast<std::uint32_t>(cli.get_int("kps", 64));
    opts.engine.optimism_window = 30.0;
  }
  if (cli.has("monitor")) {
    opts.engine.obs.monitor = true;
    const auto interval = cli.get_int("monitor", 1);
    if (interval <= 0) {
      cli.usage_error("--monitor expects a positive interval, got " +
                      std::to_string(interval));
    }
    opts.engine.obs.monitor_interval = static_cast<std::uint32_t>(interval);
    opts.engine.obs.monitor_path = cli.get("monitor-out", "");
  }
  if (cli.has("telemetry")) opts.engine.obs.telemetry = true;
  if (cli.has("metrics-endpoint")) {
    opts.engine.obs.metrics_endpoint = cli.get("metrics-endpoint", "");
    if (opts.engine.obs.metrics_endpoint.empty()) {
      cli.usage_error("--metrics-endpoint expects <port> or unix:<path>");
    }
  }
  if (cli.has("metrics-out")) {
    opts.engine.obs.metrics_out = cli.get("metrics-out", "");
    if (opts.engine.obs.metrics_out.empty()) {
      cli.usage_error("--metrics-out expects a file path");
    }
  }
  if (cli.has("chaos")) {
    std::string err;
    if (!hp::des::FaultPlan::parse(cli.get("chaos", ""), opts.engine.fault,
                                   err)) {
      cli.usage_error("--chaos: " + err);
    }
    if (opts.engine.fault.any() && pes <= 1) {
      cli.usage_error("--chaos requires the Time Warp kernel "
                      "(--processors > 1)");
    }
    if (opts.engine.fault.stall_pe != hp::des::FaultPlan::kNoStallPe &&
        opts.engine.fault.stall_pe >= pes) {
      cli.usage_error("--chaos stall:pe=" +
                      std::to_string(opts.engine.fault.stall_pe) +
                      " is out of range for " + std::to_string(pes) + " PEs");
    }
  }
  if (cli.has("migrate")) {
    std::string err;
    if (!hp::des::MigrationConfig::parse(cli.get("migrate", ""),
                                         opts.engine.migration, err)) {
      cli.usage_error("--migrate: " + err);
    }
    if (pes <= 1) {
      cli.usage_error("--migrate requires the Time Warp kernel "
                      "(--processors > 1)");
    }
  }
  if (cli.has("checkpoint")) {
    std::string err;
    if (!hp::des::CheckpointConfig::parse(cli.get("checkpoint", ""),
                                          opts.engine.checkpoint, err)) {
      cli.usage_error("--checkpoint: " + err);
    }
  }
  if (cli.has("restore")) {
    opts.engine.restore_path = cli.get("restore", "");
    if (opts.engine.restore_path.empty()) {
      cli.usage_error("--restore expects a checkpoint file or directory");
    }
  }
  if (cli.has("watchdog")) {
    std::string err;
    if (!hp::des::WatchdogConfig::parse(cli.get("watchdog", ""),
                                        opts.engine.watchdog, err)) {
      cli.usage_error("--watchdog: " + err);
    }
  }

  const auto result = hp::core::run_hotpotato(opts);
  const auto& r = result.report;

  // Statistics block in the spirit of the report's sample output.
  std::printf("hot-potato routing simulation\n");
  std::printf("  network              : %d x %d torus (%u LPs)\n",
              opts.model.n, opts.model.n, opts.model.num_lps());
  std::printf("  kernel               : %s, %u PE(s), %u KP(s)\n",
              hp::core::kernel_name(opts.kernel),
              opts.kernel == hp::core::Kernel::Sequential ? 1 : opts.engine.num_pes,
              opts.kernel == hp::core::Kernel::Sequential ? 1 : opts.engine.num_kps);
  std::printf("  duration             : %.0f (%u steps)\n", duration,
              opts.model.steps);
  std::printf("  injecting routers    : %.0f%%\n",
              100.0 * opts.model.injector_fraction);
  std::printf("  absorb sleeping      : %s\n\n",
              opts.model.absorb_sleeping ? "yes (practical)"
                                         : "no (proof mode)");
  std::printf("  packets delivered          : %llu\n",
              static_cast<unsigned long long>(r.delivered));
  std::printf("  total transit time (steps) : %.0f\n", r.delivery_steps_sum);
  std::printf("  avg delivery time          : %.4f steps\n",
              r.avg_delivery_steps());
  std::printf("  packets injected           : %llu\n",
              static_cast<unsigned long long>(r.injected));
  std::printf("  avg wait to inject         : %.4f steps\n",
              r.avg_inject_wait());
  std::printf("  longest wait to inject     : %.0f steps\n",
              r.max_inject_wait);
  std::printf("\n  events committed           : %llu\n",
              static_cast<unsigned long long>(result.engine.committed_events()));
  std::printf("  events rolled back         : %llu (%llu primary + %llu "
              "secondary)\n",
              static_cast<unsigned long long>(
                  result.engine.rolled_back_events()),
              static_cast<unsigned long long>(
                  result.engine.primary_rollback_events()),
              static_cast<unsigned long long>(
                  result.engine.secondary_rollback_events()));
  std::printf("  event rate                 : %.0f events/s\n",
              result.engine.event_rate());
  for (std::size_t pe = 0; pe < result.engine.per_pe().size(); ++pe) {
    const auto& p = result.engine.per_pe()[pe];
    std::printf("    PE %zu: processed=%llu committed=%llu rolled_back=%llu\n",
                pe, static_cast<unsigned long long>(p.processed_events()),
                static_cast<unsigned long long>(p.committed_events()),
                static_cast<unsigned long long>(p.rolled_back_events()));
  }
  return 0;
}
