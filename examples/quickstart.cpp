// Quickstart: simulate the BHW hot-potato routing algorithm on a 16x16
// bufferless optical torus, half the routers injecting one packet per step,
// and print the system-wide statistics the report tracks (Section 3.1.5).
//
//   ./quickstart [--n=16] [--inject=0.5] [--steps=200] [--pes=1]
//               [--trace=trace.json]
//
// --trace writes a Chrome/Perfetto phase trace of the run (one track per
// PE); load it at https://ui.perfetto.dev — see EXPERIMENTS.md.

#include <cstdio>

#include "core/simulation.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv,
                    {{"n", "torus dimension (N x N routers)"},
                     {"inject", "fraction of routers injecting (0..1)"},
                     {"steps", "simulated time steps"},
                     {"pes", "1 = sequential kernel, >1 = Time Warp"},
                     {"trace", "write a Chrome/Perfetto trace to this path"}});

  hp::core::SimulationOptions opts;
  opts.model.n = static_cast<std::int32_t>(cli.get_int("n", 16));
  opts.model.injector_fraction = cli.get_double("inject", 0.5);
  opts.model.steps = static_cast<std::uint32_t>(cli.get_int("steps", 200));
  const auto pes = static_cast<std::uint32_t>(cli.get_int("pes", 1));
  if (pes > 1) {
    opts.kernel = hp::core::Kernel::TimeWarp;
    opts.engine.num_pes = pes;
    opts.engine.num_kps = 64;
    opts.engine.optimism_window = 30.0;
  }
  if (cli.has("trace")) {
    opts.engine.obs.trace = true;
    opts.engine.obs.trace_path = cli.get("trace", "trace.json");
  }

  const auto result = hp::core::run_hotpotato(opts);
  const auto& r = result.report;

  std::printf("hot-potato routing without flow control — %dx%d torus, "
              "%.0f%% injectors, %u steps (%s kernel)\n\n",
              opts.model.n, opts.model.n,
              100.0 * opts.model.injector_fraction, opts.model.steps,
              hp::core::kernel_name(opts.kernel));
  std::printf("  packets delivered        %llu\n",
              static_cast<unsigned long long>(r.delivered));
  std::printf("  packets injected         %llu\n",
              static_cast<unsigned long long>(r.injected));
  std::printf("  avg delivery time        %.2f steps (avg shortest path "
              "%.2f, stretch %.3f)\n",
              r.avg_delivery_steps(), r.avg_distance(), r.stretch());
  std::printf("  avg wait to inject       %.3f steps (max %.0f)\n",
              r.avg_inject_wait(), r.max_inject_wait);
  std::printf("  deflection rate          %.2f%%\n",
              100.0 * r.deflection_rate());
  std::printf("  link utilization         %.1f%%\n",
              100.0 * r.link_utilization(opts.model.num_lps(),
                                         opts.model.steps));
  std::printf("\n  engine: %llu events committed at %.0f events/s\n",
              static_cast<unsigned long long>(result.engine.committed_events()),
              result.engine.event_rate());
  if (opts.engine.obs.trace) {
    std::printf("  trace: %llu spans -> %s (load at ui.perfetto.dev)\n",
                static_cast<unsigned long long>(result.engine.metrics.trace_spans),
                opts.engine.obs.trace_path.c_str());
  }
  return 0;
}
