// Quickstart: simulate the BHW hot-potato routing algorithm on a 16x16
// bufferless optical torus, half the routers injecting one packet per step,
// and print the system-wide statistics the report tracks (Section 3.1.5).
//
//   ./quickstart [--n=16] [--inject=0.5] [--steps=200] [--pes=1]
//               [--trace=trace.json] [--monitor[=interval]]
//               [--monitor-out=monitor.jsonl] [--chaos=spec]
//               [--pool-budget=envelopes] [--migrate[=spec]]
//               [--gvt=mode=barrier|epoch[,interval=N]]
//               [--telemetry] [--metrics-endpoint=port|unix:path]
//               [--metrics-out=metrics.prom]
//
// --trace writes a Chrome/Perfetto phase trace of the run (one track per
// PE); load it at https://ui.perfetto.dev — see EXPERIMENTS.md.
// --monitor (Time Warp only) emits a JSON-lines heartbeat every `interval`
// GVT rounds to stderr, or to --monitor-out when given.
// --chaos (Time Warp only) arms deterministic fault injection on the remote
// event path, e.g. --chaos="delay:p=0.2,k=2;stall:pe=1,rounds=4;seed=7" —
// see des/fault.hpp for the grammar. Committed results are unchanged.
// --pool-budget (Time Warp only) caps live event envelopes per PE; the
// engine throttles optimism instead of aborting when memory runs short.
// --migrate (Time Warp only) arms runtime KP load balancing, e.g.
// --migrate="every=8,imbalance=1.5,max=1" (bare --migrate uses those
// defaults) — see des/migration.hpp. Committed results are unchanged.
// --gvt (Time Warp only) selects the GVT algorithm, e.g.
// --gvt=mode=epoch,interval=512 — see docs/GVT.md. Committed results are
// bit-identical under either mode.
// --telemetry records event-lifecycle latency histograms (queue dwell,
// commit latency, rollback cost, inbox dwell); --metrics-endpoint serves
// them live as Prometheus text on a loopback port or unix socket, and
// --metrics-out periodically rewrites the same text to a file. Either
// implies --telemetry. Committed results are unchanged.

#include <cstdio>
#include <string>

#include "core/simulation.hpp"
#include "des/checkpoint.hpp"
#include "des/fault.hpp"
#include "des/migration.hpp"
#include "des/watchdog.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv,
                    {{"n", "torus dimension (N x N routers)"},
                     {"inject", "fraction of routers injecting (0..1)"},
                     {"steps", "simulated time steps"},
                     {"seed", "workload RNG seed (default 1)"},
                     {"pes", "1 = sequential kernel, >1 = Time Warp"},
                     {"trace", "write a Chrome/Perfetto trace to this path"},
                     {"monitor", "heartbeat every N GVT rounds (bare = 1)"},
                     {"monitor-out", "append monitor stream to this file"},
                     {"chaos", "fault plan, e.g. delay:p=0.2,k=2;seed=7"},
                     {"pool-budget", "live-envelope budget per PE (0 = off)"},
                     {"migrate",
                      "KP load balancing, e.g. every=8,imbalance=1.5,max=1"},
                     {"gvt",
                      "GVT algorithm, e.g. mode=epoch[,interval=N]"},
                     {"telemetry", "record latency histograms"},
                     {"metrics-endpoint",
                      "serve Prometheus text on <port> or unix:<path>"},
                     {"metrics-out",
                      "rewrite a Prometheus snapshot to this file"},
                     {"checkpoint",
                      "crash safety, e.g. every=100000,dir=checkpoints"},
                     {"restore", "resume from a checkpoint image or dir"},
                     {"watchdog", "stall detector, e.g. timeout=5000,poll=50"}});

  hp::core::SimulationOptions opts;
  opts.model.n = static_cast<std::int32_t>(cli.get_int("n", 16));
  opts.model.injector_fraction = cli.get_double("inject", 0.5);
  opts.model.steps = static_cast<std::uint32_t>(cli.get_int("steps", 200));
  const auto seed = cli.get_int("seed", 1);
  if (seed <= 0) {
    cli.usage_error("--seed expects a positive integer, got " +
                    std::to_string(seed));
  }
  opts.engine.seed = static_cast<std::uint64_t>(seed);
  const auto pes = static_cast<std::uint32_t>(cli.get_int("pes", 1));
  if (pes > 1) {
    opts.kernel = hp::core::Kernel::TimeWarp;
    opts.engine.num_pes = pes;
    opts.engine.num_kps = 64;
    opts.engine.optimism_window = 30.0;
  }
  if (cli.has("trace")) {
    opts.engine.obs.trace = true;
    opts.engine.obs.trace_path = cli.get("trace", "trace.json");
  }
  if (cli.has("monitor")) {
    opts.engine.obs.monitor = true;
    const auto interval = cli.get_int("monitor", 1);
    if (interval <= 0) {
      cli.usage_error("--monitor expects a positive interval, got " +
                      std::to_string(interval));
    }
    opts.engine.obs.monitor_interval = static_cast<std::uint32_t>(interval);
    opts.engine.obs.monitor_path = cli.get("monitor-out", "");
  }
  if (cli.has("telemetry")) opts.engine.obs.telemetry = true;
  if (cli.has("metrics-endpoint")) {
    opts.engine.obs.metrics_endpoint = cli.get("metrics-endpoint", "");
    if (opts.engine.obs.metrics_endpoint.empty()) {
      cli.usage_error("--metrics-endpoint expects <port> or unix:<path>");
    }
  }
  if (cli.has("metrics-out")) {
    opts.engine.obs.metrics_out = cli.get("metrics-out", "");
    if (opts.engine.obs.metrics_out.empty()) {
      cli.usage_error("--metrics-out expects a file path");
    }
  }
  if (cli.has("chaos")) {
    std::string err;
    if (!hp::des::FaultPlan::parse(cli.get("chaos", ""), opts.engine.fault,
                                   err)) {
      cli.usage_error("--chaos: " + err);
    }
    if (opts.engine.fault.any() && pes <= 1) {
      cli.usage_error("--chaos requires the Time Warp kernel (--pes > 1)");
    }
    if (opts.engine.fault.stall_pe != hp::des::FaultPlan::kNoStallPe &&
        opts.engine.fault.stall_pe >= pes) {
      cli.usage_error("--chaos stall:pe=" +
                      std::to_string(opts.engine.fault.stall_pe) +
                      " is out of range for " + std::to_string(pes) + " PEs");
    }
  }
  if (cli.has("migrate")) {
    std::string err;
    if (!hp::des::MigrationConfig::parse(cli.get("migrate", ""),
                                         opts.engine.migration, err)) {
      cli.usage_error("--migrate: " + err);
    }
    if (pes <= 1) {
      cli.usage_error("--migrate requires the Time Warp kernel (--pes > 1)");
    }
  }
  if (cli.has("gvt")) {
    std::string err;
    if (!hp::des::parse_gvt_spec(cli.get("gvt", ""), opts.engine, err)) {
      cli.usage_error("--gvt: " + err);
    }
    if (pes <= 1) {
      cli.usage_error("--gvt requires the Time Warp kernel (--pes > 1)");
    }
  }
  if (cli.has("pool-budget")) {
    const auto budget = cli.get_int("pool-budget", 0);
    if (budget < 0 || (budget > 0 && budget < 16)) {
      cli.usage_error("--pool-budget expects 0 or >= 16 envelopes, got " +
                      std::to_string(budget));
    }
    if (budget > 0 && pes <= 1) {
      cli.usage_error("--pool-budget requires the Time Warp kernel "
                      "(--pes > 1)");
    }
    opts.engine.pool_budget_envelopes = static_cast<std::uint64_t>(budget);
  }

  if (cli.has("checkpoint")) {
    std::string err;
    if (!hp::des::CheckpointConfig::parse(cli.get("checkpoint", ""),
                                          opts.engine.checkpoint, err)) {
      cli.usage_error("--checkpoint: " + err);
    }
  }
  if (cli.has("restore")) {
    opts.engine.restore_path = cli.get("restore", "");
    if (opts.engine.restore_path.empty()) {
      cli.usage_error("--restore expects a checkpoint file or directory");
    }
  }
  if (cli.has("watchdog")) {
    std::string err;
    if (!hp::des::WatchdogConfig::parse(cli.get("watchdog", ""),
                                        opts.engine.watchdog, err)) {
      cli.usage_error("--watchdog: " + err);
    }
  }

  const auto result = hp::core::run_hotpotato(opts);
  const auto& r = result.report;

  std::printf("hot-potato routing without flow control — %dx%d torus, "
              "%.0f%% injectors, %u steps (%s kernel)\n\n",
              opts.model.n, opts.model.n,
              100.0 * opts.model.injector_fraction, opts.model.steps,
              hp::core::kernel_name(opts.kernel));
  std::printf("  packets delivered        %llu\n",
              static_cast<unsigned long long>(r.delivered));
  std::printf("  packets injected         %llu\n",
              static_cast<unsigned long long>(r.injected));
  std::printf("  avg delivery time        %.2f steps (avg shortest path "
              "%.2f, stretch %.3f)\n",
              r.avg_delivery_steps(), r.avg_distance(), r.stretch());
  std::printf("  avg wait to inject       %.3f steps (max %.0f)\n",
              r.avg_inject_wait(), r.max_inject_wait);
  std::printf("  deflection rate          %.2f%%\n",
              100.0 * r.deflection_rate());
  std::printf("  link utilization         %.1f%%\n",
              100.0 * r.link_utilization(opts.model.num_lps(),
                                         opts.model.steps));
  std::printf("\n  engine: %llu events committed at %.0f events/s\n",
              static_cast<unsigned long long>(result.engine.committed_events()),
              result.engine.event_rate());
  if (result.engine.rolled_back_events() > 0) {
    const auto& forensics = result.engine.metrics.forensics;
    std::printf("  rollbacks: %llu events undone (%llu primary / %llu "
                "secondary episodes, max cascade %llu)\n",
                static_cast<unsigned long long>(
                    result.engine.rolled_back_events()),
                static_cast<unsigned long long>(
                    result.engine.primary_rollbacks()),
                static_cast<unsigned long long>(
                    result.engine.secondary_rollbacks()),
                static_cast<unsigned long long>(
                    result.engine.max_cascade_depth()));
    if (const auto top = forensics.top_offender(); top.second > 0) {
      std::printf("  top offender: KP %u caused %llu rolled-back events\n",
                  top.first, static_cast<unsigned long long>(top.second));
    }
  }
  if (result.engine.metrics.total.checkpoints_written() > 0) {
    std::printf("  checkpoints: %llu image(s) -> %s\n",
                static_cast<unsigned long long>(
                    result.engine.metrics.total.checkpoints_written()),
                opts.engine.checkpoint.dir.c_str());
  }
  if (result.engine.kp_migrations() > 0) {
    std::printf("  migrations: %llu KP move(s), %llu event(s) re-homed\n",
                static_cast<unsigned long long>(result.engine.kp_migrations()),
                static_cast<unsigned long long>(
                    result.engine.migrated_events()));
  }
  if (opts.engine.obs.monitor) {
    std::printf("  monitor: %llu heartbeat line(s) -> %s\n",
                static_cast<unsigned long long>(
                    result.engine.metrics.monitor_lines),
                opts.engine.obs.monitor_path.empty()
                    ? "stderr"
                    : opts.engine.obs.monitor_path.c_str());
  }
  if (result.engine.metrics.telemetry) {
    const auto& commit = result.engine.metrics.latency_hist(
        hp::obs::LatencyMetric::CommitLatency);
    std::printf("  telemetry: commit latency p50 %.1f us, p99 %.1f us over "
                "%llu samples (%llu dropped)\n",
                commit.quantile_ns(0.50) * 1e-3,
                commit.quantile_ns(0.99) * 1e-3,
                static_cast<unsigned long long>(commit.count()),
                static_cast<unsigned long long>(
                    result.engine.metrics.total.telemetry_dropped()));
  }
  if (opts.engine.obs.trace) {
    std::printf("  trace: %llu spans + %llu flow events -> %s (load at "
                "ui.perfetto.dev)\n",
                static_cast<unsigned long long>(result.engine.metrics.trace_spans),
                static_cast<unsigned long long>(result.engine.metrics.trace_flows),
                opts.engine.obs.trace_path.c_str());
  }
  return 0;
}
