// Building your own model on the DES engine: a minimal reversible
// "token ring" where each station holds a token for a random service time
// and forwards it. Demonstrates the full model contract — state, init,
// forward, reverse with RNG rewinding and message scratch — and verifies the
// sequential/Time Warp equivalence for the custom model.
//
//   ./custom_model [--stations=64] [--end=10000]

#include <cstdio>
#include <memory>

#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "util/cli.hpp"

namespace {

struct StationState final : hp::des::LpState {
  std::uint64_t tokens_seen = 0;
  double busy_time = 0.0;

  std::unique_ptr<hp::des::LpState> clone() const override {
    return std::make_unique<StationState>(*this);
  }
  bool equals(const hp::des::LpState& o) const override {
    const auto& s = static_cast<const StationState&>(o);
    return tokens_seen == s.tokens_seen && busy_time == s.busy_time;
  }
};

struct TokenMsg {
  double saved_service = 0.0;  // reverse-computation scratch
};

class TokenRing final : public hp::des::Model {
 public:
  explicit TokenRing(std::uint32_t stations) : stations_(stations) {}

  std::unique_ptr<hp::des::LpState> make_state(std::uint32_t) override {
    return std::make_unique<StationState>();
  }

  void init_lp(std::uint32_t lp, hp::des::InitContext& ctx) override {
    if (lp == 0) ctx.schedule(0, 1.0, TokenMsg{});  // one token, station 0
  }

  void forward(hp::des::LpState& state, hp::des::Event& ev,
               hp::des::Context& ctx) override {
    auto& s = static_cast<StationState&>(state);
    auto& m = ev.msg<TokenMsg>();
    const double service = 0.5 + ctx.rng().uniform();  // one draw
    ++s.tokens_seen;
    m.saved_service = s.busy_time;  // stash the displaced sum: exact reversal
    s.busy_time += service;
    ctx.send((ctx.self() + 1) % stations_, service, TokenMsg{});
  }

  void reverse(hp::des::LpState& state, hp::des::Event& ev,
               hp::des::Context& ctx) override {
    auto& s = static_cast<StationState&>(state);
    auto& m = ev.msg<TokenMsg>();
    s.busy_time = m.saved_service;
    --s.tokens_seen;
    ctx.rng().reverse(1);
  }

 private:
  std::uint32_t stations_;
};

}  // namespace

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, {{"stations", "ring size"},
                                 {"end", "end of virtual time"}});
  const auto stations = static_cast<std::uint32_t>(cli.get_int("stations", 64));
  const double end = cli.get_double("end", 10000.0);

  hp::des::EngineConfig cfg;
  cfg.num_lps = stations;
  cfg.end_time = end;

  TokenRing model(stations);
  hp::des::SequentialEngine seq(model, cfg);
  const auto sstats = seq.run();

  cfg.num_pes = 2;
  cfg.num_kps = 8;
  cfg.gvt_interval_events = 512;
  TokenRing model2(stations);
  hp::des::TimeWarpEngine tw(model2, cfg);
  const auto tstats = tw.run();

  std::uint64_t seq_tokens = 0, tw_tokens = 0;
  for (std::uint32_t lp = 0; lp < stations; ++lp) {
    seq_tokens += static_cast<StationState&>(seq.state(lp)).tokens_seen;
    tw_tokens += static_cast<StationState&>(tw.state(lp)).tokens_seen;
  }

  std::printf("token ring with %u stations until t=%.0f\n", stations, end);
  std::printf("  sequential: %llu events, %llu token passes\n",
              static_cast<unsigned long long>(sstats.committed_events()),
              static_cast<unsigned long long>(seq_tokens));
  std::printf("  time warp : %llu events, %llu token passes, %llu rolled back\n",
              static_cast<unsigned long long>(tstats.committed_events()),
              static_cast<unsigned long long>(tw_tokens),
              static_cast<unsigned long long>(tstats.rolled_back_events()));
  std::printf("  results identical: %s\n",
              seq_tokens == tw_tokens &&
                      sstats.committed_events() == tstats.committed_events()
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
