// Optical label-switching scenario (report Section 1.1.2): a buffer-less
// optical network cannot store packets without optical->electronic
// conversion, so the routing fabric must keep every packet moving. This
// example contrasts the two operating modes of the model on such a fabric:
//
//   * practical mode — packets are absorbed at their destination as soon as
//     they arrive (absorb_sleeping = true);
//   * proof-verification mode — the rule set of the BHW analysis, where a
//     Sleeping packet is not absorbed (absorb_sleeping = false), used to
//     validate the theoretical machinery rather than to run a network.
//
// It also sweeps the injection load to show the headline property: delivery
// time stays flat (no congestion collapse) while only the injection wait
// responds to load — the network needs no flow control.
//
//   ./optical_switch [--n=16] [--steps=300]

#include <iostream>

#include "core/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, {{"n", "torus dimension"},
                                 {"steps", "simulated time steps"}});
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 16));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 300));

  std::cout << "buffer-less optical switching fabric, " << n << "x" << n
            << " torus, " << steps << " steps\n\n";

  {
    hp::util::Table table({"mode", "delivered", "avg_delivery", "stretch"});
    for (bool absorb : {true, false}) {
      hp::core::SimulationOptions opts;
      opts.model.n = n;
      opts.model.steps = steps;
      opts.model.injector_fraction = 0.5;
      opts.model.absorb_sleeping = absorb;
      const auto r = hp::core::run_hotpotato(opts).report;
      table.add_row({absorb ? "practical" : "proof-verification", r.delivered,
                     r.avg_delivery_steps(), r.stretch()});
    }
    std::cout << "absorption modes (report Section 3.3.1):\n";
    table.print(std::cout);
  }

  {
    hp::util::Table table({"injectors_%", "avg_delivery", "avg_wait",
                           "max_wait", "link_util_%"});
    for (double load : {0.25, 0.50, 0.75, 1.0}) {
      hp::core::SimulationOptions opts;
      opts.model.n = n;
      opts.model.steps = steps;
      opts.model.injector_fraction = load;
      const auto r = hp::core::run_hotpotato(opts).report;
      table.add_row({100.0 * load, r.avg_delivery_steps(),
                     r.avg_inject_wait(), r.max_inject_wait,
                     100.0 * r.link_utilization(
                                 static_cast<std::uint32_t>(n) *
                                     static_cast<std::uint32_t>(n),
                                 steps)});
    }
    std::cout << "\nload sweep — delivery time is load-insensitive, only the "
                 "injection wait grows (Figs. 3/4 shape):\n";
    table.print(std::cout);
  }
  return 0;
}
