// Compare the BHW priority algorithm against the classic deflection-routing
// baselines on identical workloads — the experiment family of the report's
// related work ([5], Bartzis et al., hot-potato algorithms on 2-D arrays).
//
//   ./algorithm_comparison [--n=16] [--inject=0.75] [--steps=200]

#include <iostream>
#include <string>

#include "baselines/deflection_policies.hpp"
#include "core/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv,
                    {{"n", "torus dimension"},
                     {"inject", "fraction of routers injecting"},
                     {"steps", "simulated time steps"}});
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 16));
  const double inject = cli.get_double("inject", 0.75);
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 200));

  hp::hotpotato::BhwPolicy bhw(n);
  hp::baselines::GreedyPolicy greedy;
  hp::baselines::DimOrderPolicy dim;
  hp::baselines::OldestFirstPolicy oldest;
  const hp::hotpotato::RoutingPolicy* policies[] = {&bhw, &greedy, &dim,
                                                    &oldest};

  hp::util::Table table({"algorithm", "delivered", "avg_delivery", "stretch",
                         "deflect_rate", "avg_wait", "max_wait"});
  for (const auto* p : policies) {
    hp::core::SimulationOptions opts;
    opts.model.n = n;
    opts.model.injector_fraction = inject;
    opts.model.steps = steps;
    opts.model.policy = p;
    const auto r = hp::core::run_hotpotato(opts).report;
    table.add_row({std::string(p->name()), r.delivered,
                   r.avg_delivery_steps(), r.stretch(), r.deflection_rate(),
                   r.avg_inject_wait(), r.max_inject_wait});
  }
  std::cout << "deflection routing algorithms, " << n << "x" << n
            << " torus, " << 100 * inject << "% injectors, " << steps
            << " steps\n\n";
  table.print(std::cout);
  return 0;
}
