// Parallel speed-up demo: the same simulation on the sequential kernel and
// on Time Warp with increasing PE counts, reporting event rates, rollback
// work, and the bit-identical statistics guarantee (report Sections 4.2.1
// and 4.2.2 in miniature).
//
//   ./speedup_demo [--n=32] [--steps=64] [--max_pes=4]

#include <iostream>
#include <thread>

#include "core/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv,
                    {{"n", "torus dimension"},
                     {"steps", "simulated time steps"},
                     {"max_pes", "largest PE count to try"}});
  const auto n = static_cast<std::int32_t>(cli.get_int("n", 32));
  const auto steps = static_cast<std::uint32_t>(cli.get_int("steps", 64));
  const auto max_pes = static_cast<std::uint32_t>(cli.get_int("max_pes", 4));

  hp::core::SimulationOptions base;
  base.model.n = n;
  base.model.injector_fraction = 0.5;
  base.model.steps = steps;

  const auto seq = hp::core::run_hotpotato(base);

  hp::util::Table table({"kernel", "pes", "events/s", "speedup", "efficiency",
                         "rolled_back", "identical_stats"});
  table.add_row({"sequential", std::int64_t{1}, seq.engine.event_rate(), 1.0,
                 1.0, std::uint64_t{0}, "-"});
  for (std::uint32_t pes = 1; pes <= max_pes; pes *= 2) {
    auto opts = base;
    opts.kernel = hp::core::Kernel::TimeWarp;
    opts.engine.num_pes = pes;
    opts.engine.num_kps = 64;
    opts.engine.gvt_interval_events = 1024;
    opts.engine.optimism_window = 30.0;
    const auto tw = hp::core::run_hotpotato(opts);
    const double speedup = tw.engine.event_rate() / seq.engine.event_rate();
    table.add_row({"timewarp", static_cast<std::int64_t>(pes),
                   tw.engine.event_rate(), speedup, speedup / pes,
                   tw.engine.rolled_back_events(),
                   tw.report == seq.report ? "yes" : "NO (bug!)"});
  }

  std::cout << "parallel speed-up, " << n << "x" << n << " torus ("
            << n * n << " LPs), " << steps << " steps — host has "
            << std::thread::hardware_concurrency() << " hardware thread(s)\n\n";
  table.print(std::cout);
  std::cout << "\nNote: real speed-up needs real cores; on a single-core "
               "host the Time Warp rows measure synchronization overhead, "
               "while the identical_stats column demonstrates Attachment 3 "
               "(repeatability) regardless.\n";
  return 0;
}
