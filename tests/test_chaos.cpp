// Chaos matrix + optimism flow control tests.
//
// The determinism invariant under test: a FaultPlan only perturbs *delivery
// timing* on the remote path, so every chaotic Time Warp run must commit
// bit-identical results to the fault-free sequential reference — while the
// chaos counters prove the faults actually fired. The flow-control tests
// squeeze the same workload through a fraction of its unthrottled envelope
// peak and require graceful degradation (throttling, never abort, never
// past the budget) with, again, identical committed state.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "des/engine.hpp"
#include "des/fault.hpp"
#include "des/phold.hpp"
#include "des/watchdog.hpp"

namespace hp::des {
namespace {

using obs::Counter;

// ---------------------------------------------------------------- parsing

TEST(FaultPlanParse, EmptySpecIsDisarmed) {
  FaultPlan p;
  std::string err;
  EXPECT_TRUE(FaultPlan::parse("", p, err)) << err;
  EXPECT_FALSE(p.any());
  EXPECT_EQ(p.to_string(), "off");
}

TEST(FaultPlanParse, FullSpec) {
  FaultPlan p;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.2,k=2; reorder:p=0.5 ;straggler:p=0.3,margin=7;"
      "dup-anti:p=0.1;stall:pe=1,rounds=4,at=2;seed=42",
      p, err))
      << err;
  EXPECT_DOUBLE_EQ(p.delay_prob, 0.2);
  EXPECT_EQ(p.delay_rounds, 2u);
  EXPECT_DOUBLE_EQ(p.reorder_prob, 0.5);
  EXPECT_DOUBLE_EQ(p.straggler_prob, 0.3);
  EXPECT_DOUBLE_EQ(p.straggler_margin, 7.0);
  EXPECT_DOUBLE_EQ(p.dup_anti_prob, 0.1);
  EXPECT_EQ(p.stall_pe, 1u);
  EXPECT_EQ(p.stall_rounds, 4u);
  EXPECT_EQ(p.stall_at, 2u);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_TRUE(p.any());
}

TEST(FaultPlanParse, ToStringRoundTrips) {
  FaultPlan p;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.25,k=3;dup-anti:p=0.5;stall:pe=0,rounds=2;seed=9", p, err));
  FaultPlan q;
  ASSERT_TRUE(FaultPlan::parse(p.to_string(), q, err)) << err;
  EXPECT_EQ(p, q);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus",                 // unknown clause
      "delay",                 // missing parameters
      "delay:p=1.5",           // probability out of range
      "delay:p=-0.1",          // probability out of range
      "delay:p=nope",          // non-numeric
      "delay:p=0.5x",          // trailing junk
      "delay:p=0.2,k=0",       // zero hold rounds
      "delay:q=0.2",           // unknown key
      "reorder:p=",            // empty value
      "straggler:p=0.2,m=abc", // non-numeric margin
      "stall:pe=1",            // stall without rounds
      "stall:rounds=3",        // stall without pe
      "seed=abc",              // non-numeric seed
      ";;=",                   // garbage
  };
  for (const char* spec : bad) {
    FaultPlan p;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse(spec, p, err)) << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(FaultPlanParse, FailedParseLeavesOutUntouched) {
  FaultPlan p;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("delay:p=0.5,k=4", p, err));
  const FaultPlan before = p;
  EXPECT_FALSE(FaultPlan::parse("delay:p=2.0", p, err));
  EXPECT_EQ(p, before);
}

// ----------------------------------------------------------- chaos matrix

struct ChaosCase {
  const char* name;
  const char* spec;
  // Counter that proves this plan's fault actually fired.
  Counter witness;
};

struct ChaosKnobs {
  ChaosCase fault;
  EngineConfig::QueueKind queue;
};

class ChaosMatrix : public ::testing::TestWithParam<ChaosKnobs> {};

// Every fault plan, on a rollback-heavy PHOLD load at 4 PEs, commits
// bit-identical state to the fault-free sequential reference.
TEST_P(ChaosMatrix, DeliveryFaultsNeverChangeCommittedState) {
  const ChaosKnobs k = GetParam();

  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;  // straggler-heavy

  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 80.0;
  ec.seed = 23;

  PholdModel m1(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, m1, ec);
  const RunStats sstats = seq->run();

  ec.num_pes = 4;
  ec.num_kps = 16;
  ec.gvt_interval_events = 96;
  ec.queue_kind = k.queue;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(k.fault.spec, ec.fault, err)) << err;
  ASSERT_TRUE(ec.fault.any());

  PholdModel m2(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m2, ec);
  const RunStats tstats = tw->run();

  EXPECT_EQ(sstats.committed_events(), tstats.committed_events());
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  EXPECT_EQ(tstats.committed_events(),
            tstats.processed_events() - tstats.rolled_back_events());
  // The plan must have actually done something, or the test proves nothing.
  EXPECT_GT(tstats.metrics.total.at(k.fault.witness), 0u)
      << "fault plan " << k.fault.spec << " never fired";
}

// A chaotic run with a fixed plan is itself exactly repeatable.
TEST(ChaosMatrix, ChaoticRunIsRepeatable) {
  PholdConfig pc;
  pc.num_lps = 32;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;

  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 60.0;
  ec.seed = 11;
  ec.num_pes = 4;
  ec.num_kps = 16;
  ec.gvt_interval_events = 96;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.3,k=2;reorder:p=0.5;dup-anti:p=0.3;seed=5", ec.fault, err));

  PholdModel m1(pc);
  std::unique_ptr<Engine> a = make_engine(EngineKind::TimeWarp, m1, ec);
  a->run();
  PholdModel m2(pc);
  std::unique_ptr<Engine> b = make_engine(EngineKind::TimeWarp, m2, ec);
  b->run();
  EXPECT_EQ(PholdModel::digest(*a), PholdModel::digest(*b));
}

constexpr auto kSplay = EngineConfig::QueueKind::Splay;
constexpr auto kMSet = EngineConfig::QueueKind::Multiset;

constexpr ChaosCase kDelay = {"delay", "delay:p=0.3,k=2;seed=7",
                              Counter::ChaosDelayedEvents};
constexpr ChaosCase kReorder = {"reorder", "reorder:p=0.6;seed=7",
                                Counter::ChaosReorderedEvents};
constexpr ChaosCase kStraggler = {
    "straggler", "straggler:p=0.5,margin=5;seed=7", Counter::ChaosStragglers};
constexpr ChaosCase kDupAnti = {"dupanti", "dup-anti:p=0.5;seed=7",
                                Counter::ChaosDupAntis};
constexpr ChaosCase kStall = {"stall", "stall:pe=1,rounds=6,at=2",
                              Counter::ChaosStallRounds};
constexpr ChaosCase kCombined = {
    "combined",
    "delay:p=0.2,k=2;reorder:p=0.4;straggler:p=0.3;dup-anti:p=0.3;"
    "stall:pe=2,rounds=3,at=1;seed=13",
    Counter::ChaosDelayedEvents};

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, ChaosMatrix,
    ::testing::Values(ChaosKnobs{kDelay, kSplay}, ChaosKnobs{kDelay, kMSet},
                      ChaosKnobs{kReorder, kSplay},
                      ChaosKnobs{kReorder, kMSet},
                      ChaosKnobs{kStraggler, kSplay},
                      ChaosKnobs{kDupAnti, kSplay},
                      ChaosKnobs{kDupAnti, kMSet}, ChaosKnobs{kStall, kSplay},
                      ChaosKnobs{kCombined, kSplay},
                      ChaosKnobs{kCombined, kMSet}),
    [](const auto& info) {
      return std::string(info.param.fault.name) +
             (info.param.queue == kSplay ? "_splay" : "_mset");
    });

// Full-stack variant: hot-potato torus through the core facade; the whole
// obs::ModelChannel (every named model metric) must match the sequential
// run under combined chaos.
TEST(ChaosHotPotato, ModelChannelIdenticalUnderCombinedChaos) {
  core::SimulationOptions base;
  base.model.n = 8;
  base.model.injector_fraction = 0.75;
  base.model.steps = 32;
  const auto seq = core::run_hotpotato(base);

  core::SimulationOptions opts = base;
  opts.kernel = core::Kernel::TimeWarp;
  opts.engine.num_pes = 4;
  opts.engine.num_kps = 16;
  opts.engine.gvt_interval_events = 256;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.2,k=2;reorder:p=0.4;straggler:p=0.3;dup-anti:p=0.3;seed=3",
      opts.engine.fault, err))
      << err;
  const auto tw = core::run_hotpotato(opts);

  EXPECT_TRUE(tw.model == seq.model);
  EXPECT_TRUE(tw.report == seq.report);
  EXPECT_EQ(tw.engine.committed_events(), seq.engine.committed_events());
}

// ----------------------------------------------------- optimism flow control

namespace flow {

PholdConfig phold_config() {
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;
  return pc;
}

EngineConfig engine_config() {
  PholdConfig pc = phold_config();
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 80.0;
  ec.seed = 23;
  ec.num_pes = 4;
  ec.num_kps = 16;
  // Moderate interval: fossil collection cadence bounds how much the
  // unthrottled run can hoard, keeping the budgeted rerun meaningful.
  ec.gvt_interval_events = 96;
  return ec;
}

}  // namespace flow

TEST(FlowControl, BudgetedRunIsIdenticalAndStaysUnderBudget) {
  PholdConfig pc = flow::phold_config();
  EngineConfig ec = flow::engine_config();

  // Reference: sequential, and an unthrottled Time Warp run to measure the
  // natural per-PE live-envelope peak.
  PholdModel ms(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, ms, ec);
  seq->run();

  PholdModel m1(pc);
  std::unique_ptr<Engine> free_run =
      make_engine(EngineKind::TimeWarp, m1, ec);
  const RunStats fstats = free_run->run();
  // PoolPeakLive reduces by Max across PEs: the worst single PE's peak.
  const std::uint64_t peak = fstats.metrics.total.at(Counter::PoolPeakLive);
  ASSERT_GT(peak, 0u);

  // Squeeze: ~25% of the unthrottled peak (floor 64 keeps the watermarks
  // meaningful on tiny runs).
  const std::uint64_t budget = std::max<std::uint64_t>(peak / 4, 64);
  ec.pool_budget_envelopes = budget;
  PholdModel m2(pc);
  std::unique_ptr<Engine> tight = make_engine(EngineKind::TimeWarp, m2, ec);
  const RunStats tstats = tight->run();

  // Graceful degradation: identical results, no abort.
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tight));
  EXPECT_EQ(fstats.committed_events(), tstats.committed_events());

  if (peak / 4 >= 64) {
    // The squeeze was real: the throttle must have engaged...
    EXPECT_GT(tstats.metrics.total.at(Counter::ThrottleEntries), 0u);
  }
  // ...and no PE's live envelope count ever exceeded its budget.
  for (const obs::PeMetrics& pe : tstats.per_pe()) {
    EXPECT_LE(pe.pool_peak_live(), budget);
  }
}

TEST(FlowControl, ThrottlingComposesWithChaos) {
  PholdConfig pc = flow::phold_config();
  EngineConfig ec = flow::engine_config();

  PholdModel ms(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, ms, ec);
  seq->run();

  ec.pool_budget_envelopes = 256;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.2,k=2;straggler:p=0.3;dup-anti:p=0.3;seed=17", ec.fault,
      err));
  PholdModel m(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m, ec);
  const RunStats tstats = tw->run();

  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  for (const obs::PeMetrics& pe : tstats.per_pe()) {
    EXPECT_LE(pe.pool_peak_live(), 256u);
  }
}

// Throttling is pure pacing: the same budget twice gives the same digest
// and the same committed count as an unthrottled run (already checked
// above); here the budgeted run must also be internally repeatable.
TEST(FlowControl, BudgetedRunIsRepeatable) {
  PholdConfig pc = flow::phold_config();
  EngineConfig ec = flow::engine_config();
  ec.pool_budget_envelopes = 128;

  PholdModel m1(pc);
  std::unique_ptr<Engine> a = make_engine(EngineKind::TimeWarp, m1, ec);
  a->run();
  PholdModel m2(pc);
  std::unique_ptr<Engine> b = make_engine(EngineKind::TimeWarp, m2, ec);
  b->run();
  EXPECT_EQ(PholdModel::digest(*a), PholdModel::digest(*b));
}

// --------------------------------------------------- watchdog x PE stalls
//
// The watchdog must tell two fates apart: a FaultPlan stall that ends on
// its own (the stalled PE keeps joining GVT barriers, the frontier keeps
// moving, the run completes) and a genuinely wedged PE (nothing moves for
// the whole timeout). The first must never escalate; the second must fail
// loudly with the structured dump and the distinct exit code.

TEST(WatchdogChaos, BenignStallCompletesWithoutEscalation) {
  PholdConfig pc = flow::phold_config();
  EngineConfig ec = flow::engine_config();

  PholdModel ms(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, ms, ec);
  seq->run();

  std::string err;
  ASSERT_TRUE(FaultPlan::parse("stall:pe=1,rounds=6,at=2", ec.fault, err))
      << err;
  // Generous bound: the stall is long in GVT rounds but short on the wall
  // clock, so a correct watchdog sees continuous progress.
  ASSERT_TRUE(WatchdogConfig::parse("timeout=60000,poll=20", ec.watchdog,
                                    err))
      << err;
  PholdModel m(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m, ec);
  const RunStats tstats = tw->run();

  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  EXPECT_GT(tstats.metrics.total.at(Counter::ChaosStallRounds), 0u)
      << "the stall never fired, so this proved nothing";
}

TEST(WatchdogChaosDeathTest, WedgedPeDumpsDiagnosticsAndExits86) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  PholdConfig pc = flow::phold_config();
  EngineConfig ec = flow::engine_config();
  std::string err;
  // A stall window that outlives any plausible test runtime: GVT can never
  // pass the wedged PE's published minimum, so the frontier goes flat.
  ASSERT_TRUE(
      FaultPlan::parse("stall:pe=1,rounds=1000000000,at=2", ec.fault, err))
      << err;
  ASSERT_TRUE(WatchdogConfig::parse("timeout=500,poll=20", ec.watchdog, err))
      << err;

  EXPECT_EXIT(
      {
        PholdModel m(pc);
        std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m, ec);
        tw->run();
      },
      ::testing::ExitedWithCode(kStallExitCode), "stall watchdog");
}

}  // namespace
}  // namespace hp::des
