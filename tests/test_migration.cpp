// Dynamic KP migration tests.
//
// The invariant under test: migration only changes *where* a KP's events
// execute, never their order — the EventKey is model-derived and placement-
// independent — so every migrated Time Warp run must commit bit-identical
// results to the sequential reference, at any cadence, composed with any
// fault plan and either pending-queue backend. The unit tests below pin the
// planner (pure function: same inputs, same plan on every PE) and the
// ownership table the handoff rewrites.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulation.hpp"
#include "des/engine.hpp"
#include "des/fault.hpp"
#include "des/migration.hpp"
#include "des/phold.hpp"
#include "net/mapping.hpp"

namespace hp::des {
namespace {

using obs::Counter;

// ---------------------------------------------------------------- parsing

TEST(MigrationConfigParse, EmptySpecArmsDefaults) {
  MigrationConfig c;
  std::string err;
  ASSERT_TRUE(MigrationConfig::parse("", c, err)) << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.interval_rounds, 4u);
  EXPECT_DOUBLE_EQ(c.imbalance_threshold, 1.5);
  EXPECT_EQ(c.max_moves, 1u);
  EXPECT_FALSE(c.forced);
}

TEST(MigrationConfigParse, FullSpec) {
  MigrationConfig c;
  std::string err;
  ASSERT_TRUE(
      MigrationConfig::parse("every=8, imbalance=1.25 ,max=2", c, err))
      << err;
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.interval_rounds, 8u);
  EXPECT_DOUBLE_EQ(c.imbalance_threshold, 1.25);
  EXPECT_EQ(c.max_moves, 2u);
  EXPECT_FALSE(c.forced);

  ASSERT_TRUE(MigrationConfig::parse("forced,every=1", c, err)) << err;
  EXPECT_TRUE(c.forced);
  EXPECT_EQ(c.interval_rounds, 1u);
}

TEST(MigrationConfigParse, ToStringRoundTrips) {
  MigrationConfig c;
  std::string err;
  ASSERT_TRUE(MigrationConfig::parse("forced,every=2,max=3", c, err));
  MigrationConfig d;
  ASSERT_TRUE(MigrationConfig::parse(c.to_string(), d, err)) << err;
  EXPECT_EQ(c, d);
  EXPECT_EQ(MigrationConfig{}.to_string(), "off");
}

TEST(MigrationConfigParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus",          // unknown bare word
      "every=0",        // zero interval
      "every=abc",      // non-numeric
      "every=-2",       // negative
      "imbalance=0.5",  // below 1
      "imbalance=x",    // non-numeric
      "max=0",          // zero moves
      "every=",         // empty value
      "=3",             // empty key
      "force=1",        // unknown key
  };
  for (const char* spec : bad) {
    MigrationConfig c;
    std::string err;
    EXPECT_FALSE(MigrationConfig::parse(spec, c, err)) << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(MigrationConfigParse, FailedParseLeavesOutUntouched) {
  MigrationConfig c;
  std::string err;
  ASSERT_TRUE(MigrationConfig::parse("every=6", c, err));
  const MigrationConfig before = c;
  EXPECT_FALSE(MigrationConfig::parse("every=0", c, err));
  EXPECT_EQ(c, before);
}

// -------------------------------------------------------- ownership table

TEST(OwnershipTable, MirrorsMappingAfterReset) {
  net::BlockMapping m(/*n=*/4, /*num_kps=*/8, /*num_pes=*/2);
  net::OwnershipTable t;
  t.reset(m);
  ASSERT_EQ(t.num_kps(), 8u);
  ASSERT_EQ(t.num_lps(), 16u);
  EXPECT_EQ(t.epoch(), 0u);
  for (std::uint32_t kp = 0; kp < 8; ++kp) {
    EXPECT_EQ(t.pe_of_kp(kp), m.pe_of_kp(kp));
  }
  for (std::uint32_t lp = 0; lp < 16; ++lp) {
    EXPECT_EQ(t.pe_of_lp(lp), m.pe_of_kp(m.kp_of(lp)));
    EXPECT_EQ(t.pe_of_lp(lp), t.pe_of_kp(m.kp_of(lp)));
  }
}

TEST(OwnershipTable, SetKpOwnerRehomesEveryLpOfTheKp) {
  net::LinearMapping m(/*num_lps=*/24, /*num_kps=*/6, /*num_pes=*/3);
  net::OwnershipTable t;
  t.reset(m);
  const std::uint32_t kp = 1;
  const std::uint32_t old_pe = t.pe_of_kp(kp);
  const std::uint32_t new_pe = (old_pe + 1) % 3;
  t.set_kp_owner(kp, new_pe);
  t.bump_epoch();
  EXPECT_EQ(t.epoch(), 1u);
  EXPECT_EQ(t.pe_of_kp(kp), new_pe);
  for (const std::uint32_t lp : t.lps_of_kp(kp)) {
    EXPECT_EQ(m.kp_of(lp), kp);
    EXPECT_EQ(t.pe_of_lp(lp), new_pe);
  }
  // Every other KP (and its LPs) is untouched.
  for (std::uint32_t k = 0; k < 6; ++k) {
    if (k == kp) continue;
    EXPECT_EQ(t.pe_of_kp(k), m.pe_of_kp(k));
  }
  EXPECT_EQ(t.kp_owner()[kp], new_pe);
}

// ----------------------------------------------------------------- planner

MigrationConfig scored_cfg(double imbalance = 1.5, std::uint32_t max = 1) {
  MigrationConfig c;
  c.enabled = true;
  c.imbalance_threshold = imbalance;
  c.max_moves = max;
  return c;
}

PeLoad load(std::uint64_t processed, std::uint64_t rolled_back,
            std::uint32_t owned, std::uint32_t cand_kp,
            std::uint64_t cand_score, std::uint64_t pool = 0) {
  PeLoad l;
  l.processed_delta = processed;
  l.rolled_back_delta = rolled_back;
  l.pool_live = pool;
  l.owned_kps = owned;
  l.has_candidate = cand_score > 0;
  l.candidate_kp = cand_kp;
  l.candidate_score = cand_score;
  return l;
}

TEST(PlanMigrations, ForcedModeRotatesDistinctKpsByDecisionIndex) {
  MigrationConfig c;
  c.enabled = true;
  c.forced = true;
  c.max_moves = 2;
  const std::vector<std::uint32_t> owner = {0, 0, 1, 1, 2, 2};
  std::vector<PeLoad> loads(3);

  const auto plan0 = plan_migrations(c, loads, owner, /*decision_index=*/0);
  ASSERT_EQ(plan0.size(), 2u);
  EXPECT_EQ(plan0[0], (KpMove{0, 0, 1}));
  EXPECT_EQ(plan0[1], (KpMove{1, 0, 1}));

  const auto plan1 = plan_migrations(c, loads, owner, 1);
  ASSERT_EQ(plan1.size(), 2u);
  EXPECT_EQ(plan1[0], (KpMove{2, 1, 2}));
  EXPECT_EQ(plan1[1], (KpMove{3, 1, 2}));

  // Index 3 wraps: KPs 6,7 don't exist -> 0,1 again.
  const auto plan3 = plan_migrations(c, loads, owner, 3);
  ASSERT_EQ(plan3.size(), 2u);
  EXPECT_EQ(plan3[0].kp, 0u);
  EXPECT_EQ(plan3[1].kp, 1u);
}

TEST(PlanMigrations, ScoredModeMovesHotCandidateToColdestPe) {
  // PE0 is 4x the mean; PE2 is the coldest.
  const std::vector<PeLoad> loads = {load(900, 300, 4, /*cand=*/2, 500),
                                     load(200, 0, 4, 6, 80),
                                     load(100, 0, 4, 9, 40)};
  const std::vector<std::uint32_t> owner = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2};
  const auto plan = plan_migrations(scored_cfg(), loads, owner, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (KpMove{2, 0, 2}));
}

TEST(PlanMigrations, BalancedLoadPlansNothing) {
  const std::vector<PeLoad> loads = {load(100, 0, 2, 0, 60),
                                     load(110, 0, 2, 2, 55)};
  const std::vector<std::uint32_t> owner = {0, 0, 1, 1};
  EXPECT_TRUE(plan_migrations(scored_cfg(), loads, owner, 0).empty());
}

TEST(PlanMigrations, IdleEngineAndSinglePePlanNothing) {
  // All-zero scores: nothing to balance.
  const std::vector<PeLoad> idle = {load(0, 0, 2, 0, 0), load(0, 0, 2, 2, 0)};
  EXPECT_TRUE(plan_migrations(scored_cfg(), idle, {0, 0, 1, 1}, 0).empty());
  // One PE: nowhere to move.
  const std::vector<PeLoad> solo = {load(500, 100, 4, 1, 300)};
  EXPECT_TRUE(plan_migrations(scored_cfg(), solo, {0, 0, 0, 0}, 0).empty());
}

TEST(PlanMigrations, SourceMustKeepAtLeastOneKp) {
  // PE0 is scorching but owns a single KP: stripping it would leave an
  // empty PE for no balance gain (the KP *is* the load).
  const std::vector<PeLoad> loads = {load(1000, 500, 1, 0, 900),
                                     load(50, 0, 3, 3, 20)};
  const std::vector<std::uint32_t> owner = {0, 1, 1, 1};
  EXPECT_TRUE(plan_migrations(scored_cfg(), loads, owner, 0).empty());
}

TEST(PlanMigrations, StaleCandidateIsIgnored) {
  // PE0's published candidate is no longer owned by PE0 (moved by an earlier
  // round before this plan): the planner must not move someone else's KP.
  const std::vector<PeLoad> loads = {load(1000, 0, 3, /*cand=*/5, 800),
                                     load(10, 0, 3, 1, 5)};
  const std::vector<std::uint32_t> owner = {0, 0, 0, 1, 1, 1};
  EXPECT_TRUE(plan_migrations(scored_cfg(), loads, owner, 0).empty());
}

TEST(PlanMigrations, DestinationTiesBreakByPoolPressureThenId) {
  // PE1 and PE2 have equal scores; PE2 has less pool pressure -> dst.
  const std::vector<PeLoad> loads = {load(900, 100, 2, 0, 700),
                                     load(100, 0, 2, 2, 50, /*pool=*/500),
                                     load(100, 0, 2, 4, 50, /*pool=*/10)};
  const std::vector<std::uint32_t> owner = {0, 0, 1, 1, 2, 2};
  const auto plan = plan_migrations(scored_cfg(), loads, owner, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].dst_pe, 2u);
}

TEST(PlanMigrations, MaxMovesBoundsTheRoundAndSourcesMoveOnce) {
  // Two hot PEs, max=4: each hot PE contributes at most its one published
  // candidate, so the plan holds exactly two moves.
  const std::vector<PeLoad> loads = {load(800, 200, 2, 0, 600),
                                     load(700, 300, 2, 2, 500),
                                     load(10, 0, 2, 4, 5),
                                     load(20, 0, 2, 6, 8)};
  const std::vector<std::uint32_t> owner = {0, 0, 1, 1, 2, 2, 3, 3};
  const auto plan = plan_migrations(scored_cfg(1.0, 4), loads, owner, 0);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].src_pe, 0u);  // hottest first
  EXPECT_EQ(plan[1].src_pe, 1u);
  EXPECT_NE(plan[0].kp, plan[1].kp);
}

// --------------------------------------------------- kernel determinism

PholdConfig mig_phold_config() {
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;  // straggler-heavy
  return pc;
}

EngineConfig mig_engine_config(const PholdConfig& pc) {
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 80.0;
  ec.seed = 23;
  ec.num_pes = 4;
  ec.num_kps = 16;
  ec.gvt_interval_events = 96;
  return ec;
}

// Forced migration on every GVT round is the harshest handoff stress: KPs
// rotate constantly, some PEs transiently own zero KPs, and the committed
// state must still be bit-identical to the sequential reference.
TEST(MigrationDeterminism, ForcedEveryRoundMatchesSequential) {
  const PholdConfig pc = mig_phold_config();
  EngineConfig ec = mig_engine_config(pc);

  PholdModel m1(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, m1, ec);
  const RunStats sstats = seq->run();

  std::string err;
  ASSERT_TRUE(MigrationConfig::parse("forced,every=1,max=2", ec.migration, err))
      << err;
  PholdModel m2(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m2, ec);
  const RunStats tstats = tw->run();

  EXPECT_EQ(sstats.committed_events(), tstats.committed_events());
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  // The stress must actually have moved KPs (and, over that many rounds,
  // in-flight events with them) or this proves nothing.
  EXPECT_GT(tstats.kp_migrations(), 0u);
  EXPECT_GT(tstats.migrated_events(), 0u);
  EXPECT_GT(tstats.metrics.total.at(Counter::MigrationRounds), 0u);
}

TEST(MigrationDeterminism, ScoredModeMatchesSequential) {
  const PholdConfig pc = mig_phold_config();
  EngineConfig ec = mig_engine_config(pc);

  PholdModel m1(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, m1, ec);
  seq->run();

  std::string err;
  ASSERT_TRUE(
      MigrationConfig::parse("every=2,imbalance=1,max=2", ec.migration, err))
      << err;
  PholdModel m2(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m2, ec);
  tw->run();
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
}

// A PE may end up owning zero KPs mid-run (4 KPs rotating across 4 PEs) and
// the engine must neither deadlock nor diverge.
TEST(MigrationDeterminism, ToleratesPesWithZeroKps) {
  const PholdConfig pc = mig_phold_config();
  EngineConfig ec = mig_engine_config(pc);
  ec.num_kps = 4;

  PholdModel m1(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, m1, ec);
  seq->run();

  std::string err;
  ASSERT_TRUE(MigrationConfig::parse("forced,every=1,max=3", ec.migration, err));
  PholdModel m2(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m2, ec);
  const RunStats tstats = tw->run();
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  EXPECT_GT(tstats.kp_migrations(), 0u);
}

// A migrating run with a fixed config is itself exactly repeatable.
TEST(MigrationDeterminism, MigratingRunIsRepeatable) {
  const PholdConfig pc = mig_phold_config();
  EngineConfig ec = mig_engine_config(pc);
  std::string err;
  ASSERT_TRUE(MigrationConfig::parse("forced,every=2,max=2", ec.migration, err));

  PholdModel m1(pc);
  std::unique_ptr<Engine> a = make_engine(EngineKind::TimeWarp, m1, ec);
  a->run();
  PholdModel m2(pc);
  std::unique_ptr<Engine> b = make_engine(EngineKind::TimeWarp, m2, ec);
  b->run();
  EXPECT_EQ(PholdModel::digest(*a), PholdModel::digest(*b));
}

// ------------------------------------------- migration x chaos x queue kind

struct MigChaosKnobs {
  const char* name;
  const char* migrate;
  const char* chaos;  // nullptr = fault-free
  EngineConfig::QueueKind queue;
};

class MigrationMatrix : public ::testing::TestWithParam<MigChaosKnobs> {};

// Migration composes with every delivery fault: anti-messages chase moved
// positives through the live ownership table, chaos-held envelopes migrate
// with their KP, and the committed state still matches sequential.
TEST_P(MigrationMatrix, MigrationComposesWithDeliveryFaults) {
  const MigChaosKnobs k = GetParam();
  const PholdConfig pc = mig_phold_config();
  EngineConfig ec = mig_engine_config(pc);

  PholdModel m1(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, m1, ec);
  const RunStats sstats = seq->run();

  ec.queue_kind = k.queue;
  std::string err;
  ASSERT_TRUE(MigrationConfig::parse(k.migrate, ec.migration, err)) << err;
  if (k.chaos != nullptr) {
    ASSERT_TRUE(FaultPlan::parse(k.chaos, ec.fault, err)) << err;
  }
  PholdModel m2(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m2, ec);
  const RunStats tstats = tw->run();

  EXPECT_EQ(sstats.committed_events(), tstats.committed_events());
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  EXPECT_GT(tstats.kp_migrations(), 0u)
      << "migration spec " << k.migrate << " never moved a KP";
}

constexpr auto kSplay = EngineConfig::QueueKind::Splay;
constexpr auto kMSet = EngineConfig::QueueKind::Multiset;
constexpr const char* kCombinedChaos =
    "delay:p=0.2,k=2;reorder:p=0.4;straggler:p=0.3;dup-anti:p=0.3;seed=13";

INSTANTIATE_TEST_SUITE_P(
    MigChaosSweep, MigrationMatrix,
    ::testing::Values(
        MigChaosKnobs{"forced_splay", "forced,every=1,max=2", nullptr, kSplay},
        MigChaosKnobs{"forced_mset", "forced,every=1,max=2", nullptr, kMSet},
        MigChaosKnobs{"forced_delay_splay", "forced,every=1,max=2",
                      "delay:p=0.3,k=2;seed=7", kSplay},
        MigChaosKnobs{"forced_combined_splay", "forced,every=1,max=2",
                      kCombinedChaos, kSplay},
        MigChaosKnobs{"forced_combined_mset", "forced,every=1,max=2",
                      kCombinedChaos, kMSet},
        MigChaosKnobs{"forced_stall_splay", "forced,every=2,max=1",
                      "stall:pe=1,rounds=6,at=2", kSplay},
        MigChaosKnobs{"scored_combined_splay", "every=2,imbalance=1,max=2",
                      kCombinedChaos, kSplay}),
    [](const auto& info) { return std::string(info.param.name); });

// Full-stack variant: hot-potato torus through the core facade; the whole
// obs::ModelChannel (every named model metric) must match the sequential run
// with forced migration churning the placement underneath it.
TEST(MigrationHotPotato, ModelChannelIdenticalUnderForcedMigration) {
  core::SimulationOptions base;
  base.model.n = 8;
  base.model.injector_fraction = 0.75;
  base.model.steps = 32;
  const auto seq = core::run_hotpotato(base);

  core::SimulationOptions opts = base;
  opts.kernel = core::Kernel::TimeWarp;
  opts.engine.num_pes = 4;
  opts.engine.num_kps = 16;
  opts.engine.gvt_interval_events = 256;
  std::string err;
  ASSERT_TRUE(
      MigrationConfig::parse("forced,every=1,max=2", opts.engine.migration, err))
      << err;
  const auto tw = core::run_hotpotato(opts);

  EXPECT_TRUE(tw.model == seq.model);
  EXPECT_TRUE(tw.report == seq.report);
  EXPECT_EQ(tw.engine.committed_events(), seq.engine.committed_events());
  EXPECT_GT(tw.engine.kp_migrations(), 0u);
}

}  // namespace
}  // namespace hp::des
