// Slab allocator unit tests (run under ASan in CI — the slab pool must be
// clean under it) plus the envelope-scrubbing regression: a recycled
// envelope must be indistinguishable from a fresh-from-slab one. Historical
// bug: EventPool::free left parent_uid / send_ts / cv / payload_size /
// rng_before behind, so a recycled envelope could leak one event's causality
// into an unrelated reuse (a stale parent_uid fabricates a forensics edge, a
// stale cv corrupts lazy-cancellation re-evaluation).

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "des/event.hpp"

namespace hp::des {
namespace {

// Every engine-visible field in its fresh-from-slab state. Keep in sync with
// EventPool::free — that is the point of this helper.
void expect_fresh(const Event& ev, const char* what) {
  EXPECT_EQ(ev.key, EventKey{}) << what;
  EXPECT_EQ(ev.uid, 0u) << what;
  EXPECT_EQ(ev.parent_uid, 0u) << what;
  EXPECT_EQ(ev.rng_before, 0u) << what;
  EXPECT_EQ(ev.send_ts, 0.0) << what;
  EXPECT_EQ(ev.kp, 0u) << what;
  EXPECT_EQ(ev.status, EventStatus::Free) << what;
  EXPECT_FALSE(ev.is_anti) << what;
  EXPECT_EQ(ev.payload_size, 0u) << what;
  EXPECT_EQ(ev.cv, 0u) << what;
  EXPECT_EQ(ev.cascade, 0u) << what;
  EXPECT_EQ(ev.send_wall_ns, 0u) << what;
  EXPECT_TRUE(ev.children.empty()) << what;
  EXPECT_EQ(ev.cold_block, nullptr) << what;
}

// Dirty every field free() is responsible for clearing.
void dirty(Event* ev) {
  ev->key = EventKey{123.0, 456, 7, 8, 9};
  ev->uid = 0xDEADBEEF;
  ev->parent_uid = 0xFEEDFACE;
  ev->rng_before = 77;
  ev->send_ts = 99.5;
  ev->kp = 3;
  ev->status = EventStatus::Processed;
  ev->is_anti = true;
  ev->payload_size = 16;
  ev->cv = 5;
  ev->cascade = 2;
  ev->send_wall_ns = 123456789;
  std::memset(ev->payload, 0x5C, kMaxPayload);
  ev->children.push_back(ChildRef{EventKey{1.0, 2, 3, 4, 5}, 6, 7, 8});
  ev->cold().stale_children.push_back(ChildRef{EventKey{}, 1, 2, 3});
}

TEST(EventPoolSlab, FirstAllocationCommitsOneSlab) {
  EventPool pool;
  EXPECT_EQ(pool.slabs_allocated(), 0u);
  EXPECT_EQ(pool.pool_bytes(), 0u);
  EXPECT_EQ(pool.capacity(), 0u);
  Event* ev = pool.allocate();
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  EXPECT_EQ(pool.capacity(), kSlabEnvelopes);
  EXPECT_EQ(pool.pool_bytes(), kSlabEnvelopes * sizeof(Event));
  EXPECT_EQ(pool.free_count(), kSlabEnvelopes - 1);
  EXPECT_EQ(pool.live(), 1);
  EXPECT_EQ(pool.peak_live(), 1);
  pool.free(ev);
}

TEST(EventPoolSlab, GrowsSlabAtATimeAndHandsOutDistinctEnvelopes) {
  EventPool pool;
  std::vector<Event*> held;
  std::set<Event*> distinct;
  held.reserve(kSlabEnvelopes + 1);
  for (std::size_t i = 0; i < kSlabEnvelopes; ++i) {
    held.push_back(pool.allocate());
    distinct.insert(held.back());
  }
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
  // The (slab+1)-th outstanding envelope commits the second slab.
  held.push_back(pool.allocate());
  distinct.insert(held.back());
  EXPECT_EQ(pool.slabs_allocated(), 2u);
  EXPECT_EQ(pool.capacity(), 2 * kSlabEnvelopes);
  EXPECT_EQ(pool.pool_bytes(), 2 * kSlabEnvelopes * sizeof(Event));
  EXPECT_EQ(distinct.size(), held.size()) << "allocator handed out a twin";
  EXPECT_EQ(pool.live(), static_cast<std::int64_t>(held.size()));
  EXPECT_EQ(pool.peak_live(), static_cast<std::int64_t>(held.size()));
  for (Event* ev : held) pool.free(ev);
  EXPECT_EQ(pool.live(), 0);
  EXPECT_EQ(pool.free_count(), 2 * kSlabEnvelopes);
  // Capacity is a high-water mark: freeing never returns slabs.
  EXPECT_EQ(pool.slabs_allocated(), 2u);
}

TEST(EventPoolSlab, RecycledEnvelopeIsIndistinguishableFromFresh) {
  EventPool pool;
  Event* fresh = pool.allocate();
  expect_fresh(*fresh, "fresh-from-slab envelope");
  dirty(fresh);
  pool.free(fresh);
  Event* recycled = pool.allocate();
  ASSERT_EQ(recycled, fresh) << "LIFO free list must hand the twin back";
  expect_fresh(*recycled, "recycled envelope");
#ifndef NDEBUG
  // Debug builds poison the payload on free (and on slab creation), so a
  // read-before-write of a recycled payload surfaces as 0xA5 garbage rather
  // than the previous event's bytes.
  for (std::size_t i = 0; i < kMaxPayload; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(recycled->payload[i]), 0xA5u)
        << "payload byte " << i << " not poisoned";
  }
#endif
  pool.free(recycled);
}

TEST(EventPoolSlab, CrossPoolFreeMovesLiveCount) {
  // A PE frees remote envelopes into its own pool: sender's live stays up,
  // receiver's goes negative; the sum is the true outstanding count.
  EventPool sender, receiver;
  Event* ev = sender.allocate();
  EXPECT_EQ(sender.live(), 1);
  receiver.free(ev);
  EXPECT_EQ(sender.live(), 1);
  EXPECT_EQ(receiver.live(), -1);
  EXPECT_EQ(sender.live() + receiver.live(), 0);
  // The envelope now belongs to the receiver's free list and is recycled
  // from there.
  EXPECT_EQ(receiver.allocate(), ev);
  receiver.free(ev);
}

TEST(EventPoolSlab, AdoptionMovesLiveButNotPeakLive) {
  // KP migration handoff: the receiving pool's live() must rise (the
  // adoptees are real pressure for flow control) but peak_live() must not —
  // no storage was allocated there. Historical bug: adjust_live bumped
  // peak_live_, inflating the receiver's memory figure on every handoff.
  EventPool src, dst;
  std::vector<Event*> moved;
  for (int i = 0; i < 10; ++i) moved.push_back(src.allocate());
  EXPECT_EQ(src.live(), 10);
  EXPECT_EQ(src.peak_live(), 10);

  src.adjust_live(-10);
  dst.adjust_live(10);
  EXPECT_EQ(src.live(), 0);
  EXPECT_EQ(dst.live(), 10);
  EXPECT_EQ(dst.peak_live(), 0) << "adoption must not move the allocation "
                                   "high-water";
  EXPECT_EQ(dst.adopted(), 10);
  EXPECT_EQ(dst.peak_adopted(), 10);
  EXPECT_EQ(src.adopted(), -10);
  EXPECT_EQ(src.peak_adopted(), 0);

  // Handing back: live returns, peak_adopted stays at its high-water.
  dst.adjust_live(-10);
  src.adjust_live(10);
  EXPECT_EQ(dst.live(), 0);
  EXPECT_EQ(dst.peak_adopted(), 10);
  EXPECT_EQ(src.live(), 10);
  EXPECT_EQ(src.peak_live(), 10);
  for (Event* ev : moved) src.free(ev);
  EXPECT_EQ(src.live(), 10 - 10);
}

TEST(EventPoolSlab, PeakLiveTracksAllocationsOnly) {
  EventPool pool;
  std::vector<Event*> held;
  for (int i = 0; i < 100; ++i) held.push_back(pool.allocate());
  EXPECT_EQ(pool.peak_live(), 100);
  for (Event* ev : held) pool.free(ev);
  held.clear();
  EXPECT_EQ(pool.live(), 0);
  EXPECT_EQ(pool.peak_live(), 100) << "peak is a high-water mark";
  for (int i = 0; i < 50; ++i) held.push_back(pool.allocate());
  EXPECT_EQ(pool.peak_live(), 100) << "peak only moves on a new high";
  for (Event* ev : held) pool.free(ev);
}

TEST(EventPoolSlab, ChurnReusesStorageWithoutGrowth) {
  EventPool pool;
  for (int round = 0; round < 1000; ++round) {
    Event* a = pool.allocate();
    Event* b = pool.allocate();
    dirty(a);
    pool.free(a);
    pool.free(b);
  }
  EXPECT_EQ(pool.slabs_allocated(), 1u)
      << "steady-state churn must not grow the pool";
  EXPECT_EQ(pool.live(), 0);
  EXPECT_EQ(pool.free_count(), kSlabEnvelopes);
}

TEST(EventPoolSlab, ColdBlockIsLazyAndFreedOnRecycle) {
  EventPool pool;
  Event* ev = pool.allocate();
  EXPECT_EQ(ev->cold_block, nullptr) << "cold state must be lazy";
  EXPECT_FALSE(ev->has_stale_children());
  ev->cold().stale_children.push_back(ChildRef{EventKey{}, 1, 2, 3});
  EXPECT_TRUE(ev->has_stale_children());
  ASSERT_NE(ev->cold_block, nullptr);
  EXPECT_EQ(&ev->cold(), ev->cold_block.get())
      << "cold() must reuse the existing block";
  pool.free(ev);
  Event* again = pool.allocate();
  ASSERT_EQ(again, ev);
  EXPECT_EQ(again->cold_block, nullptr) << "free must drop the cold block";
  pool.free(again);
}

}  // namespace
}  // namespace hp::des
