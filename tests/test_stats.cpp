#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace hp::util {
namespace {

TEST(Tally, AddRemoveRoundTrips) {
  Tally t;
  t.add(3.0);
  t.add(5.0);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.sum(), 8.0);
  EXPECT_DOUBLE_EQ(t.mean(), 4.0);
  t.remove(5.0);
  Tally expect;
  expect.add(3.0);
  EXPECT_EQ(t, expect);
}

TEST(Tally, EmptyMeanIsZero) {
  Tally t;
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(Tally, PushPopIsExactForArbitraryDoubles) {
  // Subtraction-based reversal drifts for non-integer values: (a+x)-x need
  // not equal a. push/pop restores the displaced sum and is exact.
  Tally t;
  t.add(1.0);  // small base, then a huge value swallows it
  const double saved = t.push(1e16);
  t.pop(saved);
  Tally expect;
  expect.add(1.0);
  EXPECT_EQ(t, expect) << "push/pop must be bit-exact";
  // Demonstrate that add/remove is NOT exact here (documents the pitfall):
  // fl(fl(1 + 1e16) - 1e16) == 0, losing the base value entirely.
  Tally drift;
  drift.add(1.0);
  drift.add(1e16);
  drift.remove(1e16);
  EXPECT_NE(drift.sum(), 1.0) << "if this ever passes, the doc note in "
                                 "stats.hpp about subtraction can be relaxed";
}

TEST(Tally, MergeAccumulates) {
  Tally a, b;
  a.add(1.0);
  b.add(2.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(RunningMax, PushPopRestoresExactly) {
  RunningMax m;
  const double p0 = m.push(4.0);
  const double p1 = m.push(2.0);  // not a new max
  const double p2 = m.push(9.0);
  EXPECT_DOUBLE_EQ(m.value(), 9.0);
  m.pop(p2);
  EXPECT_DOUBLE_EQ(m.value(), 4.0);
  m.pop(p1);
  EXPECT_DOUBLE_EQ(m.value(), 4.0);
  m.pop(p0);
  EXPECT_EQ(m, RunningMax{});
}

TEST(RunningMax, MergeTakesLarger) {
  RunningMax a, b;
  (void)a.push(1.0);
  (void)b.push(7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 7.0);
}

TEST(Histogram, BinningAndReversal) {
  Histogram h(0.0, 10.0, 5);  // [0,10) [10,20) ... [40,inf)
  h.add(0.0);
  h.add(9.99);
  h.add(10.0);
  h.add(1000.0);  // clamps to last bin
  h.add(-5.0);    // clamps to first bin
  EXPECT_EQ(h.counts()[0], 3u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[4], 1u);
  h.remove(1000.0);
  h.remove(-5.0);
  h.remove(10.0);
  h.remove(9.99);
  h.remove(0.0);
  EXPECT_EQ(h, Histogram(0.0, 10.0, 5));
}

// Regression: bin_of used to cast (x - lo) / width straight to size_t,
// which is undefined behaviour for values beyond the size_t range (huge
// finite x, +/-inf) and for NaN. The clamp now happens in double space:
// everything past the top lands in the overflow bin, NaN and -inf in the
// underflow bin, and add/remove stay reversible for all of them.
TEST(Histogram, ExtremeAndNonFiniteInputsClampSafely) {
  Histogram h(0.0, 10.0, 5);
  const double kHuge = 1e300;  // (x-lo)/width overflows any integer type
  const double kInf = std::numeric_limits<double>::infinity();
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  h.add(kHuge);
  h.add(kInf);
  h.add(kNan);
  h.add(-kInf);
  h.add(-1e300);
  EXPECT_EQ(h.counts()[4], 2u);  // huge + inf clamp to the overflow bin
  EXPECT_EQ(h.counts()[0], 3u);  // nan, -inf, -huge land in the first bin
  h.remove(kHuge);
  h.remove(kInf);
  h.remove(kNan);
  h.remove(-kInf);
  h.remove(-1e300);
  EXPECT_EQ(h, Histogram(0.0, 10.0, 5));
}

// Degenerate zero-width histogram must not invoke UB either: the offset
// divides to inf/NaN and still clamps to a valid bin.
TEST(Histogram, ZeroWidthDoesNotOverflow) {
  Histogram h(0.0, 0.0, 3);
  h.add(5.0);   // (5-0)/0 = inf -> overflow bin
  h.add(0.0);   // 0/0 = NaN offset -> clamps into the overflow bin, no UB
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.counts()[0] + h.counts()[1] + h.counts()[2], 2u);
}

// The shared quantile definition (util::interpolated_quantile) that every
// histogram routes through — edge cases pinned here once so the model-side
// percentiles and the latency telemetry cannot drift apart.
TEST(InterpolatedQuantile, EmptyDistributionIsZero) {
  EXPECT_DOUBLE_EQ(interpolated_quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(
      interpolated_quantile({{0.0, 1.0, 0}, {1.0, 2.0, 0}}, 0.5), 0.0);
}

TEST(InterpolatedQuantile, ClampsToOccupiedEdges) {
  // Zero-count bins flank the data: q<=0 must return the first OCCUPIED
  // bin's lower edge, q>=1 the last OCCUPIED bin's upper edge.
  const std::vector<QuantileBin> bins{
      {0.0, 1.0, 0}, {1.0, 2.0, 4}, {2.0, 3.0, 4}, {3.0, 4.0, 0}};
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, 2.0), 3.0);
  // NaN takes the q<=0 branch (deterministic, no UB).
  EXPECT_DOUBLE_EQ(
      interpolated_quantile(bins, std::numeric_limits<double>::quiet_NaN()),
      1.0);
}

TEST(InterpolatedQuantile, LinearInterpolationInsideABin) {
  // 10 observations uniform over [0,10): the median rank 5 sits at the
  // midpoint of the second bin ([5,10) holding ranks 5..10).
  const std::vector<QuantileBin> bins{{0.0, 5.0, 5}, {5.0, 10.0, 5}};
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(interpolated_quantile(bins, 0.75), 7.5);
  // Quantiles are monotone in q by construction.
  double prev = -1.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = interpolated_quantile(bins, q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Histogram, QuantileUsesTheSharedDefinition) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> 0
  for (int i = 0; i < 10; ++i) h.add(15.0);  // all in bin [10,20)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
}

TEST(Summary, WelfordMatchesClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.n(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

}  // namespace
}  // namespace hp::util
