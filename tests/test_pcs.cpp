#include <gtest/gtest.h>

#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "pcs/pcs_model.hpp"

namespace hp::pcs {
namespace {

des::EngineConfig engine_cfg(const PcsConfig& pc, double end) {
  des::EngineConfig ec;
  ec.num_lps = pc.num_cells();
  ec.end_time = end;
  ec.seed = 3;
  return ec;
}

TEST(Pcs, CallsCompleteAndChannelsStayBounded) {
  PcsConfig pc;
  pc.n = 8;
  PcsModel model(pc);
  auto ec = engine_cfg(pc, 2000.0);
  des::SequentialEngine eng(model, ec);
  (void)eng.run();
  const PcsReport r = PcsModel::collect(eng);
  EXPECT_GT(r.calls_started, 0u);
  EXPECT_GT(r.calls_completed, 0u);
  EXPECT_LE(r.calls_completed, r.calls_started);
  for (std::uint32_t lp = 0; lp < pc.num_cells(); ++lp) {
    EXPECT_LE(static_cast<CellState&>(eng.state(lp)).busy_channels,
              pc.channels_per_cell);
  }
}

TEST(Pcs, CallDurationsAreReasonable) {
  PcsConfig pc;
  pc.n = 8;
  pc.handoff_rate = 0.0;  // pure birth-death: durations = drawn durations
  PcsModel model(pc);
  auto ec = engine_cfg(pc, 5000.0);
  des::SequentialEngine eng(model, ec);
  (void)eng.run();
  const PcsReport r = PcsModel::collect(eng);
  ASSERT_GT(r.calls_completed, 100u);
  // Exponential with mean 30, so the sample mean should be near 30.
  EXPECT_NEAR(r.mean_call_time(), pc.mean_call, pc.mean_call * 0.2);
  EXPECT_EQ(r.handoffs_in, 0u);
  EXPECT_EQ(r.handoffs_dropped, 0u);
}

TEST(Pcs, FewerChannelsMeansMoreBlocking) {
  auto run_blocking = [](std::uint32_t channels) {
    PcsConfig pc;
    pc.n = 8;
    pc.channels_per_cell = channels;
    pc.mean_idle = 20.0;  // heavy offered load
    PcsModel model(pc);
    auto ec = engine_cfg(pc, 3000.0);
    des::SequentialEngine eng(model, ec);
    (void)eng.run();
    return PcsModel::collect(eng).blocking_probability();
  };
  const double tight = run_blocking(2);
  const double roomy = run_blocking(12);
  EXPECT_GT(tight, roomy);
  EXPECT_GT(tight, 0.05);
  EXPECT_GE(roomy, 0.0);
}

TEST(Pcs, HandoffsHappenAndCanDrop) {
  PcsConfig pc;
  pc.n = 8;
  pc.channels_per_cell = 2;
  pc.mean_idle = 15.0;
  pc.handoff_rate = 0.02;
  PcsModel model(pc);
  auto ec = engine_cfg(pc, 4000.0);
  des::SequentialEngine eng(model, ec);
  (void)eng.run();
  const PcsReport r = PcsModel::collect(eng);
  EXPECT_GT(r.handoffs_in + r.handoffs_dropped, 50u);
  EXPECT_GT(r.handoff_drop_probability(), 0.0);
  EXPECT_LT(r.handoff_drop_probability(), 1.0);
}

TEST(Pcs, TimeWarpMatchesSequential) {
  PcsConfig pc;
  pc.n = 8;
  pc.mean_idle = 20.0;
  PcsModel m1(pc);
  auto ec = engine_cfg(pc, 1500.0);
  des::SequentialEngine seq(m1, ec);
  const auto sstats = seq.run();
  const PcsReport sr = PcsModel::collect(seq);

  for (const std::uint32_t pes : {2u, 4u}) {
    auto tc = ec;
    tc.num_pes = pes;
    tc.num_kps = 16;
    tc.gvt_interval_events = 256;
    PcsModel m2(pc);
    des::TimeWarpEngine tw(m2, tc);
    const auto tstats = tw.run();
    EXPECT_EQ(sstats.committed_events(), tstats.committed_events()) << pes;
    EXPECT_EQ(sr, PcsModel::collect(tw)) << pes;
  }
}

TEST(Pcs, LazyCancellationAlsoExact) {
  PcsConfig pc;
  pc.n = 8;
  pc.mean_idle = 20.0;
  PcsModel m1(pc);
  auto ec = engine_cfg(pc, 1500.0);
  des::SequentialEngine seq(m1, ec);
  (void)seq.run();
  const PcsReport sr = PcsModel::collect(seq);

  auto tc = ec;
  tc.num_pes = 4;
  tc.num_kps = 16;
  tc.gvt_interval_events = 128;
  tc.cancellation = des::EngineConfig::Cancellation::Lazy;
  PcsModel m2(pc);
  des::TimeWarpEngine tw(m2, tc);
  (void)tw.run();
  EXPECT_EQ(sr, PcsModel::collect(tw));
}

}  // namespace
}  // namespace hp::pcs
