// Scheme-conformance suite: every fc scheme on tiny networks against
// hand-computed delivery / stall / credit traces, plus per-scheme
// determinism. The traces pin the family's defining latencies:
//
//   store-and-forward: d * F steps end to end (full buffering per hop),
//   cut-through (vct, wormhole): d + F - 1 (head pipelines ahead),
//
// for a packet of F flits over d hops (delivery time counts the injection
// step through the tail-absorption step inclusive), and the credit pipeline:
// a freed slot becomes a usable upstream credit credit_delay steps later.

#include <gtest/gtest.h>

#include "buffered/schemes.hpp"

namespace hp::fc {
namespace {

// A quiet network (no injectors) to trace seeded packets through.
FlowControlConfig quiet(Kind k, std::int32_t n, net::GridKind topo,
                        std::uint32_t flit, std::uint32_t qcap,
                        std::uint32_t credit_delay = 1) {
  FlowControlConfig c;
  c.scheme = k;
  c.n = n;
  c.topology = topo;
  c.injector_fraction = 0.0;
  c.steps = 100;
  c.flits_per_packet = flit;
  c.queue_capacity = qcap;
  c.credit_delay = credit_delay;
  return c;
}

FcReport trace(const FlowControlConfig& c, std::uint32_t src,
               std::uint32_t dst, std::uint32_t steps = 60) {
  const auto s = FlowControlScheme::create(c);
  s->seed_packet(src, dst);
  for (std::uint32_t i = 0; i < steps; ++i) s->step();
  return s->report();
}

TEST(FcTrace, StoreAndForwardDeliveryIsDistanceTimesFlits) {
  // Mesh row 0 -> 3: d=3, F=3. Each hop waits for the full packet, so the
  // packet spends F steps per hop: 9 steps end to end.
  const auto r =
      trace(quiet(Kind::StoreAndForward, 4, net::GridKind::Mesh, 3, 4), 0, 3);
  ASSERT_EQ(r.delivered, 1u);
  EXPECT_DOUBLE_EQ(r.delivery_steps_sum, 9.0);
  EXPECT_DOUBLE_EQ(r.delivery_distance_sum, 3.0);
  // Torus 0 -> 2: d=2 => 6 steps.
  const auto t =
      trace(quiet(Kind::StoreAndForward, 4, net::GridKind::Torus, 3, 4), 0, 2);
  ASSERT_EQ(t.delivered, 1u);
  EXPECT_DOUBLE_EQ(t.delivery_steps_sum, 6.0);
}

TEST(FcTrace, CutThroughDeliveryIsDistancePlusFlitsMinusOne) {
  // The head pipelines ahead of the body: d + F - 1 = 3 + 3 - 1 = 5.
  for (const Kind k : {Kind::VirtualCutThrough, Kind::Wormhole}) {
    const auto r = trace(quiet(k, 4, net::GridKind::Mesh, 3, 4), 0, 3);
    ASSERT_EQ(r.delivered, 1u) << kind_name(k);
    EXPECT_DOUBLE_EQ(r.delivery_steps_sum, 5.0) << kind_name(k);
  }
}

TEST(FcTrace, SingleFlitPacketsCollapseTheFamily) {
  // F=1: d*F == d + F - 1 == d. All three schemes agree exactly.
  for (const Kind k : kAllKinds) {
    const auto r = trace(quiet(k, 4, net::GridKind::Mesh, 1, 2), 0, 3);
    ASSERT_EQ(r.delivered, 1u) << kind_name(k);
    EXPECT_DOUBLE_EQ(r.delivery_steps_sum, 3.0) << kind_name(k);
  }
}

TEST(FcTrace, StoreAndForwardStallsWaitingForSerialization) {
  // Torus 0 -> 2 with F=3: the head reaches router 1 after step 1 but must
  // wait steps 2 and 3 for the body and tail to accumulate — exactly two
  // stalls, both at router 1.
  const auto r =
      trace(quiet(Kind::StoreAndForward, 4, net::GridKind::Torus, 3, 4), 0, 2);
  ASSERT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.stalls, 2u);
}

TEST(FcTrace, WormholeCreditRoundTripGatesTheWorm) {
  // qcap=1, F=3, d=3: every body/tail flit must wait for the downstream
  // slot's credit to round-trip, stretching delivery from 5 to 7 steps with
  // exactly two source stalls.
  const auto r =
      trace(quiet(Kind::Wormhole, 4, net::GridKind::Mesh, 3, 1), 0, 3);
  ASSERT_EQ(r.delivered, 1u);
  EXPECT_DOUBLE_EQ(r.delivery_steps_sum, 7.0);
  EXPECT_EQ(r.stalls, 2u);
  // A slower credit pipeline stretches the same worm further.
  const auto slow =
      trace(quiet(Kind::Wormhole, 4, net::GridKind::Mesh, 3, 1, 3), 0, 3);
  ASSERT_EQ(slow.delivered, 1u);
  EXPECT_GT(slow.delivery_steps_sum, r.delivery_steps_sum);
}

TEST(FcTrace, AbsorptionNeedsNoCredits) {
  // Adjacent destination with qcap=1: absorption consumes flits at the NIC
  // without buffering, so even a 3-flit worm streams in F steps, stall-free.
  const auto r =
      trace(quiet(Kind::Wormhole, 4, net::GridKind::Mesh, 3, 1), 0, 1);
  ASSERT_EQ(r.delivered, 1u);
  EXPECT_DOUBLE_EQ(r.delivery_steps_sum, 3.0);
  EXPECT_EQ(r.stalls, 0u);
}

TEST(FcTrace, LinkOwnershipSerializesCompetingWorms) {
  // Two worms contend for router 1's East link: A seeded at 0 (through
  // router 1) and B seeded at router 1 itself, both headed to 3 (F=3,
  // wormhole). B wins the output on the first step and A's head must wait
  // at router 1 until B's tail releases the link — two stalls — after which
  // A streams through untouched. Flits never interleave, so the traces are
  // exact: B takes 4 steps (d=2), A takes its uncontended 5 plus B's 2-step
  // occupancy.
  const auto s = FlowControlScheme::create(
      quiet(Kind::Wormhole, 4, net::GridKind::Mesh, 3, 4));
  s->seed_packet(0, 3);
  s->seed_packet(1, 3);
  for (int i = 0; i < 40; ++i) s->step();
  const FcReport r = s->report();
  ASSERT_EQ(r.delivered, 2u);
  EXPECT_DOUBLE_EQ(r.delivery_steps_sum, 4.0 + 7.0);
  EXPECT_EQ(r.stalls, 2u);
  // A's three flits queue at router 1 while blocked.
  EXPECT_DOUBLE_EQ(r.max_queue_depth, 3.0);
}

TEST(FcTrace, CreditsConserveAndTheNetworkQuiesces) {
  // After the packet drains, every credit must have returned: 3 flits freed
  // at each of the two intermediate routers = 6 matured credit messages.
  for (const Kind k : kAllKinds) {
    const auto s = FlowControlScheme::create(
        quiet(k, 4, net::GridKind::Mesh, 3, 4));
    s->seed_packet(0, 3);
    for (int i = 0; i < 60; ++i) s->step();
    const FcReport r = s->report();
    ASSERT_EQ(r.delivered, 1u) << kind_name(k);
    EXPECT_EQ(r.flits_injected, 3u) << kind_name(k);
    EXPECT_EQ(r.flits_absorbed, 3u) << kind_name(k);
    EXPECT_EQ(r.credits_returned, 6u) << kind_name(k);
    EXPECT_EQ(s->flits_in_network(), 0u) << kind_name(k);
    EXPECT_EQ(s->credit_msgs_pending(), 0u) << kind_name(k);
    EXPECT_TRUE(s->quiescent()) << kind_name(k);
  }
}

TEST(FcTrace, ConservationHoldsAtEveryStepBoundary) {
  for (const Kind k : kAllKinds) {
    FlowControlConfig c = quiet(k, 6, net::GridKind::Torus, 2, 4);
    c.injector_fraction = 1.0;
    const auto s = FlowControlScheme::create(c);
    for (int i = 0; i < 30; ++i) {
      s->step();
      const FcReport r = s->report();
      ASSERT_EQ(s->flits_in_network(), r.flits_injected - r.flits_absorbed)
          << kind_name(k) << " at step " << s->current_step();
    }
  }
}

TEST(FcDeterminism, SameSeedSameChannelAcrossTopologiesAndTraffic) {
  for (const Kind k : kAllKinds) {
    for (const auto topo : {net::GridKind::Torus, net::GridKind::Mesh}) {
      for (const auto traffic : {hotpotato::TrafficPattern::Uniform,
                                 hotpotato::TrafficPattern::Transpose}) {
        FlowControlConfig c = quiet(k, 6, topo, 2, 4);
        c.injector_fraction = 0.75;
        c.traffic = traffic;
        c.seed = 42;
        const auto a = FlowControlScheme::create(c);
        const auto b = FlowControlScheme::create(c);
        a->run();
        b->run();
        EXPECT_EQ(a->collect_channel(), b->collect_channel())
            << kind_name(k) << " topo=" << static_cast<int>(topo)
            << " traffic=" << hotpotato::traffic_pattern_name(traffic);
      }
    }
  }
}

TEST(FcDeterminism, SeedChangesTheWorkload) {
  FlowControlConfig c = quiet(Kind::Wormhole, 6, net::GridKind::Torus, 2, 4);
  c.injector_fraction = 0.75;
  c.seed = 1;
  const auto a = FlowControlScheme::create(c);
  c.seed = 2;
  const auto b = FlowControlScheme::create(c);
  a->run();
  b->run();
  EXPECT_NE(a->collect_channel(), b->collect_channel());
}

}  // namespace
}  // namespace hp::fc
