#include <gtest/gtest.h>

#include "net/torus.hpp"

namespace hp::net {
namespace {

TEST(Torus, IdCoordRoundTrip) {
  const Torus t(8);
  for (std::uint32_t id = 0; id < t.num_nodes(); ++id) {
    EXPECT_EQ(t.id_of(t.coord_of(id)), id);
  }
}

TEST(Torus, ReportLpNumberingConvention) {
  // The report: a 32x32 torus has LPs 0..1023 row-major; East from x is x+1
  // wrapping within the row.
  const Torus t(32);
  EXPECT_EQ(t.neighbor(0, Dir::East), 1u);
  EXPECT_EQ(t.neighbor(31, Dir::East), 0u);     // east edge wraps
  EXPECT_EQ(t.neighbor(32, Dir::West), 63u);    // west edge wraps in row 1
  EXPECT_EQ(t.neighbor(0, Dir::South), 32u);
  EXPECT_EQ(t.neighbor(0, Dir::North), 992u);   // wraps to last row
}

TEST(Torus, NeighborsAreInvolutions) {
  const Torus t(5);
  for (std::uint32_t id = 0; id < t.num_nodes(); ++id) {
    for (Dir d : kAllDirs) {
      EXPECT_EQ(t.neighbor(t.neighbor(id, d), opposite(d)), id);
    }
  }
}

TEST(Torus, DistanceSymmetricAndBounded) {
  const Torus t(6);
  for (std::uint32_t a = 0; a < t.num_nodes(); ++a) {
    for (std::uint32_t b = 0; b < t.num_nodes(); ++b) {
      EXPECT_EQ(t.distance(a, b), t.distance(b, a));
      EXPECT_LE(t.distance(a, b), 6);  // torus diameter is N (=2*floor(N/2))
      EXPECT_GE(t.distance(a, b), 0);
      if (a == b) {
        EXPECT_EQ(t.distance(a, b), 0);
      }
    }
  }
}

TEST(Torus, TorusMaxDistanceBeatsMesh) {
  // The report motivates the torus: max distance N-1 per axis is wrong for a
  // torus — it is floor(N/2) per axis vs N-1 for the mesh.
  const Torus t(9);
  std::int32_t max_d = 0;
  for (std::uint32_t a = 0; a < t.num_nodes(); ++a) {
    max_d = std::max(max_d, t.distance(0, a));
  }
  EXPECT_EQ(max_d, 8);  // 2 * floor(9/2)
}

TEST(Torus, GoodDirsReduceDistanceExactlyByOne) {
  // Property over all pairs: following any good link reduces distance by 1,
  // and every non-good link does not reduce it.
  const Torus t(7);
  for (std::uint32_t src = 0; src < t.num_nodes(); ++src) {
    for (std::uint32_t dst = 0; dst < t.num_nodes(); ++dst) {
      if (src == dst) {
        EXPECT_TRUE(t.good_dirs(src, dst).empty());
        continue;
      }
      const DirSet good = t.good_dirs(src, dst);
      EXPECT_FALSE(good.empty());
      const auto d0 = t.distance(src, dst);
      for (Dir d : kAllDirs) {
        const auto d1 = t.distance(t.neighbor(src, d), dst);
        if (good.contains(d)) {
          EXPECT_EQ(d1, d0 - 1) << "src=" << src << " dst=" << dst
                                << " dir=" << dir_name(d);
        } else {
          EXPECT_GE(d1, d0) << "src=" << src << " dst=" << dst
                            << " dir=" << dir_name(d);
        }
      }
    }
  }
}

TEST(Torus, HalfwayPointHasBothDirectionsGood) {
  const Torus t(8);
  // src (0,0), dst (0,4): column offset exactly n/2, so East and West both
  // reduce the distance.
  const auto src = t.id_of({0, 0});
  const auto dst = t.id_of({0, 4});
  const DirSet g = t.good_dirs(src, dst);
  EXPECT_TRUE(g.contains(Dir::East));
  EXPECT_TRUE(g.contains(Dir::West));
  EXPECT_EQ(g.size(), 2);
}

TEST(Torus, HomeRunFollowsRowThenColumn) {
  const Torus t(8);
  const auto src = t.id_of({2, 1});
  const auto dst = t.id_of({5, 3});
  // Column not aligned: move along the row (East, since 3-1=2 < 6).
  EXPECT_EQ(t.home_run_dir(src, dst), Dir::East);
  // Column aligned: move along the column (South, 5-2=3 < 5).
  const auto turn = t.id_of({2, 3});
  EXPECT_EQ(t.home_run_dir(turn, dst), Dir::South);
  EXPECT_TRUE(t.at_home_run_turn(turn, dst));
  EXPECT_FALSE(t.at_home_run_turn(src, dst));
  EXPECT_FALSE(t.at_home_run_turn(dst, dst));
}

TEST(Torus, HomeRunPathTerminates) {
  // Property: repeatedly following home_run_dir reaches dst in exactly
  // distance(src,dst) steps, with at most one change of axis.
  const Torus t(9);
  for (std::uint32_t src = 0; src < t.num_nodes(); ++src) {
    for (std::uint32_t dst : {0u, 40u, 80u, 17u}) {
      if (src == dst) continue;
      std::uint32_t cur = src;
      int steps = 0;
      int axis_changes = 0;
      bool was_column_phase = false;
      while (cur != dst) {
        const Dir d = t.home_run_dir(cur, dst);
        const bool column_phase = (d == Dir::North || d == Dir::South);
        if (steps > 0 && column_phase != was_column_phase) ++axis_changes;
        was_column_phase = column_phase;
        cur = t.neighbor(cur, d);
        ++steps;
        ASSERT_LE(steps, 2 * 9) << "home-run path does not terminate";
      }
      EXPECT_EQ(steps, t.distance(src, dst));
      EXPECT_LE(axis_changes, 1) << "home-run path has more than one bend";
    }
  }
}

TEST(DirSet, BasicOperations) {
  DirSet s;
  EXPECT_TRUE(s.empty());
  s.add(Dir::East);
  s.add(Dir::North);
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.contains(Dir::East));
  EXPECT_FALSE(s.contains(Dir::West));
  EXPECT_EQ(s.nth(0), Dir::North);  // N,S,E,W enumeration order
  EXPECT_EQ(s.nth(1), Dir::East);
  s.remove(Dir::North);
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.nth(0), Dir::East);
}

}  // namespace
}  // namespace hp::net
