// Broad configuration-matrix equivalence fuzz: every combination of engine
// knobs must produce results bit-identical to the sequential reference on a
// rollback-heavy PHOLD load. This is the repository's strongest single
// correctness statement about the Time Warp kernel.
//
// Both kernels are built and driven through the common des::Engine interface
// (make_engine / run / for_each_state) — no per-kernel code paths.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "des/engine.hpp"
#include "des/phold.hpp"

namespace hp::des {
namespace {

struct Knobs {
  std::uint32_t pes;
  std::uint32_t kps;
  double window;  // <= 0 means infinite
  EngineConfig::QueueKind queue;
  EngineConfig::Cancellation cancellation;
  bool state_saving;
};

class EngineMatrix : public ::testing::TestWithParam<Knobs> {};

TEST_P(EngineMatrix, BitIdenticalToSequential) {
  const Knobs k = GetParam();
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;  // straggler-heavy

  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 80.0;
  ec.seed = 23;

  PholdModel m1(pc);
  std::unique_ptr<Engine> seq = make_engine(EngineKind::Sequential, m1, ec);
  const RunStats sstats = seq->run();

  ec.num_pes = k.pes;
  ec.num_kps = k.kps;
  ec.gvt_interval_events = 96;
  ec.optimism_window = k.window > 0 ? k.window : kTimeInf;
  ec.queue_kind = k.queue;
  ec.cancellation = k.cancellation;
  ec.state_saving = k.state_saving;
  PholdModel m2(pc);
  std::unique_ptr<Engine> tw = make_engine(EngineKind::TimeWarp, m2, ec);
  const RunStats tstats = tw->run();

  EXPECT_EQ(sstats.committed_events(), tstats.committed_events());
  EXPECT_EQ(PholdModel::digest(*seq), PholdModel::digest(*tw));
  EXPECT_EQ(tstats.committed_events(),
            tstats.processed_events() - tstats.rolled_back_events());

  // The reported totals must be exactly the declared reduction of the
  // per-PE breakdown (the engines no longer sum by hand).
  ASSERT_EQ(tstats.per_pe().size(), k.pes);
  EXPECT_EQ(obs::reduce(tstats.per_pe()), tstats.metrics.total);
}

constexpr auto kAgg = EngineConfig::Cancellation::Aggressive;
constexpr auto kLazy = EngineConfig::Cancellation::Lazy;
constexpr auto kSplay = EngineConfig::QueueKind::Splay;
constexpr auto kMSet = EngineConfig::QueueKind::Multiset;

INSTANTIATE_TEST_SUITE_P(
    KnobSweep, EngineMatrix,
    ::testing::Values(
        Knobs{2, 8, 0.0, kSplay, kAgg, false},
        Knobs{2, 8, 0.0, kSplay, kLazy, false},
        Knobs{2, 8, 0.0, kMSet, kAgg, false},
        Knobs{2, 8, 0.0, kSplay, kAgg, true},
        Knobs{4, 16, 0.0, kSplay, kLazy, false},
        Knobs{4, 16, 0.0, kMSet, kLazy, true},
        Knobs{4, 16, 5.0, kSplay, kAgg, false},
        Knobs{4, 16, 5.0, kSplay, kLazy, false},
        Knobs{4, 16, 5.0, kMSet, kAgg, true},
        Knobs{3, 12, 2.0, kSplay, kLazy, true},
        Knobs{8, 24, 10.0, kSplay, kAgg, false},
        Knobs{8, 24, 0.0, kMSet, kLazy, false}),
    [](const auto& info) {
      const Knobs& k = info.param;
      std::string name = "pe" + std::to_string(k.pes) + "_kp" +
                         std::to_string(k.kps) + "_w" +
                         std::to_string(static_cast<int>(k.window)) +
                         (k.queue == kSplay ? "_splay" : "_mset") +
                         (k.cancellation == kLazy ? "_lazy" : "_agg") +
                         (k.state_saving ? "_ss" : "_rc");
      return name;
    });

}  // namespace
}  // namespace hp::des
