// Parameterized property sweep over grid sizes and both topologies: the
// routing-arithmetic invariants every policy depends on, checked
// exhaustively over all (src, dst) pairs per configuration.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "net/grid.hpp"

namespace hp::net {
namespace {

class GridProperties
    : public ::testing::TestWithParam<std::tuple<std::int32_t, GridKind>> {
 protected:
  Grid grid() const {
    return Grid(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(GridProperties, NeighborsAreInvolutionsOverAvailableLinks) {
  const Grid g = grid();
  for (std::uint32_t id = 0; id < g.num_nodes(); ++id) {
    const DirSet avail = g.available_dirs(id);
    for (Dir d : kAllDirs) {
      if (!avail.contains(d)) continue;
      const std::uint32_t nb = g.neighbor(id, d);
      ASSERT_TRUE(g.available_dirs(nb).contains(opposite(d)));
      ASSERT_EQ(g.neighbor(nb, opposite(d)), id);
    }
  }
}

TEST_P(GridProperties, DistanceIsAMetric) {
  const Grid g = grid();
  // Identity + symmetry over all pairs; triangle inequality over a sample.
  for (std::uint32_t a = 0; a < g.num_nodes(); ++a) {
    ASSERT_EQ(g.distance(a, a), 0);
    for (std::uint32_t b = a + 1; b < g.num_nodes(); ++b) {
      ASSERT_EQ(g.distance(a, b), g.distance(b, a));
      ASSERT_GE(g.distance(a, b), 1);
      ASSERT_LE(g.distance(a, b), g.diameter());
    }
  }
  const std::uint32_t probes[] = {0, g.num_nodes() / 3, g.num_nodes() - 1};
  for (std::uint32_t a : probes) {
    for (std::uint32_t b : probes) {
      for (std::uint32_t c : probes) {
        ASSERT_LE(g.distance(a, c), g.distance(a, b) + g.distance(b, c));
      }
    }
  }
}

TEST_P(GridProperties, GoodDirsExactlyTheDistanceReducers) {
  const Grid g = grid();
  for (std::uint32_t src = 0; src < g.num_nodes(); ++src) {
    const DirSet avail = g.available_dirs(src);
    for (std::uint32_t dst = 0; dst < g.num_nodes(); ++dst) {
      const DirSet good = g.good_dirs(src, dst);
      const auto d0 = g.distance(src, dst);
      for (Dir d : kAllDirs) {
        if (!avail.contains(d)) {
          ASSERT_FALSE(good.contains(d)) << "good link off the grid";
          continue;
        }
        const auto d1 = g.distance(g.neighbor(src, d), dst);
        ASSERT_EQ(good.contains(d), d1 == d0 - 1)
            << "src=" << src << " dst=" << dst << " dir=" << dir_name(d);
      }
    }
  }
}

TEST_P(GridProperties, HomeRunIsAShortestOneBendPath) {
  const Grid g = grid();
  const std::uint32_t probes[] = {0, g.num_nodes() / 2, g.num_nodes() - 1,
                                  g.num_nodes() / 3};
  for (std::uint32_t src = 0; src < g.num_nodes(); ++src) {
    for (std::uint32_t dst : probes) {
      if (src == dst) continue;
      std::uint32_t cur = src;
      int steps = 0, bends = 0;
      bool was_col = false;
      while (cur != dst) {
        const Dir d = g.home_run_dir(cur, dst);
        ASSERT_TRUE(g.available_dirs(cur).contains(d));
        ASSERT_TRUE(g.good_dirs(cur, dst).contains(d))
            << "home-run must always progress";
        const bool col = d == Dir::North || d == Dir::South;
        if (steps > 0 && col != was_col) ++bends;
        was_col = col;
        cur = g.neighbor(cur, d);
        ASSERT_LE(++steps, g.diameter());
      }
      ASSERT_EQ(steps, g.distance(src, dst));
      ASSERT_LE(bends, 1);
    }
  }
}

TEST_P(GridProperties, IdCoordBijection) {
  const Grid g = grid();
  for (std::uint32_t id = 0; id < g.num_nodes(); ++id) {
    const Coord c = g.coord_of(id);
    ASSERT_EQ(g.id_of(c), id);
    ASSERT_GE(c.row, 0);
    ASSERT_LT(c.row, g.n());
    ASSERT_GE(c.col, 0);
    ASSERT_LT(c.col, g.n());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndKinds, GridProperties,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8, 9, 13),
                       ::testing::Values(GridKind::Torus, GridKind::Mesh)),
    [](const auto& info) {
      return std::string(grid_kind_name(std::get<1>(info.param))) + "_n" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace hp::net
