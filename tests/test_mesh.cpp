#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "net/torus.hpp"

namespace hp::net {
namespace {

TEST(Mesh, BoundaryDegrees) {
  const Mesh m(4);
  // Corners have 2 links, edges 3, interior 4.
  EXPECT_EQ(m.available_dirs(m.id_of({0, 0})).size(), 2);
  EXPECT_EQ(m.available_dirs(m.id_of({0, 3})).size(), 2);
  EXPECT_EQ(m.available_dirs(m.id_of({3, 0})).size(), 2);
  EXPECT_EQ(m.available_dirs(m.id_of({3, 3})).size(), 2);
  EXPECT_EQ(m.available_dirs(m.id_of({0, 1})).size(), 3);
  EXPECT_EQ(m.available_dirs(m.id_of({2, 0})).size(), 3);
  EXPECT_EQ(m.available_dirs(m.id_of({1, 1})).size(), 4);
}

TEST(Mesh, NoWraparound) {
  const Mesh m(5);
  EXPECT_FALSE(m.has_link(m.id_of({0, 4}), Dir::East));
  EXPECT_FALSE(m.has_link(m.id_of({0, 0}), Dir::West));
  EXPECT_FALSE(m.has_link(m.id_of({0, 2}), Dir::North));
  EXPECT_FALSE(m.has_link(m.id_of({4, 2}), Dir::South));
  EXPECT_TRUE(m.has_link(m.id_of({0, 0}), Dir::East));
  EXPECT_TRUE(m.has_link(m.id_of({0, 0}), Dir::South));
}

TEST(Mesh, DistanceIsPlainManhattan) {
  const Mesh m(8);
  EXPECT_EQ(m.distance(m.id_of({0, 0}), m.id_of({7, 7})), 14);
  EXPECT_EQ(m.distance(m.id_of({0, 7}), m.id_of({0, 0})), 7);
  EXPECT_EQ(m.diameter(), 14);
  // Report Section 1.1: the torus halves the maximum distance.
  const Torus t(8);
  EXPECT_EQ(t.diameter(), 8);
  EXPECT_LT(t.diameter(), m.diameter());
}

TEST(Mesh, GoodDirsReduceDistanceAndStayOnGrid) {
  const Mesh m(6);
  for (std::uint32_t src = 0; src < m.num_nodes(); ++src) {
    const DirSet avail = m.available_dirs(src);
    for (std::uint32_t dst = 0; dst < m.num_nodes(); ++dst) {
      const DirSet good = m.good_dirs(src, dst);
      if (src == dst) {
        EXPECT_TRUE(good.empty());
        continue;
      }
      EXPECT_FALSE(good.empty());
      const auto d0 = m.distance(src, dst);
      for (Dir d : kAllDirs) {
        if (good.contains(d)) {
          ASSERT_TRUE(avail.contains(d))
              << "good link off the grid at " << src;
          EXPECT_EQ(m.distance(m.neighbor(src, d), dst), d0 - 1);
        }
      }
    }
  }
}

TEST(Mesh, HomeRunPathTerminatesWithOneBend) {
  const Mesh m(7);
  for (std::uint32_t src = 0; src < m.num_nodes(); ++src) {
    for (std::uint32_t dst : {0u, 24u, 48u, 13u}) {
      if (src == dst) continue;
      std::uint32_t cur = src;
      int steps = 0;
      int axis_changes = 0;
      bool was_column = false;
      while (cur != dst) {
        const Dir d = m.home_run_dir(cur, dst);
        ASSERT_TRUE(m.available_dirs(cur).contains(d));
        const bool column = (d == Dir::North || d == Dir::South);
        if (steps > 0 && column != was_column) ++axis_changes;
        was_column = column;
        cur = m.neighbor(cur, d);
        ++steps;
        ASSERT_LE(steps, 2 * 7);
      }
      EXPECT_EQ(steps, m.distance(src, dst));
      EXPECT_LE(axis_changes, 1);
    }
  }
}

TEST(MeshModel, StaticModeDrains) {
  core::SimulationOptions o;
  o.model.n = 4;
  o.model.topology = GridKind::Mesh;
  o.model.injector_fraction = 0.0;
  o.model.steps = 500;
  const auto r = core::run_hotpotato(o);
  // Full init seeds one packet per *available* link: corners 2, edges 3,
  // interior 4 => total = directed link count.
  std::uint64_t links = 0;
  const Mesh m(4);
  for (std::uint32_t lp = 0; lp < m.num_nodes(); ++lp) {
    links += static_cast<std::uint64_t>(m.available_dirs(lp).size());
  }
  EXPECT_EQ(r.report.delivered, links);
}

TEST(MeshModel, DynamicRunAndDeterminism) {
  core::SimulationOptions o;
  o.model.n = 8;
  o.model.topology = GridKind::Mesh;
  o.model.injector_fraction = 0.5;
  o.model.steps = 80;
  const auto seq = core::run_hotpotato(o);
  EXPECT_GT(seq.report.delivered, 0u);
  EXPECT_GE(seq.report.stretch(), 1.0);

  auto t = o;
  t.kernel = core::Kernel::TimeWarp;
  t.engine.num_pes = 4;
  t.engine.num_kps = 16;
  t.engine.gvt_interval_events = 256;
  const auto tw = core::run_hotpotato(t);
  EXPECT_EQ(seq.report, tw.report);
}

TEST(MeshModel, MeshDeliveryslowerThanTorus) {
  core::SimulationOptions mesh;
  mesh.model.n = 12;
  mesh.model.topology = GridKind::Mesh;
  mesh.model.injector_fraction = 0.5;
  mesh.model.steps = 150;
  core::SimulationOptions torus = mesh;
  torus.model.topology = GridKind::Torus;
  const auto rm = core::run_hotpotato(mesh);
  const auto rt = core::run_hotpotato(torus);
  // Mean shortest path is ~2x on the mesh (report Section 1.1 motivation).
  EXPECT_GT(rm.report.avg_distance(), rt.report.avg_distance());
  EXPECT_GT(rm.report.avg_delivery_steps(), rt.report.avg_delivery_steps());
}

}  // namespace
}  // namespace hp::net
