#include <gtest/gtest.h>

#include "baselines/deflection_policies.hpp"
#include "hotpotato/policy.hpp"

namespace hp::hotpotato {
namespace {

net::DirSet all_free() {
  net::DirSet s;
  for (net::Dir d : net::kAllDirs) s.add(d);
  return s;
}

HpMsg packet_to(const net::Torus& t, std::uint32_t dst, Priority p) {
  HpMsg m;
  m.prio = p;
  const net::Coord c = t.coord_of(dst);
  m.dst_row = static_cast<std::uint16_t>(c.row);
  m.dst_col = static_cast<std::uint16_t>(c.col);
  return m;
}

TEST(BhwPolicy, RouteOffsetsOrderPriorities) {
  const BhwPolicy p(8);
  HpMsg m;
  m.prio = Priority::Running;
  const double r = p.route_offset(m, 0);
  m.prio = Priority::Excited;
  const double e = p.route_offset(m, 0);
  m.prio = Priority::Active;
  const double a = p.route_offset(m, 0);
  m.prio = Priority::Sleeping;
  const double s = p.route_offset(m, 0);
  EXPECT_LT(r, e);
  EXPECT_LT(e, a);
  EXPECT_LT(a, s);
  EXPECT_GE(r, 1.0);
  EXPECT_LT(s, 5.0);
}

TEST(BhwPolicy, UpgradeProbabilitiesMatchPaper) {
  const BhwPolicy p(8);
  EXPECT_DOUBLE_EQ(p.p_sleep_upgrade(), 1.0 / (24.0 * 8.0));
  EXPECT_DOUBLE_EQ(p.p_active_upgrade(), 1.0 / (16.0 * 8.0));
}

TEST(BhwPolicy, SleepingTakesGoodLinkWhenFree) {
  const net::Torus t(8);
  const BhwPolicy p(8);
  util::ReversibleRng rng(1);
  // Packet at 0 heading to (0,3): only East is good.
  const HpMsg m = packet_to(t, t.id_of({0, 3}), Priority::Sleeping);
  for (int i = 0; i < 20; ++i) {
    const RouteDecision d = p.route(t, m, 0, all_free(), rng);
    EXPECT_EQ(d.dir, net::Dir::East);
    EXPECT_FALSE(d.deflected);
  }
}

TEST(BhwPolicy, SleepingDeflectsWhenNoGoodLinkFree) {
  const net::Torus t(8);
  const BhwPolicy p(8);
  util::ReversibleRng rng(1);
  const HpMsg m = packet_to(t, t.id_of({0, 3}), Priority::Sleeping);
  net::DirSet free;  // only North free; East (the good link) is taken
  free.add(net::Dir::North);
  const RouteDecision d = p.route(t, m, 0, free, rng);
  EXPECT_EQ(d.dir, net::Dir::North);
  EXPECT_TRUE(d.deflected);
}

TEST(BhwPolicy, DeflectionPrefersFreeGoodLink) {
  const net::Torus t(8);
  const BhwPolicy p(8);
  util::ReversibleRng rng(1);
  // Excited packet wants its home-run link (East); East taken but South is
  // good (dst (3,3) from (0,0)) and free -> deflection should still make
  // progress via South.
  const HpMsg m = packet_to(t, t.id_of({3, 3}), Priority::Excited);
  net::DirSet free;
  free.add(net::Dir::South);
  free.add(net::Dir::North);
  const RouteDecision d = p.route(t, m, 0, free, rng);
  EXPECT_TRUE(d.deflected);
  EXPECT_EQ(d.dir, net::Dir::South);
  EXPECT_EQ(d.new_priority, Priority::Active) << "deflected excited -> active";
}

TEST(BhwPolicy, ExcitedPromotesToRunningOnHomeRunLink) {
  const net::Torus t(8);
  const BhwPolicy p(8);
  util::ReversibleRng rng(1);
  const HpMsg m = packet_to(t, t.id_of({3, 3}), Priority::Excited);
  const RouteDecision d = p.route(t, m, 0, all_free(), rng);
  EXPECT_EQ(d.dir, net::Dir::East) << "home-run follows the row first";
  EXPECT_FALSE(d.deflected);
  EXPECT_EQ(d.new_priority, Priority::Running);
  EXPECT_EQ(d.rng_draws, 0u) << "single candidate, no transition draw";
}

TEST(BhwPolicy, RunningKeepsPriorityOnHomeRunAndDemotesOnDeflection) {
  const net::Torus t(8);
  const BhwPolicy p(8);
  util::ReversibleRng rng(1);
  // Turning point: column aligned, must go South.
  const HpMsg m = packet_to(t, t.id_of({3, 0}), Priority::Running);
  EXPECT_TRUE(t.at_home_run_turn(0, t.id_of({3, 0})));
  const RouteDecision ok = p.route(t, m, 0, all_free(), rng);
  EXPECT_EQ(ok.dir, net::Dir::South);
  EXPECT_EQ(ok.new_priority, Priority::Running);

  net::DirSet free;  // South taken (by another running packet): deflect
  free.add(net::Dir::West);
  const RouteDecision defl = p.route(t, m, 0, free, rng);
  EXPECT_TRUE(defl.deflected);
  EXPECT_EQ(defl.new_priority, Priority::Active);
}

TEST(BhwPolicy, SleepingUpgradeRateIsStatisticallyRight) {
  const std::int32_t n = 8;
  const net::Torus t(n);
  const BhwPolicy p(n);
  util::ReversibleRng rng(7);
  const HpMsg m = packet_to(t, t.id_of({0, 3}), Priority::Sleeping);
  int upgrades = 0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const RouteDecision d = p.route(t, m, 0, all_free(), rng);
    if (d.new_priority == Priority::Active) ++upgrades;
  }
  const double rate = static_cast<double>(upgrades) / kTrials;
  EXPECT_NEAR(rate, 1.0 / (24.0 * n), 0.001);
}

TEST(BhwPolicy, ActiveUpgradesOnlyWhenDeflected) {
  const std::int32_t n = 8;
  const net::Torus t(n);
  const BhwPolicy p(n);
  util::ReversibleRng rng(9);
  const HpMsg m = packet_to(t, t.id_of({0, 3}), Priority::Active);
  // Never deflected with all links free: never upgrades, zero draws beyond
  // the pick.
  for (int i = 0; i < 1000; ++i) {
    const RouteDecision d = p.route(t, m, 0, all_free(), rng);
    EXPECT_EQ(d.new_priority, Priority::Active);
  }
  // Always deflected: upgrades at rate 1/(16n).
  net::DirSet bad_only;
  bad_only.add(net::Dir::West);
  int upgrades = 0;
  constexpr int kTrials = 200000;
  for (int i = 0; i < kTrials; ++i) {
    const RouteDecision d = p.route(t, m, 0, bad_only, rng);
    EXPECT_TRUE(d.deflected);
    if (d.new_priority == Priority::Excited) ++upgrades;
  }
  EXPECT_NEAR(static_cast<double>(upgrades) / kTrials, 1.0 / (16.0 * n), 0.002);
}

TEST(BhwPolicy, RngDrawCountMatchesReportedDraws) {
  // The reverse-computation contract: the decision's rng_draws must equal
  // the actual stream advancement.
  const net::Torus t(8);
  const BhwPolicy p(8);
  util::ReversibleRng rng(3);
  for (std::uint32_t dst : {1u, 9u, 36u, 63u}) {
    for (Priority prio : {Priority::Sleeping, Priority::Active,
                          Priority::Excited, Priority::Running}) {
      const HpMsg m = packet_to(t, dst, prio);
      const auto before = rng.draw_count();
      const RouteDecision d = p.route(t, m, 0, all_free(), rng);
      EXPECT_EQ(rng.draw_count() - before, d.rng_draws);
    }
  }
}

TEST(BaselinePolicies, AllPickGoodLinksWhenFree) {
  const net::Torus t(8);
  baselines::GreedyPolicy greedy;
  baselines::DimOrderPolicy dim;
  baselines::OldestFirstPolicy oldest;
  util::ReversibleRng rng(5);
  const std::uint32_t dst = t.id_of({2, 3});
  const HpMsg m = packet_to(t, dst, Priority::Sleeping);
  const net::DirSet good = t.good_dirs(0, dst);
  for (const RoutingPolicy* p :
       {static_cast<const RoutingPolicy*>(&greedy),
        static_cast<const RoutingPolicy*>(&dim),
        static_cast<const RoutingPolicy*>(&oldest)}) {
    const RouteDecision d = p->route(t, m, 0, all_free(), rng);
    EXPECT_TRUE(good.contains(d.dir)) << p->name();
    EXPECT_FALSE(d.deflected) << p->name();
    EXPECT_EQ(d.new_priority, m.prio) << p->name() << " must not change priority";
  }
}

TEST(BaselinePolicies, DimOrderWantsExactlyHomeRun) {
  const net::Torus t(8);
  baselines::DimOrderPolicy dim;
  util::ReversibleRng rng(5);
  const std::uint32_t dst = t.id_of({2, 3});
  const HpMsg m = packet_to(t, dst, Priority::Sleeping);
  const RouteDecision d = dim.route(t, m, 0, all_free(), rng);
  EXPECT_EQ(d.dir, t.home_run_dir(0, dst));
  EXPECT_EQ(d.rng_draws, 0u);
}

TEST(BaselinePolicies, OldestFirstOffsetDecreasesWithAge) {
  baselines::OldestFirstPolicy p;
  HpMsg m;
  m.birth_step = 10;
  const double young = p.route_offset(m, 10);
  const double mid = p.route_offset(m, 20);
  const double old = p.route_offset(m, 200);
  EXPECT_GT(young, mid);
  EXPECT_GT(mid, old);
  EXPECT_GE(old, 1.0);
  EXPECT_LT(young, 5.0);
}

}  // namespace
}  // namespace hp::hotpotato
