#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/deflection_policies.hpp"
#include "core/simulation.hpp"
#include "des/sequential.hpp"

namespace hp::core {
namespace {

using hotpotato::HpReport;

SimulationOptions base_opts(std::int32_t n, double inject, std::uint32_t steps) {
  SimulationOptions o;
  o.model.n = n;
  o.model.injector_fraction = inject;
  o.model.steps = steps;
  o.engine.seed = 1;
  return o;
}

TEST(HotPotatoModel, ConservationOfPackets) {
  auto o = base_opts(8, 0.5, 120);
  const auto r = run_hotpotato(o);
  const std::uint64_t initial = 4ull * o.model.num_lps();
  // Every packet is initial or injected; it is delivered or still in flight
  // (an ARRIVE/ROUTE event beyond the horizon). In-flight = total - delivered.
  EXPECT_LE(r.report.delivered, initial + r.report.injected);
  const std::uint64_t in_flight = initial + r.report.injected - r.report.delivered;
  // The network can hold at most 4 packets per router.
  EXPECT_LE(in_flight, 4ull * o.model.num_lps());
}

TEST(HotPotatoModel, DeliveryTimeAtLeastDistance) {
  auto o = base_opts(8, 0.5, 120);
  const auto r = run_hotpotato(o);
  EXPECT_GT(r.report.delivered, 0u);
  EXPECT_GE(r.report.stretch(), 1.0)
      << "a packet cannot beat its shortest path";
  EXPECT_GE(r.report.avg_delivery_steps(), r.report.avg_distance());
}

TEST(HotPotatoModel, StaticModeDrainsAllPackets) {
  // injector_fraction = 0 => the report's one-shot/static configuration:
  // only the initial 4 packets per router; long horizon drains them all.
  auto o = base_opts(4, 0.0, 400);
  const auto r = run_hotpotato(o);
  EXPECT_EQ(r.report.injected, 0u);
  EXPECT_EQ(r.report.delivered, 4ull * o.model.num_lps());
}

TEST(HotPotatoModel, StaticModeDrainsUnderEveryPolicy) {
  baselines::GreedyPolicy greedy;
  baselines::DimOrderPolicy dim;
  baselines::OldestFirstPolicy oldest;
  for (const hotpotato::RoutingPolicy* p :
       {static_cast<const hotpotato::RoutingPolicy*>(&greedy),
        static_cast<const hotpotato::RoutingPolicy*>(&dim),
        static_cast<const hotpotato::RoutingPolicy*>(&oldest)}) {
    auto o = base_opts(4, 0.0, 400);
    o.model.policy = p;
    const auto r = run_hotpotato(o);
    EXPECT_EQ(r.report.delivered, 4ull * o.model.num_lps()) << p->name();
  }
}

TEST(HotPotatoModel, ProofModeDelaysSleepingAbsorption) {
  auto fast = base_opts(6, 0.0, 300);
  fast.model.absorb_sleeping = true;
  const auto r_fast = run_hotpotato(fast);
  auto proof = base_opts(6, 0.0, 300);
  proof.model.absorb_sleeping = false;
  const auto r_proof = run_hotpotato(proof);
  // In proof-verification mode sleeping packets pass through their
  // destination, so delivery takes strictly more hops on aggregate.
  EXPECT_GE(r_proof.report.avg_delivery_steps(),
            r_fast.report.avg_delivery_steps());
  EXPECT_LE(r_proof.report.delivered, r_fast.report.delivered);
}

TEST(HotPotatoModel, PriorityCensusIsConsistent) {
  auto o = base_opts(12, 1.0, 200);
  const auto r = run_hotpotato(o).report;
  // Every routed event is attributed to exactly one priority.
  EXPECT_EQ(r.routed_by_prio[0] + r.routed_by_prio[1] + r.routed_by_prio[2] +
                r.routed_by_prio[3],
            r.routed);
  // At these scales the sleeping->active upgrade fires; higher transitions
  // are rare because higher-priority packets route first and rarely deflect.
  EXPECT_GT(r.upgrades_to_active, 0u);
  EXPECT_GT(r.routed_by_prio[1], 0u) << "some packets route as Active";
  // Conservation within the state machine: a packet can only route as
  // Excited after an upgrade, and as Running after a promotion.
  EXPECT_LE(r.promotions_to_running, r.upgrades_to_excited + 1);
}

TEST(HotPotatoModel, LinkCapacityNeverExceeded) {
  auto o = base_opts(6, 1.0, 100);
  const auto r = run_hotpotato(o);
  // 4 out-links per router per step is a hard physical bound.
  EXPECT_LE(r.report.link_utilization(o.model.num_lps(), o.model.steps), 1.0);
  EXPECT_GT(r.report.link_utilization(o.model.num_lps(), o.model.steps), 0.1);
}

TEST(HotPotatoModel, InjectionWaitGrowsWithLoad) {
  auto lo = base_opts(8, 0.25, 150);
  auto hi = base_opts(8, 1.0, 150);
  const auto r_lo = run_hotpotato(lo);
  const auto r_hi = run_hotpotato(hi);
  // The report's Fig. 4 shape: wait-to-inject strongly load-dependent.
  EXPECT_LE(r_lo.report.avg_inject_wait(), r_hi.report.avg_inject_wait());
  EXPECT_GT(r_hi.report.injected, r_lo.report.injected);
}

TEST(HotPotatoModel, InjectorFractionSelectsRoughlyThatShare) {
  hotpotato::HotPotatoConfig mc;
  mc.n = 32;
  mc.injector_fraction = 0.25;
  hotpotato::BhwPolicy pol(mc.n);
  mc.policy = &pol;
  hotpotato::HotPotatoModel model(mc);
  std::uint32_t count = 0;
  for (std::uint32_t lp = 0; lp < mc.num_lps(); ++lp) {
    count += model.lp_is_injector(lp) ? 1 : 0;
  }
  const double frac = static_cast<double>(count) / mc.num_lps();
  EXPECT_NEAR(frac, 0.25, 0.05);
}

TEST(HotPotatoModel, ZeroAndFullInjectorFractions) {
  hotpotato::HotPotatoConfig mc;
  mc.n = 8;
  hotpotato::BhwPolicy pol(mc.n);
  mc.policy = &pol;
  mc.injector_fraction = 0.0;
  hotpotato::HotPotatoModel none(mc);
  mc.injector_fraction = 1.0;
  hotpotato::HotPotatoModel all(mc);
  for (std::uint32_t lp = 0; lp < mc.num_lps(); ++lp) {
    EXPECT_FALSE(none.lp_is_injector(lp));
    EXPECT_TRUE(all.lp_is_injector(lp));
  }
}

// Attachment 3 of the report: sequential and parallel executions produce
// identical statistics — here checked bit-for-bit over every counter and
// double-sum, across PE/KP configurations and both rollback mechanisms.
class Attachment3Determinism
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(Attachment3Determinism, ParallelEqualsSequential) {
  const auto [pes, kps, state_saving] = GetParam();
  auto o = base_opts(8, 0.75, 80);
  o.kernel = Kernel::Sequential;
  const auto seq = run_hotpotato(o);

  auto t = o;
  t.kernel = Kernel::TimeWarp;
  t.engine.num_pes = static_cast<std::uint32_t>(pes);
  t.engine.num_kps = static_cast<std::uint32_t>(kps);
  t.engine.gvt_interval_events = 256;
  t.engine.state_saving = state_saving;
  const auto tw = run_hotpotato(t);

  EXPECT_EQ(seq.report, tw.report);
  EXPECT_EQ(seq.engine.committed_events(), tw.engine.committed_events());
}

INSTANTIATE_TEST_SUITE_P(
    PeKpSweep, Attachment3Determinism,
    ::testing::Values(std::make_tuple(1, 64, false),
                      std::make_tuple(2, 16, false),
                      std::make_tuple(2, 64, false),
                      std::make_tuple(4, 64, false),
                      std::make_tuple(4, 16, true),
                      std::make_tuple(3, 9, false)),
    [](const auto& info) {
      return "pe" + std::to_string(std::get<0>(info.param)) + "_kp" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_statesave" : "_revcomp");
    });

TEST(HotPotatoModel, OptimismWindowPreservesDeterminism) {
  auto o = base_opts(8, 0.5, 60);
  o.kernel = Kernel::Sequential;
  const auto seq = run_hotpotato(o);
  for (double window : {10.0, 30.0, 100.0}) {
    auto t = o;
    t.kernel = Kernel::TimeWarp;
    t.engine.num_pes = 4;
    t.engine.num_kps = 16;
    t.engine.gvt_interval_events = 256;
    t.engine.optimism_window = window;
    const auto tw = run_hotpotato(t);
    EXPECT_EQ(seq.report, tw.report) << "window=" << window;
  }
}

TEST(HotPotatoModel, FullInitIsThePhysicalMaximum) {
  // One packet per directed link is all a bufferless network can hold; the
  // capacity assertion inside the router enforces it, and a full-init
  // static run must hit exactly that load at step 1.
  auto o = base_opts(4, 0.0, 10);
  const auto r = run_hotpotato(o);
  // Step-1 arrivals: every in-link of every router occupied.
  EXPECT_GE(r.report.arrivals, 4ull * o.model.num_lps());
}

TEST(HotPotatoModel, PerPeStatsSumToTotals) {
  auto o = base_opts(8, 0.5, 60);
  o.kernel = Kernel::TimeWarp;
  o.engine.num_pes = 4;
  o.engine.num_kps = 16;
  o.engine.gvt_interval_events = 256;
  const auto r = run_hotpotato(o);
  ASSERT_EQ(r.engine.per_pe().size(), 4u);
  std::uint64_t processed = 0, committed = 0, rolled = 0;
  for (const auto& pe : r.engine.per_pe()) {
    processed += pe.processed_events();
    committed += pe.committed_events();
    rolled += pe.rolled_back_events();
  }
  EXPECT_EQ(processed, r.engine.processed_events());
  EXPECT_EQ(committed, r.engine.committed_events());
  EXPECT_EQ(rolled, r.engine.rolled_back_events());
  EXPECT_GT(r.engine.pool_envelopes(), 0u);
}

TEST(HotPotatoModel, VisitorCoversEveryLp) {
  hotpotato::HotPotatoConfig mc;
  mc.n = 4;
  mc.steps = 20;
  hotpotato::BhwPolicy pol(mc.n);
  mc.policy = &pol;
  hotpotato::HotPotatoModel model(mc);
  des::EngineConfig ec;
  ec.num_lps = mc.num_lps();
  ec.end_time = mc.end_time();
  des::SequentialEngine eng(model, ec);
  (void)eng.run();
  std::uint32_t visits = 0;
  std::uint64_t arrivals = 0;
  eng.for_each_state([&](std::uint32_t lp, const des::LpState& s) {
    EXPECT_LT(lp, mc.num_lps());
    arrivals += static_cast<const hotpotato::RouterState&>(s).arrivals;
    ++visits;
  });
  EXPECT_EQ(visits, mc.num_lps());
  EXPECT_GT(arrivals, 0u);
}

TEST(HotPotatoModel, LazyCancellationPreservesDeterminism) {
  auto o = base_opts(8, 0.75, 80);
  o.kernel = Kernel::Sequential;
  const auto seq = run_hotpotato(o);
  for (const std::uint32_t pes : {2u, 4u}) {
    auto t = o;
    t.kernel = Kernel::TimeWarp;
    t.engine.num_pes = pes;
    t.engine.num_kps = 16;
    t.engine.gvt_interval_events = 128;
    t.engine.cancellation = des::EngineConfig::Cancellation::Lazy;
    const auto tw = run_hotpotato(t);
    EXPECT_EQ(seq.report, tw.report) << pes << " PEs";
    EXPECT_EQ(seq.engine.committed_events(), tw.engine.committed_events());
  }
}

TEST(HotPotatoModel, LazyCancellationActuallyReusesChildren) {
  auto t = base_opts(8, 0.75, 80);
  t.kernel = Kernel::TimeWarp;
  t.engine.num_pes = 4;
  t.engine.num_kps = 16;
  t.engine.gvt_interval_events = 64;
  t.engine.cancellation = des::EngineConfig::Cancellation::Lazy;
  const auto tw = run_hotpotato(t);
  EXPECT_GT(tw.engine.rolled_back_events(), 0u) << "config must roll back";
  EXPECT_GT(tw.engine.lazy_reused(), 0u)
      << "lazy mode should find identical re-sends to adopt";
}

TEST(HotPotatoModel, QueueBackendsProduceIdenticalResults) {
  auto o = base_opts(8, 0.5, 60);
  o.kernel = Kernel::TimeWarp;
  o.engine.num_pes = 2;
  o.engine.num_kps = 16;
  o.engine.gvt_interval_events = 256;
  o.engine.queue_kind = des::EngineConfig::QueueKind::Splay;
  const auto splay = run_hotpotato(o);
  o.engine.queue_kind = des::EngineConfig::QueueKind::Multiset;
  const auto mset = run_hotpotato(o);
  EXPECT_EQ(splay.report, mset.report);
  EXPECT_EQ(splay.engine.committed_events(), mset.engine.committed_events());
}

TEST(HotPotatoModel, LinearMappingAlsoDeterministic) {
  auto o = base_opts(8, 0.5, 60);
  o.kernel = Kernel::Sequential;
  const auto seq = run_hotpotato(o);
  auto t = o;
  t.kernel = Kernel::TimeWarp;
  t.engine.num_pes = 4;
  t.engine.num_kps = 16;
  t.block_mapping = false;
  const auto tw = run_hotpotato(t);
  EXPECT_EQ(seq.report, tw.report);
}

TEST(HotPotatoModel, DifferentSeedsDifferentTraffic) {
  auto a = base_opts(8, 0.5, 60);
  auto b = base_opts(8, 0.5, 60);
  b.engine.seed = 2;
  const auto ra = run_hotpotato(a);
  const auto rb = run_hotpotato(b);
  EXPECT_NE(ra.report, rb.report);
}

TEST(HotPotatoModel, BaselinePoliciesRunUnderTimeWarp) {
  // Baselines must satisfy the reverse-computation contract too.
  baselines::GreedyPolicy greedy;
  baselines::DimOrderPolicy dim;
  baselines::OldestFirstPolicy oldest;
  for (const hotpotato::RoutingPolicy* p :
       {static_cast<const hotpotato::RoutingPolicy*>(&greedy),
        static_cast<const hotpotato::RoutingPolicy*>(&dim),
        static_cast<const hotpotato::RoutingPolicy*>(&oldest)}) {
    auto o = base_opts(6, 0.5, 60);
    o.model.policy = p;
    o.kernel = Kernel::Sequential;
    const auto seq = run_hotpotato(o);
    auto t = o;
    t.kernel = Kernel::TimeWarp;
    t.engine.num_pes = 4;
    t.engine.num_kps = 36;
    t.engine.gvt_interval_events = 128;
    const auto tw = run_hotpotato(t);
    EXPECT_EQ(seq.report, tw.report) << p->name();
  }
}

TEST(HotPotatoModel, DeliveryTimeGrowsWithN) {
  // Fig. 3 shape probe at test scale: larger torus, longer delivery.
  auto small = base_opts(4, 0.5, 100);
  auto big = base_opts(12, 0.5, 100);
  const auto rs = run_hotpotato(small);
  const auto rb = run_hotpotato(big);
  EXPECT_LT(rs.report.avg_delivery_steps(), rb.report.avg_delivery_steps());
}

}  // namespace
}  // namespace hp::core
