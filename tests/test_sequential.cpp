#include <gtest/gtest.h>

#include "des/sequential.hpp"
#include "tests/toy_models.hpp"

namespace hp::des {
namespace {

using testing::PholdModel;
using testing::RingModel;
using testing::ToyState;

TEST(SequentialEngine, RingProcessesExactEventCount) {
  // One token circulating a 4-LP ring with delay 1.0 until end_time 100:
  // events at t=1..100 => 100 events, 25 per LP.
  RingModel model(4, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 4;
  cfg.end_time = 100.0;
  SequentialEngine eng(model, cfg);
  const RunStats stats = eng.run();
  EXPECT_EQ(stats.processed_events(), 100u);
  EXPECT_EQ(stats.committed_events(), 100u);
  for (std::uint32_t lp = 0; lp < 4; ++lp) {
    EXPECT_EQ(static_cast<ToyState&>(eng.state(lp)).count, 25u);
  }
}

TEST(SequentialEngine, EndTimeIsInclusive) {
  RingModel model(1, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 1;
  cfg.end_time = 5.0;
  SequentialEngine eng(model, cfg);
  const RunStats stats = eng.run();
  // Events at t = 1,2,3,4,5.
  EXPECT_EQ(stats.processed_events(), 5u);
}

TEST(SequentialEngine, NoEventsTerminatesImmediately) {
  // RingModel only seeds LP 0; a model over LPs that never seeds would hang
  // if termination were wrong. Simulate via end_time 0 (no event <= 0).
  RingModel model(2, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 2;
  cfg.end_time = 0.5;
  SequentialEngine eng(model, cfg);
  const RunStats stats = eng.run();
  EXPECT_EQ(stats.processed_events(), 0u);
  EXPECT_DOUBLE_EQ(stats.final_gvt(), 1.0);
}

TEST(SequentialEngine, PholdConservesEvents) {
  // Each event sends exactly one successor, so the count processed is the
  // number of events with ts <= end_time; each LP's count sums to total.
  PholdModel model(16, 1.0, 0.1);
  EngineConfig cfg;
  cfg.num_lps = 16;
  cfg.end_time = 50.0;
  cfg.seed = 3;
  SequentialEngine eng(model, cfg);
  const RunStats stats = eng.run();
  EXPECT_GT(stats.processed_events(), 0u);
  std::uint64_t total = 0;
  for (std::uint32_t lp = 0; lp < 16; ++lp) {
    total += static_cast<ToyState&>(eng.state(lp)).count;
  }
  EXPECT_EQ(total, stats.processed_events());
}

TEST(SequentialEngine, SameSeedSameResults) {
  auto run_hash = [](std::uint64_t seed) {
    PholdModel model(8, 1.0, 0.1);
    EngineConfig cfg;
    cfg.num_lps = 8;
    cfg.end_time = 30.0;
    cfg.seed = seed;
    SequentialEngine eng(model, cfg);
    (void)eng.run();
    std::uint64_t h = 0;
    for (std::uint32_t lp = 0; lp < 8; ++lp) {
      h ^= static_cast<ToyState&>(eng.state(lp)).ordered_hash;
    }
    return h;
  };
  EXPECT_EQ(run_hash(1), run_hash(1));
  EXPECT_NE(run_hash(1), run_hash(2));
}

TEST(SequentialEngine, RngStreamsArePerLp) {
  PholdModel model(4, 1.0, 0.1);
  EngineConfig cfg;
  cfg.num_lps = 4;
  cfg.end_time = 20.0;
  SequentialEngine eng(model, cfg);
  (void)eng.run();
  // Each LP drew twice per event it processed (checked by the model's own
  // bookkeeping against per-event draws).
  for (std::uint32_t lp = 0; lp < 4; ++lp) {
    auto& s = static_cast<ToyState&>(eng.state(lp));
    EXPECT_EQ(s.rng_draws_seen, 2 * s.count);
  }
}

}  // namespace
}  // namespace hp::des
