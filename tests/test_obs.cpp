// Observability layer tests: the JsonWriter primitive, the table-driven
// metrics reduction, the bounded GVT-series ring, Chrome-trace export,
// rollback forensics (causality attribution identities, flow events, the
// live monitor stream), the exhaustive kernel/phase name coverage, and —
// most importantly — the invariants the instrumented kernels must uphold:
// accounting identities, per-PE totals reducing to the aggregate, and
// committed results staying bit-identical with observability fully on,
// fully off, tracing, forensics off, and the monitor running.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "des/phold.hpp"
#include "obs/forensics.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "util/json_writer.hpp"

namespace hp {
namespace {

// ---------------------------------------------------------------------------
// Compile-time exhaustiveness: if an enumerator is ever added without its
// name case, the constant evaluation below reaches __builtin_unreachable()
// and the translation unit fails to compile.

constexpr bool all_engine_kinds_named() {
  for (const des::EngineKind k : des::kAllEngineKinds) {
    if (des::kind_name(k) == nullptr) return false;
  }
  return true;
}
static_assert(all_engine_kinds_named());

constexpr bool all_phases_named() {
  for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
    if (obs::phase_name(static_cast<obs::Phase>(p)) == nullptr) return false;
  }
  return true;
}
static_assert(all_phases_named());

TEST(EngineKind, NamesAreDistinct) {
  EXPECT_STREQ(des::kind_name(des::EngineKind::Sequential), "sequential");
  EXPECT_STREQ(des::kind_name(des::EngineKind::TimeWarp), "timewarp");
  EXPECT_STREQ(des::kind_name(des::EngineKind::Conservative), "conservative");
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, NestedContainersAndEscaping) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("str", "a\"b\\c\nd");
  w.kv("int", std::uint64_t{42});
  w.kv("neg", std::int64_t{-7});
  w.kv("flag", true);
  w.key("arr").begin_array();
  w.value(1.5);
  w.value("x");
  w.begin_object().kv("k", std::uint32_t{3}).end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(),
            "{\"str\":\"a\\\"b\\\\c\\nd\",\"int\":42,\"neg\":-7,"
            "\"flag\":true,\"arr\":[1.5,\"x\",{\"k\":3}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, RoundTripsDoublesExactly) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  w.value(0.1);
  w.end_array();
  EXPECT_EQ(std::stod(os.str().substr(1)), 0.1);
}

// ---------------------------------------------------------------------------
// Metrics reduction

TEST(Metrics, ReduceSumsAndMaxesPerDeclaredPolicy) {
  obs::PeMetrics a, b;
  a.at(obs::Counter::Processed) = 10;
  b.at(obs::Counter::Processed) = 5;
  a.at(obs::Counter::MaxInboxBatch) = 3;
  b.at(obs::Counter::MaxInboxBatch) = 9;
  a.ns(obs::Phase::Forward) = 100;
  b.ns(obs::Phase::Forward) = 50;
  const obs::PeMetrics total = obs::reduce({a, b});
  EXPECT_EQ(total.processed_events(), 15u);
  EXPECT_EQ(total.max_inbox_batch(), 9u);  // Reduce::Max, not sum
  EXPECT_EQ(total.ns(obs::Phase::Forward), 150u);
}

TEST(Metrics, CounterTableCoversEveryEnumerator) {
  for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
    EXPECT_NE(obs::counter_name(static_cast<obs::Counter>(c)), nullptr);
    EXPECT_STRNE(obs::counter_name(static_cast<obs::Counter>(c)), "");
  }
}

// ---------------------------------------------------------------------------
// GVT series ring

TEST(GvtSeriesRing, RetainsMostRecentWindowOldestFirst) {
  obs::GvtSeriesRing ring(4);
  for (std::uint64_t r = 0; r < 10; ++r) {
    ring.push(obs::GvtRoundSample{r, r * 100, static_cast<double>(r),
                                  r, r, 0, 0});
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].round, 6 + i);  // rounds 6..9, oldest first
  }
}

TEST(GvtSeriesRing, ZeroCapacityOnlyCounts) {
  obs::GvtSeriesRing ring(0);
  ring.push(obs::GvtRoundSample{});
  ring.push(obs::GvtRoundSample{});
  EXPECT_EQ(ring.total_pushed(), 2u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

// ---------------------------------------------------------------------------
// PhaseProbe

TEST(PhaseProbe, DisabledProbeChargesNothing) {
  obs::PeMetrics m;
  obs::PhaseProbe probe;
  probe.attach(&m, nullptr, /*timers_on=*/false);
  EXPECT_FALSE(probe.enabled());
  probe.begin(obs::Phase::Forward);
  probe.switch_to(obs::Phase::Rollback);
  probe.end();
  EXPECT_EQ(m.total_phase_ns(), 0u);
}

TEST(PhaseProbe, ScopeRestoresInterruptedPhase) {
  obs::PeMetrics m;
  obs::PhaseProbe probe;
  probe.attach(&m, nullptr, /*timers_on=*/true);
  probe.begin(obs::Phase::Forward);
  {
    obs::PhaseScope scope(probe, obs::Phase::Rollback);
    EXPECT_EQ(probe.current(), obs::Phase::Rollback);
  }
  EXPECT_EQ(probe.current(), obs::Phase::Forward);
  probe.end();
}

// ---------------------------------------------------------------------------
// Engine-matrix invariants. A rollback-heavy PHOLD load driven through the
// common interface on every kernel.

des::EngineConfig matrix_config(std::uint32_t pes) {
  des::EngineConfig ec;
  ec.num_lps = 36;
  ec.end_time = 60.0;
  ec.seed = 11;
  ec.num_pes = pes;
  ec.gvt_interval_events = 128;
  return ec;
}

des::PholdConfig matrix_phold() {
  des::PholdConfig pc;
  pc.num_lps = 36;
  pc.remote_fraction = 0.6;
  pc.lookahead = 0.05;
  return pc;
}

struct KernelRun {
  std::uint64_t digest = 0;
  des::RunStats stats;
};

KernelRun run_kernel(des::EngineKind kind, std::uint32_t pes,
                     const obs::ObsConfig& obs_cfg) {
  const des::PholdConfig pc = matrix_phold();
  des::EngineConfig ec = matrix_config(pes);
  ec.obs = obs_cfg;
  des::PholdModel model(pc);
  auto eng = des::make_engine(kind, model, ec, pc.lookahead);
  KernelRun out;
  out.stats = eng->run();
  out.digest = des::PholdModel::digest(*eng);
  return out;
}

TEST(MetricsInvariants, ProcessedEqualsCommittedPlusRolledBack) {
  for (const des::EngineKind kind : des::kAllEngineKinds) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 4;
    const KernelRun r = run_kernel(kind, pes, obs::ObsConfig{});
    EXPECT_EQ(r.stats.processed_events(),
              r.stats.committed_events() + r.stats.rolled_back_events())
        << des::kind_name(kind);
    EXPECT_GT(r.stats.committed_events(), 0u) << des::kind_name(kind);
  }
}

TEST(MetricsInvariants, PerPeReducesToAggregate) {
  for (const des::EngineKind kind :
       {des::EngineKind::TimeWarp, des::EngineKind::Conservative}) {
    const KernelRun r = run_kernel(kind, 4, obs::ObsConfig{});
    ASSERT_EQ(r.stats.per_pe().size(), 4u) << des::kind_name(kind);
    EXPECT_EQ(obs::reduce(r.stats.per_pe()), r.stats.metrics.total)
        << des::kind_name(kind);
  }
}

TEST(MetricsInvariants, PhaseTimersPopulatedWhenOnZeroWhenOff) {
  obs::ObsConfig on;
  on.phase_timers = true;
  obs::ObsConfig off;
  off.phase_timers = false;
  for (const des::EngineKind kind : des::kAllEngineKinds) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 2;
    const KernelRun with = run_kernel(kind, pes, on);
    EXPECT_GT(with.stats.metrics.total.total_phase_ns(), 0u)
        << des::kind_name(kind);
    const KernelRun without = run_kernel(kind, pes, off);
    EXPECT_EQ(without.stats.metrics.total.total_phase_ns(), 0u)
        << des::kind_name(kind);
  }
}

TEST(MetricsInvariants, GvtSeriesBoundedAndMonotone) {
  obs::ObsConfig cfg;
  cfg.gvt_series_capacity = 8;  // deliberately smaller than the round count
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  const auto& series = r.stats.metrics.gvt_series;
  EXPECT_LE(series.size(), 8u);
  EXPECT_GE(r.stats.metrics.gvt_rounds, series.size());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].round, series[i - 1].round + 1);
    EXPECT_GE(series[i].gvt, series[i - 1].gvt);  // GVT never retreats
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
  }
}

TEST(MetricsInvariants, ResultsBitIdenticalAcrossObsSettings) {
  obs::ObsConfig full_on;
  full_on.phase_timers = true;
  full_on.trace = true;
  full_on.trace_path = ::testing::TempDir() + "obs_equiv_trace.json";
  obs::ObsConfig all_off;
  all_off.phase_timers = false;
  all_off.gvt_series_capacity = 0;
  all_off.forensics = false;
  obs::ObsConfig forensics_off;
  forensics_off.forensics = false;
  obs::ObsConfig monitor_on;
  monitor_on.monitor = true;
  monitor_on.monitor_interval = 2;
  monitor_on.monitor_path = ::testing::TempDir() + "obs_equiv_monitor.jsonl";
  obs::ObsConfig telemetry_on;
  telemetry_on.telemetry = true;

  const KernelRun seq = run_kernel(des::EngineKind::Sequential, 1, all_off);
  for (const des::EngineKind kind : des::kAllEngineKinds) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 4;
    const KernelRun on = run_kernel(kind, pes, full_on);
    const KernelRun off = run_kernel(kind, pes, all_off);
    const KernelRun no_forensics = run_kernel(kind, pes, forensics_off);
    const KernelRun monitored = run_kernel(kind, pes, monitor_on);
    const KernelRun telemetered = run_kernel(kind, pes, telemetry_on);
    EXPECT_EQ(on.digest, seq.digest) << des::kind_name(kind) << " obs on";
    EXPECT_EQ(off.digest, seq.digest) << des::kind_name(kind) << " obs off";
    EXPECT_EQ(no_forensics.digest, seq.digest)
        << des::kind_name(kind) << " forensics off";
    EXPECT_EQ(monitored.digest, seq.digest)
        << des::kind_name(kind) << " monitor on";
    EXPECT_EQ(telemetered.digest, seq.digest)
        << des::kind_name(kind) << " telemetry on";
    EXPECT_EQ(on.stats.committed_events(), seq.stats.committed_events());
    EXPECT_EQ(off.stats.committed_events(), seq.stats.committed_events());
    EXPECT_EQ(no_forensics.stats.committed_events(),
              seq.stats.committed_events());
    EXPECT_EQ(monitored.stats.committed_events(),
              seq.stats.committed_events());
    EXPECT_EQ(telemetered.stats.committed_events(),
              seq.stats.committed_events());
    // The telemetry run really collected: every kernel commits, so the
    // commit-latency histogram must be populated and its report flagged.
    EXPECT_TRUE(telemetered.stats.metrics.telemetry) << des::kind_name(kind);
    EXPECT_GT(telemetered.stats.metrics
                  .latency_hist(obs::LatencyMetric::CommitLatency)
                  .count(),
              0u)
        << des::kind_name(kind);
    // ...while the other runs carry no latency block at all.
    EXPECT_FALSE(off.stats.metrics.telemetry) << des::kind_name(kind);
    // Forensics off leaves the heatmaps empty — nothing was allocated.
    EXPECT_TRUE(no_forensics.stats.metrics.forensics.empty())
        << des::kind_name(kind);
  }
  std::remove(full_on.trace_path.c_str());
  std::remove(monitor_on.monitor_path.c_str());
}

// ---------------------------------------------------------------------------
// Rollback forensics: causality attribution identities.

TEST(RollbackForensics, AttributionAccountsForEveryRolledBackEvent) {
  const KernelRun r =
      run_kernel(des::EngineKind::TimeWarp, 4, obs::ObsConfig{});
  const auto& total = r.stats.metrics.total;
  // Every undone event is attributed to exactly one episode kind.
  EXPECT_EQ(total.primary_rollback_events() + total.secondary_rollback_events(),
            total.rolled_back_events());
  const auto& f = r.stats.metrics.forensics;
  // The per-KP victim heatmap sums back to the total, and the cascade
  // histogram holds exactly one entry per episode.
  EXPECT_EQ(f.victim_events_total(), total.rolled_back_events());
  EXPECT_EQ(f.episodes_total(),
            total.primary_rollbacks() + total.secondary_rollbacks());
  std::uint64_t victim_episodes = 0;
  for (const std::uint64_t v : f.kp_victim_episodes()) victim_episodes += v;
  EXPECT_EQ(victim_episodes,
            total.primary_rollbacks() + total.secondary_rollbacks());
  // Offender events are the same events from the other side of the arrow.
  std::uint64_t offender_events = 0;
  for (const std::uint64_t v : f.kp_offender_events()) offender_events += v;
  EXPECT_EQ(offender_events, total.rolled_back_events());
  if (total.rolled_back_events() > 0) {
    EXPECT_GT(f.top_offender().second, 0u);
    EXPECT_GE(total.max_rollback_depth(), 1u);
    EXPECT_GE(total.max_cascade_depth(), 1u);
  }
}

TEST(RollbackForensics, RecordClassifiesAndMergeAdoptsShape) {
  obs::RollbackForensics a;
  a.reset(/*num_kps=*/4, /*enabled=*/true);
  a.record({obs::RollbackKind::Primary, /*offender_kp=*/2, /*offender_pe=*/1,
            /*cascade=*/1, 0},
           /*victim_kp=*/0, /*events_undone=*/3);
  a.record({obs::RollbackKind::Secondary, /*offender_kp=*/0, /*offender_pe=*/0,
            /*cascade=*/2, 0},
           /*victim_kp=*/2, /*events_undone=*/5);
  // Chain length 99 clamps into the overflow bin.
  a.record({obs::RollbackKind::Secondary, 1, 0, /*cascade=*/99, 0}, 1, 1);
  EXPECT_EQ(a.episodes_total(), 3u);
  EXPECT_EQ(a.victim_events_total(), 9u);
  EXPECT_EQ(a.cascade_hist()[0], 1u);  // chain 1
  EXPECT_EQ(a.cascade_hist()[1], 1u);  // chain 2
  EXPECT_EQ(a.cascade_hist()[obs::RollbackForensics::kCascadeBins - 1], 1u);
  // Offender events: KP 0 caused 5, KP 1 caused 1, KP 2 caused 3.
  EXPECT_EQ(a.top_offender().first, 0u);
  EXPECT_EQ(a.top_offender().second, 5u);

  obs::RollbackForensics b;  // default: disabled, shapeless
  b.merge(a);
  EXPECT_EQ(b.victim_events_total(), a.victim_events_total());
  EXPECT_EQ(b.kp_victim_events().size(), 4u);
  b.merge(a);  // same shape: adds
  EXPECT_EQ(b.victim_events_total(), 2 * a.victim_events_total());

  obs::RollbackForensics disabled;
  disabled.reset(4, /*enabled=*/false);
  disabled.record({obs::RollbackKind::Primary, 0, 0, 1, 0}, 0, 7);
  EXPECT_TRUE(disabled.empty());  // no-op when off
}

// ---------------------------------------------------------------------------
// Live run monitor

TEST(Monitor, EmitsParseableJsonLinesAtConfiguredInterval) {
  obs::ObsConfig cfg;
  cfg.monitor = true;
  cfg.monitor_interval = 2;
  cfg.monitor_path = ::testing::TempDir() + "obs_monitor_test.jsonl";
  std::remove(cfg.monitor_path.c_str());  // writer appends; start fresh
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);

  std::ifstream f(cfg.monitor_path);
  ASSERT_TRUE(f.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(f, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  EXPECT_EQ(lines.size(), r.stats.metrics.monitor_lines);
  // Every other round at most (plus nothing on rounds without an emission).
  EXPECT_LE(lines.size(), r.stats.metrics.gvt_rounds / 2 + 1);
  EXPECT_GT(lines.size(), 0u);
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
    for (const char* key :
         {"\"round\":", "\"gvt\":", "\"processed\":", "\"rolled_back\":",
          "\"event_rate\":", "\"rollback_rate\":", "\"inbox_depth\":",
          "\"top_offender_kp\":"}) {
      EXPECT_NE(line.find(key), std::string::npos) << key << " in " << line;
    }
  }
  std::remove(cfg.monitor_path.c_str());
}

TEST(Monitor, OtherKernelsAcceptAndIgnoreTheFlag) {
  obs::ObsConfig cfg;
  cfg.monitor = true;
  cfg.monitor_path = ::testing::TempDir() + "obs_monitor_ignored.jsonl";
  std::remove(cfg.monitor_path.c_str());
  for (const des::EngineKind kind :
       {des::EngineKind::Sequential, des::EngineKind::Conservative}) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 2;
    const KernelRun r = run_kernel(kind, pes, cfg);
    EXPECT_EQ(r.stats.metrics.monitor_lines, 0u) << des::kind_name(kind);
    EXPECT_GT(r.stats.committed_events(), 0u) << des::kind_name(kind);
  }
  std::remove(cfg.monitor_path.c_str());
}

// Interval boundary: an interval beyond the run's round count means the
// heartbeat never fires — no lines, no file side effects, run unaffected.
TEST(Monitor, IntervalBeyondRunEmitsNothing) {
  obs::ObsConfig cfg;
  cfg.monitor = true;
  cfg.monitor_interval = 1000000;
  cfg.monitor_path = ::testing::TempDir() + "obs_monitor_never.jsonl";
  std::remove(cfg.monitor_path.c_str());
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  EXPECT_LT(r.stats.metrics.gvt_rounds, 1000000u);  // premise of the test
  EXPECT_EQ(r.stats.metrics.monitor_lines, 0u);
  EXPECT_GT(r.stats.committed_events(), 0u);
  std::ifstream f(cfg.monitor_path);
  if (f.good()) {  // writer may create the (empty) file on open
    std::string rest;
    std::getline(f, rest);
    EXPECT_TRUE(rest.empty());
  }
  std::remove(cfg.monitor_path.c_str());
}

// Interval boundary: 0 is clamped to 1 (every round) rather than dividing
// by zero or never emitting.
TEST(Monitor, ZeroIntervalMeansEveryRound) {
  obs::ObsConfig cfg;
  cfg.monitor = true;
  cfg.monitor_interval = 0;
  cfg.monitor_path = ::testing::TempDir() + "obs_monitor_zero.jsonl";
  std::remove(cfg.monitor_path.c_str());
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  EXPECT_EQ(r.stats.metrics.monitor_lines, r.stats.metrics.gvt_rounds);
  EXPECT_GT(r.stats.metrics.monitor_lines, 0u);
  std::remove(cfg.monitor_path.c_str());
}

// MonitorWriter opens in append mode on purpose: one stream accumulates a
// whole sweep, and every line in the combined file is still a whole,
// parseable record (each is a single write(2)).
TEST(Monitor, AppendModeAccumulatesWholeLinesAcrossRuns) {
  obs::ObsConfig cfg;
  cfg.monitor = true;
  cfg.monitor_interval = 2;
  cfg.monitor_path = ::testing::TempDir() + "obs_monitor_append.jsonl";
  std::remove(cfg.monitor_path.c_str());
  const KernelRun first = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  const KernelRun second = run_kernel(des::EngineKind::TimeWarp, 2, cfg);
  std::ifstream f(cfg.monitor_path);
  ASSERT_TRUE(f.good());
  std::size_t lines = 0;
  for (std::string line; std::getline(f, line);) {
    if (line.empty()) continue;
    ++lines;
    // Partial-stream validation: whatever prefix of the stream exists must
    // be whole records — balanced braces, object per line.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
  }
  EXPECT_EQ(lines, first.stats.metrics.monitor_lines +
                       second.stats.metrics.monitor_lines);
  std::remove(cfg.monitor_path.c_str());
}

// With telemetry armed the heartbeat carries the live commit-latency p99;
// without it the key is absent so pre-telemetry streams are unchanged.
TEST(Monitor, CommitLatencyKeyTracksTelemetry) {
  obs::ObsConfig cfg;
  cfg.monitor = true;
  cfg.monitor_path = ::testing::TempDir() + "obs_monitor_latency.jsonl";

  std::remove(cfg.monitor_path.c_str());
  cfg.telemetry = true;
  const KernelRun with = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  ASSERT_GT(with.stats.metrics.monitor_lines, 0u);
  {
    std::ifstream f(cfg.monitor_path);
    ASSERT_TRUE(f.good());
    std::size_t tagged = 0, lines = 0;
    for (std::string line; std::getline(f, line);) {
      if (line.empty()) continue;
      ++lines;
      if (line.find("\"commit_latency_p99_us\":") != std::string::npos) {
        ++tagged;
      }
    }
    EXPECT_EQ(tagged, lines) << "telemetry on: every record carries the p99";
  }

  std::remove(cfg.monitor_path.c_str());
  cfg.telemetry = false;
  const KernelRun without = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  ASSERT_GT(without.stats.metrics.monitor_lines, 0u);
  {
    std::ifstream f(cfg.monitor_path);
    ASSERT_TRUE(f.good());
    for (std::string line; std::getline(f, line);) {
      EXPECT_EQ(line.find("commit_latency_p99_us"), std::string::npos);
    }
  }
  std::remove(cfg.monitor_path.c_str());
}

// ---------------------------------------------------------------------------
// Rollback flow events in trace.json (4-PE skewed load: an LP count that
// does not divide evenly across PEs, high remote fraction, tiny lookahead —
// one PE owns more LPs than the rest and lags, so the others roll back).

TEST(ChromeTrace, RollbackFlowEventsWellFormedUnderSkewedLoad) {
  des::PholdConfig pc;
  pc.num_lps = 37;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.01;
  des::EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 40.0;
  ec.seed = 7;
  ec.num_pes = 4;
  ec.gvt_interval_events = 64;
  ec.obs.trace = true;
  ec.obs.trace_path = ::testing::TempDir() + "obs_flow_trace.json";
  // Deliberately tiny span budget: the run must respect it (dropping and
  // counting the excess) rather than growing without bound.
  ec.obs.max_trace_spans_per_pe = 64;

  des::PholdModel model(pc);
  auto eng = des::make_engine(des::EngineKind::TimeWarp, model, ec,
                              pc.lookahead);
  const des::RunStats stats = eng->run();
  const auto& m = stats.metrics;

  // Attribution identity holds on a rollback-heavy run.
  EXPECT_EQ(m.total.primary_rollback_events() +
                m.total.secondary_rollback_events(),
            m.total.rolled_back_events());
  EXPECT_EQ(m.forensics.victim_events_total(), m.total.rolled_back_events());

  // Span/flow budget respected per PE.
  EXPECT_LE(m.trace_spans, 4u * 64u);
  EXPECT_LE(m.trace_flows, 4u * 64u);

  std::ifstream f(ec.obs.trace_path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string trace = ss.str();
  // Well-formed JSON object at the top level, balanced braces throughout.
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '{'),
            std::count(trace.begin(), trace.end(), '}'));
  EXPECT_EQ(std::count(trace.begin(), trace.end(), '['),
            std::count(trace.begin(), trace.end(), ']'));

  // Each recorded flow writes exactly one start ("ph":"s") and one finish
  // ("ph":"f") event, and every finish binds to its enclosing slice.
  const auto occurrences = [&trace](const char* needle) {
    std::size_t n = 0;
    for (std::size_t pos = trace.find(needle); pos != std::string::npos;
         pos = trace.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"ph\":\"s\""), m.trace_flows);
  EXPECT_EQ(occurrences("\"ph\":\"f\""), m.trace_flows);
  EXPECT_EQ(occurrences("\"bp\":\"e\""), m.trace_flows);
  if (m.trace_flows > 0) {
    EXPECT_NE(trace.find("\"cat\":\"rollback\""), std::string::npos);
  }
  // Flow events only exist for rollbacks that had a stamped remote send.
  EXPECT_LE(m.trace_flows,
            m.total.primary_rollbacks() + m.total.secondary_rollbacks());
  std::remove(ec.obs.trace_path.c_str());
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(ChromeTrace, WritesLoadableTraceJson) {
  obs::ObsConfig cfg;
  cfg.trace = true;
  cfg.trace_path = ::testing::TempDir() + "obs_test_trace.json";
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  EXPECT_GT(r.stats.metrics.trace_spans, 0u);

  std::ifstream f(cfg.trace_path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string trace = ss.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(trace.find("\"PE 3\""), std::string::npos);  // all 4 PE tracks
  EXPECT_NE(trace.find("\"forward\""), std::string::npos);
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  std::remove(cfg.trace_path.c_str());
}

TEST(ChromeTrace, SpanBudgetDropsInsteadOfGrowing) {
  obs::TraceBuffer buf;
  buf.reset(2);
  buf.add(obs::Phase::Forward, 0, 1);
  buf.add(obs::Phase::Forward, 1, 2);
  buf.add(obs::Phase::Forward, 2, 3);
  EXPECT_EQ(buf.spans().size(), 2u);
  EXPECT_EQ(buf.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// MetricsReport JSON dump

TEST(MetricsReport, WriteJsonEmitsCountersPhasesAndSeries) {
  const KernelRun r =
      run_kernel(des::EngineKind::TimeWarp, 2, obs::ObsConfig{});
  std::ostringstream os;
  util::JsonWriter w(os);
  r.stats.metrics.write_json(w);
  EXPECT_TRUE(w.done());
  const std::string j = os.str();
  EXPECT_NE(j.find("\"processed_events\""), std::string::npos);
  EXPECT_NE(j.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(j.find("\"gvt_barrier\""), std::string::npos);
  EXPECT_NE(j.find("\"per_pe\""), std::string::npos);
  EXPECT_NE(j.find("\"gvt_series\""), std::string::npos);
  EXPECT_NE(j.find("\"commit_yield\""), std::string::npos);
  // No telemetry in this run: the latency block must be absent so older
  // consumers of the dump see an unchanged shape.
  EXPECT_EQ(j.find("\"latency\""), std::string::npos);
}

TEST(MetricsReport, WriteJsonEmitsLatencyBlockWhenTelemetryRan) {
  obs::ObsConfig cfg;
  cfg.telemetry = true;
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 2, cfg);
  std::ostringstream os;
  util::JsonWriter w(os);
  r.stats.metrics.write_json(w);
  EXPECT_TRUE(w.done());
  const std::string j = os.str();
  for (const char* key :
       {"\"latency\"", "\"queue_dwell_ns\"", "\"commit_latency_ns\"",
        "\"rollback_cost_ns\"", "\"inbox_dwell_ns\"", "\"count\"",
        "\"sum_ns\"", "\"max_ns\"", "\"p50\"", "\"p90\"", "\"p99\"",
        "\"p999\"", "\"telemetry_dropped\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace hp
