// Observability layer tests: the JsonWriter primitive, the table-driven
// metrics reduction, the bounded GVT-series ring, Chrome-trace export, the
// exhaustive kernel/phase name coverage, and — most importantly — the
// invariants the instrumented kernels must uphold: accounting identities,
// per-PE totals reducing to the aggregate, and committed results staying
// bit-identical with observability fully on, fully off, and tracing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "des/engine.hpp"
#include "des/phold.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "util/json_writer.hpp"

namespace hp {
namespace {

// ---------------------------------------------------------------------------
// Compile-time exhaustiveness: if an enumerator is ever added without its
// name case, the constant evaluation below reaches __builtin_unreachable()
// and the translation unit fails to compile.

constexpr bool all_engine_kinds_named() {
  for (const des::EngineKind k : des::kAllEngineKinds) {
    if (des::kind_name(k) == nullptr) return false;
  }
  return true;
}
static_assert(all_engine_kinds_named());

constexpr bool all_phases_named() {
  for (std::size_t p = 0; p < obs::kNumPhases; ++p) {
    if (obs::phase_name(static_cast<obs::Phase>(p)) == nullptr) return false;
  }
  return true;
}
static_assert(all_phases_named());

TEST(EngineKind, NamesAreDistinct) {
  EXPECT_STREQ(des::kind_name(des::EngineKind::Sequential), "sequential");
  EXPECT_STREQ(des::kind_name(des::EngineKind::TimeWarp), "timewarp");
  EXPECT_STREQ(des::kind_name(des::EngineKind::Conservative), "conservative");
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, NestedContainersAndEscaping) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_object();
  w.kv("str", "a\"b\\c\nd");
  w.kv("int", std::uint64_t{42});
  w.kv("neg", std::int64_t{-7});
  w.kv("flag", true);
  w.key("arr").begin_array();
  w.value(1.5);
  w.value("x");
  w.begin_object().kv("k", std::uint32_t{3}).end_object();
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(),
            "{\"str\":\"a\\\"b\\\\c\\nd\",\"int\":42,\"neg\":-7,"
            "\"flag\":true,\"arr\":[1.5,\"x\",{\"k\":3}]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

TEST(JsonWriter, RoundTripsDoublesExactly) {
  std::ostringstream os;
  util::JsonWriter w(os);
  w.begin_array();
  w.value(0.1);
  w.end_array();
  EXPECT_EQ(std::stod(os.str().substr(1)), 0.1);
}

// ---------------------------------------------------------------------------
// Metrics reduction

TEST(Metrics, ReduceSumsAndMaxesPerDeclaredPolicy) {
  obs::PeMetrics a, b;
  a.at(obs::Counter::Processed) = 10;
  b.at(obs::Counter::Processed) = 5;
  a.at(obs::Counter::MaxInboxBatch) = 3;
  b.at(obs::Counter::MaxInboxBatch) = 9;
  a.ns(obs::Phase::Forward) = 100;
  b.ns(obs::Phase::Forward) = 50;
  const obs::PeMetrics total = obs::reduce({a, b});
  EXPECT_EQ(total.processed_events(), 15u);
  EXPECT_EQ(total.max_inbox_batch(), 9u);  // Reduce::Max, not sum
  EXPECT_EQ(total.ns(obs::Phase::Forward), 150u);
}

TEST(Metrics, CounterTableCoversEveryEnumerator) {
  for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
    EXPECT_NE(obs::counter_name(static_cast<obs::Counter>(c)), nullptr);
    EXPECT_STRNE(obs::counter_name(static_cast<obs::Counter>(c)), "");
  }
}

// ---------------------------------------------------------------------------
// GVT series ring

TEST(GvtSeriesRing, RetainsMostRecentWindowOldestFirst) {
  obs::GvtSeriesRing ring(4);
  for (std::uint64_t r = 0; r < 10; ++r) {
    ring.push(obs::GvtRoundSample{r, r * 100, static_cast<double>(r),
                                  r, r, 0, 0});
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].round, 6 + i);  // rounds 6..9, oldest first
  }
}

TEST(GvtSeriesRing, ZeroCapacityOnlyCounts) {
  obs::GvtSeriesRing ring(0);
  ring.push(obs::GvtRoundSample{});
  ring.push(obs::GvtRoundSample{});
  EXPECT_EQ(ring.total_pushed(), 2u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

// ---------------------------------------------------------------------------
// PhaseProbe

TEST(PhaseProbe, DisabledProbeChargesNothing) {
  obs::PeMetrics m;
  obs::PhaseProbe probe;
  probe.attach(&m, nullptr, /*timers_on=*/false);
  EXPECT_FALSE(probe.enabled());
  probe.begin(obs::Phase::Forward);
  probe.switch_to(obs::Phase::Rollback);
  probe.end();
  EXPECT_EQ(m.total_phase_ns(), 0u);
}

TEST(PhaseProbe, ScopeRestoresInterruptedPhase) {
  obs::PeMetrics m;
  obs::PhaseProbe probe;
  probe.attach(&m, nullptr, /*timers_on=*/true);
  probe.begin(obs::Phase::Forward);
  {
    obs::PhaseScope scope(probe, obs::Phase::Rollback);
    EXPECT_EQ(probe.current(), obs::Phase::Rollback);
  }
  EXPECT_EQ(probe.current(), obs::Phase::Forward);
  probe.end();
}

// ---------------------------------------------------------------------------
// Engine-matrix invariants. A rollback-heavy PHOLD load driven through the
// common interface on every kernel.

des::EngineConfig matrix_config(std::uint32_t pes) {
  des::EngineConfig ec;
  ec.num_lps = 36;
  ec.end_time = 60.0;
  ec.seed = 11;
  ec.num_pes = pes;
  ec.gvt_interval_events = 128;
  return ec;
}

des::PholdConfig matrix_phold() {
  des::PholdConfig pc;
  pc.num_lps = 36;
  pc.remote_fraction = 0.6;
  pc.lookahead = 0.05;
  return pc;
}

struct KernelRun {
  std::uint64_t digest = 0;
  des::RunStats stats;
};

KernelRun run_kernel(des::EngineKind kind, std::uint32_t pes,
                     const obs::ObsConfig& obs_cfg) {
  const des::PholdConfig pc = matrix_phold();
  des::EngineConfig ec = matrix_config(pes);
  ec.obs = obs_cfg;
  des::PholdModel model(pc);
  auto eng = des::make_engine(kind, model, ec, pc.lookahead);
  KernelRun out;
  out.stats = eng->run();
  out.digest = des::PholdModel::digest(*eng);
  return out;
}

TEST(MetricsInvariants, ProcessedEqualsCommittedPlusRolledBack) {
  for (const des::EngineKind kind : des::kAllEngineKinds) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 4;
    const KernelRun r = run_kernel(kind, pes, obs::ObsConfig{});
    EXPECT_EQ(r.stats.processed_events(),
              r.stats.committed_events() + r.stats.rolled_back_events())
        << des::kind_name(kind);
    EXPECT_GT(r.stats.committed_events(), 0u) << des::kind_name(kind);
  }
}

TEST(MetricsInvariants, PerPeReducesToAggregate) {
  for (const des::EngineKind kind :
       {des::EngineKind::TimeWarp, des::EngineKind::Conservative}) {
    const KernelRun r = run_kernel(kind, 4, obs::ObsConfig{});
    ASSERT_EQ(r.stats.per_pe().size(), 4u) << des::kind_name(kind);
    EXPECT_EQ(obs::reduce(r.stats.per_pe()), r.stats.metrics.total)
        << des::kind_name(kind);
  }
}

TEST(MetricsInvariants, PhaseTimersPopulatedWhenOnZeroWhenOff) {
  obs::ObsConfig on;
  on.phase_timers = true;
  obs::ObsConfig off;
  off.phase_timers = false;
  for (const des::EngineKind kind : des::kAllEngineKinds) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 2;
    const KernelRun with = run_kernel(kind, pes, on);
    EXPECT_GT(with.stats.metrics.total.total_phase_ns(), 0u)
        << des::kind_name(kind);
    const KernelRun without = run_kernel(kind, pes, off);
    EXPECT_EQ(without.stats.metrics.total.total_phase_ns(), 0u)
        << des::kind_name(kind);
  }
}

TEST(MetricsInvariants, GvtSeriesBoundedAndMonotone) {
  obs::ObsConfig cfg;
  cfg.gvt_series_capacity = 8;  // deliberately smaller than the round count
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  const auto& series = r.stats.metrics.gvt_series;
  EXPECT_LE(series.size(), 8u);
  EXPECT_GE(r.stats.metrics.gvt_rounds, series.size());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].round, series[i - 1].round + 1);
    EXPECT_GE(series[i].gvt, series[i - 1].gvt);  // GVT never retreats
    EXPECT_GE(series[i].t_ns, series[i - 1].t_ns);
  }
}

TEST(MetricsInvariants, ResultsBitIdenticalAcrossObsSettings) {
  obs::ObsConfig full_on;
  full_on.phase_timers = true;
  full_on.trace = true;
  full_on.trace_path = ::testing::TempDir() + "obs_equiv_trace.json";
  obs::ObsConfig all_off;
  all_off.phase_timers = false;
  all_off.gvt_series_capacity = 0;

  const KernelRun seq = run_kernel(des::EngineKind::Sequential, 1, all_off);
  for (const des::EngineKind kind : des::kAllEngineKinds) {
    const std::uint32_t pes = kind == des::EngineKind::Sequential ? 1 : 4;
    const KernelRun on = run_kernel(kind, pes, full_on);
    const KernelRun off = run_kernel(kind, pes, all_off);
    EXPECT_EQ(on.digest, seq.digest) << des::kind_name(kind) << " obs on";
    EXPECT_EQ(off.digest, seq.digest) << des::kind_name(kind) << " obs off";
    EXPECT_EQ(on.stats.committed_events(), seq.stats.committed_events());
    EXPECT_EQ(off.stats.committed_events(), seq.stats.committed_events());
  }
  std::remove(full_on.trace_path.c_str());
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(ChromeTrace, WritesLoadableTraceJson) {
  obs::ObsConfig cfg;
  cfg.trace = true;
  cfg.trace_path = ::testing::TempDir() + "obs_test_trace.json";
  const KernelRun r = run_kernel(des::EngineKind::TimeWarp, 4, cfg);
  EXPECT_GT(r.stats.metrics.trace_spans, 0u);

  std::ifstream f(cfg.trace_path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string trace = ss.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(trace.find("\"PE 3\""), std::string::npos);  // all 4 PE tracks
  EXPECT_NE(trace.find("\"forward\""), std::string::npos);
  EXPECT_EQ(trace.front(), '{');
  EXPECT_EQ(trace.back(), '}');
  std::remove(cfg.trace_path.c_str());
}

TEST(ChromeTrace, SpanBudgetDropsInsteadOfGrowing) {
  obs::TraceBuffer buf;
  buf.reset(2);
  buf.add(obs::Phase::Forward, 0, 1);
  buf.add(obs::Phase::Forward, 1, 2);
  buf.add(obs::Phase::Forward, 2, 3);
  EXPECT_EQ(buf.spans().size(), 2u);
  EXPECT_EQ(buf.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// MetricsReport JSON dump

TEST(MetricsReport, WriteJsonEmitsCountersPhasesAndSeries) {
  const KernelRun r =
      run_kernel(des::EngineKind::TimeWarp, 2, obs::ObsConfig{});
  std::ostringstream os;
  util::JsonWriter w(os);
  r.stats.metrics.write_json(w);
  EXPECT_TRUE(w.done());
  const std::string j = os.str();
  EXPECT_NE(j.find("\"processed_events\""), std::string::npos);
  EXPECT_NE(j.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(j.find("\"gvt_barrier\""), std::string::npos);
  EXPECT_NE(j.find("\"per_pe\""), std::string::npos);
  EXPECT_NE(j.find("\"gvt_series\""), std::string::npos);
  EXPECT_NE(j.find("\"commit_yield\""), std::string::npos);
}

}  // namespace
}  // namespace hp
