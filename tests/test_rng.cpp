#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace hp::util {
namespace {

TEST(ReversibleRng, InverseConstantIsCorrect) {
  static_assert(ReversibleRng::kMul * ReversibleRng::kMulInv == 1ULL);
  SUCCEED();
}

TEST(ReversibleRng, ReverseUndoesUniformDraws) {
  ReversibleRng rng(42);
  const std::uint64_t s0 = rng.raw_state();
  std::vector<double> first;
  for (int i = 0; i < 100; ++i) first.push_back(rng.uniform());
  rng.reverse(100);
  EXPECT_EQ(rng.raw_state(), s0);
  EXPECT_EQ(rng.draw_count(), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(), first[i]);
}

TEST(ReversibleRng, ReverseUndoesMixedDraws) {
  ReversibleRng rng(7);
  const std::uint64_t s0 = rng.raw_state();
  (void)rng.uniform();
  (void)rng.integer(3, 17);
  (void)rng.bernoulli(0.3);
  EXPECT_EQ(rng.draw_count(), 3u);
  rng.reverse(3);
  EXPECT_EQ(rng.raw_state(), s0);
}

TEST(ReversibleRng, InterleavedReverseReplaysIdentically) {
  ReversibleRng a(99), b(99);
  // a: draw 5, reverse 2, draw 2 => same final state as b: draw 5.
  for (int i = 0; i < 5; ++i) (void)a.uniform();
  a.reverse(2);
  (void)a.uniform();
  (void)a.uniform();
  for (int i = 0; i < 5; ++i) (void)b.uniform();
  EXPECT_EQ(a.raw_state(), b.raw_state());
  EXPECT_EQ(a.draw_count(), b.draw_count());
}

TEST(ReversibleRng, UniformRangeAndMean) {
  ReversibleRng rng(1);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(ReversibleRng, IntegerRangeInclusiveAndCoversAll) {
  ReversibleRng rng(5);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.integer(10, 15);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 15u);
    ++seen[v - 10];
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_GT(seen[i], 700) << "value " << 10 + i << " under-sampled";
  }
}

TEST(ReversibleRng, SingleValueRange) {
  ReversibleRng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.integer(7, 7), 7u);
}

TEST(ReversibleRng, StreamsWithDifferentSeedsDiffer) {
  ReversibleRng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(ReversibleRng, BernoulliProbabilityRoughlyCorrect) {
  ReversibleRng rng(11);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.125) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.125, 0.01);
}

TEST(ReversibleRng, RestoreRoundTrips) {
  ReversibleRng rng(3);
  for (int i = 0; i < 10; ++i) (void)rng.uniform();
  const auto s = rng.raw_state();
  const auto d = rng.draw_count();
  const double next = rng.uniform();
  for (int i = 0; i < 5; ++i) (void)rng.uniform();
  rng.restore(s, d);
  EXPECT_EQ(rng.draw_count(), d);
  EXPECT_EQ(rng.uniform(), next);
}

}  // namespace
}  // namespace hp::util
