#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "des/splay_queue.hpp"
#include "util/rng.hpp"

namespace hp::des {
namespace {

EventKey key_of(double ts, std::uint64_t tie, std::uint32_t dst = 0) {
  return EventKey{ts, tie, 0, dst, 0};
}

TEST(SplayQueue, EmptyBehaviour) {
  SplayQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peek_min(), nullptr);
  EXPECT_EQ(q.pop_min(), nullptr);
}

TEST(SplayQueue, PopsInKeyOrder) {
  std::vector<std::unique_ptr<Event>> events;
  events.reserve(100);
  for (int i = 0; i < 100; ++i) {
    events.push_back(std::make_unique<Event>());
    events.back()->key = key_of(((i * 37) % 100) * 1.5,
                                static_cast<std::uint64_t>(i));
  }
  SplayQueue q;
  for (auto& ev : events) q.insert(ev.get());
  EXPECT_EQ(q.size(), 100u);
  EventKey last = kMinKey;
  for (int i = 0; i < 100; ++i) {
    Event* ev = q.pop_min();
    ASSERT_NE(ev, nullptr);
    EXPECT_TRUE(last < ev->key || last == ev->key);
    last = ev->key;
  }
  EXPECT_TRUE(q.empty());
}

TEST(SplayQueue, DuplicateKeysAllRetrievable) {
  Event a, b, c, d;
  a.key = key_of(5.0, 7);
  b.key = key_of(5.0, 7);
  c.key = key_of(5.0, 7);
  d.key = key_of(1.0, 1);
  SplayQueue q;
  q.insert(&a);
  q.insert(&b);
  q.insert(&c);
  q.insert(&d);
  EXPECT_EQ(q.pop_min(), &d);
  std::set<Event*> twins;
  twins.insert(q.pop_min());
  twins.insert(q.pop_min());
  twins.insert(q.pop_min());
  EXPECT_EQ(twins, (std::set<Event*>{&a, &b, &c}));
  EXPECT_TRUE(q.empty());
}

TEST(SplayQueue, EraseExactPointerAmongTwins) {
  Event a, b, c;
  a.key = key_of(5.0, 7);
  b.key = key_of(5.0, 7);
  c.key = key_of(9.0, 1);
  SplayQueue q;
  q.insert(&a);
  q.insert(&b);
  q.insert(&c);
  EXPECT_TRUE(q.erase(&b));
  EXPECT_FALSE(q.erase(&b)) << "double erase must fail";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_min(), &a);
  EXPECT_EQ(q.pop_min(), &c);
}

TEST(SplayQueue, EraseMissingKeyReturnsFalse) {
  Event a, ghost;
  a.key = key_of(5.0, 7);
  ghost.key = key_of(6.0, 8);
  SplayQueue q;
  q.insert(&a);
  EXPECT_FALSE(q.erase(&ghost));
  EXPECT_EQ(q.size(), 1u);
}

TEST(SplayQueue, ClearResets) {
  std::vector<std::unique_ptr<Event>> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(std::make_unique<Event>());
    events.back()->key = key_of(i, static_cast<std::uint64_t>(i));
  }
  SplayQueue q;
  for (auto& ev : events) q.insert(ev.get());
  q.clear();
  EXPECT_TRUE(q.empty());
  q.insert(events[3].get());
  EXPECT_EQ(q.pop_min(), events[3].get());
}

// Randomized differential test against std::multiset as the oracle.
class SplayQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplayQueueFuzz, MatchesMultisetOracle) {
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const {
      return a->key < b->key;
    }
  };
  util::ReversibleRng rng(GetParam());
  std::vector<std::unique_ptr<Event>> storage;
  SplayQueue q;
  std::multiset<Event*, KeyLess> oracle;
  std::vector<Event*> live;

  for (int op = 0; op < 20000; ++op) {
    const auto action = rng.integer(0, 9);
    if (action <= 4 || live.empty()) {  // insert (biased)
      // Coarse timestamps force frequent duplicate keys.
      const double ts = static_cast<double>(rng.integer(0, 40));
      const std::uint64_t tie = rng.integer(0, 6);
      storage.push_back(std::make_unique<Event>());
      storage.back()->key = key_of(ts, tie);
      Event* ev = storage.back().get();
      q.insert(ev);
      oracle.insert(ev);
      live.push_back(ev);
    } else if (action <= 7) {  // pop_min
      Event* got = q.pop_min();
      ASSERT_FALSE(oracle.empty());
      ASSERT_NE(got, nullptr);
      // Any event with the minimal key is acceptable.
      EXPECT_EQ(got->key, (*oracle.begin())->key);
      auto [lo, hi] = oracle.equal_range(got);
      bool found = false;
      for (auto it = lo; it != hi; ++it) {
        if (*it == got) {
          oracle.erase(it);
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
      live.erase(std::find(live.begin(), live.end(), got));
    } else {  // erase random live event
      const auto idx = rng.integer(0, live.size() - 1);
      Event* victim = live[idx];
      EXPECT_TRUE(q.erase(victim));
      auto [lo, hi] = oracle.equal_range(victim);
      for (auto it = lo; it != hi; ++it) {
        if (*it == victim) {
          oracle.erase(it);
          break;
        }
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(q.size(), oracle.size());
    ASSERT_EQ(q.empty(), oracle.empty());
    if (!oracle.empty()) {
      ASSERT_EQ(q.peek_min()->key, (*oracle.begin())->key);
    }
  }
  // Drain and verify full ordering.
  while (!oracle.empty()) {
    Event* got = q.pop_min();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->key, (*oracle.begin())->key);
    auto [lo, hi] = oracle.equal_range(got);
    for (auto it = lo; it != hi; ++it) {
      if (*it == got) {
        oracle.erase(it);
        break;
      }
    }
  }
  EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplayQueueFuzz,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace hp::des
