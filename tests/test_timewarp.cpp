#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "tests/toy_models.hpp"

namespace hp::des {
namespace {

using testing::PholdModel;
using testing::RingModel;
using testing::ToyState;

struct LpDigest {
  std::uint64_t count;
  std::uint64_t xor_fold;
  std::uint64_t ordered_hash;
  bool operator==(const LpDigest&) const = default;
};

template <typename Engine>
std::vector<LpDigest> digest(Engine& eng, std::uint32_t num_lps) {
  std::vector<LpDigest> out;
  out.reserve(num_lps);
  for (std::uint32_t lp = 0; lp < num_lps; ++lp) {
    auto& s = static_cast<ToyState&>(eng.state(lp));
    out.push_back({s.count, s.xor_fold, s.ordered_hash});
  }
  return out;
}

// The core equivalence property (report Attachment 3): Time Warp execution
// at any PE/KP configuration produces exactly the sequential results.
class TimeWarpEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TimeWarpEquivalence, MatchesSequentialPhold) {
  const auto [num_pes, num_kps, gvt_interval] = GetParam();
  constexpr std::uint32_t kLps = 32;
  constexpr double kEnd = 60.0;

  PholdModel model(kLps, 1.0, 0.05);
  EngineConfig scfg;
  scfg.num_lps = kLps;
  scfg.end_time = kEnd;
  scfg.seed = 11;
  SequentialEngine seq(model, scfg);
  const RunStats sstats = seq.run();

  EngineConfig tcfg = scfg;
  tcfg.num_pes = static_cast<std::uint32_t>(num_pes);
  tcfg.num_kps = static_cast<std::uint32_t>(num_kps);
  tcfg.gvt_interval_events = static_cast<std::uint32_t>(gvt_interval);
  TimeWarpEngine tw(model, tcfg);
  const RunStats tstats = tw.run();

  EXPECT_EQ(tstats.committed_events(), sstats.committed_events());
  EXPECT_EQ(digest(tw, kLps), digest(seq, kLps));
  EXPECT_GE(tstats.processed_events(), tstats.committed_events());
}

INSTANTIATE_TEST_SUITE_P(
    PeKpSweep, TimeWarpEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 512),
                      std::make_tuple(1, 4, 512),
                      std::make_tuple(2, 2, 512),
                      std::make_tuple(2, 8, 128),
                      std::make_tuple(4, 4, 64),
                      std::make_tuple(4, 16, 256),
                      std::make_tuple(4, 32, 32),
                      std::make_tuple(8, 16, 128)),
    [](const auto& info) {
      return "pe" + std::to_string(std::get<0>(info.param)) + "_kp" +
             std::to_string(std::get<1>(info.param)) + "_gvt" +
             std::to_string(std::get<2>(info.param));
    });

// Remote-path stress: a PHOLD load with near-zero lookahead, uniform
// cross-LP traffic and a tiny GVT interval at 4 PEs hammers the lock-free
// inbox — cross-PE stragglers roll KPs back constantly, rollbacks batch
// anti-messages to every peer, and annihilation has to catch positives in
// pending, processed and in-flight states. Committed state must stay
// bit-identical to the sequential kernel under every queue backend and both
// cancellation strategies (lazy exercises stale-child adoption across the
// same remote channel).
class TimeWarpRemoteStress
    : public ::testing::TestWithParam<
          std::tuple<EngineConfig::QueueKind, EngineConfig::Cancellation>> {};

TEST_P(TimeWarpRemoteStress, CommittedStateMatchesSequential) {
  const auto [queue_kind, cancellation] = GetParam();
  constexpr std::uint32_t kLps = 48;
  constexpr double kEnd = 80.0;

  PholdModel model(kLps, 1.0, 0.005);  // near-zero lookahead => stragglers
  EngineConfig scfg;
  scfg.num_lps = kLps;
  scfg.end_time = kEnd;
  scfg.seed = 23;
  SequentialEngine seq(model, scfg);
  const RunStats s = seq.run();

  EngineConfig tcfg = scfg;
  tcfg.num_pes = 4;
  tcfg.num_kps = 16;
  tcfg.gvt_interval_events = 24;  // frequent rounds keep batches small+hot
  tcfg.queue_kind = queue_kind;
  tcfg.cancellation = cancellation;
  TimeWarpEngine tw(model, tcfg);
  const RunStats t = tw.run();

  EXPECT_EQ(t.committed_events(), s.committed_events());
  EXPECT_EQ(digest(tw, kLps), digest(seq, kLps));
  // Every PE owns LPs under the linear mapping and PHOLD hits all of them,
  // so the remote path is exercised by construction.
  ASSERT_EQ(t.per_pe().size(), 4u);
  for (const auto& pe : t.per_pe()) EXPECT_GT(pe.processed_events(), 0u);
  EXPECT_GT(t.inbox_batches(), 0u) << "no remote batch was ever published";
  EXPECT_GE(t.inbox_batched_items(), t.inbox_batches());
}

INSTANTIATE_TEST_SUITE_P(
    QueueAndCancellationMatrix, TimeWarpRemoteStress,
    ::testing::Combine(
        ::testing::Values(EngineConfig::QueueKind::Splay,
                          EngineConfig::QueueKind::Multiset),
        ::testing::Values(EngineConfig::Cancellation::Aggressive,
                          EngineConfig::Cancellation::Lazy)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) == EngineConfig::QueueKind::Splay
                             ? "splay"
                             : "multiset";
      name += std::get<1>(info.param) == EngineConfig::Cancellation::Aggressive
                  ? "_aggressive"
                  : "_lazy";
      return name;
    });

TEST(TimeWarpEngine, RingMatchesSequentialExactly) {
  RingModel model(8, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 8;
  cfg.end_time = 200.0;
  SequentialEngine seq(model, cfg);
  const RunStats s = seq.run();

  EngineConfig tcfg = cfg;
  tcfg.num_pes = 2;
  tcfg.num_kps = 4;
  tcfg.gvt_interval_events = 32;
  TimeWarpEngine tw(model, tcfg);
  const RunStats t = tw.run();
  EXPECT_EQ(t.committed_events(), s.committed_events());
  EXPECT_EQ(digest(tw, 8), digest(seq, 8));
}

TEST(TimeWarpEngine, StateSavingModeMatchesReverseComputation) {
  constexpr std::uint32_t kLps = 16;
  PholdModel model(kLps, 1.0, 0.05);
  EngineConfig cfg;
  cfg.num_lps = kLps;
  cfg.end_time = 40.0;
  cfg.seed = 5;
  cfg.num_pes = 4;
  cfg.num_kps = 8;
  cfg.gvt_interval_events = 64;

  TimeWarpEngine rc(model, cfg);
  const RunStats rstats = rc.run();

  cfg.state_saving = true;
  TimeWarpEngine ss(model, cfg);
  const RunStats sstats = ss.run();

  EXPECT_EQ(rstats.committed_events(), sstats.committed_events());
  EXPECT_EQ(digest(rc, kLps), digest(ss, kLps));
}

TEST(TimeWarpEngine, SmallGvtIntervalForcesRollbacksButStaysCorrect) {
  constexpr std::uint32_t kLps = 24;
  PholdModel model(kLps, 1.0, 0.01);  // tiny lookahead => many stragglers
  EngineConfig cfg;
  cfg.num_lps = kLps;
  cfg.end_time = 50.0;
  cfg.seed = 17;
  SequentialEngine seq(model, cfg);
  const RunStats s = seq.run();

  EngineConfig tcfg = cfg;
  tcfg.num_pes = 4;
  tcfg.num_kps = 8;
  tcfg.gvt_interval_events = 16;
  TimeWarpEngine tw(model, tcfg);
  const RunStats t = tw.run();
  EXPECT_EQ(t.committed_events(), s.committed_events());
  EXPECT_EQ(digest(tw, kLps), digest(seq, kLps));
}

TEST(TimeWarpEngine, NoWorkTerminates) {
  RingModel model(4, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 4;
  cfg.end_time = 0.25;  // the seed event at t=1 is beyond the end time
  cfg.num_pes = 2;
  cfg.num_kps = 2;
  TimeWarpEngine tw(model, cfg);
  const RunStats t = tw.run();
  EXPECT_EQ(t.committed_events(), 0u);
}

TEST(TimeWarpEngine, GvtRoundsHappen) {
  PholdModel model(16, 1.0, 0.05);
  EngineConfig cfg;
  cfg.num_lps = 16;
  cfg.end_time = 50.0;
  cfg.num_pes = 2;
  cfg.num_kps = 4;
  cfg.gvt_interval_events = 64;
  TimeWarpEngine tw(model, cfg);
  const RunStats t = tw.run();
  EXPECT_GE(t.gvt_rounds(), 2u);
  EXPECT_GT(t.final_gvt(), cfg.end_time);
}

// A model that schedules nothing at all: the engine must terminate at once
// with GVT = +inf rather than spin.
class EmptyModel final : public Model {
 public:
  std::unique_ptr<LpState> make_state(std::uint32_t) override {
    return std::make_unique<testing::ToyState>();
  }
  void init_lp(std::uint32_t, InitContext&) override {}
  void forward(LpState&, Event&, Context&) override {}
  void reverse(LpState&, Event&, Context&) override {}
};

TEST(TimeWarpEngine, EmptyModelTerminatesAtEveryPeCount) {
  for (const std::uint32_t pes : {1u, 2u, 4u}) {
    EmptyModel model;
    EngineConfig cfg;
    cfg.num_lps = 8;
    cfg.end_time = 1000.0;
    cfg.num_pes = pes;
    cfg.num_kps = 8;
    TimeWarpEngine tw(model, cfg);
    const RunStats t = tw.run();
    EXPECT_EQ(t.committed_events(), 0u);
    EXPECT_EQ(t.processed_events(), 0u);
  }
}

TEST(TimeWarpEngine, EventsBeyondEndTimeAreNeverExecuted) {
  // The ring token advances 1.0 per event; exactly floor(end) events fit.
  testing::RingModel model(4, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 4;
  cfg.end_time = 37.5;
  cfg.num_pes = 2;
  cfg.num_kps = 4;
  TimeWarpEngine tw(model, cfg);
  const RunStats t = tw.run();
  EXPECT_EQ(t.committed_events(), 37u);
}

TEST(TimeWarpEngine, TinyOptimismWindowStillCompletes) {
  testing::PholdModel model(16, 1.0, 0.05);
  EngineConfig cfg;
  cfg.num_lps = 16;
  cfg.end_time = 40.0;
  cfg.num_pes = 2;
  cfg.num_kps = 8;
  cfg.optimism_window = 0.5;  // barely wider than the lookahead
  TimeWarpEngine tw(model, cfg);
  const RunStats t = tw.run();
  SequentialEngine seq(model, EngineConfig{.num_lps = 16, .end_time = 40.0});
  const RunStats s = seq.run();
  EXPECT_EQ(t.committed_events(), s.committed_events());
  EXPECT_GT(t.gvt_rounds(), 10u) << "a tight window forces many GVT rounds";
}

TEST(TimeWarpEngine, RejectsBadConfig) {
  RingModel model(4, 1.0);
  EngineConfig cfg;
  cfg.num_lps = 4;
  cfg.end_time = 1.0;
  cfg.num_pes = 4;
  cfg.num_kps = 2;  // fewer KPs than PEs
  EXPECT_DEATH({ TimeWarpEngine tw(model, cfg); }, "KP");
}

}  // namespace
}  // namespace hp::des
