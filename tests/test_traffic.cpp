#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/simulation.hpp"
#include "hotpotato/traffic.hpp"

namespace hp::hotpotato {
namespace {

using net::Grid;
using net::GridKind;

class TrafficDrawContract
    : public ::testing::TestWithParam<TrafficPattern> {};

TEST_P(TrafficDrawContract, NeverSelfAlwaysInRangeDrawsExact) {
  const Grid g(8, GridKind::Torus);
  util::ReversibleRng rng(3);
  for (std::uint32_t src = 0; src < g.num_nodes(); ++src) {
    for (int rep = 0; rep < 8; ++rep) {
      const auto before = rng.draw_count();
      const TrafficDraw t = draw_traffic_destination(g, GetParam(), src, rng);
      EXPECT_NE(t.dst, src);
      EXPECT_LT(t.dst, g.num_nodes());
      EXPECT_EQ(rng.draw_count() - before, t.rng_draws)
          << "reported draws must match actual stream advancement";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, TrafficDrawContract,
    ::testing::Values(TrafficPattern::Uniform, TrafficPattern::Transpose,
                      TrafficPattern::BitComplement, TrafficPattern::Hotspot,
                      TrafficPattern::NearestNeighbor),
    [](const auto& info) {
      return std::string(traffic_pattern_name(info.param));
    });

TEST(Traffic, UniformCoversAllDestinations) {
  const Grid g(4, GridKind::Torus);
  util::ReversibleRng rng(1);
  std::map<std::uint32_t, int> seen;
  for (int i = 0; i < 4000; ++i) {
    ++seen[draw_traffic_destination(g, TrafficPattern::Uniform, 5, rng).dst];
  }
  EXPECT_EQ(seen.size(), g.num_nodes() - 1);  // everything except self
  for (const auto& [dst, count] : seen) {
    EXPECT_GT(count, 4000 / 15 / 3) << "destination " << dst << " starved";
  }
}

TEST(Traffic, TransposeIsThePermutation) {
  const Grid g(8, GridKind::Torus);
  util::ReversibleRng rng(1);
  const auto t = draw_traffic_destination(g, TrafficPattern::Transpose,
                                          g.id_of({2, 5}), rng);
  EXPECT_EQ(t.dst, g.id_of({5, 2}));
  EXPECT_EQ(t.rng_draws, 0u);
}

TEST(Traffic, BitComplementMapsToOppositeCorner) {
  const Grid g(8, GridKind::Torus);
  util::ReversibleRng rng(1);
  const auto t = draw_traffic_destination(g, TrafficPattern::BitComplement,
                                          g.id_of({1, 2}), rng);
  EXPECT_EQ(t.dst, g.id_of({6, 5}));
  EXPECT_EQ(t.rng_draws, 0u);
}

TEST(Traffic, HotspotConcentratesTraffic) {
  const Grid g(8, GridKind::Torus);
  util::ReversibleRng rng(7);
  std::map<std::uint32_t, int> seen;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ++seen[draw_traffic_destination(g, TrafficPattern::Hotspot, 0, rng).dst];
  }
  int hot = 0;
  // Sum mass on the 4 quarter-point hotspots.
  for (const net::Coord c :
       {net::Coord{2, 2}, net::Coord{2, 6}, net::Coord{6, 2}, net::Coord{6, 6}}) {
    hot += seen[g.id_of(c)];
  }
  // Directed hotspot mass plus the background uniform traffic that happens
  // to land on the 4 hotspots (out of the 63 non-self nodes).
  const double expected =
      kHotspotFraction + (1.0 - kHotspotFraction) * 4.0 / 63.0;
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, expected, 0.02);
}

TEST(Traffic, NearestNeighborIsOneHop) {
  const Grid torus(8, GridKind::Torus);
  util::ReversibleRng rng(1);
  for (std::uint32_t src : {0u, 7u, 63u}) {
    const auto t = draw_traffic_destination(
        torus, TrafficPattern::NearestNeighbor, src, rng);
    EXPECT_EQ(torus.distance(src, t.dst), 1);
  }
  const Grid mesh(8, GridKind::Mesh);
  for (std::uint32_t src = 0; src < mesh.num_nodes(); ++src) {
    const auto t = draw_traffic_destination(
        mesh, TrafficPattern::NearestNeighbor, src, rng);
    EXPECT_EQ(mesh.distance(src, t.dst), 1);
  }
}

TEST(TrafficModel, PatternsStayDeterministicUnderTimeWarp) {
  for (const TrafficPattern p :
       {TrafficPattern::Transpose, TrafficPattern::Hotspot,
        TrafficPattern::NearestNeighbor}) {
    core::SimulationOptions o;
    o.model.n = 8;
    o.model.injector_fraction = 0.75;
    o.model.steps = 60;
    o.model.traffic = p;
    o.kernel = core::Kernel::Sequential;
    const auto seq = core::run_hotpotato(o);
    auto t = o;
    t.kernel = core::Kernel::TimeWarp;
    t.engine.num_pes = 4;
    t.engine.num_kps = 16;
    t.engine.gvt_interval_events = 256;
    const auto tw = core::run_hotpotato(t);
    EXPECT_EQ(seq.report, tw.report) << traffic_pattern_name(p);
  }
}

TEST(TrafficModel, NearestNeighborIsEasiestHotspotHardest) {
  auto run = [](TrafficPattern p) {
    core::SimulationOptions o;
    o.model.n = 16;
    o.model.injector_fraction = 1.0;
    o.model.steps = 150;
    o.model.traffic = p;
    return core::run_hotpotato(o).report;
  };
  const auto nn = run(TrafficPattern::NearestNeighbor);
  const auto uni = run(TrafficPattern::Uniform);
  const auto hot = run(TrafficPattern::Hotspot);
  EXPECT_LT(nn.avg_delivery_steps(), uni.avg_delivery_steps());
  EXPECT_GT(nn.delivered, uni.delivered);
  // Hotspot contention shows up in deflections around the hotspot sinks and
  // in fewer completed deliveries than the uniform permutation achieves.
  EXPECT_GT(hot.deflection_rate(), uni.deflection_rate());
  EXPECT_LT(hot.delivered, uni.delivered);
}

TEST(Histogram, DeliveryPercentilesAreOrderedAndBracketMean) {
  core::SimulationOptions o;
  o.model.n = 12;
  o.model.injector_fraction = 0.5;
  o.model.steps = 150;
  const auto r = core::run_hotpotato(o).report;
  const double p50 = r.delivery_percentile(0.50);
  const double p90 = r.delivery_percentile(0.90);
  const double p99 = r.delivery_percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p99, 0.0);
  // The distribution's histogram mass equals the delivered count.
  std::uint64_t mass = 0;
  for (const auto c : r.delivery_hist.counts()) mass += c;
  EXPECT_EQ(mass, r.delivered);
}

}  // namespace
}  // namespace hp::hotpotato
