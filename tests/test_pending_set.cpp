// Shared conformance suite for every pending-set backend.
//
// All four backends (multiset reference, splay, ladder, calendar) sit behind
// the PendingSet facade and must be observably identical: pops come in full
// EventKey order, duplicate keys are all retrievable (any relative order),
// erase removes exactly the given envelope, and a long randomized
// insert/pop/erase interleaving matches a std::multiset oracle step by step.
// EngineConfig::queue_kind being a pure performance knob rests on this suite.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "des/pending_set.hpp"
#include "util/rng.hpp"

namespace hp::des {
namespace {

using Kind = EngineConfig::QueueKind;

EventKey key_of(double ts, std::uint64_t tie, std::uint32_t dst = 0) {
  return EventKey{ts, tie, 0, dst, 0};
}

struct KindName {
  template <class ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return queue_name(info.param);
  }
};

class PendingSetKinds : public ::testing::TestWithParam<Kind> {};

TEST_P(PendingSetKinds, EmptyBehaviour) {
  PendingSet q(GetParam());
  EXPECT_STREQ(q.name(), queue_name(GetParam()));
  EXPECT_EQ(q.kind(), GetParam());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peek_min(), nullptr);
  EXPECT_EQ(q.pop_min(), nullptr);
}

TEST_P(PendingSetKinds, PopsInKeyOrder) {
  std::vector<std::unique_ptr<Event>> events;
  events.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    events.push_back(std::make_unique<Event>());
    events.back()->key =
        key_of(((i * 389) % 1000) * 0.25, static_cast<std::uint64_t>(i));
  }
  PendingSet q(GetParam());
  for (auto& ev : events) q.insert(ev.get());
  EXPECT_EQ(q.size(), 1000u);
  EventKey last = kMinKey;
  for (int i = 0; i < 1000; ++i) {
    Event* ev = q.pop_min();
    ASSERT_NE(ev, nullptr);
    EXPECT_TRUE(last < ev->key || last == ev->key)
        << "out-of-order pop at index " << i;
    last = ev->key;
  }
  EXPECT_TRUE(q.empty());
}

TEST_P(PendingSetKinds, InterleavedInsertPopStaysSorted) {
  // Inserts below the current minimum while draining — the pattern rollback
  // re-insertion produces, and the hard case for bucket/rung structures.
  std::vector<std::unique_ptr<Event>> events;
  PendingSet q(GetParam());
  util::ReversibleRng rng(99);
  EventKey last = kMinKey;
  double floor_ts = 0.0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 10; ++i) {
      events.push_back(std::make_unique<Event>());
      events.back()->key =
          key_of(floor_ts + static_cast<double>(rng.integer(0, 50)),
                 rng.integer(0, 1000));
      // Keys may be below the last popped key only if >= the floor we track;
      // generate at/above the previous pop to keep the order contract valid.
      if (events.back()->key < last) events.back()->key = last;
      q.insert(events.back().get());
    }
    for (int i = 0; i < 7; ++i) {
      Event* ev = q.pop_min();
      ASSERT_NE(ev, nullptr);
      ASSERT_TRUE(last < ev->key || last == ev->key);
      last = ev->key;
      floor_ts = ev->key.ts;
    }
  }
  while (Event* ev = q.pop_min()) {
    ASSERT_TRUE(last < ev->key || last == ev->key);
    last = ev->key;
  }
}

TEST_P(PendingSetKinds, DuplicateKeysAllRetrievable) {
  Event a, b, c, d;
  a.key = key_of(5.0, 7);
  b.key = key_of(5.0, 7);
  c.key = key_of(5.0, 7);
  d.key = key_of(1.0, 1);
  PendingSet q(GetParam());
  q.insert(&a);
  q.insert(&b);
  q.insert(&c);
  q.insert(&d);
  EXPECT_EQ(q.pop_min(), &d);
  std::set<Event*> twins;
  twins.insert(q.pop_min());
  twins.insert(q.pop_min());
  twins.insert(q.pop_min());
  EXPECT_EQ(twins, (std::set<Event*>{&a, &b, &c}));
  EXPECT_TRUE(q.empty());
}

TEST_P(PendingSetKinds, EraseExactPointerAmongTwins) {
  Event a, b, c;
  a.key = key_of(5.0, 7);
  b.key = key_of(5.0, 7);
  c.key = key_of(9.0, 1);
  PendingSet q(GetParam());
  q.insert(&a);
  q.insert(&b);
  q.insert(&c);
  EXPECT_TRUE(q.erase(&b));
  EXPECT_FALSE(q.erase(&b)) << "double erase must fail";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop_min(), &a);
  EXPECT_EQ(q.pop_min(), &c);
}

TEST_P(PendingSetKinds, EraseMissingKeyReturnsFalse) {
  Event a, ghost;
  a.key = key_of(5.0, 7);
  ghost.key = key_of(6.0, 8);
  PendingSet q(GetParam());
  q.insert(&a);
  EXPECT_FALSE(q.erase(&ghost));
  EXPECT_EQ(q.size(), 1u);
}

// The anti-message pattern under pressure: many envelopes sharing a handful
// of full keys, erased by exact pointer while pops are in flight. A backend
// that resolves erase by key alone (instead of pointer identity) loses the
// wrong twin here and the later pops surface it.
TEST_P(PendingSetKinds, DuplicateKeyEraseUnderPressure) {
  constexpr int kTwinsPerKey = 16;
  constexpr int kKeys = 8;
  std::vector<std::unique_ptr<Event>> events;
  PendingSet q(GetParam());
  for (int k = 0; k < kKeys; ++k) {
    for (int t = 0; t < kTwinsPerKey; ++t) {
      events.push_back(std::make_unique<Event>());
      events.back()->key = key_of(static_cast<double>(k), 7);
      q.insert(events.back().get());
    }
  }
  // Erase every odd twin of every key, in a scattered order.
  util::ReversibleRng rng(7);
  std::vector<Event*> victims;
  for (std::size_t i = 1; i < events.size(); i += 2)
    victims.push_back(events[i].get());
  for (std::size_t i = victims.size(); i > 1; --i) {
    const auto j = rng.integer(0, i - 1);
    std::swap(victims[i - 1], victims[j]);
  }
  for (Event* v : victims) ASSERT_TRUE(q.erase(v));
  for (Event* v : victims) ASSERT_FALSE(q.erase(v));
  EXPECT_EQ(q.size(), events.size() / 2);
  // The survivors (even twins) pop in key order, each exactly once.
  std::set<Event*> popped;
  EventKey last = kMinKey;
  while (Event* ev = q.pop_min()) {
    EXPECT_TRUE(last < ev->key || last == ev->key);
    last = ev->key;
    EXPECT_TRUE(popped.insert(ev).second) << "envelope popped twice";
  }
  for (std::size_t i = 0; i < events.size(); i += 2) {
    EXPECT_TRUE(popped.count(events[i].get()))
        << "surviving twin " << i << " lost";
  }
  EXPECT_EQ(popped.size(), events.size() / 2);
}

TEST_P(PendingSetKinds, ClearResets) {
  std::vector<std::unique_ptr<Event>> events;
  for (int i = 0; i < 200; ++i) {
    events.push_back(std::make_unique<Event>());
    events.back()->key = key_of(i, static_cast<std::uint64_t>(i));
  }
  PendingSet q(GetParam());
  for (auto& ev : events) q.insert(ev.get());
  q.clear();
  EXPECT_TRUE(q.empty());
  q.insert(events[3].get());
  EXPECT_EQ(q.pop_min(), events[3].get());
}

TEST_P(PendingSetKinds, ReconfigureWhileEmptySwapsBackend) {
  PendingSet q(GetParam());
  Event a;
  a.key = key_of(1.0, 1);
  q.insert(&a);
  EXPECT_EQ(q.pop_min(), &a);
  for (const Kind k : kAllQueueKinds) {
    q.configure(k);
    EXPECT_EQ(q.kind(), k);
    q.insert(&a);
    EXPECT_EQ(q.pop_min(), &a);
  }
}

// Randomized differential test against std::multiset as the oracle — the
// same contract test_splay_queue.cpp runs, applied uniformly to every
// backend through the facade.
TEST_P(PendingSetKinds, MatchesMultisetOracle) {
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const {
      return a->key < b->key;
    }
  };
  util::ReversibleRng rng(GetParam() == Kind::Multiset   ? 11
                          : GetParam() == Kind::Splay    ? 22
                          : GetParam() == Kind::Ladder   ? 33
                                                         : 44);
  std::vector<std::unique_ptr<Event>> storage;
  PendingSet q(GetParam());
  std::multiset<Event*, KeyLess> oracle;
  std::vector<Event*> live;

  for (int op = 0; op < 20000; ++op) {
    const auto action = rng.integer(0, 9);
    if (action <= 4 || live.empty()) {  // insert (biased)
      // Coarse timestamps force frequent duplicate keys.
      const double ts = static_cast<double>(rng.integer(0, 40));
      const std::uint64_t tie = rng.integer(0, 6);
      storage.push_back(std::make_unique<Event>());
      storage.back()->key = key_of(ts, tie);
      Event* ev = storage.back().get();
      q.insert(ev);
      oracle.insert(ev);
      live.push_back(ev);
    } else if (action <= 7) {  // pop_min
      Event* got = q.pop_min();
      ASSERT_FALSE(oracle.empty());
      ASSERT_NE(got, nullptr);
      // Any event with the minimal key is acceptable.
      EXPECT_EQ(got->key, (*oracle.begin())->key);
      auto [lo, hi] = oracle.equal_range(got);
      bool found = false;
      for (auto it = lo; it != hi; ++it) {
        if (*it == got) {
          oracle.erase(it);
          found = true;
          break;
        }
      }
      ASSERT_TRUE(found);
      live.erase(std::find(live.begin(), live.end(), got));
    } else {  // erase random live event
      const auto idx = rng.integer(0, live.size() - 1);
      Event* victim = live[idx];
      ASSERT_TRUE(q.erase(victim));
      auto [lo, hi] = oracle.equal_range(victim);
      for (auto it = lo; it != hi; ++it) {
        if (*it == victim) {
          oracle.erase(it);
          break;
        }
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(q.size(), oracle.size());
    ASSERT_EQ(q.empty(), oracle.empty());
    if (!oracle.empty()) {
      ASSERT_EQ(q.peek_min()->key, (*oracle.begin())->key);
    }
  }
  // Drain and verify full ordering.
  while (!oracle.empty()) {
    Event* got = q.pop_min();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->key, (*oracle.begin())->key);
    auto [lo, hi] = oracle.equal_range(got);
    for (auto it = lo; it != hi; ++it) {
      if (*it == got) {
        oracle.erase(it);
        break;
      }
    }
  }
  EXPECT_TRUE(q.empty());
}

// Wide timestamp spread (forces calendar resizes and ladder rung spawns) and
// then a narrow burst (forces the degenerate all-one-bucket paths).
TEST_P(PendingSetKinds, SurvivesSkewedTimestampDistributions) {
  util::ReversibleRng rng(5);
  std::vector<std::unique_ptr<Event>> storage;
  PendingSet q(GetParam());
  for (int i = 0; i < 4000; ++i) {
    storage.push_back(std::make_unique<Event>());
    const double ts = (i % 3 == 0)
                          ? rng.uniform() * 1e6     // wide
                          : 500.0 + rng.uniform();  // narrow cluster
    storage.back()->key = key_of(ts, rng.integer(0, 3));
    q.insert(storage.back().get());
  }
  // Identical-timestamp flood (zero span).
  for (int i = 0; i < 512; ++i) {
    storage.push_back(std::make_unique<Event>());
    storage.back()->key = key_of(777.0, 9);
    q.insert(storage.back().get());
  }
  EventKey last = kMinKey;
  std::size_t popped = 0;
  while (Event* ev = q.pop_min()) {
    ASSERT_TRUE(last < ev->key || last == ev->key);
    last = ev->key;
    ++popped;
  }
  EXPECT_EQ(popped, storage.size());
}

// Regression for the long-run Time Warp "cancellation race"
// (pe.pending.erase victim-missing asserts at --pes=4 --n=32 --steps=4000).
// Root cause: the ladder queue's fixed 1e-12 minimum rung width is below the
// double ULP at engine-scale timestamps (~7.3e-12 at ts ~3.3e4), so a deep
// rung cascade over an ULP-spaced cluster subdivides past the representable
// resolution; accumulated fl(start + width*cur) rounding then exceeded the
// +2-bucket coverage slack and the filing clamp pushed events behind the
// consumed frontier — silently leaked or popped out of key order.
//
// This drives the exact failing geometry deterministically: a 2000-event
// spread that makes rung 0 ~1.4e-8 wide, a 550-event cluster within a few
// ULPs that cascades to the minimum width, then a sweep drain inserting
// ULP-offset events and erasing near the frontier at every stage of rung
// consumption, differentially checked against a multiset oracle. On the
// unfixed ladder this trips an ULP-level pop inversion (got ts one ULP above
// want) or a leaked erase within a few hundred operations.
TEST_P(PendingSetKinds, UlpClusterCascadeMatchesOracle) {
  struct KeyLess {
    bool operator()(const Event* a, const Event* b) const {
      return a->key < b->key;
    }
  };
  for (const double base : {32772.09, 32833.46, 17000.0}) {
    std::mt19937 rng(1);
    std::vector<std::unique_ptr<Event>> storage;
    PendingSet q(GetParam());
    std::multiset<Event*, KeyLess> oracle;
    const double ulp = std::nextafter(base, 1e308) - base;
    std::uint64_t tie = 0;
    const auto mk = [&](double ts) {
      storage.push_back(std::make_unique<Event>());
      Event* ev = storage.back().get();
      ev->key = key_of(ts, ++tie);
      q.insert(ev);
      oracle.insert(ev);
    };
    const auto pop_check = [&]() {
      Event* got = q.pop_min();
      ASSERT_FALSE(oracle.empty());
      ASSERT_NE(got, nullptr) << "pop_min lost an event (leak)";
      ASSERT_EQ(got->key.ts, (*oracle.begin())->key.ts)
          << "pop order diverged from oracle at base " << base;
      auto [lo, hi] = oracle.equal_range(got);
      const auto it = std::find(lo, hi, got);
      ASSERT_NE(it, hi);
      oracle.erase(it);
    };
    const double span = 3.6e-4;
    for (int i = 0; i < 2000; ++i) {
      mk(base + span * static_cast<double>(rng() % 100000) / 100000.0);
    }
    const double tc = base + span * 0.11;
    for (int i = 0; i < 400; ++i) mk(tc);
    for (int i = 0; i < 150; ++i) {
      mk(tc + static_cast<double>(static_cast<int>(rng() % 13) - 6) * ulp);
    }
    // Drain up to the cluster edge — drives the rung cascade.
    while (!oracle.empty() && (*oracle.begin())->key.ts < tc - 8.0 * ulp) {
      ASSERT_NO_FATAL_FAILURE(pop_check());
    }
    // Sweep drain: ULP-offset inserts and near-frontier erases at every
    // stage of rung consumption — the rollback/annihilation pattern.
    int budget = 2500, k = 0, er = 0;
    while (!oracle.empty()) {
      ASSERT_NO_FATAL_FAILURE(pop_check());
      if (budget > 0 && !oracle.empty()) {
        const double front = (*oracle.begin())->key.ts;
        mk(front + static_cast<double>(k % 13) * ulp);
        ++k;
        --budget;
        if (++er % 5 == 0) {
          auto it = oracle.begin();
          std::advance(it, static_cast<long>(
                               rng() % std::min<std::size_t>(oracle.size(),
                                                             24)));
          Event* victim = *it;
          ASSERT_TRUE(q.erase(victim))
              << "pending event vanished before erase (leak) at ts "
              << victim->key.ts;
          oracle.erase(it);
        }
      }
      ASSERT_EQ(q.size(), oracle.size());
    }
    EXPECT_EQ(q.pop_min(), nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PendingSetKinds,
                         ::testing::ValuesIn(kAllQueueKinds), KindName());

}  // namespace
}  // namespace hp::des
