#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "des/event.hpp"
#include "des/time.hpp"

namespace hp::des {
namespace {

TEST(EventKey, OrdersByTimestampFirst) {
  const EventKey a{1.0, 99, 9, 9, 9};
  const EventKey b{2.0, 0, 0, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LE(a, b);
  EXPECT_GE(b, a);
}

TEST(EventKey, TiebreakChainIsDeterministic) {
  const EventKey a{1.0, 5, 0, 1, 0};
  const EventKey b{1.0, 6, 0, 1, 0};
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
  EXPECT_EQ(a, a);
}

TEST(EventKey, TotalOrderIsStrictWeak) {
  std::vector<EventKey> keys = {
      {1.0, 2, 3, 4, 5}, {1.0, 2, 3, 4, 4}, {1.0, 2, 3, 3, 5},
      {1.0, 2, 2, 4, 5}, {1.0, 1, 3, 4, 5}, {0.5, 9, 9, 9, 9},
      {2.0, 0, 0, 0, 0},
  };
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
  // Sorting is order-independent (total order).
  auto keys2 = keys;
  std::reverse(keys2.begin(), keys2.end());
  std::sort(keys2.begin(), keys2.end());
  EXPECT_EQ(keys, keys2);
}

TEST(EventKey, MinKeySortsFirst) {
  const EventKey real{0.0, 0, 0, 0, 0};
  EXPECT_LT(kMinKey, real);
}

TEST(EventKey, HashDistinguishesComponents) {
  const EventKeyHash h;
  const EventKey base{1.0, 2, 3, 4, 5};
  EventKey other = base;
  other.send_index = 6;
  EXPECT_NE(h(base), h(other));
  other = base;
  other.ts = 1.5;
  EXPECT_NE(h(base), h(other));
  other = base;
  other.tie = 7;
  EXPECT_NE(h(base), h(other));
  EXPECT_EQ(h(base), h(base));
}

TEST(Event, PayloadRoundTrip) {
  struct Msg {
    int a;
    double b;
  };
  Event ev;
  ev.msg<Msg>() = Msg{7, 3.5};
  EXPECT_EQ(ev.msg<Msg>().a, 7);
  EXPECT_DOUBLE_EQ(ev.msg<Msg>().b, 3.5);
}

TEST(EventPool, RecyclesEnvelopes) {
  EventPool pool;
  Event* a = pool.allocate();
  a->children.push_back(ChildRef{EventKey{}, 0, 0, 0});
  // Storage is slab-granular: the first allocation commits a whole slab.
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  EXPECT_EQ(pool.allocated(), kSlabEnvelopes);
  EXPECT_EQ(pool.pool_bytes(), kSlabEnvelopes * sizeof(Event));
  EXPECT_EQ(pool.free_count(), kSlabEnvelopes - 1);
  EXPECT_EQ(pool.live(), 1);
  pool.free(a);
  EXPECT_EQ(pool.free_count(), kSlabEnvelopes);
  EXPECT_EQ(pool.live(), 0);
  Event* b = pool.allocate();
  EXPECT_EQ(b, a) << "the free list is LIFO: the freed envelope comes back";
  EXPECT_TRUE(b->children.empty()) << "free must clear the child list";
  EXPECT_EQ(b->status, EventStatus::Free);
  Event* c = pool.allocate();
  EXPECT_NE(c, b);
  // Both fit in the first slab; no new storage.
  EXPECT_EQ(pool.slabs_allocated(), 1u);
  EXPECT_EQ(pool.allocated(), kSlabEnvelopes);
  pool.free(b);
  pool.free(c);
}

}  // namespace
}  // namespace hp::des
