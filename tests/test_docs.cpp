// Documentation consistency tests.
//
// The docs tree is part of the contract: docs/METRICS.md must name every
// registered obs counter, every phase timer and every monitor JSONL key, and
// docs/CLI.md must cover the user-facing flag set. These tests grep the
// checked-in markdown (via the HP_SOURCE_DIR compile definition) so a PR
// that adds a counter without documenting it fails in CI rather than rotting
// silently.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace {

std::string read_file(const std::string& rel) {
  const std::string path = std::string(HP_SOURCE_DIR) + "/" + rel;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool mentions(const std::string& doc, const std::string& needle) {
  return doc.find(needle) != std::string::npos;
}

TEST(DocsTree, CoreDocumentsExistAndAreNonTrivial) {
  const char* files[] = {
      "README.md",          "DESIGN.md",        "EXPERIMENTS.md",
      "docs/ARCHITECTURE.md", "docs/METRICS.md", "docs/CLI.md",
      "docs/GVT.md",
  };
  for (const char* f : files) {
    EXPECT_GT(read_file(f).size(), 500u) << f << " is missing or trivial";
  }
}

// Every registered counter name appears in the metrics reference. This is
// the doc-rot tripwire: adding a Counter enum entry forces a kCounterDefs
// entry (static_assert in test_obs), and this test forces the docs row.
TEST(MetricsDoc, CoversEveryRegisteredCounter) {
  const std::string doc = read_file("docs/METRICS.md");
  for (std::size_t c = 0; c < hp::obs::kNumCounters; ++c) {
    EXPECT_TRUE(mentions(doc, hp::obs::kCounterDefs[c].name))
        << "docs/METRICS.md does not document counter '"
        << hp::obs::kCounterDefs[c].name << "'";
  }
}

TEST(MetricsDoc, CoversEveryPhaseTimer) {
  const std::string doc = read_file("docs/METRICS.md");
  for (std::size_t p = 0; p < hp::obs::kNumPhases; ++p) {
    EXPECT_TRUE(
        mentions(doc, hp::obs::phase_name(static_cast<hp::obs::Phase>(p))))
        << "docs/METRICS.md does not document phase '"
        << hp::obs::phase_name(static_cast<hp::obs::Phase>(p)) << "'";
  }
}

// Every latency-telemetry metric key (the JSON latency block and the
// hp_<name> Prometheus families are both derived from these names).
TEST(MetricsDoc, CoversEveryLatencyMetric) {
  const std::string doc = read_file("docs/METRICS.md");
  for (std::size_t m = 0; m < hp::obs::kNumLatencyMetrics; ++m) {
    const char* name =
        hp::obs::latency_metric_name(static_cast<hp::obs::LatencyMetric>(m));
    EXPECT_TRUE(mentions(doc, name))
        << "docs/METRICS.md does not document latency metric '" << name << "'";
  }
}

// The monitor JSONL record keys (obs/monitor.cpp emit order). Kept as a
// literal list on purpose: if emit() gains a key, this list and the doc must
// both move, which is exactly the review nudge we want.
TEST(MetricsDoc, CoversEveryMonitorKey) {
  const std::string doc = read_file("docs/METRICS.md");
  const char* keys[] = {
      "round",         "t_seconds",    "gvt",
      "processed",     "rolled_back",  "event_rate",
      "rollback_rate", "inbox_depth",  "pool_live",
      "pool_bytes",    "throttled_pes", "blocked_pes",
      "kp_migrations", "mapping_epoch", "gvt_mode",
      "epoch",         "in_flight",    "commit_latency_p99_us",
      "top_offender_kp", "top_offender_events",
  };
  for (const char* k : keys) {
    EXPECT_TRUE(mentions(doc, k))
        << "docs/METRICS.md does not document monitor key '" << k << "'";
  }
}

TEST(CliDoc, CoversTheUserFacingFlagSet) {
  const std::string doc = read_file("docs/CLI.md");
  const char* flags[] = {
      "--chaos=", "--pool-budget", "--monitor", "--migrate=",
      "--json=",  "--csv=",        "--pes",     "--trace",
      "--fc=",    "--telemetry",   "--metrics-endpoint=",
      "--metrics-out=", "--checkpoint=", "--restore=", "--watchdog=",
      "--gvt=",
  };
  // ...and the full --gvt= grammar: both algorithm names and both keys.
  for (const char* k : {"mode=", "barrier", "epoch", "interval="}) {
    EXPECT_TRUE(mentions(doc, k))
        << "docs/CLI.md does not document --gvt= key '" << k << "'";
  }
  // ...and the full --fc= grammar: every key and scheme name.
  for (const char* k : {"scheme=", "qcap=", "flit=", "credit_delay=",
                        "saf", "vct", "wormhole"}) {
    EXPECT_TRUE(mentions(doc, k))
        << "docs/CLI.md does not document --fc= key '" << k << "'";
  }
  // ...and the crash-safety trio's grammar keys plus the distinct exit code.
  for (const char* k : {"every=", "dir=", "timeout=", "poll=", "86"}) {
    EXPECT_TRUE(mentions(doc, k))
        << "docs/CLI.md does not document crash-safety key '" << k << "'";
  }
  for (const char* f : flags) {
    EXPECT_TRUE(mentions(doc, f))
        << "docs/CLI.md does not document flag '" << f << "'";
  }
}

TEST(DocsTree, ReadmeAndDesignLinkTheDocsTree) {
  const std::string readme = read_file("README.md");
  EXPECT_TRUE(mentions(readme, "docs/ARCHITECTURE.md"));
  EXPECT_TRUE(mentions(readme, "docs/METRICS.md"));
  EXPECT_TRUE(mentions(readme, "docs/CLI.md"));
  const std::string design = read_file("DESIGN.md");
  EXPECT_TRUE(mentions(design, "docs/ARCHITECTURE.md"));
}

TEST(ArchitectureDoc, WalksTheLayersAndTheRemotePath) {
  const std::string doc = read_file("docs/ARCHITECTURE.md");
  // Layer map: every library layer is named.
  for (const char* layer : {"util", "obs", "des", "net", "models"}) {
    EXPECT_TRUE(mentions(doc, layer)) << "missing layer '" << layer << "'";
  }
  // Engine lifecycle and the remote event walkthrough.
  for (const char* s : {"rollback", "GVT", "fossil", "migrat", "inbox",
                        "anti-message"}) {
    EXPECT_TRUE(mentions(doc, s)) << "missing lifecycle term '" << s << "'";
  }
}

TEST(ArchitectureDoc, DescribesCheckpointRestoreAndFailureHandling) {
  const std::string doc = read_file("docs/ARCHITECTURE.md");
  for (const char* s :
       {"Checkpoint/restore protocol", "Failure handling", "fence",
        "quiesce", "CheckpointImage", "FNV-1a", "tmp", "rename",
        "WatchdogHeart", "PeBeacon", "fail_fast", "exit code",
        "min_width_at", "ULP"}) {
    EXPECT_TRUE(mentions(doc, s))
        << "missing checkpoint/failure term '" << s << "'";
  }
}

// The GVT protocol document: both algorithms, the transient-message
// accounting that makes the asynchronous close sound, and the rounds that
// anchor to a close.
TEST(GvtDoc, DescribesBothAlgorithmsAndTheAccountingArgument) {
  const std::string doc = read_file("docs/GVT.md");
  for (const char* s :
       {"barrier", "epoch", "Mattern", "transient", "cut", "send",
        "receive", "in flight", "fossil", "checkpoint", "migration",
        "commit", "ack", "monotone", "gvt_mode"}) {
    EXPECT_TRUE(mentions(doc, s)) << "missing GVT term '" << s << "'";
  }
}

TEST(ArchitectureDoc, DescribesTheFlowControlSchemeFamily) {
  const std::string doc = read_file("docs/ARCHITECTURE.md");
  for (const char* s : {"FlowControlScheme", "store-and-forward",
                        "cut-through", "wormhole", "credit", "flit",
                        "BufferModel", "run_flow_control"}) {
    EXPECT_TRUE(mentions(doc, s))
        << "missing flow-control term '" << s << "'";
  }
}

}  // namespace
