// Latency telemetry unit tests: the HDR histogram's bucket math and
// quantiles, the lock-free SPSC sample ring, and the TelemetryHub
// collector/exposition contract (Prometheus text, metrics-out file,
// finalize_into fold). The engine-level invariant — committed results are
// bit-identical with telemetry on or off — is pinned in test_obs and by
// determinism_check --telemetry; here we pin the pieces.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/latency.hpp"
#include "obs/telemetry.hpp"

namespace hp::obs {
namespace {

using Hist = LatencyHistogram;

// Every enumerator has a name (constant-evaluated: a new LatencyMetric
// without a latency_metric_name case fails to compile here).
static_assert(latency_metric_name(LatencyMetric::QueueDwell) != nullptr);
static_assert(latency_metric_name(LatencyMetric::CommitLatency) != nullptr);
static_assert(latency_metric_name(LatencyMetric::RollbackCost) != nullptr);
static_assert(latency_metric_name(LatencyMetric::InboxDwell) != nullptr);

// Tier 0 is exact: values below kSubBuckets index themselves.
static_assert(Hist::bucket_of(0) == 0);
static_assert(Hist::bucket_of(31) == 31);
// First value past tier 0: bit_width(32)=6 -> tier 1, sub = 32>>1 = 16.
static_assert(Hist::bucket_of(32) == Hist::kSubBuckets + 16);
static_assert(Hist::bucket_of(63) == Hist::kSubBuckets + 31);
static_assert(Hist::bucket_of(64) == 2 * Hist::kSubBuckets + 16);
// The top of the uint64 range still lands inside the table.
static_assert(Hist::bucket_of(~std::uint64_t{0}) < Hist::kNumBuckets);

TEST(LatencyHistogram, BucketEdgesContainTheirValues) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{31},
        std::uint64_t{32}, std::uint64_t{33}, std::uint64_t{1023},
        std::uint64_t{1024}, std::uint64_t{123456789},
        std::uint64_t{1} << 40, (std::uint64_t{1} << 40) + 12345,
        ~std::uint64_t{0} >> 1}) {
    const std::uint32_t b = Hist::bucket_of(v);
    EXPECT_LE(Hist::bucket_lo(b), v) << "v=" << v;
    EXPECT_LT(v, Hist::bucket_hi(b)) << "v=" << v;
    // The documented quantization bound: bucket width <= lo / 16 for every
    // tier past the exact one, i.e. ~6% relative error.
    if (v >= Hist::kSubBuckets) {
      EXPECT_LE(Hist::bucket_hi(b) - Hist::bucket_lo(b),
                Hist::bucket_lo(b) / (Hist::kSubBuckets / 2))
          << "v=" << v;
    }
  }
}

TEST(LatencyHistogram, RecordTracksCountSumMax) {
  Hist h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.5), 0.0);  // empty -> 0 (shared helper)
  h.record(10);
  h.record(20);
  h.record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum_ns(), 1030u);
  EXPECT_EQ(h.max_ns(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1030.0 / 3.0);
}

TEST(LatencyHistogram, QuantilesAreMonotoneAndBracketed) {
  Hist h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  double prev = -1.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double x = h.quantile_ns(q);
    EXPECT_GE(x, prev) << "q=" << q;
    prev = x;
  }
  // ~6% quantization error at every level.
  EXPECT_NEAR(h.quantile_ns(0.50), 5000.0, 0.06 * 5000.0);
  EXPECT_NEAR(h.quantile_ns(0.99), 9900.0, 0.06 * 9900.0);
  EXPECT_LE(h.quantile_ns(1.0),
            static_cast<double>(Hist::bucket_hi(Hist::bucket_of(10000))));
}

TEST(LatencyHistogram, MergeEqualsRecordingEverythingInOne) {
  Hist a, b, all;
  for (std::uint64_t v : {5u, 40u, 700u}) {
    a.record(v);
    all.record(v);
  }
  for (std::uint64_t v : {1u, 40u, 9000000u}) {
    b.record(v);
    all.record(v);
  }
  Hist ab = a;
  ab.merge(b);
  EXPECT_EQ(ab, all);
  // Commutative: the fold order cannot change the aggregate.
  Hist ba = b;
  ba.merge(a);
  EXPECT_EQ(ba, ab);
}

TEST(TelemetryRing, PushDrainRoundTrips) {
  TelemetryRing ring(8);
  ring.try_push(LatencyMetric::QueueDwell, 11);
  ring.try_push(LatencyMetric::CommitLatency, 22);
  std::vector<TelemetrySample> got;
  EXPECT_EQ(ring.drain([&](const TelemetrySample& s) { got.push_back(s); }),
            2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].value_ns, 11u);
  EXPECT_EQ(got[0].metric,
            static_cast<std::uint32_t>(LatencyMetric::QueueDwell));
  EXPECT_EQ(got[1].value_ns, 22u);
  EXPECT_EQ(ring.dropped(), 0u);
  // Drained ring is empty.
  EXPECT_EQ(ring.drain([](const TelemetrySample&) {}), 0u);
}

TEST(TelemetryRing, OverflowDropsAndCountsInsteadOfBlocking) {
  TelemetryRing ring(4);  // capacity rounds to a power of two (4)
  ASSERT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.try_push(LatencyMetric::QueueDwell, i);
  }
  EXPECT_EQ(ring.dropped(), 6u);
  std::size_t drained = ring.drain([](const TelemetrySample&) {});
  EXPECT_EQ(drained, 4u);
  // Space freed: pushes succeed again and the drop counter stays put.
  ring.try_push(LatencyMetric::QueueDwell, 99);
  EXPECT_EQ(ring.drain([](const TelemetrySample&) {}), 1u);
  EXPECT_EQ(ring.dropped(), 6u);
}

TEST(TelemetryHub, FinalizeFoldsRingsIntoTheReport) {
  ObsConfig cfg;
  cfg.telemetry = true;
  TelemetryHub hub(cfg, 2);
  hub.ring(0).try_push(LatencyMetric::CommitLatency, 100);
  hub.ring(0).try_push(LatencyMetric::QueueDwell, 7);
  hub.ring(1).try_push(LatencyMetric::CommitLatency, 300);
  MetricsReport report;
  hub.finalize_into(report);
  EXPECT_TRUE(report.telemetry);
  EXPECT_EQ(report.latency_hist(LatencyMetric::CommitLatency).count(), 2u);
  EXPECT_EQ(report.latency_hist(LatencyMetric::CommitLatency).sum_ns(), 400u);
  EXPECT_EQ(report.latency_hist(LatencyMetric::QueueDwell).count(), 1u);
  EXPECT_EQ(report.latency_hist(LatencyMetric::RollbackCost).count(), 0u);
  EXPECT_EQ(report.total.telemetry_dropped(), 0u);  // hub never touches it
  // quantile_us reports in microseconds over the folded aggregate.
  EXPECT_GT(hub.quantile_us(LatencyMetric::CommitLatency, 0.99), 0.0);
  EXPECT_LT(hub.quantile_us(LatencyMetric::CommitLatency, 0.99), 1.0);
}

TEST(TelemetryHub, RendersThePrometheusContract) {
  ObsConfig cfg;
  cfg.telemetry = true;
  TelemetryHub hub(cfg, 1);
  hub.ring(0).try_push(LatencyMetric::CommitLatency, 1234);
  GaugeSnapshot g;
  g.gvt = 42.0;
  g.round = 7;
  g.counters[static_cast<std::size_t>(Counter::Processed)] = 100;
  hub.publish_gauges(g);
  MetricsReport report;
  hub.finalize_into(report);  // drains the ring into the histograms

  const std::string text = hub.render_prometheus();
  for (const char* needle :
       {"# TYPE hp_telemetry_dropped counter", "hp_telemetry_dropped 0",
        "# TYPE hp_gvt gauge", "hp_gvt 42", "hp_gvt_round 7",
        "hp_processed_events 100",
        "# TYPE hp_commit_latency_ns histogram",
        "hp_commit_latency_ns_bucket{le=\"+Inf\"} 1",
        "hp_commit_latency_ns_sum 1234", "hp_commit_latency_ns_count 1",
        "# TYPE hp_commit_latency_ns_quantile gauge",
        "hp_commit_latency_ns_quantile{q=\"0.99\"}",
        "# TYPE hp_queue_dwell_ns histogram",
        "hp_queue_dwell_ns_count 0"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n" << text;
  }
}

TEST(TelemetryHub, MetricsOutHoldsAFinalSnapshot) {
  ObsConfig cfg;
  cfg.telemetry = true;
  cfg.metrics_out = ::testing::TempDir() + "latency_metrics_out.prom";
  std::remove(cfg.metrics_out.c_str());
  {
    TelemetryHub hub(cfg, 1);
    hub.ring(0).try_push(LatencyMetric::InboxDwell, 555);
    MetricsReport report;
    hub.finalize_into(report);
  }
  std::ifstream f(cfg.metrics_out);
  ASSERT_TRUE(f.good()) << "metrics-out file missing";
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("# TYPE hp_inbox_dwell_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hp_inbox_dwell_ns_count 1"), std::string::npos);
  std::remove(cfg.metrics_out.c_str());
}

}  // namespace
}  // namespace hp::obs
