// Direct unit tests of the hot-potato event handlers, using a mock context
// that records sends instead of running an engine. Complements the
// integration tests in test_hotpotato_model.cpp with precise assertions
// about timing offsets, link claims and reverse exactness per handler.

#include <gtest/gtest.h>

#include <vector>

#include "hotpotato/model.hpp"

namespace hp::hotpotato {
namespace {

struct SentRecord {
  std::uint32_t dst;
  double ts;
  HpMsg msg;
};

// Minimal Context: allocates events locally and logs commits.
class MockContext final : public des::Context {
 public:
  MockContext(std::uint32_t self, double now, util::ReversibleRng& rng) {
    host_.key = des::EventKey{now, 0x1234, self, self, 0};
    cur_ = &host_;
    rng_ = &rng;
  }

  // Run a handler on `ev` as if the engine dispatched it.
  void attach(des::Event& ev, util::ReversibleRng& rng, bool reversing) {
    cur_ = &ev;
    rng_ = &rng;
    reversing_ = reversing;
    send_seq_ = 0;
    if (!reversing) ev.cv = 0;
  }

  std::vector<SentRecord> sent;

 protected:
  des::Event* prepare_send_(std::uint32_t dst_lp, des::Time ts) override {
    auto ev = std::make_unique<des::Event>();
    ev->key = des::EventKey{ts, 0, cur_->key.dst_lp, dst_lp, send_seq_++};
    storage_.push_back(std::move(ev));
    return storage_.back().get();
  }
  void commit_send_(des::Event* ev) override {
    sent.push_back({ev->key.dst_lp, ev->key.ts, ev->msg<HpMsg>()});
  }

 private:
  des::Event host_;
  std::vector<std::unique_ptr<des::Event>> storage_;
};

class HandlerTest : public ::testing::Test {
 protected:
  HandlerTest() {
    cfg_.n = 8;
    cfg_.injector_fraction = 1.0;
    cfg_.steps = 100;
    policy_ = std::make_unique<BhwPolicy>(cfg_.n);
    cfg_.policy = policy_.get();
    model_ = std::make_unique<HotPotatoModel>(cfg_);
    state_ = model_->make_state(5);
    rng_ = util::ReversibleRng(7);
  }

  RouterState& router() { return static_cast<RouterState&>(*state_); }

  // Events are pool objects (non-movable); fill one in place.
  void fill_event(des::Event& ev, HpEvent type, double ts,
                  std::uint32_t dst_lp, Priority prio = Priority::Sleeping,
                  std::uint8_t jitter = 2) {
    ev.key = des::EventKey{ts, 99, 4, dst_lp, 0};
    HpMsg m;
    m.type = type;
    m.prio = prio;
    m.jitter_idx = jitter;
    m.dst_row = 3;
    m.dst_col = 3;
    m.birth_step = 1;
    m.hops = 2;
    m.initial_distance = 4;
    ev.msg<HpMsg>() = m;
  }

  HotPotatoConfig cfg_;
  std::unique_ptr<BhwPolicy> policy_;
  std::unique_ptr<HotPotatoModel> model_;
  std::unique_ptr<des::LpState> state_;
  util::ReversibleRng rng_{7};
};

TEST_F(HandlerTest, ArriveAtTransitRouterSchedulesRoute) {
  // Router 5 is not (3,3): the packet must be routed, not absorbed.
  MockContext ctx(5, 20.2, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Arrive, 20.2, 5);
  ctx.attach(ev, rng_, false);
  model_->forward(*state_, ev, ctx);

  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].dst, 5u) << "ROUTE is a self-send";
  EXPECT_EQ(ctx.sent[0].msg.type, HpEvent::Route);
  // Sleeping offset 4 plus jitter/10: 20 + 4 + 0.02.
  EXPECT_NEAR(ctx.sent[0].ts, 24.02, 1e-9);
  EXPECT_EQ(router().arrivals, 1u);
  EXPECT_EQ(router().delivered, 0u);
}

TEST_F(HandlerTest, ArriveAtDestinationAbsorbs) {
  const auto dst_lp = net::Torus(8).id_of({3, 3});
  auto dst_state = model_->make_state(dst_lp);
  MockContext ctx(dst_lp, 20.2, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Arrive, 20.2, dst_lp);
  ctx.attach(ev, rng_, false);
  model_->forward(*dst_state, ev, ctx);

  EXPECT_TRUE(ctx.sent.empty()) << "absorbed packets create no events";
  auto& s = static_cast<RouterState&>(*dst_state);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_DOUBLE_EQ(s.delivery_steps.sum(), 2.0);     // hops
  EXPECT_DOUBLE_EQ(s.delivery_distance.sum(), 4.0);  // initial distance

  // Reverse restores everything.
  ctx.attach(ev, rng_, true);
  model_->reverse(*dst_state, ev, ctx);
  auto fresh = model_->make_state(dst_lp);
  EXPECT_TRUE(dst_state->equals(*fresh));
}

TEST_F(HandlerTest, SleepingPacketAtDestinationNotAbsorbedInProofMode) {
  cfg_.absorb_sleeping = false;
  model_ = std::make_unique<HotPotatoModel>(cfg_);
  const auto dst_lp = net::Torus(8).id_of({3, 3});
  auto dst_state = model_->make_state(dst_lp);
  MockContext ctx(dst_lp, 20.2, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Arrive, 20.2, dst_lp, Priority::Sleeping);
  ctx.attach(ev, rng_, false);
  model_->forward(*dst_state, ev, ctx);
  EXPECT_EQ(ctx.sent.size(), 1u) << "sleeping packet keeps routing";
  EXPECT_EQ(static_cast<RouterState&>(*dst_state).delivered, 0u);

  // An Active packet is absorbed even in proof mode.
  auto dst_state2 = model_->make_state(dst_lp);
  MockContext ctx2(dst_lp, 20.2, rng_);
  des::Event ev2;
  fill_event(ev2, HpEvent::Arrive, 20.2, dst_lp, Priority::Active);
  ctx2.attach(ev2, rng_, false);
  model_->forward(*dst_state2, ev2, ctx2);
  EXPECT_TRUE(ctx2.sent.empty());
}

TEST_F(HandlerTest, RouteClaimsLinkAndForwardsNextStep) {
  MockContext ctx(5, 24.02, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Route, 24.02, 5);
  ctx.attach(ev, rng_, false);
  model_->forward(*state_, ev, ctx);

  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].msg.type, HpEvent::Arrive);
  EXPECT_NEAR(ctx.sent[0].ts, 30.2, 1e-9) << "next step plus packet jitter";
  EXPECT_EQ(ctx.sent[0].msg.hops, 3u);
  EXPECT_EQ(router().routed, 1u);
  EXPECT_EQ(router().link_claims, 1u);
  // Exactly one link claimed at step 2.
  int claimed = 0;
  for (const auto v : router().link_claim_step) claimed += (v == 2) ? 1 : 0;
  EXPECT_EQ(claimed, 1);

  // Reverse restores the pristine router (and the message fields).
  const HpMsg before = ev.msg<HpMsg>();
  ctx.attach(ev, rng_, true);
  model_->reverse(*state_, ev, ctx);
  auto fresh = model_->make_state(5);
  static_cast<RouterState&>(*fresh).is_injector = router().is_injector;
  EXPECT_TRUE(state_->equals(*fresh));
  EXPECT_EQ(ev.msg<HpMsg>().hops, 2u);
  EXPECT_EQ(ev.msg<HpMsg>().prio, Priority::Sleeping);
  (void)before;
}

TEST_F(HandlerTest, RouteDeflectsWhenAllGoodLinksTaken) {
  // Packet at (0,5) heading to (3,3): good = {South, West}. Claim both.
  const std::uint32_t step = 2;
  router().link_claim_step[net::dir_index(net::Dir::South)] = step;
  router().link_claim_step[net::dir_index(net::Dir::West)] = step;
  router().link_claims = 2;

  MockContext ctx(5, 24.02, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Route, 24.02, 5);
  ctx.attach(ev, rng_, false);
  model_->forward(*state_, ev, ctx);
  EXPECT_EQ(router().deflections, 1u);
  ASSERT_EQ(ctx.sent.size(), 1u);
  const net::Torus t(8);
  const auto out = ctx.sent[0].dst;
  EXPECT_TRUE(out == t.neighbor(5, net::Dir::North) ||
              out == t.neighbor(5, net::Dir::East))
      << "deflection must use a free (bad) link";
}

TEST_F(HandlerTest, InjectCreatesAndInjectsWhenLinkFree) {
  MockContext ctx(5, 26.0, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Inject, 26.0, 5);
  ev.msg<HpMsg>().type = HpEvent::Inject;
  ctx.attach(ev, rng_, false);
  model_->forward(*state_, ev, ctx);

  // Two sends: the packet's first ARRIVE and the next INJECT attempt.
  ASSERT_EQ(ctx.sent.size(), 2u);
  EXPECT_EQ(ctx.sent[0].msg.type, HpEvent::Arrive);
  EXPECT_EQ(ctx.sent[0].msg.prio, Priority::Sleeping);
  EXPECT_EQ(ctx.sent[0].msg.hops, 1u);
  EXPECT_EQ(ctx.sent[1].msg.type, HpEvent::Inject);
  EXPECT_NEAR(ctx.sent[1].ts, 36.0, 1e-9);
  EXPECT_EQ(router().injected, 1u);
  EXPECT_FALSE(router().has_pending);
  EXPECT_DOUBLE_EQ(router().inject_wait.sum(), 0.0) << "no wait on success";

  // Reverse.
  ctx.attach(ev, rng_, true);
  model_->reverse(*state_, ev, ctx);
  EXPECT_EQ(router().injected, 0u);
  EXPECT_EQ(router().link_claims, 0u);
}

TEST_F(HandlerTest, InjectWaitsWhenAllLinksClaimed) {
  for (auto& v : router().link_claim_step) v = 2;  // step of ts=26.0
  MockContext ctx(5, 26.0, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Inject, 26.0, 5);
  ev.msg<HpMsg>().type = HpEvent::Inject;
  ctx.attach(ev, rng_, false);
  model_->forward(*state_, ev, ctx);

  ASSERT_EQ(ctx.sent.size(), 1u) << "only the next INJECT attempt";
  EXPECT_EQ(ctx.sent[0].msg.type, HpEvent::Inject);
  EXPECT_EQ(router().injected, 0u);
  EXPECT_TRUE(router().has_pending);
  EXPECT_EQ(router().pending_since_step, 2u);
}

TEST_F(HandlerTest, HeartbeatKeepsPulsing) {
  MockContext ctx(5, 20.0, rng_);
  des::Event ev;
  fill_event(ev, HpEvent::Heartbeat, 20.0, 5);
  ev.msg<HpMsg>().type = HpEvent::Heartbeat;
  ctx.attach(ev, rng_, false);
  model_->forward(*state_, ev, ctx);
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].msg.type, HpEvent::Heartbeat);
  EXPECT_NEAR(ctx.sent[0].ts, 30.0, 1e-9);
}

}  // namespace
}  // namespace hp::hotpotato
