#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"

namespace hp::util {
namespace {

struct Node : MpscNode {
  int value = 0;
};

TEST(MpscQueue, EmptyHintTracksConsumerCursor) {
  MpscQueue<Node> q;
  EXPECT_TRUE(q.empty_hint());

  Node a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  q.push(&a);
  EXPECT_FALSE(q.empty_hint());

  b.mpsc_next.store(&c, std::memory_order_relaxed);
  q.push_chain(&b, &c);
  EXPECT_FALSE(q.empty_hint());

  // Hint must stay non-empty while any pushed node is unconsumed, even as
  // the consumer cursor walks past the stub.
  EXPECT_EQ(q.pop(), &a);
  EXPECT_FALSE(q.empty_hint());
  EXPECT_EQ(q.pop(), &b);
  EXPECT_FALSE(q.empty_hint());
  EXPECT_EQ(q.pop(), &c);
  EXPECT_TRUE(q.empty_hint());
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty_hint());
}

// Regression for the stranded-envelope bug: the consumer drains with the
// same gate TimeWarpEngine::drain_inbox uses (skip when empty_hint()). The
// old tail_-only hint could permanently report empty after pop()'s
// stub-recycle raced with a push, so this loop would never terminate; the
// consumer-aware hint must eventually surface every fully-linked node.
TEST(MpscQueue, HintedDrainDeliversEverythingUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  constexpr int kTotal = kProducers * kPerProducer;

  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node[]>> nodes;
  for (int p = 0; p < kProducers; ++p)
    nodes.push_back(std::make_unique<Node[]>(kPerProducer));

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;
        q.push(&nodes[p][i]);
      }
    });
  }

  std::vector<char> seen(kTotal, 0);
  int received = 0;
  // Pops interleave with live pushes, repeatedly exercising the stub-recycle
  // path the bug lived in. No producer-side completion flag gates the loop:
  // termination relies solely on the empty_hint contract.
  while (received < kTotal) {
    if (q.empty_hint()) {
      std::this_thread::yield();
      continue;
    }
    while (Node* n = q.pop()) {
      ASSERT_GE(n->value, 0);
      ASSERT_LT(n->value, kTotal);
      ASSERT_EQ(seen[n->value], 0) << "node delivered twice";
      seen[n->value] = 1;
      ++received;
    }
  }
  for (auto& t : producers) t.join();

  EXPECT_TRUE(q.empty_hint());
  EXPECT_EQ(q.pop(), nullptr);
}

// Per-producer FIFO: two pushes by the same thread must pop in push order.
TEST(MpscQueue, PerProducerFifoUnderContention) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 10000;

  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node[]>> nodes;
  for (int p = 0; p < kProducers; ++p)
    nodes.push_back(std::make_unique<Node[]>(kPerProducer));
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;  // owner id + sequence
        q.push(&nodes[p][i]);
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const int owner = n->value / kPerProducer;
    ASSERT_EQ(n->value % kPerProducer, next_expected[owner]);
    ++next_expected[owner];
    ++received;
  }
  for (auto& t : producers) t.join();
}

// Duplicated payloads are legal (the chaos dup-anti fault re-delivers a
// copied anti as a distinct node): the queue must treat equal values in
// distinct nodes as independent items and deliver every node exactly once.
TEST(MpscQueue, DuplicatedValuesInDistinctNodesAllArrive) {
  constexpr int kProducers = 3;
  constexpr int kValues = 5000;
  constexpr int kCopies = 2;  // every value pushed twice by its producer

  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node[]>> nodes;
  for (int p = 0; p < kProducers; ++p)
    nodes.push_back(std::make_unique<Node[]>(kValues * kCopies));

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kValues; ++i) {
        for (int c = 0; c < kCopies; ++c) {
          Node& n = nodes[p][i * kCopies + c];
          n.value = p * kValues + i;  // same value for both copies
          q.push(&n);
        }
      }
    });
  }

  std::vector<int> count(kProducers * kValues, 0);
  std::vector<char> node_seen_twice(kProducers * kValues, 0);
  int received = 0;
  std::vector<Node*> first_node(kProducers * kValues, nullptr);
  while (received < kProducers * kValues * kCopies) {
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(count[n->value], kCopies) << "value delivered too many times";
    if (count[n->value] == 0) {
      first_node[n->value] = n;
    } else {
      // Same value, but it must be the *other* node object.
      ASSERT_NE(first_node[n->value], n) << "same node delivered twice";
      node_seen_twice[n->value] = 1;
    }
    ++count[n->value];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (int v = 0; v < kProducers * kValues; ++v) {
    EXPECT_EQ(count[v], kCopies);
    EXPECT_EQ(node_seen_twice[v], 1);
  }
  EXPECT_TRUE(q.empty_hint());
}

// Chain pushes (the batched remote-send path) interleaved with single
// pushes from other producers: per-producer order must hold even when a
// producer alternates push_chain and push, and chains from different
// producers interleave arbitrarily ("out-of-order" across producers is
// allowed, within a producer it is not).
TEST(MpscQueue, ChainAndSinglePushesKeepPerProducerOrder) {
  constexpr int kProducers = 3;
  constexpr int kBatches = 4000;
  constexpr int kBatchLen = 3;  // nodes per chain
  constexpr int kPerProducer = kBatches * (kBatchLen + 1);

  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node[]>> nodes;
  for (int p = 0; p < kProducers; ++p)
    nodes.push_back(std::make_unique<Node[]>(kPerProducer));

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      int seq = 0;
      for (int b = 0; b < kBatches; ++b) {
        // One chain of kBatchLen nodes...
        Node* first = &nodes[p][seq];
        for (int i = 0; i < kBatchLen; ++i) {
          Node& n = nodes[p][seq];
          n.value = p * kPerProducer + seq;
          ++seq;
          if (i + 1 < kBatchLen) {
            n.mpsc_next.store(&nodes[p][seq], std::memory_order_relaxed);
          }
        }
        q.push_chain(first, &nodes[p][seq - 1]);
        // ...then one single push.
        Node& s = nodes[p][seq];
        s.value = p * kPerProducer + seq;
        ++seq;
        q.push(&s);
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const int owner = n->value / kPerProducer;
    ASSERT_EQ(n->value % kPerProducer, next_expected[owner])
        << "per-producer FIFO violated across chain/single boundary";
    ++next_expected[owner];
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty_hint());
}

}  // namespace
}  // namespace hp::util
