#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "util/mpsc_queue.hpp"

namespace hp::util {
namespace {

struct Node : MpscNode {
  int value = 0;
};

TEST(MpscQueue, EmptyHintTracksConsumerCursor) {
  MpscQueue<Node> q;
  EXPECT_TRUE(q.empty_hint());

  Node a, b, c;
  a.value = 1;
  b.value = 2;
  c.value = 3;
  q.push(&a);
  EXPECT_FALSE(q.empty_hint());

  b.mpsc_next.store(&c, std::memory_order_relaxed);
  q.push_chain(&b, &c);
  EXPECT_FALSE(q.empty_hint());

  // Hint must stay non-empty while any pushed node is unconsumed, even as
  // the consumer cursor walks past the stub.
  EXPECT_EQ(q.pop(), &a);
  EXPECT_FALSE(q.empty_hint());
  EXPECT_EQ(q.pop(), &b);
  EXPECT_FALSE(q.empty_hint());
  EXPECT_EQ(q.pop(), &c);
  EXPECT_TRUE(q.empty_hint());
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.empty_hint());
}

// Regression for the stranded-envelope bug: the consumer drains with the
// same gate TimeWarpEngine::drain_inbox uses (skip when empty_hint()). The
// old tail_-only hint could permanently report empty after pop()'s
// stub-recycle raced with a push, so this loop would never terminate; the
// consumer-aware hint must eventually surface every fully-linked node.
TEST(MpscQueue, HintedDrainDeliversEverythingUnderContention) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  constexpr int kTotal = kProducers * kPerProducer;

  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node[]>> nodes;
  for (int p = 0; p < kProducers; ++p)
    nodes.push_back(std::make_unique<Node[]>(kPerProducer));

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;
        q.push(&nodes[p][i]);
      }
    });
  }

  std::vector<char> seen(kTotal, 0);
  int received = 0;
  // Pops interleave with live pushes, repeatedly exercising the stub-recycle
  // path the bug lived in. No producer-side completion flag gates the loop:
  // termination relies solely on the empty_hint contract.
  while (received < kTotal) {
    if (q.empty_hint()) {
      std::this_thread::yield();
      continue;
    }
    while (Node* n = q.pop()) {
      ASSERT_GE(n->value, 0);
      ASSERT_LT(n->value, kTotal);
      ASSERT_EQ(seen[n->value], 0) << "node delivered twice";
      seen[n->value] = 1;
      ++received;
    }
  }
  for (auto& t : producers) t.join();

  EXPECT_TRUE(q.empty_hint());
  EXPECT_EQ(q.pop(), nullptr);
}

// Per-producer FIFO: two pushes by the same thread must pop in push order.
TEST(MpscQueue, PerProducerFifoUnderContention) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 10000;

  MpscQueue<Node> q;
  std::vector<std::unique_ptr<Node[]>> nodes;
  for (int p = 0; p < kProducers; ++p)
    nodes.push_back(std::make_unique<Node[]>(kPerProducer));
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &nodes, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].value = p * kPerProducer + i;  // owner id + sequence
        q.push(&nodes[p][i]);
      }
    });
  }

  std::vector<int> next_expected(kProducers, 0);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    Node* n = q.pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    const int owner = n->value / kPerProducer;
    ASSERT_EQ(n->value % kPerProducer, next_expected[owner]);
    ++next_expected[owner];
    ++received;
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace hp::util
