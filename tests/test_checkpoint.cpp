// Checkpoint/restore + watchdog configuration tests.
//
// The invariant under test: a checkpoint image is an engine-agnostic
// committed cut, so a run interrupted at any image and restored — by the
// same kernel or a different one — finishes with bit-identical model state
// (PholdModel::digest) and the same total committed-event count as the
// uninterrupted run. The file-format tests pin down the failure mode that
// matters for crash safety: a truncated or bit-flipped image is *rejected*,
// never silently restored.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "des/checkpoint.hpp"
#include "des/engine.hpp"
#include "des/phold.hpp"
#include "des/watchdog.hpp"
#include "util/bytes.hpp"

namespace hp::des {
namespace {

using obs::Counter;

// ---------------------------------------------------------------- parsing

TEST(CheckpointConfigParse, FullSpec) {
  CheckpointConfig c;
  std::string err;
  ASSERT_TRUE(CheckpointConfig::parse("every=5000, dir=images", c, err))
      << err;
  EXPECT_EQ(c.every, 5000u);
  EXPECT_EQ(c.dir, "images");
  EXPECT_TRUE(c.enabled());
}

TEST(CheckpointConfigParse, DirDefaultsWhenOmitted) {
  CheckpointConfig c;
  std::string err;
  ASSERT_TRUE(CheckpointConfig::parse("every=100", c, err)) << err;
  EXPECT_EQ(c.every, 100u);
  EXPECT_EQ(c.dir, "checkpoints");
}

TEST(CheckpointConfigParse, ToStringRoundTrips) {
  CheckpointConfig c;
  std::string err;
  ASSERT_TRUE(CheckpointConfig::parse("every=42,dir=x/y", c, err));
  CheckpointConfig d;
  ASSERT_TRUE(CheckpointConfig::parse(c.to_string(), d, err)) << err;
  EXPECT_EQ(c, d);
}

TEST(CheckpointConfigParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                 // missing required every=N
      "dir=foo",          // ditto
      "every=0",          // zero interval
      "every=-5",         // negative
      "every=abc",        // non-numeric
      "every=10x",        // trailing junk
      "every",            // no value
      "bogus=1,every=5",  // unknown key
      "=5",               // empty key
  };
  for (const char* spec : bad) {
    CheckpointConfig c;
    std::string err;
    EXPECT_FALSE(CheckpointConfig::parse(spec, c, err))
        << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(CheckpointConfigParse, FailedParseLeavesOutUntouched) {
  CheckpointConfig c;
  std::string err;
  ASSERT_TRUE(CheckpointConfig::parse("every=7,dir=keep", c, err));
  const CheckpointConfig before = c;
  EXPECT_FALSE(CheckpointConfig::parse("every=0", c, err));
  EXPECT_EQ(c, before);
}

TEST(WatchdogConfigParse, FullSpec) {
  WatchdogConfig w;
  std::string err;
  ASSERT_TRUE(WatchdogConfig::parse("timeout=5000,poll=25", w, err)) << err;
  EXPECT_EQ(w.timeout_ms, 5000u);
  EXPECT_EQ(w.poll_ms, 25u);
  EXPECT_TRUE(w.enabled());
}

TEST(WatchdogConfigParse, PollDefaultsWhenOmitted) {
  WatchdogConfig w;
  std::string err;
  ASSERT_TRUE(WatchdogConfig::parse("timeout=1000", w, err)) << err;
  EXPECT_EQ(w.timeout_ms, 1000u);
  EXPECT_EQ(w.poll_ms, 50u);
}

TEST(WatchdogConfigParse, ToStringRoundTrips) {
  WatchdogConfig w;
  std::string err;
  ASSERT_TRUE(WatchdogConfig::parse("timeout=250,poll=10", w, err));
  WatchdogConfig v;
  ASSERT_TRUE(WatchdogConfig::parse(w.to_string(), v, err)) << err;
  EXPECT_EQ(w, v);
}

TEST(WatchdogConfigParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",               // missing required timeout=N
      "poll=10",        // ditto
      "timeout=0",      // zero timeout
      "timeout=abc",    // non-numeric
      "timeout=5s",     // trailing junk
      "timeout=5,poll=0",  // zero poll
      "timeout=5,cadence=1",  // unknown key
  };
  for (const char* spec : bad) {
    WatchdogConfig w;
    std::string err;
    EXPECT_FALSE(WatchdogConfig::parse(spec, w, err)) << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

TEST(WatchdogConfigParse, FailedParseLeavesOutUntouched) {
  WatchdogConfig w;
  std::string err;
  ASSERT_TRUE(WatchdogConfig::parse("timeout=9,poll=3", w, err));
  const WatchdogConfig before = w;
  EXPECT_FALSE(WatchdogConfig::parse("timeout=zero", w, err));
  EXPECT_EQ(w, before);
}

// ----------------------------------------------------------- image codec

CheckpointImage sample_image() {
  CheckpointImage img;
  img.seed = 77;
  img.num_lps = 2;
  img.fence = 12.5;
  img.end_time = 100.0;
  img.committed = 4321;
  img.lps.resize(2);
  img.lps[0].rng_state = 0xdeadbeefcafef00dULL;
  img.lps[0].rng_draws = 19;
  img.lps[0].state = {1, 2, 3, 4};
  img.lps[1].rng_state = 42;
  img.lps[1].rng_draws = 0;
  img.lps[1].state = {};
  CheckpointEventRecord ev;
  ev.key = EventKey{13.25, 7, 0, 1, 3};
  ev.send_ts = 12.0;
  ev.payload = {9, 8, 7};
  img.events.push_back(ev);
  CheckpointEventRecord ev2;
  ev2.key = EventKey{13.25, 7, 1, 0, 4};  // same ts, tiebreak differs
  ev2.send_ts = 12.25;
  img.events.push_back(ev2);
  return img;
}

TEST(CheckpointImageCodec, RoundTripsBitExact) {
  const CheckpointImage img = sample_image();
  util::ByteSink sink;
  img.encode(sink);

  CheckpointImage out;
  util::ByteSource src(sink.data());
  std::string err;
  ASSERT_TRUE(out.decode(src, err)) << err;
  EXPECT_TRUE(src.exhausted());

  EXPECT_EQ(out.seed, img.seed);
  EXPECT_EQ(out.num_lps, img.num_lps);
  EXPECT_EQ(out.fence, img.fence);
  EXPECT_EQ(out.end_time, img.end_time);
  EXPECT_EQ(out.committed, img.committed);
  ASSERT_EQ(out.lps.size(), img.lps.size());
  for (std::size_t i = 0; i < img.lps.size(); ++i) {
    EXPECT_EQ(out.lps[i].rng_state, img.lps[i].rng_state);
    EXPECT_EQ(out.lps[i].rng_draws, img.lps[i].rng_draws);
    EXPECT_EQ(out.lps[i].state, img.lps[i].state);
  }
  ASSERT_EQ(out.events.size(), img.events.size());
  for (std::size_t i = 0; i < img.events.size(); ++i) {
    EXPECT_EQ(out.events[i].key, img.events[i].key);
    EXPECT_EQ(out.events[i].send_ts, img.events[i].send_ts);
    EXPECT_EQ(out.events[i].payload, img.events[i].payload);
  }
}

TEST(CheckpointImageCodec, TruncatedPayloadRejected) {
  util::ByteSink sink;
  sample_image().encode(sink);
  // Every strict prefix must be rejected without aborting. Stride keeps the
  // loop cheap; the interesting cuts (mid-scalar, mid-byte-blob) are covered.
  for (std::size_t cut = 0; cut < sink.size(); cut += 7) {
    CheckpointImage out;
    util::ByteSource src(sink.data().data(), cut);
    std::string err;
    EXPECT_FALSE(out.decode(src, err)) << "accepted a " << cut
                                       << "-byte prefix";
  }
}

// ------------------------------------------------------------ file format

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path p =
      std::filesystem::path(::testing::TempDir()) / ("hp_ck_" + name);
  std::filesystem::remove_all(p);
  std::filesystem::create_directories(p);
  return p.string();
}

TEST(CheckpointFile, WriteReadRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  const CheckpointImage img = sample_image();
  std::string path, err;
  ASSERT_TRUE(write_checkpoint(img, dir, 3, path, err)) << err;
  EXPECT_NE(path.find("ckpt-000003.hpck"), std::string::npos) << path;

  CheckpointImage out;
  ASSERT_TRUE(read_checkpoint(path, out, err)) << err;
  EXPECT_EQ(out.committed, img.committed);
  EXPECT_EQ(out.events.size(), img.events.size());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFile, CorruptAndTruncatedFilesRejected) {
  const std::string dir = fresh_dir("corrupt");
  std::string path, err;
  ASSERT_TRUE(write_checkpoint(sample_image(), dir, 1, path, err)) << err;

  std::vector<char> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);

  // Bit flip in the middle of the payload: checksum must catch it.
  {
    std::vector<char> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  CheckpointImage img;
  EXPECT_FALSE(read_checkpoint(path, img, err));
  EXPECT_FALSE(err.empty());

  // Truncation: header promises more payload than the file holds.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(read_checkpoint(path, img, err));

  // Garbage that is not even a header.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write("not a checkpoint", 16);
  }
  EXPECT_FALSE(read_checkpoint(path, img, err));
  std::filesystem::remove_all(dir);
}

TEST(CheckpointFile, FindLatestPicksHighestSequence) {
  const std::string dir = fresh_dir("latest");
  std::string p1, p2, p3, err;
  ASSERT_TRUE(write_checkpoint(sample_image(), dir, 1, p1, err)) << err;
  ASSERT_TRUE(write_checkpoint(sample_image(), dir, 12, p3, err)) << err;
  ASSERT_TRUE(write_checkpoint(sample_image(), dir, 2, p2, err)) << err;

  EXPECT_EQ(find_latest_checkpoint(dir), p3);
  // A direct file path resolves to itself.
  EXPECT_EQ(find_latest_checkpoint(p1), p1);
  // Nothing suitable -> empty.
  EXPECT_EQ(find_latest_checkpoint(dir + "/nonexistent"), "");
  const std::string empty = fresh_dir("latest_empty");
  EXPECT_EQ(find_latest_checkpoint(empty), "");
  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(empty);
}

TEST(CheckpointFile, RestoreRejectsConfigMismatch) {
  const std::string dir = fresh_dir("mismatch");
  const CheckpointImage img = sample_image();
  std::string path, err;
  ASSERT_TRUE(write_checkpoint(img, dir, 1, path, err)) << err;

  CheckpointImage out;
  // Matching configuration loads.
  EXPECT_TRUE(load_checkpoint_for_restore(dir, img.seed, img.num_lps,
                                          img.end_time, out, err))
      << err;
  // Any mismatch is an error, not a warning: silent divergence would break
  // the bit-identity guarantee.
  EXPECT_FALSE(load_checkpoint_for_restore(dir, img.seed + 1, img.num_lps,
                                           img.end_time, out, err));
  EXPECT_FALSE(load_checkpoint_for_restore(dir, img.seed, img.num_lps + 1,
                                           img.end_time, out, err));
  EXPECT_FALSE(load_checkpoint_for_restore(dir, img.seed, img.num_lps,
                                           img.end_time + 1.0, out, err));
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------ engine bit identity
//
// Workload shared by the engine matrix: rollback-heavy PHOLD (high remote
// fraction, small lookahead) so the Time Warp checkpoint fence actually has
// speculative state to unwind.

PholdConfig phold_config() {
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;
  return pc;
}

EngineConfig engine_config() {
  PholdConfig pc = phold_config();
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 80.0;
  ec.seed = 23;
  return ec;
}

EngineConfig parallel_config() {
  EngineConfig ec = engine_config();
  ec.num_pes = 4;
  ec.num_kps = 16;
  ec.gvt_interval_events = 96;
  return ec;
}

// Runs `kind` uninterrupted, then checkpointing every `every` commits, then
// a fresh `restore_kind` engine resumed from the latest image. Requires the
// restored continuation to land on the identical model digest and for the
// image baseline plus the continuation's commits to equal the uninterrupted
// total (RunStats of a restored run cover only the continuation).
void expect_restore_identity(EngineKind kind, EngineKind restore_kind,
                             const EngineConfig& base_cfg, std::uint64_t every,
                             const std::string& dir_name) {
  const PholdConfig pc = phold_config();
  const Time lookahead = pc.lookahead;
  const std::string dir = fresh_dir(dir_name);

  PholdModel mb(pc);
  std::unique_ptr<Engine> base =
      make_engine(kind, mb, base_cfg, lookahead);
  const RunStats bstats = base->run();

  EngineConfig ck_cfg = base_cfg;
  ck_cfg.checkpoint.every = every;
  ck_cfg.checkpoint.dir = dir;
  PholdModel m1(pc);
  std::unique_ptr<Engine> ck = make_engine(kind, m1, ck_cfg, lookahead);
  const RunStats cstats = ck->run();
  ASSERT_GT(cstats.metrics.total.checkpoints_written(), 0u)
      << "no image was ever written — the restore below would test nothing";
  // Checkpointing itself must not perturb the run.
  EXPECT_EQ(PholdModel::digest(*base), PholdModel::digest(*ck));
  EXPECT_EQ(bstats.committed_events(), cstats.committed_events());

  const std::string latest = find_latest_checkpoint(dir);
  ASSERT_FALSE(latest.empty());
  CheckpointImage img;
  std::string err;
  ASSERT_TRUE(read_checkpoint(latest, img, err)) << err;
  ASSERT_LT(img.committed, bstats.committed_events())
      << "image already covers the whole run; restore would be a no-op";

  EngineConfig rs_cfg = base_cfg;
  rs_cfg.restore_path = dir;
  PholdModel m2(pc);
  std::unique_ptr<Engine> restored =
      make_engine(restore_kind, m2, rs_cfg, lookahead);
  const RunStats rstats = restored->run();

  EXPECT_EQ(PholdModel::digest(*base), PholdModel::digest(*restored));
  EXPECT_EQ(img.committed + rstats.committed_events(),
            bstats.committed_events());
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRestore, SequentialBitIdentical) {
  expect_restore_identity(EngineKind::Sequential, EngineKind::Sequential,
                          engine_config(), 4000, "seq");
}

TEST(CheckpointRestore, TimeWarpBitIdentical) {
  expect_restore_identity(EngineKind::TimeWarp, EngineKind::TimeWarp,
                          parallel_config(), 4000, "tw");
}

TEST(CheckpointRestore, ConservativeBitIdentical) {
  expect_restore_identity(EngineKind::Conservative, EngineKind::Conservative,
                          parallel_config(), 4000, "cons");
}

// The image is engine-agnostic: a cut written by one kernel restores into
// another and still lands bit-identical (the baseline here is the *writing*
// kernel's uninterrupted run; all kernels agree on committed state anyway).
TEST(CheckpointRestore, SequentialImageRestoresIntoTimeWarp) {
  expect_restore_identity(EngineKind::Sequential, EngineKind::TimeWarp,
                          parallel_config(), 4000, "seq_to_tw");
}

TEST(CheckpointRestore, TimeWarpImageRestoresIntoSequential) {
  expect_restore_identity(EngineKind::TimeWarp, EngineKind::Sequential,
                          parallel_config(), 4000, "tw_to_seq");
}

TEST(CheckpointRestore, TimeWarpImageRestoresIntoConservative) {
  expect_restore_identity(EngineKind::TimeWarp, EngineKind::Conservative,
                          parallel_config(), 4000, "tw_to_cons");
}

// Restoring from an early image (long continuation) exercises the re-seeded
// uid space harder than the latest one.
TEST(CheckpointRestore, RestoreFromFirstImageByPath) {
  const PholdConfig pc = phold_config();
  const EngineConfig ec = parallel_config();
  const std::string dir = fresh_dir("first_image");

  PholdModel mb(pc);
  std::unique_ptr<Engine> base = make_engine(EngineKind::TimeWarp, mb, ec);
  const RunStats bstats = base->run();

  EngineConfig ck_cfg = ec;
  ck_cfg.checkpoint.every = 2000;
  ck_cfg.checkpoint.dir = dir;
  PholdModel m1(pc);
  std::unique_ptr<Engine> ck = make_engine(EngineKind::TimeWarp, m1, ck_cfg);
  ck->run();

  const std::string first = dir + "/ckpt-000001.hpck";
  ASSERT_TRUE(std::filesystem::exists(first));
  CheckpointImage img;
  std::string err;
  ASSERT_TRUE(read_checkpoint(first, img, err)) << err;

  EngineConfig rs_cfg = ec;
  rs_cfg.restore_path = first;  // explicit file, not the directory
  PholdModel m2(pc);
  std::unique_ptr<Engine> restored =
      make_engine(EngineKind::TimeWarp, m2, rs_cfg);
  const RunStats rstats = restored->run();

  EXPECT_EQ(PholdModel::digest(*base), PholdModel::digest(*restored));
  EXPECT_EQ(img.committed + rstats.committed_events(),
            bstats.committed_events());
  std::filesystem::remove_all(dir);
}

// Lazy cancellation leaves stale speculative state around by design; the
// checkpoint fence sweep must still reach a clean cut.
TEST(CheckpointRestore, LazyCancellationBitIdentical) {
  EngineConfig ec = parallel_config();
  ec.cancellation = EngineConfig::Cancellation::Lazy;
  expect_restore_identity(EngineKind::TimeWarp, EngineKind::TimeWarp, ec,
                          4000, "lazy");
}

// Chaos holdback queues are force-drained at the fence; a chaotic
// checkpointing run still cuts and restores bit-identically.
TEST(CheckpointRestore, ChaosBitIdentical) {
  EngineConfig ec = parallel_config();
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.2,k=2;reorder:p=0.4;straggler:p=0.3;dup-anti:p=0.3;seed=13",
      ec.fault, err))
      << err;
  expect_restore_identity(EngineKind::TimeWarp, EngineKind::TimeWarp, ec,
                          4000, "chaos");
}

// A restored chaotic run resumes with the plan still armed — the image it
// came from and the faults that follow must not interact.
TEST(CheckpointRestore, ChaoticImageRestoresUnderChaos) {
  const PholdConfig pc = phold_config();
  EngineConfig ec = parallel_config();
  std::string err;
  ASSERT_TRUE(
      FaultPlan::parse("delay:p=0.3,k=2;dup-anti:p=0.3;seed=5", ec.fault,
                       err));
  const std::string dir = fresh_dir("chaos_resume");

  PholdModel mb(pc);
  std::unique_ptr<Engine> base = make_engine(EngineKind::TimeWarp, mb, ec);
  base->run();

  EngineConfig ck_cfg = ec;
  ck_cfg.checkpoint.every = 4000;
  ck_cfg.checkpoint.dir = dir;
  PholdModel m1(pc);
  std::unique_ptr<Engine> ck = make_engine(EngineKind::TimeWarp, m1, ck_cfg);
  const RunStats cstats = ck->run();
  ASSERT_GT(cstats.metrics.total.checkpoints_written(), 0u);

  EngineConfig rs_cfg = ec;  // chaos plan still armed
  rs_cfg.restore_path = dir;
  PholdModel m2(pc);
  std::unique_ptr<Engine> restored =
      make_engine(EngineKind::TimeWarp, m2, rs_cfg);
  restored->run();

  EXPECT_EQ(PholdModel::digest(*base), PholdModel::digest(*restored));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hp::des
