#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/hash.hpp"
#include "util/small_vec.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hp::util {
namespace {

TEST(Hash, SplitmixIsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  // Avalanche smoke test: flipping one input bit flips many output bits.
  const std::uint64_t a = splitmix64(0x1234);
  const std::uint64_t b = splitmix64(0x1235);
  EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

TEST(Hash, CombineDependsOnBothArgsAndOrder) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(1, 3));
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
}

TEST(SmallVec, InlineUse) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  v.push_back(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 3);
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, SpillsToHeapBeyondInlineCapacity) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "long_header", "c"});
  t.add_row({std::int64_t{1}, 2.5, "x"});
  t.add_row({std::int64_t{100}, 3.25, "yy"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
  EXPECT_NE(out.find("yy"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrip) {
  Table t({"n", "rate"});
  t.add_row({std::int64_t{8}, 1.5});
  t.add_row({std::uint64_t{16}, 2.0});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n,rate\n8,1.500\n16,2.000\n");
}

TEST(Table, CsvFile) {
  Table t({"x"});
  t.add_row({std::int64_t{7}});
  const std::string path = ::testing::TempDir() + "/hp_table_test.csv";
  t.write_csv_file(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::getline(f, line);
  EXPECT_EQ(line, "7");
  std::remove(path.c_str());
}

TEST(Cli, ParsesTypedFlags) {
  const char* argv[] = {"prog", "--n=16", "--rate=2.5", "--verbose",
                        "--name=abc"};
  Cli cli(5, const_cast<char**>(argv),
          {{"n", ""}, {"rate", ""}, {"verbose", ""}, {"name", ""}});
  EXPECT_EQ(cli.get_int("n", 0), 16);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get("name", ""), "abc");
  EXPECT_TRUE(cli.has("n"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
}

TEST(Cli, BoolishValues) {
  const char* argv[] = {"prog", "--a=0", "--b=false", "--c=no", "--d=1"};
  Cli cli(5, const_cast<char**>(argv), {{"a", ""}, {"b", ""}, {"c", ""}, {"d", ""}});
  EXPECT_FALSE(cli.get_bool("a", true));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("c", true));
  EXPECT_TRUE(cli.get_bool("d", false));
}

TEST(HistogramMerge, EmptySideIsNoOpAndAdoptsShape) {
  Histogram a(0.0, 1.0, 4);
  a.add(0.5);
  a.add(2.5);
  const Histogram before = a;
  a.merge(Histogram{});  // merging in a default-constructed histogram: no-op
  EXPECT_EQ(a, before);

  Histogram empty;
  empty.merge(a);  // empty side adopts the other's layout and counts
  EXPECT_EQ(empty, a);
  EXPECT_EQ(empty.counts().size(), 4u);
  EXPECT_EQ(empty.lo(), 0.0);
  EXPECT_EQ(empty.bin_width(), 1.0);
}

TEST(HistogramMerge, MatchingLayoutsAddBinwise) {
  Histogram a(0.0, 2.0, 3);
  Histogram b(0.0, 2.0, 3);
  a.add(1.0);   // bin 0
  a.add(3.0);   // bin 1
  b.add(3.5);   // bin 1
  b.add(99.0);  // overflow bin
  a.merge(b);
  EXPECT_EQ(a.counts()[0], 1u);
  EXPECT_EQ(a.counts()[1], 2u);
  EXPECT_EQ(a.counts()[2], 1u);
}

TEST(HistogramMergeDeath, MismatchedBinConfigAborts) {
  // Positional bins: adding counts across different (lo, width, size)
  // layouts would silently scramble the distribution, so merge aborts.
  Histogram bins3(0.0, 1.0, 3);
  bins3.add(0.5);
  Histogram bins5(0.0, 1.0, 5);
  bins5.add(0.5);
  EXPECT_DEATH(bins3.merge(bins5), "bin-config mismatch");

  Histogram width2(0.0, 2.0, 3);
  width2.add(0.5);
  EXPECT_DEATH(bins3.merge(width2), "bin-config mismatch");

  Histogram lo1(1.0, 1.0, 3);
  lo1.add(1.5);
  EXPECT_DEATH(bins3.merge(lo1), "bin-config mismatch");
}

TEST(CliDeath, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT(
      { Cli cli(2, const_cast<char**>(argv), {{"n", ""}}); },
      ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliDeath, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_EXIT(
      { Cli cli(2, const_cast<char**>(argv), {{"n", ""}}); },
      ::testing::ExitedWithCode(2), "positional");
}

}  // namespace
}  // namespace hp::util
