#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "des/conservative.hpp"
#include "des/phold.hpp"
#include "des/sequential.hpp"
#include "pcs/pcs_model.hpp"

namespace hp::des {
namespace {

TEST(ConservativeEngine, PholdMatchesSequentialAtEveryPeCount) {
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.2;
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 80.0;
  ec.seed = 5;

  PholdModel m1(pc);
  SequentialEngine seq(m1, ec);
  const auto sstats = seq.run();

  for (const std::uint32_t pes : {1u, 2u, 4u}) {
    auto cc = ec;
    cc.num_pes = pes;
    PholdModel m2(pc);
    ConservativeEngine cons(m2, cc, pc.lookahead);
    const auto cstats = cons.run();
    EXPECT_EQ(cstats.committed_events(), sstats.committed_events()) << pes;
    EXPECT_EQ(PholdModel::digest(cons), PholdModel::digest(seq)) << pes;
    EXPECT_EQ(cstats.rolled_back_events(), 0u) << "conservative never rolls back";
  }
}

TEST(ConservativeEngine, HotPotatoMatchesSequential) {
  core::SimulationOptions o;
  o.model.n = 8;
  o.model.injector_fraction = 0.75;
  o.model.steps = 80;
  o.kernel = core::Kernel::Sequential;
  const auto seq = core::run_hotpotato(o);

  for (const std::uint32_t pes : {2u, 4u}) {
    auto c = o;
    c.kernel = core::Kernel::Conservative;
    c.engine.num_pes = pes;
    const auto cons = core::run_hotpotato(c);
    EXPECT_EQ(seq.report, cons.report) << pes << " PEs";
    EXPECT_EQ(seq.engine.committed_events(), cons.engine.committed_events());
  }
}

TEST(ConservativeEngine, PcsMatchesSequential) {
  pcs::PcsConfig pc;
  pc.n = 8;
  pc.mean_idle = 20.0;
  EngineConfig ec;
  ec.num_lps = pc.num_cells();
  ec.end_time = 1000.0;
  pcs::PcsModel m1(pc);
  SequentialEngine seq(m1, ec);
  (void)seq.run();
  const auto sr = pcs::PcsModel::collect(seq);

  auto cc = ec;
  cc.num_pes = 2;
  pcs::PcsModel m2(pc);
  // PCS cross-LP messages are handoffs with a 0.5 radio latency.
  ConservativeEngine cons(m2, cc, 0.5);
  (void)cons.run();
  EXPECT_EQ(sr, pcs::PcsModel::collect(cons));
}

TEST(ConservativeEngine, WindowCountReflectsLookahead) {
  // Halving the lookahead roughly doubles the number of windows.
  PholdConfig pc;
  pc.num_lps = 32;
  pc.remote_fraction = 0.5;
  pc.lookahead = 0.4;
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 100.0;
  ec.num_pes = 2;

  PholdModel m1(pc);
  ConservativeEngine wide(m1, ec, 0.4);
  const auto w = wide.run();

  PholdModel m2(pc);
  ConservativeEngine narrow(m2, ec, 0.1);
  const auto n = narrow.run();

  EXPECT_EQ(w.committed_events(), n.committed_events());
  EXPECT_GT(n.gvt_rounds(), 2 * w.gvt_rounds());
}

TEST(ConservativeEngineDeath, RejectsLookaheadViolations) {
  // Declaring a lookahead larger than the model's actual minimum delay must
  // be caught at the first offending send.
  PholdConfig pc;
  pc.num_lps = 16;
  pc.remote_fraction = 1.0;
  pc.lookahead = 0.05;
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 50.0;
  PholdModel model(pc);
  ConservativeEngine cons(model, ec, 5.0);  // lie about the lookahead
  EXPECT_DEATH({ (void)cons.run(); }, "lookahead");
}

TEST(ConservativeEngine, EmptyTerminates) {
  PholdConfig pc;
  pc.num_lps = 8;
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 0.005;  // below the earliest seeded event
  ec.num_pes = 2;
  PholdModel model(pc);
  ConservativeEngine cons(model, ec, 0.1);
  const auto stats = cons.run();
  EXPECT_EQ(stats.committed_events(), 0u);
}

}  // namespace
}  // namespace hp::des
