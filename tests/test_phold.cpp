#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "des/phold.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"

namespace hp::des {
namespace {

TEST(Phold, PopulationIsConserved) {
  // Each event sends exactly one successor, so the number of jobs in flight
  // never changes: processed events = sum of per-LP event counts.
  PholdConfig pc;
  pc.num_lps = 32;
  pc.population_per_lp = 4;
  PholdModel model(pc);
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 100.0;
  SequentialEngine eng(model, ec);
  const auto stats = eng.run();
  std::uint64_t total = 0;
  for (std::uint32_t lp = 0; lp < pc.num_lps; ++lp) {
    total += static_cast<PholdState&>(eng.state(lp)).events;
  }
  EXPECT_EQ(total, stats.processed_events());
  EXPECT_GT(total, 0u);
}

TEST(Phold, RemoteFractionIsRespected) {
  PholdConfig pc;
  pc.num_lps = 16;
  pc.remote_fraction = 0.3;
  PholdModel model(pc);
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 2000.0;
  SequentialEngine eng(model, ec);
  const auto stats = eng.run();
  std::uint64_t remote = 0;
  for (std::uint32_t lp = 0; lp < pc.num_lps; ++lp) {
    remote += static_cast<PholdState&>(eng.state(lp)).remote_sends;
  }
  const double frac =
      static_cast<double>(remote) / static_cast<double>(stats.processed_events());
  EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(Phold, ZeroRemoteFractionNeverLeavesLp) {
  PholdConfig pc;
  pc.num_lps = 8;
  pc.remote_fraction = 0.0;
  PholdModel model(pc);
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 200.0;
  SequentialEngine eng(model, ec);
  (void)eng.run();
  for (std::uint32_t lp = 0; lp < pc.num_lps; ++lp) {
    EXPECT_EQ(static_cast<PholdState&>(eng.state(lp)).remote_sends, 0u);
  }
}

class PholdEquivalence
    : public ::testing::TestWithParam<std::tuple<double, int, double>> {};

TEST_P(PholdEquivalence, TimeWarpMatchesSequential) {
  const auto [remote, pes, lookahead] = GetParam();
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = remote;
  pc.lookahead = lookahead;
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 60.0;
  ec.seed = 9;

  PholdModel m1(pc);
  SequentialEngine seq(m1, ec);
  const auto sstats = seq.run();

  ec.num_pes = static_cast<std::uint32_t>(pes);
  ec.num_kps = 16;
  ec.gvt_interval_events = 128;
  PholdModel m2(pc);
  TimeWarpEngine tw(m2, ec);
  const auto tstats = tw.run();

  EXPECT_EQ(sstats.committed_events(), tstats.committed_events());
  EXPECT_EQ(PholdModel::digest(seq), PholdModel::digest(tw));
}

INSTANTIATE_TEST_SUITE_P(
    RemoteSweep, PholdEquivalence,
    ::testing::Values(std::make_tuple(0.1, 2, 0.1),
                      std::make_tuple(0.5, 2, 0.01),
                      std::make_tuple(0.9, 4, 0.1),
                      std::make_tuple(1.0, 4, 0.01),
                      std::make_tuple(0.5, 3, 0.5)),
    [](const auto& info) {
      return "remote" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_pe" + std::to_string(std::get<1>(info.param)) + "_look" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

TEST(Phold, LazyCancellationReusesAlmostEverything) {
  // PHOLD decisions depend only on the RNG stream, which rewinds exactly on
  // rollback — re-executions are bit-identical, so lazy cancellation should
  // adopt nearly every child instead of resending.
  PholdConfig pc;
  pc.num_lps = 64;
  pc.remote_fraction = 0.9;
  pc.lookahead = 0.05;
  EngineConfig ec;
  ec.num_lps = pc.num_lps;
  ec.end_time = 120.0;
  ec.num_pes = 2;
  ec.num_kps = 16;
  ec.gvt_interval_events = 128;

  PholdModel m1(pc);
  TimeWarpEngine aggressive(m1, ec);
  const auto astats = aggressive.run();

  ec.cancellation = EngineConfig::Cancellation::Lazy;
  PholdModel m2(pc);
  TimeWarpEngine lazy(m2, ec);
  const auto lstats = lazy.run();

  EXPECT_EQ(astats.committed_events(), lstats.committed_events());
  EXPECT_EQ(PholdModel::digest(aggressive), PholdModel::digest(lazy));
  // Only events that re-execute while holding stale children can reuse them
  // (cascaded annihilations cancel outright), so expect meaningful — not
  // total — adoption.
  if (lstats.rolled_back_events() > 1000) {
    EXPECT_GT(lstats.lazy_reused(), 0u);
    EXPECT_GT(lstats.lazy_reused(), lstats.rolled_back_events() / 20);
  }
}

TEST(Phold, HigherRemoteFractionMeansMoreRollbacks) {
  auto run_rb = [](double remote) {
    PholdConfig pc;
    pc.num_lps = 64;
    pc.remote_fraction = remote;
    pc.lookahead = 0.05;
    EngineConfig ec;
    ec.num_lps = pc.num_lps;
    ec.end_time = 150.0;
    ec.num_pes = 2;
    ec.num_kps = 16;
    ec.gvt_interval_events = 256;
    PholdModel model(pc);
    TimeWarpEngine tw(model, ec);
    return tw.run().rolled_back_events();
  };
  // Self-traffic cannot produce cross-PE stragglers.
  EXPECT_EQ(run_rb(0.0), 0u);
  EXPECT_GT(run_rb(0.9), 0u);
}

}  // namespace
}  // namespace hp::des
