#include <gtest/gtest.h>

#include "buffered/buffered_network.hpp"
#include "core/simulation.hpp"

namespace hp::buffered {
namespace {

BufferedConfig cfg(std::int32_t n, double inject, std::uint32_t steps,
                   std::uint32_t cap) {
  BufferedConfig c;
  c.n = n;
  c.injector_fraction = inject;
  c.steps = steps;
  c.queue_capacity = cap;
  return c;
}

TEST(BufferedNetwork, ConservationAndBoundedQueues) {
  BufferedNetwork net(cfg(8, 1.0, 200, 4));
  const BufferedReport r = net.run();
  EXPECT_EQ(r.injected, r.delivered + r.in_flight_end);
  EXPECT_LE(r.max_queue_depth, 4u);
  EXPECT_GT(r.delivered, 0u);
}

TEST(BufferedNetwork, DeterministicForFixedSeed) {
  BufferedNetwork a(cfg(8, 0.5, 150, 4));
  BufferedNetwork b(cfg(8, 0.5, 150, 4));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.injected, rb.injected);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.moves, rb.moves);
  EXPECT_EQ(ra.stalls, rb.stalls);
  EXPECT_DOUBLE_EQ(ra.delivery_steps_sum, rb.delivery_steps_sum);
}

TEST(BufferedNetwork, DimensionOrderPathsAreShortest) {
  // With light load (few injectors, big buffers), packets follow their
  // one-bend path without queueing: stretch ~= 1 plus queue waits.
  BufferedNetwork net(cfg(8, 0.1, 300, 16));
  const auto r = net.run();
  ASSERT_GT(r.delivered, 0u);
  EXPECT_GE(r.stretch(), 1.0);
  EXPECT_LT(r.stretch(), 1.6) << "light load should be near-shortest-path";
}

TEST(BufferedNetwork, BackpressureThrottlesInjection) {
  BufferedNetwork small(cfg(8, 1.0, 200, 1));
  BufferedNetwork big(cfg(8, 1.0, 200, 8));
  const auto rs = small.run();
  const auto rb = big.run();
  // Smaller buffers => more stalls and fewer admitted packets: the flow
  // control throttles the sources.
  EXPECT_LT(rs.injected, rb.injected);
  EXPECT_GT(rs.avg_inject_wait() + 1e-9, 0.0);
}

TEST(BufferedNetwork, UtilizationBounded) {
  BufferedNetwork net(cfg(8, 1.0, 200, 4));
  const auto r = net.run();
  const double u = r.link_utilization(64, 200);
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST(FlowControlContrast, HotPotatoSustainsHigherUtilization) {
  // The paper's headline claim: without flow control, hot-potato keeps links
  // busy where a flow-controlled network under-utilizes them at saturation.
  constexpr std::int32_t n = 8;
  constexpr std::uint32_t steps = 200;

  core::SimulationOptions o;
  o.model.n = n;
  o.model.injector_fraction = 1.0;
  o.model.steps = steps;
  const auto hot = core::run_hotpotato(o);
  const double u_hot =
      hot.report.link_utilization(o.model.num_lps(), steps);

  BufferedNetwork net(cfg(n, 1.0, steps, 4));
  const auto buf = net.run();
  const double u_buf = buf.link_utilization(static_cast<std::uint32_t>(n * n),
                                            steps);

  EXPECT_GT(u_hot, u_buf)
      << "hot-potato should out-utilize credit flow control at saturation";
}

TEST(BufferedNetwork, StepCounterAdvances) {
  BufferedNetwork net(cfg(4, 0.5, 10, 4));
  EXPECT_EQ(net.current_step(), 0u);
  net.step();
  net.step();
  EXPECT_EQ(net.current_step(), 2u);
}

}  // namespace
}  // namespace hp::buffered
