// The fc::FlowControlScheme public surface: config parsing (the --fc= spec
// grammar, strict like --chaos=/--migrate=), the factory, channel-based
// statistics, core::run_flow_control integration, and the paper's headline
// contrast against the hot-potato network. Scheme *physics* (hand-computed
// traces, credits, conformance across the family) live in
// test_flow_control.cpp.

#include <gtest/gtest.h>

#include "bench/common.hpp"
#include "buffered/schemes.hpp"
#include "core/simulation.hpp"

namespace hp::fc {
namespace {

FlowControlConfig cfg(Kind k, std::int32_t n, double inject,
                      std::uint32_t steps, std::uint32_t qcap,
                      std::uint32_t flit = 1) {
  FlowControlConfig c;
  c.scheme = k;
  c.n = n;
  c.injector_fraction = inject;
  c.steps = steps;
  c.queue_capacity = qcap;
  c.flits_per_packet = flit;
  return c;
}

TEST(FcKind, NamesRoundTripThroughParse) {
  for (const Kind k : kAllKinds) {
    Kind parsed{};
    ASSERT_TRUE(parse_kind(kind_name(k), parsed)) << kind_name(k);
    EXPECT_EQ(parsed, k);
  }
  Kind out{};
  EXPECT_FALSE(parse_kind("", out));
  EXPECT_FALSE(parse_kind("SAF", out));
  EXPECT_FALSE(parse_kind("store-and-forward", out));
}

TEST(FcConfigParse, EmptySpecKeepsDefaults) {
  FlowControlConfig c;
  std::string err;
  ASSERT_TRUE(FlowControlConfig::parse("", c, err)) << err;
  EXPECT_EQ(c.scheme, Kind::StoreAndForward);
  EXPECT_EQ(c.queue_capacity, 8u);
  EXPECT_EQ(c.flits_per_packet, 1u);
  EXPECT_EQ(c.credit_delay, 1u);
}

TEST(FcConfigParse, FullSpec) {
  FlowControlConfig c;
  std::string err;
  ASSERT_TRUE(FlowControlConfig::parse(
      "scheme=wormhole, qcap=4 ,flit=6,credit_delay=2", c, err))
      << err;
  EXPECT_EQ(c.scheme, Kind::Wormhole);
  EXPECT_EQ(c.queue_capacity, 4u);
  EXPECT_EQ(c.flits_per_packet, 6u);
  EXPECT_EQ(c.credit_delay, 2u);
}

TEST(FcConfigParse, ToStringRoundTrips) {
  FlowControlConfig c;
  std::string err;
  ASSERT_TRUE(FlowControlConfig::parse("scheme=vct,qcap=16,flit=4", c, err));
  FlowControlConfig d;
  ASSERT_TRUE(FlowControlConfig::parse(c.to_string(), d, err)) << err;
  EXPECT_EQ(d.scheme, c.scheme);
  EXPECT_EQ(d.queue_capacity, c.queue_capacity);
  EXPECT_EQ(d.flits_per_packet, c.flits_per_packet);
  EXPECT_EQ(d.credit_delay, c.credit_delay);
}

TEST(FcConfigParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "scheme=bogus",     "scheme=",          "qcap=0",
      "qcap=-1",          "qcap=abc",         "flit=0",
      "credit_delay=0",   "credit_delay=x",   "unknown=1",
      "qcap",             "=4",               "qcap=4=5",
      // saf/vct must buffer whole packets per hop.
      "scheme=saf,qcap=2,flit=4",
      "scheme=vct,qcap=1,flit=2",
  };
  for (const char* spec : bad) {
    FlowControlConfig c;
    std::string err;
    EXPECT_FALSE(FlowControlConfig::parse(spec, c, err))
        << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
  // ...but wormhole forwards on single-flit credits, so qcap < flit is fine.
  FlowControlConfig c;
  std::string err;
  EXPECT_TRUE(
      FlowControlConfig::parse("scheme=wormhole,qcap=2,flit=4", c, err))
      << err;
}

TEST(FcConfigParse, FailedParseLeavesOutUntouched) {
  FlowControlConfig c;
  std::string err;
  ASSERT_TRUE(FlowControlConfig::parse("scheme=vct,qcap=32", c, err));
  EXPECT_EQ(c.queue_capacity, 32u);
  EXPECT_FALSE(FlowControlConfig::parse("qcap=0", c, err));
  EXPECT_EQ(c.scheme, Kind::VirtualCutThrough);
  EXPECT_EQ(c.queue_capacity, 32u);
}

TEST(FcCliDeath, MalformedFcSpecIsAUsageError) {
  const char* argv[] = {"bench", "--fc=scheme=bogus"};
  EXPECT_EXIT(
      {
        util::Cli cli(2, const_cast<char**>(argv), {{"fc", ""}});
        core::SimulationOptions o;
        bench::apply_fc_flags(cli, o);
      },
      ::testing::ExitedWithCode(2), "--fc");
}

TEST(FcFactory, CreatesEverySchemeWithMatchingKind) {
  for (const Kind k : kAllKinds) {
    const auto s = FlowControlScheme::create(cfg(k, 4, 0.5, 10, 4, 2));
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind(), k);
    EXPECT_STREQ(s->name(), kind_name(k));
  }
}

TEST(FcScheme, StepCounterAdvances) {
  const auto s = FlowControlScheme::create(cfg(Kind::StoreAndForward, 4, 0.5,
                                               10, 4));
  EXPECT_EQ(s->current_step(), 0u);
  s->step();
  s->step();
  EXPECT_EQ(s->current_step(), 2u);
}

TEST(FcScheme, ConservationAndBoundedQueuesEverywhere) {
  for (const Kind k : kAllKinds) {
    const auto s = FlowControlScheme::create(cfg(k, 8, 1.0, 200, 4, 2));
    const FcReport r = s->run();
    EXPECT_GT(r.delivered, 0u) << kind_name(k);
    EXPECT_EQ(s->flits_in_network(), r.flits_injected - r.flits_absorbed)
        << kind_name(k);
    EXPECT_LE(r.max_queue_depth, 4.0) << kind_name(k);
    EXPECT_LE(r.delivered, r.injected) << kind_name(k);
  }
}

TEST(FcScheme, ChannelsAreDeterministicForFixedSeed) {
  for (const Kind k : kAllKinds) {
    const auto a = FlowControlScheme::create(cfg(k, 8, 0.5, 150, 4, 2));
    const auto b = FlowControlScheme::create(cfg(k, 8, 0.5, 150, 4, 2));
    a->run();
    b->run();
    EXPECT_EQ(a->collect_channel(), b->collect_channel()) << kind_name(k);
    EXPECT_EQ(a->report(), b->report()) << kind_name(k);
  }
}

TEST(FcScheme, BackpressureThrottlesInjection) {
  const auto small =
      FlowControlScheme::create(cfg(Kind::StoreAndForward, 8, 1.0, 200, 1));
  const auto big =
      FlowControlScheme::create(cfg(Kind::StoreAndForward, 8, 1.0, 200, 8));
  const auto rs = small->run();
  const auto rb = big->run();
  EXPECT_LT(rs.injected, rb.injected)
      << "smaller buffers must throttle the sources harder";
  EXPECT_GT(rs.stalls, 0u);
}

TEST(FcScheme, UtilizationBoundedOnBothTopologies) {
  for (const auto topo : {net::GridKind::Torus, net::GridKind::Mesh}) {
    auto c = cfg(Kind::VirtualCutThrough, 8, 1.0, 200, 4, 2);
    c.topology = topo;
    const auto s = FlowControlScheme::create(c);
    const FcReport r = s->run();
    const double u = r.link_utilization(s->grid(), 200);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(FcScheme, MeshDoesNotUnderReportUtilization) {
  // The old BufferedReport divided by 4*num_routers link slots even on a
  // mesh, where boundary links do not exist. The grid-aware denominator is
  // smaller, so the same flit_moves must score strictly higher utilization.
  auto c = cfg(Kind::StoreAndForward, 8, 1.0, 200, 4);
  c.topology = net::GridKind::Mesh;
  const auto s = FlowControlScheme::create(c);
  const FcReport r = s->run();
  const net::Grid mesh(8, net::GridKind::Mesh);
  ASSERT_LT(mesh.num_directed_links(), 4u * mesh.num_nodes());
  const double honest = r.link_utilization(mesh, 200);
  const double old_denominator =
      static_cast<double>(r.flit_moves) / (4.0 * 64.0 * 200.0);
  EXPECT_GT(honest, old_denominator);
}

TEST(FcCore, RunFlowControlUsesModelNetworkAndWorkload) {
  core::SimulationOptions o;
  o.model.n = 8;
  o.model.injector_fraction = 0.5;
  o.model.steps = 120;
  o.model.traffic = hotpotato::TrafficPattern::Transpose;
  o.fc.scheme = Kind::Wormhole;
  o.fc.queue_capacity = 2;
  o.fc.flits_per_packet = 4;
  const core::FlowControlResult r = core::run_flow_control(o);
  EXPECT_GT(r.report.injected, 0u);
  // The typed report is a pure view over the channel.
  EXPECT_EQ(r.report, report_from_channel(r.model));
  // Equal options => bit-identical channel (the determinism_check contract).
  const core::FlowControlResult again = core::run_flow_control(o);
  EXPECT_EQ(r.model, again.model);
  EXPECT_EQ(r.report, again.report);
}

TEST(FcContrast, HotPotatoSustainsHigherUtilization) {
  // The paper's headline claim: without flow control, hot-potato keeps links
  // busy where a credit-controlled network under-utilizes them at
  // saturation. Checked against every scheme in the family.
  constexpr std::int32_t n = 8;
  constexpr std::uint32_t steps = 200;
  core::SimulationOptions o;
  o.model.n = n;
  o.model.injector_fraction = 1.0;
  o.model.steps = steps;
  const auto hot = core::run_hotpotato(o);
  const net::Grid grid(n, net::GridKind::Torus);
  const double u_hot = hot.report.link_utilization(grid, steps);

  o.fc.queue_capacity = 4;
  o.fc.flits_per_packet = 2;
  for (const Kind k : kAllKinds) {
    o.fc.scheme = k;
    const auto buf = core::run_flow_control(o);
    EXPECT_GT(u_hot, buf.report.link_utilization(grid, steps))
        << kind_name(k)
        << ": hot-potato should out-utilize credit flow control";
  }
}

TEST(FcContrast, CutThroughBeatsStoreAndForwardPerHop) {
  // At light load the pipelined schemes approach 1 step/hop while SAF pays
  // the full serialization latency every hop.
  core::SimulationOptions o;
  o.model.n = 8;
  o.model.injector_fraction = 0.25;
  o.model.steps = 200;
  o.fc.queue_capacity = 8;
  o.fc.flits_per_packet = 4;
  o.fc.scheme = Kind::StoreAndForward;
  const double saf = core::run_flow_control(o).report.per_hop_latency();
  o.fc.scheme = Kind::VirtualCutThrough;
  const double vct = core::run_flow_control(o).report.per_hop_latency();
  o.fc.scheme = Kind::Wormhole;
  const double wh = core::run_flow_control(o).report.per_hop_latency();
  EXPECT_GE(saf, static_cast<double>(o.fc.flits_per_packet));
  EXPECT_LT(vct, saf);
  EXPECT_LT(wh, saf);
}

}  // namespace
}  // namespace hp::fc
