// Asynchronous epoch-based GVT tests (docs/GVT.md).
//
// The invariant under test: GVT is pure bookkeeping, so switching the
// algorithm from the synchronized barrier to Mattern-style epochs must
// never change committed state — every epoch-mode run commits bit-identical
// results to the barrier run AND to the sequential reference, across the
// chaos / migration / checkpoint / pool-budget matrix. The epoch-specific
// counters prove the asynchronous path actually ran (closes happened,
// transient messages were accounted).

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/simulation.hpp"
#include "des/checkpoint.hpp"
#include "des/engine.hpp"
#include "des/fault.hpp"
#include "des/phold.hpp"
#include "des/watchdog.hpp"

namespace hp::des {
namespace {

using obs::Counter;

// ---------------------------------------------------------------- parsing

TEST(GvtSpecParse, AcceptsModesAndInterval) {
  EngineConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_gvt_spec("mode=barrier", cfg, err)) << err;
  EXPECT_EQ(cfg.gvt_mode, EngineConfig::GvtMode::Barrier);

  ASSERT_TRUE(parse_gvt_spec("mode=epoch", cfg, err)) << err;
  EXPECT_EQ(cfg.gvt_mode, EngineConfig::GvtMode::Epoch);

  ASSERT_TRUE(parse_gvt_spec(" mode = epoch , interval = 512 ", cfg, err))
      << err;
  EXPECT_EQ(cfg.gvt_mode, EngineConfig::GvtMode::Epoch);
  EXPECT_EQ(cfg.gvt_interval_events, 512u);
}

TEST(GvtSpecParse, ModeNamesRoundTrip) {
  EXPECT_STREQ(gvt_mode_name(EngineConfig::GvtMode::Barrier), "barrier");
  EXPECT_STREQ(gvt_mode_name(EngineConfig::GvtMode::Epoch), "epoch");
}

TEST(GvtSpecParse, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                    // mode= is required
      "interval=512",        // interval alone: mode still required
      "mode=",               // empty mode
      "mode=async",          // unknown mode
      "mode=epoch,interval=0",    // zero interval
      "mode=epoch,interval=-4",   // negative
      "mode=epoch,interval=abc",  // non-numeric
      "mode=epoch,cadence=4",     // unknown key
      "epoch",               // not key=value
  };
  for (const char* spec : bad) {
    EngineConfig cfg;
    std::string err;
    EXPECT_FALSE(parse_gvt_spec(spec, cfg, err)) << "accepted: " << spec;
    EXPECT_FALSE(err.empty()) << spec;
  }
}

// ------------------------------------------------------------ bit identity

PholdConfig phold_config() {
  PholdConfig pc;
  pc.num_lps = 48;
  pc.remote_fraction = 0.7;
  pc.lookahead = 0.05;  // straggler-heavy: plenty of rollbacks
  return pc;
}

EngineConfig engine_config(std::uint32_t pes) {
  EngineConfig ec;
  ec.num_lps = phold_config().num_lps;
  ec.end_time = 80.0;
  ec.seed = 23;
  ec.num_pes = pes;
  ec.num_kps = 16;
  ec.gvt_interval_events = 96;
  return ec;
}

// Run PHOLD under the given engine config and return the model digest.
std::uint64_t run_digest(EngineKind kind, const EngineConfig& ec,
                         RunStats* stats = nullptr) {
  PholdConfig pc = phold_config();
  PholdModel m(pc);
  std::unique_ptr<Engine> e = make_engine(kind, m, ec);
  const RunStats s = e->run();
  if (stats) *stats = s;
  return PholdModel::digest(*e);
}

std::uint64_t sequential_digest() {
  return run_digest(EngineKind::Sequential, engine_config(1));
}

class EpochIdentity : public ::testing::TestWithParam<std::uint32_t> {};

// Epoch mode commits bit-identical state to barrier mode and sequential at
// every PE count, and actually closed epochs on the parallel runs.
TEST_P(EpochIdentity, MatchesBarrierAndSequential) {
  const std::uint32_t pes = GetParam();

  const std::uint64_t sd = sequential_digest();

  EngineConfig barrier = engine_config(pes);
  const std::uint64_t bd = run_digest(EngineKind::TimeWarp, barrier);

  EngineConfig epoch = engine_config(pes);
  epoch.gvt_mode = EngineConfig::GvtMode::Epoch;
  RunStats es;
  const std::uint64_t ed = run_digest(EngineKind::TimeWarp, epoch, &es);

  EXPECT_EQ(sd, bd);
  EXPECT_EQ(sd, ed);
  EXPECT_GT(es.metrics.total.at(Counter::GvtEpochCloses), 0u)
      << "no epoch ever closed, so this proved nothing";
  EXPECT_GT(es.gvt_rounds(), 0u);
}

INSTANTIATE_TEST_SUITE_P(PeCounts, EpochIdentity,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "pe";
                         });

// An epoch-mode run is itself exactly repeatable (the closes are raced by
// all PEs, so this pins the winner-independence of the bookkeeping).
TEST(EpochIdentity, EpochRunIsRepeatable) {
  EngineConfig ec = engine_config(4);
  ec.gvt_mode = EngineConfig::GvtMode::Epoch;
  EXPECT_EQ(run_digest(EngineKind::TimeWarp, ec),
            run_digest(EngineKind::TimeWarp, ec));
}

// ----------------------------------------------- transient-message stress
//
// Chaos delay + reorder hold envelopes across epoch cuts: an envelope
// tagged with epoch e is popped (and credited to e's receive count) while
// its PE is already cutting into e+1, and held envelopes straddle several
// closes. The send/receive accounting must still balance every epoch — a
// lost credit would wedge the close and the watchdog below would fire.

TEST(EpochTransient, DelayedAndReorderedTrafficStraddlingCutsIsExact) {
  const std::uint64_t sd = sequential_digest();

  EngineConfig ec = engine_config(4);
  ec.gvt_mode = EngineConfig::GvtMode::Epoch;
  // Tiny interval: many cuts per run, so held traffic necessarily
  // straddles them.
  ec.gvt_interval_events = 48;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse(
      "delay:p=0.3,k=3;reorder:p=0.5;straggler:p=0.3;dup-anti:p=0.3;seed=7",
      ec.fault, err))
      << err;
  RunStats es;
  const std::uint64_t ed = run_digest(EngineKind::TimeWarp, ec, &es);

  EXPECT_EQ(sd, ed);
  EXPECT_GT(es.metrics.total.at(Counter::GvtEpochCloses), 4u);
  EXPECT_GT(es.metrics.total.at(Counter::ChaosDelayedEvents), 0u)
      << "the chaos plan never fired, so no transient messages were made";
}

// Chaos composed with runtime KP migration: quiesce traffic and re-homed
// events ride the same epoch accounting.
TEST(EpochTransient, ChaosPlusMigrationStaysIdentical) {
  const std::uint64_t sd = sequential_digest();

  EngineConfig ec = engine_config(4);
  ec.gvt_mode = EngineConfig::GvtMode::Epoch;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("delay:p=0.2,k=2;reorder:p=0.4;seed=13",
                               ec.fault, err))
      << err;
  ASSERT_TRUE(MigrationConfig::parse("every=4,imbalance=1.1,max=2",
                                     ec.migration, err))
      << err;
  EXPECT_EQ(sd, run_digest(EngineKind::TimeWarp, ec));
}

// Checkpoint rounds anchor to epoch closes exactly as they anchor to
// barrier rounds: the run must still be bit-identical and write images.
TEST(EpochTransient, CheckpointRoundsAnchorToCloses) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "hp_gvt_epoch_ck";
  std::filesystem::remove_all(dir);

  const std::uint64_t sd = sequential_digest();

  EngineConfig ec = engine_config(4);
  ec.gvt_mode = EngineConfig::GvtMode::Epoch;
  ec.checkpoint.every = 2000;
  ec.checkpoint.dir = dir.string();
  RunStats es;
  const std::uint64_t ed = run_digest(EngineKind::TimeWarp, ec, &es);

  EXPECT_EQ(sd, ed);
  EXPECT_GT(es.metrics.total.checkpoints_written(), 0u);
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- pool hard block
//
// Under the barrier algorithm a hard-blocked PE forces a GVT round by
// raising gvt_request_; under epochs the same flag forces a cut, the other
// PEs (which keep pumping, never park) follow, and the close frees fossils
// so the blocked PE can resume. A lost wakeup here would deadlock.

TEST(EpochFlowControl, HardBlockForcesCloseAndStaysIdentical) {
  const std::uint64_t sd = sequential_digest();

  EngineConfig ec = engine_config(4);
  ec.gvt_mode = EngineConfig::GvtMode::Epoch;
  ec.pool_budget_envelopes = 128;  // a real squeeze on this workload
  RunStats es;
  const std::uint64_t ed = run_digest(EngineKind::TimeWarp, ec, &es);

  EXPECT_EQ(sd, ed);
  for (const obs::PeMetrics& pe : es.per_pe()) {
    EXPECT_LE(pe.pool_peak_live(), 128u);
  }
  EXPECT_GT(es.metrics.total.at(Counter::GvtEpochCloses), 0u);
}

// ------------------------------------------------------------- watchdog

// The watchdog's progress test accepts epoch activity (cuts and closes are
// progress even while the commit frontier is briefly flat): a chaos stall
// that resolves on its own must complete without escalation in epoch mode.
TEST(EpochWatchdog, BenignStallCompletesUnderEpochMode) {
  const std::uint64_t sd = sequential_digest();

  EngineConfig ec = engine_config(4);
  ec.gvt_mode = EngineConfig::GvtMode::Epoch;
  std::string err;
  ASSERT_TRUE(FaultPlan::parse("stall:pe=1,rounds=6,at=2", ec.fault, err))
      << err;
  ASSERT_TRUE(WatchdogConfig::parse("timeout=60000,poll=20", ec.watchdog,
                                    err))
      << err;
  RunStats es;
  const std::uint64_t ed = run_digest(EngineKind::TimeWarp, ec, &es);

  EXPECT_EQ(sd, ed);
  EXPECT_GT(es.metrics.total.at(Counter::ChaosStallRounds), 0u)
      << "the stall never fired, so this proved nothing";
}

}  // namespace
}  // namespace hp::des
