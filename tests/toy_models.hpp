#pragma once

// Small reversible models used to test the DES kernels independently of the
// hot-potato application.

#include <cstdint>
#include <memory>

#include "des/model.hpp"
#include "util/hash.hpp"

namespace hp::testing {

// Execution-order-sensitive checksum state. XOR-folding event identities is
// self-inverse (reversal-friendly) and order-insensitive; the ordered_hash
// chain is order-sensitive but not reversible, so forward stashes the prior
// value in the message scratch and reverse restores it — exercising the
// "save into the message" idiom the hot-potato model also uses.
struct ToyState : des::LpState {
  std::uint64_t count = 0;
  std::uint64_t xor_fold = 0;
  std::uint64_t ordered_hash = 0;
  std::uint64_t rng_draws_seen = 0;

  std::unique_ptr<des::LpState> clone() const override {
    return std::make_unique<ToyState>(*this);
  }

  bool equals(const des::LpState& o) const override {
    return *this == static_cast<const ToyState&>(o);
  }

  bool operator==(const ToyState& o) const {
    return count == o.count && xor_fold == o.xor_fold &&
           ordered_hash == o.ordered_hash && rng_draws_seen == o.rng_draws_seen;
  }
};

struct ToyMsg {
  std::uint64_t saved_ordered_hash = 0;  // reverse-computation scratch
  std::uint32_t hops_left = 0;
};

// PHOLD-style load: every event draws a random destination and delay, sends
// one successor, and folds its identity into the LP state. High fan-across
// traffic makes stragglers (and thus rollbacks) frequent under Time Warp.
class PholdModel final : public des::Model {
 public:
  PholdModel(std::uint32_t num_lps, double mean_delay, double lookahead)
      : num_lps_(num_lps), mean_delay_(mean_delay), lookahead_(lookahead) {}

  std::unique_ptr<des::LpState> make_state(std::uint32_t) override {
    return std::make_unique<ToyState>();
  }

  void init_lp(std::uint32_t lp, des::InitContext& ctx) override {
    // One seed event per LP, jittered start time.
    ToyMsg m{};
    m.hops_left = 0;
    ctx.schedule(lp, 0.5 + 0.25 * ctx.rng().uniform(), m);
  }

  void forward(des::LpState& state, des::Event& ev, des::Context& ctx) override {
    auto& s = static_cast<ToyState&>(state);
    auto& m = ev.msg<ToyMsg>();
    ++s.count;
    s.xor_fold ^= ev.key.tie;
    m.saved_ordered_hash = s.ordered_hash;
    s.ordered_hash = util::hash_combine(s.ordered_hash, ev.key.tie);

    const auto dst = static_cast<std::uint32_t>(
        ctx.rng().integer(0, num_lps_ - 1));
    const double delay = lookahead_ + mean_delay_ * ctx.rng().uniform();
    s.rng_draws_seen += 2;

    ToyMsg next{};
    ctx.send(dst, delay, next);
  }

  void reverse(des::LpState& state, des::Event& ev, des::Context& ctx) override {
    auto& s = static_cast<ToyState&>(state);
    auto& m = ev.msg<ToyMsg>();
    ctx.rng().reverse(2);
    s.rng_draws_seen -= 2;
    s.ordered_hash = m.saved_ordered_hash;
    s.xor_fold ^= ev.key.tie;
    --s.count;
  }

 private:
  std::uint32_t num_lps_;
  double mean_delay_;
  double lookahead_;
};

// Deterministic ring: LP i forwards to LP i+1 after a fixed delay. No RNG,
// fully predictable totals — good for exact-count kernel tests.
class RingModel final : public des::Model {
 public:
  RingModel(std::uint32_t num_lps, double delay)
      : num_lps_(num_lps), delay_(delay) {}

  std::unique_ptr<des::LpState> make_state(std::uint32_t) override {
    return std::make_unique<ToyState>();
  }

  void init_lp(std::uint32_t lp, des::InitContext& ctx) override {
    if (lp == 0) {
      ToyMsg m{};
      ctx.schedule(0, delay_, m);
    }
  }

  void forward(des::LpState& state, des::Event& ev, des::Context& ctx) override {
    auto& s = static_cast<ToyState&>(state);
    auto& m = ev.msg<ToyMsg>();
    ++s.count;
    m.saved_ordered_hash = s.ordered_hash;
    s.ordered_hash = util::hash_combine(s.ordered_hash, ev.key.tie);
    ToyMsg next{};
    ctx.send((ctx.self() + 1) % num_lps_, delay_, next);
  }

  void reverse(des::LpState& state, des::Event& ev, des::Context&) override {
    auto& s = static_cast<ToyState&>(state);
    auto& m = ev.msg<ToyMsg>();
    s.ordered_hash = m.saved_ordered_hash;
    --s.count;
  }

 private:
  std::uint32_t num_lps_;
  double delay_;
};

}  // namespace hp::testing
