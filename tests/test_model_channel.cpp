// obs::ModelChannel: registration idempotence, kind discipline, readback
// semantics (RealMax with no sample reads 0.0), JSON shape, and the
// determinism contract — the hot-potato model publishes through the channel
// and whole channels compare bit-identical across engine kinds.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/simulation.hpp"
#include "obs/model_channel.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"

namespace hp {
namespace {

TEST(ModelChannel, RegistrationIsIdempotent) {
  obs::ModelChannel ch;
  const auto a = ch.counter("deflections");
  const auto b = ch.counter("deflections");
  EXPECT_EQ(a.idx, b.idx);
  EXPECT_EQ(ch.size(), 1u);
  const auto c = ch.real("wait_sum");
  EXPECT_NE(a.idx, c.idx);
  EXPECT_EQ(ch.size(), 2u);
}

TEST(ModelChannel, CountersAndRealsAccumulate) {
  obs::ModelChannel ch;
  const auto n = ch.counter("n");
  const auto x = ch.real("x");
  ch.add(n);
  ch.add(n, 4);
  ch.add_real(x, 1.5);
  ch.add_real(x, 2.0);
  EXPECT_EQ(ch.counter_value(n), 5u);
  EXPECT_EQ(ch.real_value(x), 3.5);
  EXPECT_EQ(ch.counter_value("n"), 5u);
  EXPECT_EQ(ch.real_value("x"), 3.5);
  // Absent names read as zero/null rather than aborting.
  EXPECT_EQ(ch.counter_value("missing"), 0u);
  EXPECT_EQ(ch.real_value("missing"), 0.0);
  EXPECT_EQ(ch.hist_value("missing"), nullptr);
}

TEST(ModelChannel, RealMaxReadsZeroWhenNeverPushed) {
  obs::ModelChannel ch;
  const auto m = ch.real_max("max_wait");
  EXPECT_EQ(ch.real_value(m), 0.0);  // no sentinel leak (not -inf)
  ch.push_max(m, -3.0);
  EXPECT_EQ(ch.real_value(m), -3.0);  // a pushed negative IS the maximum
  ch.push_max(m, 2.0);
  ch.push_max(m, 1.0);
  EXPECT_EQ(ch.real_value(m), 2.0);
}

TEST(ModelChannel, HistogramsMergeThroughTheChannel) {
  obs::ModelChannel ch;
  const auto h = ch.hist("delivery");
  util::Histogram part(0.0, 1.0, 4);
  part.add(0.5);
  part.add(2.5);
  ch.merge_hist(h, part);
  ch.merge_hist(h, part);
  const util::Histogram* merged = ch.hist_value(h);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->counts()[0], 2u);
  EXPECT_EQ(merged->counts()[2], 2u);
}

TEST(ModelChannel, WriteJsonEmitsRegistrationOrder) {
  obs::ModelChannel ch;
  ch.add(ch.counter("c"), 7);
  ch.add_real(ch.real("r"), 0.5);
  ch.push_max(ch.real_max("m"), 3.0);
  util::Histogram part(0.0, 1.0, 2);
  part.add(0.25);
  ch.merge_hist(ch.hist("h"), part);

  std::ostringstream os;
  util::JsonWriter w(os);
  ch.write_json(w);
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(),
            "[{\"name\":\"c\",\"kind\":\"counter\",\"value\":7},"
            "{\"name\":\"r\",\"kind\":\"real\",\"value\":0.5},"
            "{\"name\":\"m\",\"kind\":\"real_max\",\"value\":3},"
            "{\"name\":\"h\",\"kind\":\"hist\",\"value\":{\"lo\":0,"
            "\"bin_width\":1,\"counts\":[1,0]}}]");
}

TEST(ModelChannelDeath, KindMismatchOnReRegistrationAborts) {
  obs::ModelChannel ch;
  (void)ch.counter("metric");
  EXPECT_DEATH((void)ch.real("metric"), "different kind");
}

TEST(ModelChannelDeath, PublishWithWrongKindAborts) {
  obs::ModelChannel ch;
  const auto c = ch.counter("c");
  EXPECT_DEATH(ch.add_real(c, 1.0), "non-real");
  EXPECT_DEATH(ch.push_max(c, 1.0), "non-max");
}

// ---------------------------------------------------------------------------
// Determinism contract: the hot-potato model publishes per-LP statistics in
// ascending LP order, so whole channels (integer counters AND double sums)
// are bit-identical across engine kinds and PE counts.

TEST(ModelChannel, HotPotatoChannelsBitIdenticalAcrossKernels) {
  core::SimulationOptions base;
  base.model.n = 8;
  base.model.injector_fraction = 0.75;
  base.model.steps = 48;

  auto seq = base;
  seq.kernel = core::Kernel::Sequential;
  const auto ref = core::run_hotpotato(seq);
  EXPECT_FALSE(ref.model.empty());
  EXPECT_GT(ref.model.counter_value("routed"), 0u);
  // The typed report is a pure view over the channel.
  EXPECT_EQ(ref.report.deflections, ref.model.counter_value("deflections"));
  EXPECT_EQ(ref.report.delivery_steps_sum,
            ref.model.real_value("delivery_steps_sum"));

  for (const core::Kernel kernel :
       {core::Kernel::TimeWarp, core::Kernel::Conservative}) {
    auto o = base;
    o.kernel = kernel;
    o.engine.num_pes = 2;
    const auto r = core::run_hotpotato(o);
    EXPECT_EQ(r.model, ref.model) << core::kernel_name(kernel);
    EXPECT_EQ(r.report, ref.report) << core::kernel_name(kernel);
  }
}

// Satellite regression: a run that ends with injectors mid-wait must report
// the same pending accounting everywhere. High load + few steps guarantees
// pending injectors at the horizon.
TEST(ModelChannel, PendingWaitAccountingIdenticalAcrossKernels) {
  core::SimulationOptions base;
  base.model.n = 8;
  base.model.injector_fraction = 1.0;  // saturated: injectors WILL be waiting
  base.model.steps = 16;

  auto seq = base;
  seq.kernel = core::Kernel::Sequential;
  const auto ref = core::run_hotpotato(seq);
  EXPECT_GT(ref.report.pending_waiting, 0u)
      << "saturated run should end with injectors mid-wait";
  EXPECT_GT(ref.report.pending_wait_steps, 0.0);

  for (const core::Kernel kernel :
       {core::Kernel::TimeWarp, core::Kernel::Conservative}) {
    auto o = base;
    o.kernel = kernel;
    o.engine.num_pes = 2;
    const auto r = core::run_hotpotato(o);
    EXPECT_EQ(r.report.pending_waiting, ref.report.pending_waiting)
        << core::kernel_name(kernel);
    EXPECT_EQ(r.report.pending_wait_steps, ref.report.pending_wait_steps)
        << core::kernel_name(kernel);
    EXPECT_EQ(r.report, ref.report) << core::kernel_name(kernel);
  }
}

}  // namespace
}  // namespace hp
