#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/mapping.hpp"
#include "net/torus.hpp"

namespace hp::net {
namespace {

void expect_partition_complete_and_balanced(const Mapping& m,
                                            double balance_slack) {
  std::vector<std::uint64_t> per_kp(m.num_kps(), 0);
  for (std::uint32_t lp = 0; lp < m.num_lps(); ++lp) {
    const auto kp = m.kp_of(lp);
    ASSERT_LT(kp, m.num_kps());
    ++per_kp[kp];
  }
  const double ideal =
      static_cast<double>(m.num_lps()) / static_cast<double>(m.num_kps());
  for (std::uint32_t kp = 0; kp < m.num_kps(); ++kp) {
    EXPECT_GT(per_kp[kp], 0u) << "KP " << kp << " owns no LPs";
    EXPECT_LE(static_cast<double>(per_kp[kp]), ideal * balance_slack)
        << "KP " << kp << " overloaded";
  }
  std::vector<std::uint64_t> per_pe(m.num_pes(), 0);
  for (std::uint32_t kp = 0; kp < m.num_kps(); ++kp) {
    const auto pe = m.pe_of_kp(kp);
    ASSERT_LT(pe, m.num_pes());
    ++per_pe[kp == 0 ? pe : pe];  // count KPs per PE
  }
  for (std::uint32_t pe = 0; pe < m.num_pes(); ++pe) {
    std::uint32_t kp_count = 0;
    for (std::uint32_t kp = 0; kp < m.num_kps(); ++kp) {
      if (m.pe_of_kp(kp) == pe) ++kp_count;
    }
    EXPECT_GT(kp_count, 0u) << "PE " << pe << " owns no KPs";
  }
}

TEST(SquareFactor, PicksNearSquare) {
  EXPECT_EQ(square_factor(64), std::make_pair(8u, 8u));
  EXPECT_EQ(square_factor(32), std::make_pair(4u, 8u));
  EXPECT_EQ(square_factor(12), std::make_pair(3u, 4u));
  EXPECT_EQ(square_factor(7), std::make_pair(1u, 7u));
  EXPECT_EQ(square_factor(1), std::make_pair(1u, 1u));
}

TEST(BlockMapping, ReportConfiguration64Kps) {
  // The report's configuration: N multiple of 8, 64 KPs in an 8x8 grid.
  const BlockMapping m(16, 64, 4);
  EXPECT_EQ(m.kp_rows(), 8u);
  EXPECT_EQ(m.kp_cols(), 8u);
  expect_partition_complete_and_balanced(m, 1.5);
}

TEST(BlockMapping, BlocksAreContiguousRectangles) {
  const BlockMapping m(16, 16, 4);
  const Torus t(16);
  // Every KP's LP set must form a rectangle: row range x col range.
  for (std::uint32_t kp = 0; kp < m.num_kps(); ++kp) {
    std::int32_t rmin = 99, rmax = -1, cmin = 99, cmax = -1;
    std::uint32_t count = 0;
    for (std::uint32_t lp = 0; lp < m.num_lps(); ++lp) {
      if (m.kp_of(lp) != kp) continue;
      const Coord c = t.coord_of(lp);
      rmin = std::min(rmin, c.row);
      rmax = std::max(rmax, c.row);
      cmin = std::min(cmin, c.col);
      cmax = std::max(cmax, c.col);
      ++count;
    }
    EXPECT_EQ(count, static_cast<std::uint32_t>((rmax - rmin + 1) *
                                                (cmax - cmin + 1)))
        << "KP " << kp << " is not a solid rectangle";
  }
}

TEST(BlockMapping, NonDivisibleSizesStillPartition) {
  const BlockMapping m(10, 9, 3);
  expect_partition_complete_and_balanced(m, 2.0);
}

TEST(BlockMapping, SinglePeSingleKp) {
  const BlockMapping m(8, 1, 1);
  for (std::uint32_t lp = 0; lp < m.num_lps(); ++lp) {
    EXPECT_EQ(m.kp_of(lp), 0u);
    EXPECT_EQ(m.pe_of(lp), 0u);
  }
}

TEST(LinearMapping, PartitionsContiguously) {
  const LinearMapping m(100, 10, 2);
  expect_partition_complete_and_balanced(m, 1.5);
  // Contiguity: kp_of is monotone in lp.
  for (std::uint32_t lp = 1; lp < 100; ++lp) {
    EXPECT_GE(m.kp_of(lp), m.kp_of(lp - 1));
  }
}

TEST(RandomMapping, BalancedAndSeedStable) {
  const RandomMapping a(256, 16, 4, 7);
  const RandomMapping b(256, 16, 4, 7);
  const RandomMapping c(256, 16, 4, 8);
  expect_partition_complete_and_balanced(a, 1.01);
  int diffs = 0;
  for (std::uint32_t lp = 0; lp < 256; ++lp) {
    EXPECT_EQ(a.kp_of(lp), b.kp_of(lp));
    if (a.kp_of(lp) != c.kp_of(lp)) ++diffs;
  }
  EXPECT_GT(diffs, 0) << "different seeds should shuffle differently";
}

TEST(InterPeLinkFraction, BlockBeatsRandom) {
  // The report's locality argument: the block mapping minimizes inter-PE
  // communication; a random mapping nearly maximizes it.
  const std::int32_t n = 16;
  const BlockMapping block(n, 16, 4);
  const RandomMapping random(static_cast<std::uint32_t>(n * n), 16, 4, 3);
  const double f_block = inter_pe_link_fraction(block, n);
  const double f_random = inter_pe_link_fraction(random, n);
  EXPECT_LT(f_block, 0.30);
  EXPECT_GT(f_random, 0.5);
  EXPECT_LT(f_block, f_random);
}

TEST(InterPeLinkFraction, SinglePeHasNoCrossLinks) {
  const BlockMapping m(8, 4, 1);
  EXPECT_DOUBLE_EQ(inter_pe_link_fraction(m, 8), 0.0);
}

}  // namespace
}  // namespace hp::net
