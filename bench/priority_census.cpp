// Probe of the report's Fig. 3 explanation: "In a larger network, a greater
// percentage of packets have changed to higher states. This change in state
// ... makes the algorithm perform slightly better." The census counts routed
// events by priority and the state-machine transition volumes as N grows.
// The upgrade probabilities scale as 1/N while path lengths scale as N, so
// the per-packet chance of leaving Sleeping grows with N — visible here long
// before the N~188 trajectory change is reachable.

#include "bench/common.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{8, 16, 32, 64, 128, 192, 256}
           : std::vector<std::int32_t>{8, 16, 32, 64};

  hp::util::Table table({"N", "routed", "sleeping_%", "active_%", "excited_%",
                         "running_%", "upgrades_active", "upgrades_excited",
                         "promotions_running", "demotions"});
  for (const std::int32_t n : sizes) {
    hp::core::SimulationOptions o;
    o.model.n = n;
    o.model.injector_fraction = 0.75;
    o.model.steps = hp::bench::steps_for(n);
    const auto r = hp::core::run_hotpotato(o).report;
    const double total =
        r.routed > 0 ? static_cast<double>(r.routed) : 1.0;
    table.add_row({static_cast<std::int64_t>(n), r.routed,
                   100.0 * static_cast<double>(r.routed_by_prio[0]) / total,
                   100.0 * static_cast<double>(r.routed_by_prio[1]) / total,
                   100.0 * static_cast<double>(r.routed_by_prio[2]) / total,
                   100.0 * static_cast<double>(r.routed_by_prio[3]) / total,
                   r.upgrades_to_active, r.upgrades_to_excited,
                   r.promotions_to_running, r.demotions_to_active});
  }
  hp::bench::finish(table, cli,
                    "Priority-state census vs N (the mechanism behind the "
                    "report's Fig. 3 trajectory change at large N)");
  return 0;
}
