// google-benchmark microbenches of the engine primitives: reversible RNG,
// event pool recycling, torus routing arithmetic, BHW decisions, and whole-
// kernel throughput on PHOLD-style and hot-potato workloads.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/simulation.hpp"
#include "des/sequential.hpp"
#include "hotpotato/policy.hpp"
#include "net/torus.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"

namespace {

struct QNode : hp::util::MpscNode {
  std::uint64_t payload = 0;
};

// Uncontended push/pop round trip through the lock-free inbox queue — the
// per-envelope cost floor of the remote event path.
void BM_MpscQueuePushPop(benchmark::State& state) {
  hp::util::MpscQueue<QNode> q;
  QNode node;
  for (auto _ : state) {
    q.push(&node);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_MpscQueuePushPop);

// Batch publication: stage a chain locally, publish with one push_chain,
// drain — the rollback send-batching pattern (vs N individual pushes).
void BM_MpscQueueChainPushDrain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  hp::util::MpscQueue<QNode> q;
  std::vector<QNode> nodes(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < batch; ++i) {
      nodes[i].mpsc_next.store(&nodes[i + 1], std::memory_order_relaxed);
    }
    q.push_chain(&nodes.front(), &nodes.back());
    while (QNode* n = q.pop()) benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MpscQueueChainPushDrain)->Arg(8)->Arg(64);

void BM_RngUniform(benchmark::State& state) {
  hp::util::ReversibleRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngForwardReverse(benchmark::State& state) {
  hp::util::ReversibleRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
    rng.reverse(1);
  }
}
BENCHMARK(BM_RngForwardReverse);

void BM_EventPoolRoundTrip(benchmark::State& state) {
  hp::des::EventPool pool;
  for (auto _ : state) {
    hp::des::Event* ev = pool.allocate();
    benchmark::DoNotOptimize(ev);
    pool.free(ev);
  }
}
BENCHMARK(BM_EventPoolRoundTrip);

void BM_TorusGoodDirs(benchmark::State& state) {
  const hp::net::Torus t(64);
  std::uint32_t src = 0, dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.good_dirs(src, dst));
    src = (src + 7) % t.num_nodes();
    dst = (dst + 13) % t.num_nodes();
  }
}
BENCHMARK(BM_TorusGoodDirs);

void BM_BhwRouteDecision(benchmark::State& state) {
  const hp::net::Torus t(64);
  const hp::hotpotato::BhwPolicy policy(64);
  hp::util::ReversibleRng rng(1);
  hp::hotpotato::HpMsg m;
  m.prio = hp::hotpotato::Priority::Sleeping;
  m.dst_row = 13;
  m.dst_col = 42;
  hp::net::DirSet free;
  for (hp::net::Dir d : hp::net::kAllDirs) free.add(d);
  std::uint32_t here = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.route(t, m, here, free, rng));
    here = (here + 11) % t.num_nodes();
  }
}
BENCHMARK(BM_BhwRouteDecision);

void BM_SequentialHotPotato(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    hp::core::SimulationOptions o;
    o.model.n = n;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    const auto r = hp::core::run_hotpotato(o);
    events += r.engine.committed_events();
    benchmark::DoNotOptimize(r.report.delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialHotPotato)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_TimeWarpHotPotato(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    hp::core::SimulationOptions o;
    o.model.n = 16;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    o.kernel = hp::core::Kernel::TimeWarp;
    o.engine.num_pes = pes;
    o.engine.num_kps = 64;
    o.engine.optimism_window = 30.0;
    const auto r = hp::core::run_hotpotato(o);
    events += r.engine.committed_events();
    benchmark::DoNotOptimize(r.report.delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimeWarpHotPotato)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Adaptive GVT pacing (arg=1) against the fixed-threshold baseline (arg=0)
// at 4 PEs; the committed-event rate is the figure of merit.
void BM_TimeWarpGvtPacing(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    hp::core::SimulationOptions o;
    o.model.n = 16;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    o.kernel = hp::core::Kernel::TimeWarp;
    o.engine.num_pes = 4;
    o.engine.num_kps = 64;
    o.engine.optimism_window = 30.0;
    o.engine.adaptive_gvt = adaptive;
    const auto r = hp::core::run_hotpotato(o);
    events += r.engine.committed_events();
    benchmark::DoNotOptimize(r.report.delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimeWarpGvtPacing)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
