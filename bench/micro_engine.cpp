// google-benchmark microbenches of the engine primitives: reversible RNG,
// event pool recycling, torus routing arithmetic, BHW decisions, and whole-
// kernel throughput on PHOLD-style and hot-potato workloads.
//
// --json=<path> bypasses google-benchmark entirely and runs the
// deterministic perf-smoke subset (fixed iteration counts, wall-clocked by
// hand), writing the schema-conformant JSON that scripts/perf_delta.py
// diffs against the committed BENCH_micro_engine.json baseline.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulation.hpp"
#include "des/sequential.hpp"
#include "hotpotato/policy.hpp"
#include "net/torus.hpp"
#include "util/json_writer.hpp"
#include "util/macros.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct QNode : hp::util::MpscNode {
  std::uint64_t payload = 0;
};

// Uncontended push/pop round trip through the lock-free inbox queue — the
// per-envelope cost floor of the remote event path.
void BM_MpscQueuePushPop(benchmark::State& state) {
  hp::util::MpscQueue<QNode> q;
  QNode node;
  for (auto _ : state) {
    q.push(&node);
    benchmark::DoNotOptimize(q.pop());
  }
}
BENCHMARK(BM_MpscQueuePushPop);

// Batch publication: stage a chain locally, publish with one push_chain,
// drain — the rollback send-batching pattern (vs N individual pushes).
void BM_MpscQueueChainPushDrain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  hp::util::MpscQueue<QNode> q;
  std::vector<QNode> nodes(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < batch; ++i) {
      nodes[i].mpsc_next.store(&nodes[i + 1], std::memory_order_relaxed);
    }
    q.push_chain(&nodes.front(), &nodes.back());
    while (QNode* n = q.pop()) benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MpscQueueChainPushDrain)->Arg(8)->Arg(64);

void BM_RngUniform(benchmark::State& state) {
  hp::util::ReversibleRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_RngForwardReverse(benchmark::State& state) {
  hp::util::ReversibleRng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
    rng.reverse(1);
  }
}
BENCHMARK(BM_RngForwardReverse);

void BM_EventPoolRoundTrip(benchmark::State& state) {
  hp::des::EventPool pool;
  for (auto _ : state) {
    hp::des::Event* ev = pool.allocate();
    benchmark::DoNotOptimize(ev);
    pool.free(ev);
  }
}
BENCHMARK(BM_EventPoolRoundTrip);

void BM_TorusGoodDirs(benchmark::State& state) {
  const hp::net::Torus t(64);
  std::uint32_t src = 0, dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.good_dirs(src, dst));
    src = (src + 7) % t.num_nodes();
    dst = (dst + 13) % t.num_nodes();
  }
}
BENCHMARK(BM_TorusGoodDirs);

void BM_BhwRouteDecision(benchmark::State& state) {
  const hp::net::Torus t(64);
  const hp::hotpotato::BhwPolicy policy(64);
  hp::util::ReversibleRng rng(1);
  hp::hotpotato::HpMsg m;
  m.prio = hp::hotpotato::Priority::Sleeping;
  m.dst_row = 13;
  m.dst_col = 42;
  hp::net::DirSet free;
  for (hp::net::Dir d : hp::net::kAllDirs) free.add(d);
  std::uint32_t here = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.route(t, m, here, free, rng));
    here = (here + 11) % t.num_nodes();
  }
}
BENCHMARK(BM_BhwRouteDecision);

void BM_SequentialHotPotato(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    hp::core::SimulationOptions o;
    o.model.n = n;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    const auto r = hp::core::run_hotpotato(o);
    events += r.engine.committed_events();
    benchmark::DoNotOptimize(r.report.delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialHotPotato)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_TimeWarpHotPotato(benchmark::State& state) {
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    hp::core::SimulationOptions o;
    o.model.n = 16;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    o.kernel = hp::core::Kernel::TimeWarp;
    o.engine.num_pes = pes;
    o.engine.num_kps = 64;
    o.engine.optimism_window = 30.0;
    const auto r = hp::core::run_hotpotato(o);
    events += r.engine.committed_events();
    benchmark::DoNotOptimize(r.report.delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimeWarpHotPotato)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Adaptive GVT pacing (arg=1) against the fixed-threshold baseline (arg=0)
// at 4 PEs; the committed-event rate is the figure of merit.
void BM_TimeWarpGvtPacing(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  std::uint64_t events = 0;
  for (auto _ : state) {
    hp::core::SimulationOptions o;
    o.model.n = 16;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    o.kernel = hp::core::Kernel::TimeWarp;
    o.engine.num_pes = 4;
    o.engine.num_kps = 64;
    o.engine.optimism_window = 30.0;
    o.engine.adaptive_gvt = adaptive;
    const auto r = hp::core::run_hotpotato(o);
    events += r.engine.committed_events();
    benchmark::DoNotOptimize(r.report.delivered);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TimeWarpGvtPacing)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Deterministic perf-smoke mode (--json=<path>).

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ns/op over a fixed iteration count; the hot loop is supplied as a lambda
// that performs `iters` operations and returns a value the optimizer must
// keep.
template <typename F>
double time_ns_per_op(std::uint64_t iters, F&& body) {
  const double t0 = now_seconds();
  auto sink = body(iters);
  const double t1 = now_seconds();
  benchmark::DoNotOptimize(sink);
  return (t1 - t0) * 1e9 / static_cast<double>(iters);
}

double hotpotato_events_per_s(hp::core::Kernel kernel, std::uint32_t pes,
                              int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    hp::core::SimulationOptions o;
    o.model.n = 16;
    o.model.injector_fraction = 0.5;
    o.model.steps = 32;
    o.kernel = kernel;
    o.engine.num_pes = pes;
    o.engine.num_kps = 64;
    o.engine.optimism_window = 30.0;
    const auto r = hp::core::run_hotpotato(o);
    best = std::max(best, r.engine.event_rate());
  }
  return best;
}

int run_perf_smoke(const std::string& path) {
  hp::util::Table table({"benchmark", "value", "unit"});
  std::map<std::string, double> headline;

  const double pool_ns = time_ns_per_op(10'000'000, [](std::uint64_t n) {
    hp::des::EventPool pool;
    hp::des::Event* last = nullptr;
    for (std::uint64_t i = 0; i < n; ++i) {
      hp::des::Event* ev = pool.allocate();
      last = ev;
      pool.free(ev);
    }
    return last;
  });
  table.add_row({"event_pool_round_trip", pool_ns, "ns/op"});

  const double rng_ns = time_ns_per_op(10'000'000, [](std::uint64_t n) {
    hp::util::ReversibleRng rng(1);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) acc += rng.uniform();
    return acc;
  });
  table.add_row({"rng_uniform", rng_ns, "ns/op"});

  const double mpsc_ns = time_ns_per_op(10'000'000, [](std::uint64_t n) {
    hp::util::MpscQueue<QNode> q;
    QNode node;
    QNode* last = nullptr;
    for (std::uint64_t i = 0; i < n; ++i) {
      q.push(&node);
      last = q.pop();
    }
    return last;
  });
  table.add_row({"mpsc_push_pop", mpsc_ns, "ns/op"});

  const double dirs_ns = time_ns_per_op(1'000'000, [](std::uint64_t n) {
    const hp::net::Torus t(64);
    std::uint32_t src = 0, dst = 1, acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      acc += static_cast<std::uint32_t>(t.good_dirs(src, dst).size());
      src = (src + 7) % t.num_nodes();
      dst = (dst + 13) % t.num_nodes();
    }
    return acc;
  });
  table.add_row({"torus_good_dirs", dirs_ns, "ns/op"});

  // Whole-kernel throughput: best of 3 fixed-size hot-potato runs. The
  // sequential rate is THE headline number the perf-smoke CI job tracks.
  const double seq_rate =
      hotpotato_events_per_s(hp::core::Kernel::Sequential, 1, 3);
  table.add_row({"sequential_hotpotato_n16", seq_rate, "events/s"});
  const double tw_rate =
      hotpotato_events_per_s(hp::core::Kernel::TimeWarp, 2, 3);
  table.add_row({"timewarp_2pe_hotpotato_n16", tw_rate, "events/s"});

  headline["events_per_s"] = seq_rate;
  headline["timewarp_2pe_events_per_s"] = tw_rate;
  headline["event_pool_round_trip_ns"] = pool_ns;

  const std::string title =
      "Micro-engine perf smoke: primitive costs and whole-kernel throughput "
      "(fixed iteration counts; deterministic workload)";
  std::cout << title << "\n\n";
  table.print(std::cout);

  std::ofstream f(path);
  HP_ASSERT(f.good(), "cannot open --json path %s", path.c_str());
  hp::util::JsonWriter w(f);
  w.begin_object();
  w.kv("title", title);
  w.key("rows");
  table.write_json(w);
  w.key("headline").begin_object();
  for (const auto& [k, v] : headline) w.kv(k, v);
  w.end_object();
  w.end_object();
  HP_ASSERT(w.done(), "unbalanced JSON in perf-smoke dump");
  std::cout << "\njson written to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      return run_perf_smoke(std::string(arg.substr(7)));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
