// Ablation (report Section 3.2.1): reverse computation versus classic
// state saving as the rollback mechanism. ROSS's thesis — reverse
// computation trades per-event copying for cheap inverse handlers — shows
// up as a higher event rate and far less memory traffic in rollback-heavy
// configurations.

#include "bench/common.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64}
           : std::vector<std::int32_t>{16, 32};

  hp::util::Table table({"N", "rollback_mechanism", "events_per_s",
                         "rolled_back", "identical_results"});
  for (const std::int32_t n : sizes) {
    hp::core::SimulationResult ref;
    for (const bool state_saving : {false, true}) {
      auto o = hp::bench::tw_options(n, 0.5, 2, 64);
      o.engine.state_saving = state_saving;
      const auto r = hp::core::run_hotpotato(o);
      if (!state_saving) ref = r;
      table.add_row({static_cast<std::int64_t>(n),
                     state_saving ? "state saving" : "reverse computation",
                     r.engine.event_rate(), r.engine.rolled_back_events(),
                     state_saving ? (r.report == ref.report ? "yes" : "NO")
                                  : "-"});
    }
  }
  hp::bench::finish(table, cli,
                    "Ablation: reverse computation vs state saving "
                    "(expect reverse computation to sustain a higher event "
                    "rate; results must stay bit-identical)");
  return 0;
}
