// Ablation: GVT interval (ROSS's g_tw_gvt_interval analogue) — the
// frequency knob trading synchronization overhead against memory and
// rollback depth. Short intervals bound optimism tightly (frequent barriers,
// prompt fossil collection, small event pools); long intervals let PEs run
// free between reductions.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::int32_t n = full ? 64 : 32;

  hp::util::Table table({"gvt_interval", "events_per_s", "gvt_rounds",
                         "rolled_back", "pool_envelopes", "identical"});
  hp::core::SimulationResult ref;
  bool have_ref = false;
  for (const std::uint32_t interval : {64u, 256u, 1024u, 4096u, 16384u}) {
    auto o = hp::bench::tw_options(n, 0.5, 2, 64);
    o.gvt_interval = interval;
    const auto r = hp::core::run_hotpotato(o);
    if (!have_ref) {
      ref = r;
      have_ref = true;
    }
    table.add_row({static_cast<std::int64_t>(interval), r.engine.event_rate(),
                   r.engine.gvt_rounds, r.engine.rolled_back_events,
                   r.engine.pool_envelopes,
                   r.report == ref.report ? "yes" : "NO"});
  }
  hp::bench::finish(table, cli,
                    "Ablation: GVT interval (frequent GVT = bounded memory + "
                    "throttled optimism vs barrier overhead)");
  return 0;
}
