// Ablation: GVT pacing (ROSS's g_tw_gvt_interval analogue) — the frequency
// knob trading synchronization overhead against memory and rollback depth.
// Short fixed intervals bound optimism tightly (frequent barriers, prompt
// fossil collection, small event pools); long intervals let PEs run free
// between reductions. The adaptive rows let each PE float its interval from
// the commit yield of the previous round (plus exponential idle backoff);
// the trigger columns show what drove the rounds.

#include <string>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::int32_t n = full ? 64 : 32;

  hp::util::Table table({"mode", "gvt_interval", "events_per_s", "gvt_rounds",
                         "trig_progress", "trig_idle", "rolled_back",
                         "pool_envelopes", "identical"});
  hp::core::SimulationResult ref;
  bool have_ref = false;
  auto run_row = [&](bool adaptive, std::uint32_t interval) {
    auto o = hp::bench::tw_options(n, 0.5, 2, 64);
    o.engine.gvt_interval_events = interval;
    o.engine.adaptive_gvt = adaptive;
    const auto r = hp::core::run_hotpotato(o);
    if (!have_ref) {
      ref = r;
      have_ref = true;
    }
    table.add_row({adaptive ? "adaptive" : "fixed",
                   static_cast<std::int64_t>(interval), r.engine.event_rate(),
                   r.engine.gvt_rounds(), r.engine.gvt_progress_triggers(),
                   r.engine.gvt_idle_triggers(), r.engine.rolled_back_events(),
                   r.engine.pool_envelopes(),
                   r.report == ref.report ? "yes" : "NO"});
  };
  for (const std::uint32_t interval : {64u, 256u, 1024u, 4096u, 16384u}) {
    run_row(false, interval);
  }
  // Adaptive pacing: the interval is the ceiling the PEs float beneath.
  for (const std::uint32_t ceiling : {1024u, 16384u}) {
    run_row(true, ceiling);
  }
  hp::bench::finish(table, cli,
                    "Ablation: GVT pacing (fixed interval sweep vs adaptive "
                    "commit-yield pacing; identical results either way)");
  return 0;
}
