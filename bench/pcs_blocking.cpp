// PCS network study (report references [4]/[6]: the PCS simulation that
// pioneered the ROSS methodology this report reuses): Erlang-style call
// blocking and handoff drop probability versus channel provisioning, plus
// the Time Warp determinism column. A second full model on the same engine,
// with a very different profile from hot-potato routing (self-traffic heavy,
// counter contention rather than link contention).

#include "bench/common.hpp"
#include "des/sequential.hpp"
#include "des/timewarp.hpp"
#include "pcs/pcs_model.hpp"

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const std::int32_t n = full ? 16 : 8;
  const double end = full ? 5000.0 : 2000.0;

  hp::util::Table table({"channels", "offered_load", "blocking_%",
                         "handoff_drop_%", "mean_call", "tw_identical"});
  for (const std::uint32_t channels : {2u, 4u, 8u, 16u}) {
    hp::pcs::PcsConfig pc;
    pc.n = n;
    pc.channels_per_cell = channels;
    pc.mean_idle = 20.0;

    hp::des::EngineConfig ec;
    ec.num_lps = pc.num_cells();
    ec.end_time = end;

    hp::pcs::PcsModel m1(pc);
    hp::des::SequentialEngine seq(m1, ec);
    (void)seq.run();
    const auto sr = hp::pcs::PcsModel::collect(seq);

    auto tc = ec;
    tc.num_pes = 2;
    tc.num_kps = 16;
    tc.gvt_interval_events = 1024;
    hp::pcs::PcsModel m2(pc);
    hp::des::TimeWarpEngine tw(m2, tc);
    (void)tw.run();
    const auto tr = hp::pcs::PcsModel::collect(tw);

    // Offered load per cell in Erlangs: portables * call / (call + idle).
    const double erlangs = pc.portables_per_cell * pc.mean_call /
                           (pc.mean_call + pc.mean_idle);
    table.add_row({static_cast<std::int64_t>(channels), erlangs,
                   100.0 * sr.blocking_probability(),
                   100.0 * sr.handoff_drop_probability(), sr.mean_call_time(),
                   sr == tr ? "yes" : "NO"});
  }
  hp::bench::finish(table, cli,
                    "PCS network (report refs [4]/[6]): blocking vs channel "
                    "provisioning at fixed offered load");
  return 0;
}
