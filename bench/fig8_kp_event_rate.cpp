// Figure 8 — "Effect of Kernel Processes on Event Rate": committed event
// rate versus KP count, one series per network size. The report shows more
// KPs helping small networks and the benefit diminishing for large ones
// (rollback containment vs fossil-collection overhead trade-off).

#include "bench/common.hpp"

#include <vector>

int main(int argc, char** argv) {
  hp::util::Cli cli(argc, argv, hp::bench::common_flags());
  const bool full = cli.get_bool("full", false);
  const auto scale = full ? hp::bench::full_scale() : hp::bench::quick_scale();
  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{16, 32, 64, 128, 256}
           : std::vector<std::int32_t>{16, 32};

  hp::util::Table table({"N", "KPs", "events_per_s", "rolled_back"});
  for (const std::int32_t n : sizes) {
    for (const std::uint32_t kps : scale.kp_counts) {
      if (kps > static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n)) {
        continue;
      }
      auto o = hp::bench::tw_options(n, 0.5, 2, kps);
      hp::bench::apply_monitor_flags(cli, o.engine);
      const auto r = hp::core::run_hotpotato(o);
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(kps), r.engine.event_rate(),
                     r.engine.rolled_back_events()});
    }
  }
  hp::bench::finish(table, cli,
                    "Figure 8: event rate vs number of KPs (expect gains for "
                    "small N, flat for large N)");
  return 0;
}
