// The title claim — "routing WITHOUT flow control": contrast the BHW
// hot-potato network against a store-and-forward torus with finite buffers
// and credit-style backpressure. The flow-controlled network throttles its
// sources and under-utilizes links (report Section 1.2.3); hot-potato keeps
// links busy with bounded injection waits.

#include "bench/common.hpp"
#include "buffered/buffered_network.hpp"

#include <string>

int main(int argc, char** argv) {
  auto flags = hp::bench::common_flags();
  flags.emplace("qcap", "buffered baseline: per-output queue capacity");
  hp::util::Cli cli(argc, argv, flags);
  const bool full = cli.get_bool("full", false);
  const std::int32_t n = full ? 32 : 16;
  const std::uint32_t steps = hp::bench::steps_for(n);
  const auto qcap = static_cast<std::uint32_t>(cli.get_int("qcap", 4));
  const auto nn = static_cast<std::uint32_t>(n) * static_cast<std::uint32_t>(n);

  hp::util::Table table({"injectors_%", "network", "link_util_%",
                         "throughput_pkts_per_step", "avg_delivery",
                         "avg_wait", "max_wait"});
  for (const double load : {0.25, 0.50, 0.75, 1.00}) {
    {
      hp::core::SimulationOptions o;
      o.model.n = n;
      o.model.injector_fraction = load;
      o.model.steps = steps;
      const auto r = hp::core::run_hotpotato(o).report;
      table.add_row({100.0 * load, "hot-potato (no FC)",
                     100.0 * r.link_utilization(nn, steps),
                     static_cast<double>(r.delivered) / steps,
                     r.avg_delivery_steps(), r.avg_inject_wait(),
                     r.max_inject_wait});
    }
    {
      hp::buffered::BufferedConfig c;
      c.n = n;
      c.injector_fraction = load;
      c.steps = steps;
      c.queue_capacity = qcap;
      hp::buffered::BufferedNetwork net(c);
      const auto r = net.run();
      table.add_row({100.0 * load, "buffered + credits",
                     100.0 * r.link_utilization(nn, steps),
                     static_cast<double>(r.delivered) / steps,
                     r.avg_delivery_steps(), r.avg_inject_wait(),
                     r.max_inject_wait});
    }
  }
  hp::bench::finish(table, cli,
                    "Flow-control contrast on a " + std::to_string(n) + "x" +
                        std::to_string(n) +
                        " torus (expect hot-potato to out-utilize the "
                        "credit-controlled network at load)");
  return 0;
}
